(* lpbench: the performance harness behind the repo's BENCH_*.json files.

   Where bench/main.exe regenerates the paper's *simulated* evaluation
   tables, lpbench measures the *simulator itself* on this machine: trace
   generation, binary (.lpt) decode, sequential replay through every
   registry allocator backend, and the parallel fan-out across domains —
   per workload, reporting wall-clock seconds, events/sec and heap
   high-water marks, as machine-readable JSON.

   The committed BENCH_seed.json (pre-optimization) and BENCH_<rev>.json
   files make simulator-throughput regressions diffable; CI runs
   `lpbench --scale tiny --validate` as a non-gating smoke job.

   The lp_obs timing spans recorded during the run (the same numbers
   `--timings` prints elsewhere) are embedded in the JSON under "timings",
   so one file carries both phase timings and throughput.

   Schema v2 adds a per-workload "streamed" phase (the sequential job set
   replayed through pull-based decoders over the encoded bytes, with the
   heap-growth delta it caused) and the trace.events_streamed /
   trace.peak_resident_words counters; --validate accepts v1 files and
   only demands the additions from v2 files.

   Schema v3 adds a per-workload "sharded" phase: the trace re-encoded in
   the seekable v3 layout (~8 chunks) and the training fold replayed over
   the chunk index sequentially and across domains.  Byte-identity of the
   merged fold is a test/CI property; here only the wall clock is
   measured.  The speedup is recorded, never asserted — on boxes without
   >= 4 real cores (Domain.recommended_domain_count) a warning is all a
   shortfall produces, since domains > cores just oversubscribes the
   stop-the-world minor GC.

   Schema v4 adds a per-workload "realloc" phase for realloc-bearing
   traces (today: the pint interpreter workload, which also joins the
   default workload set): the realloc event count plus, per backend, how
   the sequential replay split resizes into in-place extensions and
   moves.  Realloc-free workloads omit the phase; --validate demands it
   from v4 files on at least one workload.

   Schema v5 adds a per-workload "tune" phase measuring the
   decode-once/replay-many candidate engine: a fixed 16-spec parameter
   sweep replayed through one prepared trace versus the naive
   decode-per-candidate baseline (fresh Binio decode + validating replay
   per candidate — the pre-engine cost), plus a small lpalloc-tune
   search reporting candidates evaluated, candidates/sec and the Pareto
   front size.  --validate demands the phase from v5 files.

   Schema v6 adds a per-workload "online" phase: one arena replay driven
   by the profile-free online oracle (default window/hysteresis) at one
   domain, reporting wall clock plus the oracle consultations and
   mispredict counters the replay classified.  --validate demands the
   phase from v6 files. *)

open Cmdliner
module Json = Lp_report.Json

let schema_version = 6

(* -- measurement helpers -------------------------------------------------------- *)

let time f =
  let t0 = Lp_obs.Timings.now () in
  let r = f () in
  (Lp_obs.Timings.now () -. t0, r)

(* best-of-N wall clock: min is the standard estimator for a noisy timer *)
let best_of repeat f =
  let rec go best n =
    if n = 0 then best
    else
      let dt, _ = time f in
      go (Float.min best dt) (n - 1)
  in
  let dt, r = time f in
  (go dt (repeat - 1), r)

let rate items seconds = if seconds > 0. then float_of_int items /. seconds else 0.

let num f = Json.Number f
let int_ n = Json.Number (float_of_int n)
let str s = Json.String s

(* difference of two Timings snapshots, keyed by stage name *)
let stage_delta before after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (s : Lp_obs.Timings.stage) -> Hashtbl.replace tbl s.name s) before;
  List.filter_map
    (fun (s : Lp_obs.Timings.stage) ->
      let prev =
        match Hashtbl.find_opt tbl s.name with
        | Some p -> p
        | None -> { s with calls = 0; seconds = 0.; items = 0 }
      in
      if s.calls = prev.calls then None
      else
        Some
          {
            Lp_obs.Timings.name = s.name;
            calls = s.calls - prev.calls;
            seconds = s.seconds -. prev.seconds;
            items = s.items - prev.items;
          })
    after

(* -- one workload --------------------------------------------------------------- *)

type replay_setup = {
  config : Lifetime.Config.t;
  oracle : Lifetime.Oracle.t;
  allocators : string list;
}

let replay setup trace () =
  Lifetime.Simulate.run ~allocators:setup.allocators ~config:setup.config
    ~oracle:setup.oracle ~test:trace ()

let bench_workload ~program ~input ~scale ~repeat ~domains ~allocators =
  Printf.eprintf "lpbench: %s-%s (scale %g)\n%!" program input scale;
  let gen_seconds, trace =
    time (fun () -> Lp_workloads.Registry.trace ~scale ~program ~input ())
  in
  let events = Array.length trace.events in
  (* realloc-bearing traces only exist in the v3 layout; everything else
     stays on the v2 writer the committed baselines were measured with *)
  let encode_seconds, encoded =
    time (fun () ->
        if Lp_trace.Trace.has_realloc trace then Lp_trace.Binio.to_string_v3 trace
        else Lp_trace.Binio.to_string trace)
  in
  let load_seconds, loaded =
    best_of repeat (fun () -> Lp_trace.Binio.of_string ~name:(program ^ ".lpt") encoded)
  in
  (* replay the decoded trace: the measured path is the real pipeline *)
  let trace = loaded in
  let config = Lifetime.Config.default in
  let train_seconds, predictor =
    time (fun () ->
        let table = Lifetime.Train.collect ~config trace in
        Lifetime.Predictor.build ~config ~funcs:trace.funcs table)
  in
  let setup = { config; oracle = Lifetime.Oracle.static predictor; allocators } in
  (* sequential: same job set as the parallel fan-out, pinned to 1 domain;
     per-backend seconds come from the lp_obs replay spans *)
  let before = Lp_obs.Timings.stages () in
  let seq_seconds, seq_sim =
    best_of repeat (fun () ->
        Lifetime.Parallel.with_domains 1 (replay setup trace))
  in
  let seq_stages =
    stage_delta before (Lp_obs.Timings.stages ())
    |> List.filter (fun (s : Lp_obs.Timings.stage) ->
           String.length s.name > 7 && String.sub s.name 0 7 = "replay/")
  in
  let backend_rows =
    List.map
      (fun (s : Lp_obs.Timings.stage) ->
        (* [best_of] may have replayed each backend [repeat] times; the
           span table aggregates, so report the per-call mean *)
        let seconds = s.seconds /. float_of_int (max 1 s.calls) in
        let items = s.items / max 1 s.calls in
        Json.Obj
          [
            ("backend", str (String.sub s.name 7 (String.length s.name - 7)));
            ("seconds", num seconds);
            ("events_per_sec", num (rate items seconds));
          ])
      seq_stages
  in
  let jobs =
    List.fold_left
      (fun n (s : Lp_obs.Timings.stage) -> n + (s.calls / max 1 repeat))
      0 seq_stages
  in
  let par_seconds, _ =
    best_of repeat (fun () ->
        Lifetime.Parallel.with_domains domains (replay setup trace))
  in
  (* streamed: the same job set pinned to 1 domain, but each replay pulls
     events from a fresh incremental decoder over the encoded bytes — no
     event array exists; the top-heap delta it causes is the streaming
     memory claim, measurable here because everything above has already
     pushed the high-water mark to its materialized level *)
  let gc_before = Gc.quick_stat () in
  let streamed_seconds, _ =
    best_of repeat (fun () ->
        Lifetime.Parallel.with_domains 1 (fun () ->
            Lifetime.Simulate.run_streamed ~allocators:setup.allocators
              ~config:setup.config ~oracle:setup.oracle
              ~source:(fun () ->
                Lp_trace.Source.of_string ~name:(program ^ ".lpt") encoded)
              ()))
  in
  let streamed_peak_delta =
    (Gc.quick_stat ()).Gc.top_heap_words - gc_before.Gc.top_heap_words
  in
  (* online phase (schema v6): the profile-free oracle — one arena replay
     learning site lifetimes as it goes, at one domain; the mispredict
     counters come from the replay's own outcome classification *)
  let online_oracle = Lifetime.Oracle.online config in
  let online_seconds, online_m =
    best_of repeat (fun () ->
        Lifetime.Parallel.with_domains 1 (fun () ->
            Lifetime.Simulate.arena_with_cost ~config ~oracle:online_oracle
              ~test:trace ~predict_cost:Lp_allocsim.Cost_model.predict_len4))
  in
  (* sharded: the same trace in the seekable v3 layout, the training fold
     replayed over the chunk index — the one-trace data-parallel path *)
  let chunk_events = max 1 ((events + 7) / 8) in
  let encode_v3_seconds, encoded_v3 =
    time (fun () -> Lp_trace.Binio.to_string_v3 ~chunk_events trace)
  in
  let sh = Lp_trace.Sharded.of_string ~name:(program ^ "_v3.lpt") encoded_v3 in
  (* level the GC field before each measurement: the fold allocates
     per-allocation arrays, so whichever phase runs second would
     otherwise pay the first's accumulated garbage *)
  Gc.full_major ();
  let shard_seq_seconds, _ =
    best_of repeat (fun () -> Lifetime.Shard.train ~domains:1 ~config sh)
  in
  (* at one domain the "parallel" phase is literally the same call, and
     re-timing it only measures heap-state drift — reuse the number *)
  let shard_par_seconds =
    if domains <= 1 then shard_seq_seconds
    else begin
      Gc.full_major ();
      fst (best_of repeat (fun () -> Lifetime.Shard.train ~domains ~config sh))
    end
  in
  let shard_speedup =
    if shard_par_seconds > 0. then shard_seq_seconds /. shard_par_seconds else 0.
  in
  if
    domains >= 4
    && Domain.recommended_domain_count () >= 4
    && shard_speedup < 1.8
  then
    Printf.eprintf
      "lpbench: WARNING: sharded replay speedup %.2fx at %d domains (< 1.8x)\n%!"
      shard_speedup domains;
  (* realloc phase (schema v4): how each backend split the trace's
     resizes, read off the sequential replay already measured above *)
  let realloc_phase =
    if not (Lp_trace.Trace.has_realloc trace) then []
    else
      let n_reallocs =
        Array.fold_left
          (fun n e ->
            match e with Lp_trace.Event.Realloc _ -> n + 1 | _ -> n)
          0 trace.events
      in
      let rows =
        List.map
          (fun name ->
            let m = Lifetime.Simulate.metrics seq_sim name in
            Json.Obj
              [
                ("backend", str name);
                ("reallocs", int_ m.Lp_allocsim.Metrics.reallocs);
                ("in_place", int_ m.Lp_allocsim.Metrics.realloc_in_place);
                ("moves", int_ m.Lp_allocsim.Metrics.realloc_moves);
              ])
          (Lifetime.Simulate.names seq_sim)
      in
      [
        ( "realloc",
          Json.Obj [ ("events", int_ n_reallocs); ("backends", Json.List rows) ]
        );
      ]
  in
  (* tune phase (schema v5): the candidate engine's reason to exist.
     One fixed parameter sweep, two ways: every candidate replaying the
     shared prepared trace (decoded and validated once — the seq phase
     above already memoized the validation) versus the naive baseline
     that decodes the encoded bytes and re-validates per candidate.  Same
     specs, same backends, 1 domain, so the ratio isolates the engine. *)
  let sweep_specs =
    [
      "first-fit"; "best-fit"; "bsd"; "segfit"; "arena";
      "first-fit:sbrk=4096"; "first-fit:sbrk=32768"; "best-fit:sbrk=4096";
      "segfit:slab=16+64+256+1024";
      "segfit:slab=16+32+48+64+96+128+192+256+384+512+768+1024+1536+2048";
      "arena:n=8"; "arena:n=32"; "arena:chunk=2048"; "arena:chunk=8192";
      "arena:n=8:chunk=8192"; "arena:fallback=segfit";
    ]
  in
  let backend_of_spec s =
    match Lp_allocsim.Registry.backend_of_spec s with
    | Ok b -> b
    | Error msg -> failwith ("lpbench: " ^ msg)
  in
  let sweep_backends = List.map backend_of_spec sweep_specs in
  Gc.full_major ();
  let prepared_seconds, _ =
    best_of repeat (fun () ->
        let prepared = Lp_allocsim.Driver.prepare trace in
        Lifetime.Parallel.with_domains 1 (fun () ->
            List.iter
              (fun b -> ignore (Lp_allocsim.Driver.run_prepared prepared b))
              sweep_backends))
  in
  Gc.full_major ();
  let decode_per_candidate_seconds, _ =
    best_of repeat (fun () ->
        Lifetime.Parallel.with_domains 1 (fun () ->
            List.iter
              (fun s ->
                (* a fresh decode per candidate also defeats the
                   validation memo: every replay pays the full
                   pre-engine path *)
                let t = Lp_trace.Binio.of_string ~name:(program ^ ".lpt") encoded in
                ignore (Lp_allocsim.Driver.run t (backend_of_spec s)))
              sweep_specs))
  in
  let sweep_speedup =
    if prepared_seconds > 0. then decode_per_candidate_seconds /. prepared_seconds
    else 0.
  in
  if sweep_speedup < 3.0 then
    Printf.eprintf
      "lpbench: WARNING: candidate-sweep speedup %.2fx vs decode-per-candidate \
       (< 3x)\n\
       %!"
      sweep_speedup;
  let search_seconds, tune_outcome =
    time (fun () ->
        Lifetime.Tune.search
          ~options:
            { Lifetime.Tune.seed = 42; generations = 1; population = 8; max_candidates = 64 }
          ~workload:program ~train:trace ~test:trace ())
  in
  let tune_candidates = List.length tune_outcome.Lifetime.Tune.results in
  let tune_phase =
    Json.Obj
      [
        ("sweep_specs", int_ (List.length sweep_specs));
        ("prepared_seconds", num prepared_seconds);
        ("decode_per_candidate_seconds", num decode_per_candidate_seconds);
        ("speedup_vs_decode_per_candidate", num sweep_speedup);
        ( "events_per_sec",
          num (rate (events * List.length sweep_specs) prepared_seconds) );
        ("candidates", int_ tune_candidates);
        ("search_seconds", num search_seconds);
        ("candidates_per_sec", num (rate tune_candidates search_seconds));
        ("pareto_size", int_ (List.length tune_outcome.Lifetime.Tune.pareto));
      ]
  in
  let gc = Gc.quick_stat () in
  ( events,
    Json.Obj
      ([
        ("name", str program);
        ("input", str input);
        ("events", int_ events);
        ("objects", int_ trace.n_objects);
        ("encoded_bytes", int_ (String.length encoded));
        ("generate", Json.Obj [ ("seconds", num gen_seconds) ]);
        ("encode", Json.Obj [ ("seconds", num encode_seconds) ]);
        ( "load",
          Json.Obj
            [
              ("seconds", num load_seconds);
              ("events_per_sec", num (rate events load_seconds));
            ] );
        ("train", Json.Obj [ ("seconds", num train_seconds) ]);
        ( "sequential",
          Json.Obj
            [
              ("jobs", int_ jobs);
              ("wall_seconds", num seq_seconds);
              ("events_per_sec", num (rate (events * jobs) seq_seconds));
              ("backends", Json.List backend_rows);
            ] );
        ( "parallel",
          Json.Obj
            [
              ("domains", int_ domains);
              ("jobs", int_ jobs);
              ("wall_seconds", num par_seconds);
              ("events_per_sec", num (rate (events * jobs) par_seconds));
              ( "speedup_vs_sequential",
                num (if par_seconds > 0. then seq_seconds /. par_seconds else 0.) );
            ] );
        ( "streamed",
          Json.Obj
            [
              ("jobs", int_ jobs);
              ("wall_seconds", num streamed_seconds);
              ("events_per_sec", num (rate (events * jobs) streamed_seconds));
              ("peak_words_delta", int_ streamed_peak_delta);
            ] );
        ( "online",
          Json.Obj
            [
              ("seconds", num online_seconds);
              ("events_per_sec", num (rate events online_seconds));
              ("predictions", int_ online_m.Lp_allocsim.Metrics.predictions);
              ( "mispredicts_short_lived",
                int_ online_m.Lp_allocsim.Metrics.mispredicts_short_lived );
              ( "mispredicts_long_lived",
                int_ online_m.Lp_allocsim.Metrics.mispredicts_long_lived );
            ] );
        ( "sharded",
          Json.Obj
            [
              ("chunk_events", int_ chunk_events);
              ("chunks", int_ (Lp_trace.Sharded.n_chunks sh));
              ("encoded_v3_bytes", int_ (String.length encoded_v3));
              ("encode_v3_seconds", num encode_v3_seconds);
              ("domains", int_ domains);
              ("sequential_seconds", num shard_seq_seconds);
              ("parallel_seconds", num shard_par_seconds);
              ("events_per_sec", num (rate events shard_par_seconds));
              ("speedup_vs_sequential", num shard_speedup);
            ] );
        ("tune", tune_phase);
        ("top_heap_words", int_ gc.Gc.top_heap_words);
      ]
      @ realloc_phase) )

(* -- the whole run --------------------------------------------------------------- *)

let timings_json () =
  let stages =
    List.map
      (fun (s : Lp_obs.Timings.stage) ->
        Json.Obj
          [
            ("stage", str s.name);
            ("calls", int_ s.calls);
            ("seconds", num s.seconds);
            ("items", int_ s.items);
            ("items_per_sec", num (rate s.items s.seconds));
          ])
      (Lp_obs.Timings.stages ())
  in
  let counters =
    List.map (fun (k, v) -> (k, int_ v)) (Lp_obs.Timings.counters ())
  in
  (Json.List stages, Json.Obj counters)

let run_bench rev out workloads input scale repeat domains allocators =
  Lp_obs.Timings.set_enabled true;
  List.iter
    (fun n ->
      match Lp_allocsim.Registry.backend_of_spec n with
      | Ok _ -> ()
      | Error msg ->
          Printf.eprintf "lpbench: %s\n" msg;
          exit 2)
    allocators;
  List.iter
    (fun p ->
      if not (List.mem p Lp_workloads.Registry.names) then begin
        Printf.eprintf "lpbench: unknown workload %S (known: %s)\n" p
          (String.concat ", " Lp_workloads.Registry.names);
        exit 2
      end)
    workloads;
  let total_seconds, rows =
    time (fun () ->
        List.map
          (fun program ->
            bench_workload ~program ~input ~scale ~repeat ~domains ~allocators)
          workloads)
  in
  let total_events = List.fold_left (fun n (e, _) -> n + e) 0 rows in
  let stages, counters = timings_json () in
  let gc = Gc.quick_stat () in
  let doc =
    Json.Obj
      [
        ("schema_version", int_ schema_version);
        ("rev", str rev);
        ("ocaml", str Sys.ocaml_version);
        ("word_size", int_ Sys.word_size);
        ("input", str input);
        ("scale", num scale);
        ("repeat", int_ repeat);
        ("domains", int_ domains);
        ("allocators", Json.List (List.map str allocators));
        ("total_events", int_ total_events);
        ("total_seconds", num total_seconds);
        ("workloads", Json.List (List.map snd rows));
        ("timings", stages);
        ("counters", counters);
        ( "gc",
          Json.Obj
            [
              ("top_heap_words", int_ gc.Gc.top_heap_words);
              ("minor_words", num gc.Gc.minor_words);
              ("major_words", num gc.Gc.major_words);
            ] );
      ]
  in
  let path = match out with Some p -> p | None -> "BENCH_" ^ rev ^ ".json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Json.to_pretty_string doc));
  Printf.printf "wrote %s (%d workloads, %d events)\n" path (List.length rows)
    total_events

(* -- schema validation (the CI smoke gate) --------------------------------------- *)

let validate_error = ref 0

let check what cond =
  if not cond then begin
    Printf.eprintf "lpbench --validate: missing or malformed %s\n" what;
    incr validate_error
  end

let require_num what j key =
  check (what ^ "." ^ key)
    (match Json.member key j with Some (Json.Number _) -> true | _ -> false)

let require_str what j key =
  check (what ^ "." ^ key)
    (match Json.member key j with Some (Json.String _) -> true | _ -> false)

let validate_file path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let j =
    try Json.of_string contents
    with Json.Parse_error msg ->
      Printf.eprintf "lpbench --validate: %s: not JSON: %s\n" path msg;
      exit 1
  in
  let version =
    match Json.member "schema_version" j with
    | Some (Json.Number v) -> int_of_float v
    | _ -> 0
  in
  (* v1 files (the committed pre-streaming baselines) stay valid; the
     streaming additions are only demanded from v2 files, the sharded
     phase from v3, the realloc phase from v4, the tune phase from v5,
     the online phase from v6 *)
  check "schema_version in {1, 2, 3, 4, 5, 6}"
    (version >= 1 && version <= 6);
  let saw_realloc_phase = ref false in
  List.iter (require_str "top" j) [ "rev"; "ocaml"; "input" ];
  List.iter (require_num "top" j)
    [ "scale"; "domains"; "total_events"; "total_seconds" ];
  (match Json.member "workloads" j with
  | Some (Json.List (_ :: _ as ws)) ->
      List.iter
        (fun w ->
          List.iter (require_str "workload" w) [ "name"; "input" ];
          List.iter (require_num "workload" w)
            [ "events"; "objects"; "encoded_bytes"; "top_heap_words" ];
          (match Json.member "load" w with
          | Some l -> List.iter (require_num "load" l) [ "seconds"; "events_per_sec" ]
          | None -> check "workload.load" false);
          (match Json.member "sequential" w with
          | Some s -> (
              List.iter (require_num "sequential" s)
                [ "jobs"; "wall_seconds"; "events_per_sec" ];
              match Json.member "backends" s with
              | Some (Json.List (_ :: _ as bs)) ->
                  List.iter
                    (fun b ->
                      require_str "backend" b "backend";
                      List.iter (require_num "backend" b)
                        [ "seconds"; "events_per_sec" ])
                    bs
              | _ -> check "sequential.backends (non-empty)" false)
          | None -> check "workload.sequential" false);
          (match Json.member "parallel" w with
          | Some p ->
              List.iter (require_num "parallel" p)
                [ "domains"; "wall_seconds"; "speedup_vs_sequential" ]
          | None -> check "workload.parallel" false);
          (if version >= 2 then
             match Json.member "streamed" w with
             | Some s ->
                 List.iter (require_num "streamed" s)
                   [ "jobs"; "wall_seconds"; "events_per_sec"; "peak_words_delta" ]
             | None -> check "workload.streamed" false);
          (if version >= 3 then
             match Json.member "sharded" w with
             | Some s ->
                 List.iter (require_num "sharded" s)
                   [
                     "chunk_events";
                     "chunks";
                     "sequential_seconds";
                     "parallel_seconds";
                     "speedup_vs_sequential";
                   ]
             | None -> check "workload.sharded" false);
          (if version >= 5 then
             match Json.member "tune" w with
             | Some t ->
                 List.iter (require_num "tune" t)
                   [
                     "sweep_specs";
                     "prepared_seconds";
                     "decode_per_candidate_seconds";
                     "speedup_vs_decode_per_candidate";
                     "candidates";
                     "candidates_per_sec";
                     "pareto_size";
                   ]
             | None -> check "workload.tune" false);
          (if version >= 6 then
             match Json.member "online" w with
             | Some o ->
                 List.iter (require_num "online" o)
                   [
                     "seconds";
                     "events_per_sec";
                     "predictions";
                     "mispredicts_short_lived";
                     "mispredicts_long_lived";
                   ]
             | None -> check "workload.online" false);
          (* the realloc phase is per-trace optional (realloc-free
             workloads omit it) but a v4 file must exhibit it somewhere *)
          match Json.member "realloc" w with
          | Some r -> (
              saw_realloc_phase := true;
              require_num "realloc" r "events";
              match Json.member "backends" r with
              | Some (Json.List (_ :: _ as bs)) ->
                  List.iter
                    (fun b ->
                      require_str "realloc backend" b "backend";
                      List.iter (require_num "realloc backend" b)
                        [ "reallocs"; "in_place"; "moves" ])
                    bs
              | _ -> check "realloc.backends (non-empty)" false)
          | None -> ())
        ws
  | _ -> check "workloads (non-empty list)" false);
  if version >= 4 && not !saw_realloc_phase then
    check "a realloc phase on at least one workload (v4)" false;
  (if version >= 2 then
     match Json.member "counters" j with
     | Some c ->
         List.iter (require_num "counters" c)
           [ "trace.events_streamed"; "trace.peak_resident_words" ]
     | None -> check "counters" false);
  (match Json.member "timings" j with
  | Some (Json.List _) -> ()
  | _ -> check "timings (list)" false);
  (match Json.member "gc" j with
  | Some g -> require_num "gc" g "top_heap_words"
  | None -> check "gc" false);
  if !validate_error > 0 then exit 1
  else Printf.printf "%s: valid lpbench schema v%d\n" path version

(* -- CLI ------------------------------------------------------------------------- *)

let () =
  (* before anything touches the domain pool: a malformed LPALLOC_DOMAINS
     is a usage error, not an excuse for a default *)
  (match Lifetime.Parallel.check_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "lpbench: %s\n" msg;
      exit 2);
  let workloads_arg =
    Arg.(
      value
      & opt (list string) Lp_workloads.Registry.names
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:"Comma-separated workload programs to benchmark (default: all six).")
  in
  let input_arg =
    Arg.(
      value & opt string "test"
      & info [ "input" ] ~docv:"INPUT" ~doc:"Input set: tiny, train or test.")
  in
  let scale_arg =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"S" ~doc:"Scale factor for workload input sizes.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Repetitions per timed phase; the best (minimum) wall time is kept.")
  in
  let rev_arg =
    Arg.(
      value & opt string "dev"
      & info [ "rev" ] ~docv:"REV"
          ~doc:"Revision label: the output file is BENCH_$(docv).json.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report here instead of BENCH_<rev>.json.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (Lifetime.Parallel.default_domains ())
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domains for the parallel-replay phase (default: the Parallel pool size).")
  in
  let allocators_arg =
    Arg.(
      value
      & opt (list string) (Lp_allocsim.Registry.names ())
      & info [ "allocators" ] ~docv:"NAMES"
          ~doc:"Registry backends to replay (default: every registered backend).")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Validate $(docv) against the BENCH JSON schema and exit (0 valid, \
             1 invalid); no benchmarks run.")
  in
  let main validate rev out workloads input scale repeat domains allocators =
    match validate with
    | Some path -> validate_file path
    | None -> run_bench rev out workloads input scale repeat domains allocators
  in
  let term =
    Term.(
      const main $ validate_arg $ rev_arg $ out_arg $ workloads_arg $ input_arg
      $ scale_arg $ repeat_arg $ domains_arg $ allocators_arg)
  in
  let info =
    Cmd.info "lpbench" ~version:"1.0.0"
      ~doc:
        "Benchmark the trace pipeline and allocator simulators; write \
         machine-readable BENCH_<rev>.json"
  in
  exit (Cmd.eval (Cmd.v info term))
