(* lpalloc: command-line interface to the lifetime-prediction library.

   Subcommands:
     list                           the built-in workload programs
     trace    -p PROG -i INPUT      run a workload, write its trace (text)
     stats    FILE                  statistics of a trace file (Table 2 row)
     lifetimes FILE                 lifetime quartiles of a trace (Table 3 row)
     train    FILE                  train a predictor, show its sites
     evaluate --train A --test B    self/true prediction quality (Table 4 row)
     simulate --train A --test B    first-fit vs BSD vs arena (Tables 7-9)  *)

open Cmdliner

(* Auto-detects binary (.lpt) vs text traces by their magic bytes. *)
let read_trace path = Lp_trace.Io.read_file path

let timings_arg =
  let doc =
    "Record per-stage wall-clock timings (trace load/store, replay per \
     allocator) and event counters; print the aggregate table to stderr on \
     exit.  Also enables debug logging on the lpalloc.obs source."
  in
  Arg.(value & flag & info [ "timings" ] ~doc)

let with_timings enabled f =
  if enabled then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug);
    Lp_obs.Timings.set_enabled true
  end;
  let r = f () in
  if enabled then Format.eprintf "%a@?" Lp_obs.Timings.pp_report ();
  r

let scale_arg =
  let doc = "Scale factor for workload input sizes (0 < S <= 1)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let threshold_arg =
  let doc = "Short-lived threshold in bytes (the paper uses 32768)." in
  Arg.(value & opt int 32768 & info [ "threshold" ] ~docv:"BYTES" ~doc)

(* -- list ---------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (p : Lp_workloads.Registry.program) ->
        Printf.printf "%-9s %s\n          inputs: tiny, train, test. %s\n" p.name
          p.description p.input_notes)
      Lp_workloads.Registry.programs
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in workload programs")
    Term.(const run $ const ())

(* -- trace --------------------------------------------------------------------- *)

let trace_cmd =
  let program =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "program" ] ~docv:"PROG" ~doc:"Workload program name.")
  in
  let input =
    Arg.(
      value & opt string "test"
      & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input set: tiny, train or test.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace here (default stdout).")
  in
  let format =
    let fmt_conv =
      Arg.enum [ ("auto", None); ("text", Some Lp_trace.Io.Text); ("binary", Some Lp_trace.Io.Binary) ]
    in
    Arg.(
      value & opt fmt_conv None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Trace format: $(b,text), $(b,binary), or $(b,auto) (the default: \
             binary for .lpt files, text otherwise and on stdout).")
  in
  let run program input output format scale timings =
    with_timings timings (fun () ->
        let trace = Lp_workloads.Registry.trace ~scale ~program ~input () in
        match output with
        | Some path ->
            Lp_trace.Io.write_file ?format path trace;
            Printf.printf "wrote %d events (%d objects) to %s\n"
              (Array.length trace.events) trace.n_objects path
        | None ->
            let format = Option.value format ~default:Lp_trace.Io.Text in
            if format = Lp_trace.Io.Binary then set_binary_mode_out stdout true;
            Lp_trace.Io.output ~format stdout trace)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a workload and emit its allocation trace")
    Term.(const run $ program $ input $ output $ format $ scale_arg $ timings_arg)

(* -- stats --------------------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let json_arg =
  let doc = "Emit machine-readable JSON instead of the human-readable report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_cmd =
  let run path json timings =
    with_timings timings (fun () ->
        let trace = read_trace path in
        let s = Lp_trace.Stats.compute trace in
        if json then
          Printf.printf
            "{\"program\":%S,\"input\":%S,\"instructions\":%d,\"calls\":%d,\
             \"total_bytes\":%d,\"total_objects\":%d,\"max_bytes\":%d,\
             \"max_objects\":%d,\"heap_ref_pct\":%.6g,\"distinct_chains\":%d,\
             \"mean_object_size\":%.6g}\n"
            s.program s.input s.instructions s.calls s.total_bytes
            s.total_objects s.max_bytes s.max_objects s.heap_ref_pct
            s.distinct_chains s.mean_object_size
        else Format.printf "%a@." Lp_trace.Stats.pp s)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Execution statistics of a trace (cf. Table 2)")
    Term.(const run $ file_arg $ json_arg $ timings_arg)

let lifetimes_cmd =
  let run path threshold timings =
    with_timings timings @@ fun () ->
    let trace = read_trace path in
    let lifetimes = Lp_trace.Lifetimes.compute trace in
    let hist = Lp_quantile.Histogram.create () in
    let short = ref 0 and total = ref 0 in
    Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain:_ ~key:_ ~tag:_ ->
        Lp_quantile.Histogram.observe_weighted hist ~weight:size
          (float_of_int lifetimes.lifetime.(obj));
        total := !total + size;
        if Lp_trace.Lifetimes.is_short_lived lifetimes ~threshold obj then
          short := !short + size);
    let q = Lp_quantile.Histogram.quartiles hist in
    Format.printf "byte-weighted lifetime quartiles: %a@."
      Lp_quantile.Histogram.pp_quartiles q;
    Printf.printf "short-lived (< %d bytes): %.1f%% of bytes\n" threshold
      (100. *. float_of_int !short /. float_of_int (max 1 !total))
  in
  Cmd.v
    (Cmd.info "lifetimes" ~doc:"Lifetime distribution of a trace (cf. Table 3)")
    Term.(const run $ file_arg $ threshold_arg $ timings_arg)

(* -- train ---------------------------------------------------------------------- *)

let train_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every predictor site.")
  in
  let run path threshold verbose timings =
    with_timings timings @@ fun () ->
    let trace = read_trace path in
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let table = Lifetime.Train.collect ~config trace in
    let predictor = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
    Printf.printf "%d allocation sites, %d predictor (all-short) sites\n"
      (Lifetime.Train.total_sites table)
      (Lifetime.Predictor.size predictor);
    if verbose then
      Lifetime.Predictor.iter_keys predictor (fun key ->
          print_endline ("  " ^ Lifetime.Portable.to_string key))
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a short-lived-site predictor from a trace")
    Term.(const run $ file_arg $ threshold_arg $ verbose $ timings_arg)

(* -- evaluate ------------------------------------------------------------------- *)

let train_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "train" ] ~docv:"FILE" ~doc:"Training trace.")

let test_file =
  Arg.(
    required & opt (some file) None & info [ "test" ] ~docv:"FILE" ~doc:"Test trace.")

let evaluate_cmd =
  let run train_path test_path threshold timings =
    with_timings timings @@ fun () ->
    let train = read_trace train_path in
    let test = read_trace test_path in
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
    Printf.printf "test sites:            %d\n" e.total_sites;
    Printf.printf "predictor sites used:  %d\n" e.sites_used;
    Printf.printf "actual short-lived:    %.1f%% of bytes\n"
      (Lifetime.Evaluate.actual_short_pct e);
    Printf.printf "predicted short-lived: %.1f%% of bytes\n"
      (Lifetime.Evaluate.predicted_pct e);
    Printf.printf "error bytes:           %.2f%%\n" (Lifetime.Evaluate.error_pct e);
    Printf.printf "new-ref share:         %.1f%% of heap references\n"
      (Lifetime.Evaluate.new_ref_pct e)
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Evaluate prediction quality of a trained predictor (cf. Table 4)")
    Term.(const run $ train_file $ test_file $ threshold_arg $ timings_arg)

(* -- simulate ------------------------------------------------------------------- *)

let simulate_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domains for the parallel allocator replays (default: up to 8, per \
             the machine; 1 forces the sequential order; the LPALLOC_DOMAINS \
             environment variable sets the same knob globally).")
  in
  let allocators =
    let doc =
      "Comma-separated allocator backends to replay, by registry name or \
       alias: $(b,first-fit)/$(b,ff), $(b,best-fit)/$(b,bf), $(b,bsd), \
       $(b,segfit)/$(b,seg), $(b,arena).  A predicting backend (arena) \
       reports both prediction pricings, as $(i,name) and $(i,name)-cce."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "allocators" ] ~docv:"NAMES" ~doc)
  in
  let run train_path test_path threshold allocators json domains timings =
    with_timings timings @@ fun () ->
    (match domains with Some n -> Lifetime.Parallel.set_domains n | None -> ());
    (match allocators with
    | None -> ()
    | Some names ->
        List.iter
          (fun n ->
            if not (Lp_allocsim.Registry.mem n) then begin
              Printf.eprintf "unknown allocator %S (known: %s)\n" n
                (String.concat ", " (Lp_allocsim.Registry.names ()));
              exit 2
            end)
          names);
    let train = read_trace train_path in
    let test = read_trace test_path in
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let table = Lifetime.Train.collect ~config train in
    let predictor = Lifetime.Predictor.build ~config ~funcs:train.funcs table in
    let sim = Lifetime.Simulate.run ?allocators ~config ~predictor ~test () in
    if json then
      print_string
        ("{"
        ^ String.concat ","
            (List.map
               (fun name ->
                 Printf.sprintf "%S:%s" name
                   (Lp_allocsim.Metrics.to_json (Lifetime.Simulate.metrics sim name)))
               (Lifetime.Simulate.names sim))
        ^ "}\n")
    else
      Lifetime.Simulate.names sim
      |> List.iteri (fun i name ->
             if i > 0 then print_newline ();
             Format.printf "%a@." Lp_allocsim.Metrics.pp
               (Lifetime.Simulate.metrics sim name))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Replay a test trace through a set of registry allocator backends — \
          by default first-fit, BSD and the lifetime-predicting arena — in \
          parallel across OCaml domains (cf. Tables 7-9)")
    Term.(
      const run $ train_file $ test_file $ threshold_arg $ allocators $ json_arg
      $ domains $ timings_arg)

let () =
  let doc =
    "lifetime-predicting memory allocation (reproduction of Barrett & Zorn, PLDI \
     1993)"
  in
  let info = Cmd.info "lpalloc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; trace_cmd; stats_cmd; lifetimes_cmd; train_cmd; evaluate_cmd;
            simulate_cmd;
          ]))
