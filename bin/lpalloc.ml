(* lpalloc: command-line interface to the lifetime-prediction library.

   Subcommands:
     list                           the built-in workload programs
     trace    -p PROG -i INPUT      run a workload, write its trace (text)
     convert  FILE -o OUT           convert/tile a trace; --v3 writes sharded
     stats    FILE                  statistics of a trace file (Table 2 row)
     lifetimes FILE                 lifetime quartiles of a trace (Table 3 row)
     train    FILE                  train a predictor, show its sites
     evaluate --train A --test B    self/true prediction quality (Table 4 row)
     simulate --train A --test B    first-fit vs BSD vs arena (Tables 7-9)
     tune     --train A --test B    design-space search over allocator
                                    parameters; Pareto front + baselines
     lint     FILE                  statically check a trace or model file
     audit    TRACE [--model M]     chain-collision / coverage / live-interval
                                    analyses over a trace and its model  *)

open Cmdliner

(* Every subcommand follows lint's exit-code contract: 0 on success (for
   lint: no error-severity diagnostic), 1 for errors found in otherwise
   well-formed input (lint errors, sanitizer violations), 2 for usage and
   I/O errors (bad flags, missing arguments, unreadable or malformed
   files).  [io_guard] maps the loader exceptions onto the last class. *)
let io_guard f =
  try f ()
  with Failure msg | Sys_error msg ->
    Printf.eprintf "lpalloc: %s\n" msg;
    exit 2

(* Auto-detects binary (.lpt) vs text traces by their magic bytes. *)
let read_trace path = io_guard (fun () -> Lp_trace.Io.read_file path)

let timings_arg =
  let doc =
    "Record per-stage wall-clock timings (trace load/store, replay per \
     allocator) and event counters; print the aggregate table to stderr on \
     exit.  Also enables debug logging on the lpalloc.obs source."
  in
  Arg.(value & flag & info [ "timings" ] ~doc)

let with_timings enabled f =
  if enabled then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug);
    Lp_obs.Timings.set_enabled true
  end;
  let r = f () in
  if enabled then Format.eprintf "%a@?" Lp_obs.Timings.pp_report ();
  r

let scale_arg =
  let doc = "Scale factor for workload input sizes (0 < S <= 1)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let stream_arg =
  let doc =
    "Stream the trace file in a single bounded-memory pass instead of \
     materializing the event array: binary $(b,.lpt) files decode \
     incrementally over a read-only memory map, text traces parse \
     line-at-a-time.  Results are byte-identical to the materialized path; \
     peak memory is bounded by the live-object population instead of the \
     trace length."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let threshold_arg =
  let doc = "Short-lived threshold in bytes (the paper uses 32768)." in
  Arg.(value & opt int 32768 & info [ "threshold" ] ~docv:"BYTES" ~doc)

let sharded_arg =
  let doc =
    "Replay the trace range-parallel across OCaml domains.  The file must \
     be a sharded binary trace ($(b,.lpt) version 3, written by $(b,lpalloc \
     convert --v3)); its chunk index fans out over the domain pool \
     (LPALLOC_DOMAINS, default up to 8) and the deterministic merge makes \
     the output byte-identical to $(b,--stream).  Implies bounded-memory \
     streaming."
  in
  Arg.(value & flag & info [ "sharded" ] ~doc)

let load_sharded path =
  try Lp_trace.Sharded.load path
  with Failure msg ->
    Printf.eprintf "lpalloc: %s\n" msg;
    exit 2

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the parallel replays (default: up to 8, per the \
           machine; 1 forces the sequential order; the LPALLOC_DOMAINS \
           environment variable sets the same knob globally).")

let set_domains domains =
  match domains with Some n -> Lifetime.Parallel.set_domains n | None -> ()

(* -- list ---------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (p : Lp_workloads.Registry.program) ->
        Printf.printf "%-9s %s\n          inputs: tiny, train, test. %s\n" p.name
          p.description p.input_notes)
      Lp_workloads.Registry.programs
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in workload programs")
    Term.(const run $ const ())

(* -- trace --------------------------------------------------------------------- *)

let trace_cmd =
  let program =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "program" ] ~docv:"PROG" ~doc:"Workload program name.")
  in
  let input =
    Arg.(
      value & opt string "test"
      & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input set: tiny, train or test.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace here (default stdout).")
  in
  let format =
    let fmt_conv =
      Arg.enum [ ("auto", None); ("text", Some Lp_trace.Io.Text); ("binary", Some Lp_trace.Io.Binary) ]
    in
    Arg.(
      value & opt fmt_conv None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Trace format: $(b,text), $(b,binary), or $(b,auto) (the default: \
             binary for .lpt files, text otherwise and on stdout).")
  in
  let run program input output format scale timings =
    with_timings timings (fun () ->
        let trace = Lp_workloads.Registry.trace ~scale ~program ~input () in
        match output with
        | Some path ->
            Lp_trace.Io.write_file ?format path trace;
            Printf.printf "wrote %d events (%d objects) to %s\n"
              (Array.length trace.events) trace.n_objects path
        | None ->
            let format = Option.value format ~default:Lp_trace.Io.Text in
            if format = Lp_trace.Io.Binary then set_binary_mode_out stdout true;
            Lp_trace.Io.output ~format stdout trace)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a workload and emit its allocation trace")
    Term.(const run $ program $ input $ output $ format $ scale_arg $ timings_arg)

(* -- stats --------------------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let json_arg =
  let doc = "Emit machine-readable JSON instead of the human-readable report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_cmd =
  let run path json stream sharded domains timings =
    with_timings timings (fun () ->
        set_domains domains;
        let s =
          if sharded then Lifetime.Shard.stats (load_sharded path)
          else if stream then
            io_guard (fun () ->
                Lp_trace.Stats.compute_source (Lp_trace.Source.of_file path))
          else Lp_trace.Stats.compute (read_trace path)
        in
        if json then
          Printf.printf
            "{\"program\":%S,\"input\":%S,\"instructions\":%d,\"calls\":%d,\
             \"total_bytes\":%d,\"total_objects\":%d,\"max_bytes\":%d,\
             \"max_objects\":%d,\"heap_ref_pct\":%.6g,\"distinct_chains\":%d,\
             \"mean_object_size\":%.6g}\n"
            s.program s.input s.instructions s.calls s.total_bytes
            s.total_objects s.max_bytes s.max_objects s.heap_ref_pct
            s.distinct_chains s.mean_object_size
        else Format.printf "%a@." Lp_trace.Stats.pp s)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Execution statistics of a trace (cf. Table 2)")
    Term.(
      const run $ file_arg $ json_arg $ stream_arg $ sharded_arg $ domains_arg
      $ timings_arg)

let lifetimes_cmd =
  let run path threshold stream sharded domains timings =
    with_timings timings @@ fun () ->
    set_domains domains;
    let hist, short, total =
      if sharded then
        let s = Lifetime.Shard.lifetimes ~threshold (load_sharded path) in
        (s.Lp_trace.Lifetimes.hist, s.short_bytes, s.total_alloc_bytes)
      else if stream then
        let s =
          io_guard (fun () ->
              Lp_trace.Lifetimes.summary_source ~threshold
                (Lp_trace.Source.of_file path))
        in
        (s.hist, s.short_bytes, s.total_alloc_bytes)
      else begin
        let trace = read_trace path in
        let lifetimes = Lp_trace.Lifetimes.compute trace in
        let hist = Lp_quantile.Histogram.create () in
        let short = ref 0 and total = ref 0 in
        Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain:_ ~key:_ ~tag:_ ->
            Lp_quantile.Histogram.observe_weighted hist ~weight:size
              (float_of_int lifetimes.lifetime.(obj));
            total := !total + size;
            if Lp_trace.Lifetimes.is_short_lived lifetimes ~threshold obj then
              short := !short + size);
        (hist, !short, !total)
      end
    in
    let q = Lp_quantile.Histogram.quartiles hist in
    Format.printf "byte-weighted lifetime quartiles: %a@."
      Lp_quantile.Histogram.pp_quartiles q;
    Printf.printf "short-lived (< %d bytes): %.1f%% of bytes\n" threshold
      (100. *. float_of_int short /. float_of_int (max 1 total))
  in
  Cmd.v
    (Cmd.info "lifetimes" ~doc:"Lifetime distribution of a trace (cf. Table 3)")
    Term.(
      const run $ file_arg $ threshold_arg $ stream_arg $ sharded_arg
      $ domains_arg $ timings_arg)

(* -- train ---------------------------------------------------------------------- *)

let train_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every predictor site.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Write the trained predictor as a portable model file: the \
             accepted keys plus per-key training statistics, checkable with \
             $(b,lpalloc lint).")
  in
  let run path threshold verbose save stream sharded domains timings =
    with_timings timings @@ fun () ->
    set_domains domains;
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let program, funcs, clock, table =
      if sharded then begin
        let sh = load_sharded path in
        let st = Lifetime.Shard.train ~config sh in
        ( (Lp_trace.Sharded.header sh).Lp_trace.Binio.program,
          Lp_trace.Binio.indexed_funcs (Lp_trace.Sharded.index sh),
          st.Lifetime.Train.end_clock,
          st.Lifetime.Train.table )
      end
      else if stream then begin
        let src = io_guard (fun () -> Lp_trace.Source.of_file path) in
        let st = io_guard (fun () -> Lifetime.Train.collect_source ~config src) in
        ( src.Lp_trace.Source.program,
          src.Lp_trace.Source.funcs (),
          st.Lifetime.Train.end_clock,
          st.Lifetime.Train.table )
      end
      else
        let trace = read_trace path in
        ( trace.program,
          trace.funcs,
          Lp_trace.Trace.total_bytes trace,
          Lifetime.Train.collect ~config trace )
    in
    let predictor = Lifetime.Predictor.build ~config ~funcs table in
    Printf.printf "%d allocation sites, %d predictor (all-short) sites\n"
      (Lifetime.Train.total_sites table)
      (Lifetime.Predictor.size predictor);
    if verbose then
      Lifetime.Predictor.iter_keys predictor (fun key ->
          print_endline ("  " ^ Lifetime.Portable.to_string key));
    match save with
    | None -> ()
    | Some out ->
        let model =
          Lifetime.Model.of_training_parts ~config ~program ~funcs ~clock table
            predictor
        in
        Lifetime.Model.save out model;
        Printf.printf "wrote model (%d keys, %d predicted) to %s\n"
          (List.length model.entries)
          (List.length
             (List.filter (fun e -> e.Lifetime.Model.predicted) model.entries))
          out
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a short-lived-site predictor from a trace")
    Term.(
      const run $ file_arg $ threshold_arg $ verbose $ save $ stream_arg
      $ sharded_arg $ domains_arg $ timings_arg)

(* -- evaluate ------------------------------------------------------------------- *)

let train_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "train" ] ~docv:"FILE" ~doc:"Training trace.")

let test_file =
  Arg.(
    required & opt (some file) None & info [ "test" ] ~docv:"FILE" ~doc:"Test trace.")

let evaluate_cmd =
  let run train_path test_path threshold timings =
    with_timings timings @@ fun () ->
    let train = read_trace train_path in
    let test = read_trace test_path in
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
    Printf.printf "test sites:            %d\n" e.total_sites;
    Printf.printf "predictor sites used:  %d\n" e.sites_used;
    Printf.printf "actual short-lived:    %.1f%% of bytes\n"
      (Lifetime.Evaluate.actual_short_pct e);
    Printf.printf "predicted short-lived: %.1f%% of bytes\n"
      (Lifetime.Evaluate.predicted_pct e);
    Printf.printf "error bytes:           %.2f%%\n" (Lifetime.Evaluate.error_pct e);
    Printf.printf "new-ref share:         %.1f%% of heap references\n"
      (Lifetime.Evaluate.new_ref_pct e)
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Evaluate prediction quality of a trained predictor (cf. Table 4)")
    Term.(const run $ train_file $ test_file $ threshold_arg $ timings_arg)

(* -- simulate ------------------------------------------------------------------- *)

(* Shared by simulate and audit: parse an oracle spec with the same
   exit-2 contract as allocator specs. *)
let oracle_spec_of ~cmd spec =
  match Lifetime.Oracle.spec_of_string spec with
  | Ok s -> s
  | Error msg ->
      Printf.eprintf "lpalloc %s: %s\n" cmd msg;
      exit 2

let oracle_arg ~cmd =
  let doc =
    Printf.sprintf
      "Lifetime oracle answering \"will this allocation die young?\": \
       $(b,static) (the default) uses the site database trained offline \
       from $(b,--train); \
       $(b,online:window=N:promote=K:demote=K:threshold=B) predicts with \
       no profile run, promoting a site once its last $(i,window) \
       outcomes (at least $(i,promote) of them) were all short-lived and \
       demoting it after $(i,demote) consecutive long-lived outcomes.  \
       ',' is accepted between parameters too; every parameter is \
       optional; a malformed spec is a usage error (exit 2).  See the \
       README's Oracles section for the grammar.%s"
      (match cmd with
      | "simulate" ->
          "  With $(b,online), $(b,--train) is not needed and is ignored."
      | "audit" ->
          "  For the audit, $(b,online) arms the \
           $(b,coverage-online-cold) rule: keys with member sites the \
           trace exercises fewer than $(i,promote) times would never \
           leave the online oracle's cold-start window."
      | _ -> "")
  in
  Arg.(value & opt string "static" & info [ "oracle" ] ~docv:"SPEC" ~doc)

let simulate_cmd =
  let decode_ahead =
    Arg.(
      value & flag
      & info [ "decode-ahead" ]
          ~doc:
            "With $(b,--stream): decode each replay's trace on a second \
             domain running ahead of the simulation (a two-stage pipeline \
             per job).  Metrics are identical; it pays off when replay jobs \
             are few relative to cores.")
  in
  let allocators =
    let doc =
      "Comma-separated allocator backends to replay, by registry name or \
       alias: $(b,first-fit)/$(b,ff), $(b,best-fit)/$(b,bf), $(b,bsd), \
       $(b,segfit)/$(b,seg), $(b,arena).  A predicting backend (arena) \
       reports both prediction pricings, as $(i,name) and $(i,name)-cce.  \
       Names may carry parameters as $(i,name:key=value:...) — e.g. \
       $(b,segfit:slab=16+64+256), $(b,arena:n=8:chunk=8192) — see the \
       README's tuning section for the grammar; a malformed spec is a \
       usage error (exit 2)."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "allocators" ] ~docv:"NAMES" ~doc)
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Replay every backend under the shadow-heap sanitizer, which \
             mirrors placements into a shadow interval map and aborts on \
             overlapping live blocks, frees at unmapped addresses, or \
             arena-boundary violations (exit 1, with the diagnostic on \
             stderr).  A clean sanitized replay produces byte-identical \
             metrics.")
  in
  let train_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "train" ] ~docv:"FILE"
          ~doc:
            "Training trace (required by $(b,--oracle static), ignored by \
             $(b,--oracle online)).")
  in
  let run train_path test_path threshold oracle_spec allocators json domains
      sanitize stream decode_ahead timings =
    with_timings timings @@ fun () ->
    set_domains domains;
    let spec = oracle_spec_of ~cmd:"simulate" oracle_spec in
    (match allocators with
    | None -> ()
    | Some names ->
        (* full spec validation up front — a bad parameter is a usage
           error (exit 2), not a mid-replay failure *)
        List.iter
          (fun n ->
            match Lp_allocsim.Registry.backend_of_spec n with
            | Ok _ -> ()
            | Error msg ->
                Printf.eprintf "lpalloc simulate: %s\n" msg;
                exit 2)
          names);
    let config = { Lifetime.Config.default with short_lived_threshold = threshold } in
    let predictor =
      (* the static oracle is the trained database; online trains itself
         mid-replay and needs no profile run *)
      match spec with
      | Lifetime.Oracle.Spec_online _ -> None
      | Lifetime.Oracle.Spec_static -> (
          match train_path with
          | None ->
              Printf.eprintf
                "lpalloc simulate: --oracle static needs a training trace \
                 (--train FILE)\n";
              exit 2
          | Some train_path ->
              Some
                (if stream then begin
                   let src =
                     io_guard (fun () -> Lp_trace.Source.of_file train_path)
                   in
                   let st =
                     io_guard (fun () ->
                         Lifetime.Train.collect_source ~config src)
                   in
                   Lifetime.Predictor.build ~config
                     ~funcs:(src.Lp_trace.Source.funcs ())
                     st.Lifetime.Train.table
                 end
                 else
                   let train = read_trace train_path in
                   let table = Lifetime.Train.collect ~config train in
                   Lifetime.Predictor.build ~config ~funcs:train.funcs table))
    in
    let oracle =
      match Lifetime.Oracle.of_spec ~config ?predictor spec with
      | Ok o -> o
      | Error msg ->
          Printf.eprintf "lpalloc simulate: %s\n" msg;
          exit 2
    in
    let wrap =
      if sanitize then
        let arena_config = Lifetime.Config.arena_config config in
        Some (fun b -> Lp_analysis.Sanitize.for_backend ~arena_config b)
      else None
    in
    let sim =
      io_guard @@ fun () ->
      try
        if stream then
          Lifetime.Simulate.run_streamed ?allocators ?wrap ~decode_ahead
            ~config ~oracle
            ~source:(fun () -> Lp_trace.Source.of_file test_path)
            ()
        else
          let test = read_trace test_path in
          Lifetime.Simulate.run ?allocators ?wrap ~config ~oracle ~test ()
      with Lp_analysis.Sanitize.Violation d ->
        Format.eprintf "%a@." (Lp_analysis.Diagnostic.pp ~source:test_path) d;
        exit 1
    in
    if json then
      print_string
        ("{"
        ^ String.concat ","
            (List.map
               (fun name ->
                 Printf.sprintf "%S:%s" name
                   (Lp_allocsim.Metrics.to_json (Lifetime.Simulate.metrics sim name)))
               (Lifetime.Simulate.names sim))
        ^ "}\n")
    else
      Lifetime.Simulate.names sim
      |> List.iteri (fun i name ->
             if i > 0 then print_newline ();
             Format.printf "%a@." Lp_allocsim.Metrics.pp
               (Lifetime.Simulate.metrics sim name))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Replay a test trace through a set of registry allocator backends — \
          by default first-fit, BSD and the lifetime-predicting arena — in \
          parallel across OCaml domains (cf. Tables 7-9)")
    Term.(
      const run $ train_file $ test_file $ threshold_arg
      $ oracle_arg ~cmd:"simulate" $ allocators $ json_arg $ domains_arg
      $ sanitize $ stream_arg $ decode_ahead $ timings_arg)

(* -- tune ------------------------------------------------------------------------- *)

let tune_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Search seed.  The whole run is a pure function of the seed and \
             the traces: grid order, mutations, Pareto front and JSON output \
             are byte-identical for a fixed seed at any $(b,--domains) \
             setting.")
  in
  let generations =
    Arg.(
      value & opt int 4
      & info [ "generations" ] ~docv:"N"
          ~doc:"Evolutionary refinement rounds after the seed grid.")
  in
  let population =
    Arg.(
      value & opt int 16
      & info [ "population" ] ~docv:"N"
          ~doc:"Fresh mutated candidates per generation.")
  in
  let max_candidates =
    Arg.(
      value & opt int 512
      & info [ "max-candidates" ] ~docv:"N"
          ~doc:"Hard cap on total candidate evaluations.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Workload label in the output (default: the test trace's \
             basename).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Also write the outcome JSON here.  The file is byte-identical \
             for a fixed seed regardless of the domain count — the golden \
             determinism artifact.")
  in
  let format =
    Arg.(
      value
      & opt
          (Arg.enum [ ("text", `Text); ("json", `Json); ("markdown", `Markdown) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output on stdout: $(b,text) (Pareto table), $(b,json) (the full \
             outcome), or $(b,markdown) (the EXPERIMENTS best-config rows).")
  in
  let run train_path test_path seed generations population max_candidates
      workload out format domains timings =
    with_timings timings @@ fun () ->
    set_domains domains;
    if generations < 0 then begin
      Printf.eprintf "lpalloc tune: --generations must be >= 0\n";
      exit 2
    end;
    if population < 1 then begin
      Printf.eprintf "lpalloc tune: --population must be positive\n";
      exit 2
    end;
    if max_candidates < 1 then begin
      Printf.eprintf "lpalloc tune: --max-candidates must be positive\n";
      exit 2
    end;
    (* counters run even without --timings: the outcome embeds the decode
       and validation counts that prove the decode-once/replay-many
       contract (both are deterministic, unlike the per-domain pool
       counters, so they are safe in the golden artifact) *)
    let counters_were_on = Lp_obs.Timings.enabled () in
    Lp_obs.Timings.set_enabled true;
    let train = read_trace train_path in
    let test = read_trace test_path in
    let workload =
      match workload with
      | Some w -> w
      | None -> Filename.remove_extension (Filename.basename test_path)
    in
    let options = { Lifetime.Tune.seed; generations; population; max_candidates } in
    let outcome =
      io_guard (fun () -> Lifetime.Tune.search ~options ~workload ~train ~test ())
    in
    let engine =
      List.filter
        (fun (k, _) -> k = "trace.decodes" || k = "replay.validations")
        (Lp_obs.Timings.counters ())
    in
    if not counters_were_on then Lp_obs.Timings.set_enabled false;
    let json = Lifetime.Tune.json_of_outcome ~engine outcome in
    (match out with
    | None -> ()
    | Some path ->
        io_guard (fun () ->
            Out_channel.with_open_bin path (fun oc ->
                output_string oc (Lp_report.Json.to_pretty_string json))));
    match format with
    | `Json -> print_string (Lp_report.Json.to_pretty_string json)
    | `Markdown ->
        print_string (Lifetime.Tune.markdown_header ^ Lifetime.Tune.markdown_rows outcome)
    | `Text ->
        Printf.printf "workload %s: %d candidates evaluated, %d on the Pareto front\n"
          workload
          (List.length outcome.Lifetime.Tune.results)
          (List.length outcome.Lifetime.Tune.pareto);
        List.iter (fun (k, v) -> Printf.printf "  %s = %d\n" k v) engine;
        print_string (Lifetime.Tune.table_of_outcome outcome)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Search the allocator design space instead of evaluating the paper's \
         fixed points: a deterministic seeded grid over backend parameters \
         (sbrk chunk, segfit slab ladder, arena geometry and fallback, \
         predictor chain depth 1-8, short-lived threshold) followed by \
         evolutionary refinement of the Pareto front.  Every candidate \
         replays the same prepared test trace — decoded and validated \
         exactly once — in parallel across OCaml domains; the emitted \
         $(b,trace.decodes) and $(b,replay.validations) counters prove it.";
      `P
        "The report is the Pareto front minimizing (simulated instructions, \
         heap high-water) plus the paper's fixed baselines (first-fit, bsd, \
         arena at length-4 and CCE pricing) for reference.";
    ]
  in
  Cmd.v
    (Cmd.info "tune" ~man
       ~doc:
         "Search allocator parameters with a seeded grid plus evolutionary \
          refinement, replaying one prepared trace per workload")
    Term.(
      const run $ train_file $ test_file $ seed $ generations $ population
      $ max_candidates $ workload $ out $ format $ domains_arg $ timings_arg)

(* -- convert ---------------------------------------------------------------------- *)

let convert_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the converted trace here.")
  in
  let v3 =
    Arg.(
      value & flag
      & info [ "v3" ]
          ~doc:
            "Write the sharded binary layout ($(b,.lpt) version 3): the event \
             stream split into fixed-size chunks with per-chunk interning \
             deltas and carry-in sets plus a footer index, so the file seeks \
             in O(1) and replays range-parallel ($(b,--sharded) elsewhere).  \
             Converting v2 to v3 and back is byte-identical.")
  in
  let chunk_events =
    Arg.(
      value
      & opt int Lp_trace.Binio.default_chunk_events
      & info [ "chunk-events" ] ~docv:"N"
          ~doc:
            "Events per chunk of the sharded layout (with $(b,--v3); default \
             $(b,262144)).  Smaller chunks seek finer and give short traces \
             enough chunks to spread over the domain pool; larger chunks \
             delta-compress better.  A trace replays well sharded when it \
             has at least a few chunks per domain.")
  in
  let tile =
    Arg.(
      value & opt int 1
      & info [ "tile" ] ~docv:"N"
          ~doc:
            "Concatenate $(docv) copies of the trace before writing, \
             renumbering objects so dense birth order is preserved — a way \
             to synthesize long traces for scale tests and benchmarks.")
  in
  let format =
    let fmt_conv =
      Arg.enum
        [ ("auto", None); ("text", Some Lp_trace.Io.Text); ("binary", Some Lp_trace.Io.Binary) ]
    in
    Arg.(
      value & opt fmt_conv None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format when not $(b,--v3): $(b,text), $(b,binary), or \
             $(b,auto) (binary for .lpt files).")
  in
  let run path output v3 chunk_events tile format timings =
    with_timings timings @@ fun () ->
    if chunk_events < 1 then begin
      Printf.eprintf "lpalloc convert: --chunk-events must be positive\n";
      exit 2
    end;
    if tile < 1 then begin
      Printf.eprintf "lpalloc convert: --tile must be positive\n";
      exit 2
    end;
    let trace = read_trace path in
    let trace = Lp_trace.Trace.tile trace tile in
    if v3 then begin
      io_guard (fun () ->
          Out_channel.with_open_bin output (fun oc ->
              Lp_trace.Binio.output_v3 ~chunk_events oc trace));
      let sh = load_sharded output in
      Printf.printf "wrote %d events (%d objects) as %d chunks of %d to %s\n"
        (Array.length trace.events) trace.n_objects
        (Lp_trace.Sharded.n_chunks sh)
        chunk_events output
    end
    else begin
      io_guard (fun () -> Lp_trace.Io.write_file ?format output trace);
      Printf.printf "wrote %d events (%d objects) to %s\n"
        (Array.length trace.events) trace.n_objects output
    end
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace between formats — text, binary, and the sharded \
          (seekable, range-parallel) binary layout — optionally tiling it \
          into a longer synthetic trace")
    Term.(
      const run $ file_arg $ output $ v3 $ chunk_events $ tile $ format
      $ timings_arg)

(* -- diagnostics plumbing shared by lint and audit ----------------------------- *)

(* Unknown rule ids in --only/--disable are usage errors: fail before any
   work happens, listing the command's registry.  Diagnostic.select
   still backstops the library API. *)
let validate_rules ~cmd ~(rules : Lp_analysis.Diagnostic.rule list) only disable
    =
  let known id =
    List.exists (fun (r : Lp_analysis.Diagnostic.rule) -> r.id = id) rules
  in
  let unknown =
    List.filter
      (fun id -> not (known id))
      (Option.value only ~default:[] @ Option.value disable ~default:[])
  in
  match unknown with
  | [] -> ()
  | us ->
      Printf.eprintf "lpalloc %s: unknown rule%s %s (known: %s)\n" cmd
        (if List.length us > 1 then "s" else "")
        (String.concat ", " (List.map (Printf.sprintf "%S") us))
        (String.concat ", "
           (List.map (fun (r : Lp_analysis.Diagnostic.rule) -> r.id) rules));
      exit 2

let format_arg =
  let doc =
    "Report format: $(b,text) (the default human-readable report), $(b,json) \
     (one JSON array, as $(b,--json)), or $(b,sarif) (a SARIF 2.1.0 log for \
     code-scanning upload)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

(* --json predates --format and stays as an alias for --format json *)
let effective_format json format =
  match (json, format) with true, `Text -> `Json | _ -> format

let print_text_report ~source ~rules ~max_per_rule diags =
  (* cap the per-rule flood in the text report; the summary and --json
     still account for every diagnostic *)
  let printed = Hashtbl.create 8 in
  List.iter
    (fun (d : Lp_analysis.Diagnostic.t) ->
      let n = Option.value (Hashtbl.find_opt printed d.rule) ~default:0 in
      Hashtbl.replace printed d.rule (n + 1);
      if n < max_per_rule then
        Format.printf "%a@." (Lp_analysis.Diagnostic.pp ~source) d
      else if n = max_per_rule then
        Format.printf "%s: [%s] further diagnostics suppressed (--json has all)@."
          source d.rule)
    diags;
  Format.printf "%a" (Lp_analysis.Diagnostic.pp_summary ~rules) diags

let emit_diagnostics ~tool_name ~source ~rules ~format ~max_per_rule diags =
  match format with
  | `Json -> print_endline (Lp_analysis.Diagnostic.list_to_json diags)
  | `Sarif ->
      print_endline (Lp_analysis.Sarif.to_string ~tool_name ~rules ~source diags)
  | `Text -> print_text_report ~source ~rules ~max_per_rule diags

let rule_section title rules =
  `S title
  :: List.map
       (fun (r : Lp_analysis.Diagnostic.rule) ->
         `P
           (Printf.sprintf "$(b,%s) (%s): %s." r.id
              (match r.default_severity with
              | Lp_analysis.Diagnostic.Error -> "error"
              | Warning -> "warning"
              | Info -> "info")
              r.doc))
       rules

let only_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "only" ] ~docv:"RULES"
        ~doc:"Run only these comma-separated rule ids.")

let disable_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "disable" ] ~docv:"RULES" ~doc:"Skip these comma-separated rule ids.")

let max_per_rule_arg =
  Arg.(
    value & opt int 20
    & info [ "max-per-rule" ] ~docv:"N"
        ~doc:
          "Print at most $(docv) diagnostics per rule in the text report (the \
           summary counts, the exit code and the machine formats always cover \
           all of them).")

let contract_exits =
  Cmd.Exit.info 1
    ~doc:"at least one error-severity diagnostic (warnings alone exit 0)."
  :: Cmd.Exit.info 2 ~doc:"usage or I/O error (unknown rule id, unreadable file)."
  :: Cmd.Exit.defaults

(* -- lint ------------------------------------------------------------------------ *)

let lint_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "File to check: a trace (text or binary) or a portable model \
             written by $(b,lpalloc train --save); told apart by their magic \
             bytes.")
  in
  let max_chain_depth =
    Arg.(
      value
      & opt int Lp_analysis.Lint.default_max_chain_depth
      & info [ "max-chain-depth" ] ~docv:"N"
          ~doc:"Call chains deeper than $(docv) frames are chain anomalies.")
  in
  let run path json format only disable max_chain_depth max_per_rule stream
      sharded domains timings =
    with_timings timings @@ fun () ->
    set_domains domains;
    let format = effective_format json format in
    (* model files are a few kilobytes; only trace linting streams *)
    let model_file =
      In_channel.with_open_bin path (fun ic ->
          match
            In_channel.really_input_string ic (String.length Lifetime.Model.magic)
          with
          | Some m -> String.equal m Lifetime.Model.magic
          | None -> false)
    in
    validate_rules ~cmd:"lint"
      ~rules:
        (if model_file then Lp_analysis.Validate.rules
         else Lp_analysis.Lint.rules)
      only disable;
    let diags, rules =
      try
        if sharded && not model_file then
          ( Lp_analysis.Lint.run_sharded ?only ?disable ~max_chain_depth
              (Lp_trace.Sharded.load path),
            Lp_analysis.Lint.rules )
        else if stream && not model_file then
          ( Lp_analysis.Lint.run_source ?only ?disable ~max_chain_depth
              (Lp_trace.Source.of_file path),
            Lp_analysis.Lint.rules )
        else
          let contents = In_channel.with_open_bin path In_channel.input_all in
          if Lifetime.Model.looks_like_model contents then
            ( Lp_analysis.Validate.run ?only ?disable
                (Lifetime.Model.of_string ~name:path contents),
              Lp_analysis.Validate.rules )
          else
            ( Lp_analysis.Lint.run ?only ?disable ~max_chain_depth
                (read_trace path),
              Lp_analysis.Lint.rules )
      with Invalid_argument msg | Failure msg ->
        Printf.eprintf "lpalloc lint: %s\n" msg;
        exit 2
    in
    emit_diagnostics ~tool_name:"lpalloc lint" ~source:path ~rules ~format
      ~max_per_rule diags;
    if Lp_analysis.Diagnostic.has_errors diags then exit 1
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Statically check a trace or a portable predictor model and report \
         structured diagnostics.  The exit code is the contract: $(b,0) when \
         no error-severity diagnostic was found (warnings allowed), $(b,1) \
         when at least one error was, $(b,2) on usage or I/O errors.";
    ]
    @ rule_section "LINT RULES (traces)" Lp_analysis.Lint.rules
    @ rule_section "LINT RULES (models)" Lp_analysis.Validate.rules
  in
  Cmd.v
    (Cmd.info "lint" ~man ~exits:contract_exits
       ~doc:"Statically check a trace or predictor-model file")
    Term.(
      const run $ file $ json_arg $ format_arg $ only_arg $ disable_arg
      $ max_chain_depth $ max_per_rule_arg $ stream_arg $ sharded_arg
      $ domains_arg $ timings_arg)

(* -- audit ----------------------------------------------------------------------- *)

let audit_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Trace file to audit (text or binary; sharded with $(b,--sharded)).")
  in
  let model =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:
            "Portable model (written by $(b,lpalloc train --save)) to audit \
             the trace against.  The model's training configuration — \
             threshold, size rounding and site policy — replaces the \
             command-line values so the trace is profiled under the same \
             abstraction the model was trained with; it also arms the \
             model-dependent rules (cold start, dead sites, mispredict \
             hardening).")
  in
  let margin =
    Arg.(
      value
      & opt float Lp_analysis.Coverage.default_margin
      & info [ "margin" ] ~docv:"FRAC"
          ~doc:
            "Threshold-sensitivity band as a fraction of the short-lived \
             cutoff: a site whose observed maximum lifetime lands within \
             cutoff ± $(docv)·cutoff is reported \
             $(b,coverage-threshold-sensitive).")
  in
  let hotspot_share =
    Arg.(
      value
      & opt float Lp_analysis.Liveint.default_hotspot_share
      & info [ "hotspot-share" ] ~docv:"FRAC"
          ~doc:
            "Overlap-hotspot cutoff: a site fires $(b,live-overlap-hotspot) \
             when its own live-byte peak and the foreign bytes co-live at \
             that peak each reach $(docv) of the global live-heap peak.")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Shorthand for $(b,--policy) last-$(docv)-callers: key sites by \
             the last $(docv) callers of the allocation chain (the paper's \
             depth sweep, Tables 5-6).")
  in
  let policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Site abstraction keying the profile: $(b,complete-chain) (the \
             default), $(b,last-N-callers), $(b,size-only) or \
             $(b,encrypted-key).")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "list-rules" ]
          ~doc:
            "Print the audit rule registry as a markdown table (the exact \
             table embedded in the README) and exit.")
  in
  let run path model_path threshold margin hotspot_share depth policy
      oracle_spec list_rules json format only disable max_per_rule stream
      sharded domains timings =
    with_timings timings @@ fun () ->
    if list_rules then begin
      print_string (Lp_analysis.Audit.rules_markdown ());
      exit 0
    end;
    let online_params =
      match oracle_spec_of ~cmd:"audit" oracle_spec with
      | Lifetime.Oracle.Spec_static -> None
      | Lifetime.Oracle.Spec_online p -> Some p
    in
    let path =
      match path with
      | Some p -> p
      | None ->
          Printf.eprintf "lpalloc audit: required argument TRACE is missing\n";
          exit 2
    in
    set_domains domains;
    let format = effective_format json format in
    validate_rules ~cmd:"audit" ~rules:Lp_analysis.Audit.rules only disable;
    let policy =
      match (depth, policy) with
      | Some _, Some _ ->
          Printf.eprintf
            "lpalloc audit: --depth and --policy are mutually exclusive\n";
          exit 2
      | Some n, None ->
          if n < 1 then begin
            Printf.eprintf "lpalloc audit: --depth must be positive\n";
            exit 2
          end;
          Some (Lp_callchain.Site.Last_callers n)
      | None, Some s -> (
          match Lp_callchain.Site.policy_of_string s with
          | Some p -> Some p
          | None ->
              Printf.eprintf
                "lpalloc audit: unknown policy %S (known: complete-chain, \
                 last-N-callers, size-only, encrypted-key)\n"
                s;
              exit 2)
      | None, None -> None
    in
    let opts =
      {
        Lp_analysis.Audit.default_options with
        au_threshold = threshold;
        au_margin = margin;
        au_hotspot_share = hotspot_share;
        au_online = online_params;
        au_only = only;
        au_disable = disable;
      }
    in
    let opts =
      match policy with
      | Some p -> { opts with Lp_analysis.Audit.au_policy = p }
      | None -> opts
    in
    let opts =
      match model_path with
      | None -> opts
      | Some mp ->
          Lp_analysis.Audit.with_model opts
            (io_guard (fun () -> Lifetime.Model.load mp))
    in
    let diags =
      try
        if sharded then Lp_analysis.Audit.run_sharded opts (load_sharded path)
        else if stream then
          io_guard (fun () ->
              Lp_analysis.Audit.run_source opts (Lp_trace.Source.of_file path))
        else Lp_analysis.Audit.run opts (read_trace path)
      with Invalid_argument msg | Failure msg ->
        Printf.eprintf "lpalloc audit: %s\n" msg;
        exit 2
    in
    emit_diagnostics ~tool_name:"lpalloc audit" ~source:path
      ~rules:Lp_analysis.Audit.rules ~format ~max_per_rule diags;
    if Lp_analysis.Diagnostic.has_errors diags then exit 1
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Audit a trace — and optionally the model trained from it — with \
         three static analyses sharing one streaming pass: chain-key \
         collision detection (distinct call chains folded onto one predictor \
         key with disagreeing lifetime classes), predictor-coverage gaps \
         (cold-start sites the model misses, dead model sites, sites within \
         a margin of the short-lived cutoff), and live-interval overlap \
         (peak simultaneous live bytes per site, cross-site overlap \
         pressure, fragmentation hotspots).";
      `P
        "Same exit-code contract as $(b,lpalloc lint): $(b,0) when no \
         error-severity diagnostic was found, $(b,1) when at least one was \
         (only $(b,chain-collision-mispredict) is error-severity by \
         default), $(b,2) on usage or I/O errors.  Output is byte-identical \
         across the materialized, $(b,--stream) and $(b,--sharded) paths at \
         any domain count.";
    ]
    @ rule_section "AUDIT RULES" Lp_analysis.Audit.rules
  in
  Cmd.v
    (Cmd.info "audit" ~man ~exits:contract_exits
       ~doc:
         "Audit a trace (and optionally its trained model) with \
          chain-collision, predictor-coverage and live-interval analyses")
    Term.(
      const run $ file $ model $ threshold_arg $ margin $ hotspot_share $ depth
      $ policy $ oracle_arg ~cmd:"audit" $ list_rules $ json_arg $ format_arg
      $ only_arg $ disable_arg $ max_per_rule_arg $ stream_arg $ sharded_arg
      $ domains_arg $ timings_arg)

let () =
  (* fail fast, before any subcommand runs, on a malformed LPALLOC_DOMAINS
     — a typo'd value silently falling back to a default would make
     parallel results unreproducible *)
  (match Lifetime.Parallel.check_env () with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "lpalloc: %s\n" msg;
      exit 2);
  let doc =
    "lifetime-predicting memory allocation (reproduction of Barrett & Zorn, PLDI \
     1993)"
  in
  let info = Cmd.info "lpalloc" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        list_cmd; trace_cmd; convert_cmd; stats_cmd; lifetimes_cmd; train_cmd;
        evaluate_cmd; simulate_cmd; tune_cmd; lint_cmd; audit_cmd;
      ]
  in
  (* cmdliner's stock cli_error exit is 124; fold parse errors (missing
     arguments, unknown flags — cmdliner has already printed the usage to
     stderr) into the 2 = usage-error class of the contract above *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
