(* The PRE-OPTIMIZATION first-fit/best-fit core, retained verbatim as the
   reference implementation for the equivalence property in test_perf.ml.

   This is the seed representation: [block option] doubly-linked address
   and free lists, a fresh record per split/sbrk, and a [by_payload]
   hashtable — the exact code lib/allocsim/first_fit.ml shipped before the
   sentinel/pooled-store overhaul.  The optimized allocator must produce
   the identical placement sequence and identical instruction counters for
   any op sequence; qcheck drives both against random programs.

   Do not "clean up" or optimize this module: its value is that it stays
   frozen while the production core evolves. *)

let header = 8
let min_block = 16

type block = {
  mutable addr : int;
  mutable size : int;
  mutable is_free : bool;
  mutable prev : block option;
  mutable next : block option;
  mutable fprev : block option;
  mutable fnext : block option;
}

type policy = First | Best

type t = {
  base : int;
  sbrk_chunk : int;
  policy : policy;
  mutable first : block option;
  mutable last : block option;
  mutable free_head : block option;
  mutable rover : block option;
  mutable brk : int;
  mutable max_brk : int;
  by_payload : (int, block) Hashtbl.t;
  mutable live : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

module Cost_model = Lp_allocsim.Cost_model

let create ?(base = 0) ?(sbrk_chunk = 8192) ?(policy = First) () =
  {
    base;
    sbrk_chunk;
    policy;
    first = None;
    last = None;
    free_head = None;
    rover = None;
    brk = base;
    max_brk = base;
    by_payload = Hashtbl.create 1024;
    live = 0;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

let round8 n = (n + 7) land lnot 7

let free_list_insert t b =
  b.fprev <- None;
  b.fnext <- t.free_head;
  (match t.free_head with Some h -> h.fprev <- Some b | None -> ());
  t.free_head <- Some b;
  if t.rover = None then t.rover <- Some b

let free_list_remove t b =
  (match b.fprev with
  | Some p -> p.fnext <- b.fnext
  | None -> t.free_head <- b.fnext);
  (match b.fnext with Some n -> n.fprev <- b.fprev | None -> ());
  (match t.rover with
  | Some r when r == b -> t.rover <- (match b.fnext with Some n -> Some n | None -> t.free_head)
  | _ -> ());
  b.fprev <- None;
  b.fnext <- None

let insert_after t anchor b =
  match anchor with
  | None ->
      b.prev <- None;
      b.next <- t.first;
      (match t.first with Some f -> f.prev <- Some b | None -> ());
      t.first <- Some b;
      if t.last = None then t.last <- Some b
  | Some a ->
      b.prev <- Some a;
      b.next <- a.next;
      (match a.next with Some n -> n.prev <- Some b | None -> t.last <- Some b);
      a.next <- Some b

let remove_block t b =
  (match b.prev with Some p -> p.next <- b.next | None -> t.first <- b.next);
  (match b.next with Some n -> n.prev <- b.prev | None -> t.last <- b.prev)

let split t b request =
  if b.size >= request + min_block then begin
    t.alloc_instr <- t.alloc_instr + Cost_model.ff_split;
    let remainder =
      {
        addr = b.addr + request;
        size = b.size - request;
        is_free = true;
        prev = None;
        next = None;
        fprev = None;
        fnext = None;
      }
    in
    b.size <- request;
    insert_after t (Some b) remainder;
    free_list_insert t remainder
  end;
  free_list_remove t b;
  b.is_free <- false;
  b

let sbrk t need =
  let grow = (need + t.sbrk_chunk - 1) / t.sbrk_chunk * t.sbrk_chunk in
  t.alloc_instr <- t.alloc_instr + Cost_model.ff_sbrk;
  let start = t.brk in
  t.brk <- t.brk + grow;
  if t.brk > t.max_brk then t.max_brk <- t.brk;
  match t.last with
  | Some l when l.is_free ->
      l.size <- l.size + grow;
      l
  | _ ->
      let b =
        {
          addr = start;
          size = grow;
          is_free = true;
          prev = None;
          next = None;
          fprev = None;
          fnext = None;
        }
      in
      insert_after t t.last b;
      free_list_insert t b;
      b

let alloc t size =
  if size <= 0 then invalid_arg "Ff_reference.alloc: size must be positive";
  let request = max min_block (round8 (size + header)) in
  t.allocs <- t.allocs + 1;
  t.alloc_instr <- t.alloc_instr + Cost_model.ff_alloc_base;
  let found = ref None in
  (match t.policy with
  | Best ->
      let rec scan cur =
        match cur with
        | None -> ()
        | Some b ->
            t.alloc_instr <- t.alloc_instr + Cost_model.ff_per_inspect;
            (if b.size >= request then
               match !found with
               | Some best when best.size <= b.size -> ()
               | _ -> found := Some b);
            scan b.fnext
      in
      scan t.free_head
  | First -> (
      let start = match t.rover with Some r -> Some r | None -> t.free_head in
      match start with
  | None -> ()
  | Some start_block ->
      let cur = ref (Some start_block) in
      let wrapped = ref false in
      let continue = ref true in
      while !continue do
        match !cur with
        | None ->
            if !wrapped then continue := false
            else begin
              wrapped := true;
              cur := t.free_head;
              if t.free_head = None then continue := false
            end
        | Some b ->
            t.alloc_instr <- t.alloc_instr + Cost_model.ff_per_inspect;
            if b.size >= request then begin
              found := Some b;
              continue := false
            end
            else begin
              cur := b.fnext;
              (match b.fnext with
              | Some n when !wrapped && n == start_block -> continue := false
              | _ -> ());
              if !wrapped && b.fnext = None then continue := false
            end
      done));
  let b =
    match !found with
    | Some b -> b
    | None ->
        let b = sbrk t request in
        b
  in
  t.rover <- (match b.fnext with Some n -> Some n | None -> t.free_head);
  let b = split t b request in
  Hashtbl.replace t.by_payload (b.addr + header) b;
  t.live <- t.live + b.size;
  b.addr + header

let free t payload =
  let b =
    match Hashtbl.find_opt t.by_payload payload with
    | Some b -> b
    | None -> invalid_arg "Ff_reference.free: not an allocated address"
  in
  Hashtbl.remove t.by_payload payload;
  t.frees <- t.frees + 1;
  t.free_instr <- t.free_instr + Cost_model.ff_free_base;
  t.live <- t.live - b.size;
  b.is_free <- true;
  (match b.next with
  | Some n when n.is_free ->
      t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
      free_list_remove t n;
      remove_block t n;
      b.size <- b.size + n.size
  | _ -> ());
  let merged =
    match b.prev with
    | Some p when p.is_free ->
        t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
        remove_block t b;
        p.size <- p.size + b.size;
        p
    | _ ->
        free_list_insert t b;
        b
  in
  ignore merged

let heap_size t = t.brk - t.base
let max_heap_size t = t.max_brk - t.base
let live_bytes t = t.live
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees

let free_blocks t =
  let rec len acc = function None -> acc | Some b -> len (acc + 1) b.fnext in
  len 0 t.free_head
