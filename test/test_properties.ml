(* Deeper property-based tests: differential testing of the regex engine
   against a naive reference matcher, trace text-serialization round-trips
   on randomly generated traces, and P² accuracy on skewed distributions
   like the lifetime data it summarises. *)

module Rt = Lp_ialloc.Runtime

(* -- regex differential testing ------------------------------------------------ *)

(* A tiny reference matcher for a safe subset (literals, '.', '*', '|'),
   written independently of the engine: set-of-positions simulation. *)
let rec ref_match_seq pats subject positions =
  match pats with
  | [] -> positions
  | p :: rest ->
      let next =
        List.concat_map
          (fun pos ->
            match p with
            | `Char c ->
                if pos < String.length subject && subject.[pos] = c then [ pos + 1 ]
                else []
            | `Any -> if pos < String.length subject then [ pos + 1 ] else []
            | `Star c ->
                let rec run acc pos =
                  if pos < String.length subject && (c = '.' || subject.[pos] = c)
                  then run (pos + 1 :: acc) (pos + 1)
                  else acc
                in
                run [ pos ] pos)
          positions
      in
      ref_match_seq rest subject (List.sort_uniq compare next)

let ref_search pattern subject =
  (* parse the subset pattern into tokens *)
  let toks = ref [] in
  let i = ref 0 in
  let n = String.length pattern in
  while !i < n do
    let c = pattern.[!i] in
    if !i + 1 < n && pattern.[!i + 1] = '*' then begin
      toks := `Star c :: !toks;
      i := !i + 2
    end
    else begin
      toks := (if c = '.' then `Any else `Char c) :: !toks;
      incr i
    end
  done;
  let toks = List.rev !toks in
  let rec try_from start =
    if start > String.length subject then false
    else if ref_match_seq toks subject [ start ] <> [] then true
    else try_from (start + 1)
  in
  try_from 0

let subset_pattern_gen =
  (* patterns over {a, b, .}, each atom possibly starred; no '|' to keep the
     reference simple and the comparison exact *)
  QCheck.Gen.(
    list_size (int_range 1 6)
      (pair (oneofl [ 'a'; 'b'; '.' ]) bool)
    >|= fun atoms ->
    String.concat ""
      (List.map
         (fun (c, star) -> Printf.sprintf "%c%s" c (if star then "*" else ""))
         atoms))

let subject_gen =
  QCheck.Gen.(string_size (int_range 0 12) ~gen:(oneofl [ 'a'; 'b'; 'c' ]))

let regex_differential =
  QCheck.Test.make ~name:"regex engine agrees with reference matcher" ~count:500
    QCheck.(make Gen.(pair subset_pattern_gen subject_gen))
    (fun (pattern, subject) ->
      let expected = ref_search pattern subject in
      let got = Lp_workloads.Regex.matches (Lp_workloads.Regex.compile pattern) subject in
      if expected <> got then
        QCheck.Test.fail_reportf "/%s/ on %S: reference %b, engine %b" pattern
          subject expected got;
      true)

let regex_match_is_substring_sound =
  (* whatever the engine reports as a match span must re-match exactly *)
  QCheck.Test.make ~name:"regex reported span re-matches" ~count:300
    QCheck.(make Gen.(pair subset_pattern_gen subject_gen))
    (fun (pattern, subject) ->
      let re = Lp_workloads.Regex.compile pattern in
      match Lp_workloads.Regex.search re subject with
      | None -> true
      | Some m ->
          m.start_pos >= 0
          && m.end_pos >= m.start_pos
          && m.end_pos <= String.length subject)

(* -- trace round-trip fuzzing ----------------------------------------------------- *)

let random_trace_gen =
  QCheck.Gen.(
    list_size (int_range 1 60) (pair (int_range 1 200) (int_range 0 5))
    >|= fun ops ->
    let rt = Rt.create ~program:"fuzz" ~input:"gen" () in
    let funcs = Array.init 4 (fun i -> Rt.func rt (Printf.sprintf "f%d" i)) in
    let live = ref [] in
    List.iter
      (fun (size, action) ->
        match action with
        | 0 | 1 | 2 ->
            let depth = 1 + (size mod 3) in
            for d = 0 to depth - 1 do
              Rt.enter rt funcs.(d)
            done;
            let h = Rt.alloc rt ~size in
            Rt.touch rt h (1 + (size mod 4));
            for _ = 1 to depth do
              Rt.leave rt
            done;
            live := h :: !live
        | 3 | 4 -> (
            match !live with
            | h :: rest ->
                Rt.free rt h;
                live := rest
            | [] -> ())
        | _ -> Rt.non_heap_refs rt size)
      ops;
    Rt.finish rt)

let textio_roundtrip_fuzz =
  QCheck.Test.make ~name:"textio round-trips random traces" ~count:100
    (QCheck.make random_trace_gen)
    (fun trace ->
      let s = Lp_trace.Textio.to_string trace in
      let trace' = Lp_trace.Textio.of_string s in
      let s' = Lp_trace.Textio.to_string trace' in
      if s <> s' then QCheck.Test.fail_reportf "round-trip not a fixed point";
      trace.n_objects = trace'.n_objects
      && trace.heap_refs = trace'.heap_refs
      && Array.length trace.events = Array.length trace'.events)

(* -- realloc round-trips across the codecs --------------------------------------- *)

let textio_realloc_roundtrip =
  QCheck.Test.make ~name:"textio round-trips realloc traces" ~count:100
    (QCheck.make Test_stream.random_realloc_trace_gen)
    (fun trace ->
      let s = Lp_trace.Textio.to_string trace in
      let trace' = Lp_trace.Textio.of_string s in
      if Lp_trace.Textio.to_string trace' <> s then
        QCheck.Test.fail_reportf "round-trip not a fixed point";
      trace'.events = trace.events && trace'.n_objects = trace.n_objects)

let binio_realloc_v3_roundtrip =
  QCheck.Test.make ~count:60
    ~name:"v3 round-trips realloc traces; v1/v2 writer refuses them"
    (QCheck.make
       QCheck.Gen.(pair Test_stream.random_realloc_trace_gen (int_range 1 32)))
    (fun (trace, chunk_events) ->
      (* the legacy writer must refuse, not silently smuggle 0x04 into a
         version whose decoders treat it as reserved/packed-alloc *)
      (match Lp_trace.Binio.to_string trace with
      | _ ->
          QCheck.Test.fail_reportf "v1/v2 writer accepted a realloc-bearing trace"
      | exception Invalid_argument _ -> ());
      let v3 = Lp_trace.Binio.to_string_v3 ~chunk_events trace in
      let back = Lp_trace.Binio.of_string ~name:"rt.lpt" v3 in
      back.events = trace.events
      && Lp_trace.Textio.to_string back = Lp_trace.Textio.to_string trace)

let v2_decoder_rejects_realloc_opcode () =
  (* a version-2 file (it has a sized free) whose free event encodes as
     the bytes [0x05 (sized_free_op); 0x00 (zigzag delta 0); 0x37 (size
     55)]; patching the opcode byte to 0x04 must hit the reserved-opcode
     rejection — only version-3 decoders may read 0x04 as realloc *)
  let text =
    "trace fuzz v2\nfunc 0 main\nchain 0 0\ncounters 0 0 0 0\n\
     a 0 9 0 0 -1 0\nf 0 55\nend\n"
  in
  let trace = Lp_trace.Textio.of_string text in
  let v2 = Lp_trace.Binio.to_string trace in
  Alcotest.(check int) "written as version 2" 2 (Char.code v2.[4]);
  let needle = "\x05\x00\x37" in
  let pos = ref (-1) in
  for i = 0 to String.length v2 - String.length needle do
    if String.sub v2 i (String.length needle) = needle then pos := i
  done;
  if !pos < 0 then Alcotest.fail "sized-free byte pattern not found";
  let patched = Bytes.of_string v2 in
  Bytes.set patched !pos '\x04';
  match Lp_trace.Binio.of_string ~name:"patched.lpt" (Bytes.to_string patched) with
  | _ -> Alcotest.fail "v2 decoder accepted opcode 0x04"
  | exception Failure m ->
      if
        not
          (let sub = "reserved opcode" in
           let found = ref false in
           for i = 0 to String.length m - String.length sub do
             if String.sub m i (String.length sub) = sub then found := true
           done;
           !found)
      then Alcotest.failf "unexpected failure message: %s" m

let lifetimes_conserve_bytes =
  QCheck.Test.make ~name:"lifetime clock equals total bytes" ~count:100
    (QCheck.make random_trace_gen)
    (fun trace ->
      let lt = Lp_trace.Lifetimes.compute trace in
      lt.end_clock = Lp_trace.Trace.total_bytes trace)

(* -- P² on skewed distributions ----------------------------------------------------- *)

let p2_skewed_accuracy () =
  (* lifetime-like data: 95% small values, 5% huge, like the paper's
     distributions.  P² quartiles must stay within the small mass. *)
  let rng = Lp_workloads.Prng.create ~seed:77L in
  let est = Lp_quantile.P2.create 0.5 in
  let exact = Lp_quantile.Exact.create () in
  for _ = 1 to 20_000 do
    let x =
      if Lp_workloads.Prng.float rng < 0.95 then Lp_workloads.Prng.float rng *. 100.
      else 1e6 +. (Lp_workloads.Prng.float rng *. 1e7)
    in
    Lp_quantile.P2.observe est x;
    Lp_quantile.Exact.observe exact x
  done;
  let got = Lp_quantile.P2.quantile est in
  let want = Lp_quantile.Exact.quantile exact 0.5 in
  (* relative to the small-mass scale *)
  if Float.abs (got -. want) > 25. then
    Alcotest.failf "skewed median: P2 %.1f vs exact %.1f" got want

let p2_exponential_accuracy () =
  let rng = Lp_workloads.Prng.create ~seed:78L in
  let est = Lp_quantile.P2.create 0.75 in
  let exact = Lp_quantile.Exact.create () in
  for _ = 1 to 20_000 do
    let x = -.Float.log (1. -. Lp_workloads.Prng.float rng) *. 50. in
    Lp_quantile.P2.observe est x;
    Lp_quantile.Exact.observe exact x
  done;
  let got = Lp_quantile.P2.quantile est in
  let want = Lp_quantile.Exact.quantile exact 0.75 in
  if Float.abs (got -. want) /. want > 0.1 then
    Alcotest.failf "exponential q75: P2 %.1f vs exact %.1f" got want

(* -- generational vs driver cross-check ----------------------------------------------- *)

let gen_alloc_counts_match_driver =
  QCheck.Test.make ~name:"generational and driver agree on alloc counts" ~count:50
    (QCheck.make random_trace_gen)
    (fun trace ->
      let m = Lp_allocsim.Driver.run_named trace "first-fit" in
      let g =
        Lp_allocsim.Generational.run
          ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> false)
          trace
      in
      m.Lp_allocsim.Metrics.allocs = g.Lp_allocsim.Generational.allocs)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest regex_differential;
        QCheck_alcotest.to_alcotest regex_match_is_substring_sound;
        QCheck_alcotest.to_alcotest textio_roundtrip_fuzz;
        QCheck_alcotest.to_alcotest textio_realloc_roundtrip;
        QCheck_alcotest.to_alcotest binio_realloc_v3_roundtrip;
        Alcotest.test_case "v2 decoder rejects realloc opcode" `Quick
          v2_decoder_rejects_realloc_opcode;
        QCheck_alcotest.to_alcotest lifetimes_conserve_bytes;
        Alcotest.test_case "p2 on skewed data" `Quick p2_skewed_accuracy;
        Alcotest.test_case "p2 on exponential data" `Quick p2_exponential_accuracy;
        QCheck_alcotest.to_alcotest gen_alloc_counts_match_driver;
      ] );
  ]
