(* Tests for the static-analysis layer: the trace linter against a golden
   corpus of corrupt traces (one seeded defect per rule, asserting the
   exact rule id and event index), the shadow-heap sanitizer against both
   deliberately buggy backends and every registry backend, and the
   predictor-model validator against seeded model defects. *)

module D = Lp_analysis.Diagnostic
module Lint = Lp_analysis.Lint
module San = Lp_analysis.Sanitize
module Validate = Lp_analysis.Validate

let findings diags =
  List.map (fun (d : D.t) -> (d.rule, Option.value d.event ~default:(-1))) diags

let check_findings what expected diags =
  Alcotest.(check (list (pair string int))) what expected (findings diags)

(* -- golden corrupt-trace corpus ------------------------------------------------ *)

(* each file seeds exactly one kind of defect; the linter must report
   exactly these (rule, event-index) pairs and nothing else *)
let corpus =
  [
    ("double_free.txt", [ ("double-free", 2) ]);
    ("free_without_alloc.txt", [ ("free-without-alloc", 1) ]);
    ("touch_after_free.txt", [ ("touch-after-free", 2) ]);
    ("size_mismatch_at_free.txt", [ ("size-mismatch-at-free", 1) ]);
    ("nonpositive_size.txt", [ ("nonpositive-size", 0) ]);
    ("realloc_of_unallocated.txt", [ ("realloc-of-unallocated", 1) ]);
    ("realloc_after_free.txt", [ ("realloc-after-free", 2) ]);
    ("realloc_size_regression.txt", [ ("realloc-size-regression", 1) ]);
    ( "non_monotonic_birth.txt",
      [ ("non-monotonic-birth", 1); ("non-monotonic-birth", 2) ] );
    ("leaked_at_exit.txt", [ ("leaked-at-exit", 1) ]);
    ("chain_anomaly.txt", [ ("chain-anomaly", 0) ]);
  ]

let corpus_trace file = Lp_trace.Io.read_file ("corrupt_traces/" ^ file)

let corpus_case (file, expected) =
  Alcotest.test_case file `Quick (fun () ->
      check_findings file expected (Lint.run (corpus_trace file)))

let rule_selection () =
  let trace = corpus_trace "double_free.txt" in
  check_findings "disabled" [] (Lint.run ~disable:[ "double-free" ] trace);
  check_findings "only other rule" []
    (Lint.run ~only:[ "leaked-at-exit" ] trace);
  check_findings "only it" [ ("double-free", 2) ]
    (Lint.run ~only:[ "double-free" ] trace);
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument
       "Diagnostic.select: unknown rule \"no-such-rule\" in --only (known: \
        double-free, free-without-alloc, touch-after-free, \
        size-mismatch-at-free, realloc-of-unallocated, realloc-after-free, \
        realloc-size-regression, nonpositive-size, non-monotonic-birth, \
        leaked-at-exit, chain-anomaly)")
    (fun () -> ignore (Lint.run ~only:[ "no-such-rule" ] trace))

let severity_contract () =
  List.iter
    (fun (file, _) ->
      let diags = Lint.run (corpus_trace file) in
      let expect_clean =
        file = "leaked_at_exit.txt" || file = "chain_anomaly.txt"
      in
      Alcotest.(check bool)
        (file ^ " clean?") expect_clean (Lint.clean diags))
    corpus

let deep_chain_anomaly () =
  (* a legitimate deep chain becomes an anomaly only past the limit *)
  let rt = Lp_ialloc.Runtime.create ~program:"deep" ~input:"x" () in
  let fs =
    List.init 6 (fun i -> Lp_ialloc.Runtime.func rt (Printf.sprintf "f%d" i))
  in
  List.iter (Lp_ialloc.Runtime.enter rt) fs;
  let h = Lp_ialloc.Runtime.alloc rt ~size:8 in
  Lp_ialloc.Runtime.free rt h;
  List.iter (fun _ -> Lp_ialloc.Runtime.leave rt) fs;
  let trace = Lp_ialloc.Runtime.finish rt in
  check_findings "under limit" [] (Lint.run trace);
  check_findings "over limit"
    [ ("chain-anomaly", 0) ]
    (Lint.run ~max_chain_depth:3 trace)

(* a declared free size must survive the binary codec (it switches the
   file to format version 2) and still trip the linter after reload *)
let sized_free_binary_roundtrip () =
  let trace = corpus_trace "size_mismatch_at_free.txt" in
  let reloaded = Lp_trace.Binio.of_string (Lp_trace.Binio.to_string trace) in
  check_findings "diagnostics survive binary round-trip"
    [ ("size-mismatch-at-free", 1) ]
    (Lint.run reloaded);
  (* traces without declared sizes keep the version-1 encoding *)
  let plain = corpus_trace "double_free.txt" in
  let s = Lp_trace.Binio.to_string plain in
  Alcotest.(check int) "format version 1" 1 (Char.code s.[4]);
  let sized = Lp_trace.Binio.to_string trace in
  Alcotest.(check int) "format version 2" 2 (Char.code sized.[4])

let bundled_traces_lint_clean () =
  List.iter
    (fun (p : Lp_workloads.Registry.program) ->
      let trace =
        Lp_workloads.Registry.trace ~program:p.name ~input:"tiny" ()
      in
      let diags = Lint.run trace in
      Alcotest.(check bool)
        (p.name ^ " lints clean (no errors)")
        true (Lint.clean diags))
    Lp_workloads.Registry.programs

let json_rendering () =
  let diags = Lint.run (corpus_trace "double_free.txt") in
  Alcotest.(check string)
    "json"
    "[{\"rule\":\"double-free\",\"severity\":\"error\",\"event\":2,\"obj\":0,\
     \"site\":\"main\",\"message\":\"object 0 freed again (first freed at \
     event 1)\"}]"
    (D.list_to_json diags)

(* -- shadow-heap sanitizer ------------------------------------------------------- *)

(* a backend with a seeded placement bug: every block is placed at [stride
   * i] for a stride smaller than the sizes it serves, so consecutive live
   allocations overlap.  stride 0 places everything at the same address. *)
module Buggy (P : sig
  val stride : int
  val base : int
end) : Lp_allocsim.Backend.BACKEND = struct
  type t = {
    mutable next : int;
    mutable allocs : int;
    mutable frees : int;
    mutable live : int;
    mutable peak : int;
  }

  let name = "buggy"
  let uses_prediction = false

  let create ?base:_ ?hint:_ () =
    { next = P.base; allocs = 0; frees = 0; live = 0; peak = 0 }

  let alloc t ~size ~predicted:_ =
    let addr = t.next in
    t.next <- t.next + P.stride;
    t.allocs <- t.allocs + 1;
    t.live <- t.live + size;
    if t.live > t.peak then t.peak <- t.live;
    addr

  let free t _ = t.frees <- t.frees + 1
  let realloc = None
  let charge_alloc _ _ = ()
  let allocs t = t.allocs
  let frees t = t.frees
  let alloc_instr _ = 0
  let free_instr _ = 0
  let max_heap_size t = t.peak
  let extra _ = Lp_allocsim.Metrics.Core
  let check_invariants _ = ()
end

let violation_of f =
  match f () with
  | _ -> Alcotest.fail "expected Sanitize.Violation"
  | exception San.Violation d -> d

let catches_overlap () =
  let backend =
    San.wrap (module Buggy (struct let stride = 0 let base = 0 end)) in
  let (module B : Lp_allocsim.Backend.BACKEND) = backend in
  let t = B.create () in
  let _ = B.alloc t ~size:16 ~predicted:false in
  let d = violation_of (fun () -> B.alloc t ~size:16 ~predicted:false) in
  Alcotest.(check string) "rule" "shadow-overlap" d.rule;
  Alcotest.(check (option int)) "op index" (Some 1) d.event;
  (* freeing the first block makes the address legal again *)
  B.free t 0;
  let addr = B.alloc t ~size:16 ~predicted:false in
  Alcotest.(check int) "re-placed" 0 addr

(* property: under the sanitizer, the seeded overlap bug is caught for any
   schedule of two or more live allocations, at the first overlapping one *)
let overlap_always_caught =
  QCheck.Test.make ~count:100 ~name:"sanitizer: seeded overlap bug always caught"
    QCheck.(pair (int_range 0 8) (list_of_size (QCheck.Gen.int_range 2 12) (int_range 1 64)))
    (fun (stride, sizes) ->
      let module B =
        (val San.wrap
               (module Buggy (struct
                 let stride = stride
                 let base = 0
               end)) : Lp_allocsim.Backend.BACKEND)
      in
      let t = B.create () in
      (* block i lives at [stride*i, stride*i + size_i): an overlap exists
         iff some block other than the last has a size exceeding the
         stride (the last block has nothing placed after it to overlap) *)
      let rec all_but_last = function [] | [ _ ] -> [] | s :: tl -> s :: all_but_last tl in
      let should_fail = List.exists (fun s -> s > stride) (all_but_last sizes) in
      match List.iter (fun s -> ignore (B.alloc t ~size:s ~predicted:false)) sizes with
      | () -> not should_fail
      | exception San.Violation d -> should_fail && d.D.rule = "shadow-overlap")

let catches_unmapped_free () =
  let (module B : Lp_allocsim.Backend.BACKEND) =
    San.wrap (Lp_allocsim.Registry.backend "first-fit")
  in
  let t = B.create () in
  let addr = B.alloc t ~size:32 ~predicted:false in
  let d = violation_of (fun () -> B.free t (addr + 1)) in
  Alcotest.(check string) "rule" "shadow-unmapped-free" d.rule;
  Alcotest.(check (option int)) "op index" (Some 1) d.event;
  B.free t addr;
  let d = violation_of (fun () -> B.free t addr) in
  Alcotest.(check string) "freed twice" "shadow-unmapped-free" d.rule

let catches_misalignment () =
  let backend =
    San.wrap ~alignment:8
      (module Buggy (struct let stride = 64 let base = 4 end))
  in
  let (module B : Lp_allocsim.Backend.BACKEND) = backend in
  let t = B.create () in
  let d = violation_of (fun () -> B.alloc t ~size:16 ~predicted:false) in
  Alcotest.(check string) "rule" "shadow-misaligned" d.rule;
  Alcotest.(check (option int)) "op index" (Some 0) d.event

let catches_boundary_straddle () =
  (* blocks at 0, 48, 96, ... with size 32: the second straddles 64 *)
  let backend =
    San.wrap ~boundary:64
      (module Buggy (struct let stride = 48 let base = 0 end))
  in
  let (module B : Lp_allocsim.Backend.BACKEND) = backend in
  let t = B.create () in
  let _ = B.alloc t ~size:32 ~predicted:false in
  let d = violation_of (fun () -> B.alloc t ~size:32 ~predicted:false) in
  Alcotest.(check string) "rule" "shadow-boundary" d.rule;
  Alcotest.(check (option int)) "op index" (Some 1) d.event

let perl_trace =
  lazy (Lp_workloads.Registry.trace ~program:"perl" ~input:"tiny" ())

(* every registry backend, replaying a real workload trace under the
   sanitizer: no violations, and metrics byte-identical to the plain
   replay (the wrapper must be metrically invisible) *)
let registry_backends_replay_clean () =
  let trace = Lazy.force perl_trace in
  List.iter
    (fun name ->
      let plain =
        Lp_allocsim.Driver.run trace (Lp_allocsim.Registry.backend name)
      in
      let sanitized =
        Lp_allocsim.Driver.run trace
          (San.for_backend (Lp_allocsim.Registry.backend name))
      in
      Alcotest.(check bool)
        (name ^ ": sanitized metrics identical")
        true (plain = sanitized))
    (Lp_allocsim.Registry.names ())

(* a realloc-heavy synthetic trace: sizes picked so size-class backends
   (bsd, segfit) absorb some resizes in place and must move for others,
   while list/arena backends fall back to free+alloc for every one *)
let realloc_trace =
  lazy
    (let rt = Lp_ialloc.Runtime.create ~program:"resizer" ~input:"x" () in
     let f = Lp_ialloc.Runtime.func rt "grow" in
     Lp_ialloc.Runtime.enter rt f;
     let hs =
       Array.init 6 (fun i -> Lp_ialloc.Runtime.alloc rt ~size:(40 + (4 * i)))
     in
     Array.iter
       (fun h ->
         (* 40..60 -> 56: stays in the 64-byte class *)
         ignore (Lp_ialloc.Runtime.realloc rt h ~new_size:56);
         (* 56 -> 96: crosses into the 128-byte class *)
         ignore (Lp_ialloc.Runtime.realloc rt h ~new_size:96);
         (* 96 -> 72: shrink within the 128-byte class *)
         ignore (Lp_ialloc.Runtime.realloc rt h ~new_size:72))
       hs;
     Array.iter (Lp_ialloc.Runtime.free rt) hs;
     Lp_ialloc.Runtime.leave rt;
     Lp_ialloc.Runtime.finish rt)

(* the shadow heap must follow every resize — through the native realloc
   hooks and through the free+alloc fallback alike — without violations,
   and stay metrically invisible *)
let realloc_sanitized_replay_clean () =
  let trace = Lazy.force realloc_trace in
  List.iter
    (fun name ->
      let plain =
        Lp_allocsim.Driver.run trace (Lp_allocsim.Registry.backend name)
      in
      let sanitized =
        Lp_allocsim.Driver.run trace
          (San.for_backend (Lp_allocsim.Registry.backend name))
      in
      Alcotest.(check bool)
        (name ^ ": sanitized realloc metrics identical")
        true (plain = sanitized))
    (Lp_allocsim.Registry.names ())

(* the driver attributes each resize to exactly one bucket, and the
   in-place/move split genuinely differs between a size-class backend
   and one running on the free+alloc fallback *)
let driver_realloc_attribution () =
  let trace = Lazy.force realloc_trace in
  let events = 3 * 6 in
  let bsd = Lp_allocsim.Driver.run_named trace "bsd" in
  Alcotest.(check int) "bsd reallocs" events bsd.Lp_allocsim.Metrics.reallocs;
  Alcotest.(check int) "bsd split sums"
    events
    (bsd.Lp_allocsim.Metrics.realloc_in_place
    + bsd.Lp_allocsim.Metrics.realloc_moves);
  (* with the 8-byte header, 40..56 start in the 64-byte class and 60 in
     the 128-byte class: ->56 is in place except for the size-60 object,
     ->96 always moves, and the 96->72 shrink stays in the 128 class *)
  Alcotest.(check int) "bsd in place" 11
    bsd.Lp_allocsim.Metrics.realloc_in_place;
  Alcotest.(check int) "bsd moves" 7 bsd.Lp_allocsim.Metrics.realloc_moves;
  let ff = Lp_allocsim.Driver.run_named trace "first-fit" in
  Alcotest.(check int) "fallback reallocs" events
    ff.Lp_allocsim.Metrics.reallocs;
  Alcotest.(check int) "fallback never in place" 0
    ff.Lp_allocsim.Metrics.realloc_in_place;
  Alcotest.(check int) "fallback all moves" events
    ff.Lp_allocsim.Metrics.realloc_moves

let simulate_sanitized_parallel_identical () =
  let test = Lazy.force perl_trace in
  let config = Lifetime.Config.default in
  let table = Lifetime.Train.collect ~config test in
  let predictor = Lifetime.Predictor.build ~config ~funcs:test.funcs table in
  let arena_config = Lifetime.Config.arena_config config in
  let wrap b = San.for_backend ~arena_config b in
  let run domains =
    Lifetime.Parallel.with_domains domains (fun () ->
        Lifetime.Simulate.run ~wrap ~config
          ~oracle:(Lifetime.Oracle.static predictor) ~test ())
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (list string)) "same jobs"
    (Lifetime.Simulate.names seq) (Lifetime.Simulate.names par);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " identical under --sanitize")
        true
        (Lifetime.Simulate.metrics seq name = Lifetime.Simulate.metrics par name))
    (Lifetime.Simulate.names seq)

(* -- predictor-model validator --------------------------------------------------- *)

let key chain size = { Lifetime.Portable.chain; size }

let entry ?(predicted = false) ?(count = 1) ?(short_count = count)
    ?(max_lifetime = 0) k : Lifetime.Model.entry =
  { key = k; predicted; count; short_count; max_lifetime }

let model ?(threshold = 1000) ?(clock = 100_000) entries : Lifetime.Model.t =
  {
    program = "synthetic";
    threshold;
    rounding = 4;
    policy = "complete-chain";
    clock;
    entries;
  }

let validator_findings what expected m =
  check_findings what expected (Validate.run m)

let validator_seeded_defects () =
  validator_findings "clean" []
    (model [ entry ~predicted:true (key [ "f" ] 16) ]);
  validator_findings "orphaned"
    [ ("model-orphaned-site", 0) ]
    (model [ entry ~predicted:true ~count:0 ~short_count:0 (key [ "f" ] 16) ]);
  validator_findings "inconsistent stats"
    [ ("model-orphaned-site", 1) ]
    (model
       [
         entry (key [ "f" ] 16);
         entry ~count:1 ~short_count:2 (key [ "g" ] 16);
       ]);
  validator_findings "contradicted label"
    [ ("model-contradictory-prefix", 0) ]
    (model [ entry ~predicted:true ~count:3 ~short_count:2 (key [ "f" ] 16) ]);
  validator_findings "contradicted prefix"
    [ ("model-contradictory-prefix", 0) ]
    (model
       [
         entry ~predicted:true (key [ "f" ] 16);
         entry ~count:5 ~short_count:0 ~max_lifetime:99_999 (key [ "f"; "g" ] 16);
       ]);
  (* same chain but different size: no contradiction *)
  validator_findings "different size"
    []
    (model
       [
         entry ~predicted:true (key [ "f" ] 16);
         entry ~count:5 ~short_count:0 ~max_lifetime:99_999 (key [ "f"; "g" ] 24);
       ]);
  validator_findings "nonpositive threshold"
    [ ("model-threshold-range", -1) ]
    (model ~threshold:0 []);
  validator_findings "threshold beyond clock"
    [ ("model-threshold-range", -1) ]
    (model ~threshold:200_000 []);
  validator_findings "lifetime at threshold"
    [ ("model-threshold-range", 0) ]
    (model [ entry ~predicted:true ~max_lifetime:1000 (key [ "f" ] 16) ])

let trained_model_roundtrip () =
  let trace = Lazy.force perl_trace in
  let config = Lifetime.Config.default in
  let table = Lifetime.Train.collect ~config trace in
  let predictor = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let m = Lifetime.Model.of_training ~config ~trace table predictor in
  Alcotest.(check bool) "has entries" true (m.entries <> []);
  Alcotest.(check int) "clock" (Lp_trace.Trace.total_bytes trace) m.clock;
  let m' = Lifetime.Model.of_string (Lifetime.Model.to_string m) in
  Alcotest.(check bool) "round-trips" true (m = m');
  (* the rebuilt predictor accepts exactly the entries marked predicted *)
  let rebuilt = Lifetime.Model.predictor ~config m' in
  Alcotest.(check int) "key count" (Lifetime.Predictor.size predictor)
    (Lifetime.Predictor.size rebuilt);
  List.iter
    (fun (e : Lifetime.Model.entry) ->
      Alcotest.(check bool)
        (Lifetime.Portable.to_string e.key)
        e.predicted
        (Lifetime.Predictor.predicts_key rebuilt e.key))
    m'.entries;
  (* a freshly trained model validates clean *)
  check_findings "trained model validates clean" [] (Validate.run m)

let model_detection () =
  let trace = Lazy.force perl_trace in
  Alcotest.(check bool) "model magic" true
    (Lifetime.Model.looks_like_model "lpmodel 1\nend\n");
  Alcotest.(check bool) "trace is not a model" false
    (Lifetime.Model.looks_like_model (Lp_trace.Textio.to_string trace))

let suites =
  [
    ( "lint-corpus",
      List.map corpus_case corpus
      @ [
          Alcotest.test_case "rule selection" `Quick rule_selection;
          Alcotest.test_case "severity contract" `Quick severity_contract;
          Alcotest.test_case "deep chain anomaly" `Quick deep_chain_anomaly;
          Alcotest.test_case "json rendering" `Quick json_rendering;
          Alcotest.test_case "sized-free binary round-trip" `Quick
            sized_free_binary_roundtrip;
          Alcotest.test_case "bundled traces lint clean" `Quick
            bundled_traces_lint_clean;
        ] );
    ( "sanitizer",
      [
        Alcotest.test_case "catches overlap" `Quick catches_overlap;
        QCheck_alcotest.to_alcotest overlap_always_caught;
        Alcotest.test_case "catches unmapped free" `Quick catches_unmapped_free;
        Alcotest.test_case "catches misalignment" `Quick catches_misalignment;
        Alcotest.test_case "catches boundary straddle" `Quick
          catches_boundary_straddle;
        Alcotest.test_case "registry backends replay clean" `Quick
          registry_backends_replay_clean;
        Alcotest.test_case "sanitized realloc replay clean" `Quick
          realloc_sanitized_replay_clean;
        Alcotest.test_case "driver realloc attribution" `Quick
          driver_realloc_attribution;
        Alcotest.test_case "parallel sanitized simulate identical" `Quick
          simulate_sanitized_parallel_identical;
      ] );
    ( "model-validator",
      [
        Alcotest.test_case "seeded defects" `Quick validator_seeded_defects;
        Alcotest.test_case "trained model round-trip" `Quick
          trained_model_roundtrip;
        Alcotest.test_case "model detection" `Quick model_detection;
      ] );
  ]
