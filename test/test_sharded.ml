(* The sharded (.lpt v3) trace layout and its satellites: v2 -> v3 -> v2
   byte-identity, seek/sub window determinism, random covering-partition
   merges reproducing every sequential fold (stats, lifetimes, training,
   lint), the Shard orchestrators across domain counts, the corrupt
   corpus linted range-parallel, the decode-ahead pipeline, and the
   codec/capacity/GC regression tests for the bugs fixed alongside. *)

module Rt = Lp_ialloc.Runtime
module B = Lp_trace.Binio
module Source = Lp_trace.Source
module Sharded = Lp_trace.Sharded
module D = Lp_analysis.Diagnostic

let events src = List.rev (Source.fold (fun acc e -> e :: acc) [] src)

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let rec take n l =
  if n <= 0 then [] else match l with [] -> [] | h :: t -> h :: take (n - 1) t

(* -- wire codec satellites: zigzag/varint over the full int range ------------------- *)

let wire_corner_cases =
  [ min_int; min_int + 1; -129; -128; -2; -1; 0; 1; 2; 63; 64; 127; 128;
    0x3FFF; 0x4000; max_int - 1; max_int ]

let wire_explicit () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "unzigzag (zigzag %d)" n)
        n
        (B.Wire.unzigzag (B.Wire.zigzag n));
      Alcotest.(check int)
        (Printf.sprintf "zigzag wire %d" n)
        n
        (B.Wire.zigzag_of_string (B.Wire.zigzag_to_string n));
      Alcotest.(check int)
        (Printf.sprintf "varint_bits wire %d" n)
        n
        (B.Wire.varint_bits_of_string (B.Wire.varint_bits_to_string n));
      if n >= 0 then
        Alcotest.(check int)
          (Printf.sprintf "varint wire %d" n)
          n
          (B.Wire.varint_of_string (B.Wire.varint_to_string n)))
    wire_corner_cases;
  (* small magnitudes get small codes — the property the deltas rely on *)
  Alcotest.(check int) "zigzag 0" 0 (B.Wire.zigzag 0);
  Alcotest.(check int) "zigzag -1" 1 (B.Wire.zigzag (-1));
  Alcotest.(check int) "zigzag 1" 2 (B.Wire.zigzag 1);
  Alcotest.(check int) "zigzag -2" 3 (B.Wire.zigzag (-2))

(* a generator that actually reaches the top bits, unlike Gen.int *)
let any_int =
  QCheck.make ~print:string_of_int
    QCheck.Gen.(
      frequency
        [
          (1, oneofl [ min_int; min_int + 1; -1; 0; 1; max_int - 1; max_int ]);
          ( 6,
            map2
              (fun hi lo -> (hi lsl 31) lxor lo)
              (int_range (-(1 lsl 31)) ((1 lsl 31) - 1))
              (int_range 0 ((1 lsl 31) - 1)) );
        ])

let wire_roundtrip_prop =
  QCheck.Test.make ~count:500
    ~name:"wire codecs round-trip the full native int range" any_int
    (fun n ->
      B.Wire.unzigzag (B.Wire.zigzag n) = n
      && B.Wire.zigzag_of_string (B.Wire.zigzag_to_string n) = n
      && B.Wire.varint_bits_of_string (B.Wire.varint_bits_to_string n) = n
      && (n < 0 || B.Wire.varint_of_string (B.Wire.varint_to_string n) = n))

let expect_failure name sub f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure m ->
      if
        not
          (String.length m >= String.length sub
          && (let found = ref false in
              for i = 0 to String.length m - String.length sub do
                if String.sub m i (String.length sub) = sub then found := true
              done;
              !found))
      then Alcotest.failf "%s: %S does not mention %S" name m sub

let wire_rejections () =
  (match B.Wire.varint_to_string (-1) with
  | _ -> Alcotest.fail "encoding -1 as unsigned varint should be rejected"
  | exception Invalid_argument _ -> ());
  expect_failure "negative bit pattern into unsigned decode" "unsigned"
    (fun () -> B.Wire.varint_of_string (B.Wire.varint_bits_to_string (-1)));
  expect_failure "overlong varint" "too long" (fun () ->
      B.Wire.varint_bits_of_string (String.make 10 '\xff'));
  expect_failure "trailing bytes" "trailing bytes" (fun () ->
      B.Wire.varint_of_string "\x05\x00");
  expect_failure "truncated varint" "unexpected end" (fun () ->
      B.Wire.varint_of_string "\xff")

(* -- satellite: Grow.ensure clamps at Sys.max_array_length -------------------------- *)

let grow_capacity_overflow () =
  let g = Lp_trace.Grow.create 4 in
  Lp_trace.Grow.set g 2 7;
  Alcotest.(check int) "set/get" 7 (Lp_trace.Grow.get g 2);
  let oob n =
    Alcotest.check_raises
      (Printf.sprintf "ensure %d" n)
      (Failure
         (Printf.sprintf
            "Grow.ensure: requested length %d exceeds Sys.max_array_length (%d)"
            n Sys.max_array_length))
      (fun () -> Lp_trace.Grow.ensure g n)
  in
  oob (Sys.max_array_length + 1);
  oob max_int;
  (* the huge requests must not have disturbed the array *)
  Alcotest.(check int) "contents survive the rejection" 7 (Lp_trace.Grow.get g 2);
  Lp_trace.Grow.ensure g 64;
  Alcotest.(check int) "normal growth still works" 7 (Lp_trace.Grow.get g 2)

(* -- satellite: no stop-the-world full major per job in parallel fan-out ------------ *)

let map_sources_gc_behavior () =
  let trace =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 42 |])
      Test_stream.random_trace_gen
  in
  let make () = Source.of_trace trace in
  let job src = Source.fold (fun n _ -> n + 1) 0 src in
  let jobs = List.init 8 (fun _ -> job) in
  let majors () = (Gc.quick_stat ()).Gc.major_collections in
  (* sequential path: one forced full major per job keeps the high-water
     mark one-job-sized *)
  let before = majors () in
  ignore (Lifetime.Parallel.map_sources ~domains:1 make jobs);
  let seq_delta = majors () - before in
  if seq_delta < List.length jobs then
    Alcotest.failf
      "sequential map_sources ran %d major cycles for %d jobs (expected one per job)"
      seq_delta (List.length jobs);
  (* parallel path: a full major per job is a stop-the-world barrier that
     serializes the pool, so it must not happen *)
  let before = majors () in
  ignore (Lifetime.Parallel.map_sources ~domains:2 make jobs);
  let par_delta = majors () - before in
  if par_delta >= List.length jobs then
    Alcotest.failf "parallel map_sources forced %d major cycles for %d jobs"
      par_delta (List.length jobs)

(* -- v3: golden round trip and sequential-decode equivalence ------------------------ *)

let chunked_gen =
  QCheck.Gen.(pair Test_stream.random_trace_gen (int_range 1 40))

let print_chunked (_, chunk_events) =
  Printf.sprintf "<trace> chunk_events=%d" chunk_events

let v3_roundtrip =
  QCheck.Test.make ~count:40 ~name:"v2 -> v3 -> v2 is byte-identical"
    (QCheck.make ~print:print_chunked chunked_gen)
    (fun (trace, chunk_events) ->
      let v2 = B.to_string trace in
      let v3 = B.to_string_v3 ~chunk_events trace in
      let back = B.to_string (B.of_string ~name:"rt.lpt" v3) in
      if back <> v2 then
        QCheck.Test.fail_reportf "v2->v3->v2 differs (chunk_events=%d)"
          chunk_events;
      let expect = events (Source.of_trace trace) in
      (* the streaming decoder walks v3 chunk by chunk *)
      if events (Source.of_string ~name:"rt.lpt" v3) <> expect then
        QCheck.Test.fail_reportf "sequential v3 decode differs";
      (* the seekable index yields the same stream *)
      let ix = B.index ~name:"rt.lpt" (B.big_of_string v3) in
      let src = Source.of_indexed ix in
      if events src <> expect then
        QCheck.Test.fail_reportf "indexed v3 decode differs";
      let c = Source.counters src in
      c.Source.instructions = trace.Lp_trace.Trace.instructions
      && c.Source.calls = trace.Lp_trace.Trace.calls
      && c.Source.heap_refs = trace.Lp_trace.Trace.heap_refs
      && c.Source.total_refs = trace.Lp_trace.Trace.total_refs
      && Source.n_objects src = trace.Lp_trace.Trace.n_objects)

(* -- v3: seek and sub are deterministic windows ------------------------------------- *)

let seek_gen =
  QCheck.Gen.(
    triple Test_stream.random_trace_gen (int_range 1 16) (int_range 0 9999))

let seek_sub_determinism =
  QCheck.Test.make ~count:40
    ~name:"Source.seek/sub windows equal slices of the full stream"
    (QCheck.make seek_gen)
    (fun (trace, chunk_events, salt) ->
      let v3 = B.to_string_v3 ~chunk_events trace in
      let ix = B.index ~name:"rt.lpt" (B.big_of_string v3) in
      let all = events (Source.of_indexed ix) in
      let n = List.length all in
      let pos = if n = 0 then 0 else salt mod (n + 1) in
      let first = pos in
      let count = if n = first then 0 else salt * 7 mod (n - first + 1) in
      List.iter
        (fun (kind, fresh) ->
          (* seek forward from the start *)
          let s = fresh () in
          Source.seek s pos;
          if events s <> drop pos all then
            QCheck.Test.fail_reportf "%s: seek %d differs" kind pos;
          (* seek back after a partial drain *)
          let s = fresh () in
          let half = n / 2 in
          for _ = 1 to half do
            ignore (Source.next s)
          done;
          Source.seek s pos;
          if events s <> drop pos all then
            QCheck.Test.fail_reportf "%s: rewind to %d differs" kind pos;
          (* sub yields exactly the requested window *)
          let w = Source.sub (fresh ()) ~first ~count in
          if events w <> take count (drop first all) then
            QCheck.Test.fail_reportf "%s: sub %d+%d differs" kind first count;
          (* and a sub of the sub nests *)
          let inner = min count 3 in
          let w2 = Source.sub (fresh ()) ~first ~count in
          let w2 = Source.sub w2 ~first:0 ~count:inner in
          if events w2 <> take inner (take count (drop first all)) then
            QCheck.Test.fail_reportf "%s: nested sub differs" kind)
        [
          ("indexed", fun () -> Source.of_indexed ix);
          ("of_trace", fun () -> Source.of_trace trace);
        ];
      true)

(* -- v3: random covering partitions merge to every sequential fold ------------------ *)

let summary_fingerprint (s : Lp_trace.Lifetimes.summary) =
  let count = Lp_quantile.Histogram.count s.Lp_trace.Lifetimes.hist in
  let quart =
    if count = 0 then None
    else Some (Lp_quantile.Histogram.quartiles s.Lp_trace.Lifetimes.hist)
  in
  ( count,
    quart,
    s.Lp_trace.Lifetimes.short_bytes,
    s.Lp_trace.Lifetimes.total_alloc_bytes )

let model_string_of_streamed ~config ~program ~funcs
    (st : Lifetime.Train.streamed) =
  let predictor =
    Lifetime.Predictor.build ~config ~funcs st.Lifetime.Train.table
  in
  Lifetime.Model.to_string
    (Lifetime.Model.of_training_parts ~config ~program ~funcs
       ~clock:st.Lifetime.Train.end_clock st.Lifetime.Train.table predictor)

(* split [n_chunks] into a covering partition of contiguous ranges,
   consuming widths from [cuts] (1-4 chunks each, remainder in one tail
   range once the list runs out) *)
let partition_of sh cuts =
  let n = Sharded.n_chunks sh in
  let rec go first acc cuts =
    if first >= n then List.rev acc
    else
      let count, rest =
        match cuts with c :: rest -> (min c (n - first), rest) | [] -> (n - first, [])
      in
      go (first + count) (Sharded.range sh ~first ~count :: acc) rest
  in
  go 0 [] cuts

let partition_gen =
  QCheck.Gen.(
    triple Test_stream.random_trace_gen (int_range 1 12)
      (list_size (int_range 0 8) (int_range 1 4)))

let realloc_partition_gen =
  QCheck.Gen.(
    triple Test_stream.random_realloc_trace_gen (int_range 1 12)
      (list_size (int_range 0 8) (int_range 1 4)))

let check_partition (trace, chunk_events, cuts) =
      let config = Lifetime.Config.default in
      let threshold = 32 in
      let v3 = B.to_string_v3 ~chunk_events trace in
      let sh = Sharded.of_string ~name:"rt.lpt" v3 in
      let ranges = partition_of sh cuts in
      (* stats *)
      let st_expect = Lp_trace.Stats.compute_source (Source.of_trace trace) in
      let st_got =
        Lp_trace.Stats.merge_ranges sh
          (List.map Lp_trace.Stats.compute_range ranges)
      in
      if st_got <> st_expect then
        QCheck.Test.fail_reportf "stats differ over %d ranges"
          (List.length ranges);
      (* lifetimes *)
      let lt_expect =
        summary_fingerprint
          (Lp_trace.Lifetimes.summary_source ~threshold
             (Source.of_trace trace))
      in
      let lt_got =
        summary_fingerprint
          (Lp_trace.Lifetimes.merge_summaries ~threshold
             (List.map (fun r -> Lp_trace.Lifetimes.fold_range r) ranges))
      in
      if lt_got <> lt_expect then
        QCheck.Test.fail_reportf "lifetime summaries differ over %d ranges"
          (List.length ranges);
      (* training *)
      let tr_expect =
        let src = Source.of_trace trace in
        let st = Lifetime.Train.collect_source ~config src in
        model_string_of_streamed ~config ~program:src.Source.program
          ~funcs:(src.Source.funcs ()) st
      in
      let tr_got =
        let st =
          Lifetime.Train.merge_ranges ~config sh
            (List.map (fun r -> Lifetime.Train.collect_range ~config r) ranges)
        in
        model_string_of_streamed ~config
          ~program:(Sharded.header sh).B.program
          ~funcs:(B.indexed_funcs (Sharded.index sh))
          st
      in
      if tr_got <> tr_expect then
        QCheck.Test.fail_reportf "trained models differ over %d ranges"
          (List.length ranges);
      (* lint *)
      let li_expect =
        D.list_to_json (Lp_analysis.Lint.run_source (Source.of_trace trace))
      in
      let li_got =
        D.list_to_json
          (Lp_analysis.Lint.merge_ranges sh
             (List.map (fun r -> Lp_analysis.Lint.run_range r) ranges))
      in
      if li_got <> li_expect then
        QCheck.Test.fail_reportf "lint diagnostics differ over %d ranges"
          (List.length ranges);
      true

let partition_fold_determinism =
  QCheck.Test.make ~count:25
    ~name:"random range partitions merge to the sequential folds"
    (QCheck.make partition_gen)
    check_partition

(* the same merge machinery over realloc-bearing traces: chunk
   boundaries can now fall between a resize and the object's free, so
   the carry-in size snapshots must report the post-resize size *)
let realloc_partition_fold_determinism =
  QCheck.Test.make ~count:25
    ~name:"realloc-bearing range partitions merge to the sequential folds"
    (QCheck.make realloc_partition_gen)
    check_partition

(* deterministic boundary case: with 2-event chunks, object 0's growing
   resize, shrinking resize, and size-declaring free each land in a
   different chunk, so every later range sees the object only through
   its carry-in snapshot.  A carry that recorded the birth size instead
   of the current size would mis-merge live bytes and make lint flag the
   (correct) declared sizes. *)
let realloc_carry_across_chunk_boundary () =
  let text =
    String.concat "\n"
      [
        "trace carry boundary";
        "func 0 main";
        "chain 0 0";
        "counters 0 0 0 0";
        "a 0 40 0 0 -1 0";
        "a 1 16 0 0 -1 0";
        "r 1 1";
        "g 0 40 104 0 0 -1";
        "r 1 1";
        "g 0 104 72 0 0 -1";
        "r 1 1";
        "f 0 72";
        "f 1";
        "end";
        "";
      ]
  in
  let trace = Lp_trace.Textio.of_string text in
  let v3 = B.to_string_v3 ~chunk_events:2 trace in
  let sh = Sharded.of_string ~name:"carry.lpt" v3 in
  Alcotest.(check bool) "enough chunks to split the lifetime" true
    (Sharded.n_chunks sh >= 4);
  (* decode round-trip preserves the realloc payloads exactly *)
  let back = B.of_string ~name:"carry.lpt" v3 in
  Alcotest.(check bool) "events round-trip" true (back.events = trace.events);
  (* per-chunk range folds, merged, equal the sequential results *)
  let ranges = partition_of sh (List.init (Sharded.n_chunks sh) (fun _ -> 1)) in
  let st_expect = Lp_trace.Stats.compute_source (Source.of_trace trace) in
  let st_got =
    Lp_trace.Stats.merge_ranges sh
      (List.map Lp_trace.Stats.compute_range ranges)
  in
  if st_got <> st_expect then Alcotest.fail "stats differ across the boundary";
  let diags =
    Lp_analysis.Lint.merge_ranges sh
      (List.map (fun r -> Lp_analysis.Lint.run_range r) ranges)
  in
  Alcotest.(check bool) "range lint sees the declared sizes as correct" false
    (Lp_analysis.Diagnostic.has_errors diags);
  Alcotest.(check string) "range lint equals sequential lint"
    (D.list_to_json (Lp_analysis.Lint.run_source (Source.of_trace trace)))
    (D.list_to_json diags)

(* -- the Shard orchestrators across domain counts ----------------------------------- *)

let shard_orchestrators () =
  let config = Lifetime.Config.default in
  let threshold = 64 in
  let trace = Lp_workloads.Registry.trace ~program:"perl" ~input:"tiny" () in
  let sh =
    Sharded.of_string ~name:"perl.lpt" (B.to_string_v3 ~chunk_events:64 trace)
  in
  if Sharded.n_chunks sh < 3 then
    Alcotest.failf "expected several chunks, got %d" (Sharded.n_chunks sh);
  let st_expect = Lp_trace.Stats.compute_source (Source.of_trace trace) in
  let lt_expect =
    summary_fingerprint
      (Lp_trace.Lifetimes.summary_source ~threshold (Source.of_trace trace))
  in
  let tr_expect =
    let src = Source.of_trace trace in
    let st = Lifetime.Train.collect_source ~config src in
    model_string_of_streamed ~config ~program:src.Source.program
      ~funcs:(src.Source.funcs ()) st
  in
  let li_expect =
    D.list_to_json (Lp_analysis.Lint.run_source (Source.of_trace trace))
  in
  List.iter
    (fun domains ->
      let tag fmt = Printf.sprintf fmt domains in
      if Lifetime.Shard.stats ~domains sh <> st_expect then
        Alcotest.failf "stats differ at %d domains" domains;
      Alcotest.(check bool)
        (tag "lifetimes @%d domains")
        true
        (summary_fingerprint (Lifetime.Shard.lifetimes ~domains ~threshold sh)
        = lt_expect);
      let st = Lifetime.Shard.train ~domains ~config sh in
      Alcotest.(check string)
        (tag "model @%d domains")
        tr_expect
        (model_string_of_streamed ~config
           ~program:(Sharded.header sh).B.program
           ~funcs:(B.indexed_funcs (Sharded.index sh))
           st);
      Alcotest.(check string)
        (tag "lint @%d domains")
        li_expect
        (D.list_to_json (Lp_analysis.Lint.run_sharded ~domains sh)))
    [ 1; 2; 3 ]

(* -- the empty trace: one empty chunk ----------------------------------------------- *)

let empty_trace_edge () =
  let trace = Rt.finish (Rt.create ~program:"empty" ~input:"none" ()) in
  Alcotest.(check int) "no events" 0 (Array.length trace.Lp_trace.Trace.events);
  let v3 = B.to_string_v3 ~chunk_events:8 trace in
  Alcotest.(check string) "v2 round trip"
    (B.to_string trace)
    (B.to_string (B.of_string ~name:"empty.lpt" v3));
  let sh = Sharded.of_string ~name:"empty.lpt" v3 in
  Alcotest.(check int) "one chunk" 1 (Sharded.n_chunks sh);
  Alcotest.(check int) "zero events" 0 (Sharded.n_events sh);
  Alcotest.(check (list pass)) "no events streamed" []
    (events (Sharded.source sh));
  let w = Source.sub (Sharded.source sh) ~first:0 ~count:0 in
  Alcotest.(check (list pass)) "empty sub" [] (events w);
  let st = Lifetime.Shard.stats ~domains:2 sh in
  Alcotest.(check int) "no objects" 0 st.Lp_trace.Stats.total_objects;
  Alcotest.(check (list pass)) "no diagnostics" []
    (Lp_analysis.Lint.run_sharded ~domains:2 sh)

(* -- the corrupt corpus, linted range-parallel -------------------------------------- *)

let lint_sharded_corpus_equivalence () =
  List.iter
    (fun file ->
      let path = "corrupt_traces/" ^ file in
      let trace = Lp_trace.Io.read_file path in
      let expect = D.list_to_json (Lp_analysis.Lint.run trace) in
      (* tiny chunks force the anomalies (double frees, touch-after-free,
         leaks) to straddle chunk boundaries *)
      let sh =
        Sharded.of_string ~name:path (B.to_string_v3 ~chunk_events:3 trace)
      in
      List.iter
        (fun domains ->
          let got =
            D.list_to_json (Lp_analysis.Lint.run_sharded ~domains sh)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s @%d domains" file domains)
            expect got)
        [ 1; 2 ])
    Test_stream.corpus_files

(* -- decode-ahead: identical stream, counters and failures -------------------------- *)

let decode_ahead_equivalence =
  QCheck.Test.make ~count:20
    ~name:"decode_ahead yields the identical stream from another domain"
    (QCheck.make Test_stream.random_trace_gen)
    (fun trace ->
      List.for_all
        (fun (kind, make) ->
          let plain = make () in
          let expect = events plain in
          (* a small batch/slot budget forces real producer/consumer
             hand-offs even on short traces *)
          let piped = Source.decode_ahead ~batch:16 ~slots:2 (make ()) in
          if events piped <> expect then
            QCheck.Test.fail_reportf "decode_ahead via %s differs" kind;
          Source.counters piped = Source.counters plain
          && Source.n_objects piped = Source.n_objects plain)
        (Test_stream.sources_of trace))

let decode_ahead_failure_propagation () =
  let trace =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 7 |])
      Test_stream.random_trace_gen
  in
  let bin = B.to_string trace in
  let cut = String.sub bin 0 (String.length bin - 1) in
  let msg_of src =
    match events src with
    | _ -> Alcotest.fail "truncated trace drained without error"
    | exception Failure m -> m
  in
  let expect = msg_of (Source.of_string ~name:"cut.lpt" cut) in
  let got =
    msg_of (Source.decode_ahead (Source.of_string ~name:"cut.lpt" cut))
  in
  Alcotest.(check string) "same failure through the pipeline" expect got

let decode_ahead_driver_equivalence () =
  let trace = Lp_workloads.Registry.trace ~program:"gawk" ~input:"tiny" () in
  let arena_config = Lifetime.Config.arena_config Lifetime.Config.default in
  List.iter
    (fun name ->
      let backend () = Lp_allocsim.Registry.backend ~arena_config name in
      let expect =
        Lp_allocsim.Metrics.to_json (Lp_allocsim.Driver.run trace (backend ()))
      in
      let got =
        Lp_allocsim.Metrics.to_json
          (Lp_allocsim.Driver.run_source ~decode_ahead:true
             (Source.of_trace trace) (backend ()))
      in
      Alcotest.(check string) (name ^ " via decode_ahead") expect got)
    [ "first-fit"; "bsd" ]

let suites =
  [
    ( "sharded",
      [
        QCheck_alcotest.to_alcotest v3_roundtrip;
        QCheck_alcotest.to_alcotest seek_sub_determinism;
        QCheck_alcotest.to_alcotest partition_fold_determinism;
        QCheck_alcotest.to_alcotest realloc_partition_fold_determinism;
        Alcotest.test_case "realloc carry across chunk boundary" `Quick
          realloc_carry_across_chunk_boundary;
        Alcotest.test_case "Shard orchestrators across domain counts" `Quick
          shard_orchestrators;
        Alcotest.test_case "empty trace is one empty chunk" `Quick
          empty_trace_edge;
        Alcotest.test_case "corrupt corpus lints range-parallel identically"
          `Quick lint_sharded_corpus_equivalence;
        QCheck_alcotest.to_alcotest decode_ahead_equivalence;
        Alcotest.test_case "decode_ahead propagates decode failures" `Quick
          decode_ahead_failure_propagation;
        Alcotest.test_case "decode_ahead replay metrics are identical" `Quick
          decode_ahead_driver_equivalence;
      ] );
    ( "sharded-satellites",
      [
        Alcotest.test_case "wire codec corner cases" `Quick wire_explicit;
        QCheck_alcotest.to_alcotest wire_roundtrip_prop;
        Alcotest.test_case "wire codec rejections" `Quick wire_rejections;
        Alcotest.test_case "Grow.ensure clamps at max_array_length" `Quick
          grow_capacity_overflow;
        Alcotest.test_case "map_sources full-major policy" `Quick
          map_sources_gc_behavior;
      ] );
  ]
