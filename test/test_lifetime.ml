(* Tests for the core lifetime-prediction library: training, predictor
   construction, self/true evaluation, cross-run site mapping, and the
   arena simulation glue — on small hand-built programs where the right
   answers are computable by hand. *)

module Rt = Lp_ialloc.Runtime

(* A tiny synthetic program with two allocation sites:
   - site S (under function "short_maker"): n_short objects of 16 bytes,
     each freed immediately -> always short-lived;
   - site L (under "long_maker"): objects of 32 bytes kept alive while
     [filler] bytes are allocated afterwards. *)
let synthetic ?(n_short = 50) ?(filler = 100_000) ~input () =
  let rt = Rt.create ~program:"synthetic" ~input () in
  let main = Rt.func rt "main" in
  let short_maker = Rt.func rt "short_maker" in
  let long_maker = Rt.func rt "long_maker" in
  Rt.enter rt main;
  let long_obj = Rt.in_frame rt long_maker (fun () -> Rt.alloc rt ~size:32) in
  for _ = 1 to n_short do
    Rt.in_frame rt short_maker (fun () ->
        let h = Rt.alloc rt ~size:16 in
        Rt.touch rt h 3;
        Rt.free rt h)
  done;
  (* filler keeps the long object alive past the threshold *)
  Rt.in_frame rt long_maker (fun () ->
      let rec fill remaining =
        if remaining > 0 then begin
          let h = Rt.alloc rt ~size:1024 in
          Rt.free rt h;
          fill (remaining - 1024)
        end
      in
      fill filler);
  Rt.free rt long_obj;
  Rt.leave rt;
  Rt.finish rt

let config = Lifetime.Config.default

let train_finds_sites () =
  let trace = synthetic ~input:"a" () in
  let table = Lifetime.Train.collect ~config trace in
  (* sites: short_maker x16, long_maker x32, long_maker x1024 *)
  Alcotest.(check int) "three sites" 3 (Lifetime.Train.total_sites table)

let predictor_accepts_only_all_short () =
  let trace = synthetic ~input:"a" () in
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  (* the 16-byte site and the 1024-byte filler site are all-short; the
     32-byte long site is not *)
  Alcotest.(check int) "two short sites" 2 (Lifetime.Predictor.size p)

let self_prediction_is_exact () =
  let trace = synthetic ~input:"a" () in
  let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train:trace ~test:trace in
  Alcotest.(check int) "no error bytes in self prediction" 0 e.error_bytes;
  (* correct bytes: all short objects (50*16 + filler) but not the long 32 *)
  Alcotest.(check int) "correct bytes" (e.actual_short_bytes) e.correct_bytes

let true_prediction_maps_by_name () =
  let train = synthetic ~input:"a" () in
  let test = synthetic ~n_short:70 ~input:"b" () in
  let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
  (* the sites map by function names + size even though the runs differ *)
  Alcotest.(check int) "both short sites used" 2 e.sites_used;
  Alcotest.(check int) "no error" 0 e.error_bytes;
  Alcotest.(check int) "all short bytes predicted" e.actual_short_bytes e.correct_bytes

let true_prediction_catches_behaviour_change () =
  (* train where the "long" site is actually short (tiny filler), test where
     it is long: the predictor must mispredict exactly those bytes *)
  let train = synthetic ~filler:1000 ~input:"a" () in
  let test = synthetic ~filler:100_000 ~input:"b" () in
  let _, e = Lifetime.Evaluate.train_and_evaluate ~config ~train ~test in
  Alcotest.(check int) "error = the long object's 32 bytes" 32 e.error_bytes

let size_only_policy () =
  let trace = synthetic ~input:"a" () in
  let config = { config with policy = Lp_callchain.Site.Size_only } in
  let table = Lifetime.Train.collect ~config trace in
  (* sizes: 16 (short), 32 (long), 1024 (short) -> 3 sites, 2 predicted *)
  Alcotest.(check int) "three size classes" 3 (Lifetime.Train.total_sites table);
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  Alcotest.(check int) "two predicted" 2 (Lifetime.Predictor.size p)

let rounding_collapses_sites () =
  (* sizes 14 and 16 round to the same portable key; if one site is dirty
     the collapsed key must be evicted (conservative rule) *)
  let rt = Rt.create ~program:"r" ~input:"t" () in
  let main = Rt.func rt "main" in
  Rt.enter rt main;
  (* same chain, size 14: short-lived *)
  let a = Rt.alloc rt ~size:14 in
  Rt.free rt a;
  (* same chain, size 16: long-lived *)
  let b = Rt.alloc rt ~size:16 in
  let rec fill n = if n > 0 then begin
      let h = Rt.alloc rt ~size:4096 in
      Rt.free rt h;
      fill (n - 4096)
    end
  in
  fill 100_000;
  Rt.free rt b;
  Rt.leave rt;
  let trace = Rt.finish rt in
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  (* predictor may keep the 4096 filler site but must NOT keep the 16-bucket
     key that the dirty size-16 site shares with the clean size-14 site *)
  let e = Lifetime.Evaluate.run ~config p trace in
  Alcotest.(check int) "no error bytes thanks to conservative eviction" 0
    e.error_bytes

let simulation_places_short_in_arenas () =
  let trace = synthetic ~input:"a" () in
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static p) ~test:trace () in
  let m = (Lifetime.Simulate.arena_len4 sim) in
  Alcotest.(check bool) "most allocs in arenas" true
    (Lp_allocsim.Metrics.arena_alloc_pct m > 90.);
  (* prediction cost of 18 instructions is charged per alloc *)
  Alcotest.(check bool) "len4 cheaper than cce or close" true
    (m.instr_per_alloc <= (Lifetime.Simulate.arena_cce sim).instr_per_alloc +. 1e-9
     || (Lifetime.Simulate.arena_cce sim).instr_per_alloc > 0.)

let first_fit_vs_arena_heaps () =
  let trace = synthetic ~input:"a" () in
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let sim = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static p) ~test:trace () in
  (* small-heap program: arena adds its 64 KB area (paper Table 8's small
     programs all grow) *)
  Alcotest.(check bool) "arena heap >= first-fit heap for tiny program" true
    ((Lifetime.Simulate.arena_len4 sim).max_heap >= (Lifetime.Simulate.first_fit sim).max_heap)

let experiments_table1 () =
  let rows = Lifetime.Experiments.table1 () in
  Alcotest.(check int) "five programs" 5 (List.length rows);
  List.iter
    (fun (r : Lifetime.Experiments.table1_row) ->
      Alcotest.(check bool) (r.program ^ " described") true
        (String.length r.description > 20))
    rows

let portable_key_roundtrip () =
  let tbl = Lp_callchain.Func.create_table () in
  let f = Lp_callchain.Func.intern tbl "f" and g = Lp_callchain.Func.intern tbl "g" in
  let site =
    Lp_callchain.Site.make Lp_callchain.Site.Complete_chain ~raw_chain:[| g; f |]
      ~key:0 ~size:13
  in
  let p = Lifetime.Portable.of_site tbl ~rounding:4 site in
  Alcotest.(check (list string)) "names" [ "g"; "f" ] p.chain;
  Alcotest.(check int) "rounded size" 16 p.size;
  (* a second table with different ids yields an equal key *)
  let tbl2 = Lp_callchain.Func.create_table () in
  let _ = Lp_callchain.Func.intern tbl2 "zzz" in
  let f2 = Lp_callchain.Func.intern tbl2 "f" and g2 = Lp_callchain.Func.intern tbl2 "g" in
  let site2 =
    Lp_callchain.Site.make Lp_callchain.Site.Complete_chain ~raw_chain:[| g2; f2 |]
      ~key:0 ~size:15
  in
  let p2 = Lifetime.Portable.of_site tbl2 ~rounding:4 site2 in
  Alcotest.(check bool) "cross-table equality" true (Lifetime.Portable.equal p p2)

let fraction_selection_trades_error () =
  (* a site with 9 short + 1 long object: All_short rejects it,
     Fraction 0.8 accepts it (and produces error bytes) *)
  let rt = Rt.create ~program:"f" ~input:"t" () in
  let main = Rt.func rt "main" in
  Rt.enter rt main;
  let keep = ref None in
  for i = 1 to 10 do
    let h = Rt.alloc rt ~size:64 in
    if i = 10 then keep := Some h else Rt.free rt h
  done;
  let rec fill n = if n > 0 then begin
      let h = Rt.alloc rt ~size:4096 in
      Rt.free rt h;
      fill (n - 4096)
    end
  in
  fill 100_000;
  Option.iter (Rt.free rt) !keep;
  Rt.leave rt;
  let trace = Rt.finish rt in
  let table = Lifetime.Train.collect ~config trace in
  let strict = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let lax =
    Lifetime.Predictor.build ~selection:(Lifetime.Predictor.Fraction 0.8) ~config
      ~funcs:trace.funcs table
  in
  let es = Lifetime.Evaluate.run ~config strict trace in
  let el = Lifetime.Evaluate.run ~config lax trace in
  Alcotest.(check int) "strict: no error" 0 es.error_bytes;
  Alcotest.(check bool) "lax: more coverage" true (el.correct_bytes > es.correct_bytes);
  Alcotest.(check bool) "lax: pays with error" true (el.error_bytes > 0)

(* -- domain pool and observability ---------------------------------------------- *)

let parallel_map_matches_sequential () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int)) "squares" (List.map (fun x -> x * x) xs)
    (Lifetime.Parallel.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty" [] (Lifetime.Parallel.map ~domains:4 Fun.id []);
  (* nested maps degrade to sequential instead of spawning domains *)
  Alcotest.(check (list (list int))) "nested"
    [ [ 0; 1 ]; [ 0; 1 ] ]
    (Lifetime.Parallel.map ~domains:2
       (fun _ -> Lifetime.Parallel.map ~domains:2 Fun.id [ 0; 1 ])
       [ 0; 1 ])

let parallel_map_propagates_exceptions () =
  match
    Lifetime.Parallel.map ~domains:3
      (fun x -> if x = 5 then failwith "job 5 blew up" else x)
      (List.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "message" "job 5 blew up" msg

let metrics_equal (a : Lp_allocsim.Metrics.t) (b : Lp_allocsim.Metrics.t) = a = b

let parallel_simulation_matches_sequential () =
  let trace = synthetic ~input:"a" () in
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let sim_seq =
    Lifetime.Parallel.with_domains 1 (fun () ->
        Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static p) ~test:trace ())
  in
  let sim_par =
    Lifetime.Parallel.with_domains 4 (fun () ->
        Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static p) ~test:trace ())
  in
  Alcotest.(check bool) "first-fit identical" true
    (metrics_equal (Lifetime.Simulate.first_fit sim_seq) (Lifetime.Simulate.first_fit sim_par));
  Alcotest.(check bool) "bsd identical" true (metrics_equal (Lifetime.Simulate.bsd sim_seq) (Lifetime.Simulate.bsd sim_par));
  Alcotest.(check bool) "arena len4 identical" true
    (metrics_equal (Lifetime.Simulate.arena_len4 sim_seq) (Lifetime.Simulate.arena_len4 sim_par));
  Alcotest.(check bool) "arena cce identical" true
    (metrics_equal (Lifetime.Simulate.arena_cce sim_seq) (Lifetime.Simulate.arena_cce sim_par))

let timings_record_replay_stages () =
  Lp_obs.Timings.reset ();
  Lp_obs.Timings.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Lp_obs.Timings.set_enabled false;
      Lp_obs.Timings.reset ())
    (fun () ->
      let trace = synthetic ~input:"a" () in
      let table = Lifetime.Train.collect ~config trace in
      let p = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
      let _ = Lifetime.Simulate.run ~config ~oracle:(Lifetime.Oracle.static p) ~test:trace () in
      let stages = Lp_obs.Timings.stages () in
      let find name =
        match List.find_opt (fun s -> s.Lp_obs.Timings.name = name) stages with
        | Some s -> s
        | None -> Alcotest.failf "missing stage %s" name
      in
      let events = Array.length trace.Lp_trace.Trace.events in
      Alcotest.(check int) "first-fit replay counted once" 1
        (find "replay/first-fit").calls;
      Alcotest.(check int) "bsd items = events" events (find "replay/bsd").items;
      (* the two arena pricings aggregate under one stage *)
      Alcotest.(check int) "two arena replays" 2 (find "replay/arena").calls)

(* Regression: the simulation cache key must cover every Config field the
   cached row depends on — it used to ignore the config entirely, so a
   sweep varying e.g. the threshold read back stale rows computed under
   the default. *)
let cache_key_covers_config () =
  let base = Lifetime.Config.default in
  let key ?scale ?allocators c =
    Lifetime.Experiments.cache_key ?scale ?allocators ~config:c "prog"
  in
  Alcotest.(check string) "same inputs, same key" (key base) (key base);
  let distinct what k = Alcotest.(check bool) what true (k <> key base) in
  distinct "threshold in key" (key { base with short_lived_threshold = 1024 });
  distinct "n_arenas in key" (key { base with n_arenas = 4 });
  distinct "arena_size in key" (key { base with arena_size = 8192 });
  distinct "size_rounding in key" (key { base with size_rounding = 16 });
  distinct "policy in key"
    (key { base with policy = Lp_callchain.Site.Last_callers 2 });
  distinct "scale in key" (key ~scale:0.5 base);
  distinct "allocators in key" (key ~allocators:[ "first-fit" ] base)

(* The exact weighted quantile uses a ceiling rank: with weights
   (1,w=1) (2,w=2) (3,w=3), total 6, the 25% quantile must cover
   ceil(1.5) = 2 bytes -> value 2; the floored rank used to return 1. *)
let weighted_quantile_ceiling_rank () =
  let sorted = [ (1., 1); (2., 2); (3., 3) ] in
  let q p = Lifetime.Experiments.weighted_quantile sorted ~total:6 p in
  Alcotest.(check (float 0.)) "q25 covers 2 of 6 bytes" 2. (q 0.25);
  Alcotest.(check (float 0.)) "median covers 3 of 6 bytes" 2. (q 0.50);
  Alcotest.(check (float 0.)) "q75 covers 5 of 6 bytes" 3. (q 0.75);
  Alcotest.(check (float 0.)) "q100 is the max" 3. (q 1.0);
  Alcotest.(check (float 0.)) "q0 is the min" 1. (q 0.)

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "map matches sequential" `Quick
          parallel_map_matches_sequential;
        Alcotest.test_case "map propagates exceptions" `Quick
          parallel_map_propagates_exceptions;
        Alcotest.test_case "parallel simulation = sequential" `Quick
          parallel_simulation_matches_sequential;
        Alcotest.test_case "timings record replay stages" `Quick
          timings_record_replay_stages;
      ] );
    ( "lifetime",
      [
        Alcotest.test_case "training finds sites" `Quick train_finds_sites;
        Alcotest.test_case "all-short selection" `Quick predictor_accepts_only_all_short;
        Alcotest.test_case "self prediction exact" `Quick self_prediction_is_exact;
        Alcotest.test_case "true prediction maps by name" `Quick
          true_prediction_maps_by_name;
        Alcotest.test_case "true prediction catches change" `Quick
          true_prediction_catches_behaviour_change;
        Alcotest.test_case "size-only policy" `Quick size_only_policy;
        Alcotest.test_case "rounding collapse is conservative" `Quick
          rounding_collapses_sites;
        Alcotest.test_case "simulation uses arenas" `Quick
          simulation_places_short_in_arenas;
        Alcotest.test_case "heap comparison" `Quick first_fit_vs_arena_heaps;
        Alcotest.test_case "table1 rows" `Quick experiments_table1;
        Alcotest.test_case "portable keys" `Quick portable_key_roundtrip;
        Alcotest.test_case "fraction selection" `Quick fraction_selection_trades_error;
        Alcotest.test_case "cache key covers config" `Quick cache_key_covers_config;
        Alcotest.test_case "weighted quantile ceiling rank" `Quick
          weighted_quantile_ceiling_rank;
      ] );
  ]
