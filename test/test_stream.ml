(* Streamed-vs-materialized equivalence for the pull-based event-source
   architecture: every registry backend must produce byte-identical
   metrics whether it replays a materialized trace or pulls the same
   events from a text parser, a binary decoder, an in-memory cursor, or a
   live workload generator — sequentially and across domains.  Plus the
   satellite contracts: streaming training/stats/lifetimes/lint
   equivalence, the LPALLOC_DOMAINS usage error, the streaming
   observability counters, and file/offset context on I/O failures. *)

module Rt = Lp_ialloc.Runtime
module Source = Lp_trace.Source
module D = Lp_analysis.Diagnostic

(* random traces via the instrumented runtime, as in test_properties *)
let random_trace_gen =
  QCheck.Gen.(
    list_size (int_range 1 60) (pair (int_range 1 200) (int_range 0 6))
    >|= fun ops ->
    let rt = Rt.create ~program:"fuzz" ~input:"gen" () in
    let funcs = Array.init 4 (fun i -> Rt.func rt (Printf.sprintf "f%d" i)) in
    let live = ref [] in
    List.iter
      (fun (size, action) ->
        match action with
        | 0 | 1 | 2 ->
            let depth = 1 + (size mod 3) in
            for d = 0 to depth - 1 do
              Rt.enter rt funcs.(d)
            done;
            let h = Rt.alloc rt ~size in
            Rt.touch rt h (1 + (size mod 4));
            for _ = 1 to depth do
              Rt.leave rt
            done;
            live := h :: !live
        | 3 | 4 -> (
            match !live with
            | h :: rest ->
                Rt.free rt h;
                live := rest
            | [] -> ())
        | _ -> Rt.non_heap_refs rt size)
      ops;
    Rt.finish rt)

(* the realloc-bearing twin of [random_trace_gen], for the v3-only paths
   (the v1/v2 writers refuse these traces); every generated trace carries
   at least one resize, and both grow and shrink directions occur *)
let random_realloc_trace_gen =
  QCheck.Gen.(
    list_size (int_range 5 60) (pair (int_range 1 200) (int_range 0 8))
    >|= fun ops ->
    let rt = Rt.create ~program:"fuzz" ~input:"realloc" () in
    let funcs = Array.init 4 (fun i -> Rt.func rt (Printf.sprintf "f%d" i)) in
    let live = ref [] in
    let reallocs = ref 0 in
    List.iter
      (fun (size, action) ->
        match action with
        | 0 | 1 | 2 ->
            let depth = 1 + (size mod 3) in
            for d = 0 to depth - 1 do
              Rt.enter rt funcs.(d)
            done;
            let h = Rt.alloc rt ~size in
            Rt.touch rt h (1 + (size mod 4));
            for _ = 1 to depth do
              Rt.leave rt
            done;
            live := h :: !live
        | 3 | 4 -> (
            match !live with
            | h :: rest ->
                Rt.free rt h;
                live := rest
            | [] -> ())
        | 5 | 6 -> (
            (* resize the most recent survivor inside a frame, so the
               resize site has its own call-chain *)
            match !live with
            | h :: _ ->
                Rt.enter rt funcs.(size mod 4);
                ignore (Rt.realloc rt h ~new_size:(1 + (size * 7 mod 311)) : int);
                Rt.leave rt;
                incr reallocs
            | [] -> ())
        | _ -> Rt.non_heap_refs rt size)
      ops;
    if !reallocs = 0 then begin
      let h = Rt.alloc rt ~size:48 in
      ignore (Rt.realloc rt h ~new_size:96 : int)
    end;
    Rt.finish rt)

let arena_config = Lifetime.Config.arena_config Lifetime.Config.default

(* the three serialized/in-memory source kinds of one trace *)
let sources_of trace =
  let text = Lp_trace.Textio.to_string trace in
  let bin = Lp_trace.Binio.to_string trace in
  [
    ("of_trace", fun () -> Source.of_trace trace);
    ("text", fun () -> Source.of_string ~name:"fuzz.txt" text);
    ("binary", fun () -> Source.of_string ~name:"fuzz.lpt" bin);
  ]

(* -- replay: every backend, every source kind ------------------------------------ *)

let backend_replay_equivalence =
  QCheck.Test.make ~count:30
    ~name:"streamed replay equals materialized for every backend and source"
    (QCheck.make random_trace_gen)
    (fun trace ->
      let srcs = sources_of trace in
      List.for_all
        (fun name ->
          let expect =
            Lp_allocsim.Metrics.to_json
              (Lp_allocsim.Driver.run trace
                 (Lp_allocsim.Registry.backend ~arena_config name))
          in
          List.for_all
            (fun (kind, make) ->
              let got =
                Lp_allocsim.Metrics.to_json
                  (Lp_allocsim.Driver.run_source (make ())
                     (Lp_allocsim.Registry.backend ~arena_config name))
              in
              if got <> expect then
                QCheck.Test.fail_reportf "%s via %s source:\n%s\nvs\n%s" name
                  kind got expect;
              true)
            srcs)
        (Lp_allocsim.Registry.names ()))

(* -- the generator source: effect-inverted workloads ------------------------------- *)

let generator_source_matches_trace program () =
  let trace = Lp_workloads.Registry.trace ~program ~input:"tiny" () in
  let gen = Lp_workloads.Registry.source ~program ~input:"tiny" () in
  let expect = Lp_trace.Source.fold (fun acc e -> e :: acc) [] (Source.of_trace trace) in
  let got = Lp_trace.Source.fold (fun acc e -> e :: acc) [] gen in
  Alcotest.(check int)
    (program ^ " event count")
    (List.length expect) (List.length got);
  if got <> expect then Alcotest.failf "%s: generator events differ" program;
  let c = Source.counters gen in
  Alcotest.(check (list int))
    (program ^ " counters")
    [ trace.instructions; trace.calls; trace.heap_refs; trace.total_refs ]
    [ c.Source.instructions; c.Source.calls; c.Source.heap_refs; c.Source.total_refs ];
  Alcotest.(check int) (program ^ " objects") trace.n_objects (Source.n_objects gen);
  for obj = 0 to trace.n_objects - 1 do
    if gen.Source.refs_of obj <> trace.obj_refs.(obj) then
      Alcotest.failf "%s: refs_of %d differs" program obj
  done

(* -- the full pipeline: Simulate.run_streamed -------------------------------------- *)

let sim_fingerprint sim =
  List.map
    (fun n -> (n, Lp_allocsim.Metrics.to_json (Lifetime.Simulate.metrics sim n)))
    (Lifetime.Simulate.names sim)

let simulate_streamed_equivalence () =
  let config = Lifetime.Config.default in
  let trace = Lp_workloads.Registry.trace ~program:"perl" ~input:"tiny" () in
  let table = Lifetime.Train.collect ~config trace in
  let predictor = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
  let allocators = Lp_allocsim.Registry.names () in
  let oracle = Lifetime.Oracle.static predictor in
  let expect =
    sim_fingerprint
      (Lifetime.Simulate.run ~allocators ~config ~oracle ~test:trace ())
  in
  let bin = Lp_trace.Binio.to_string trace in
  let check_source what source =
    List.iter
      (fun domains ->
        let got =
          Lifetime.Parallel.with_domains domains (fun () ->
              sim_fingerprint
                (Lifetime.Simulate.run_streamed ~allocators ~config ~oracle
                   ~source ()))
        in
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "%s, %d domains" what domains)
          expect got)
      [ 1; 2 ]
  in
  check_source "binary" (fun () -> Source.of_string ~name:"perl.lpt" bin);
  check_source "of_trace" (fun () -> Source.of_trace trace);
  check_source "generator" (fun () ->
      Lp_workloads.Registry.source ~program:"perl" ~input:"tiny" ())

(* -- training ----------------------------------------------------------------------- *)

let train_streamed_equivalence =
  QCheck.Test.make ~count:50
    ~name:"streamed training produces an identical model"
    (QCheck.make random_trace_gen)
    (fun trace ->
      let config = Lifetime.Config.default in
      let table = Lifetime.Train.collect ~config trace in
      let predictor = Lifetime.Predictor.build ~config ~funcs:trace.funcs table in
      let expect =
        Lifetime.Model.to_string
          (Lifetime.Model.of_training ~config ~trace table predictor)
      in
      List.for_all
        (fun (kind, make) ->
          let src : Source.t = make () in
          let st = Lifetime.Train.collect_source ~config src in
          let funcs = src.Source.funcs () in
          let predictor' =
            Lifetime.Predictor.build ~config ~funcs st.Lifetime.Train.table
          in
          let got =
            Lifetime.Model.to_string
              (Lifetime.Model.of_training_parts ~config
                 ~program:src.Source.program ~funcs
                 ~clock:st.Lifetime.Train.end_clock st.Lifetime.Train.table
                 predictor')
          in
          if got <> expect then
            QCheck.Test.fail_reportf "model differs via %s source" kind;
          true)
        (sources_of trace))

(* -- stats and lifetimes ------------------------------------------------------------- *)

let stats_streamed_equivalence =
  QCheck.Test.make ~count:50 ~name:"streamed stats equal materialized stats"
    (QCheck.make random_trace_gen)
    (fun trace ->
      let expect = Lp_trace.Stats.compute trace in
      List.for_all
        (fun (kind, make) ->
          let got = Lp_trace.Stats.compute_source (make ()) in
          if got <> expect then
            QCheck.Test.fail_reportf "stats differ via %s source" kind;
          true)
        (sources_of trace))

let lifetimes_streamed_equivalence =
  QCheck.Test.make ~count:50
    ~name:"streamed lifetime summary equals materialized fold"
    (QCheck.make random_trace_gen)
    (fun trace ->
      let threshold = 32768 in
      (* the materialized fold as the lifetimes CLI performs it *)
      let lifetimes = Lp_trace.Lifetimes.compute trace in
      let hist = Lp_quantile.Histogram.create () in
      let short = ref 0 and total = ref 0 in
      Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain:_ ~key:_ ~tag:_ ->
          Lp_quantile.Histogram.observe_weighted hist ~weight:size
            (float_of_int lifetimes.lifetime.(obj));
          total := !total + size;
          if Lp_trace.Lifetimes.is_short_lived lifetimes ~threshold obj then
            short := !short + size);
      List.for_all
        (fun (kind, make) ->
          let s = Lp_trace.Lifetimes.summary_source ~threshold (make ()) in
          let same_quartiles =
            (* a trace without allocations has an empty histogram on both
               paths; quartiles raise there, so compare counts instead *)
            if Lp_quantile.Histogram.count hist = 0 then
              Lp_quantile.Histogram.count s.Lp_trace.Lifetimes.hist = 0
            else
              Lp_quantile.Histogram.quartiles s.Lp_trace.Lifetimes.hist
              = Lp_quantile.Histogram.quartiles hist
          in
          if
            (not same_quartiles)
            || s.Lp_trace.Lifetimes.short_bytes <> !short
            || s.Lp_trace.Lifetimes.total_alloc_bytes <> !total
          then QCheck.Test.fail_reportf "lifetime summary differs via %s" kind;
          true)
        (sources_of trace))

(* -- lint: identical diagnostics on the corrupt corpus ------------------------------ *)

let corpus_files =
  [
    "double_free.txt";
    "free_without_alloc.txt";
    "touch_after_free.txt";
    "size_mismatch_at_free.txt";
    "nonpositive_size.txt";
    "realloc_of_unallocated.txt";
    "realloc_after_free.txt";
    "realloc_size_regression.txt";
    "non_monotonic_birth.txt";
    "leaked_at_exit.txt";
    "chain_anomaly.txt";
  ]

let lint_stream_corpus_equivalence () =
  List.iter
    (fun file ->
      let path = "corrupt_traces/" ^ file in
      let expect = D.list_to_json (Lp_analysis.Lint.run (Lp_trace.Io.read_file path)) in
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let got =
        D.list_to_json
          (Lp_analysis.Lint.run_source (Source.of_string ~name:path contents))
      in
      Alcotest.(check string) file expect got)
    corpus_files

(* -- satellite: LPALLOC_DOMAINS usage errors ---------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let domains_env_parse () =
  (match Lifetime.Parallel.parse_env_value "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "\"4\" should parse as 4");
  (match Lifetime.Parallel.parse_env_value " 2 " with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "whitespace should be tolerated");
  List.iter
    (fun bad ->
      match Lifetime.Parallel.parse_env_value bad with
      | Ok n -> Alcotest.failf "%S should not parse (got %d)" bad n
      | Error msg ->
          if not (contains msg (Printf.sprintf "%S" bad)) then
            Alcotest.failf "error for %S does not name the value: %s" bad msg)
    [ "banana"; "0"; "-3"; ""; "2.5" ]

let domains_env_check () =
  Unix.putenv "LPALLOC_DOMAINS" "banana";
  (match Lifetime.Parallel.check_env () with
  | Error msg ->
      if not (String.length msg > 0 && String.sub msg 0 14 = "LPALLOC_DOMAIN") then
        Alcotest.failf "unexpected message: %s" msg
  | Ok () -> Alcotest.fail "invalid env value accepted");
  Unix.putenv "LPALLOC_DOMAINS" "2";
  match Lifetime.Parallel.check_env () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid env value rejected: %s" msg

(* -- satellite: streaming observability counters ------------------------------------ *)

let counter value = Option.value ~default:0 (List.assoc_opt value (Lp_obs.Timings.counters ()))

let streaming_counters () =
  Lp_obs.Timings.set_enabled true;
  Fun.protect ~finally:(fun () -> Lp_obs.Timings.set_enabled false) @@ fun () ->
  let trace =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 11 |]) random_trace_gen
  in
  let before = counter "trace.events_streamed" in
  Source.iter ignore (Source.of_trace trace);
  let streamed = counter "trace.events_streamed" - before in
  Alcotest.(check int) "events_streamed counts the drain"
    (Array.length trace.events) streamed;
  if counter "trace.peak_resident_words" <= 0 then
    Alcotest.fail "peak_resident_words not recorded"

(* -- satellite: I/O failures carry file context ------------------------------------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "lpstream" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc contents);
      f path)

let expect_failure_naming path f =
  match f () with
  | _ -> Alcotest.failf "no failure raised for %s" path
  | exception Failure msg ->
      if not (contains msg path) then
        Alcotest.failf "failure message lacks the file name: %s" msg

let io_error_context () =
  (* text: malformed line -> name and line number *)
  with_temp_file "trace 1\nbogus line\n" (fun path ->
      expect_failure_naming path (fun () -> Lp_trace.Io.read_file path);
      expect_failure_naming path (fun () ->
          Source.iter ignore (Source.of_file path)));
  (* text: truncated (no end) *)
  with_temp_file "trace 1\nprogram p\ninput i\n" (fun path ->
      expect_failure_naming path (fun () -> Lp_trace.Io.read_file path));
  (* binary: truncated after the magic *)
  let trace =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 5 |]) random_trace_gen
  in
  let bin = Lp_trace.Binio.to_string trace in
  with_temp_file (String.sub bin 0 (String.length bin / 2)) (fun path ->
      expect_failure_naming path (fun () -> Lp_trace.Io.read_file path);
      expect_failure_naming path (fun () ->
          Source.iter ignore (Source.of_file path)))

(* -- Grow: the shared growable-array substrate -------------------------------------- *)

let grow_basics () =
  let g = Lp_trace.Grow.create ~default:(-7) 2 in
  Alcotest.(check int) "empty length" 0 (Lp_trace.Grow.length g);
  Alcotest.(check int) "default beyond length" (-7) (Lp_trace.Grow.get g 41);
  Lp_trace.Grow.set g 5 99;
  Alcotest.(check int) "set extends" 6 (Lp_trace.Grow.length g);
  Alcotest.(check int) "gap holds default" (-7) (Lp_trace.Grow.get g 3);
  Alcotest.(check int) "set value" 99 (Lp_trace.Grow.get g 5);
  Lp_trace.Grow.push g 7;
  Alcotest.(check int) "push appends" 7 (Lp_trace.Grow.get g 6);
  Alcotest.(check (array int)) "to_array"
    [| -7; -7; -7; -7; -7; 99; 7 |] (Lp_trace.Grow.to_array g)

let suites =
  [
    ( "stream",
      [
        QCheck_alcotest.to_alcotest backend_replay_equivalence;
        QCheck_alcotest.to_alcotest train_streamed_equivalence;
        QCheck_alcotest.to_alcotest stats_streamed_equivalence;
        QCheck_alcotest.to_alcotest lifetimes_streamed_equivalence;
        Alcotest.test_case "simulate --stream pipeline equivalence" `Quick
          simulate_streamed_equivalence;
        Alcotest.test_case "lint streams the corrupt corpus identically" `Quick
          lint_stream_corpus_equivalence;
        Alcotest.test_case "grow array basics" `Quick grow_basics;
      ]
      @ List.map
          (fun program ->
            Alcotest.test_case
              (Printf.sprintf "generator source: %s" program)
              `Quick
              (generator_source_matches_trace program))
          Lp_workloads.Registry.names );
    ( "stream-satellites",
      [
        Alcotest.test_case "LPALLOC_DOMAINS parse errors" `Quick domains_env_parse;
        Alcotest.test_case "LPALLOC_DOMAINS env check" `Quick domains_env_check;
        Alcotest.test_case "streaming counters" `Quick streaming_counters;
        Alcotest.test_case "I/O failures name the file" `Quick io_error_context;
      ] );
  ]
