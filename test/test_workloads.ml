(* Workload-level tests: deterministic PRNG and corpora, CFRAC end-to-end
   factorization, registry determinism, and the key allocation-profile
   properties of each workload's trace. *)

module Rt = Lp_ialloc.Runtime

let prng_deterministic () =
  let a = Lp_workloads.Prng.of_string "seed" in
  let b = Lp_workloads.Prng.of_string "seed" in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Lp_workloads.Prng.int64 a)
      (Lp_workloads.Prng.int64 b)
  done

let prng_bounds () =
  let rng = Lp_workloads.Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let x = Lp_workloads.Prng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of bounds: %d" x;
    let y = Lp_workloads.Prng.in_range rng 5 9 in
    if y < 5 || y > 9 then Alcotest.failf "in_range out of bounds: %d" y;
    let f = Lp_workloads.Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of bounds: %f" f
  done

let prng_rejects () =
  let rng = Lp_workloads.Prng.create ~seed:1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Lp_workloads.Prng.int rng 0))

let corpus_dictionary () =
  let rng = Lp_workloads.Prng.of_string "dict" in
  let words = Lp_workloads.Corpus.dictionary rng 200 in
  Alcotest.(check int) "200 words" 200 (Array.length words);
  let sorted = Array.copy words in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted" true (words = sorted);
  Alcotest.(check int) "distinct" 200
    (List.length (List.sort_uniq compare (Array.to_list words)))

let cfrac_factors_correctly () =
  let rt = Rt.create ~program:"cfrac" ~input:"t" () in
  let r = Lp_workloads.Cfrac.factor_string rt ~n:"8051" ~max_iters:400 in
  match r.factor with
  | Some f -> Alcotest.(check bool) "factor of 8051" true (f = "83" || f = "97")
  | None -> Alcotest.fail "8051 should factor"

let cfrac_factors_semiprime () =
  (* 1299709 * 104729 = 136117230461 *)
  let rt = Rt.create ~program:"cfrac" ~input:"t" () in
  let r =
    Lp_workloads.Cfrac.factor_string rt
      ~n:(string_of_int (1299709 * 104729))
      ~max_iters:6000
  in
  match r.factor with
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "factor is 1299709 or 104729, got %s" f)
        true
        (f = "1299709" || f = "104729")
  | None -> Alcotest.fail "semiprime should factor"

let registry_deterministic () =
  (* two fresh (uncached) generations of the same input agree exactly *)
  let p = Lp_workloads.Registry.find "gawk" in
  let t1 = p.run ~scale:0.02 ~input:"tiny" () in
  let t2 = p.run ~scale:0.02 ~input:"tiny" () in
  Alcotest.(check int) "objects equal" t1.n_objects t2.n_objects;
  Alcotest.(check int) "events equal" (Array.length t1.events) (Array.length t2.events);
  Alcotest.(check int) "instr equal" t1.instructions t2.instructions;
  Alcotest.(check string) "textio equal" (Lp_trace.Textio.to_string t1)
    (Lp_trace.Textio.to_string t2)

let registry_lists_six () =
  Alcotest.(check (list string)) "paper's five programs plus pint"
    [ "cfrac"; "espresso"; "gawk"; "ghost"; "perl"; "pint" ]
    Lp_workloads.Registry.names

(* pint is the one workload whose traces must carry realloc traffic, with
   both directions of resize present *)
let pint_emits_reallocs () =
  let trace = Lp_workloads.Registry.trace ~scale:0.2 ~program:"pint" ~input:"tiny" () in
  let grows = ref 0 and shrinks = ref 0 in
  let size = Hashtbl.create 64 in
  Array.iter
    (function
      | Lp_trace.Event.Alloc { obj; size = s; _ } -> Hashtbl.replace size obj s
      | Lp_trace.Event.Realloc { obj; old_size; new_size; _ } ->
          (match Hashtbl.find_opt size obj with
          | Some s when s = old_size -> ()
          | Some s ->
              Alcotest.failf "realloc of %d declares old size %d, tracked %d"
                obj old_size s
          | None -> Alcotest.failf "realloc of unallocated object %d" obj);
          if new_size > old_size then incr grows else incr shrinks;
          Hashtbl.replace size obj new_size
      | _ -> ())
    trace.events;
  Alcotest.(check bool) "has growing reallocs" true (!grows > 0);
  Alcotest.(check bool) "has shrinking reallocs" true (!shrinks > 0)

let registry_cache () =
  let t1 = Lp_workloads.Registry.trace ~scale:0.02 ~program:"perl" ~input:"tiny" () in
  let t2 = Lp_workloads.Registry.trace ~scale:0.02 ~program:"perl" ~input:"tiny" () in
  Alcotest.(check bool) "same physical trace" true (t1 == t2)

(* Every workload trace must be well-formed: every free matches a prior
   alloc, no double frees, and mostly-short-lived byte volume (the paper's
   generational hypothesis, >90% short-lived for every program). *)
let trace_well_formed program () =
  let trace = Lp_workloads.Registry.trace ~scale:0.05 ~program ~input:"tiny" () in
  let born = Array.make trace.n_objects false in
  let freed = Array.make trace.n_objects false in
  Array.iter
    (function
      | Lp_trace.Event.Alloc { obj; size; _ } ->
          if born.(obj) then Alcotest.failf "object %d born twice" obj;
          if size <= 0 then Alcotest.failf "object %d non-positive size" obj;
          born.(obj) <- true
      | Lp_trace.Event.Free { obj; _ } ->
          if not born.(obj) then Alcotest.failf "object %d freed before birth" obj;
          if freed.(obj) then Alcotest.failf "object %d freed twice" obj;
          freed.(obj) <- true
      | Lp_trace.Event.Realloc { obj; new_size; _ } ->
          if not born.(obj) then
            Alcotest.failf "object %d realloc'd before birth" obj;
          if freed.(obj) then Alcotest.failf "object %d realloc'd after free" obj;
          if new_size <= 0 then
            Alcotest.failf "object %d realloc'd to non-positive size" obj
      | Lp_trace.Event.Touch { obj; count } ->
          if not born.(obj) then Alcotest.failf "object %d touched before birth" obj;
          if freed.(obj) then Alcotest.failf "object %d touched after free" obj;
          if count <= 0 then Alcotest.failf "object %d non-positive touch" obj)
    trace.events;
  Alcotest.(check bool) "has allocations" true (trace.n_objects > 50);
  let lt = Lp_trace.Lifetimes.compute trace in
  let short_bytes = ref 0 and total = ref 0 in
  Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain:_ ~key:_ ~tag:_ ->
      total := !total + size;
      if Lp_trace.Lifetimes.is_short_lived lt ~threshold:32768 obj then
        short_bytes := !short_bytes + size);
  let pct = 100. *. float_of_int !short_bytes /. float_of_int (max 1 !total) in
  (* ghost's tiny input is dominated by its fixed long-lived VM structures
     (page raster, caches); the band traffic that makes it mostly
     short-lived at full scale is barely present at scale 0.05 *)
  let floor = if program = "ghost" then 20. else 55. in
  if pct < floor then
    Alcotest.failf "%s: only %.1f%% of bytes short-lived on tiny input" program pct

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "prng deterministic" `Quick prng_deterministic;
        Alcotest.test_case "prng bounds" `Quick prng_bounds;
        Alcotest.test_case "prng rejects" `Quick prng_rejects;
        Alcotest.test_case "corpus dictionary" `Quick corpus_dictionary;
        Alcotest.test_case "cfrac factors 8051" `Quick cfrac_factors_correctly;
        Alcotest.test_case "cfrac factors semiprime" `Slow cfrac_factors_semiprime;
        Alcotest.test_case "registry deterministic" `Quick registry_deterministic;
        Alcotest.test_case "registry lists six" `Quick registry_lists_six;
        Alcotest.test_case "pint emits reallocs" `Quick pint_emits_reallocs;
        Alcotest.test_case "registry caches" `Quick registry_cache;
      ]
      @ List.map
          (fun p ->
            Alcotest.test_case ("trace well-formed: " ^ p) `Slow (trace_well_formed p))
          Lp_workloads.Registry.names );
  ]
