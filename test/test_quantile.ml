(* Tests for lp_quantile: the P² estimator against exact quantiles, the
   exact-quantile reference itself, and quartile histograms. *)

let check_float = Alcotest.(check (float 1e-9))

let p2_small_sample () =
  let e = Lp_quantile.P2.create 0.5 in
  List.iter (Lp_quantile.P2.observe e) [ 3.; 1.; 2. ];
  check_float "median of {1,2,3}" 2. (Lp_quantile.P2.quantile e);
  check_float "min" 1. (Lp_quantile.P2.min e);
  check_float "max" 3. (Lp_quantile.P2.max e)

let p2_exact_five () =
  let e = Lp_quantile.P2.create 0.5 in
  List.iter (Lp_quantile.P2.observe e) [ 10.; 20.; 30.; 40.; 50. ];
  check_float "median of 5 sorted" 30. (Lp_quantile.P2.quantile e)

let p2_invalid_p () =
  Alcotest.check_raises "p = 0 rejected" (Invalid_argument
    "P2.create: quantile must lie strictly between 0 and 1")
    (fun () -> ignore (Lp_quantile.P2.create 0.));
  Alcotest.check_raises "p = 1 rejected" (Invalid_argument
    "P2.create: quantile must lie strictly between 0 and 1")
    (fun () -> ignore (Lp_quantile.P2.create 1.))

let p2_no_observations () =
  let e = Lp_quantile.P2.create 0.5 in
  Alcotest.check_raises "empty quantile" (Invalid_argument "P2.quantile: no observations")
    (fun () -> ignore (Lp_quantile.P2.quantile e))

let p2_extremes_are_exact () =
  (* min and max markers are exact regardless of approximation *)
  let e = Lp_quantile.P2.create 0.75 in
  let rng = Lp_workloads.Prng.create ~seed:42L in
  let lo = ref infinity and hi = ref neg_infinity in
  for _ = 1 to 2000 do
    let x = Lp_workloads.Prng.float rng *. 1000. in
    lo := Float.min !lo x;
    hi := Float.max !hi x;
    Lp_quantile.P2.observe e x
  done;
  check_float "exact min" !lo (Lp_quantile.P2.min e);
  check_float "exact max" !hi (Lp_quantile.P2.max e)

(* P² accuracy on uniform data: the estimate must land within a few
   percentile ranks of the true quantile. *)
let p2_accuracy_uniform p () =
  let e = Lp_quantile.P2.create p in
  let exact = Lp_quantile.Exact.create () in
  let rng = Lp_workloads.Prng.create ~seed:7L in
  for _ = 1 to 5000 do
    let x = Lp_workloads.Prng.float rng in
    Lp_quantile.P2.observe e x;
    Lp_quantile.Exact.observe exact x
  done;
  let est = Lp_quantile.P2.quantile e in
  let truth = Lp_quantile.Exact.quantile exact p in
  if Float.abs (est -. truth) > 0.03 then
    Alcotest.failf "P2(%g) = %f, exact = %f: error too large" p est truth

let exact_basics () =
  let e = Lp_quantile.Exact.create () in
  List.iter (Lp_quantile.Exact.observe e) [ 5.; 1.; 9.; 3.; 7. ];
  check_float "median" 5. (Lp_quantile.Exact.quantile e 0.5);
  check_float "min" 1. (Lp_quantile.Exact.quantile e 0.);
  check_float "max" 9. (Lp_quantile.Exact.quantile e 1.);
  check_float "q25" 3. (Lp_quantile.Exact.quantile e 0.25);
  Alcotest.(check int) "count" 5 (Lp_quantile.Exact.count e)

let exact_interpolates () =
  let e = Lp_quantile.Exact.create () in
  List.iter (Lp_quantile.Exact.observe e) [ 0.; 10. ];
  check_float "interpolated median" 5. (Lp_quantile.Exact.quantile e 0.5)

let exact_observe_after_sort () =
  let e = Lp_quantile.Exact.create () in
  Lp_quantile.Exact.observe e 2.;
  ignore (Lp_quantile.Exact.quantile e 0.5);
  Lp_quantile.Exact.observe e 1.;
  check_float "re-sorts after new observation" 1. (Lp_quantile.Exact.quantile e 0.)

let histogram_quartiles () =
  let h = Lp_quantile.Histogram.create () in
  for i = 1 to 100 do
    Lp_quantile.Histogram.observe h (float_of_int i)
  done;
  let q = Lp_quantile.Histogram.quartiles h in
  check_float "min" 1. q.min;
  check_float "max" 100. q.max;
  if Float.abs (q.median -. 50.5) > 3. then Alcotest.failf "median %f too far" q.median;
  if Float.abs (q.q25 -. 25.) > 4. then Alcotest.failf "q25 %f too far" q.q25;
  if Float.abs (q.q75 -. 75.) > 4. then Alcotest.failf "q75 %f too far" q.q75

let histogram_weighted () =
  let h = Lp_quantile.Histogram.create () in
  (* weight 99 at 1.0, weight 1 at 100.0: median must stay near 1 *)
  Lp_quantile.Histogram.observe_weighted h ~weight:99 1.;
  Lp_quantile.Histogram.observe_weighted h ~weight:1 100.;
  Alcotest.(check int) "count is total weight" 100 (Lp_quantile.Histogram.count h);
  let q = Lp_quantile.Histogram.quartiles h in
  if q.median > 30. then Alcotest.failf "weighted median %f pulled too far up" q.median;
  check_float "weighted mean" ((99. +. 100.) /. 100.) (Lp_quantile.Histogram.mean h)

let histogram_weight_validation () =
  let h = Lp_quantile.Histogram.create () in
  Alcotest.check_raises "weight 0 rejected"
    (Invalid_argument "Histogram.observe_weighted: weight must be positive")
    (fun () -> Lp_quantile.Histogram.observe_weighted h ~weight:0 1.)

(* Orderings where the three independent P² estimators' raw estimates
   cross (found by [prop_p2_ordering]); the quartiles repair must keep
   the reported values monotone. *)
let histogram_quartile_crossings () =
  let cases =
    [
      [ 324.870211392; -208.250346179; 808.986836863; -677.35248813;
        808.856200319; -325.928690801; 151.466835038; -830.5099088;
        767.3313888; -361.651796277; -291.417965476; -385.776115257;
        -987.156581883; 291.869451185; 349.462222602; 247.888220408;
        981.117041491; -427.840845236 ];
      [ -721.081350369; 539.173333179; 940.210130617; -79.3057964575;
        482.727498036; -971.172196208; 471.640366581; 635.103330515;
        -742.74930663; 122.033025543; 172.686507545; 380.67743314;
        -127.517891133; -676.602227175; 667.940959642 ];
    ]
  in
  List.iteri
    (fun i xs ->
      let h = Lp_quantile.Histogram.create () in
      List.iter (Lp_quantile.Histogram.observe h) xs;
      let q = Lp_quantile.Histogram.quartiles h in
      if
        not
          (q.min <= q.q25 && q.q25 <= q.median && q.median <= q.q75
         && q.q75 <= q.max)
      then
        Alcotest.failf "case %d: quartiles not ordered: %a" i
          Lp_quantile.Histogram.pp_quartiles q)
    cases

(* property: P² median lies within the sample range and between the
   25% and 75% estimates *)
let prop_p2_ordering =
  QCheck.Test.make ~name:"p2 markers stay ordered" ~count:200
    QCheck.(list_of_size Gen.(int_range 5 200) (float_range (-1000.) 1000.))
    (fun xs ->
      let h = Lp_quantile.Histogram.create () in
      List.iter (Lp_quantile.Histogram.observe h) xs;
      let q = Lp_quantile.Histogram.quartiles h in
      q.min <= q.q25 +. 1e-9
      && q.q25 <= q.median +. 1e-9
      && q.median <= q.q75 +. 1e-9
      && q.q75 <= q.max +. 1e-9)

let prop_exact_monotone =
  QCheck.Test.make ~name:"exact quantile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 100) (float_range 0. 100.))
              (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (p1, p2)) ->
      let e = Lp_quantile.Exact.create () in
      List.iter (Lp_quantile.Exact.observe e) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Lp_quantile.Exact.quantile e lo <= Lp_quantile.Exact.quantile e hi +. 1e-9)

let suites =
  [
    ( "quantile",
      [
        Alcotest.test_case "p2 small sample" `Quick p2_small_sample;
        Alcotest.test_case "p2 exact at five" `Quick p2_exact_five;
        Alcotest.test_case "p2 invalid p" `Quick p2_invalid_p;
        Alcotest.test_case "p2 empty" `Quick p2_no_observations;
        Alcotest.test_case "p2 exact extremes" `Quick p2_extremes_are_exact;
        Alcotest.test_case "p2 accuracy p=0.25" `Quick (p2_accuracy_uniform 0.25);
        Alcotest.test_case "p2 accuracy p=0.5" `Quick (p2_accuracy_uniform 0.5);
        Alcotest.test_case "p2 accuracy p=0.75" `Quick (p2_accuracy_uniform 0.75);
        Alcotest.test_case "p2 accuracy p=0.9" `Quick (p2_accuracy_uniform 0.9);
        Alcotest.test_case "exact basics" `Quick exact_basics;
        Alcotest.test_case "exact interpolation" `Quick exact_interpolates;
        Alcotest.test_case "exact re-sorts" `Quick exact_observe_after_sort;
        Alcotest.test_case "histogram quartiles" `Quick histogram_quartiles;
        Alcotest.test_case "histogram weighted" `Quick histogram_weighted;
        Alcotest.test_case "histogram weight check" `Quick histogram_weight_validation;
        Alcotest.test_case "histogram quartile crossings" `Quick
          histogram_quartile_crossings;
        QCheck_alcotest.to_alcotest prop_p2_ordering;
        QCheck_alcotest.to_alcotest prop_exact_monotone;
      ] );
  ]
