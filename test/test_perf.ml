(* The optimized first-fit (flat int-array block store, direct-address
   payload map) must be observationally identical to the seed
   implementation retained verbatim in [Ff_reference]: same placement
   decisions, same simulated instruction charges, same heap growth, for
   both the roving-first-fit and best-fit policies.  QCheck drives both
   through random alloc/free schedules and compares every address the
   allocators hand out.

   The second suite is a regression bound on the roving search: one
   [alloc] call inspects each free block at most once (the wrap-around
   stop), so its instruction charge is bounded by the free-list length. *)

module FF = Lp_allocsim.First_fit
module CM = Lp_allocsim.Cost_model

(* A schedule step: [true, n] allocates [n mod 256 + 1] bytes, [false, n]
   frees the [n mod live]-th oldest live block (ignored when nothing is
   live).  Resolving indices against the live set keeps every generated
   schedule valid, so shrinking stays inside the allocators' contracts. *)
let schedule_gen =
  QCheck.(list_of_size Gen.(int_range 0 200) (pair bool small_nat))

let run_schedule ~policy ~ref_policy steps =
  let t = FF.create ~policy () in
  let r = Ff_reference.create ~policy:ref_policy () in
  let live = ref [] in
  (* live is kept oldest-first; addresses must match pairwise at every step *)
  List.iter
    (fun (is_alloc, n) ->
      if is_alloc || !live = [] then begin
        let size = (n mod 256) + 1 in
        let a = FF.alloc t size in
        let b = Ff_reference.alloc r size in
        if a <> b then
          QCheck.Test.fail_reportf "alloc %d placed at %d, reference at %d"
            size a b;
        live := !live @ [ a ]
      end
      else begin
        let i = n mod List.length !live in
        let addr = List.nth !live i in
        FF.free t addr;
        Ff_reference.free r addr;
        live := List.filteri (fun j _ -> j <> i) !live
      end)
    steps;
  FF.check_invariants t;
  let check what a b =
    if a <> b then QCheck.Test.fail_reportf "%s: %d, reference %d" what a b
  in
  check "alloc_instr" (FF.alloc_instr t) (Ff_reference.alloc_instr r);
  check "free_instr" (FF.free_instr t) (Ff_reference.free_instr r);
  check "allocs" (FF.allocs t) (Ff_reference.allocs r);
  check "frees" (FF.frees t) (Ff_reference.frees r);
  check "heap_size" (FF.heap_size t) (Ff_reference.heap_size r);
  check "max_heap_size" (FF.max_heap_size t) (Ff_reference.max_heap_size r);
  check "live_bytes" (FF.live_bytes t) (Ff_reference.live_bytes r);
  check "free_blocks" (FF.free_blocks t) (Ff_reference.free_blocks r);
  true

let equivalence_test ~name ~policy ~ref_policy =
  QCheck.Test.make ~count:200 ~name schedule_gen
    (run_schedule ~policy ~ref_policy)

(* Roving-pointer bound: a single alloc terminates after at most two
   passes over the free list (the wrap stops at the rover's start block,
   or at the tail when the rover started at the head), so its charge is
   at most ff_alloc_base plus ff_per_inspect times twice the free-list
   length, plus the fixed sbrk-carve and split charges when nothing
   fits.  Exercise it on a deliberately fragmented heap; an unterminated
   or superlinear rover blows the bound immediately. *)
let rover_inspection_bound () =
  let t = FF.create () in
  let addrs = Array.init 64 (fun _ -> FF.alloc t 48) in
  (* free every other block: 32 non-coalescable free-list entries *)
  Array.iteri (fun i a -> if i mod 2 = 0 then FF.free t a) addrs;
  for _ = 1 to 100 do
    let free_blocks = FF.free_blocks t in
    let before = FF.alloc_instr t in
    (* 64 bytes does not fit any 48-byte hole: worst case, a full rover
       sweep over every free block and then an sbrk carve *)
    ignore (FF.alloc t 64);
    let charge = FF.alloc_instr t - before in
    let bound =
      CM.ff_alloc_base + CM.ff_sbrk + CM.ff_split
      + (CM.ff_per_inspect * 2 * free_blocks)
    in
    if charge > bound then
      Alcotest.failf "alloc charged %d instructions, bound %d (%d free blocks)"
        charge bound free_blocks
  done;
  FF.check_invariants t

let suites =
  [
    ( "perf-equivalence",
      List.map QCheck_alcotest.to_alcotest
        [
          equivalence_test ~name:"first-fit matches seed implementation"
            ~policy:FF.First ~ref_policy:Ff_reference.First;
          equivalence_test ~name:"best-fit matches seed implementation"
            ~policy:FF.Best ~ref_policy:Ff_reference.Best;
        ] );
    ( "perf-rover",
      [
        Alcotest.test_case "roving search inspects each free block once"
          `Quick rover_inspection_bound;
      ] );
  ]
