(* Tests for the lifetime-oracle layer: the spec grammar and its exit-2
   error strings, canonicalization, the README/EXPERIMENTS drift locks,
   the driver's mispredict accounting, the online oracle's convergence
   to offline training (unbounded window, no hysteresis) across every
   source kind, the no-state-leak contract between consecutive replays,
   and domain-count determinism. *)

module O = Lifetime.Oracle
module Rt = Lp_ialloc.Runtime

let config = Lifetime.Config.default
let arena_config = Lifetime.Config.arena_config config

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* -- spec grammar ----------------------------------------------------------------- *)

let check_error spec want =
  match O.spec_of_string spec with
  | Ok _ -> Alcotest.failf "spec %S unexpectedly parsed" spec
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions %S (got %S)" spec want msg)
        true (contains msg want)

let spec_errors () =
  check_error "" "empty oracle spec";
  check_error "bogus" "unknown oracle \"bogus\" (known: static, online)";
  check_error "static:window=3" "oracle static takes no parameters";
  check_error "online:win=3" "unknown parameter \"win\" for online";
  check_error "online:window=3:window=4" "duplicate parameter \"window\"";
  check_error "online:window=x" "not an integer";
  check_error "online:window=65537" "outside [0, 65536]";
  check_error "online:promote=0" "promote: 0 is not positive";
  check_error "online:window=4:promote=5" "promote: 5 exceeds window 4";
  check_error "online:demote=0" "demote: 0 is not positive";
  check_error "online:threshold=0" "threshold: 0 is not positive";
  (* every parameter error names the offending spec, the exit-2 contract *)
  (match O.spec_of_string "online:promote=0" with
  | Error msg ->
      Alcotest.(check bool)
        "error ends with (in spec ...)" true
        (contains msg "(in spec \"online:promote=0\")")
  | Ok _ -> Alcotest.fail "parsed")

let spec_parse () =
  (match O.spec_of_string "static" with
  | Ok O.Spec_static -> ()
  | _ -> Alcotest.fail "static should parse to Spec_static");
  (match O.spec_of_string "online" with
  | Ok (O.Spec_online p) ->
      Alcotest.(check bool)
        "bare online is all defaults" true
        (p = O.default_online_params)
  | _ -> Alcotest.fail "online should parse");
  (* ',' and ':' both separate parameters *)
  match O.spec_of_string "online:window=64,promote=2:threshold=16384" with
  | Ok (O.Spec_online p) ->
      Alcotest.(check int) "window" 64 p.O.window;
      Alcotest.(check int) "promote" 2 p.O.promote;
      Alcotest.(check int) "demote (default)" 4 p.O.demote;
      Alcotest.(check (option int)) "threshold" (Some 16384) p.O.threshold
  | _ -> Alcotest.fail "mixed separators should parse"

let canonicalization () =
  let canon spec = Result.get_ok (O.canonical_spec spec) in
  Alcotest.(check string) "static" "static" (canon "static");
  Alcotest.(check string)
    "defaults collapse" "online"
    (canon "online:window=256,promote=4:demote=4");
  Alcotest.(check string)
    "grammar order, defaults dropped" "online:window=0:demote=2"
    (canon "online:demote=2,window=0");
  match O.canonical_spec "online:promote=0" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "bad spec canonicalized to %S" s

let of_spec_static_needs_predictor () =
  match O.of_spec ~config O.Spec_static with
  | Error msg ->
      Alcotest.(check bool)
        "names the missing database" true
        (contains msg "trained site database")
  | Ok _ -> Alcotest.fail "static without a predictor must error"

(* -- drift locks ------------------------------------------------------------------ *)

let readme_oracle_grammar () =
  let readme = In_channel.with_open_bin "../README.md" In_channel.input_all in
  Alcotest.(check bool)
    "README embeds the generated oracle grammar" true
    (contains readme (O.grammar_markdown ()))

(* EXPERIMENTS.md commits the three-way oracle table; it must regenerate
   byte-identically (deterministic traces, deterministic replays) *)
let experiments_oracle_table () =
  let table = Lifetime.Experiments.oracle_markdown () in
  let experiments =
    In_channel.with_open_bin "../EXPERIMENTS.md" In_channel.input_all
  in
  Alcotest.(check bool)
    "EXPERIMENTS embeds the regenerated oracle comparison" true
    (contains experiments table)

(* -- the driver's mispredict accounting ------------------------------------------- *)

(* two sites with hand-computable classes: [n_short] 16-byte objects
   freed immediately, one 32-byte object held across [filler] allocated
   bytes (well past the 32 KB threshold) *)
let two_site_trace ?(n_short = 40) ?(filler = 100_000) () =
  let rt = Rt.create ~program:"oracle" ~input:"t" () in
  let main = Rt.func rt "main" in
  let short_maker = Rt.func rt "short_maker" in
  let long_maker = Rt.func rt "long_maker" in
  Rt.enter rt main;
  let long_obj = Rt.in_frame rt long_maker (fun () -> Rt.alloc rt ~size:32) in
  for _ = 1 to n_short do
    Rt.in_frame rt short_maker (fun () ->
        let h = Rt.alloc rt ~size:16 in
        Rt.free rt h)
  done;
  Rt.in_frame rt long_maker (fun () ->
      let rec fill remaining =
        if remaining > 0 then begin
          let h = Rt.alloc rt ~size:1024 in
          Rt.free rt h;
          fill (remaining - 1024)
        end
      in
      fill filler);
  Rt.free rt long_obj;
  Rt.leave rt;
  Rt.finish rt

let short_long_counts trace =
  let lifetimes = Lp_trace.Lifetimes.compute trace in
  let short = ref 0 and long = ref 0 in
  Lp_trace.Trace.iter_allocs trace (fun ~obj ~size:_ ~chain:_ ~key:_ ~tag:_ ->
      if
        Lp_trace.Lifetimes.is_short_lived lifetimes
          ~threshold:config.short_lived_threshold obj
      then incr short
      else incr long);
  (!short, !long)

let run_const_predictor trace answer =
  Lp_allocsim.Driver.run
    ~predictor:
      {
        Lp_allocsim.Driver.predicted =
          (fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> answer);
        predict_cost = 0;
        short_threshold = config.short_lived_threshold;
        on_outcome = None;
      }
    trace
    (Lp_allocsim.Registry.backend ~arena_config "arena")

let mispredict_counters () =
  let trace = two_site_trace () in
  let n_short, n_long = short_long_counts trace in
  Alcotest.(check bool) "trace has both classes" true (n_short > 0 && n_long > 0);
  let all = run_const_predictor trace true in
  Alcotest.(check int)
    "predict-all: every consultation counted" (n_short + n_long)
    all.Lp_allocsim.Metrics.predictions;
  Alcotest.(check int)
    "predict-all: every long object is a short-side mispredict" n_long
    all.Lp_allocsim.Metrics.mispredicts_short_lived;
  Alcotest.(check int)
    "predict-all: no long-side mispredicts" 0
    all.Lp_allocsim.Metrics.mispredicts_long_lived;
  let none = run_const_predictor trace false in
  Alcotest.(check int)
    "predict-none: every short object is a long-side mispredict" n_short
    none.Lp_allocsim.Metrics.mispredicts_long_lived;
  Alcotest.(check int)
    "predict-none: no short-side mispredicts" 0
    none.Lp_allocsim.Metrics.mispredicts_short_lived

(* -- convergence: online (unbounded, no hysteresis) = offline training ------------ *)

let offline_snapshot trace =
  let table = Lifetime.Train.collect ~config trace in
  let p = Lifetime.Predictor.build ~config ~funcs:trace.Lp_trace.Trace.funcs table in
  O.snapshot (O.instance_for_trace (O.static p) ~predict_cost:0 trace)

let exact_online () = O.online ~window:0 ~promote:1 ~demote:1 config

let online_snapshot_materialized trace =
  let inst = O.instance_for_trace (exact_online ()) ~predict_cost:0 trace in
  let (_ : Lp_allocsim.Metrics.t) =
    Lp_allocsim.Driver.run
      ~predictor:(O.driver_predictor inst)
      trace
      (Lp_allocsim.Registry.backend ~arena_config "arena")
  in
  O.snapshot inst

let online_snapshot_source src =
  let inst = O.instance_for_source (exact_online ()) ~predict_cost:0 src in
  let (_ : Lp_allocsim.Metrics.t) =
    Lp_allocsim.Driver.run_source
      ~predictor:(O.driver_predictor inst)
      src
      (Lp_allocsim.Registry.backend ~arena_config "arena")
  in
  O.snapshot inst

let convergence_unit () =
  let trace = two_site_trace () in
  let offline = offline_snapshot trace in
  Alcotest.(check bool) "offline set nonempty" true (offline <> []);
  Alcotest.(check (list string))
    "materialized online converges" offline
    (online_snapshot_materialized trace)

let convergence_property =
  QCheck.Test.make ~count:25
    ~name:"online (window=0, promote=1, demote=1) converges to offline \
           training over every source kind"
    (QCheck.make Test_stream.random_trace_gen)
    (fun trace ->
      let offline = offline_snapshot trace in
      let check kind got =
        if got <> offline then
          QCheck.Test.fail_reportf "%s online snapshot diverges:\n%s\nvs\n%s"
            kind
            (String.concat "; " got)
            (String.concat "; " offline)
      in
      check "materialized" (online_snapshot_materialized trace);
      List.iter
        (fun (kind, make) -> check kind (online_snapshot_source (make ())))
        (Test_stream.sources_of trace);
      let v3 = Lp_trace.Binio.to_string_v3 ~chunk_events:16 trace in
      let sh = Lp_trace.Sharded.of_string ~name:"conv.lpt" v3 in
      check "sharded" (online_snapshot_source (Lp_trace.Sharded.source sh));
      true)

(* -- no state leak between consecutive replays ------------------------------------ *)

let sim_json oracle trace =
  let sim =
    Lifetime.Simulate.run ~allocators:[ "arena"; "segfit" ] ~config ~oracle
      ~test:trace ()
  in
  String.concat "\n"
    (List.map
       (fun name ->
         name ^ "\t"
         ^ Lp_allocsim.Metrics.to_json (Lifetime.Simulate.metrics sim name))
       (Lifetime.Simulate.names sim))

(* one Oracle.t value replayed twice: if window state leaked through the
   prepared-trace pool or the oracle value itself, the second replay
   would start warm and its mispredict counters would differ *)
let no_leak_between_replays () =
  let trace = two_site_trace () in
  let oracle = O.online config in
  let first = sim_json oracle trace in
  let second = sim_json oracle trace in
  Alcotest.(check string) "second replay starts cold" first second

let domain_determinism () =
  let trace = two_site_trace () in
  let at n =
    Lifetime.Parallel.with_domains n (fun () ->
        sim_json (O.online config) trace)
  in
  Alcotest.(check string) "1 vs 4 domains byte-identical" (at 1) (at 4)

let suites =
  [
    ( "oracle",
      [
        Alcotest.test_case "spec parse errors" `Quick spec_errors;
        Alcotest.test_case "spec parsing" `Quick spec_parse;
        Alcotest.test_case "spec canonicalization" `Quick canonicalization;
        Alcotest.test_case "static spec needs a predictor" `Quick
          of_spec_static_needs_predictor;
        Alcotest.test_case "README oracle grammar table" `Quick
          readme_oracle_grammar;
        Alcotest.test_case "EXPERIMENTS oracle comparison table" `Slow
          experiments_oracle_table;
        Alcotest.test_case "driver mispredict accounting" `Quick
          mispredict_counters;
        Alcotest.test_case "online converges to offline (unit)" `Quick
          convergence_unit;
        QCheck_alcotest.to_alcotest convergence_property;
        Alcotest.test_case "no state leak between replays" `Quick
          no_leak_between_replays;
        Alcotest.test_case "online domain determinism" `Quick domain_determinism;
      ] );
  ]
