(* Test entry point: every library's suites under one alcotest runner. *)

let () =
  Alcotest.run "repro"
    (Test_quantile.suites @ Test_callchain.suites @ Test_trace.suites
   @ Test_allocsim.suites @ Test_bignum.suites @ Test_cube.suites
   @ Test_regex.suites @ Test_interp.suites @ Test_workloads.suites
   @ Test_backends.suites @ Test_lifetime.suites @ Test_report.suites
   @ Test_extensions.suites @ Test_integration.suites @ Test_properties.suites
   @ Test_analysis.suites @ Test_golden.suites @ Test_perf.suites
   @ Test_stream.suites @ Test_sharded.suites @ Test_audit.suites
   @ Test_tune.suites @ Test_oracle.suites)
