(* The decode-once/replay-many candidate engine and the `lpalloc tune`
   design-space search: golden seed-42 determinism (byte-identical JSON
   at 1 and 4 domains), the hoisted-validation regression (repeated
   replays of one trace validate once, metrics unchanged), the
   decode-once counters, the parameterized-spec parse/canonicalize
   contract, the qcheck default-spec equivalence property, and the drift
   tests pinning README's parameter grammar table and EXPERIMENTS'
   best-config table to the generators. *)

module Tune = Lifetime.Tune
module Registry = Lp_allocsim.Registry
module Driver = Lp_allocsim.Driver
module Metrics = Lp_allocsim.Metrics
module Timings = Lp_obs.Timings

let tiny program = Lp_workloads.Registry.trace ~scale:1.0 ~program ~input:"tiny" ()

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* -- golden determinism ---------------------------------------------------------- *)

(* one full search on the tiny corpus, rendered to the golden JSON
   artifact (no engine counters: those are the CLI's concern) *)
let tune_json ~domains ~seed =
  Lifetime.Parallel.with_domains domains (fun () ->
      let train = tiny "perl" and test = tiny "perl" in
      let options = { Tune.default_options with Tune.seed } in
      Lp_report.Json.to_pretty_string
        (Tune.json_of_outcome
           (Tune.search ~options ~workload:"perl-tiny" ~train ~test ())))

let golden_determinism () =
  let a = tune_json ~domains:1 ~seed:42 in
  let b = tune_json ~domains:1 ~seed:42 in
  Alcotest.(check string) "seed 42 twice is byte-identical" a b;
  let c = tune_json ~domains:4 ~seed:42 in
  Alcotest.(check string) "1 domain vs 4 domains byte-identical" a c;
  let d = tune_json ~domains:1 ~seed:43 in
  Alcotest.(check bool) "seed 43 yields a different search" true (a <> d)

(* the acceptance floor: the default search must evaluate >= 100
   candidates, and the Pareto front must be non-dominated and sorted *)
let search_shape () =
  let train = tiny "perl" and test = tiny "perl" in
  let o = Tune.search ~workload:"perl-tiny" ~train ~test () in
  Alcotest.(check bool)
    "at least 100 candidates" true
    (List.length o.Tune.results >= 100);
  Alcotest.(check bool) "non-empty Pareto front" true (o.Tune.pareto <> []);
  let rec check_front = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "instructions ascending" true
          (a.Tune.instructions <= b.Tune.instructions);
        Alcotest.(check bool) "heap strictly descending" true
          (a.Tune.max_heap > b.Tune.max_heap);
        check_front rest
    | _ -> ()
  in
  check_front o.Tune.pareto;
  (* every Pareto point must be undominated by every evaluated result *)
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "no evaluated result dominates a Pareto point"
            false
            (r.Tune.instructions < p.Tune.instructions
            && r.Tune.max_heap < p.Tune.max_heap))
        o.Tune.results)
    o.Tune.pareto;
  (* the four fixed reference points are all present *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " baseline present") true
        (List.mem_assoc name o.Tune.baselines))
    [ "first-fit"; "bsd"; "arena-len4"; "arena-cce" ]

(* -- hoisted validation ----------------------------------------------------------- *)

let with_counters f =
  Timings.reset ();
  Timings.set_enabled true;
  Fun.protect ~finally:(fun () -> Timings.set_enabled false) f

let counter name =
  match List.assoc_opt name (Timings.counters ()) with Some n -> n | None -> 0

let validation_hoisted () =
  (* a physically fresh trace record: the workload registry memoizes
     traces, and the driver's validation memo keys on physical identity —
     a cached trace may legitimately already be validated *)
  let t0 = tiny "gawk" in
  let trace = { t0 with Lp_trace.Trace.events = Array.copy t0.events } in
  let backend = Registry.backend "first-fit" in
  with_counters (fun () ->
      (* three replays of the same trace — via run, run again, and an
         explicit prepare — must validate exactly once and agree *)
      let m1 = Driver.run trace backend in
      let m2 = Driver.run trace backend in
      let m3 = Driver.run_prepared (Driver.prepare trace) backend in
      Alcotest.(check string)
        "repeat replay metrics byte-identical" (Metrics.to_json m1)
        (Metrics.to_json m2);
      Alcotest.(check string)
        "prepared replay metrics byte-identical" (Metrics.to_json m1)
        (Metrics.to_json m3);
      Alcotest.(check int) "one validation for three replays" 1
        (counter "replay.validations"))

(* a corrupt trace must still fail with the same error, now at prepare *)
let prepare_rejects_corrupt () =
  let rt = Lp_ialloc.Runtime.create ~program:"bad" ~input:"x" () in
  let h = Lp_ialloc.Runtime.alloc rt ~size:16 in
  Lp_ialloc.Runtime.free rt h;
  let trace = Lp_ialloc.Runtime.finish rt in
  (* corrupt it: free the only object (id 0) a second time *)
  let events =
    Array.append trace.events [| Lp_trace.Event.Free { obj = 0; size = 16 } |]
  in
  let trace = { trace with Lp_trace.Trace.events } in
  match Driver.prepare trace with
  | _ -> Alcotest.fail "corrupt trace unexpectedly prepared"
  | exception Failure msg ->
      Alcotest.(check bool) "names the object" true (contains msg "object 0");
      Alcotest.(check bool) "names the event" true (contains msg "event")

let decode_once () =
  let trace = tiny "perl" in
  let encoded = Lp_trace.Binio.to_string trace in
  with_counters (fun () ->
      let t = Lp_trace.Io.of_string ~name:"sweep.lpt" encoded in
      let prepared = Driver.prepare t in
      (* a sweep of plain and parameterized candidates over one decode *)
      List.iter
        (fun spec ->
          match Registry.backend_of_spec spec with
          | Ok b -> ignore (Driver.run_prepared prepared b : Metrics.t)
          | Error msg -> Alcotest.fail msg)
        [
          "first-fit"; "best-fit"; "bsd"; "segfit"; "arena";
          "first-fit:sbrk=4096"; "segfit:slab=16+64+256+1024"; "arena:n=8";
          "arena:chunk=8192"; "arena:n=8:chunk=2048:fallback=segfit";
        ];
      Alcotest.(check int) "one decode for the whole sweep" 1
        (counter "trace.decodes");
      Alcotest.(check int) "one validation for the whole sweep" 1
        (counter "replay.validations"))

(* -- the spec grammar ------------------------------------------------------------- *)

let spec_error spec =
  match Registry.backend_of_spec spec with
  | Error msg -> msg
  | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S unexpectedly parsed" spec)

let spec_errors () =
  let expect spec fragment =
    let msg = spec_error spec in
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s (got %S)" spec fragment msg)
      true (contains msg fragment)
  in
  expect "nosuch:sbrk=1" "unknown allocator backend";
  expect "bsd:sbrk=1" "takes no parameters";
  expect "first-fit:sbrk=0" "not a positive multiple of 8";
  expect "first-fit:sbrk=12" "not a positive multiple of 8";
  expect "first-fit:sbrk=many" "not an integer";
  expect "first-fit:sbrk" "expected key=value";
  expect "first-fit:slab=16" "unknown parameter";
  expect "segfit:slab=7" "not a multiple of 16";
  expect "segfit:slab=32+16" "not strictly ascending";
  expect "segfit:slab=16+8192" "outside [16, 4096]";
  expect "segfit:slab=" "not an integer";
  expect "arena:n=0" "outside [1, 4096]";
  expect "arena:chunk=63" "outside [64, 1048576]";
  expect "arena:fallback=arena" "must not be arena";
  expect "arena:fallback=nope" "unknown backend";
  expect "arena:n=8:n=8" "duplicate parameter";
  (* every error names the offending spec — the CLI's exit-2 message *)
  Alcotest.(check bool) "error cites the spec" true
    (contains (spec_error "segfit:slab=7") {|(in spec "segfit:slab=7")|})

let canonicalization () =
  let canon spec =
    match Registry.canonical_spec spec with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check string) "alias resolves" "segfit:slab=16+64"
    (canon "seg:slab=16+64");
  Alcotest.(check string) "defaults drop" "arena"
    (canon "arena:n=16:chunk=4096:fallback=first-fit");
  Alcotest.(check string) "default sbrk drops" "first-fit" (canon "ff:sbrk=8192");
  Alcotest.(check string) "params in grammar order" "arena:n=8:chunk=2048"
    (canon "arena:chunk=2048:n=8");
  Alcotest.(check string) "fallback alias canonicalizes" "arena:fallback=best-fit"
    (canon "arena:fallback=bf");
  Alcotest.(check string) "default slab drops" "segfit"
    (canon "segfit:slab=16+32+64+128+256+512+1024+2048")

(* -- default-parameter specs are byte-identical to the plain names ---------------- *)

let default_spec_pairs =
  [
    ("first-fit", "first-fit:sbrk=8192");
    ("best-fit", "best-fit:sbrk=8192");
    ("segfit", "segfit:slab=16+32+64+128+256+512+1024+2048");
    ("arena", "arena:n=16:chunk=4096:fallback=first-fit");
  ]

let default_spec_equivalence =
  QCheck.Test.make ~count:30
    ~name:"default-parameter specs equal their plain backends on every source"
    (QCheck.make Test_stream.random_trace_gen)
    (fun trace ->
      List.for_all
        (fun (name, spec) ->
          let backend_of s =
            match Registry.backend_of_spec s with
            | Ok b -> b
            | Error msg -> QCheck.Test.fail_report msg
          in
          let expect = Metrics.to_json (Driver.run trace (Registry.backend name)) in
          Metrics.to_json (Driver.run trace (backend_of spec)) = expect
          && List.for_all
               (fun (_, source) ->
                 Metrics.to_json (Driver.run_source (source ()) (backend_of spec))
                 = expect)
               (Test_stream.sources_of trace))
        default_spec_pairs)

let default_spec_equivalence_realloc =
  QCheck.Test.make ~count:15
    ~name:"default-parameter specs equal their plain backends under realloc"
    (QCheck.make Test_stream.random_realloc_trace_gen)
    (fun trace ->
      List.for_all
        (fun (name, spec) ->
          let backend =
            match Registry.backend_of_spec spec with
            | Ok b -> b
            | Error msg -> QCheck.Test.fail_report msg
          in
          Metrics.to_json (Driver.run trace backend)
          = Metrics.to_json (Driver.run trace (Registry.backend name)))
        default_spec_pairs)

(* -- drift tests ------------------------------------------------------------------ *)

(* README's tuning section embeds the generated parameter grammar table;
   adding or editing a parameter without regenerating it fails here *)
let readme_grammar_table () =
  let readme = In_channel.with_open_bin "../README.md" In_channel.input_all in
  Alcotest.(check bool)
    "README embeds the generated backend parameter grammar" true
    (contains readme (Registry.grammar_markdown ()))

(* EXPERIMENTS.md commits the tiny-corpus best-config table; it must
   regenerate byte-identically from the same seed (42) and corpus *)
let experiments_best_config_table () =
  let rows program =
    let train = tiny program and test = tiny program in
    Tune.markdown_rows
      (Tune.search ~workload:(program ^ "-tiny") ~train ~test ())
  in
  let table = Tune.markdown_header ^ rows "perl" ^ rows "pint" in
  let experiments =
    In_channel.with_open_bin "../EXPERIMENTS.md" In_channel.input_all
  in
  Alcotest.(check bool)
    "EXPERIMENTS embeds the regenerated best-config table" true
    (contains experiments table)

let suites =
  [
    ( "tune",
      [
        Alcotest.test_case "golden seed-42 determinism" `Slow golden_determinism;
        Alcotest.test_case "search shape and baselines" `Quick search_shape;
        Alcotest.test_case "validation hoisted out of replay" `Quick
          validation_hoisted;
        Alcotest.test_case "prepare rejects corrupt traces" `Quick
          prepare_rejects_corrupt;
        Alcotest.test_case "decode once, replay many" `Quick decode_once;
        Alcotest.test_case "spec parse errors" `Quick spec_errors;
        Alcotest.test_case "spec canonicalization" `Quick canonicalization;
        Alcotest.test_case "README grammar table" `Quick readme_grammar_table;
        Alcotest.test_case "EXPERIMENTS best-config table" `Slow
          experiments_best_config_table;
        QCheck_alcotest.to_alcotest default_spec_equivalence;
        QCheck_alcotest.to_alcotest default_spec_equivalence_realloc;
      ] );
  ]
