(* Tests for the audit engine: the golden corpus (a constructed chain
   collision and a coverage-gap model, asserting exact rule ids and
   sites), unit checks for the threshold-sensitivity band and the
   overlap hotspot, qcheck equivalence of the materialized, streamed
   and sharded paths at 1 and 4 domains, SARIF output sanity, and a
   drift check pinning the README's rules table to the registry. *)

module D = Lp_analysis.Diagnostic
module Audit = Lp_analysis.Audit
module Source = Lp_trace.Source
module Site = Lp_callchain.Site

let findings diags =
  List.map (fun (d : D.t) -> (d.D.rule, Option.value d.D.site ~default:"-")) diags

let check_findings what expected diags =
  Alcotest.(check (list (pair string string))) what expected (findings diags)

let corpus_trace file = Lp_trace.Io.read_file ("audit_corpus/" ^ file)
let corpus_model file = Lifetime.Model.load ("audit_corpus/" ^ file)

let collision_key = "[alloc_node<-walk<-build<-main; ~size=16]"

(* -- golden corpus -------------------------------------------------------------- *)

(* two chains that cycle-eliminate onto one complete-chain key, one all
   short-lived and one with a survivor: a collision, warning-severity
   without a model *)
let collision_without_model () =
  let diags = Audit.run Audit.default_options (corpus_trace "collision.txt") in
  check_findings "collision"
    [ ("chain-collision", collision_key); ("live-peak-pressure", "-") ]
    diags;
  Alcotest.(check bool) "clean" true (Audit.clean diags)

(* the same trace against a model that predicts the colliding key
   short-lived: the warning hardens into the audit's only error *)
let collision_with_model () =
  let opts =
    Audit.with_model Audit.default_options (corpus_model "collision.lpmodel")
  in
  let diags = Audit.run opts (corpus_trace "collision.txt") in
  check_findings "mispredict"
    [ ("chain-collision-mispredict", collision_key); ("live-peak-pressure", "-") ]
    diags;
  Alcotest.(check bool) "errors" false (Audit.clean diags)

(* a model disjoint from the trace: every trace key is a cold start,
   every model site is dead — and neither is an error *)
let coverage_gap () =
  let opts =
    Audit.with_model Audit.default_options (corpus_model "coverage_gap.lpmodel")
  in
  let diags = Audit.run opts (corpus_trace "collision.txt") in
  check_findings "gaps"
    [
      ("chain-collision", collision_key);
      ("coverage-cold-start", collision_key);
      ("coverage-dead-site", "[phantom<-main; ~size=8]");
      ("live-peak-pressure", "-");
    ]
    diags;
  Alcotest.(check bool) "clean" true (Audit.clean diags)

(* -- threshold sensitivity and overlap hotspots --------------------------------- *)

(* two objects, both short under threshold 32, whose key's max observed
   lifetime (30) lands inside the 12.5% band around the cutoff *)
let band_trace () =
  Lp_trace.Textio.of_string
    (String.concat "\n"
       [
         "trace audit band"; "func 0 main"; "chain 0 0"; "counters 0 0 0 0";
         "a 0 16 0 0 -1 0"; "a 1 14 0 0 -1 0"; "f 0"; "f 1"; "end"; "";
       ])

let threshold_sensitive () =
  let opts =
    {
      Audit.default_options with
      au_threshold = 32;
      au_only = Some [ "coverage-threshold-sensitive" ];
    }
  in
  let diags = Audit.run opts (band_trace ()) in
  check_findings "in band"
    [ ("coverage-threshold-sensitive", "[main; ~size=16]") ]
    diags;
  (* a tighter margin excludes lifetime 30 from the band *)
  let diags = Audit.run { opts with Audit.au_margin = 0.01 } (band_trace ()) in
  check_findings "out of band" [] diags

let overlap_hotspot () =
  let opts =
    {
      Audit.default_options with
      au_threshold = 32;
      au_only = Some [ "live-overlap-hotspot" ];
    }
  in
  (* at the global peak (30 bytes, event 1) the size-14 site holds 14
     bytes with 16 foreign — both above a quarter of the peak *)
  let diags = Audit.run opts (band_trace ()) in
  check_findings "hotspot" [ ("live-overlap-hotspot", "[main; size=14]") ] diags;
  (* an impossible share threshold silences it *)
  let diags =
    Audit.run { opts with Audit.au_hotspot_share = 1.1 } (band_trace ())
  in
  check_findings "share too high" [] diags

let unknown_rule_rejected () =
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument
       "Diagnostic.select: unknown rule \"no-such-rule\" in --only (known: \
        chain-collision, chain-collision-mispredict, coverage-cold-start, \
        coverage-dead-site, coverage-threshold-sensitive, \
        coverage-online-cold, live-overlap-hotspot, live-peak-pressure)")
    (fun () ->
      ignore
        (Audit.run
           { Audit.default_options with au_only = Some [ "no-such-rule" ] }
           (band_trace ())))

let policy_of_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Site.policy_to_string p) true
        (Site.policy_of_string (Site.policy_to_string p) = Some p))
    [ Site.Complete_chain; Site.Last_callers 3; Site.Size_only; Site.Encrypted_key ];
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Site.policy_of_string s = None))
    [ "bogus"; "last--1-callers"; "last-0-callers"; "last-3-callers-x"; "" ]

(* -- streamed / sharded equivalence --------------------------------------------- *)

(* audit the trace against a model trained from it, over every path: the
   materialized run is the oracle, the streamed and sharded (1 and 4
   domains) runs must produce byte-identical JSON *)
let check_equivalence trace =
  let cfg = { Lifetime.Config.default with short_lived_threshold = 32 } in
  let table = Lifetime.Train.collect ~config:cfg trace in
  let predictor = Lifetime.Predictor.build ~config:cfg ~funcs:trace.Lp_trace.Trace.funcs table in
  let model = Lifetime.Model.of_training ~config:cfg ~trace table predictor in
  let opts = Audit.with_model Audit.default_options model in
  let expect = D.list_to_json (Audit.run opts trace) in
  (* the v3 encoding expresses every trace, realloc-bearing included *)
  let v3 = Lp_trace.Binio.to_string_v3 ~chunk_events:8 trace in
  let stream =
    D.list_to_json (Audit.run_source opts (Source.of_string ~name:"t.lpt" v3))
  in
  if stream <> expect then QCheck.Test.fail_reportf "streamed audit differs";
  let sh = Lp_trace.Sharded.of_string ~name:"t.lpt" v3 in
  List.iter
    (fun domains ->
      let got =
        Lifetime.Parallel.with_domains domains (fun () ->
            D.list_to_json (Audit.run_sharded opts sh))
      in
      if got <> expect then
        QCheck.Test.fail_reportf "sharded audit differs at %d domains" domains)
    [ 1; 4 ];
  true

let audit_equivalence =
  QCheck.Test.make ~count:30
    ~name:"audit: materialized = streamed = sharded (1 and 4 domains)"
    (QCheck.make Test_stream.random_trace_gen)
    check_equivalence

let audit_equivalence_realloc =
  QCheck.Test.make ~count:30
    ~name:"audit over realloc-bearing traces: all paths agree"
    (QCheck.make Test_stream.random_realloc_trace_gen)
    check_equivalence

(* -- SARIF ---------------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let sarif_output () =
  let opts =
    Audit.with_model Audit.default_options (corpus_model "collision.lpmodel")
  in
  let diags = Audit.run opts (corpus_trace "collision.txt") in
  let sarif =
    Lp_analysis.Sarif.to_string ~tool_name:"lpalloc audit" ~rules:Audit.rules
      ~source:"audit_corpus/collision.txt" diags
  in
  Alcotest.(check bool) "one line" false (String.contains sarif '\n');
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains sarif needle))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"lpalloc audit\"";
      "\"ruleId\":\"chain-collision-mispredict\"";
      "\"level\":\"error\"";
      (* info severities map onto SARIF's note level *)
      "\"level\":\"note\"";
      "\"uri\":\"audit_corpus/collision.txt\"";
      "\"event\":0";
    ];
  (* every registry rule appears as a reportingDescriptor *)
  List.iter
    (fun (r : D.rule) ->
      Alcotest.(check bool) r.D.id true
        (contains sarif (Printf.sprintf "{\"id\":%S" r.D.id)))
    Audit.rules

(* -- README drift --------------------------------------------------------------- *)

(* the README's audit rules table is generated by [Audit.rules_markdown]
   (and `lpalloc audit --list-rules`); adding or editing a rule without
   regenerating the table fails here *)
let readme_rules_table () =
  let readme = In_channel.with_open_bin "../README.md" In_channel.input_all in
  Alcotest.(check bool)
    "README embeds the generated audit rules table" true
    (contains readme (Audit.rules_markdown ()))

let suites =
  [
    ( "audit",
      [
        Alcotest.test_case "collision without model" `Quick
          collision_without_model;
        Alcotest.test_case "collision with model" `Quick collision_with_model;
        Alcotest.test_case "coverage gap" `Quick coverage_gap;
        Alcotest.test_case "threshold sensitivity" `Quick threshold_sensitive;
        Alcotest.test_case "overlap hotspot" `Quick overlap_hotspot;
        Alcotest.test_case "unknown rule rejected" `Quick unknown_rule_rejected;
        Alcotest.test_case "policy_of_string" `Quick policy_of_string_roundtrip;
        Alcotest.test_case "SARIF output" `Quick sarif_output;
        Alcotest.test_case "README rules table" `Quick readme_rules_table;
        QCheck_alcotest.to_alcotest audit_equivalence;
        QCheck_alcotest.to_alcotest audit_equivalence_realloc;
      ] );
  ]
