(* Tests for the extension modules: the cache simulator, the reference
   stream (Touch events), the locality replay, and the generational
   collector simulator. *)

module Rt = Lp_ialloc.Runtime
module Cache = Lp_allocsim.Cache
module Gen = Lp_allocsim.Generational

(* -- cache ---------------------------------------------------------------------- *)

let cache_hit_after_miss () =
  let c = Cache.create ~size_bytes:1024 () in
  Cache.access c 0;
  Cache.access c 0;
  Cache.access c 8;
  (* same 32-byte line *)
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check int) "one compulsory miss" 1 (Cache.misses c)

let cache_eviction () =
  (* direct-mapped 64-byte cache with 32-byte lines: two sets.
     addresses 0 and 64 map to set 0 and evict each other. *)
  let c = Cache.create ~associativity:1 ~size_bytes:64 () in
  Cache.access c 0;
  Cache.access c 64;
  Cache.access c 0;
  Alcotest.(check int) "all three miss" 3 (Cache.misses c)

let cache_associativity_helps () =
  (* the same conflict pattern in a 2-way cache of the same total size:
     both lines coexist in set 0 *)
  let c = Cache.create ~associativity:2 ~size_bytes:64 () in
  Cache.access c 0;
  Cache.access c 64;
  Cache.access c 0;
  Cache.access c 64;
  Alcotest.(check int) "only compulsory misses" 2 (Cache.misses c)

let cache_lru () =
  (* 2-way, one set (64 B total): touch A, B, A, then C evicts B (LRU) *)
  let c = Cache.create ~associativity:2 ~size_bytes:64 () in
  let a = 0 and b = 64 and new_line = 128 in
  Cache.access c a;
  Cache.access c b;
  Cache.access c a;
  Cache.access c new_line;
  (* b was least recently used: a must still hit *)
  let misses_before = Cache.misses c in
  Cache.access c a;
  Alcotest.(check int) "a still resident" misses_before (Cache.misses c);
  Cache.access c b;
  Alcotest.(check int) "b was evicted" (misses_before + 1) (Cache.misses c)

let cache_range () =
  let c = Cache.create ~size_bytes:1024 () in
  Cache.access_range c ~addr:0 ~bytes:100;
  (* bytes 0..99 cover lines 0,32,64,96: 4 accesses *)
  Alcotest.(check int) "4 line accesses" 4 (Cache.accesses c)

let cache_footprint () =
  let c = Cache.create ~size_bytes:1024 () in
  Cache.access c 0;
  Cache.access c 100;
  Cache.access c 5000;
  Alcotest.(check int) "two pages" 2 (Cache.footprint_pages c);
  Cache.reset c;
  Alcotest.(check int) "reset clears" 0 (Cache.footprint_pages c)

let cache_bad_geometry () =
  Alcotest.check_raises "non-power-of-two line"
    (Invalid_argument "Cache.create: line size must be a positive power of two")
    (fun () -> ignore (Cache.create ~line_bytes:24 ~size_bytes:1024 ()))

(* -- touch events ------------------------------------------------------------------ *)

let touch_events_recorded () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:64 in
  Rt.touch rt a 3;
  Rt.touch rt a 2;
  (* merges with previous *)
  let b = Rt.alloc rt ~size:32 in
  Rt.touch rt b 1;
  Rt.touch rt a 1;
  (* cannot merge across b's event *)
  let trace = Rt.finish rt in
  let touches =
    Array.to_list trace.events
    |> List.filter_map (function
         | Lp_trace.Event.Touch { obj; count } -> Some (obj, count)
         | _ -> None)
  in
  Alcotest.(check (list (pair int int)))
    "merged stream"
    [ (0, 5); (1, 1); (0, 1) ]
    touches;
  Alcotest.(check int) "aggregate per object" 6 trace.obj_refs.(0)

let touch_zero_noop () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:8 in
  Rt.touch rt a 0;
  let trace = Rt.finish rt in
  let n_touch =
    Array.fold_left
      (fun acc e -> match e with Lp_trace.Event.Touch _ -> acc + 1 | _ -> acc)
      0 trace.events
  in
  Alcotest.(check int) "no touch event" 0 n_touch

let touch_textio_roundtrip () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:64 in
  Rt.touch rt a 7;
  Rt.free rt a;
  let trace = Rt.finish rt in
  let trace' = Lp_trace.Textio.of_string (Lp_trace.Textio.to_string trace) in
  Alcotest.(check int) "events preserved" (Array.length trace.events)
    (Array.length trace'.events);
  Alcotest.(check string) "identical text" (Lp_trace.Textio.to_string trace)
    (Lp_trace.Textio.to_string trace')

(* -- locality replay ----------------------------------------------------------------- *)

let locality_replay_counts_refs () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:64 in
  Rt.touch rt a 10;
  Rt.free rt a;
  let trace = Rt.finish rt in
  let cache = Cache.create ~size_bytes:4096 () in
  let (_ : Lp_allocsim.Metrics.t) =
    Lp_allocsim.Driver.run_named ~cache trace "first-fit"
  in
  (* 10 touch refs + header accesses at alloc and free *)
  Alcotest.(check int) "12 accesses" 12 (Cache.accesses cache)

let locality_hot_reuse_beats_spread () =
  (* many short-lived objects: first-fit reuses one address; misses stay
     near zero after warm-up *)
  let rt = Rt.create ~program:"t" ~input:"t" () in
  for _ = 1 to 1000 do
    let h = Rt.alloc rt ~size:64 in
    Rt.touch rt h 4;
    Rt.free rt h
  done;
  let trace = Rt.finish rt in
  let cache = Cache.create ~size_bytes:4096 () in
  let (_ : Lp_allocsim.Metrics.t) =
    Lp_allocsim.Driver.run_named ~cache trace "first-fit"
  in
  Alcotest.(check bool) "miss rate under 1%" true (Cache.miss_rate cache < 0.01)

(* -- generational collector ------------------------------------------------------------ *)

let never _ = false
let gen_config = { Gen.nursery_bytes = 1024; copy_cost_per_byte = 2 }

let make_gen_trace ~n ~hold =
  (* n objects of 100 bytes; every [hold]-th survives to the end *)
  let rt = Rt.create ~program:"g" ~input:"t" () in
  let kept = ref [] in
  for i = 1 to n do
    let h = Rt.alloc rt ~size:100 in
    if i mod hold = 0 then kept := h :: !kept else Rt.free rt h
  done;
  List.iter (Rt.free rt) !kept;
  Rt.finish rt

let gen_baseline_copies_survivors () =
  let trace = make_gen_trace ~n:100 ~hold:10 in
  let stats =
    Gen.run ~config:gen_config
      ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> never ())
      trace
  in
  (* nursery holds 10 objects; each GC copies the ~1 surviving holder *)
  Alcotest.(check bool) "several minor GCs" true (stats.minor_gcs >= 9);
  Alcotest.(check bool) "copies happened" true (stats.copied_bytes > 0);
  Alcotest.(check int) "copy cost priced" (2 * stats.copied_bytes) stats.copy_instr

let gen_dead_nursery_objects_are_free () =
  let trace = make_gen_trace ~n:100 ~hold:1000 (* everything dies young *) in
  let stats =
    Gen.run ~config:gen_config
      ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> never ())
      trace
  in
  Alcotest.(check int) "nothing copied" 0 stats.copied_bytes

let gen_pretenure_skips_copying () =
  let trace = make_gen_trace ~n:100 ~hold:10 in
  (* oracle pretenure: exactly the survivors (every 10th allocation) *)
  let stats =
    Gen.run ~config:gen_config
      ~pretenure:(fun ~obj ~size:_ ~chain:_ ~key:_ -> (obj + 1) mod 10 = 0)
      trace
  in
  Alcotest.(check int) "no copying at all" 0 stats.copied_bytes;
  Alcotest.(check int) "10 pretenured" 10 stats.pretenured

let gen_wrong_pretenure_makes_garbage () =
  let trace = make_gen_trace ~n:100 ~hold:1000 in
  let stats =
    Gen.run ~config:gen_config
      ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> true)
      trace
  in
  (* everything tenured, everything died: all of it is tenured garbage *)
  Alcotest.(check int) "tenured garbage" (100 * 100) stats.tenured_garbage_bytes

let gen_oversized_objects_tenure () =
  let rt = Rt.create ~program:"g" ~input:"t" () in
  let h = Rt.alloc rt ~size:5000 in
  Rt.free rt h;
  let trace = Rt.finish rt in
  let stats =
    Gen.run ~config:gen_config
      ~pretenure:(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> false)
      trace
  in
  Alcotest.(check int) "bigger than nursery -> tenured" 1 stats.pretenured

let suites =
  [
    ( "cache",
      [
        Alcotest.test_case "hit after miss" `Quick cache_hit_after_miss;
        Alcotest.test_case "direct-mapped eviction" `Quick cache_eviction;
        Alcotest.test_case "associativity helps" `Quick cache_associativity_helps;
        Alcotest.test_case "LRU replacement" `Quick cache_lru;
        Alcotest.test_case "range access" `Quick cache_range;
        Alcotest.test_case "footprint pages" `Quick cache_footprint;
        Alcotest.test_case "bad geometry" `Quick cache_bad_geometry;
      ] );
    ( "reference stream",
      [
        Alcotest.test_case "touch events merge" `Quick touch_events_recorded;
        Alcotest.test_case "touch zero is no-op" `Quick touch_zero_noop;
        Alcotest.test_case "textio round-trip" `Quick touch_textio_roundtrip;
        Alcotest.test_case "locality replay counts" `Quick locality_replay_counts_refs;
        Alcotest.test_case "hot reuse stays cached" `Quick locality_hot_reuse_beats_spread;
      ] );
    ( "generational",
      [
        Alcotest.test_case "baseline copies survivors" `Quick
          gen_baseline_copies_survivors;
        Alcotest.test_case "dead nursery is free" `Quick gen_dead_nursery_objects_are_free;
        Alcotest.test_case "oracle pretenure" `Quick gen_pretenure_skips_copying;
        Alcotest.test_case "wrong pretenure -> garbage" `Quick
          gen_wrong_pretenure_makes_garbage;
        Alcotest.test_case "oversized objects tenure" `Quick gen_oversized_objects_tenure;
      ] );
  ]
