(* Generic property suite over every allocator backend in the registry.
   The properties hold for ANY correct allocator, so each registry entry —
   including ones future sessions add — is exercised without writing new
   tests: live payload ranges never overlap, freed space is reusable (the
   heap stops growing under repeated alloc-all/free-all cycles), the heap
   high-water mark covers the peak of live payload bytes, operation
   counters match the op sequence, and the backend's own invariant checker
   stays happy.

   The arena backend runs through the same harness: the [predicted] flag
   alternates, so both the bump path and the general-heap fallback are
   driven; generated sizes stay below the 4 KB arena size. *)

let backend_names = Lp_allocsim.Registry.names ()

(* Interpret a list of ints as an op sequence: n >= 0 allocates
   1 + n mod 600 bytes; n < 0 frees the (-n mod live)-th live object. *)
let ops_property name =
  QCheck.Test.make ~count:60 ~long_factor:3
    ~name:(Printf.sprintf "%s: no overlap, counters, invariants" name)
    QCheck.(list (int_range (-1000) 1000))
    (fun ops ->
      let (module B : Lp_allocsim.Backend.BACKEND) =
        Lp_allocsim.Registry.backend name
      in
      let t = B.create () in
      let live = ref [] in
      let n_allocs = ref 0 and n_frees = ref 0 in
      let cur = ref 0 and peak = ref 0 in
      List.iteri
        (fun i op ->
          if op >= 0 then begin
            let size = 1 + (op mod 600) in
            let addr = B.alloc t ~size ~predicted:(i mod 2 = 0) in
            incr n_allocs;
            List.iter
              (fun (a, s) ->
                if addr < a + s && a < addr + size then
                  QCheck.Test.fail_reportf
                    "%s: [%d,%d) overlaps live [%d,%d)" name addr (addr + size)
                    a (a + s))
              !live;
            live := (addr, size) :: !live;
            cur := !cur + size;
            if !cur > !peak then peak := !cur
          end
          else
            match !live with
            | [] -> ()
            | l ->
                let idx = -op mod List.length l in
                let a, s = List.nth l idx in
                B.free t a;
                incr n_frees;
                live := List.filteri (fun j _ -> j <> idx) l;
                cur := !cur - s)
        ops;
      B.check_invariants t;
      if B.allocs t <> !n_allocs then
        QCheck.Test.fail_reportf "%s: %d allocs counted, %d performed" name
          (B.allocs t) !n_allocs;
      if B.frees t <> !n_frees then
        QCheck.Test.fail_reportf "%s: %d frees counted, %d performed" name
          (B.frees t) !n_frees;
      if B.max_heap_size t < !peak then
        QCheck.Test.fail_reportf "%s: max heap %d below peak live payload %d"
          name (B.max_heap_size t) !peak;
      true)

(* Freed bytes must be reusable: replaying the same alloc-all/free-all
   cycle cannot grow the heap once the allocator has reached steady state
   (after two cycles every backend has seen the full working set). *)
let reuse_property name =
  QCheck.Test.make ~count:30
    ~name:(Printf.sprintf "%s: repeated cycles stop growing the heap" name)
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 1 512))
    (fun sizes ->
      let (module B : Lp_allocsim.Backend.BACKEND) =
        Lp_allocsim.Registry.backend name
      in
      let t = B.create () in
      let cycle () =
        let addrs =
          List.mapi (fun i size -> B.alloc t ~size ~predicted:(i mod 2 = 0)) sizes
        in
        List.iter (B.free t) addrs
      in
      cycle ();
      cycle ();
      let steady = B.max_heap_size t in
      cycle ();
      cycle ();
      cycle ();
      B.check_invariants t;
      if B.max_heap_size t <> steady then
        QCheck.Test.fail_reportf "%s: heap grew from %d to %d on replayed cycles"
          name steady (B.max_heap_size t);
      true)

let suites =
  [
    ( "backend-properties",
      List.concat_map
        (fun name ->
          [
            QCheck_alcotest.to_alcotest (ops_property name);
            QCheck_alcotest.to_alcotest (reuse_property name);
          ])
        backend_names );
  ]
