(* Tests for lp_trace and lp_ialloc: trace building, lifetimes in
   bytes-allocated time, max-live tracking, statistics, text round-trips,
   and the instrumented runtime's safety checks. *)

module Rt = Lp_ialloc.Runtime
module T = Lp_trace.Trace
module L = Lp_trace.Lifetimes

(* A tiny hand-built trace:
     alloc a (10 bytes), alloc b (20), free a, alloc c (30), free c, end.
   The clock counts an object's own bytes (the paper's Table 3 minima are
   the programs' smallest object sizes, so birth happens before the
   object's own size advances the clock):
     a born at 0, dies at clock 30 -> lifetime 30 (10 own + 20 for b);
     c born at 30, dies at 60 -> lifetime 30 (its own size);
     b born at 10, survives -> lifetime 60 - 10 = 50. *)
let tiny_trace () =
  let rt = Rt.create ~program:"test" ~input:"unit" () in
  let main = Rt.func rt "main" in
  let helper = Rt.func rt "helper" in
  Rt.enter rt main;
  let a = Rt.alloc rt ~size:10 in
  let b = Rt.in_frame rt helper (fun () -> Rt.alloc rt ~size:20) in
  Rt.free rt a;
  let c = Rt.alloc rt ~size:30 in
  Rt.free rt c;
  Rt.touch rt b 5;
  Rt.leave rt;
  Rt.finish rt

let lifetimes () =
  let trace = tiny_trace () in
  let lt = L.compute trace in
  Alcotest.(check int) "objects" 3 (T.total_objects trace);
  Alcotest.(check int) "total bytes" 60 (T.total_bytes trace);
  Alcotest.(check int) "end clock" 60 lt.end_clock;
  Alcotest.(check int) "a lifetime" 30 lt.lifetime.(0);
  Alcotest.(check int) "c lifetime" 30 lt.lifetime.(2);
  Alcotest.(check int) "b (survivor) lifetime" 50 lt.lifetime.(1);
  Alcotest.(check bool) "b survived" true lt.survived.(1);
  Alcotest.(check bool) "a did not survive" false lt.survived.(0)

let short_lived () =
  let trace = tiny_trace () in
  let lt = L.compute trace in
  Alcotest.(check bool) "a short at 31" true (L.is_short_lived lt ~threshold:31 0);
  Alcotest.(check bool) "a long at 30" false (L.is_short_lived lt ~threshold:30 0);
  Alcotest.(check bool) "survivor never short" false
    (L.is_short_lived lt ~threshold:1000 1)

let max_live () =
  let trace = tiny_trace () in
  let bytes, objs = L.max_live trace in
  (* live: a(10) -> a+b(30) -> b(20) -> b+c(50) -> b(20) *)
  Alcotest.(check int) "max bytes" 50 bytes;
  Alcotest.(check int) "max objects" 2 objs

let stats () =
  let trace = tiny_trace () in
  let s = Lp_trace.Stats.compute trace in
  Alcotest.(check string) "program" "test" s.program;
  Alcotest.(check int) "total objects" 3 s.total_objects;
  Alcotest.(check int) "calls" 2 s.calls;
  Alcotest.(check bool) "has heap refs" true (trace.heap_refs > 0)

let chains_recorded () =
  let trace = tiny_trace () in
  (* two distinct raw chains: [main] and [helper; main] *)
  Alcotest.(check int) "distinct chains" 2 (Array.length trace.chains);
  let found = ref false in
  T.iter_allocs trace (fun ~obj ~size:_ ~chain ~key:_ ~tag:_ ->
      if obj = 1 then begin
        let c = T.chain_of_alloc trace chain in
        let names = Lp_callchain.Chain.names trace.funcs c in
        Alcotest.(check (list string)) "b's chain" [ "helper"; "main" ] names;
        found := true
      end);
  Alcotest.(check bool) "saw b" true !found

let textio_roundtrip () =
  let trace = tiny_trace () in
  let s = Lp_trace.Textio.to_string trace in
  let trace' = Lp_trace.Textio.of_string s in
  Alcotest.(check string) "program" trace.program trace'.program;
  Alcotest.(check int) "objects" trace.n_objects trace'.n_objects;
  Alcotest.(check int) "events" (Array.length trace.events) (Array.length trace'.events);
  Alcotest.(check int) "heap refs" trace.heap_refs trace'.heap_refs;
  Alcotest.(check int) "total refs" trace.total_refs trace'.total_refs;
  Alcotest.(check int) "chains" (Array.length trace.chains) (Array.length trace'.chains);
  Alcotest.(check (array int)) "obj refs" trace.obj_refs trace'.obj_refs;
  (* a second round-trip is identical text *)
  Alcotest.(check string) "fixed point" s (Lp_trace.Textio.to_string trace')

let textio_rejects_garbage () =
  (match Lp_trace.Textio.of_string "nonsense line\nend\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Lp_trace.Textio.of_string "trace x y\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected missing-end Failure"

(* -- codecs: text escaping, binary round-trips, error context ------------------ *)

let check_trace_equal ?(msg = "") (a : T.t) (b : T.t) =
  let c what = msg ^ what in
  Alcotest.(check string) (c "program") a.program b.program;
  Alcotest.(check string) (c "input") a.input b.input;
  Alcotest.(check int) (c "events") (Array.length a.events) (Array.length b.events);
  Array.iteri
    (fun i ea ->
      if ea <> b.events.(i) then
        Alcotest.failf "%sevent %d differs: %a vs %a" msg i Lp_trace.Event.pp ea
          Lp_trace.Event.pp b.events.(i))
    a.events;
  Alcotest.(check (array (array int))) (c "chains") a.chains b.chains;
  Alcotest.(check (array string)) (c "funcs")
    (Lp_callchain.Func.names a.funcs)
    (Lp_callchain.Func.names b.funcs);
  Alcotest.(check (array string)) (c "tags") a.tags b.tags;
  Alcotest.(check int) (c "n_objects") a.n_objects b.n_objects;
  Alcotest.(check (array int)) (c "obj_refs") a.obj_refs b.obj_refs;
  Alcotest.(check int) (c "instructions") a.instructions b.instructions;
  Alcotest.(check int) (c "calls") a.calls b.calls;
  Alcotest.(check int) (c "heap refs") a.heap_refs b.heap_refs;
  Alcotest.(check int) (c "total refs") a.total_refs b.total_refs

(* names a space-separated line format chokes on unless escaped *)
let adversarial_trace () =
  let funcs = Lp_callchain.Func.create_table () in
  let f1 = Lp_callchain.Func.intern funcs "main entry point" in
  let f2 = Lp_callchain.Func.intern funcs "weird\\name\twith  spaces" in
  let f3 = Lp_callchain.Func.intern funcs " leading and trailing " in
  let b = T.Builder.create ~program:"prog with space" ~input:"input one" ~funcs () in
  let chain = T.Builder.intern_chain b [| f2; f1 |] in
  let chain' = T.Builder.intern_chain b [| f3 |] in
  let tag = T.Builder.intern_tag b "tag with space" in
  let o1 = T.Builder.alloc b ~tag ~size:16 ~chain ~key:123 () in
  let o2 = T.Builder.alloc b ~size:40 ~chain:chain' ~key:(-7) () in
  T.Builder.touch b ~obj:o1 3;
  T.Builder.free b ~obj:o1;
  T.Builder.free b ~obj:o2;
  T.Builder.finish b

let empty_trace () =
  let funcs = Lp_callchain.Func.create_table () in
  T.Builder.finish (T.Builder.create ~program:"empty" ~input:"none" ~funcs ())

let textio_escapes_names () =
  let trace = adversarial_trace () in
  let s = Lp_trace.Textio.to_string trace in
  let trace' = Lp_trace.Textio.of_string s in
  check_trace_equal ~msg:"text " trace trace';
  (* escaped output must re-parse to the same text *)
  Alcotest.(check string) "fixed point" s (Lp_trace.Textio.to_string trace')

let binio_roundtrip () =
  List.iter
    (fun make ->
      let trace = make () in
      let s = Lp_trace.Binio.to_string trace in
      let trace' = Lp_trace.Binio.of_string s in
      check_trace_equal ~msg:"binary " trace trace';
      Alcotest.(check string) "binary fixed point" s
        (Lp_trace.Binio.to_string trace'))
    [ tiny_trace; adversarial_trace; empty_trace ]

let binio_smaller_than_text () =
  let trace = tiny_trace () in
  Alcotest.(check bool) "binary smaller" true
    (String.length (Lp_trace.Binio.to_string trace)
    < String.length (Lp_trace.Textio.to_string trace))

let io_autodetects () =
  let trace = adversarial_trace () in
  let from_text = Lp_trace.Io.of_string (Lp_trace.Textio.to_string trace) in
  let from_bin = Lp_trace.Io.of_string (Lp_trace.Binio.to_string trace) in
  check_trace_equal ~msg:"io/text " trace from_text;
  check_trace_equal ~msg:"io/binary " trace from_bin

let expect_failure name ~substrings f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure msg ->
      List.iter
        (fun sub ->
          let contains =
            let n = String.length msg and m = String.length sub in
            let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S in %S" name sub msg)
            true contains)
        substrings

let textio_reports_bad_ints () =
  (* a bare Failure "int_of_string" told you nothing; the error must name
     the source, the line and the field *)
  expect_failure "bad counters field"
    ~substrings:[ "t.trace"; ":2:"; "heap-refs"; "\"x\"" ] (fun () ->
      Lp_trace.Textio.of_string ~name:"t.trace" "trace p i\ncounters 1 2 x 4\nend\n");
  expect_failure "bad alloc size" ~substrings:[ ":2:"; "size" ] (fun () ->
      Lp_trace.Textio.of_string "trace p i\na 0 huge 0 0 -1 0\nend\n");
  expect_failure "bad free obj" ~substrings:[ ":1:"; "obj" ] (fun () ->
      Lp_trace.Textio.of_string "f nope\nend\n")

let textio_rejects_dangling_refs () =
  (* events must reference objects/chains/tags that exist, like Binio *)
  let base = "trace t i\nfunc 0 main\nchain 0 0\n" in
  expect_failure "free of never-allocated object"
    ~substrings:[ "event 1"; "free"; "object 1" ] (fun () ->
      Lp_trace.Textio.of_string (base ^ "a 0 16 0 5 -1 1\nf 1\nend\n"));
  expect_failure "touch of never-allocated object"
    ~substrings:[ "event 1"; "touch"; "object 3" ] (fun () ->
      Lp_trace.Textio.of_string (base ^ "a 0 16 0 5 -1 1\nr 3 2\nend\n"));
  expect_failure "unknown chain" ~substrings:[ "event 0"; "chain 9" ] (fun () ->
      Lp_trace.Textio.of_string (base ^ "a 0 16 9 5 -1 1\nend\n"));
  expect_failure "unknown tag" ~substrings:[ "event 0"; "tag 0" ] (fun () ->
      Lp_trace.Textio.of_string (base ^ "a 0 16 0 5 0 1\nend\n"));
  (* untagged allocations use tag -1 and are fine *)
  let t = Lp_trace.Textio.of_string (base ^ "a 0 16 0 5 -1 1\nf 0\nend\n") in
  Alcotest.(check int) "n_objects" 1 t.n_objects

let binio_rejects_corruption () =
  let s = Lp_trace.Binio.to_string (adversarial_trace ()) in
  expect_failure "truncated" ~substrings:[ "Binio.input" ] (fun () ->
      Lp_trace.Binio.of_string (String.sub s 0 (String.length s - 2)));
  expect_failure "trailing garbage" ~substrings:[ "trailing" ] (fun () ->
      Lp_trace.Binio.of_string (s ^ "x"));
  let bad_version = Bytes.of_string s in
  Bytes.set bad_version 4 '\xFF';
  expect_failure "bad version" ~substrings:[ "version" ] (fun () ->
      Lp_trace.Binio.of_string (Bytes.to_string bad_version))

(* -- qcheck: random traces round-trip through both codecs ----------------------- *)

let gen_name =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; ' '; '\\'; '\t'; 's'; 'n' ])
      (int_range 1 10))

let gen_trace =
  QCheck.Gen.(
    let* n_funcs = int_range 1 4 in
    let* raw_names = list_repeat n_funcs gen_name in
    let* program = gen_name in
    let* tag_name = gen_name in
    let* ops = list_size (int_range 0 80) (pair (int_range 0 9) (int_range 1 200)) in
    return
      (let funcs = Lp_callchain.Func.create_table () in
       (* suffix to keep names distinct even when the generator repeats *)
       let ids =
         List.mapi
           (fun i n -> Lp_callchain.Func.intern funcs (Printf.sprintf "%s#%d" n i))
           raw_names
       in
       let b = T.Builder.create ~program ~input:"qcheck input" ~funcs () in
       let tag = T.Builder.intern_tag b tag_name in
       let chain =
         T.Builder.intern_chain b (Array.of_list ids)
       in
       let live = ref [] in
       List.iter
         (fun (op, size) ->
           match op with
           | 0 | 1 | 2 | 3 ->
               let tag = if op = 0 then tag else -1 in
               let obj = T.Builder.alloc b ~tag ~size ~chain ~key:(size * 7) () in
               live := obj :: !live
           | 4 | 5 | 6 -> (
               match !live with
               | obj :: rest ->
                   T.Builder.free b ~obj;
                   live := rest
               | [] -> ())
           | _ -> (
               match !live with
               | obj :: _ -> T.Builder.touch b ~obj (1 + (size mod 5))
               | [] -> ()))
         ops;
       T.Builder.finish b))

let arb_trace =
  QCheck.make gen_trace ~print:(fun t ->
      Printf.sprintf "trace %s: %d events, %d objects" t.T.program
        (Array.length t.events) t.n_objects)

let events_equal (a : T.t) (b : T.t) =
  a.program = b.program && a.input = b.input && a.events = b.events
  && a.chains = b.chains
  && Lp_callchain.Func.names a.funcs = Lp_callchain.Func.names b.funcs
  && a.tags = b.tags && a.n_objects = b.n_objects && a.obj_refs = b.obj_refs
  && a.instructions = b.instructions && a.calls = b.calls
  && a.heap_refs = b.heap_refs && a.total_refs = b.total_refs

let text_roundtrip_prop =
  QCheck.Test.make ~name:"textio round-trips adversarial random traces" ~count:80
    arb_trace (fun t ->
      events_equal t (Lp_trace.Textio.of_string (Lp_trace.Textio.to_string t)))

let binio_roundtrip_prop =
  QCheck.Test.make ~name:"binio round-trips adversarial random traces" ~count:80
    arb_trace (fun t ->
      events_equal t (Lp_trace.Binio.of_string (Lp_trace.Binio.to_string t)))

let io_detect_prop =
  QCheck.Test.make ~name:"io auto-detection picks the right codec" ~count:40
    arb_trace (fun t ->
      events_equal t (Lp_trace.Io.of_string (Lp_trace.Textio.to_string t))
      && events_equal t (Lp_trace.Io.of_string (Lp_trace.Binio.to_string t)))

(* -- runtime safety ------------------------------------------------------------ *)

let double_free () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.free rt h;
  Alcotest.check_raises "double free" (Invalid_argument "Runtime.free: object already freed")
    (fun () -> Rt.free rt h)

let touch_after_free () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.free rt h;
  Alcotest.check_raises "touch after free"
    (Invalid_argument "Runtime.touch: object already freed") (fun () -> Rt.touch rt h 1)

let zero_size_alloc () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  Alcotest.check_raises "size 0" (Invalid_argument "Runtime.alloc: size must be positive")
    (fun () -> ignore (Rt.alloc rt ~size:0))

let in_frame_unwinds () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let f = Rt.func rt "f" in
  (try Rt.in_frame rt f (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Rt.depth rt)

let live_object_count () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:8 in
  let _b = Rt.alloc rt ~size:8 in
  Alcotest.(check int) "two live" 2 (Rt.live_objects rt);
  Rt.free rt a;
  Alcotest.(check int) "one live" 1 (Rt.live_objects rt)

let ref_ratio_counted () =
  let rt = Rt.create ~ref_ratio:1.0 ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.touch rt h 10;
  Rt.instructions rt 100;
  let trace = Rt.finish rt in
  (* non-heap refs include ratio * instructions (plus instr from alloc) *)
  Alcotest.(check bool) "ratio applied" true (trace.total_refs - trace.heap_refs >= 100)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "lifetimes" `Quick lifetimes;
        Alcotest.test_case "short-lived threshold" `Quick short_lived;
        Alcotest.test_case "max live" `Quick max_live;
        Alcotest.test_case "stats" `Quick stats;
        Alcotest.test_case "chains recorded" `Quick chains_recorded;
        Alcotest.test_case "textio round-trip" `Quick textio_roundtrip;
        Alcotest.test_case "textio rejects garbage" `Quick textio_rejects_garbage;
      ] );
    ( "trace-codecs",
      [
        Alcotest.test_case "textio escapes names" `Quick textio_escapes_names;
        Alcotest.test_case "binio round-trip" `Quick binio_roundtrip;
        Alcotest.test_case "binio smaller than text" `Quick binio_smaller_than_text;
        Alcotest.test_case "io auto-detects format" `Quick io_autodetects;
        Alcotest.test_case "textio reports file/line/field" `Quick
          textio_reports_bad_ints;
        Alcotest.test_case "textio rejects dangling references" `Quick
          textio_rejects_dangling_refs;
        Alcotest.test_case "binio rejects corruption" `Quick binio_rejects_corruption;
        QCheck_alcotest.to_alcotest text_roundtrip_prop;
        QCheck_alcotest.to_alcotest binio_roundtrip_prop;
        QCheck_alcotest.to_alcotest io_detect_prop;
      ] );
    ( "ialloc",
      [
        Alcotest.test_case "double free" `Quick double_free;
        Alcotest.test_case "touch after free" `Quick touch_after_free;
        Alcotest.test_case "zero-size alloc" `Quick zero_size_alloc;
        Alcotest.test_case "in_frame unwinds" `Quick in_frame_unwinds;
        Alcotest.test_case "live object count" `Quick live_object_count;
        Alcotest.test_case "ref ratio" `Quick ref_ratio_counted;
      ] );
  ]
