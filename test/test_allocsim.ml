(* Tests for lp_allocsim: the first-fit allocator's structural invariants
   (block tiling, coalescing, free-list consistency), the BSD buckets, the
   arena allocator's bump/reset/overflow/free behaviours, and the driver. *)

module FF = Lp_allocsim.First_fit
module Bsd = Lp_allocsim.Bsd
module Arena = Lp_allocsim.Arena

let ff_alloc_free_roundtrip () =
  let ff = FF.create () in
  let a = FF.alloc ff 100 in
  let b = FF.alloc ff 200 in
  Alcotest.(check bool) "distinct addresses" true (a <> b);
  FF.check_invariants ff;
  FF.free ff a;
  FF.check_invariants ff;
  FF.free ff b;
  FF.check_invariants ff;
  Alcotest.(check int) "all free coalesces to zero live" 0 (FF.live_bytes ff)

let ff_reuses_freed_space () =
  let ff = FF.create () in
  let a = FF.alloc ff 1000 in
  FF.free ff a;
  let b = FF.alloc ff 1000 in
  Alcotest.(check int) "address reused" a b;
  Alcotest.(check int) "heap did not grow past one chunk" 8192 (FF.max_heap_size ff)

let ff_coalescing () =
  let ff = FF.create () in
  let a = FF.alloc ff 100 in
  let b = FF.alloc ff 100 in
  let c = FF.alloc ff 100 in
  (* free in an order that exercises both next- and prev-coalescing *)
  FF.free ff a;
  FF.free ff c;
  FF.free ff b;
  FF.check_invariants ff;
  (* after full coalescing a large block must be allocatable without growth *)
  let before = FF.max_heap_size ff in
  let big = FF.alloc ff 4000 in
  ignore big;
  Alcotest.(check int) "no growth for big alloc" before (FF.max_heap_size ff)

let ff_heap_grows_in_chunks () =
  let ff = FF.create () in
  ignore (FF.alloc ff 20000);
  Alcotest.(check int) "24KB for 20000+header" 24576 (FF.max_heap_size ff)

let ff_free_unknown () =
  let ff = FF.create () in
  ignore (FF.alloc ff 64);
  Alcotest.check_raises "bad free" (Invalid_argument "First_fit.free: not an allocated address")
    (fun () -> FF.free ff 4)

let ff_invalid_size () =
  let ff = FF.create () in
  Alcotest.check_raises "size 0" (Invalid_argument "First_fit.alloc: size must be positive")
    (fun () -> ignore (FF.alloc ff 0))

(* random alloc/free sequences keep the invariants and never overlap *)
let ff_random_property =
  QCheck.Test.make ~name:"first-fit invariants under random traffic" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 300) (pair bool (int_range 1 600)))
    (fun ops ->
      let ff = FF.create () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, size) ->
          if do_alloc || !live = [] then begin
            let addr = FF.alloc ff size in
            (* payload [addr, addr+size) must not overlap any live object *)
            List.iter
              (fun (a, s) ->
                if addr < a + s && a < addr + size then
                  QCheck.Test.fail_reportf "overlap: new (%d,%d) vs live (%d,%d)"
                    addr size a s)
              !live;
            live := (addr, size) :: !live
          end
          else begin
            match !live with
            | (a, _) :: rest ->
                FF.free ff a;
                live := rest
            | [] -> ()
          end)
        ops;
      FF.check_invariants ff;
      true)

let best_fit_picks_tightest () =
  let bf = FF.create ~policy:FF.Best () in
  (* create two holes: 100 bytes and 300 bytes *)
  let a = FF.alloc bf 100 in
  let _gap1 = FF.alloc bf 8 in
  let b = FF.alloc bf 300 in
  let _gap2 = FF.alloc bf 8 in
  FF.free bf a;
  FF.free bf b;
  (* an 80-byte request must land in the 100-byte hole, not the 300 *)
  let c = FF.alloc bf 80 in
  Alcotest.(check int) "tightest hole chosen" a c;
  FF.check_invariants bf

let best_fit_invariants_random =
  QCheck.Test.make ~name:"best-fit invariants under random traffic" ~count:40
    QCheck.(list_of_size Gen.(int_range 1 200) (pair bool (int_range 1 400)))
    (fun ops ->
      let bf = FF.create ~policy:FF.Best () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, size) ->
          if do_alloc || !live = [] then live := (FF.alloc bf size, size) :: !live
          else begin
            match !live with
            | (a, _) :: rest ->
                FF.free bf a;
                live := rest
            | [] -> ()
          end)
        ops;
      FF.check_invariants bf;
      true)

let bsd_basics () =
  let b = Bsd.create () in
  let a1 = Bsd.alloc b 10 in
  Bsd.free b a1;
  let a2 = Bsd.alloc b 10 in
  Alcotest.(check int) "LIFO reuse" a1 a2;
  Alcotest.(check int) "frees counted" 1 (Bsd.frees b)

let bsd_size_classes () =
  let b = Bsd.create () in
  (* 10 + 8 header -> 32-byte class; 24 + 8 -> 32 too; 25+8 -> 64 *)
  let x = Bsd.alloc b 10 in
  Bsd.free b x;
  let y = Bsd.alloc b 24 in
  Alcotest.(check int) "same class reused" x y;
  Bsd.free b y;
  let z = Bsd.alloc b 25 in
  Alcotest.(check bool) "bigger class is a fresh block" true (z <> x)

let bsd_never_coalesces () =
  let b = Bsd.create () in
  let xs = List.init 200 (fun _ -> Bsd.alloc b 100) in
  List.iter (Bsd.free b) xs;
  let peak = Bsd.max_heap_size b in
  let ys = List.init 200 (fun _ -> Bsd.alloc b 100) in
  ignore ys;
  Alcotest.(check int) "refill reuses every page" peak (Bsd.max_heap_size b)

(* -- segfit ----------------------------------------------------------------------- *)

module Seg = Lp_allocsim.Segfit

let seg_roundtrip () =
  let s = Seg.create () in
  let a = Seg.alloc s 24 in
  let b = Seg.alloc s 24 in
  Alcotest.(check bool) "distinct addresses" true (a <> b);
  Seg.check_invariants s;
  Seg.free s a;
  Seg.free s b;
  Seg.check_invariants s;
  Alcotest.(check int) "alloc/free counters" 2 (Seg.frees s)

let seg_cells_share_a_slab () =
  let s = Seg.create () in
  (* 24 + 8 header rounds to a 32-byte class: both cells fit in one page *)
  let a = Seg.alloc s 24 in
  let b = Seg.alloc s 24 in
  Alcotest.(check int) "one slab created" 1 (Seg.slabs_created s);
  Alcotest.(check int) "adjacent cells" 32 (abs (b - a));
  Alcotest.(check int) "one page of heap" 4096 (Seg.max_heap_size s)

let seg_page_recycled_across_classes () =
  let s = Seg.create () in
  let xs = List.init 4 (fun _ -> Seg.alloc s 8) in
  List.iter (Seg.free s) xs;
  Alcotest.(check int) "empty page returned to the pool" 1 (Seg.pages_recycled s);
  let peak = Seg.max_heap_size s in
  (* a different size class claims the recycled page: no heap growth *)
  ignore (Seg.alloc s 100);
  Alcotest.(check int) "other class reuses the page" peak (Seg.max_heap_size s);
  Seg.check_invariants s

let seg_large_spans_reused () =
  let s = Seg.create () in
  let a = Seg.alloc s 5000 in
  Alcotest.(check int) "two-page span" (2 * 4096) (Seg.max_heap_size s);
  Seg.free s a;
  let b = Seg.alloc s 5000 in
  Alcotest.(check int) "span reused exactly" a b;
  Alcotest.(check int) "no growth on reuse" (2 * 4096) (Seg.max_heap_size s);
  Alcotest.(check int) "two spans allocated" 2 (Seg.large_spans s);
  Seg.check_invariants s

let seg_free_unknown () =
  let s = Seg.create () in
  Alcotest.check_raises "unknown address"
    (Invalid_argument "Segfit.free: not an allocated address") (fun () ->
      Seg.free s 12345)

let seg_invalid_size () =
  let s = Seg.create () in
  Alcotest.check_raises "zero size"
    (Invalid_argument "Segfit.alloc: size must be positive") (fun () ->
      ignore (Seg.alloc s 0))

(* -- arena ----------------------------------------------------------------------- *)

let small_config = { Arena.n_arenas = 4; arena_size = 128 }

let arena_bump () =
  let a = Arena.create ~config:small_config () in
  let x = Arena.alloc a ~size:40 ~predicted:true in
  let y = Arena.alloc a ~size:40 ~predicted:true in
  Alcotest.(check int) "bump: consecutive" (x + 40) y;
  Alcotest.(check int) "arena allocs" 2 (Arena.arena_allocs a);
  Alcotest.(check int) "arena bytes" 80 (Arena.arena_bytes a)

let arena_unpredicted_goes_general () =
  let a = Arena.create ~config:small_config () in
  let x = Arena.alloc a ~size:40 ~predicted:false in
  Alcotest.(check bool) "general heap is above arena area" true (x >= 4 * 128);
  Alcotest.(check int) "no arena allocs" 0 (Arena.arena_allocs a)

let arena_too_big_goes_general () =
  let a = Arena.create ~config:small_config () in
  let x = Arena.alloc a ~size:129 ~predicted:true in
  Alcotest.(check bool) "oversized object in general heap" true (x >= 4 * 128)

let arena_reset_on_empty () =
  let a = Arena.create ~config:small_config () in
  (* fill arena 0, free everything, fill again: must recycle *)
  let xs = List.init 3 (fun _ -> Arena.alloc a ~size:40 ~predicted:true) in
  List.iter (Arena.free a) xs;
  let more = List.init 8 (fun _ -> Arena.alloc a ~size:40 ~predicted:true) in
  ignore more;
  Alcotest.(check bool) "arenas recycled" true (Arena.arena_resets a >= 1);
  Alcotest.(check int) "no overflow" 0 (Arena.overflow_allocs a)

let arena_pollution_overflows () =
  let a = Arena.create ~config:small_config () in
  (* fill all four arenas with objects that stay live (mispredicted
     long-lived objects) -> further predicted allocs must overflow *)
  let held = List.init 12 (fun _ -> Arena.alloc a ~size:40 ~predicted:true) in
  let overflow = Arena.alloc a ~size:40 ~predicted:true in
  Alcotest.(check bool) "overflow lands in general heap" true (overflow >= 4 * 128);
  Alcotest.(check bool) "overflow counted" true (Arena.overflow_allocs a >= 1);
  List.iter (Arena.free a) held

let arena_free_dispatch () =
  let a = Arena.create ~config:small_config () in
  let in_arena = Arena.alloc a ~size:40 ~predicted:true in
  let in_general = Arena.alloc a ~size:40 ~predicted:false in
  Arena.free a in_arena;
  Arena.free a in_general;
  Alcotest.(check int) "both freed" 2 (Arena.frees a);
  Alcotest.(check string) "fallback is first-fit" "first-fit" (Arena.general_name a);
  Arena.check_invariants a

let arena_heap_includes_area () =
  let a = Arena.create ~config:small_config () in
  ignore (Arena.alloc a ~size:40 ~predicted:true);
  Alcotest.(check bool) "max heap >= arena area" true (Arena.max_heap_size a >= 4 * 128)

(* -- driver ----------------------------------------------------------------------- *)

let make_trace () =
  let rt = Lp_ialloc.Runtime.create ~program:"drv" ~input:"t" () in
  let main = Lp_ialloc.Runtime.func rt "main" in
  Lp_ialloc.Runtime.enter rt main;
  let hs = List.init 50 (fun i -> Lp_ialloc.Runtime.alloc rt ~size:(16 + (i mod 5 * 8))) in
  List.iteri (fun i h -> if i mod 2 = 0 then Lp_ialloc.Runtime.free rt h) hs;
  Lp_ialloc.Runtime.leave rt;
  Lp_ialloc.Runtime.finish rt

let predictor_const verdict =
  {
    Lp_allocsim.Driver.predicted = (fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> verdict);
    predict_cost = 18;
    short_threshold = 32768;
    on_outcome = None;
  }

let driver_first_fit () =
  let trace = make_trace () in
  let m = Lp_allocsim.Driver.run_named trace "first-fit" in
  Alcotest.(check int) "allocs" 50 m.Lp_allocsim.Metrics.allocs;
  Alcotest.(check int) "frees" 25 m.Lp_allocsim.Metrics.frees;
  Alcotest.(check bool) "instr/alloc positive" true (m.instr_per_alloc > 0.)

let driver_arena_predict_all () =
  let trace = make_trace () in
  let m =
    Lp_allocsim.Driver.run_named ~predictor:(predictor_const true) trace "arena"
  in
  let stats = Option.get (Lp_allocsim.Metrics.arena_stats m) in
  Alcotest.(check int) "everything in arenas" 50 stats.arena_allocs;
  Alcotest.(check bool) "heap includes 64KB area" true (m.max_heap >= 65536)

let driver_arena_predict_none_equals_first_fit () =
  let trace = make_trace () in
  let ff = Lp_allocsim.Driver.run_named trace "first-fit" in
  let ar =
    Lp_allocsim.Driver.run_named ~predictor:(predictor_const false) trace "arena"
  in
  (* the degenerate case of the paper: an arena allocator that puts nothing
     in arenas is first-fit plus the arena area *)
  Alcotest.(check int) "heap = first-fit + arena area"
    (ff.Lp_allocsim.Metrics.max_heap + 65536) ar.Lp_allocsim.Metrics.max_heap

(* Malformed traces (a free of a never-allocated object, a double free)
   must fail naming the object and the event index, not crash with an
   unrelated error deep inside the allocator. *)
let hand_trace events n_objects : Lp_trace.Trace.t =
  {
    program = "bad";
    input = "bad";
    events = Array.of_list events;
    chains = [| [||] |];
    funcs = Lp_callchain.Func.create_table ();
    n_objects;
    instructions = 0;
    calls = 0;
    heap_refs = 0;
    total_refs = 0;
    obj_refs = Array.make n_objects 0;
    tags = [||];
  }

let check_driver_rejects name trace backend ~substrings =
  match
    Lp_allocsim.Driver.run_named ~predictor:(predictor_const true) trace backend
  with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure msg ->
      List.iter
        (fun sub ->
          let contains =
            let n = String.length msg and m = String.length sub in
            let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S in %S" name sub msg)
            true contains)
        substrings

let driver_rejects_bad_frees () =
  let alloc obj = Lp_trace.Event.Alloc { obj; size = 16; chain = 0; key = 0; tag = -1 } in
  let free obj = Lp_trace.Event.Free { obj; size = -1 } in
  let never_allocated = hand_trace [ free 0 ] 1 in
  let double_free = hand_trace [ alloc 0; free 0; free 0 ] 1 in
  let out_of_range = hand_trace [ free 7 ] 1 in
  (* every registry backend must reject the same malformed traces: the
     validation lives in the one replay loop, not in any allocator *)
  List.iter
    (fun backend ->
      check_driver_rejects "free of never-allocated" never_allocated backend
        ~substrings:[ "object 0"; "event 0" ];
      check_driver_rejects "double free" double_free backend
        ~substrings:[ "object 0"; "event 2" ];
      check_driver_rejects "free out of range" out_of_range backend
        ~substrings:[ "object 7"; "event 0" ])
    (Lp_allocsim.Registry.names ())

let suites =
  [
    ( "first-fit",
      [
        Alcotest.test_case "alloc/free round-trip" `Quick ff_alloc_free_roundtrip;
        Alcotest.test_case "reuses freed space" `Quick ff_reuses_freed_space;
        Alcotest.test_case "coalescing" `Quick ff_coalescing;
        Alcotest.test_case "grows in 8KB chunks" `Quick ff_heap_grows_in_chunks;
        Alcotest.test_case "free unknown address" `Quick ff_free_unknown;
        Alcotest.test_case "invalid size" `Quick ff_invalid_size;
        QCheck_alcotest.to_alcotest ff_random_property;
        Alcotest.test_case "best fit picks tightest" `Quick best_fit_picks_tightest;
        QCheck_alcotest.to_alcotest best_fit_invariants_random;
      ] );
    ( "bsd",
      [
        Alcotest.test_case "basics" `Quick bsd_basics;
        Alcotest.test_case "size classes" `Quick bsd_size_classes;
        Alcotest.test_case "never coalesces" `Quick bsd_never_coalesces;
      ] );
    ( "segfit",
      [
        Alcotest.test_case "alloc/free round-trip" `Quick seg_roundtrip;
        Alcotest.test_case "cells share a slab" `Quick seg_cells_share_a_slab;
        Alcotest.test_case "page recycled across classes" `Quick
          seg_page_recycled_across_classes;
        Alcotest.test_case "large spans reused" `Quick seg_large_spans_reused;
        Alcotest.test_case "free unknown address" `Quick seg_free_unknown;
        Alcotest.test_case "invalid size" `Quick seg_invalid_size;
      ] );
    ( "arena",
      [
        Alcotest.test_case "bump allocation" `Quick arena_bump;
        Alcotest.test_case "unpredicted -> general" `Quick arena_unpredicted_goes_general;
        Alcotest.test_case "oversized -> general" `Quick arena_too_big_goes_general;
        Alcotest.test_case "reset on empty" `Quick arena_reset_on_empty;
        Alcotest.test_case "pollution overflows" `Quick arena_pollution_overflows;
        Alcotest.test_case "free dispatch" `Quick arena_free_dispatch;
        Alcotest.test_case "heap includes area" `Quick arena_heap_includes_area;
      ] );
    ( "driver",
      [
        Alcotest.test_case "first-fit metrics" `Quick driver_first_fit;
        Alcotest.test_case "arena predict-all" `Quick driver_arena_predict_all;
        Alcotest.test_case "predict-none degenerates to first-fit" `Quick
          driver_arena_predict_none_equals_first_fit;
        Alcotest.test_case "rejects bad frees with context" `Quick
          driver_rejects_bad_frees;
      ] );
  ]
