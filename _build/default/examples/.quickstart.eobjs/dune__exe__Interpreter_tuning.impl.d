examples/interpreter_tuning.ml: Lifetime Lp_allocsim Lp_report Lp_trace Lp_workloads Printf
