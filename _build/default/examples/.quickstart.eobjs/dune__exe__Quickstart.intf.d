examples/quickstart.mli:
