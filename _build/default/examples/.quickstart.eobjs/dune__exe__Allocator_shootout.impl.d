examples/allocator_shootout.ml: Lifetime List Lp_allocsim Lp_report Lp_workloads Printf
