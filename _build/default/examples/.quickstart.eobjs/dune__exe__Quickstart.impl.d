examples/quickstart.ml: Array Hashtbl Lifetime List Lp_allocsim Lp_ialloc Lp_trace Lp_workloads Printf String
