examples/interpreter_tuning.mli:
