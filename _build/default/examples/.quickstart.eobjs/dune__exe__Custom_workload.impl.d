examples/custom_workload.ml: Lifetime List Lp_allocsim Lp_callchain Lp_ialloc Lp_trace Lp_workloads Printf Queue
