examples/allocator_shootout.mli:
