bench/main.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Lp_allocsim Lp_callchain Lp_quantile Measure Printf Staged Sys Tables Test Time Toolkit
