bench/tables.ml: Buffer Lifetime List Lp_report Printf String
