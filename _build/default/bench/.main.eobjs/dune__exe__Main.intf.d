bench/main.mli:
