type t = {
  funcs : Func.table;
  mutable frames : Func.id array;  (* frames.(0) is the outermost frame *)
  mutable depth : int;
  mutable key : int;
  mutable calls : int;
}

let create funcs = { funcs; frames = Array.make 64 0; depth = 0; key = 0; calls = 0 }

let push t id =
  if t.depth = Array.length t.frames then begin
    let grown = Array.make (2 * t.depth) 0 in
    Array.blit t.frames 0 grown 0 t.depth;
    t.frames <- grown
  end;
  t.frames.(t.depth) <- id;
  t.depth <- t.depth + 1;
  t.calls <- t.calls + 1;
  t.key <- t.key lxor Func.encryption_id t.funcs id

let pop t =
  if t.depth = 0 then invalid_arg "Stack.pop: empty stack";
  t.depth <- t.depth - 1;
  t.key <- t.key lxor Func.encryption_id t.funcs t.frames.(t.depth)

let depth t = t.depth
let top t = if t.depth = 0 then None else Some t.frames.(t.depth - 1)

let snapshot t =
  Array.init t.depth (fun i -> t.frames.(t.depth - 1 - i))

let snapshot_last t n =
  let n = min n t.depth in
  Array.init n (fun i -> t.frames.(t.depth - 1 - i))

let encryption_key t = t.key
let calls t = t.calls
