(** Call-chains: abstractions of the call-stack at an event.

    A {i raw} chain is a stack snapshot, innermost frame first.  The paper's
    complete call-chain (§3.2) is the raw chain with {i cycles of recursive
    function invocations removed}, in the style of gprof's collapsing of
    cycles in the dynamic call graph.  Length-N sub-chains, by contrast, are
    taken from the raw chain without cycle elimination — the paper notes
    (Table 6 caption) that this is why the ∞ row can predict slightly less
    than the length-7 row. *)

type t = Func.id array
(** A chain, innermost frame first.  Treat as immutable. *)

val eliminate_cycles : t -> t
(** [eliminate_cycles raw] removes recursive cycles.

    Walking from the outermost frame inward, a frame naming a function that
    is already present in the partial result closes a cycle; the result is
    truncated back to (and including) the earlier occurrence, discarding the
    cycle's frames.  Consequently no function appears twice in the result.

    Example: raw stack main→f→g→f→g→malloc (innermost first
    [[|malloc; g; f; g; f; main|]]) yields [[|malloc; g; f; main|]]. *)

val last : t -> int -> t
(** [last chain n] is the length-N sub-chain: the innermost [min n length]
    frames. *)

val equal : t -> t -> bool

val hash : t -> int
(** A good hash of the chain contents (FNV-1a over the ids). *)

val compare : t -> t -> int

val to_string : Func.table -> t -> string
(** Render as ["innermost<-...<-outermost"]. *)

val names : Func.table -> t -> string list
(** Function names, innermost first — the run-independent form used to map
    allocation sites across executions. *)
