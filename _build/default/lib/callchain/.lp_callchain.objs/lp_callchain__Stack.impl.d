lib/callchain/stack.ml: Array Func
