lib/callchain/chain.mli: Func
