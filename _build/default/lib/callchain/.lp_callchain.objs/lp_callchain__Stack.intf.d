lib/callchain/stack.mli: Func
