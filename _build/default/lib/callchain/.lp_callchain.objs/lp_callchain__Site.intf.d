lib/callchain/site.mli: Chain Func Hashtbl
