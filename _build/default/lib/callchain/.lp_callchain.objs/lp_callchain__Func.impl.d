lib/callchain/func.ml: Array Char Hashtbl String
