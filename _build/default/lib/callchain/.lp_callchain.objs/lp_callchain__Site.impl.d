lib/callchain/site.ml: Array Chain Hashtbl Printf Stdlib
