lib/callchain/chain.ml: Array Func List Stdlib String
