lib/callchain/func.mli:
