type id = int

type table = {
  by_name : (string, id) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create_table () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some id -> id
  | None ->
      let id = tbl.next in
      tbl.next <- id + 1;
      if id = Array.length tbl.by_id then begin
        let grown = Array.make (2 * id) "" in
        Array.blit tbl.by_id 0 grown 0 id;
        tbl.by_id <- grown
      end;
      tbl.by_id.(id) <- name;
      Hashtbl.add tbl.by_name name id;
      id

let name tbl id =
  if id < 0 || id >= tbl.next then invalid_arg "Func.name: unknown identifier";
  tbl.by_id.(id)

let size tbl = tbl.next
let names tbl = Array.sub tbl.by_id 0 tbl.next

(* 16-bit ids derived from the function name with an FNV-1a hash, so they are
   stable across runs of the same program — a property the cross-run site
   mapping relies on.  The paper suggests choosing ids via static call-graph
   analysis to minimise collisions; a good hash is the dynamic analogue. *)
let encryption_id tbl id =
  let name = name tbl id in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3fffffff)
    name;
  !h land 0xffff
