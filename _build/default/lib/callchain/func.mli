(** Interned function identifiers.

    Call-chains are sequences of functions; to keep chains compact and
    comparisons cheap, function names are interned into dense integer
    identifiers.  One {!table} belongs to one traced program execution.

    The paper distinguishes call-chains of functions from call-chains of
    return addresses and uses the former (§3.2); our identifiers likewise
    name functions, not call sites. *)

type id = int
(** Dense identifier, starting at 0, valid within one {!table}. *)

type table
(** An interning table mapping names to identifiers and back. *)

val create_table : unit -> table

val intern : table -> string -> id
(** [intern tbl name] is the identifier for [name], allocating a fresh one on
    first use. *)

val name : table -> id -> string
(** Inverse of {!intern}.
    @raise Invalid_argument on an identifier not issued by this table. *)

val size : table -> int
(** Number of distinct functions interned so far. *)

val names : table -> string array
(** All interned names, indexed by identifier. *)

val encryption_id : table -> id -> int
(** A deterministic pseudo-random 16-bit id for the function, used by
    call-chain encryption ({!Encrypt}).  The paper proposes 16-bit ids
    because they fit RISC immediate fields (§5.1, footnote 2). *)
