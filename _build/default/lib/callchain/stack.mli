(** The dynamic call-stack of a traced execution.

    The instrumented runtime pushes a frame on every function entry and pops
    it on exit.  At each allocation event the stack is snapshotted into a raw
    chain (innermost frame first); analysis passes later derive
    cycle-eliminated chains and length-N sub-chains from the raw snapshot.

    The stack also maintains the call-chain encryption key incrementally
    (§5.1): entering a function XORs its 16-bit id into the key, leaving
    XORs it back out — mirroring the load/XOR/store sequence the paper
    charges 3 instructions per call for. *)

type t

val create : Func.table -> t

val push : t -> Func.id -> unit
(** Enter a function. *)

val pop : t -> unit
(** Leave the current function.
    @raise Invalid_argument if the stack is empty. *)

val depth : t -> int

val top : t -> Func.id option
(** The function currently executing, if any. *)

val snapshot : t -> Func.id array
(** The raw chain at this instant, innermost frame first.  For example, if
    [main] called [f] which called [g], the snapshot is [[|g; f; main|]]. *)

val snapshot_last : t -> int -> Func.id array
(** [snapshot_last t n] is the innermost [min n depth] frames, innermost
    first — the paper's length-N sub-chain of the current stack. *)

val encryption_key : t -> int
(** The current 16-bit call-chain encryption key. *)

val calls : t -> int
(** Total number of pushes so far — the "function calls" count of Table 2,
    which also prices call-chain encryption in Table 9. *)
