type t = Func.id array

let eliminate_cycles (raw : t) : t =
  let n = Array.length raw in
  if n = 0 then [||]
  else begin
    (* Work outermost-first so that closing a cycle keeps the *outer*
       occurrence, as gprof's cycle collapsing does. *)
    let buf = Array.make n 0 in
    let len = ref 0 in
    for i = n - 1 downto 0 do
      let f = raw.(i) in
      (* Does f already appear in buf.(0 .. len-1)? *)
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < !len do
        if buf.(!j) = f then found := !j;
        incr j
      done;
      if !found >= 0 then len := !found + 1 (* truncate back to the earlier occurrence *)
      else begin
        buf.(!len) <- f;
        incr len
      end
    done;
    (* buf is outermost-first; flip back to innermost-first. *)
    Array.init !len (fun i -> buf.(!len - 1 - i))
  end

let last (chain : t) n : t =
  let n = min n (Array.length chain) in
  Array.sub chain 0 n

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let hash (c : t) =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun id ->
      h := !h lxor (id land 0xff);
      h := !h * 0x01000193 land max_int;
      h := !h lxor (id lsr 8);
      h := !h * 0x01000193 land max_int)
    c;
  !h

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else begin
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let to_string tbl (c : t) =
  c |> Array.to_list |> List.map (Func.name tbl) |> String.concat "<-"

let names tbl (c : t) = c |> Array.to_list |> List.map (Func.name tbl)
