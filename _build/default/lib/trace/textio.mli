(** Text serialization of traces.

    A simple line-oriented format so traces can be written to disk by the
    CLI, inspected with ordinary text tools, and read back:

    {v
    trace <program> <input>
    func <id> <name>
    chain <id> <func-id> <func-id> ...
    counters <instructions> <calls> <heap-refs> <total-refs>
    a <obj> <size> <chain-id> <key> [<refs>]
    f <obj>
    end
    v}

    Allocation lines carry the object's final heap-reference count so a
    round-tripped trace preserves the locality statistics. *)

val output : out_channel -> Trace.t -> unit

val input : in_channel -> Trace.t
(** @raise Failure on malformed input, with a line number in the message. *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** @raise Failure on malformed input. *)
