type t = {
  program : string;
  input : string;
  instructions : int;
  calls : int;
  total_bytes : int;
  total_objects : int;
  max_bytes : int;
  max_objects : int;
  heap_ref_pct : float;
  distinct_chains : int;
  mean_object_size : float;
}

let compute (trace : Trace.t) =
  let total_bytes = Trace.total_bytes trace in
  let total_objects = Trace.total_objects trace in
  let max_bytes, max_objects = Lifetimes.max_live trace in
  let heap_ref_pct =
    if trace.total_refs = 0 then 0.
    else 100. *. float_of_int trace.heap_refs /. float_of_int trace.total_refs
  in
  {
    program = trace.program;
    input = trace.input;
    instructions = trace.instructions;
    calls = trace.calls;
    total_bytes;
    total_objects;
    max_bytes;
    max_objects;
    heap_ref_pct;
    distinct_chains = Array.length trace.chains;
    mean_object_size =
      (if total_objects = 0 then 0. else float_of_int total_bytes /. float_of_int total_objects);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s (%s):@ instructions %d@ calls %d@ bytes %d in %d objects (mean %.1f)@ max \
     live %d bytes / %d objects@ heap refs %.1f%%@ distinct chains %d@]"
    t.program t.input t.instructions t.calls t.total_bytes t.total_objects
    t.mean_object_size t.max_bytes t.max_objects t.heap_ref_pct t.distinct_chains
