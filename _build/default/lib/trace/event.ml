type t =
  | Alloc of { obj : int; size : int; chain : int; key : int; tag : int }
  | Free of { obj : int }
  | Touch of { obj : int; mutable count : int }

let pp ppf = function
  | Alloc { obj; size; chain; key; tag } ->
      Format.fprintf ppf "alloc obj=%d size=%d chain=%d key=%#x tag=%d" obj size
        chain key tag
  | Free { obj } -> Format.fprintf ppf "free obj=%d" obj
  | Touch { obj; count } -> Format.fprintf ppf "touch obj=%d count=%d" obj count
