lib/trace/stats.ml: Array Format Lifetimes Trace
