lib/trace/textio.mli: Trace
