lib/trace/stats.mli: Format Trace
