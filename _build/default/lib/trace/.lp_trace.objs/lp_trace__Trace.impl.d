lib/trace/trace.ml: Array Event Hashtbl List Lp_callchain
