lib/trace/lifetimes.ml: Array Event Trace
