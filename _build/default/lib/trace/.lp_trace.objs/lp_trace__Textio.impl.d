lib/trace/textio.ml: Array Buffer Event List Lp_callchain Printf String Trace
