lib/trace/lifetimes.mli: Trace
