lib/trace/trace.mli: Event Lp_callchain
