let write ~(line : string -> unit) (t : Trace.t) =
  line (Printf.sprintf "trace %s %s" t.program t.input);
  let names = Lp_callchain.Func.names t.funcs in
  Array.iteri (fun id name -> line (Printf.sprintf "func %d %s" id name)) names;
  Array.iteri
    (fun id chain ->
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "chain %d" id);
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf " %d" f)) chain;
      line (Buffer.contents b))
    t.chains;
  Array.iteri (fun id name -> line (Printf.sprintf "tag %d %s" id name)) t.tags;
  line
    (Printf.sprintf "counters %d %d %d %d" t.instructions t.calls t.heap_refs
       t.total_refs);
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } ->
          line
            (Printf.sprintf "a %d %d %d %d %d %d" obj size chain key tag
               t.obj_refs.(obj))
      | Event.Free { obj } -> line (Printf.sprintf "f %d" obj)
      | Event.Touch { obj; count } -> line (Printf.sprintf "r %d %d" obj count))
    t.events;
  line "end"

let output oc t =
  write t ~line:(fun s ->
      output_string oc s;
      output_char oc '\n')

type parse_state = {
  mutable program : string;
  mutable input_name : string;
  funcs : Lp_callchain.Func.table;
  mutable func_names : (int * string) list;
  mutable chains : (int * int array) list;
  mutable tag_names : (int * string) list;
  mutable events : Event.t list;
  mutable n_objects : int;
  mutable obj_refs : (int * int) list;
  mutable instructions : int;
  mutable calls : int;
  mutable heap_refs : int;
  mutable total_refs : int;
  mutable finished : bool;
}

let fail lineno msg = failwith (Printf.sprintf "Textio.input: line %d: %s" lineno msg)

let parse_line st lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | "trace" :: program :: rest ->
      st.program <- program;
      st.input_name <- String.concat " " rest
  | [ "func"; id; name ] ->
      st.func_names <- (int_of_string id, name) :: st.func_names
  | "chain" :: id :: funcs ->
      let chain = Array.of_list (List.map int_of_string funcs) in
      st.chains <- (int_of_string id, chain) :: st.chains
  | [ "tag"; id; name ] -> st.tag_names <- (int_of_string id, name) :: st.tag_names
  | [ "counters"; i; c; h; t ] ->
      st.instructions <- int_of_string i;
      st.calls <- int_of_string c;
      st.heap_refs <- int_of_string h;
      st.total_refs <- int_of_string t
  | [ "a"; obj; size; chain; key; tag; refs ] ->
      let obj = int_of_string obj in
      st.events <-
        Event.Alloc
          { obj; size = int_of_string size; chain = int_of_string chain;
            key = int_of_string key; tag = int_of_string tag }
        :: st.events;
      st.obj_refs <- (obj, int_of_string refs) :: st.obj_refs;
      if obj >= st.n_objects then st.n_objects <- obj + 1
  | [ "f"; obj ] -> st.events <- Event.Free { obj = int_of_string obj } :: st.events
  | [ "r"; obj; count ] ->
      st.events <-
        Event.Touch { obj = int_of_string obj; count = int_of_string count }
        :: st.events
  | [ "end" ] -> st.finished <- true
  | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)

let finish st : Trace.t =
  if not st.finished then failwith "Textio.input: missing 'end' line";
  (* Re-intern functions in id order so interned ids match the file's. *)
  let func_names = List.sort compare (List.rev st.func_names) in
  List.iteri
    (fun expect (id, name) ->
      if id <> expect then failwith "Textio.input: non-dense function ids";
      let interned = Lp_callchain.Func.intern st.funcs name in
      if interned <> id then failwith "Textio.input: duplicate function name")
    func_names;
  let chains = List.sort compare (List.rev st.chains) in
  let chain_arr = Array.make (List.length chains) [||] in
  List.iteri
    (fun expect (id, chain) ->
      if id <> expect then failwith "Textio.input: non-dense chain ids";
      chain_arr.(expect) <- chain)
    chains;
  let obj_refs = Array.make st.n_objects 0 in
  List.iter (fun (obj, refs) -> obj_refs.(obj) <- refs) st.obj_refs;
  let tag_list = List.sort compare (List.rev st.tag_names) in
  let tags = Array.make (List.length tag_list) "" in
  List.iteri
    (fun expect (id, name) ->
      if id <> expect then failwith "Textio.input: non-dense tag ids";
      tags.(expect) <- name)
    tag_list;
  {
    program = st.program;
    input = st.input_name;
    events = Array.of_list (List.rev st.events);
    chains = chain_arr;
    funcs = st.funcs;
    n_objects = st.n_objects;
    instructions = st.instructions;
    calls = st.calls;
    heap_refs = st.heap_refs;
    total_refs = st.total_refs;
    obj_refs;
    tags;
  }

let fresh_state () =
  {
    program = "?";
    input_name = "?";
    funcs = Lp_callchain.Func.create_table ();
    func_names = [];
    chains = [];
    tag_names = [];
    events = [];
    n_objects = 0;
    obj_refs = [];
    instructions = 0;
    calls = 0;
    heap_refs = 0;
    total_refs = 0;
    finished = false;
  }

let input ic =
  let st = fresh_state () in
  let lineno = ref 0 in
  (try
     while not st.finished do
       incr lineno;
       parse_line st !lineno (input_line ic)
     done
   with End_of_file -> ());
  finish st

let to_string t =
  let buf = Buffer.create 65536 in
  write t ~line:(fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string s =
  let st = fresh_state () in
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> if not st.finished then parse_line st (i + 1) line) lines;
  finish st
