type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 16 0.; len = 0; sorted = true }

let observe t x =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let quantile t p =
  if t.len = 0 then invalid_arg "Exact.quantile: no observations";
  if not (p >= 0. && p <= 1.) then invalid_arg "Exact.quantile: p outside [0, 1]";
  ensure_sorted t;
  if t.len = 1 then t.data.(0)
  else begin
    let h = p *. float_of_int (t.len - 1) in
    let lo = int_of_float (floor h) in
    let hi = Stdlib.min (lo + 1) (t.len - 1) in
    let frac = h -. float_of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
  end

let min t =
  if t.len = 0 then invalid_arg "Exact.min: no observations";
  ensure_sorted t;
  t.data.(0)

let max t =
  if t.len = 0 then invalid_arg "Exact.max: no observations";
  ensure_sorted t;
  t.data.(t.len - 1)

let to_sorted_array t =
  ensure_sorted t;
  Array.sub t.data 0 t.len
