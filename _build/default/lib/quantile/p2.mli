(** The P² ("P-square") algorithm of Jain and Chlamtac (CACM 1985) for
    dynamic estimation of a single quantile without storing observations.

    The paper (Barrett & Zorn, §4.1) uses this algorithm to summarise the
    object-lifetime distribution of every allocation site with five markers,
    because a per-site list of lifetimes would be prohibitively large.

    The estimator maintains five markers whose heights approximate the
    minimum, the [p/2], [p], and [(1+p)/2] quantiles, and the maximum of the
    observations seen so far.  Marker heights are adjusted with a
    piecewise-parabolic (hence "P²") interpolation formula as observations
    arrive.  Storage is O(1) and each observation costs O(1). *)

type t
(** Mutable state of one P² estimator. *)

val create : float -> t
(** [create p] is an estimator for the [p]-quantile, [0 < p < 1].

    @raise Invalid_argument if [p] is outside (0, 1). *)

val observe : t -> float -> unit
(** [observe t x] folds the observation [x] into the estimate. *)

val count : t -> int
(** Number of observations seen so far. *)

val quantile : t -> float
(** Current estimate of the [p]-quantile.

    For fewer than five observations the estimate is the exact quantile of
    the observations seen (by linear interpolation on the sorted sample).

    @raise Invalid_argument if no observation has been made. *)

val min : t -> float
(** Exact minimum of the observations seen.
    @raise Invalid_argument if no observation has been made. *)

val max : t -> float
(** Exact maximum of the observations seen.
    @raise Invalid_argument if no observation has been made. *)

val p : t -> float
(** The target quantile this estimator was created with. *)
