lib/quantile/histogram.mli: Format
