lib/quantile/p2.ml: Array Stdlib
