lib/quantile/p2.mli:
