lib/quantile/exact.ml: Array Stdlib
