lib/quantile/histogram.ml: Format P2
