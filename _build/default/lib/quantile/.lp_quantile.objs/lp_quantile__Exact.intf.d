lib/quantile/exact.mli:
