(* Jain & Chlamtac's P-square algorithm (CACM 28(10), 1985).

   Five markers track (min, p/2, p, (1+p)/2, max).  Marker i has a height
   [q.(i)], an actual position [n.(i)] (how many observations lie at or below
   it), and a desired position [n'.(i)].  After each observation, interior
   markers whose actual position has drifted at least one slot away from the
   desired position are moved one slot and their height is re-estimated with
   the piecewise-parabolic formula, falling back to linear interpolation when
   the parabolic estimate would break monotonicity. *)

type t = {
  p : float;
  q : float array;         (* marker heights,   length 5 *)
  n : int array;           (* marker positions, length 5, 1-based *)
  np : float array;        (* desired positions *)
  dn : float array;        (* desired-position increments *)
  init : float array;      (* first five observations, collected unsorted *)
  mutable count : int;
}

let create p =
  if not (p > 0. && p < 1.) then
    invalid_arg "P2.create: quantile must lie strictly between 0 and 1";
  {
    p;
    q = Array.make 5 0.;
    n = [| 1; 2; 3; 4; 5 |];
    np = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
    dn = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
    init = Array.make 5 0.;
    count = 0;
  }

let count t = t.count
let p t = t.p

(* Parabolic prediction of the height of marker [i] moved by [d] (±1). *)
let parabolic t i d =
  let q = t.q and n = t.n in
  let fi = float_of_int in
  let d = fi d in
  q.(i)
  +. d
     /. fi (n.(i + 1) - n.(i - 1))
     *. ((fi (n.(i) - n.(i - 1)) +. d)
         *. (q.(i + 1) -. q.(i))
         /. fi (n.(i + 1) - n.(i))
        +. (fi (n.(i + 1) - n.(i)) -. d)
           *. (q.(i) -. q.(i - 1))
           /. fi (n.(i) - n.(i - 1)))

let linear t i d =
  let q = t.q and n = t.n in
  q.(i) +. float_of_int d *. (q.(i + d) -. q.(i)) /. float_of_int (n.(i + d) - n.(i))

let observe t x =
  if t.count < 5 then begin
    t.init.(t.count) <- x;
    t.count <- t.count + 1;
    if t.count = 5 then begin
      Array.blit t.init 0 t.q 0 5;
      Array.sort compare t.q
    end
  end
  else begin
    t.count <- t.count + 1;
    (* Locate the cell containing x and clamp the extreme markers. *)
    let k =
      if x < t.q.(0) then begin
        t.q.(0) <- x;
        0
      end
      else if x >= t.q.(4) then begin
        t.q.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < t.q.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      t.n.(i) <- t.n.(i) + 1
    done;
    for i = 0 to 4 do
      t.np.(i) <- t.np.(i) +. t.dn.(i)
    done;
    (* Adjust interior markers. *)
    for i = 1 to 3 do
      let d = t.np.(i) -. float_of_int t.n.(i) in
      if
        (d >= 1. && t.n.(i + 1) - t.n.(i) > 1)
        || (d <= -1. && t.n.(i - 1) - t.n.(i) < -1)
      then begin
        let d = if d >= 0. then 1 else -1 in
        let qp = parabolic t i d in
        let q' =
          if t.q.(i - 1) < qp && qp < t.q.(i + 1) then qp else linear t i d
        in
        t.q.(i) <- q';
        t.n.(i) <- t.n.(i) + d
      end
    done
  end

(* Exact quantile of a small sorted sample, by linear interpolation between
   order statistics (used until the estimator has its five markers). *)
let small_sample_quantile sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let quantile t =
  if t.count = 0 then invalid_arg "P2.quantile: no observations";
  if t.count < 5 then begin
    let sample = Array.sub t.init 0 t.count in
    Array.sort compare sample;
    small_sample_quantile sample t.p
  end
  else t.q.(2)

let min t =
  if t.count = 0 then invalid_arg "P2.min: no observations";
  if t.count < 5 then Array.fold_left Stdlib.min t.init.(0) (Array.sub t.init 0 t.count)
  else t.q.(0)

let max t =
  if t.count = 0 then invalid_arg "P2.max: no observations";
  if t.count < 5 then Array.fold_left Stdlib.max t.init.(0) (Array.sub t.init 0 t.count)
  else t.q.(4)
