(** Exact quantiles over stored observations.

    This is the ground truth the P² estimator ({!P2}) approximates.  It is
    used in the test suite to validate {!P2} and in the experiment pipelines
    where the paper itself reports exact figures (for example the footnote to
    Table 3 compares the P² approximation of GHOST's 75% quantile with the
    true value). *)

type t
(** A growable multiset of observations. *)

val create : unit -> t

val observe : t -> float -> unit

val count : t -> int

val quantile : t -> float -> float
(** [quantile t p] is the exact [p]-quantile by linear interpolation between
    order statistics, for [0 <= p <= 1].  Repeated calls share one sort.

    @raise Invalid_argument if [t] is empty or [p] is outside [0, 1]. *)

val min : t -> float
(** @raise Invalid_argument if [t] is empty. *)

val max : t -> float
(** @raise Invalid_argument if [t] is empty. *)

val to_sorted_array : t -> float array
(** A sorted copy of the observations. *)
