lib/ialloc/runtime.ml: Array Lp_callchain Lp_trace Option
