lib/ialloc/runtime.mli: Lp_callchain Lp_trace
