(** The values Barrett & Zorn report, transcribed from the paper's tables,
    so every regenerated table can print paper-vs-measured side by side.
    Program order everywhere: cfrac, espresso, gawk, ghost, perl. *)

let program_order = [ "cfrac"; "espresso"; "gawk"; "ghost"; "perl" ]

(* Table 2: source lines, instructions executed (x10^6), function calls
   (x10^6), total bytes (x10^6), total objects (x10^6), maximum bytes
   (x10^3), maximum objects, heap refs (%). *)
type table2_row = {
  t2_lines : int;
  t2_instr_m : float;
  t2_calls_m : float;
  t2_bytes_m : float;
  t2_objects_m : float;
  t2_max_bytes_k : float;
  t2_max_objects : int;
  t2_heap_refs_pct : float;
}

let table2 = function
  | "cfrac" ->
      { t2_lines = 6000; t2_instr_m = 1490.; t2_calls_m = 18.4; t2_bytes_m = 65.0;
        t2_objects_m = 3.8; t2_max_bytes_k = 83.; t2_max_objects = 5236;
        t2_heap_refs_pct = 79. }
  | "espresso" ->
      { t2_lines = 15500; t2_instr_m = 2419.; t2_calls_m = 9.55; t2_bytes_m = 105.;
        t2_objects_m = 1.7; t2_max_bytes_k = 254.; t2_max_objects = 4387;
        t2_heap_refs_pct = 80. }
  | "gawk" ->
      { t2_lines = 8500; t2_instr_m = 2072.; t2_calls_m = 28.7; t2_bytes_m = 167.;
        t2_objects_m = 4.3; t2_max_bytes_k = 35.; t2_max_objects = 1384;
        t2_heap_refs_pct = 47. }
  | "ghost" ->
      { t2_lines = 29500; t2_instr_m = 1035.; t2_calls_m = 1.21; t2_bytes_m = 89.7;
        t2_objects_m = 0.9; t2_max_bytes_k = 2113.; t2_max_objects = 26467;
        t2_heap_refs_pct = 69. }
  | "perl" ->
      { t2_lines = 34500; t2_instr_m = 894.; t2_calls_m = 23.4; t2_bytes_m = 33.5;
        t2_objects_m = 1.5; t2_max_bytes_k = 62.; t2_max_objects = 1826;
        t2_heap_refs_pct = 48. }
  | p -> invalid_arg ("Paper.table2: " ^ p)

(* Table 3: object-lifetime quartiles in bytes (byte-weighted). *)
let table3 = function
  | "cfrac" -> (10., 32., 48., 849., 64_994_593.)
  | "espresso" -> (4., 196., 2379., 25_530., 104_881_499.)
  | "gawk" -> (2., 29., 257., 1192., 167_322_377.)
  | "ghost" -> (16., 4330., 8052., 393_531., 89_669_104.)
  | "perl" -> (1., 64., 887., 1306., 33_528_692.)
  | p -> invalid_arg ("Paper.table3: " ^ p)

(* Table 4: total sites; actual short-lived bytes %; then for self and true
   prediction: sites used, predicted short-lived bytes %, error bytes %. *)
type table4_row = {
  t4_total_sites : int;
  t4_actual_pct : float;
  t4_self_sites : int;
  t4_self_pred_pct : float;
  t4_self_err_pct : float;
  t4_true_sites : int;
  t4_true_pred_pct : float;
  t4_true_err_pct : float;
}

let table4 = function
  | "cfrac" ->
      { t4_total_sites = 134; t4_actual_pct = 100.; t4_self_sites = 110;
        t4_self_pred_pct = 79.0; t4_self_err_pct = 0.; t4_true_sites = 77;
        t4_true_pred_pct = 47.3; t4_true_err_pct = 3.65 }
  | "espresso" ->
      { t4_total_sites = 2854; t4_actual_pct = 91.; t4_self_sites = 2291;
        t4_self_pred_pct = 41.8; t4_self_err_pct = 0.; t4_true_sites = 855;
        t4_true_pred_pct = 18.1; t4_true_err_pct = 0.06 }
  | "gawk" ->
      { t4_total_sites = 171; t4_actual_pct = 98.; t4_self_sites = 93;
        t4_self_pred_pct = 99.3; t4_self_err_pct = 0.; t4_true_sites = 91;
        t4_true_pred_pct = 99.3; t4_true_err_pct = 0. }
  | "ghost" ->
      { t4_total_sites = 634; t4_actual_pct = 97.; t4_self_sites = 256;
        t4_self_pred_pct = 80.9; t4_self_err_pct = 0.; t4_true_sites = 211;
        t4_true_pred_pct = 71.8; t4_true_err_pct = 0. }
  | "perl" ->
      { t4_total_sites = 305; t4_actual_pct = 99.; t4_self_sites = 74;
        t4_self_pred_pct = 91.4; t4_self_err_pct = 0.; t4_true_sites = 29;
        t4_true_pred_pct = 20.4; t4_true_err_pct = 1.11 }
  | p -> invalid_arg ("Paper.table4: " ^ p)

(* Table 5: size-only self prediction: actual short %, predicted %, sites. *)
let table5 = function
  | "cfrac" -> (100., 0., 5)
  | "espresso" -> (91., 19., 177)
  | "gawk" -> (98., 5., 64)
  | "ghost" -> (97., 36., 106)
  | "perl" -> (99., 29., 26)
  | p -> invalid_arg ("Paper.table5: " ^ p)

(* Table 6: per chain length 1..7 then infinity: (predicted %, new-ref %);
   plus the length at which the paper marks the abrupt improvement. *)
let table6 = function
  | "cfrac" ->
      ([ (48., 52.); (76., 66.); (82., 70.); (82., 70.); (82., 70.); (82., 70.);
         (82., 70.); (82., 70.) ], 2)
  | "espresso" ->
      ([ (41., 7.); (41., 7.); (41., 8.); (42., 8.); (42., 8.); (43., 9.);
         (44., 9.); (42., 8.) ], 1)
  | "gawk" ->
      ([ (72., 26.); (78., 29.); (99., 43.); (99., 43.); (99., 43.); (99., 43.);
         (99., 43.) ; (99., 43.) ], 3)
  | "ghost" ->
      ([ (40., 13.); (40., 13.); (47., 14.); (75., 31.); (80., 37.); (80., 37.);
         (81., 38.); (81., 38.) ], 4)
  | "perl" ->
      ([ (31., 23.); (63., 33.); (63., 33.); (91., 44.); (94., 45.); (94., 45.);
         (95., 45.); (92., 44.) ], 4)
  | p -> invalid_arg ("Paper.table6: " ^ p)

(* Table 7 (true prediction): total allocs (x1000), arena allocs %, total
   bytes (KB), arena bytes %. *)
let table7 = function
  | "cfrac" -> (3809.2, 2.6, 63472., 1.8)
  | "espresso" -> (1654.2, 19.1, 102423., 18.2)
  | "gawk" -> (4273.0, 98.2, 163401., 99.3)
  | "ghost" -> (924.1, 81.3, 87567., 37.7)
  | "perl" -> (1466.8, 18.0, 32743., 20.5)
  | p -> invalid_arg ("Paper.table7: " ^ p)

(* Table 8: first-fit heap KB, self arena heap KB, self/first-fit %, true
   arena heap KB, true/first-fit %. *)
let table8 = function
  | "cfrac" -> (144., 208., 144.4, 208., 144.4)
  | "espresso" -> (280., 344., 122.9, 344., 122.9)
  | "gawk" -> (56., 112., 200.0, 112., 200.0)
  | "ghost" -> (5584., 2896., 51.9, 4048., 72.5)
  | "perl" -> (80., 144., 180.0, 144., 180.0)
  | p -> invalid_arg ("Paper.table8: " ^ p)

(* Table 9: (alloc, free) instruction averages for BSD, first-fit,
   arena(len-4), arena(cce). *)
let table9 = function
  | "cfrac" -> ((52., 17.), (66., 64.), (134., 62.), (140., 62.))
  | "espresso" -> ((55., 17.), (65., 65.), (76., 55.), (84., 55.))
  | "gawk" -> ((54., 17.), (56., 64.), (29., 11.), (29., 11.))
  | "ghost" -> ((61., 17.), (165., 57.), (58., 18.), (142., 18.))
  | "perl" -> ((51., 17.), (70., 65.), (82., 55.), (120., 55.))
  | p -> invalid_arg ("Paper.table9: " ^ p)
