(** Training: fold a trace into a site table.

    For each allocation, derive the site key under the configured policy
    (complete cycle-eliminated chain + size, length-N sub-chain + size,
    size only, or encryption key + size) and fold the object's lifetime
    into that site's statistics. *)

module Site = Lp_callchain.Site

type site_table = Site_stats.t Site.Table.t

let site_of_alloc (trace : Lp_trace.Trace.t) ~policy ~chain ~key ~size =
  let raw_chain = Lp_trace.Trace.chain_of_alloc trace chain in
  Site.make policy ~raw_chain ~key ~size

let collect ?(config = Config.default) (trace : Lp_trace.Trace.t) : site_table =
  let lifetimes = Lp_trace.Lifetimes.compute trace in
  let table : site_table = Site.Table.create 256 in
  Lp_trace.Trace.iter_allocs trace (fun ~obj ~size ~chain ~key ~tag:_ ->
      let site = site_of_alloc trace ~policy:config.policy ~chain ~key ~size in
      let stats =
        match Site.Table.find_opt table site with
        | Some s -> s
        | None ->
            let s = Site_stats.create () in
            Site.Table.add table site s;
            s
      in
      let lifetime = lifetimes.lifetime.(obj) in
      let survived = lifetimes.survived.(obj) in
      let short =
        Lp_trace.Lifetimes.is_short_lived lifetimes
          ~threshold:config.short_lived_threshold obj
      in
      Site_stats.observe stats ~size ~lifetime ~survived ~short
        ~refs:trace.obj_refs.(obj));
  table

let total_sites (table : site_table) = Site.Table.length table

let fold table init f = Site.Table.fold f table init
