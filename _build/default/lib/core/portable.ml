(** Run-independent site keys.

    Function identifiers are dense per-run integers, so a site from the
    training run cannot be compared directly with one from the test run.
    A {e portable} key names the chain by function {e names} and rounds the
    size up to a multiple of the configured rounding (the paper rounds to
    4 bytes: exact sizes sometimes failed to map between runs, while
    coarser rounding "eliminated too much size information", §4.1). *)

type t = { chain : string list; size : int }

let of_site (funcs : Lp_callchain.Func.table) ~rounding (site : Lp_callchain.Site.t) =
  {
    chain = Lp_callchain.Chain.names funcs site.chain;
    size = Lp_callchain.Site.round_size ~multiple:rounding site.size;
  }

(* Under the Encrypted_key policy the chain is a single XOR key, already
   name-derived and hence stable across runs; [of_site] would misinterpret
   it as a function id.  Use this instead. *)
let of_key_site (site : Lp_callchain.Site.t) ~rounding =
  {
    chain = [ string_of_int site.chain.(0) ];
    size = Lp_callchain.Site.round_size ~multiple:rounding site.size;
  }

let equal a b = a.size = b.size && List.equal String.equal a.chain b.chain

let hash t =
  let h = ref (t.size * 31) in
  List.iter (fun name -> h := ((!h * 33) + Hashtbl.hash name) land max_int) t.chain;
  !h

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let to_string t = Printf.sprintf "[%s; ~size=%d]" (String.concat "<-" t.chain) t.size
