(** Predictor evaluation against a test trace — the quantities of
    Tables 4, 5 and 6.

    All percentages are of total bytes allocated in the test trace:
    - {e actual} short-lived bytes: what a perfect oracle would mark;
    - {e predicted} bytes: bytes whose site the predictor marks;
    - {e correct} bytes: predicted and actually short-lived (the paper's
      "Predicted Short-lived Bytes");
    - {e error} bytes: predicted but actually long-lived (the paper's
      "Error Bytes");
    - {e new-ref} percentage: heap references to predicted objects over
      all heap references (Table 6's "New Ref"). *)

type t = {
  total_sites : int;  (** distinct sites in the test trace (under the policy) *)
  sites_used : int;  (** predictor sites that matched >= 1 test allocation *)
  predictor_sites : int;  (** total sites in the predictor database *)
  total_bytes : int;
  actual_short_bytes : int;
  correct_bytes : int;
  error_bytes : int;
  new_refs : int;
  total_heap_refs : int;
}

let actual_short_pct t = 100. *. float_of_int t.actual_short_bytes /. float_of_int (max 1 t.total_bytes)
let predicted_pct t = 100. *. float_of_int t.correct_bytes /. float_of_int (max 1 t.total_bytes)
let error_pct t = 100. *. float_of_int t.error_bytes /. float_of_int (max 1 t.total_bytes)
let new_ref_pct t = 100. *. float_of_int t.new_refs /. float_of_int (max 1 t.total_heap_refs)

let run ~(config : Config.t) (predictor : Predictor.t) (test : Lp_trace.Trace.t) : t =
  let lifetimes = Lp_trace.Lifetimes.compute test in
  let seen_sites = Lp_callchain.Site.Table.create 256 in
  let used_keys = Portable.Table.create 256 in
  let total_bytes = ref 0 in
  let actual_short = ref 0 in
  let correct = ref 0 in
  let error = ref 0 in
  let new_refs = ref 0 in
  Lp_trace.Trace.iter_allocs test (fun ~obj ~size ~chain ~key ~tag:_ ->
      let site =
        Lp_callchain.Site.make config.policy
          ~raw_chain:(Lp_trace.Trace.chain_of_alloc test chain)
          ~key ~size
      in
      if not (Lp_callchain.Site.Table.mem seen_sites site) then
        Lp_callchain.Site.Table.add seen_sites site ();
      total_bytes := !total_bytes + size;
      let short =
        Lp_trace.Lifetimes.is_short_lived lifetimes
          ~threshold:config.short_lived_threshold obj
      in
      if short then actual_short := !actual_short + size;
      let predicted = Predictor.predicts_site predictor test.funcs site in
      if predicted then begin
        let pkey = Predictor.portable_of_site predictor test.funcs site in
        if not (Portable.Table.mem used_keys pkey) then
          Portable.Table.add used_keys pkey ();
        new_refs := !new_refs + test.obj_refs.(obj);
        if short then correct := !correct + size else error := !error + size
      end);
  {
    total_sites = Lp_callchain.Site.Table.length seen_sites;
    sites_used = Portable.Table.length used_keys;
    predictor_sites = Predictor.size predictor;
    total_bytes = !total_bytes;
    actual_short_bytes = !actual_short;
    correct_bytes = !correct;
    error_bytes = !error;
    new_refs = !new_refs;
    total_heap_refs = test.heap_refs;
  }

(** Train on [train] and evaluate on [test] in one call.  Self prediction
    passes the same trace twice. *)
let train_and_evaluate ~config ~train ~test =
  let table = Train.collect ~config train in
  let predictor = Predictor.build ~config ~funcs:train.Lp_trace.Trace.funcs table in
  (predictor, run ~config predictor test)
