(** Simulation glue: run a test trace through the allocators with a trained
    predictor, producing the measurements behind Tables 7, 8 and 9. *)

type arena_results = {
  len4 : Lp_allocsim.Metrics.t;  (** prediction priced at 18 instr/alloc *)
  cce : Lp_allocsim.Metrics.t;  (** prediction priced by call-chain encryption *)
}

type t = {
  first_fit : Lp_allocsim.Metrics.t;
  bsd : Lp_allocsim.Metrics.t;
  arena : arena_results;
}

let arena_with_cost ~config ~predictor ~(test : Lp_trace.Trace.t) ~predict_cost =
  let predicted = Predictor.for_trace predictor test in
  Lp_allocsim.Driver.run test
    (Lp_allocsim.Driver.Arena
       { config = Config.arena_config config; predicted; predict_cost })

let run ~(config : Config.t) ~(predictor : Predictor.t) ~(test : Lp_trace.Trace.t) : t =
  let cce_cost =
    Lp_allocsim.Cost_model.site_lookup
    + Lp_allocsim.Cost_model.cce_per_alloc ~calls:test.calls
        ~allocs:(Lp_trace.Trace.total_objects test)
  in
  {
    first_fit = Lp_allocsim.Driver.run test Lp_allocsim.Driver.First_fit;
    bsd = Lp_allocsim.Driver.run test Lp_allocsim.Driver.Bsd;
    arena =
      {
        len4 =
          arena_with_cost ~config ~predictor ~test
            ~predict_cost:Lp_allocsim.Cost_model.predict_len4;
        cce = arena_with_cost ~config ~predictor ~test ~predict_cost:cce_cost;
      };
  }
