(** Per-allocation-site lifetime statistics.

    One of these accumulates for every distinct allocation site during
    training: object and byte counts, how many were short-lived, the
    heap-reference total (for "New Ref" predictions), and a P² quantile
    histogram of the site's lifetime distribution — the per-site data
    structure of §4.1. *)

type t = {
  mutable count : int;
  mutable bytes : int;
  mutable short_count : int;
  mutable short_bytes : int;
  mutable survivors : int;  (** objects never freed *)
  mutable max_lifetime : int;
  mutable refs : int;
  histogram : Lp_quantile.Histogram.t;
}

let create () =
  {
    count = 0;
    bytes = 0;
    short_count = 0;
    short_bytes = 0;
    survivors = 0;
    max_lifetime = 0;
    refs = 0;
    histogram = Lp_quantile.Histogram.create ();
  }

let observe t ~size ~lifetime ~survived ~short ~refs =
  t.count <- t.count + 1;
  t.bytes <- t.bytes + size;
  if short then begin
    t.short_count <- t.short_count + 1;
    t.short_bytes <- t.short_bytes + size
  end;
  if survived then t.survivors <- t.survivors + 1;
  if lifetime > t.max_lifetime then t.max_lifetime <- lifetime;
  t.refs <- t.refs + refs;
  Lp_quantile.Histogram.observe t.histogram (float_of_int lifetime)

let all_short t = t.count > 0 && t.short_count = t.count
(** The paper's predictor criterion: {e all} of the site's training
    objects were short-lived (§4.1: "we only consider allocation sites in
    which all of the objects allocated lived less than 32 kilobytes"). *)

let short_fraction t =
  if t.count = 0 then 0. else float_of_int t.short_count /. float_of_int t.count
