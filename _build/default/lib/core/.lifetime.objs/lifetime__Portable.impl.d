lib/core/portable.ml: Array Hashtbl List Lp_callchain Printf String
