lib/core/paper.ml:
