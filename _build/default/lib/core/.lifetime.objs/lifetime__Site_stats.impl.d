lib/core/site_stats.ml: Lp_quantile
