lib/core/predictor.ml: Config Hashtbl Lp_callchain Lp_trace Portable Site_stats Train
