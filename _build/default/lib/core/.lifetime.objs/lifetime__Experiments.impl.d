lib/core/experiments.ml: Array Config Evaluate Float Hashtbl List Lp_allocsim Lp_callchain Lp_quantile Lp_trace Lp_workloads Paper Portable Predictor Printf Simulate Train
