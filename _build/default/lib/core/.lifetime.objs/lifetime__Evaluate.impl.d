lib/core/evaluate.ml: Array Config Lp_callchain Lp_trace Portable Predictor Train
