lib/core/config.ml: Lp_allocsim Lp_callchain
