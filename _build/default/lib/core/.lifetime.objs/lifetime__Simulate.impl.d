lib/core/simulate.ml: Config Lp_allocsim Lp_trace Predictor
