lib/core/train.ml: Array Config Lp_callchain Lp_trace Site_stats
