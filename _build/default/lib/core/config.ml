(** Tunable parameters of lifetime prediction, with the paper's choices as
    defaults (§4.1 and §5.2). *)

type t = {
  short_lived_threshold : int;
      (** an object is short-lived if it dies before this many bytes are
          allocated; the paper uses 32 KB *)
  n_arenas : int;  (** arena blocking; the paper uses 16 *)
  arena_size : int;  (** bytes per arena; the paper uses 4 KB *)
  size_rounding : int;
      (** object sizes are rounded up to this multiple when mapping sites
          across runs; the paper found 4 best *)
  policy : Lp_callchain.Site.policy;
      (** which abstraction of the birth context keys a site *)
}

let default =
  {
    short_lived_threshold = 32768;
    n_arenas = 16;
    arena_size = 4096;
    size_rounding = 4;
    policy = Lp_callchain.Site.Complete_chain;
  }

let arena_config t : Lp_allocsim.Arena.config =
  { n_arenas = t.n_arenas; arena_size = t.arena_size }
