type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?title ?(notes = []) ~columns ~rows () =
  let n_cols = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> n_cols then
        invalid_arg
          (Printf.sprintf "Table.render: row has %d cells, expected %d"
             (List.length row) n_cols))
    rows;
  let widths =
    List.mapi
      (fun i (header, _) ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length header) rows)
      columns
  in
  let buf = Buffer.create 1024 in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  let emit_row cells aligns =
    Buffer.add_string buf "|";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_string buf (" " ^ pad a w cell ^ " |"))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map fst columns) (List.map (fun _ -> Left) columns);
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter (fun row -> emit_row row (List.map snd columns)) rows;
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun note ->
      Buffer.add_string buf note;
      Buffer.add_char buf '\n')
    notes;
  Buffer.contents buf

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.abs f >= 100. then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.1f" f

let pct f = Printf.sprintf "%.1f" f

let kbytes b = Printf.sprintf "%d" (b / 1024)
