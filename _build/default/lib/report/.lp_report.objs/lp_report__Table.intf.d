lib/report/table.mli:
