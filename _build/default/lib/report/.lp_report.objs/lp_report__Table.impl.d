lib/report/table.ml: Buffer Float List Printf String
