(** Plain-text table rendering for the benchmark harness and CLI. *)

type align = Left | Right

val render :
  ?title:string ->
  ?notes:string list ->
  columns:(string * align) list ->
  rows:string list list ->
  unit ->
  string
(** Render a boxed ASCII table.  Every row must have as many cells as
    there are columns.
    @raise Invalid_argument on a ragged row. *)

val fnum : float -> string
(** Compact numeric formatting: integers without decimals, small values
    with one decimal. *)

val pct : float -> string
(** A percentage with one decimal, e.g. ["79.0"]. *)

val kbytes : int -> string
(** Bytes rendered as kilobytes, e.g. ["144"] for 147456. *)
