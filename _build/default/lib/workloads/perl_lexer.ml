type token =
  | NUMBER of float
  | STRING of string
  | SCALAR of string
  | ARRAY of string
  | HASH of string
  | IDENT of string
  | REGEX of string
  | SUBST of string * string
  | READLINE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | FATCOMMA
  | ASSIGN
  | ADD_ASSIGN
  | SUB_ASSIGN
  | MUL_ASSIGN
  | DIV_ASSIGN
  | CAT_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | DOT
  | XOP
  | NUMEQ
  | NUMNE
  | NUMLT
  | NUMGT
  | NUMLE
  | NUMGE
  | ANDAND
  | OROR
  | NOT
  | INCR
  | DECR
  | BIND
  | NBIND
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* After these tokens a '/' must start a regex (an operand position). *)
let operand_expected = function
  | None -> true
  | Some
      ( LPAREN | LBRACE | LBRACKET | SEMI | COMMA | FATCOMMA | ASSIGN | ADD_ASSIGN
      | SUB_ASSIGN | MUL_ASSIGN | DIV_ASSIGN | CAT_ASSIGN | PLUS | MINUS | STAR
      | SLASH | PERCENT | DOT | NUMEQ | NUMNE | NUMLT | NUMGT | NUMLE | NUMGE
      | ANDAND | OROR | NOT | BIND | NBIND ) ->
      true
  | Some _ -> false

let read_delimited src pos delim =
  (* reads to the next unescaped [delim]; returns (content, next_pos) *)
  let n = String.length src in
  let buf = Buffer.create 16 in
  let i = ref pos in
  let closed = ref false in
  while (not !closed) && !i < n do
    let c = src.[!i] in
    if c = '\\' && !i + 1 < n && src.[!i + 1] = delim then begin
      Buffer.add_char buf delim;
      i := !i + 2
    end
    else if c = '\\' && !i + 1 < n then begin
      Buffer.add_char buf '\\';
      Buffer.add_char buf src.[!i + 1];
      i := !i + 2
    end
    else if c = delim then begin
      closed := true;
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  if not !closed then raise (Lex_error (Printf.sprintf "unterminated %c...%c" delim delim, pos));
  (Buffer.contents buf, !i)

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let last = ref None in
  let emit t =
    toks := t :: !toks;
    last := Some t
  in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '$' && is_ident_start (peek 1) then begin
      incr i;
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (SCALAR (String.sub src start (!i - start)))
    end
    else if c = '$' && peek 1 >= '1' && peek 1 <= '9' then begin
      emit (SCALAR (String.make 1 (peek 1)));
      i := !i + 2
    end
    else if c = '$' && peek 1 = '_' then begin
      emit (SCALAR "_");
      i := !i + 2
    end
    else if c = '@' && (is_ident_start (peek 1) || peek 1 = '_') then begin
      incr i;
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (ARRAY (String.sub src start (!i - start)))
    end
    else if c = '%' && is_ident_start (peek 1) then begin
      incr i;
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (HASH (String.sub src start (!i - start)))
    end
    else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
        incr i
      done;
      match float_of_string_opt (String.sub src start (!i - start)) with
      | Some f -> emit (NUMBER f)
      | None -> raise (Lex_error ("bad number", start))
    end
    else if c = 'm' && peek 1 = '/' then begin
      let pat, next = read_delimited src (!i + 2) '/' in
      emit (REGEX pat);
      i := next
    end
    else if c = 's' && peek 1 = '/' then begin
      let pat, next = read_delimited src (!i + 2) '/' in
      let repl, next = read_delimited src next '/' in
      emit (SUBST (pat, repl));
      i := next
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      (match text with
      | "eq" | "ne" | "lt" | "gt" | "le" | "ge" | "x" | "and" | "or" | "not" ->
          emit (IDENT text)
      | _ -> emit (IDENT text))
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = quote then begin
          closed := true;
          incr i
        end
        else if c = '\\' && quote = '"' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | other -> Buffer.add_char buf other);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", !i));
      emit (STRING (Buffer.contents buf))
    end
    else if c = '<' && (peek 1 = '>' || (peek 1 = 'S' && !i + 6 < n && String.sub src !i 7 = "<STDIN>"))
    then begin
      if peek 1 = '>' then i := !i + 2 else i := !i + 7;
      emit READLINE
    end
    else if c = '/' && operand_expected !last then begin
      let pat, next = read_delimited src (!i + 1) '/' in
      emit (REGEX pat);
      i := next
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let adv t k =
        emit t;
        i := !i + k
      in
      match two with
      | "=~" -> adv BIND 2
      | "!~" -> adv NBIND 2
      | "==" -> adv NUMEQ 2
      | "!=" -> adv NUMNE 2
      | "<=" -> adv NUMLE 2
      | ">=" -> adv NUMGE 2
      | "&&" -> adv ANDAND 2
      | "||" -> adv OROR 2
      | "++" -> adv INCR 2
      | "--" -> adv DECR 2
      | "+=" -> adv ADD_ASSIGN 2
      | "-=" -> adv SUB_ASSIGN 2
      | "*=" -> adv MUL_ASSIGN 2
      | "/=" -> adv DIV_ASSIGN 2
      | ".=" -> adv CAT_ASSIGN 2
      | "=>" -> adv FATCOMMA 2
      | _ -> (
          match c with
          | '{' -> adv LBRACE 1
          | '}' -> adv RBRACE 1
          | '(' -> adv LPAREN 1
          | ')' -> adv RPAREN 1
          | '[' -> adv LBRACKET 1
          | ']' -> adv RBRACKET 1
          | ';' -> adv SEMI 1
          | ',' -> adv COMMA 1
          | '=' -> adv ASSIGN 1
          | '+' -> adv PLUS 1
          | '-' -> adv MINUS 1
          | '*' -> adv STAR 1
          | '/' -> adv SLASH 1
          | '%' -> adv PERCENT 1
          | '.' -> adv DOT 1
          | '<' -> adv NUMLT 1
          | '>' -> adv NUMGT 1
          | '!' -> adv NOT 1
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)))
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | NUMBER f -> Printf.sprintf "NUMBER(%g)" f
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | SCALAR s -> "$" ^ s
  | ARRAY s -> "@" ^ s
  | HASH s -> "%" ^ s
  | IDENT s -> s
  | REGEX r -> Printf.sprintf "/%s/" r
  | SUBST (p, r) -> Printf.sprintf "s/%s/%s/" p r
  | READLINE -> "<>"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | FATCOMMA -> "=>"
  | ASSIGN -> "="
  | ADD_ASSIGN -> "+="
  | SUB_ASSIGN -> "-="
  | MUL_ASSIGN -> "*="
  | DIV_ASSIGN -> "/="
  | CAT_ASSIGN -> ".="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | DOT -> "."
  | XOP -> "x"
  | NUMEQ -> "=="
  | NUMNE -> "!="
  | NUMLT -> "<"
  | NUMGT -> ">"
  | NUMLE -> "<="
  | NUMGE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | NOT -> "!"
  | INCR -> "++"
  | DECR -> "--"
  | BIND -> "=~"
  | NBIND -> "!~"
  | EOF -> "EOF"
