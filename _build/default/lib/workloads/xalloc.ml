module Rt = Lp_ialloc.Runtime

type t = { rt : Rt.t; layers : Lp_callchain.Func.id array; tag : string option }

let create rt ~layers =
  {
    rt;
    layers = Array.of_list (List.map (Rt.func rt) layers);
    (* the outermost wrapper names the kind of object being built
       (make_cell, new_cube, band_buffer, ...) — a natural type tag for the
       type-based prediction experiment *)
    tag = (match layers with [] -> None | outer :: _ -> Some outer);
  }

let alloc t ~size =
  let n = Array.length t.layers in
  for i = 0 to n - 1 do
    Rt.enter t.rt t.layers.(i)
  done;
  Rt.instructions t.rt (2 * n);
  let h = Rt.alloc ?tag:t.tag t.rt ~size in
  for _ = 1 to n do
    Rt.leave t.rt
  done;
  h

let calloc t ~size =
  let h = alloc t ~size in
  Rt.instructions t.rt (size / 4);
  Rt.touch t.rt h (1 + (size / 16));
  h
