open Perl_ast
module L = Perl_lexer

exception Parse_error of string

type st = { toks : L.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else L.EOF
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg (L.token_to_string (peek st))))

let expect st tok what = if peek st = tok then advance st else fail st ("expected " ^ what)

(* -- expressions --------------------------------------------------------------- *)

(* A bareword immediately closed by '}' inside a hash subscript is a string
   key, as in Perl: [$h{word}] means [$h{"word"}]. *)
let rec parse_hash_key st =
  match (peek st, peek2 st) with
  | L.IDENT word, L.RBRACE ->
      advance st;
      Str word
  | _ -> parse_expr st

and parse_primary st =
  match peek st with
  | L.NUMBER f ->
      advance st;
      Num f
  | L.STRING s ->
      advance st;
      Str s
  | L.READLINE ->
      advance st;
      ReadLine
  | L.SCALAR name -> (
      advance st;
      match peek st with
      | L.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st L.RBRACKET "]";
          Elem (name, idx)
      | L.LBRACE ->
          advance st;
          let key = parse_hash_key st in
          expect st L.RBRACE "}";
          HElem (name, key)
      | L.INCR ->
          advance st;
          Incr (false, LScalar name)
      | L.DECR ->
          advance st;
          Decr (false, LScalar name)
      | _ -> Scalar name)
  | L.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st L.RPAREN ")";
      e
  | L.NOT ->
      advance st;
      Not (parse_primary st)
  | L.MINUS ->
      advance st;
      Neg (parse_primary st)
  | L.INCR ->
      advance st;
      Incr (true, parse_lvalue st)
  | L.DECR ->
      advance st;
      Decr (true, parse_lvalue st)
  | L.IDENT "scalar" ->
      advance st;
      expect st L.LPAREN "(";
      let l = parse_lexpr st in
      expect st L.RPAREN ")";
      ScalarOf l
  | L.IDENT "defined" ->
      advance st;
      expect st L.LPAREN "(";
      let e = parse_expr st in
      expect st L.RPAREN ")";
      Call ("defined", [ AExpr e ])
  | L.IDENT name ->
      advance st;
      if peek st = L.LPAREN then begin
        advance st;
        let args =
          if peek st = L.RPAREN then []
          else begin
            let rec loop acc =
              let a = parse_arg st in
              if peek st = L.COMMA then begin
                advance st;
                loop (a :: acc)
              end
              else List.rev (a :: acc)
            in
            loop []
          end
        in
        expect st L.RPAREN ")";
        Call (name, args)
      end
      else Call (name, []) (* bare call, e.g. `shift` *)
  | _ -> fail st "expected expression"

and parse_arg st =
  match peek st with
  | L.ARRAY name ->
      advance st;
      AList (LArr name)
  | L.HASH name ->
      advance st;
      AList (LValuesOf name)
  | L.REGEX pat ->
      advance st;
      ARegex pat
  | L.IDENT ("keys" | "values" | "sort" | "split") -> AList (parse_lexpr st)
  | _ -> AExpr (parse_expr st)

and parse_lvalue st =
  match peek st with
  | L.SCALAR name -> (
      advance st;
      match peek st with
      | L.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st L.RBRACKET "]";
          LElem (name, idx)
      | L.LBRACE ->
          advance st;
          let key = parse_hash_key st in
          expect st L.RBRACE "}";
          LHElem (name, key)
      | _ -> LScalar name)
  | _ -> fail st "expected lvalue"

and parse_term st =
  let rec loop lhs =
    match peek st with
    | L.STAR ->
        advance st;
        loop (Binop (Mul, lhs, parse_primary st))
    | L.SLASH ->
        advance st;
        loop (Binop (Div, lhs, parse_primary st))
    | L.PERCENT ->
        advance st;
        loop (Binop (Mod, lhs, parse_primary st))
    | L.IDENT "x" ->
        advance st;
        loop (Binop (Repeat, lhs, parse_primary st))
    | _ -> lhs
  in
  loop (parse_primary st)

and parse_addcat st =
  let rec loop lhs =
    match peek st with
    | L.PLUS ->
        advance st;
        loop (Binop (Add, lhs, parse_term st))
    | L.MINUS ->
        advance st;
        loop (Binop (Sub, lhs, parse_term st))
    | L.DOT ->
        advance st;
        loop (Binop (Concat, lhs, parse_term st))
    | _ -> lhs
  in
  loop (parse_term st)

and parse_bind st =
  let lhs = parse_addcat st in
  match peek st with
  | L.BIND -> (
      advance st;
      match peek st with
      | L.REGEX pat ->
          advance st;
          Match (lhs, pat)
      | L.SUBST (pat, repl) -> (
          advance st;
          match lhs with
          | Scalar s -> Subst (LScalar s, pat, repl)
          | Elem (a, i) -> Subst (LElem (a, i), pat, repl)
          | HElem (h, k) -> Subst (LHElem (h, k), pat, repl)
          | _ -> fail st "substitution target must be an lvalue")
      | _ -> fail st "expected regex after =~")
  | L.NBIND -> (
      advance st;
      match peek st with
      | L.REGEX pat ->
          advance st;
          NoMatch (lhs, pat)
      | _ -> fail st "expected regex after !~")
  | _ -> lhs

and parse_comparison st =
  let lhs = parse_bind st in
  let bin op =
    advance st;
    Binop (op, lhs, parse_bind st)
  in
  match peek st with
  | L.NUMEQ -> bin NumEq
  | L.NUMNE -> bin NumNe
  | L.NUMLT -> bin NumLt
  | L.NUMGT -> bin NumGt
  | L.NUMLE -> bin NumLe
  | L.NUMGE -> bin NumGe
  | L.IDENT "eq" -> bin StrEq
  | L.IDENT "ne" -> bin StrNe
  | L.IDENT "lt" -> bin StrLt
  | L.IDENT "gt" -> bin StrGt
  | _ -> lhs

and parse_and st =
  let rec loop lhs =
    if peek st = L.ANDAND then begin
      advance st;
      loop (And (lhs, parse_comparison st))
    end
    else lhs
  in
  loop (parse_comparison st)

and parse_or st =
  let rec loop lhs =
    if peek st = L.OROR then begin
      advance st;
      loop (Or (lhs, parse_and st))
    end
    else lhs
  in
  loop (parse_and st)

and parse_expr st =
  (* assignment, right-associative *)
  let lhs = parse_or st in
  let to_lvalue = function
    | Scalar s -> LScalar s
    | Elem (a, i) -> LElem (a, i)
    | HElem (h, k) -> LHElem (h, k)
    | _ -> fail st "not assignable"
  in
  match peek st with
  | L.ASSIGN ->
      advance st;
      Assign (to_lvalue lhs, parse_expr st)
  | L.ADD_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Add, parse_expr st)
  | L.SUB_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Sub, parse_expr st)
  | L.MUL_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Mul, parse_expr st)
  | L.DIV_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Div, parse_expr st)
  | L.CAT_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Concat, parse_expr st)
  | _ -> lhs

(* list expressions *)
and parse_lexpr st =
  match peek st with
  | L.ARRAY name ->
      advance st;
      LArr name
  | L.IDENT "split" ->
      advance st;
      let parenthesised = peek st = L.LPAREN in
      if parenthesised then advance st;
      let pat =
        match peek st with
        | L.REGEX pat ->
            advance st;
            pat
        | L.STRING s ->
            advance st;
            (* a string separator is a literal: escape regex metacharacters *)
            String.concat ""
              (List.map
                 (fun c ->
                   match c with
                   | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '^' | '$'
                   | '\\' | '|' ->
                       Printf.sprintf "\\%c" c
                   | c -> String.make 1 c)
                 (List.init (String.length s) (String.get s)))
        | _ -> fail st "split needs a pattern"
      in
      expect st L.COMMA ",";
      let target = parse_expr st in
      if parenthesised then expect st L.RPAREN ")";
      LSplit (pat, target)
  | L.IDENT "sort" ->
      advance st;
      let parenthesised = peek st = L.LPAREN in
      if parenthesised then advance st;
      let inner = parse_lexpr st in
      if parenthesised then expect st L.RPAREN ")";
      LSortL inner
  | L.IDENT "keys" ->
      advance st;
      let parenthesised = peek st = L.LPAREN in
      if parenthesised then advance st;
      let name =
        match peek st with
        | L.HASH h ->
            advance st;
            h
        | _ -> fail st "keys needs a hash"
      in
      if parenthesised then expect st L.RPAREN ")";
      LKeys name
  | L.IDENT "values" ->
      advance st;
      let parenthesised = peek st = L.LPAREN in
      if parenthesised then advance st;
      let name =
        match peek st with
        | L.HASH h ->
            advance st;
            h
        | _ -> fail st "values needs a hash"
      in
      if parenthesised then expect st L.RPAREN ")";
      LValuesOf name
  | L.LPAREN ->
      advance st;
      let rec loop acc =
        let e = parse_expr st in
        if peek st = L.COMMA then begin
          advance st;
          loop (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let items = if peek st = L.RPAREN then [] else loop [] in
      expect st L.RPAREN ")";
      LWords items
  | _ -> fail st "expected list expression"

(* -- statements ----------------------------------------------------------------- *)

let rec parse_block st =
  expect st L.LBRACE "{";
  let rec loop acc =
    if peek st = L.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  match peek st with
  | L.IDENT "if" ->
      advance st;
      expect st L.LPAREN "(";
      let cond = parse_expr st in
      expect st L.RPAREN ")";
      let body = parse_block st in
      let rec elifs acc =
        match peek st with
        | L.IDENT "elsif" ->
            advance st;
            expect st L.LPAREN "(";
            let c = parse_expr st in
            expect st L.RPAREN ")";
            let b = parse_block st in
            elifs ((c, b) :: acc)
        | L.IDENT "else" ->
            advance st;
            let b = parse_block st in
            (List.rev acc, Some b)
        | _ -> (List.rev acc, None)
      in
      let elifs_list, else_ = elifs [] in
      SIf ((cond, body) :: elifs_list, else_)
  | L.IDENT "while" ->
      advance st;
      expect st L.LPAREN "(";
      if peek st = L.READLINE then begin
        advance st;
        expect st L.RPAREN ")";
        SWhileRead (parse_block st)
      end
      else begin
        let cond = parse_expr st in
        expect st L.RPAREN ")";
        SWhile (cond, parse_block st)
      end
  | L.IDENT "foreach" | L.IDENT "for" ->
      advance st;
      let var =
        match peek st with
        | L.IDENT "my" -> (
            advance st;
            match peek st with
            | L.SCALAR v ->
                advance st;
                v
            | _ -> fail st "expected loop variable")
        | L.SCALAR v ->
            advance st;
            v
        | _ -> fail st "expected loop variable"
      in
      expect st L.LPAREN "(";
      let l = parse_lexpr st in
      expect st L.RPAREN ")";
      SForeach (var, l, parse_block st)
  | L.IDENT "sub" -> (
      advance st;
      match peek st with
      | L.IDENT name ->
          advance st;
          SSub (name, parse_block st)
      | _ -> fail st "expected sub name")
  | L.IDENT "my" -> (
      advance st;
      match peek st with
      | L.SCALAR v ->
          advance st;
          if peek st = L.ASSIGN then begin
            advance st;
            let e = parse_expr st in
            expect st L.SEMI ";";
            SMy ([ v ], Some e)
          end
          else begin
            expect st L.SEMI ";";
            SMy ([ v ], None)
          end
      | L.LPAREN ->
          advance st;
          let rec vars acc =
            match peek st with
            | L.SCALAR v ->
                advance st;
                if peek st = L.COMMA then begin
                  advance st;
                  vars (v :: acc)
                end
                else List.rev (v :: acc)
            | _ -> fail st "expected scalar in my()"
          in
          let vs = vars [] in
          expect st L.RPAREN ")";
          expect st L.SEMI ";";
          SMy (vs, None)
      | _ -> fail st "expected variable after my")
  | L.IDENT "return" ->
      advance st;
      if peek st = L.SEMI then begin
        advance st;
        SReturn None
      end
      else begin
        let e = parse_expr st in
        expect st L.SEMI ";";
        SReturn (Some e)
      end
  | L.IDENT "last" ->
      advance st;
      expect st L.SEMI ";";
      SLast
  | L.IDENT "next" ->
      advance st;
      expect st L.SEMI ";";
      SNext
  | L.IDENT "print" ->
      advance st;
      let args = parse_call_args st in
      expect st L.SEMI ";";
      SPrint args
  | L.IDENT "printf" ->
      advance st;
      let args = parse_call_args st in
      expect st L.SEMI ";";
      SPrintf args
  | L.ARRAY name ->
      advance st;
      expect st L.ASSIGN "=";
      let l = parse_lexpr st in
      expect st L.SEMI ";";
      SAssignList (name, l)
  | _ ->
      let e = parse_expr st in
      expect st L.SEMI ";";
      SExpr e

and parse_call_args st =
  let parenthesised = peek st = L.LPAREN in
  if parenthesised then advance st;
  let args =
    if (parenthesised && peek st = L.RPAREN) || peek st = L.SEMI then []
    else begin
      let rec loop acc =
        let e = parse_expr st in
        if peek st = L.COMMA then begin
          advance st;
          loop (e :: acc)
        end
        else List.rev (e :: acc)
      in
      loop []
    end
  in
  if parenthesised then expect st L.RPAREN ")";
  args

let parse src =
  let st = { toks = L.tokenize src; pos = 0 } in
  let rec loop acc =
    if peek st = L.EOF then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []
