(** Deterministic text corpora for the interpreter workloads.

    The paper drove GAWK and PERL with dictionaries formatted into filled
    paragraphs and GhostScript with large documents.  We generate synthetic
    equivalents: pronounceable pseudo-words with a Zipf-ish length
    distribution, dictionaries (sorted unique words), and line-oriented
    documents.  Everything derives from a {!Prng.t}, so a named corpus is
    reproducible. *)

val word : Prng.t -> string
(** A pronounceable pseudo-word of 2–14 letters (alternating consonant and
    vowel clusters), lowercase. *)

val dictionary : Prng.t -> int -> string array
(** [dictionary rng n] is [n] distinct words, sorted. *)

val lines : Prng.t -> words:string array -> n:int -> string array
(** [lines rng ~words ~n] is [n] text lines of 1–12 words drawn from
    [words], space-separated. *)

val paragraph_text : Prng.t -> words:string array -> n_words:int -> string
(** A single long run of words separated by single spaces — raw material
    for paragraph-filling scripts. *)
