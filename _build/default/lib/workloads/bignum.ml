module Rt = Lp_ialloc.Runtime

(* Limbs are base 2^15 so that a limb product (2^30) plus carries stays well
   inside OCaml's 63-bit integers even in the middle of Algorithm D. *)
let limb_bits = 15
let base = 1 lsl limb_bits
let limb_mask = base - 1

type ctx = {
  rt : Rt.t;
  wrapper : Xalloc.t;  (* bn_new -> xmalloc *)
  f_add : Lp_callchain.Func.id;
  f_sub : Lp_callchain.Func.id;
  f_mul : Lp_callchain.Func.id;
  f_div : Lp_callchain.Func.id;
  f_small : Lp_callchain.Func.id;
  f_sqrt : Lp_callchain.Func.id;
  f_gcd : Lp_callchain.Func.id;
  f_str : Lp_callchain.Func.id;
}

type t = { limbs : int array; handle : Rt.handle }
(* limbs is little-endian with no leading zero limb; the zero value has an
   empty limb array.  The handle is the simulated heap object. *)

let make_ctx rt =
  {
    rt;
    wrapper = Xalloc.create rt ~layers:[ "bn_new"; "xmalloc" ];
    f_add = Rt.func rt "bn_add";
    f_sub = Rt.func rt "bn_sub";
    f_mul = Rt.func rt "bn_mul";
    f_div = Rt.func rt "bn_div";
    f_small = Rt.func rt "bn_small";
    f_sqrt = Rt.func rt "bn_sqrt";
    f_gcd = Rt.func rt "bn_gcd";
    f_str = Rt.func rt "bn_str";
  }

let obj_size n_limbs = 8 + (4 * max 1 n_limbs)

(* Wrap a freshly computed limb array as a heap object.  The traced size
   mirrors a C implementation's struct: header + limb storage. *)
let birth ctx limbs =
  let handle = Xalloc.alloc ctx.wrapper ~size:(obj_size (Array.length limbs)) in
  Rt.touch ctx.rt handle (1 + Array.length limbs);
  { limbs; handle }

let release ctx t = Rt.free ctx.rt t.handle
let copy ctx t = birth ctx (Array.copy t.limbs)

let trim limbs =
  let n = ref (Array.length limbs) in
  while !n > 0 && limbs.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length limbs then limbs else Array.sub limbs 0 !n

let of_int ctx n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
  birth ctx (Array.of_list (limbs n))

let is_zero t = Array.length t.limbs = 0

let to_int t =
  let n = Array.length t.limbs in
  if n * limb_bits >= 62 then None
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.limbs.(i)
    done;
    Some !v
  end

let num_limbs t = Array.length t.limbs

(* -- comparison ---------------------------------------------------------- *)

let compare_limbs a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else begin
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
      end
    in
    go (la - 1)
  end

let compare ctx a b =
  Rt.touch ctx.rt a.handle 1;
  Rt.touch ctx.rt b.handle 1;
  Rt.instructions ctx.rt 4;
  compare_limbs a.limbs b.limbs

let equal ctx a b = compare ctx a b = 0

(* -- addition / subtraction --------------------------------------------- *)

let add_limbs a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  trim out

(* a - b, requires a >= b. *)
let sub_limbs a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Bignum.sub: negative result";
  trim out

let charge ctx f a b =
  Rt.touch ctx.rt a.handle (Array.length a.limbs);
  Rt.touch ctx.rt b.handle (Array.length b.limbs);
  Rt.instructions ctx.rt (2 * (Array.length a.limbs + Array.length b.limbs));
  ignore f

let add ctx a b =
  Rt.in_frame ctx.rt ctx.f_add (fun () ->
      charge ctx `Add a b;
      birth ctx (add_limbs a.limbs b.limbs))

let sub ctx a b =
  Rt.in_frame ctx.rt ctx.f_sub (fun () ->
      charge ctx `Sub a b;
      birth ctx (sub_limbs a.limbs b.limbs))

(* -- multiplication ------------------------------------------------------ *)

let mul_limbs a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    trim out
  end

let mul ctx a b =
  Rt.in_frame ctx.rt ctx.f_mul (fun () ->
      Rt.touch ctx.rt a.handle (Array.length a.limbs);
      Rt.touch ctx.rt b.handle (Array.length b.limbs);
      Rt.instructions ctx.rt (3 * max 1 (Array.length a.limbs * Array.length b.limbs));
      birth ctx (mul_limbs a.limbs b.limbs))

(* -- small-operand helpers ----------------------------------------------- *)

let mul_small_limbs a m =
  if m = 0 || Array.length a = 0 then [||]
  else begin
    (* m may exceed the limb base; split it into limbs first. *)
    let rec m_limbs n = if n = 0 then [] else (n land limb_mask) :: m_limbs (n lsr limb_bits) in
    mul_limbs a (Array.of_list (m_limbs m))
  end

let add_small_limbs a m =
  let rec m_limbs n = if n = 0 then [] else (n land limb_mask) :: m_limbs (n lsr limb_bits) in
  add_limbs a (Array.of_list (m_limbs m))

let mul_small ctx a m =
  if m < 0 then invalid_arg "Bignum.mul_small: negative";
  Rt.in_frame ctx.rt ctx.f_small (fun () ->
      Rt.touch ctx.rt a.handle (Array.length a.limbs);
      Rt.instructions ctx.rt (2 * max 1 (Array.length a.limbs));
      birth ctx (mul_small_limbs a.limbs m))

let add_small ctx a m =
  if m < 0 then invalid_arg "Bignum.add_small: negative";
  Rt.in_frame ctx.rt ctx.f_small (fun () ->
      Rt.touch ctx.rt a.handle (Array.length a.limbs);
      Rt.instructions ctx.rt (2 * max 1 (Array.length a.limbs));
      birth ctx (add_small_limbs a.limbs m))

(* Divide by a machine integer 0 < d < 2^30 (so limb*base + limb < 2^45). *)
let divmod_small_limbs a d =
  let n = Array.length a in
  let out = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    r := cur mod d
  done;
  (trim out, !r)

let divmod_small ctx a d =
  if d = 0 then raise Division_by_zero;
  if d < 0 || d >= 1 lsl 30 then invalid_arg "Bignum.divmod_small: divisor out of range";
  Rt.in_frame ctx.rt ctx.f_small (fun () ->
      Rt.touch ctx.rt a.handle (Array.length a.limbs);
      Rt.instructions ctx.rt (4 * max 1 (Array.length a.limbs));
      let q, r = divmod_small_limbs a.limbs d in
      (birth ctx q, r))

let rem_small ctx a d =
  if d = 0 then raise Division_by_zero;
  if d < 0 || d >= 1 lsl 30 then invalid_arg "Bignum.rem_small: divisor out of range";
  (* Remainder only: no result object is born, mirroring a C routine that
     keeps the running remainder in a register. *)
  Rt.touch ctx.rt a.handle (Array.length a.limbs);
  Rt.instructions ctx.rt (3 * max 1 (Array.length a.limbs));
  let r = ref 0 in
  for i = Array.length a.limbs - 1 downto 0 do
    r := ((!r lsl limb_bits) lor a.limbs.(i)) mod d
  done;
  !r

(* -- general division: Knuth TAOCP vol. 2, Algorithm 4.3.1 D ------------- *)

let shift_left_bits limbs k =
  (* 0 <= k < limb_bits *)
  if k = 0 then Array.copy limbs
  else begin
    let n = Array.length limbs in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (limbs.(i) lsl k) lor !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    out.(n) <- !carry;
    trim out
  end

let shift_right_bits limbs k =
  if k = 0 then Array.copy limbs
  else begin
    let n = Array.length limbs in
    let out = Array.make n 0 in
    let carry = ref 0 in
    for i = n - 1 downto 0 do
      let v = (!carry lsl limb_bits) lor limbs.(i) in
      out.(i) <- v lsr k;
      carry := v land ((1 lsl k) - 1)
    done;
    trim out
  end

let divmod_limbs u v =
  let n = Array.length v in
  if n = 0 then raise Division_by_zero;
  if compare_limbs u v < 0 then ([||], Array.copy u)
  else if n = 1 then begin
    let q, r = divmod_small_limbs u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* Normalise so the top limb of v is >= base/2. *)
    let shift =
      let rec go s top = if top >= base / 2 then s else go (s + 1) (top * 2) in
      go 0 v.(n - 1)
    in
    let u = shift_left_bits u shift in
    let v = shift_left_bits v shift in
    let m = Array.length u - n in
    (* Working copy of u with one extra top limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      (* Estimate q_hat from the top two limbs of the current remainder
         against the top limb of v. *)
      let top2 = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let q_hat = ref (top2 / v.(n - 1)) in
      let r_hat = ref (top2 mod v.(n - 1)) in
      if !q_hat >= base then begin
        r_hat := !r_hat + (v.(n - 1) * (!q_hat - (base - 1)));
        q_hat := base - 1
      end;
      while
        !r_hat < base
        && !q_hat * v.(n - 2) > (!r_hat lsl limb_bits) lor w.(j + n - 2)
      do
        decr q_hat;
        r_hat := !r_hat + v.(n - 1)
      done;
      (* Multiply-subtract q_hat * v from w[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!q_hat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* q_hat was one too large: add v back once. *)
        w.(j + n) <- d + base;
        decr q_hat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !carry in
          w.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !q_hat
    done;
    let r = shift_right_bits (trim (Array.sub w 0 n)) shift in
    (trim q, r)
  end

let divmod ctx a b =
  Rt.in_frame ctx.rt ctx.f_div (fun () ->
      Rt.touch ctx.rt a.handle (Array.length a.limbs);
      Rt.touch ctx.rt b.handle (Array.length b.limbs);
      Rt.instructions ctx.rt
        (4 * max 1 (Array.length a.limbs * max 1 (Array.length b.limbs)));
      let q, r = divmod_limbs a.limbs b.limbs in
      let q = birth ctx q in
      let r = birth ctx r in
      (q, r))

let rem ctx a b =
  let q, r = divmod ctx a b in
  release ctx q;
  r

(* -- square root ---------------------------------------------------------- *)

let isqrt ctx n =
  Rt.in_frame ctx.rt ctx.f_sqrt (fun () ->
      if is_zero n then birth ctx [||]
      else begin
        (* Newton's iteration x' = (x + n/x) / 2, starting above sqrt(n). *)
        let bits = ((Array.length n.limbs - 1) * limb_bits)
                   + (let top = n.limbs.(Array.length n.limbs - 1) in
                      let rec bl i = if 1 lsl i > top then i else bl (i + 1) in
                      bl 1)
        in
        let x0 = shift_left_bits [| 1 |] ((bits / 2 + 1) mod limb_bits) in
        let x0 =
          let words = (bits / 2 + 1) / limb_bits in
          if words = 0 then x0
          else begin
            let padded = Array.make (words + Array.length x0) 0 in
            Array.blit x0 0 padded words (Array.length x0);
            padded
          end
        in
        let x = ref (birth ctx x0) in
        let continue = ref true in
        while !continue do
          let q, r = divmod ctx n !x in
          release ctx r;
          let s = add ctx !x q in
          release ctx q;
          let next, r2 = divmod_small ctx s 2 in
          ignore r2;
          release ctx s;
          if compare ctx next !x < 0 then begin
            release ctx !x;
            x := next
          end
          else begin
            release ctx next;
            continue := false
          end
        done;
        !x
      end)

(* -- gcd ------------------------------------------------------------------ *)

let gcd ctx a b =
  Rt.in_frame ctx.rt ctx.f_gcd (fun () ->
      let a = ref (copy ctx a) and b = ref (copy ctx b) in
      while not (is_zero !b) do
        let r = rem ctx !a !b in
        release ctx !a;
        a := !b;
        b := r
      done;
      release ctx !b;
      !a)

let mul_mod ctx a b m =
  let p = mul ctx a b in
  let r = rem ctx p m in
  release ctx p;
  r

(* -- decimal I/O ---------------------------------------------------------- *)

let of_string ctx s =
  if s = "" then invalid_arg "Bignum.of_string: empty string";
  Rt.in_frame ctx.rt ctx.f_str (fun () ->
      let acc = ref (birth ctx [||]) in
      String.iter
        (fun c ->
          if c < '0' || c > '9' then invalid_arg "Bignum.of_string: not a digit";
          let ten = mul_small ctx !acc 10 in
          release ctx !acc;
          let next = add_small ctx ten (Char.code c - Char.code '0') in
          release ctx ten;
          acc := next)
        s;
      !acc)

let to_string ctx t =
  Rt.in_frame ctx.rt ctx.f_str (fun () ->
      if is_zero t then "0"
      else begin
        let digits = Buffer.create 32 in
        let cur = ref (copy ctx t) in
        while not (is_zero !cur) do
          let q, r = divmod_small ctx !cur 10000 in
          release ctx !cur;
          cur := q;
          if is_zero q then Buffer.add_string digits (Printf.sprintf "%d" r)
          else Buffer.add_string digits (Printf.sprintf "%04d" r)
        done;
        release ctx !cur;
        (* digits holds 4-digit groups least-significant first; reverse them. *)
        let s = Buffer.contents digits in
        let groups = ref [] in
        let i = ref 0 in
        let n = String.length s in
        while !i < n do
          let len = min 4 (n - !i) in
          groups := String.sub s !i len :: !groups;
          i := !i + len
        done;
        String.concat "" !groups
      end)
