lib/workloads/awk_lexer.mli:
