lib/workloads/corpus.mli: Prng
