lib/workloads/awk_parser.mli: Awk_ast
