lib/workloads/awk_parser.ml: Array Awk_ast Awk_lexer List Printf
