lib/workloads/awk_interp.ml: Array Awk_ast Buffer Float Hashtbl List Lp_callchain Lp_ialloc Option Printf Regex Scanf Stdlib String Xalloc
