lib/workloads/gawk.mli: Lp_ialloc Lp_trace
