lib/workloads/prng.mli:
