lib/workloads/ps_scanner.ml: Buffer Bytes Lp_callchain Lp_ialloc Ps_object String Xalloc
