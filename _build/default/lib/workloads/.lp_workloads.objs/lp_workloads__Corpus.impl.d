lib/workloads/corpus.ml: Array Buffer Hashtbl Prng
