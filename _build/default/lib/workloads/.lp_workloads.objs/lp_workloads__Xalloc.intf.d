lib/workloads/xalloc.mli: Lp_ialloc
