lib/workloads/bignum.ml: Array Buffer Char Lp_callchain Lp_ialloc Printf Stdlib String Xalloc
