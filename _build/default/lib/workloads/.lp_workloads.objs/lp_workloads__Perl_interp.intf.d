lib/workloads/perl_interp.mli: Lp_ialloc Perl_ast
