lib/workloads/perl.mli: Lp_ialloc Lp_trace
