lib/workloads/ps_graphics.ml: Float List Lp_callchain Lp_ialloc Ps_object String Xalloc
