lib/workloads/gawk.ml: Array Awk_interp Awk_parser Corpus List Lp_ialloc Prng String
