lib/workloads/perl.ml: Array Corpus List Lp_ialloc Perl_interp Perl_parser Prng String
