lib/workloads/perl_parser.ml: Array List Perl_ast Perl_lexer Printf String
