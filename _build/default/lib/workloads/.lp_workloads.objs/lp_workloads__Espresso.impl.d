lib/workloads/espresso.ml: Cube List Lp_callchain Lp_ialloc Prng String
