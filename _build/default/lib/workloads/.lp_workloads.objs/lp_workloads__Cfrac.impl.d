lib/workloads/cfrac.ml: Array Bignum Hashtbl List Lp_callchain Lp_ialloc Option Printf
