lib/workloads/regex.mli:
