lib/workloads/registry.ml: Cfrac Espresso Gawk Ghost Hashtbl List Lp_trace Perl
