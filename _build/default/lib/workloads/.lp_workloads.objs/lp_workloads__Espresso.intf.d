lib/workloads/espresso.mli: Lp_ialloc Lp_trace
