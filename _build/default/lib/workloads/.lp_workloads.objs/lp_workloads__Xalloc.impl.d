lib/workloads/xalloc.ml: Array List Lp_callchain Lp_ialloc
