lib/workloads/ps_object.ml: Bytes Hashtbl Lp_ialloc Printf String Xalloc
