lib/workloads/awk_lexer.ml: Array Buffer List Printf String
