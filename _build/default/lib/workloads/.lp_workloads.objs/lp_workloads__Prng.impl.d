lib/workloads/prng.ml: Array Char Int64 String
