lib/workloads/ps_interp.ml: Array Bytes Char Float Hashtbl List Lp_callchain Lp_ialloc Option Printf Ps_graphics Ps_object Ps_scanner Stdlib String Xalloc
