lib/workloads/cfrac.mli: Lp_ialloc Lp_trace
