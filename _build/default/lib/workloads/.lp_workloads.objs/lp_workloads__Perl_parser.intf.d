lib/workloads/perl_parser.mli: Perl_ast
