lib/workloads/ghost.mli: Lp_ialloc Lp_trace
