lib/workloads/cube.ml: Array List Lp_callchain Lp_ialloc Option String Xalloc
