lib/workloads/perl_lexer.ml: Array Buffer List Printf String
