lib/workloads/ghost.ml: Buffer Corpus List Lp_ialloc Printf Prng Ps_interp String
