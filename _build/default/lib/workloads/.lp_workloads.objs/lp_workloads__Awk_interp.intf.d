lib/workloads/awk_interp.mli: Awk_ast Lp_ialloc
