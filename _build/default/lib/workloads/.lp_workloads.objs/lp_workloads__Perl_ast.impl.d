lib/workloads/perl_ast.ml:
