lib/workloads/perl_interp.ml: Array Buffer Char Float Hashtbl List Lp_callchain Lp_ialloc Option Perl_ast Printf Regex Scanf Stdlib String Xalloc
