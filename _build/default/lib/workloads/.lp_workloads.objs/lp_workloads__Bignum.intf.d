lib/workloads/bignum.mli: Lp_ialloc
