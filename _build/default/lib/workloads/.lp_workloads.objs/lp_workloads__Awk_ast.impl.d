lib/workloads/awk_ast.ml:
