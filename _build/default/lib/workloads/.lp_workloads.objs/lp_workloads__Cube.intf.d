lib/workloads/cube.mli: Lp_ialloc
