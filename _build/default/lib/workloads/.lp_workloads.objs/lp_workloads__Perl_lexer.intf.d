lib/workloads/perl_lexer.mli:
