lib/workloads/regex.ml: Array Buffer Char List String
