lib/workloads/registry.mli: Lp_trace
