(** Tree-walking interpreter for the mini-Perl language, with the same
    instrumented-cell memory discipline as the AWK interpreter: every
    evaluation yields a fresh heap cell owned by its consumer; variables,
    array slots and hash entries own their stored cells; hash and array
    spines are long-lived heap objects.

    Regular-expression matching runs on the {!Regex} engine; the
    interpreter charges simulated instructions proportional to the
    backtracking steps and allocates a match-state object per application
    (Perl's runtime match stack), freed when the match completes. *)

type t

val create : Lp_ialloc.Runtime.t -> Perl_ast.program -> t

val run : t -> stdin:string array -> string
(** Execute the program; [<>] reads successive lines of [stdin].  Returns
    everything printed.

    @raise Failure on runtime errors (undefined subroutine, bad builtin
    arity, etc.). *)
