(* Abstract syntax of the mini-Perl language (a Perl-4-flavoured subset):
   scalars, arrays, hashes, regular-expression matching and substitution,
   subroutines with @_, and the list-producing builtins report scripts
   live on (split / sort / keys). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Repeat  (* x *)
  | Concat  (* . *)
  | NumEq
  | NumNe
  | NumLt
  | NumGt
  | NumLe
  | NumGe
  | StrEq  (* eq *)
  | StrNe  (* ne *)
  | StrLt  (* lt *)
  | StrGt  (* gt *)

type expr =
  | Num of float
  | Str of string
  | Undef
  | Scalar of string  (* $x; "_" is $_, "1".."9" are match groups *)
  | Elem of string * expr  (* $a[i] *)
  | HElem of string * expr  (* $h{k} *)
  | Assign of lvalue * expr
  | OpAssign of lvalue * binop * expr
  | Binop of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Neg of expr
  | Incr of bool * lvalue
  | Decr of bool * lvalue
  | Match of expr * string  (* target =~ m/pat/ *)
  | NoMatch of expr * string  (* target !~ m/pat/ *)
  | Subst of lvalue * string * string  (* target =~ s/pat/repl/ *)
  | Call of string * arg list
  | ReadLine  (* <> *)
  | ScalarOf of lexpr  (* scalar(@a) etc. *)

and arg = AExpr of expr | AList of lexpr | ARegex of string

and lvalue = LScalar of string | LElem of string * expr | LHElem of string * expr

(* List-producing expressions, usable where Perl wants a LIST. *)
and lexpr =
  | LArr of string  (* @a *)
  | LSplit of string * expr  (* split /pat/, expr *)
  | LSortL of lexpr  (* sort LIST (default string order) *)
  | LKeys of string  (* keys %h *)
  | LValuesOf of string  (* values %h *)
  | LWords of expr list  (* (e1, e2, ...) literal list *)

type stmt =
  | SExpr of expr
  | SMy of string list * expr option  (* my ($a, $b) = expr? (scalars only) *)
  | SIf of (expr * stmt list) list * stmt list option  (* if/elsif.../else *)
  | SWhile of expr * stmt list
  | SWhileRead of stmt list  (* while (<>) { ... } binding $_ *)
  | SForeach of string * lexpr * stmt list
  | SAssignList of string * lexpr  (* @a = LIST *)
  | SSub of string * stmt list
  | SReturn of expr option
  | SLast
  | SNext
  | SPrint of expr list
  | SPrintf of expr list

type program = stmt list
