type t = { mutable state : int64 }

let create ~seed = { state = seed }

let of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  create ~seed:!h

(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  mask mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Prng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let geometric t ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Prng.geometric: p outside (0, 1]";
  let rec go n = if float t < p then n else go (n + 1) in
  go 0

let split t = create ~seed:(int64 t)
