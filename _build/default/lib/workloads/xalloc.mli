(** Layered allocation wrappers.

    Real C programs rarely call [malloc] directly; they route allocations
    through safety wrappers ([xmalloc]) and type-specific constructors.
    The paper leans on this (§4): layered designs are exactly why length-1
    call-chains predict poorly and why prediction quality jumps once enough
    layers are resolved (Table 6).

    An {!t} represents such a wrapper stack: calling {!alloc} pushes the
    configured wrapper frames (e.g. [new_node] → [safe_alloc] → [xmalloc])
    before performing the underlying instrumented allocation, charging a
    few instructions per layer, and pops them again. *)

type t

val create : Lp_ialloc.Runtime.t -> layers:string list -> t
(** [create rt ~layers] builds a wrapper whose frames are [layers], listed
    outermost first.  [layers] may be empty (a direct allocation).  The
    outermost layer's name doubles as the allocation's type tag (see
    {!Lp_ialloc.Runtime.alloc}). *)

val alloc : t -> size:int -> Lp_ialloc.Runtime.handle
(** Allocate through the wrapper layers. *)

val calloc : t -> size:int -> Lp_ialloc.Runtime.handle
(** Like {!alloc} but also charges the zero-fill cost ([size/4]
    instructions) and one initialising heap reference per 16 bytes. *)
