(* Tokenizer for the mini-PostScript language.

   Following a real PostScript scanner, each scanned token materialises an
   object; composite tokens (strings) allocate.  To model the scanner's own
   workspace churn we also allocate a small token cell per token, freed as
   soon as the interpreter has consumed the token — a large population of
   extremely short-lived objects, just like GhostScript's scanner refs. *)

module Rt = Lp_ialloc.Runtime
open Ps_object

type token =
  | TObj of Ps_object.t
  | TProc_open  (* { *)
  | TProc_close  (* } *)
  | TArr_open  (* [ *)
  | TArr_close  (* ] *)
  | TEof

type t = {
  src : string;
  mutable pos : int;
  rt : Rt.t;
  str_wrapper : Xalloc.t;
  token_wrapper : Xalloc.t;
  f_scan : Lp_callchain.Func.id;
}

let create rt src =
  {
    src;
    pos = 0;
    rt;
    str_wrapper = Xalloc.create rt ~layers:[ "ps_string"; "vm_alloc" ];
    token_wrapper = Xalloc.create rt ~layers:[ "scan_token"; "vm_alloc" ];
    f_scan = Rt.func rt "ps_scan";
  }

let is_white = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_delim = function
  | '{' | '}' | '[' | ']' | '(' | ')' | '/' | '%' -> true
  | c -> is_white c

let alloc_string t bytes =
  let s_handle = Xalloc.alloc t.str_wrapper ~size:(16 + Bytes.length bytes) in
  Rt.touch t.rt s_handle (1 + (Bytes.length bytes / 8));
  { bytes; s_handle }

(* The per-token scanner cell: born here, freed by the interpreter right
   after dispatch. *)
let token_cell t =
  let h = Xalloc.alloc t.token_wrapper ~size:24 in
  Rt.touch t.rt h 1;
  h

let rec skip_space t =
  let n = String.length t.src in
  while t.pos < n && is_white t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  if t.pos < n && t.src.[t.pos] = '%' then begin
    while t.pos < n && t.src.[t.pos] <> '\n' do
      t.pos <- t.pos + 1
    done;
    skip_space t
  end

let read_name t =
  let n = String.length t.src in
  let start = t.pos in
  while t.pos < n && not (is_delim t.src.[t.pos]) do
    t.pos <- t.pos + 1
  done;
  String.sub t.src start (t.pos - start)

let classify_name name =
  (* numbers are scanned as names first, then reinterpreted *)
  match int_of_string_opt name with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt name with
      | Some f -> Real f
      | None -> Name name)

(* Returns the token plus the scanner-cell handle the caller must free. *)
let next t : token * Rt.handle option =
  Rt.in_frame t.rt t.f_scan (fun () ->
      skip_space t;
      Rt.instructions t.rt 8;
      let n = String.length t.src in
      if t.pos >= n then (TEof, None)
      else begin
        let c = t.src.[t.pos] in
        match c with
        | '{' ->
            t.pos <- t.pos + 1;
            (TProc_open, None)
        | '}' ->
            t.pos <- t.pos + 1;
            (TProc_close, None)
        | '[' ->
            t.pos <- t.pos + 1;
            (TArr_open, None)
        | ']' ->
            t.pos <- t.pos + 1;
            (TArr_close, None)
        | '(' ->
            (* string literal with nesting *)
            t.pos <- t.pos + 1;
            let buf = Buffer.create 16 in
            let depth = ref 1 in
            while !depth > 0 && t.pos < n do
              let c = t.src.[t.pos] in
              (match c with
              | '(' ->
                  incr depth;
                  Buffer.add_char buf c
              | ')' ->
                  decr depth;
                  if !depth > 0 then Buffer.add_char buf c
              | '\\' when t.pos + 1 < n ->
                  t.pos <- t.pos + 1;
                  Buffer.add_char buf t.src.[t.pos]
              | c -> Buffer.add_char buf c);
              t.pos <- t.pos + 1
            done;
            if !depth > 0 then err "syntaxerror: unterminated string";
            let s = alloc_string t (Bytes.of_string (Buffer.contents buf)) in
            (TObj (Str s), Some (token_cell t))
        | '/' ->
            t.pos <- t.pos + 1;
            let name = read_name t in
            (TObj (Lit_name name), Some (token_cell t))
        | _ ->
            let name = read_name t in
            if name = "" then err "syntaxerror: bad character %C" c;
            (TObj (classify_name name), Some (token_cell t))
      end)
