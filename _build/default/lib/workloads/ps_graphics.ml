(* Graphics machinery of the mini-PostScript interpreter: path construction,
   curve flattening, and a banded scanline rasterizer.

   The page (612 x 792 points, US Letter at 1 pt/px) is rasterized in
   horizontal bands of 78 rows at one bit per pixel: 612/8 = 77 bytes per
   row, 77 * 78 = 6006 bytes per band buffer.  Painting a shape allocates
   the band buffers its bounding box overlaps, rasterizes into them, and
   frees them when the shape is done — these are the ~6-kilobyte
   short-lived objects the paper calls out in GHOST (Table 7 discussion:
   "GHOST allocates about 5000 6-kilobyte short-lived objects", too big for
   its 4-kilobyte arenas). *)

module Rt = Lp_ialloc.Runtime

let page_width = 612
let page_height = 792
let band_rows = 78
let bytes_per_row = (page_width + 7) / 8
let band_size = bytes_per_row * band_rows (* = 6006 *)
let n_bands = ((page_height - 1) / band_rows) + 1

type point = { x : float; y : float }

(* A path segment is a small heap object, freed at newpath/showpage. *)
type segment = { p0 : point; p1 : point; seg_handle : Rt.handle }

type t = {
  rt : Rt.t;
  seg_wrapper : Xalloc.t;  (* path_seg -> vm_alloc *)
  band_wrapper : Xalloc.t;  (* band_buffer -> vm_alloc *)
  state_wrapper : Xalloc.t;  (* gstate -> vm_alloc *)
  glyph_wrapper : Xalloc.t;  (* glyph_ref -> vm_alloc *)
  f_fill : Lp_callchain.Func.id;
  f_stroke : Lp_callchain.Func.id;
  f_flatten : Lp_callchain.Func.id;
  f_raster : Lp_callchain.Func.id;
  mutable path : segment list;
  mutable current : point option;
  mutable start : point option;  (* subpath start, for closepath *)
  mutable tx : float;  (* translation part of the CTM *)
  mutable ty : float;
  mutable gray : float;
  mutable line_width : float;
  mutable font_size : float;
  mutable gsave_stack : (float * float * float * float * float * Rt.handle) list;
  mutable bands_painted : int;
  mutable cells_touched : int;
  cmd_wrapper : Xalloc.t;  (* band_cmd_list -> vm_alloc *)
  mutable page_cmds : Rt.handle list;  (* per-page command lists, freed at showpage *)
}

let create rt =
  {
    rt;
    seg_wrapper = Xalloc.create rt ~layers:[ "path_seg"; "vm_alloc" ];
    band_wrapper = Xalloc.create rt ~layers:[ "band_buffer"; "vm_alloc" ];
    state_wrapper = Xalloc.create rt ~layers:[ "gstate"; "vm_alloc" ];
    glyph_wrapper = Xalloc.create rt ~layers:[ "glyph_ref"; "render_char"; "vm_alloc" ];
    cmd_wrapper = Xalloc.create rt ~layers:[ "band_cmd_list"; "vm_alloc" ];
    f_fill = Rt.func rt "ps_fill";
    f_stroke = Rt.func rt "ps_stroke";
    f_flatten = Rt.func rt "flatten_curve";
    f_raster = Rt.func rt "rasterize_band";
    path = [];
    current = None;
    start = None;
    tx = 0.;
    ty = 0.;
    gray = 0.;
    line_width = 1.;
    font_size = 10.;
    gsave_stack = [];
    bands_painted = 0;
    cells_touched = 0;
    page_cmds = [];
  }

let transform g p = { x = p.x +. g.tx; y = p.y +. g.ty }

let add_segment g p0 p1 =
  let seg_handle = Xalloc.alloc g.seg_wrapper ~size:40 in
  Rt.touch g.rt seg_handle 4;
  g.path <- { p0; p1; seg_handle } :: g.path

let newpath g =
  List.iter (fun s -> Rt.free g.rt s.seg_handle) g.path;
  g.path <- [];
  g.current <- None;
  g.start <- None

let moveto g p =
  let p = transform g p in
  g.current <- Some p;
  g.start <- Some p

let lineto g p =
  match g.current with
  | None -> Ps_object.err "nocurrentpoint: lineto"
  | Some c ->
      let p = transform g p in
      add_segment g c p;
      g.current <- Some p

let rlineto g (dx, dy) =
  match g.current with
  | None -> Ps_object.err "nocurrentpoint: rlineto"
  | Some c ->
      let p = { x = c.x +. dx; y = c.y +. dy } in
      add_segment g c p;
      g.current <- Some p

let rmoveto g (dx, dy) =
  match g.current with
  | None -> Ps_object.err "nocurrentpoint: rmoveto"
  | Some c ->
      let p = { x = c.x +. dx; y = c.y +. dy } in
      g.current <- Some p;
      g.start <- Some p

let closepath g =
  match (g.current, g.start) with
  | Some c, Some s when c <> s -> add_segment g c s
  | _ -> ()

(* De Casteljau subdivision to depth 4 (16 chords), allocating a transient
   control-point record per subdivision like a C flattener's workspace. *)
let curveto g p1 p2 p3 =
  match g.current with
  | None -> Ps_object.err "nocurrentpoint: curveto"
  | Some p0 ->
      let p1 = transform g p1 and p2 = transform g p2 and p3 = transform g p3 in
      Rt.in_frame g.rt g.f_flatten (fun () ->
          let lerp a b t = { x = a.x +. ((b.x -. a.x) *. t); y = a.y +. ((b.y -. a.y) *. t) } in
          let bezier t =
            let a = lerp p0 p1 t and b = lerp p1 p2 t and c = lerp p2 p3 t in
            let d = lerp a b t and e = lerp b c t in
            lerp d e t
          in
          let steps = 16 in
          let prev = ref p0 in
          for i = 1 to steps do
            (* workspace record for this subdivision step *)
            let w = Xalloc.alloc g.seg_wrapper ~size:48 in
            Rt.touch g.rt w 6;
            let t = float_of_int i /. float_of_int steps in
            let p = bezier t in
            add_segment g !prev p;
            prev := p;
            Rt.free g.rt w
          done;
          g.current <- Some !prev)

let gsave g =
  let h = Xalloc.alloc g.state_wrapper ~size:72 in
  Rt.touch g.rt h 8;
  g.gsave_stack <- (g.tx, g.ty, g.gray, g.line_width, g.font_size, h) :: g.gsave_stack

let grestore g =
  match g.gsave_stack with
  | [] -> () (* permissible: restore at bottom is a no-op *)
  | (tx, ty, gray, lw, fs, h) :: rest ->
      g.tx <- tx;
      g.ty <- ty;
      g.gray <- gray;
      g.line_width <- lw;
      g.font_size <- fs;
      Rt.free g.rt h;
      g.gsave_stack <- rest

let translate g (dx, dy) =
  g.tx <- g.tx +. dx;
  g.ty <- g.ty +. dy

(* Bounding box of the current path, clamped to the page. *)
let path_bbox g =
  match g.path with
  | [] -> None
  | segs ->
      let lo_y = ref infinity and hi_y = ref neg_infinity in
      List.iter
        (fun { p0; p1; _ } ->
          lo_y := Float.min !lo_y (Float.min p0.y p1.y);
          hi_y := Float.max !hi_y (Float.max p0.y p1.y))
        segs;
      let lo = max 0 (int_of_float (floor !lo_y)) in
      let hi = min (page_height - 1) (int_of_float (ceil !hi_y)) in
      if lo > hi then None else Some (lo, hi)

(* Scanline fill (even-odd rule) of the current path into the overlapped
   bands.  Band buffers are allocated per painting operation and freed when
   the operation completes. *)
let paint g ~frame ~as_stroke =
  Rt.in_frame g.rt frame (fun () ->
      match path_bbox g with
      | None -> ()
      | Some (lo_row, hi_row) ->
          let b_lo = lo_row / band_rows and b_hi = hi_row / band_rows in
          let segs = g.path in
          (* banding: the operation is also recorded into a per-page command
             list (as a banded GhostScript accumulates display commands),
             which lives until showpage.  These page-lived records
             interleave with the band-buffer churn, which is what
             fragments a first-fit heap and what arena segregation
             rescues (the paper's Table 8 GHOST result). *)
          let cmd =
            Xalloc.alloc g.cmd_wrapper
              ~size:(24 + (8 * List.length segs) + (40 * (b_hi - b_lo + 1)))
          in
          Rt.touch g.rt cmd (1 + List.length segs);
          g.page_cmds <- cmd :: g.page_cmds;
          for band = b_lo to min b_hi (n_bands - 1) do
            let buf = Xalloc.alloc g.band_wrapper ~size:band_size in
            g.bands_painted <- g.bands_painted + 1;
            Rt.in_frame g.rt g.f_raster (fun () ->
                let row0 = band * band_rows in
                let row1 = min (row0 + band_rows - 1) hi_row in
                let row0 = max row0 lo_row in
                let touched = ref 0 in
                for row = row0 to row1 do
                  let y = float_of_int row +. 0.5 in
                  (* gather x-crossings *)
                  let xs =
                    List.filter_map
                      (fun { p0; p1; _ } ->
                        if as_stroke then begin
                          (* stroke: mark pixels near the segment on rows it
                             spans (cheap approximation of pen stamping) *)
                          if Float.min p0.y p1.y <= y && y <= Float.max p0.y p1.y
                             && p0.y <> p1.y
                          then begin
                            let t = (y -. p0.y) /. (p1.y -. p0.y) in
                            Some (p0.x +. (t *. (p1.x -. p0.x)))
                          end
                          else None
                        end
                        else if
                          (* even-odd crossing: half-open rule *)
                          (p0.y <= y && p1.y > y) || (p1.y <= y && p0.y > y)
                        then begin
                          let t = (y -. p0.y) /. (p1.y -. p0.y) in
                          Some (p0.x +. (t *. (p1.x -. p0.x)))
                        end
                        else None)
                      segs
                  in
                  let xs = List.sort Float.compare xs in
                  let rec spans = function
                    | x0 :: x1 :: rest when not as_stroke ->
                        touched := !touched + max 1 (int_of_float ((x1 -. x0) /. 8.));
                        spans rest
                    | [ _ ] | [] -> ()
                    | x0 :: rest ->
                        (* stroking: stamp around each crossing *)
                        ignore x0;
                        touched := !touched + 1;
                        spans rest
                  in
                  spans xs;
                  Rt.instructions g.rt (8 + List.length xs)
                done;
                g.cells_touched <- g.cells_touched + !touched;
                Rt.touch g.rt buf (max 1 !touched));
            Rt.free g.rt buf
          done;
          newpath g)

let fill g = paint g ~frame:g.f_fill ~as_stroke:false
let stroke g = paint g ~frame:g.f_stroke ~as_stroke:true

let showpage g =
  newpath g;
  (* write the page out: the accumulated command lists are replayed and
     released *)
  List.iter (fun h -> Rt.free g.rt h) g.page_cmds;
  g.page_cmds <- [];
  g.tx <- 0.;
  g.ty <- 0.

(* Render a text string as one filled rectangle spanning the run (width
   heuristic: 0.6 em per glyph).  Each glyph also materialises a transient
   glyph-reference record — the per-character workspace of a text renderer —
   freed as soon as the run is painted. *)
let show g s =
  match g.current with
  | None -> Ps_object.err "nocurrentpoint: show"
  | Some c ->
      let len = String.length s in
      let em = g.font_size in
      let glyphs =
        List.init len (fun _ ->
            let h = Xalloc.alloc g.glyph_wrapper ~size:20 in
            Rt.touch g.rt h 2;
            h)
      in
      let w = 0.6 *. em *. float_of_int len in
      let y0 = c.y and y1 = c.y +. (0.72 *. em) in
      add_segment g { x = c.x; y = y0 } { x = c.x +. w; y = y0 };
      add_segment g { x = c.x +. w; y = y0 } { x = c.x +. w; y = y1 };
      add_segment g { x = c.x +. w; y = y1 } { x = c.x; y = y1 };
      add_segment g { x = c.x; y = y1 } { x = c.x; y = y0 };
      fill g;
      List.iter (fun h -> Rt.free g.rt h) glyphs;
      g.current <- Some { x = c.x +. w; y = c.y }

let finish g =
  newpath g;
  List.iter (fun h -> Rt.free g.rt h) g.page_cmds;
  g.page_cmds <- [];
  List.iter (fun (_, _, _, _, _, h) -> Rt.free g.rt h) g.gsave_stack;
  g.gsave_stack <- []
