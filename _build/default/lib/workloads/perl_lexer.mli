(** Lexer for the mini-Perl language.

    Handles Perl's context-sensitive regex literals the way real Perl
    lexers do: [m/.../], [s/.../.../] and bare [/.../] where an operand is
    expected are lexed as single regex tokens. *)

type token =
  | NUMBER of float
  | STRING of string
  | SCALAR of string  (* $name *)
  | ARRAY of string  (* @name *)
  | HASH of string  (* %name *)
  | IDENT of string  (* bareword: keyword or function name *)
  | REGEX of string  (* /pat/ or m/pat/ *)
  | SUBST of string * string  (* s/pat/repl/ *)
  | READLINE  (* <> or <STDIN> *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | FATCOMMA  (* => *)
  | ASSIGN
  | ADD_ASSIGN
  | SUB_ASSIGN
  | MUL_ASSIGN
  | DIV_ASSIGN
  | CAT_ASSIGN  (* .= *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | DOT
  | XOP  (* x (string repetition) arrives as IDENT "x"; parser decides *)
  | NUMEQ
  | NUMNE
  | NUMLT
  | NUMGT
  | NUMLE
  | NUMGE
  | ANDAND
  | OROR
  | NOT
  | INCR
  | DECR
  | BIND  (* =~ *)
  | NBIND  (* !~ *)
  | EOF

exception Lex_error of string * int

val tokenize : string -> token array
(** @raise Lex_error on malformed input. *)

val token_to_string : token -> string
