(** Cubes and covers for two-level logic minimization.

    A cube over [n] binary variables is a conjunction of literals,
    represented positionally with two bits per variable:
    [01] — the variable must be 0, [10] — it must be 1, [11] — don't care,
    [00] — the empty (contradictory) literal.  A cover is a set of cubes
    whose union is the function's on-set.  This is the representation of the
    Espresso logic minimizer, and the {!Espresso} workload's allocation
    engine: cube objects are created and destroyed in torrents by the
    recursive cofactor/tautology/complement procedures.

    Cubes are simulated heap objects: every cube carries an instrumented
    handle, and its traced size is [8 + ceil(2n/8)] bytes, like a C bit-pair
    implementation. *)

type ctx
(** Cube-algebra context: runtime, wrapper layers, frame ids, and the
    variable count. *)

type t
(** A cube.  Immutable once built. *)

type cover = t list
(** A cover, most recently created cube first. *)

val make_ctx : Lp_ialloc.Runtime.t -> n_vars:int -> ctx

val n_vars : ctx -> int

val universe : ctx -> t
(** The cube with every position don't-care. *)

val of_string : ctx -> string -> t
(** Parse a cube from a string of ['0'], ['1'], ['-'] characters, one per
    variable.  @raise Invalid_argument on bad length or characters. *)

val to_string : ctx -> t -> string

val release : ctx -> t -> unit
val release_cover : ctx -> cover -> unit
val copy : ctx -> t -> t

val minterm : ctx -> int -> t
(** [minterm ctx m] is the cube of the single point whose bits are the
    binary digits of [m] (variable 0 = least significant bit). *)

val get : t -> int -> [ `Zero | `One | `Dash | `Empty ]
(** Literal of one variable position. *)

val set : ctx -> t -> int -> [ `Zero | `One | `Dash ] -> t
(** A fresh cube equal to [t] except at one position. *)

val is_empty : ctx -> t -> bool
(** Does some variable have the empty literal? *)

val contains : ctx -> t -> t -> bool
(** [contains a b]: does cube [a] contain cube [b] (b ⊆ a)? *)

val intersect : ctx -> t -> t -> t option
(** Cube intersection; [None] when empty. *)

val distance : ctx -> t -> t -> int
(** Number of variable positions where the two cubes conflict. *)

val cofactor : ctx -> t -> t -> t option
(** [cofactor c p] is the Shannon cofactor of [c] with respect to cube [p]
    ([None] if they don't intersect). *)

val with_workspace : ctx -> int -> (unit -> 'a) -> 'a
(** [with_workspace ctx n f] brackets [f] with a transient cover-spine
    allocation sized for [n] cubes (the set-family header and pointer array
    a C implementation would carve), freed when [f] returns. *)

val cofactor_cover : ctx -> cover -> t -> cover
(** Cofactor every cube of a cover, dropping empties. *)

val count_literals : t -> int
(** Number of non-dash positions — the cost measure minimization shrinks. *)

val cover_cost : cover -> int * int
(** [(cubes, literals)] of a cover. *)

val is_tautology : ctx -> cover -> bool
(** Does the cover contain every minterm?  Unate-recursive paradigm:
    unate-reduction special cases plus binate branching. *)

val complement : ctx -> cover -> cover
(** Complement of a cover, by the unate-recursive paradigm (sharp against
    branching cofactors).  The result is freshly allocated. *)

val covers_cube : ctx -> cover -> t -> bool
(** [covers_cube f c]: is cube [c] entirely inside the union of [f]?
    (Tautology of the cofactor of [f] by [c].) *)

val eval : ctx -> cover -> int -> bool
(** [eval ctx f m] — does minterm [m] satisfy some cube of [f]?  (Direct
    evaluation, used by tests as ground truth.) *)
