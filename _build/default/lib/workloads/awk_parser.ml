open Awk_ast
module L = Awk_lexer

exception Parse_error of string

type state = { toks : L.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else L.EOF
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg (L.token_to_string (peek st))))

let expect st tok msg =
  if peek st = tok then advance st else fail st ("expected " ^ msg)

let skip_newlines st =
  while peek st = L.NEWLINE do
    advance st
  done

let skip_terminators st =
  while peek st = L.NEWLINE || peek st = L.SEMI do
    advance st
  done

(* Does this token begin an expression?  Used for concatenation-by-
   juxtaposition and for optional print arguments. *)
let starts_expr = function
  | L.NUMBER _ | L.STRING _ | L.IDENT _ | L.DOLLAR | L.LPAREN | L.NOT | L.MINUS
  | L.INCR | L.DECR | L.ERE _ ->
      true
  | _ -> false

let rec parse_lvalue_from_ident st name =
  if peek st = L.LBRACKET then begin
    advance st;
    let sub = parse_expr st in
    expect st L.RBRACKET "]";
    LArray (name, sub)
  end
  else LVar name

and parse_primary st =
  match peek st with
  | L.ERE re ->
      advance st;
      Regex re
  | L.NUMBER f ->
      advance st;
      Num f
  | L.STRING s ->
      advance st;
      Str s
  | L.DOLLAR ->
      advance st;
      let e = parse_primary st in
      Lvalue (LField e)
  | L.LPAREN ->
      advance st;
      let e = parse_expr st in
      (match peek st with
      | L.RPAREN -> advance st
      | _ -> fail st "expected )");
      e
  | L.INCR ->
      advance st;
      let lv = parse_lvalue st in
      Incr (true, lv)
  | L.DECR ->
      advance st;
      let lv = parse_lvalue st in
      Decr (true, lv)
  | L.IDENT ("split" as name) when peek2 st = L.LPAREN ->
      advance st;
      advance st;
      ignore name;
      let subject = parse_expr st in
      expect st L.COMMA ",";
      let arr =
        match peek st with
        | L.IDENT a ->
            advance st;
            a
        | _ -> fail st "split needs an array name"
      in
      let sep =
        if peek st = L.COMMA then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st L.RPAREN ")";
      Split (subject, arr, sep)
  | L.IDENT (("sub" | "gsub") as name) when peek2 st = L.LPAREN ->
      advance st;
      advance st;
      let pat = parse_expr st in
      expect st L.COMMA ",";
      let repl = parse_expr st in
      let target =
        if peek st = L.COMMA then begin
          advance st;
          Some (parse_lvalue st)
        end
        else None
      in
      expect st L.RPAREN ")";
      SubstOp (name = "gsub", pat, repl, target)
  | L.IDENT name ->
      if peek2 st = L.LPAREN then begin
        advance st;
        advance st;
        let args =
          if peek st = L.RPAREN then []
          else begin
            let rec loop acc =
              let e = parse_expr st in
              if peek st = L.COMMA then begin
                advance st;
                loop (e :: acc)
              end
              else List.rev (e :: acc)
            in
            loop []
          end
        in
        expect st L.RPAREN ")";
        Call (name, args)
      end
      else begin
        advance st;
        let lv = parse_lvalue_from_ident st name in
        (* postfix ++/-- *)
        match peek st with
        | L.INCR ->
            advance st;
            Incr (false, lv)
        | L.DECR ->
            advance st;
            Decr (false, lv)
        | _ -> Lvalue lv
      end
  | _ -> fail st "expected expression"

and parse_lvalue st =
  match peek st with
  | L.DOLLAR ->
      advance st;
      let e = parse_primary st in
      LField e
  | L.IDENT name ->
      advance st;
      parse_lvalue_from_ident st name
  | _ -> fail st "expected lvalue"

and parse_unary st =
  match peek st with
  | L.NOT ->
      advance st;
      Not (parse_unary st)
  | L.MINUS ->
      advance st;
      Neg (parse_unary st)
  | L.PLUS ->
      advance st;
      parse_unary st
  | _ -> parse_primary st

and parse_power st =
  let base = parse_unary st in
  if peek st = L.CARET then begin
    advance st;
    let e = parse_power st in
    Binop (Pow, base, e)
  end
  else base

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | L.STAR ->
        advance st;
        loop (Binop (Mul, lhs, parse_power st))
    | L.SLASH ->
        advance st;
        loop (Binop (Div, lhs, parse_power st))
    | L.PERCENT ->
        advance st;
        loop (Binop (Mod, lhs, parse_power st))
    | _ -> lhs
  in
  loop (parse_power st)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | L.PLUS ->
        advance st;
        loop (Binop (Add, lhs, parse_mul st))
    | L.MINUS ->
        advance st;
        loop (Binop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_concat st =
  let rec loop lhs =
    if starts_expr (peek st) then loop (Binop (Concat, lhs, parse_add st)) else lhs
  in
  loop (parse_add st)

and parse_comparison st =
  let lhs = parse_concat st in
  let cmp op =
    advance st;
    Binop (op, lhs, parse_concat st)
  in
  match peek st with
  | L.MATCH ->
      advance st;
      MatchOp (false, lhs, parse_concat st)
  | L.NOMATCH ->
      advance st;
      MatchOp (true, lhs, parse_concat st)
  | L.LT -> cmp Lt
  | L.LE -> cmp Le
  | L.GT -> cmp Gt
  | L.GE -> cmp Ge
  | L.EQ -> cmp Eq
  | L.NE -> cmp Ne
  | _ -> lhs

and parse_in st =
  let lhs = parse_comparison st in
  if peek st = L.IN then begin
    advance st;
    match peek st with
    | L.IDENT arr ->
        advance st;
        In (lhs, arr)
    | _ -> fail st "expected array name after 'in'"
  end
  else lhs

and parse_and st =
  let rec loop lhs =
    if peek st = L.AND then begin
      advance st;
      loop (And (lhs, parse_in st))
    end
    else lhs
  in
  loop (parse_in st)

and parse_or st =
  let rec loop lhs =
    if peek st = L.OR then begin
      advance st;
      loop (Or (lhs, parse_and st))
    end
    else lhs
  in
  loop (parse_and st)

and parse_ternary st =
  let cond = parse_or st in
  if peek st = L.QUESTION then begin
    advance st;
    let t = parse_ternary st in
    expect st L.COLON ":";
    let f = parse_ternary st in
    Ternary (cond, t, f)
  end
  else cond

and parse_expr st =
  (* Assignment needs an lvalue on the left; parse a ternary and convert. *)
  let lhs = parse_ternary st in
  let to_lvalue = function
    | Lvalue lv -> lv
    | _ -> fail st "left side of assignment is not assignable"
  in
  match peek st with
  | L.ASSIGN ->
      advance st;
      Assign (to_lvalue lhs, parse_expr st)
  | L.ADD_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Add, parse_expr st)
  | L.SUB_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Sub, parse_expr st)
  | L.MUL_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Mul, parse_expr st)
  | L.DIV_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Div, parse_expr st)
  | L.MOD_ASSIGN ->
      advance st;
      OpAssign (to_lvalue lhs, Mod, parse_expr st)
  | _ -> lhs

let parse_expr_list st =
  let rec loop acc =
    let e = parse_expr st in
    if peek st = L.COMMA then begin
      advance st;
      skip_newlines st;
      loop (e :: acc)
    end
    else List.rev (e :: acc)
  in
  loop []

let rec parse_stmt st =
  match peek st with
  | L.LBRACE -> parse_block st
  | L.IF ->
      advance st;
      expect st L.LPAREN "(";
      let cond = parse_expr st in
      expect st L.RPAREN ")";
      skip_newlines st;
      let then_ = parse_stmt st in
      let else_ =
        (* an ELSE may be separated by terminators *)
        let save = st.pos in
        skip_terminators st;
        if peek st = L.ELSE then begin
          advance st;
          skip_newlines st;
          Some (parse_stmt st)
        end
        else begin
          st.pos <- save;
          None
        end
      in
      If (cond, then_, else_)
  | L.WHILE ->
      advance st;
      expect st L.LPAREN "(";
      let cond = parse_expr st in
      expect st L.RPAREN ")";
      skip_newlines st;
      While (cond, parse_stmt st)
  | L.DO ->
      advance st;
      skip_newlines st;
      let body = parse_stmt st in
      skip_terminators st;
      expect st L.WHILE "while";
      expect st L.LPAREN "(";
      let cond = parse_expr st in
      expect st L.RPAREN ")";
      Do (body, cond)
  | L.FOR -> (
      advance st;
      expect st L.LPAREN "(";
      (* for (v in arr) or for (init; cond; update) *)
      match (peek st, peek2 st) with
      | L.IDENT v, L.IN ->
          advance st;
          advance st;
          let arr =
            match peek st with
            | L.IDENT a ->
                advance st;
                a
            | _ -> fail st "expected array name"
          in
          expect st L.RPAREN ")";
          skip_newlines st;
          ForIn (v, arr, parse_stmt st)
      | _ ->
          let init = if peek st = L.SEMI then None else Some (ExprStmt (parse_expr st)) in
          expect st L.SEMI ";";
          let cond = if peek st = L.SEMI then None else Some (parse_expr st) in
          expect st L.SEMI ";";
          let update =
            if peek st = L.RPAREN then None else Some (ExprStmt (parse_expr st))
          in
          expect st L.RPAREN ")";
          skip_newlines st;
          For (init, cond, update, parse_stmt st))
  | L.PRINT ->
      advance st;
      let args = if starts_expr (peek st) then parse_expr_list st else [] in
      Print args
  | L.PRINTF ->
      advance st;
      Printf (parse_expr_list st)
  | L.NEXT ->
      advance st;
      Next
  | L.BREAK ->
      advance st;
      Break
  | L.CONTINUE ->
      advance st;
      Continue
  | L.RETURN ->
      advance st;
      if starts_expr (peek st) then Return (Some (parse_expr st)) else Return None
  | L.DELETE -> (
      advance st;
      match peek st with
      | L.IDENT name ->
          advance st;
          expect st L.LBRACKET "[";
          let sub = parse_expr st in
          expect st L.RBRACKET "]";
          Delete (name, sub)
      | _ -> fail st "expected array name after delete")
  | _ -> ExprStmt (parse_expr st)

and parse_block st =
  expect st L.LBRACE "{";
  skip_terminators st;
  let rec loop acc =
    if peek st = L.RBRACE then begin
      advance st;
      Block (List.rev acc)
    end
    else begin
      let s = parse_stmt st in
      skip_terminators st;
      loop (s :: acc)
    end
  in
  loop []

let parse_item st =
  match peek st with
  | L.FUNCTION -> (
      advance st;
      match peek st with
      | L.IDENT name ->
          advance st;
          expect st L.LPAREN "(";
          let params =
            if peek st = L.RPAREN then []
            else begin
              let rec loop acc =
                match peek st with
                | L.IDENT p ->
                    advance st;
                    if peek st = L.COMMA then begin
                      advance st;
                      loop (p :: acc)
                    end
                    else List.rev (p :: acc)
                | _ -> fail st "expected parameter name"
              in
              loop []
            end
          in
          expect st L.RPAREN ")";
          skip_newlines st;
          Func (name, params, parse_block st)
      | _ -> fail st "expected function name")
  | L.BEGIN ->
      advance st;
      skip_newlines st;
      Rule (Begin, Some (parse_block st))
  | L.END_KW ->
      advance st;
      skip_newlines st;
      Rule (End, Some (parse_block st))
  | L.LBRACE -> Rule (Always, Some (parse_block st))
  | _ ->
      let cond = parse_expr st in
      if peek st = L.LBRACE then Rule (When cond, Some (parse_block st))
      else Rule (When cond, None)

let parse src =
  let st = { toks = L.tokenize src; pos = 0 } in
  skip_terminators st;
  let rec loop acc =
    if peek st = L.EOF then List.rev acc
    else begin
      let item = parse_item st in
      skip_terminators st;
      loop (item :: acc)
    end
  in
  loop []
