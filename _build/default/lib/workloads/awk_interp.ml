open Awk_ast
module Rt = Lp_ialloc.Runtime

type value = VNum of float | VStr of string | VUninit

(* A cell is a simulated heap object holding one value.  The simulated size
   mirrors gawk's NODE struct: 16 bytes for numbers, header + bytes for
   strings. *)
type cell = { mutable v : value; handle : Rt.handle }

type array_entry = { mutable cell : cell; node_handle : Rt.handle }

type t = {
  rt : Rt.t;
  program : program;
  functions : (string, string list * stmt) Hashtbl.t;
  globals : (string, cell) Hashtbl.t;
  arrays : (string, (string, array_entry) Hashtbl.t) Hashtbl.t;
  mutable locals : (string, cell) Hashtbl.t list;  (* innermost first *)
  mutable fields : cell array;  (* fields.(0) is $0 *)
  mutable nr : int;
  output : Buffer.t;
  cell_wrapper : Xalloc.t;  (* make_cell -> xmalloc *)
  node_wrapper : Xalloc.t;  (* array_node -> xmalloc *)
  f_eval : Lp_callchain.Func.id;
  f_exec : Lp_callchain.Func.id;
  f_concat : Lp_callchain.Func.id;
  f_arith : Lp_callchain.Func.id;
  f_compare : Lp_callchain.Func.id;
  f_assign : Lp_callchain.Func.id;
  f_store : Lp_callchain.Func.id;
  f_field : Lp_callchain.Func.id;
  f_array : Lp_callchain.Func.id;
  f_split : Lp_callchain.Func.id;
  f_call : Lp_callchain.Func.id;
  f_print : Lp_callchain.Func.id;
  f_match : Lp_callchain.Func.id;
  builtin_frames : (string, Lp_callchain.Func.id) Hashtbl.t;
  regex_cache : (string, Regex.t) Hashtbl.t;
}

exception Next_record
exception Break_loop
exception Continue_loop
exception Return_value of cell

let create rt program =
  let functions = Hashtbl.create 16 in
  List.iter
    (function
      | Func (name, params, body) -> Hashtbl.replace functions name (params, body)
      | Rule _ -> ())
    program;
  let builtin_frames = Hashtbl.create 16 in
  List.iter
    (fun b -> Hashtbl.replace builtin_frames b (Rt.func rt ("awk_" ^ b)))
    [ "length"; "substr"; "index"; "int"; "sprintf"; "toupper"; "tolower"; "match" ];
  {
    rt;
    program;
    functions;
    globals = Hashtbl.create 64;
    arrays = Hashtbl.create 16;
    locals = [];
    fields = [||];
    nr = 0;
    output = Buffer.create 4096;
    cell_wrapper = Xalloc.create rt ~layers:[ "make_cell"; "xmalloc" ];
    node_wrapper = Xalloc.create rt ~layers:[ "array_node"; "xmalloc" ];
    f_eval = Rt.func rt "tree_eval";
    f_exec = Rt.func rt "exec_stmt";
    f_concat = Rt.func rt "op_concat";
    f_arith = Rt.func rt "op_arith";
    f_compare = Rt.func rt "op_compare";
    f_assign = Rt.func rt "op_assign";
    f_store = Rt.func rt "store_value";
    f_field = Rt.func rt "field_ref";
    f_array = Rt.func rt "array_ref";
    f_split = Rt.func rt "split_record";
    f_call = Rt.func rt "call_func";
    f_print = Rt.func rt "do_print";
    f_match = Rt.func rt "re_match";
    builtin_frames;
    regex_cache = Hashtbl.create 16;
  }

(* AWK regular expressions run on the shared backtracking engine; compiled
   programs are cached (and are long-lived allocations, like gawk's). *)
let compiled t pat =
  match Hashtbl.find_opt t.regex_cache pat with
  | Some re -> re
  | None ->
      let re = Regex.compile pat in
      let h = Xalloc.alloc t.cell_wrapper ~size:(48 + (8 * String.length pat)) in
      Rt.touch t.rt h 2;
      Hashtbl.replace t.regex_cache pat re;
      re

let run_regex t re subject =
  let result = Regex.search re subject in
  Rt.instructions t.rt (Regex.steps_of_last_search ());
  result

(* -- cells ----------------------------------------------------------------- *)

let cell_size = function
  | VNum _ -> 16
  | VStr s -> 17 + String.length s
  | VUninit -> 16

let mk t v =
  let handle = Xalloc.alloc t.cell_wrapper ~size:(cell_size v) in
  Rt.touch t.rt handle 1;
  { v; handle }

let mk_num t f = mk t (VNum f)
let mk_str t s = mk t (VStr s)
let free_cell t c = Rt.free t.rt c.handle

let read_cell t c =
  Rt.touch t.rt c.handle 1;
  c.v

(* Fresh copy of a stored cell: variable reads hand out copies, so the
   stored cell keeps single ownership. *)
let copy_cell t c =
  Rt.touch t.rt c.handle 1;
  mk t c.v

(* Overwrite a cell in place when the new value fits its allocation (gawk
   reuses the variable's NODE); otherwise report failure so the caller can
   reallocate. *)
let overwrite t c v =
  if cell_size v <= Rt.size_of t.rt c.handle then begin
    c.v <- v;
    Rt.touch t.rt c.handle 1;
    true
  end
  else false

(* -- coercions ------------------------------------------------------------- *)

let num_of_string s =
  (* AWK semantics: leading numeric prefix, else 0. *)
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do
    incr i
  done;
  let start = !i in
  if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
  let digits_start = !i in
  while
    !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.' || s.[!i] = 'e'
               || s.[!i] = 'E' || ((s.[!i] = '+' || s.[!i] = '-')
                                   && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
  do
    incr i
  done;
  if !i = digits_start then 0.
  else begin
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some f -> f
    | None -> 0.
  end

let str_of_num f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_num = function VNum f -> f | VStr s -> num_of_string s | VUninit -> 0.
let to_str = function VNum f -> str_of_num f | VStr s -> s | VUninit -> ""

let looks_numeric = function VNum _ -> true | VUninit -> true | VStr _ -> false

(* -- variables ------------------------------------------------------------- *)

let find_scope t name =
  let rec go = function
    | [] -> None
    | scope :: rest -> if Hashtbl.mem scope name then Some scope else go rest
  in
  go t.locals

let get_var t name =
  match name with
  | "NR" -> mk_num t (float_of_int t.nr)
  | "NF" -> mk_num t (float_of_int (max 0 (Array.length t.fields - 1)))
  | _ -> (
      match find_scope t name with
      | Some scope -> copy_cell t (Hashtbl.find scope name)
      | None -> (
          match Hashtbl.find_opt t.globals name with
          | Some c -> copy_cell t c
          | None -> mk t VUninit))

(* Takes ownership of [cell]. *)
let set_var t name cell =
  let store scope =
    (match Hashtbl.find_opt scope name with
    | Some old -> free_cell t old
    | None -> ());
    Hashtbl.replace scope name cell
  in
  match find_scope t name with
  | Some scope -> store scope
  | None -> store t.globals

let get_array t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None ->
      let a = Hashtbl.create 64 in
      Hashtbl.replace t.arrays name a;
      a

(* -- fields ---------------------------------------------------------------- *)

let free_fields t =
  Array.iter (fun c -> free_cell t c) t.fields;
  t.fields <- [||]

let split_record t line =
  Rt.in_frame t.rt t.f_split (fun () ->
      free_fields t;
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      Rt.instructions t.rt (String.length line);
      t.fields <- Array.of_list (mk_str t line :: List.map (mk_str t) words))

let get_field t i =
  Rt.in_frame t.rt t.f_field (fun () ->
      if i >= 0 && i < Array.length t.fields then copy_cell t t.fields.(i)
      else mk t VUninit)

let set_field t i cell =
  Rt.in_frame t.rt t.f_field (fun () ->
      let n = Array.length t.fields in
      if i >= 0 && i < n then begin
        free_cell t t.fields.(i);
        t.fields.(i) <- cell
      end
      else begin
        let grown = Array.init (i + 1) (fun j -> if j < n then t.fields.(j) else mk t VUninit) in
        free_cell t grown.(i);
        grown.(i) <- cell;
        t.fields <- grown
      end)

(* -- expression evaluation -------------------------------------------------- *)

let rec eval t e : cell =
  Rt.in_frame t.rt t.f_eval (fun () ->
      Rt.instructions t.rt 4;
      Rt.non_heap_refs t.rt 2;
      match e with
      | Num f -> mk_num t f
      | Str s -> mk_str t s
      | Lvalue lv -> eval_lvalue t lv
      | Assign (lv, rhs) ->
          Rt.in_frame t.rt t.f_assign (fun () ->
              (* like gawk's assign: the rhs temporary stays short-lived;
                 the variable's own cell is overwritten in place, or
                 reallocated at the store site when the value outgrows it *)
              let v = eval t rhs in
              store_lvalue t lv (read_cell t v);
              v)
      | OpAssign (lv, op, rhs) ->
          Rt.in_frame t.rt t.f_assign (fun () ->
              let old = eval_lvalue t lv in
              let r = eval t rhs in
              let result = apply_binop t op old r in
              free_cell t old;
              free_cell t r;
              store_lvalue t lv (read_cell t result);
              result)
      | Binop (op, a, b) ->
          let ca = eval t a in
          let cb = eval t b in
          apply_binop_consuming t op ca cb
      | And (a, b) ->
          let ca = eval t a in
          let truth = to_num (read_cell t ca) <> 0. in
          free_cell t ca;
          if not truth then mk_num t 0.
          else begin
            let cb = eval t b in
            let r = to_num (read_cell t cb) <> 0. in
            free_cell t cb;
            mk_num t (if r then 1. else 0.)
          end
      | Or (a, b) ->
          let ca = eval t a in
          let truth = to_num (read_cell t ca) <> 0. in
          free_cell t ca;
          if truth then mk_num t 1.
          else begin
            let cb = eval t b in
            let r = to_num (read_cell t cb) <> 0. in
            free_cell t cb;
            mk_num t (if r then 1. else 0.)
          end
      | Not a ->
          let ca = eval t a in
          let truth = to_num (read_cell t ca) <> 0. in
          free_cell t ca;
          mk_num t (if truth then 0. else 1.)
      | Neg a ->
          let ca = eval t a in
          let f = to_num (read_cell t ca) in
          free_cell t ca;
          mk_num t (-.f)
      | Ternary (c, a, b) ->
          let cc = eval t c in
          let truth = to_num (read_cell t cc) <> 0. in
          free_cell t cc;
          if truth then eval t a else eval t b
      | Incr (prefix, lv) -> incr_decr t lv prefix 1.
      | Decr (prefix, lv) -> incr_decr t lv prefix (-1.)
      | Call (name, args) -> eval_call t name args
      | Regex pat ->
          (* a bare /re/ matches against the current record *)
          Rt.in_frame t.rt t.f_match (fun () ->
              let subject =
                if Array.length t.fields > 0 then to_str (read_cell t t.fields.(0))
                else ""
              in
              let hit = run_regex t (compiled t pat) subject <> None in
              mk_num t (if hit then 1. else 0.))
      | MatchOp (negated, subject_e, pat_e) ->
          Rt.in_frame t.rt t.f_match (fun () ->
              let cs = eval t subject_e in
              let subject = to_str (read_cell t cs) in
              free_cell t cs;
              let pat = pattern_text t pat_e in
              let hit = run_regex t (compiled t pat) subject <> None in
              mk_num t (if hit <> negated then 1. else 0.))
      | Split (subject_e, arr_name, sep_e) ->
          Rt.in_frame t.rt t.f_split (fun () ->
              let cs = eval t subject_e in
              let subject = to_str (read_cell t cs) in
              free_cell t cs;
              let parts =
                match sep_e with
                | None ->
                    String.split_on_char ' ' subject
                    |> List.filter (fun p -> p <> "")
                | Some e ->
                    let pat = pattern_text t e in
                    regex_split t (compiled t pat) subject
              in
              (* split clears the array and fills a[1..n] *)
              (match Hashtbl.find_opt t.arrays arr_name with
              | Some arr ->
                  Hashtbl.iter
                    (fun _ entry ->
                      free_cell t entry.cell;
                      Rt.free t.rt entry.node_handle)
                    arr;
                  Hashtbl.reset arr
              | None -> ());
              List.iteri
                (fun i part ->
                  store_lvalue t
                    (LArray (arr_name, Num (float_of_int (i + 1))))
                    (VStr part))
                parts;
              mk_num t (float_of_int (List.length parts)))
      | SubstOp (global, pat_e, repl_e, target) ->
          Rt.in_frame t.rt t.f_match (fun () ->
              let lv = Option.value target ~default:(LField (Num 0.)) in
              let old = eval_lvalue t lv in
              let subject = to_str (read_cell t old) in
              free_cell t old;
              let pat = pattern_text t pat_e in
              let cr = eval t repl_e in
              let repl = to_str (read_cell t cr) in
              free_cell t cr;
              (* AWK's & refers to the match; our engine's templates use $0-9
                 only, so escape the replacement literally *)
              let re = compiled t pat in
              let count = ref 0 in
              let result =
                if global then begin
                  let buf = Buffer.create (String.length subject) in
                  let pos = ref 0 in
                  let continue = ref true in
                  while !continue && !pos <= String.length subject do
                    let rest =
                      String.sub subject !pos (String.length subject - !pos)
                    in
                    match run_regex t re rest with
                    | Some m when m.Regex.end_pos > m.start_pos ->
                        Buffer.add_string buf (String.sub rest 0 m.start_pos);
                        Buffer.add_string buf repl;
                        incr count;
                        pos := !pos + m.end_pos
                    | _ ->
                        Buffer.add_string buf rest;
                        continue := false
                  done;
                  Buffer.contents buf
                end
                else begin
                  match run_regex t re subject with
                  | Some m ->
                      incr count;
                      String.sub subject 0 m.start_pos ^ repl
                      ^ String.sub subject m.end_pos
                          (String.length subject - m.end_pos)
                  | None -> subject
                end
              in
              if !count > 0 then store_lvalue t lv (VStr result);
              mk_num t (float_of_int !count))
      | In (sub, arr) ->
          let cs = eval t sub in
          let key = to_str (read_cell t cs) in
          free_cell t cs;
          let present =
            match Hashtbl.find_opt t.arrays arr with
            | Some a -> Hashtbl.mem a key
            | None -> false
          in
          mk_num t (if present then 1. else 0.))

and pattern_text t = function
  | Regex pat -> pat
  | e ->
      (* dynamic pattern: any expression whose string value is the ERE *)
      let c = eval t e in
      let pat = to_str (read_cell t c) in
      free_cell t c;
      pat

and regex_split t re subject =
  let n = String.length subject in
  let parts = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue && !pos <= n do
    let rest = String.sub subject !pos (n - !pos) in
    match run_regex t re rest with
    | Some m when m.Regex.end_pos > m.start_pos ->
        parts := String.sub rest 0 m.start_pos :: !parts;
        pos := !pos + m.end_pos
    | _ ->
        parts := rest :: !parts;
        continue := false
  done;
  List.rev !parts

and incr_decr t lv prefix delta =
  Rt.in_frame t.rt t.f_assign (fun () ->
      let old = eval_lvalue t lv in
      let f = to_num (read_cell t old) in
      free_cell t old;
      let result = if prefix then mk_num t (f +. delta) else mk_num t f in
      store_lvalue t lv (VNum (f +. delta));
      result)

and eval_lvalue t = function
  | LVar name -> get_var t name
  | LField e ->
      let ci = eval t e in
      let i = int_of_float (to_num (read_cell t ci)) in
      free_cell t ci;
      get_field t i
  | LArray (name, sub) ->
      Rt.in_frame t.rt t.f_array (fun () ->
          let cs = eval t sub in
          let key = to_str (read_cell t cs) in
          free_cell t cs;
          let arr = get_array t name in
          match Hashtbl.find_opt arr key with
          | Some entry ->
              Rt.touch t.rt entry.node_handle 1;
              copy_cell t entry.cell
          | None -> mk t VUninit)

(* Store a value into an lvalue, overwriting the destination cell in place
   when it fits and reallocating at the dedicated store site otherwise. *)
and store_lvalue t lv v =
  let fresh () = Rt.in_frame t.rt t.f_store (fun () -> mk t v) in
  match lv with
  | LVar name -> (
      let existing =
        match find_scope t name with
        | Some scope -> Hashtbl.find_opt scope name
        | None -> Hashtbl.find_opt t.globals name
      in
      match existing with
      | Some c when overwrite t c v -> ()
      | _ -> set_var t name (fresh ()))
  | LField e ->
      let ci = eval t e in
      let i = int_of_float (to_num (read_cell t ci)) in
      free_cell t ci;
      if i >= 0 && i < Array.length t.fields && overwrite t t.fields.(i) v then ()
      else set_field t i (fresh ())
  | LArray (name, sub) ->
      Rt.in_frame t.rt t.f_array (fun () ->
          let cs = eval t sub in
          let key = to_str (read_cell t cs) in
          free_cell t cs;
          let arr = get_array t name in
          match Hashtbl.find_opt arr key with
          | Some entry ->
              Rt.touch t.rt entry.node_handle 1;
              if not (overwrite t entry.cell v) then begin
                free_cell t entry.cell;
                entry.cell <- fresh ()
              end
          | None ->
              (* the hash node itself is a long-lived allocation *)
              let node_handle =
                Xalloc.alloc t.node_wrapper ~size:(24 + String.length key)
              in
              Rt.touch t.rt node_handle 2;
              Hashtbl.replace arr key { cell = fresh (); node_handle })

and apply_binop_consuming t op a b =
  let r = apply_binop t op a b in
  free_cell t a;
  free_cell t b;
  r

(* Does not free the operand cells (OpAssign reuses one). *)
and apply_binop t op a b =
  match op with
  | Concat ->
      Rt.in_frame t.rt t.f_concat (fun () ->
          let s = to_str (read_cell t a) ^ to_str (read_cell t b) in
          Rt.instructions t.rt (String.length s);
          mk_str t s)
  | Add | Sub | Mul | Div | Mod | Pow ->
      Rt.in_frame t.rt t.f_arith (fun () ->
          let x = to_num (read_cell t a) and y = to_num (read_cell t b) in
          let f =
            match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y
            | Mod -> Float.rem x y
            | Pow -> Float.pow x y
            | _ -> assert false
          in
          mk_num t f)
  | Lt | Le | Gt | Ge | Eq | Ne ->
      Rt.in_frame t.rt t.f_compare (fun () ->
          let va = read_cell t a and vb = read_cell t b in
          let c =
            if looks_numeric va && looks_numeric vb then
              Stdlib.compare (to_num va) (to_num vb)
            else Stdlib.compare (to_str va) (to_str vb)
          in
          let r =
            match op with
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
            | Eq -> c = 0
            | Ne -> c <> 0
            | _ -> assert false
          in
          mk_num t (if r then 1. else 0.))

and eval_call t name args =
  match Hashtbl.find_opt t.builtin_frames name with
  | Some frame -> Rt.in_frame t.rt frame (fun () -> eval_builtin t name args)
  | None -> (
      match Hashtbl.find_opt t.functions name with
      | Some (params, body) ->
          Rt.in_frame t.rt t.f_call (fun () -> call_function t params body args)
      | None -> failwith ("awk: call to undefined function " ^ name))

and eval_builtin t name args =
  let arg_cells = List.map (eval t) args in
  let str i = to_str (read_cell t (List.nth arg_cells i)) in
  let num i = to_num (read_cell t (List.nth arg_cells i)) in
  let nargs = List.length arg_cells in
  let result =
    match (name, nargs) with
    | "length", 0 -> mk_num t (float_of_int (String.length (to_str (read_cell t t.fields.(0)))))
    | "length", _ -> mk_num t (float_of_int (String.length (str 0)))
    | "substr", (2 | 3) ->
        let s = str 0 in
        let start = max 1 (int_of_float (num 1)) in
        let len =
          if nargs = 3 then int_of_float (num 2)
          else String.length s - start + 1
        in
        let start0 = start - 1 in
        let len = max 0 (min len (String.length s - start0)) in
        mk_str t (if start0 >= String.length s then "" else String.sub s start0 len)
    | "index", 2 ->
        let s = str 0 and target = str 1 in
        let n = String.length s and m = String.length target in
        let found = ref 0 in
        (try
           for i = 0 to n - m do
             if String.sub s i m = target then begin
               found := i + 1;
               raise Exit
             end
           done
         with Exit -> ());
        Rt.instructions t.rt n;
        mk_num t (float_of_int !found)
    | "int", 1 -> mk_num t (Float.of_int (int_of_float (num 0)))
    | "match", 2 ->
        let subject = str 0 and pat = str 1 in
        let pos =
          match run_regex t (compiled t pat) subject with
          | Some m -> m.Regex.start_pos + 1
          | None -> 0
        in
        mk_num t (float_of_int pos)
    | "toupper", 1 -> mk_str t (String.uppercase_ascii (str 0))
    | "tolower", 1 -> mk_str t (String.lowercase_ascii (str 0))
    | "sprintf", _ when nargs >= 1 ->
        mk_str t (format_values t (str 0) (List.tl arg_cells))
    | _ -> failwith (Printf.sprintf "awk: bad call %s/%d" name nargs)
  in
  List.iter (free_cell t) arg_cells;
  result

and format_values t fmt args =
  (* Minimal printf: %d %i %s %f %g %c %% with no flags/width beyond
     %-?[0-9]* which we honour for width on d and s. *)
  let buf = Buffer.create 64 in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> VUninit
    | a :: rest ->
        args := rest;
        read_cell t a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' then begin
      Buffer.add_char buf c;
      incr i
    end
    else begin
      let spec_start = !i in
      incr i;
      while !i < n && (fmt.[!i] = '-' || (fmt.[!i] >= '0' && fmt.[!i] <= '9') || fmt.[!i] = '.') do
        incr i
      done;
      if !i < n then begin
        let conv = fmt.[!i] in
        let spec = String.sub fmt spec_start (!i - spec_start + 1) in
        incr i;
        match conv with
        | '%' -> Buffer.add_char buf '%'
        | 'd' | 'i' ->
            let spec = String.sub spec 0 (String.length spec - 1) ^ "d" in
            Buffer.add_string buf
              (Printf.sprintf (Scanf.format_from_string spec "%d")
                 (int_of_float (to_num (next_arg ()))))
        | 's' ->
            Buffer.add_string buf
              (Printf.sprintf (Scanf.format_from_string spec "%s") (to_str (next_arg ())))
        | 'f' | 'g' | 'e' ->
            let spec = String.sub spec 0 (String.length spec - 1) ^ "f" in
            Buffer.add_string buf
              (Printf.sprintf (Scanf.format_from_string spec "%f") (to_num (next_arg ())))
        | 'c' ->
            let s = to_str (next_arg ()) in
            if s <> "" then Buffer.add_char buf s.[0]
        | other -> failwith (Printf.sprintf "awk: unsupported conversion %%%c" other)
      end
    end
  done;
  Buffer.contents buf

and call_function t params body args =
  (* Evaluate arguments in the caller's scope, then bind. *)
  let arg_cells = List.map (eval t) args in
  let scope = Hashtbl.create 8 in
  let rec bind params cells =
    match (params, cells) with
    | [], extra -> List.iter (free_cell t) extra
    | p :: ps, [] ->
        Hashtbl.replace scope p (mk t VUninit);
        bind ps []
    | p :: ps, c :: cs ->
        Hashtbl.replace scope p c;
        bind ps cs
  in
  bind params arg_cells;
  t.locals <- scope :: t.locals;
  let result =
    match exec t body with
    | () -> mk t VUninit
    | exception Return_value c -> c
  in
  t.locals <- List.tl t.locals;
  Hashtbl.iter (fun _ c -> free_cell t c) scope;
  result

(* -- statement execution ---------------------------------------------------- *)

and exec t stmt : unit =
  Rt.in_frame t.rt t.f_exec (fun () ->
      Rt.instructions t.rt 4;
      Rt.non_heap_refs t.rt 2;
      match stmt with
      | Block stmts -> List.iter (exec t) stmts
      | ExprStmt e -> free_cell t (eval t e)
      | Print args ->
          Rt.in_frame t.rt t.f_print (fun () ->
              let cells =
                match args with
                | [] -> [ copy_cell t t.fields.(0) ]
                | args -> List.map (eval t) args
              in
              let strs = List.map (fun c -> to_str (read_cell t c)) cells in
              Buffer.add_string t.output (String.concat " " strs);
              Buffer.add_char t.output '\n';
              List.iter (free_cell t) cells)
      | Printf args ->
          Rt.in_frame t.rt t.f_print (fun () ->
              match args with
              | [] -> ()
              | fmt_e :: rest ->
                  let fmt_c = eval t fmt_e in
                  let cells = List.map (eval t) rest in
                  Buffer.add_string t.output
                    (format_values t (to_str (read_cell t fmt_c)) cells);
                  free_cell t fmt_c;
                  List.iter (free_cell t) cells)
      | If (cond, then_, else_) ->
          let c = eval t cond in
          let truth = to_num (read_cell t c) <> 0. in
          free_cell t c;
          if truth then exec t then_
          else Option.iter (exec t) else_
      | While (cond, body) -> (
          try
            let continue = ref true in
            while !continue do
              let c = eval t cond in
              let truth = to_num (read_cell t c) <> 0. in
              free_cell t c;
              if truth then (try exec t body with Continue_loop -> ())
              else continue := false
            done
          with Break_loop -> ())
      | Do (body, cond) -> (
          try
            let continue = ref true in
            while !continue do
              (try exec t body with Continue_loop -> ());
              let c = eval t cond in
              let truth = to_num (read_cell t c) <> 0. in
              free_cell t c;
              continue := truth
            done
          with Break_loop -> ())
      | For (init, cond, update, body) -> (
          Option.iter (exec t) init;
          try
            let continue = ref true in
            while !continue do
              let truth =
                match cond with
                | None -> true
                | Some e ->
                    let c = eval t e in
                    let r = to_num (read_cell t c) <> 0. in
                    free_cell t c;
                    r
              in
              if truth then begin
                (try exec t body with Continue_loop -> ());
                Option.iter (exec t) update
              end
              else continue := false
            done
          with Break_loop -> ())
      | ForIn (var, arr, body) -> (
          let keys =
            match Hashtbl.find_opt t.arrays arr with
            | Some a -> Hashtbl.fold (fun k _ acc -> k :: acc) a []
            | None -> []
          in
          (* sorted for deterministic iteration *)
          let keys = List.sort Stdlib.compare keys in
          try
            List.iter
              (fun k ->
                store_lvalue t (LVar var) (VStr k);
                try exec t body with Continue_loop -> ())
              keys
          with Break_loop -> ())
      | Next -> raise Next_record
      | Break -> raise Break_loop
      | Continue -> raise Continue_loop
      | Return e ->
          let c = match e with Some e -> eval t e | None -> mk t VUninit in
          raise (Return_value c)
      | Delete (name, sub) -> (
          let cs = eval t sub in
          let key = to_str (read_cell t cs) in
          free_cell t cs;
          match Hashtbl.find_opt t.arrays name with
          | Some a -> (
              match Hashtbl.find_opt a key with
              | Some entry ->
                  free_cell t entry.cell;
                  Rt.free t.rt entry.node_handle;
                  Hashtbl.remove a key
              | None -> ())
          | None -> ()))

(* -- top-level driver -------------------------------------------------------- *)

let rules t which =
  List.filter_map
    (function
      | Rule (p, action) when p = which ->
          Some (Option.value action ~default:(Print []))
      | _ -> None)
    t.program

let main_rules t =
  List.filter_map
    (function
      | Rule (Always, action) -> Some (None, Option.value action ~default:(Print []))
      | Rule (When cond, action) ->
          Some (Some cond, Option.value action ~default:(Print []))
      | _ -> None)
    t.program

let run t ~lines =
  let f_main = Rt.func t.rt "awk_main" in
  Rt.in_frame t.rt f_main (fun () ->
      split_record t "";
      List.iter (exec t) (rules t Begin);
      let main = main_rules t in
      Array.iter
        (fun line ->
          t.nr <- t.nr + 1;
          Rt.non_heap_refs t.rt (String.length line / 4);
          split_record t line;
          try
            List.iter
              (fun (cond, action) ->
                let fire =
                  match cond with
                  | None -> true
                  | Some e ->
                      let c = eval t e in
                      let truth = to_num (read_cell t c) <> 0. in
                      free_cell t c;
                      truth
                in
                if fire then exec t action)
              main
          with Next_record -> ())
        lines;
      List.iter (exec t) (rules t End);
      (* Release interpreter-owned cells so surviving objects are only the
         genuinely global program state. *)
      free_fields t;
      Buffer.contents t.output)
