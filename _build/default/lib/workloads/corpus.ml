let consonants = [| "b"; "c"; "d"; "f"; "g"; "h"; "j"; "k"; "l"; "m"; "n"; "p";
                    "r"; "s"; "t"; "v"; "w"; "z"; "ch"; "sh"; "th"; "st"; "br" |]

let vowels = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ea"; "ou"; "y" |]

let word rng =
  let syllables = 1 + Prng.geometric rng ~p:0.45 in
  let syllables = min syllables 5 in
  let buf = Buffer.create 16 in
  for _ = 1 to syllables do
    Buffer.add_string buf (Prng.choose rng consonants);
    Buffer.add_string buf (Prng.choose rng vowels);
    if Prng.float rng < 0.3 then Buffer.add_string buf (Prng.choose rng consonants)
  done;
  Buffer.contents buf

let dictionary rng n =
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  let count = ref 0 in
  while !count < n do
    let w = word rng in
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out := w :: !out;
      incr count
    end
  done;
  let arr = Array.of_list !out in
  Array.sort compare arr;
  arr

let lines rng ~words ~n =
  Array.init n (fun _ ->
      let k = Prng.in_range rng 1 12 in
      let buf = Buffer.create 64 in
      for i = 1 to k do
        if i > 1 then Buffer.add_char buf ' ';
        Buffer.add_string buf (Prng.choose rng words)
      done;
      Buffer.contents buf)

let paragraph_text rng ~words ~n_words =
  let buf = Buffer.create (8 * n_words) in
  for i = 1 to n_words do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.choose rng words)
  done;
  Buffer.contents buf
