(** Tree-walking interpreter for the mini-AWK language, instrumented so
    that every value cell is a simulated heap object.

    Memory model (mirroring a C AWK implementation with explicit cell
    management rather than OCaml's GC):

    - every evaluation produces a {i fresh} cell, which its consumer owns
      and must free — so temporaries (the vast majority of cells) die
      within a few allocations of their birth;
    - variables and array entries own their stored cell, freeing the old
      one on reassignment — so accumulator strings and counters live longer;
    - array insertion also allocates a hash-node object that lives until
      the entry is deleted or the program ends — the long-lived population;
    - field cells ($0, $1, …) are rebuilt per input record.

    Evaluation and statement execution push interpreter frames
    ([tree_eval], [exec_stmt], per-operator and per-builtin frames), so
    allocation sites are distinguished by what the interpreter was doing —
    the direct analogue of the call-chains inside the real gawk binary. *)

type t

val create : Lp_ialloc.Runtime.t -> Awk_ast.program -> t

val run : t -> lines:string array -> string
(** Execute BEGIN rules, the main rules over each input line, then END
    rules; returns the accumulated output of [print]/[printf].

    @raise Failure on runtime type errors (calling an unknown function,
    wrong argument counts, etc.). *)
