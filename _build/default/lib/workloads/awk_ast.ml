(* Abstract syntax of the mini-AWK language interpreted by the GAWK
   workload.  The subset covers what dictionary-formatting scripts need:
   BEGIN/END/expression patterns, field access, one-dimensional associative
   arrays, string concatenation by juxtaposition, the usual statement forms,
   a handful of built-ins, and user-defined functions. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Pow
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Concat

type lvalue =
  | LVar of string
  | LField of expr  (* $expr *)
  | LArray of string * expr  (* name[subscript] *)

and expr =
  | Num of float
  | Str of string
  | Lvalue of lvalue
  | Assign of lvalue * expr
  | OpAssign of lvalue * binop * expr  (* +=, -=, ... *)
  | Binop of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Neg of expr
  | Ternary of expr * expr * expr
  | Incr of bool * lvalue  (* prefix?, ++ *)
  | Decr of bool * lvalue
  | Call of string * expr list
  | In of expr * string  (* (subscript in array) *)
  | Regex of string  (* /re/ in expression position: matches against $0 *)
  | MatchOp of bool * expr * expr  (* negated?, subject, pattern *)
  | Split of expr * string * expr option  (* split(s, arr [, sep]) *)
  | SubstOp of bool * expr * expr * lvalue option
      (* global?, pattern, replacement, target (default $0) *)

type stmt =
  | Block of stmt list
  | ExprStmt of expr
  | Print of expr list
  | Printf of expr list
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do of stmt * expr
  | For of stmt option * expr option * stmt option * stmt
  | ForIn of string * string * stmt  (* for (var in array) *)
  | Next
  | Break
  | Continue
  | Return of expr option
  | Delete of string * expr

type pattern = Begin | End | Always | When of expr

type item =
  | Rule of pattern * stmt option  (* missing action means { print $0 } *)
  | Func of string * string list * stmt

type program = item list
