type token =
  | NUMBER of float
  | STRING of string
  | IDENT of string
  | BEGIN
  | END_KW
  | IF
  | ELSE
  | WHILE
  | FOR
  | IN
  | DO
  | BREAK
  | CONTINUE
  | NEXT
  | DELETE
  | FUNCTION
  | RETURN
  | PRINT
  | PRINTF
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | NEWLINE
  | COMMA
  | ASSIGN
  | ADD_ASSIGN
  | SUB_ASSIGN
  | MUL_ASSIGN
  | DIV_ASSIGN
  | MOD_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AND
  | OR
  | NOT
  | INCR
  | DECR
  | DOLLAR
  | QUESTION
  | COLON
  | ERE of string
  | MATCH
  | NOMATCH
  | EOF

exception Lex_error of string * int

(* After these tokens a '/' must start a regex literal (operand position),
   exactly the disambiguation real AWK lexers perform. *)
let operand_expected = function
  | None -> true
  | Some
      ( LBRACE | LPAREN | LBRACKET | SEMI | NEWLINE | COMMA | ASSIGN | ADD_ASSIGN
      | SUB_ASSIGN | MUL_ASSIGN | DIV_ASSIGN | MOD_ASSIGN | PLUS | MINUS | STAR
      | SLASH | PERCENT | CARET | LT | LE | GT | GE | EQ | NE | AND | OR | NOT
      | MATCH | NOMATCH | QUESTION | COLON | PRINT | PRINTF | RETURN | IF | WHILE ) ->
      true
  | Some _ -> false

let keyword = function
  | "BEGIN" -> Some BEGIN
  | "END" -> Some END_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "in" -> Some IN
  | "do" -> Some DO
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "next" -> Some NEXT
  | "delete" -> Some DELETE
  | "function" -> Some FUNCTION
  | "return" -> Some RETURN
  | "print" -> Some PRINT
  | "printf" -> Some PRINTF
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let prev () = match !toks with [] -> None | t :: _ -> Some t in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '\\' && peek 1 = '\n' then i := !i + 2 (* explicit continuation *)
    else if c = '\n' then begin
      emit NEWLINE;
      incr i
    end
    else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
        incr i
      done;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f)
      | None -> raise (Lex_error ("bad number " ^ text, start))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      emit (match keyword text with Some k -> k | None -> IDENT text)
    end
    else if c = '"' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          closed := true;
          incr i
        end
        else if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | other -> Buffer.add_char buf other);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf))
    end
    else if c = '/' && operand_expected (prev ()) then begin
      (* ERE literal: read to the next unescaped '/' *)
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | '/' -> Buffer.add_char buf '/'
          | other ->
              Buffer.add_char buf '\\';
              Buffer.add_char buf other);
          i := !i + 2
        end
        else if c = '/' then begin
          closed := true;
          incr i
        end
        else if c = '\n' then raise (Lex_error ("newline in regex", start))
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated regex", start));
      emit (ERE (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let advance t k =
        emit t;
        i := !i + k
      in
      match two with
      | "!~" -> advance NOMATCH 2
      | "+=" -> advance ADD_ASSIGN 2
      | "-=" -> advance SUB_ASSIGN 2
      | "*=" -> advance MUL_ASSIGN 2
      | "/=" -> advance DIV_ASSIGN 2
      | "%=" -> advance MOD_ASSIGN 2
      | "==" -> advance EQ 2
      | "!=" -> advance NE 2
      | "<=" -> advance LE 2
      | ">=" -> advance GE 2
      | "&&" -> advance AND 2
      | "||" -> advance OR 2
      | "++" -> advance INCR 2
      | "--" -> advance DECR 2
      | _ -> (
          match c with
          | '{' -> advance LBRACE 1
          | '}' -> advance RBRACE 1
          | '(' -> advance LPAREN 1
          | ')' -> advance RPAREN 1
          | '[' -> advance LBRACKET 1
          | ']' -> advance RBRACKET 1
          | ';' -> advance SEMI 1
          | ',' -> advance COMMA 1
          | '=' -> advance ASSIGN 1
          | '+' -> advance PLUS 1
          | '-' -> advance MINUS 1
          | '*' -> advance STAR 1
          | '/' -> advance SLASH 1
          | '%' -> advance PERCENT 1
          | '^' -> advance CARET 1
          | '<' -> advance LT 1
          | '>' -> advance GT 1
          | '!' -> advance NOT 1
          | '$' -> advance DOLLAR 1
          | '?' -> advance QUESTION 1
          | ':' -> advance COLON 1
          | '~' -> advance MATCH 1
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)))
    end
  done;
  emit EOF;
  (* Drop newlines that cannot terminate a statement: after tokens that
     syntactically require a continuation, and leading/duplicate ones. *)
  let raw = Array.of_list (List.rev !toks) in
  let out = ref [] in
  let last = ref None in
  Array.iter
    (fun t ->
      let continuing =
        match !last with
        | None -> true (* leading newline *)
        | Some
            ( LBRACE | COMMA | AND | OR | ELSE | DO | NEWLINE | SEMI | LPAREN
            | ASSIGN | ADD_ASSIGN | SUB_ASSIGN | MUL_ASSIGN | DIV_ASSIGN
            | MOD_ASSIGN | QUESTION | COLON ) ->
            true
        | Some _ -> false
      in
      if t = NEWLINE && continuing then ()
      else begin
        out := t :: !out;
        last := Some t
      end)
    raw;
  Array.of_list (List.rev !out)

let token_to_string = function
  | NUMBER f -> Printf.sprintf "NUMBER(%g)" f
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | BEGIN -> "BEGIN"
  | END_KW -> "END"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | FOR -> "for"
  | IN -> "in"
  | DO -> "do"
  | BREAK -> "break"
  | CONTINUE -> "continue"
  | NEXT -> "next"
  | DELETE -> "delete"
  | FUNCTION -> "function"
  | RETURN -> "return"
  | PRINT -> "print"
  | PRINTF -> "printf"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | NEWLINE -> "\\n"
  | COMMA -> ","
  | ASSIGN -> "="
  | ADD_ASSIGN -> "+="
  | SUB_ASSIGN -> "-="
  | MUL_ASSIGN -> "*="
  | DIV_ASSIGN -> "/="
  | MOD_ASSIGN -> "%="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CARET -> "^"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | INCR -> "++"
  | DECR -> "--"
  | DOLLAR -> "$"
  | QUESTION -> "?"
  | COLON -> ":"
  | ERE r -> Printf.sprintf "/%s/" r
  | MATCH -> "~"
  | NOMATCH -> "!~"
  | EOF -> "EOF"
