(** Recursive-descent parser for the mini-Perl language. *)

exception Parse_error of string

val parse : string -> Perl_ast.program
(** @raise Parse_error on a syntax error.
    @raise Perl_lexer.Lex_error on a lexical error. *)
