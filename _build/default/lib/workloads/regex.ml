exception Bad_pattern of string

type node =
  | Char of char
  | Any
  | Class of (char -> bool) * string  (* predicate + description *)
  | Seq of node list
  | Alt of node * node
  | Star of node
  | Plus of node
  | Opt of node
  | Group of int * node  (* capture index, 1-based *)
  | Bol
  | Eol
  | Empty

type t = { ast : node; n_groups : int; src : string }

(* -- parser ------------------------------------------------------------------- *)

type pstate = { pat : string; mutable pos : int; mutable groups : int }

let peek st = if st.pos < String.length st.pat then Some st.pat.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let escape_class = function
  | 'w' -> Some ((fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9') || c = '_'), "\\w")
  | 'd' -> Some ((fun c -> c >= '0' && c <= '9'), "\\d")
  | 's' -> Some ((fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r'), "\\s")
  | 'W' -> Some ((fun c -> not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                                || (c >= '0' && c <= '9') || c = '_')), "\\W")
  | 'D' -> Some ((fun c -> not (c >= '0' && c <= '9')), "\\D")
  | 'S' -> Some ((fun c -> not (c = ' ' || c = '\t' || c = '\n' || c = '\r')), "\\S")
  | _ -> None

let parse_char_class st =
  (* on entry, pos is just past '[' *)
  let negated =
    match peek st with
    | Some '^' ->
        advance st;
        true
    | _ -> false
  in
  let ranges = ref [] in
  let chars = ref [] in
  let finished = ref false in
  let first = ref true in
  while not !finished do
    match peek st with
    | None -> raise (Bad_pattern "unterminated character class")
    | Some ']' when not !first ->
        advance st;
        finished := true
    | Some c ->
        first := false;
        advance st;
        let c =
          if c = '\\' then begin
            match peek st with
            | None -> raise (Bad_pattern "trailing backslash in class")
            | Some e ->
                advance st;
                (match e with 'n' -> '\n' | 't' -> '\t' | e -> e)
          end
          else c
        in
        (* range? *)
        if peek st = Some '-' && st.pos + 1 < String.length st.pat
           && st.pat.[st.pos + 1] <> ']'
        then begin
          advance st;
          match peek st with
          | Some hi ->
              advance st;
              ranges := (c, hi) :: !ranges
          | None -> raise (Bad_pattern "unterminated range")
        end
        else chars := c :: !chars
  done;
  let ranges = !ranges and chars = !chars in
  let member c =
    List.mem c chars || List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges
  in
  let pred c = if negated then not (member c) else member c in
  Class (pred, "[class]")

let rec parse_alt st =
  let lhs = parse_seq st in
  match peek st with
  | Some '|' ->
      advance st;
      Alt (lhs, parse_alt st)
  | _ -> lhs

and parse_seq st =
  let items = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | None | Some ')' | Some '|' -> continue := false
    | Some _ -> items := parse_repeat st :: !items
  done;
  match !items with [ one ] -> one | items -> Seq (List.rev items)

and parse_repeat st =
  let atom = parse_atom st in
  match peek st with
  | Some '*' ->
      advance st;
      Star atom
  | Some '+' ->
      advance st;
      Plus atom
  | Some '?' ->
      advance st;
      Opt atom
  | _ -> atom

and parse_atom st =
  match peek st with
  | None -> raise (Bad_pattern "expected atom")
  | Some '(' ->
      advance st;
      st.groups <- st.groups + 1;
      let idx = st.groups in
      let inner = parse_alt st in
      (match peek st with
      | Some ')' -> advance st
      | _ -> raise (Bad_pattern "unbalanced parenthesis"));
      Group (idx, inner)
  | Some '[' ->
      advance st;
      parse_char_class st
  | Some '.' ->
      advance st;
      Any
  | Some '^' ->
      advance st;
      Bol
  | Some '$' ->
      advance st;
      Eol
  | Some '\\' -> (
      advance st;
      match peek st with
      | None -> raise (Bad_pattern "trailing backslash")
      | Some e -> (
          advance st;
          match escape_class e with
          | Some (pred, desc) -> Class (pred, desc)
          | None -> (
              match e with
              | 'n' -> Char '\n'
              | 't' -> Char '\t'
              | e -> Char e)))
  | Some ('*' | '+' | '?') -> raise (Bad_pattern "repetition of nothing")
  | Some ')' -> Empty
  | Some c ->
      advance st;
      Char c

let compile src =
  let st = { pat = src; pos = 0; groups = 0 } in
  let ast = parse_alt st in
  if st.pos <> String.length src then raise (Bad_pattern "trailing characters");
  { ast; n_groups = st.groups; src }

let source t = t.src

(* -- matcher ------------------------------------------------------------------ *)

type match_result = {
  start_pos : int;
  end_pos : int;
  groups : (int * int) option array;
}

let steps = ref 0
let steps_of_last_search () = !steps

(* Backtracking with a success continuation; groups recorded in a mutable
   array with undo on failure. *)
let match_at t subject start =
  let n = String.length subject in
  let groups = Array.make (max 1 t.n_groups) None in
  let rec go node pos (k : int -> bool) =
    incr steps;
    match node with
    | Empty -> k pos
    | Char c -> pos < n && subject.[pos] = c && k (pos + 1)
    | Any -> pos < n && k (pos + 1)
    | Class (pred, _) -> pos < n && pred subject.[pos] && k (pos + 1)
    | Bol -> (pos = 0 || subject.[pos - 1] = '\n') && k pos
    | Eol -> (pos = n || subject.[pos] = '\n') && k pos
    | Seq items ->
        let rec seq items pos =
          match items with [] -> k pos | x :: rest -> go x pos (fun p -> seq rest p)
        in
        seq items pos
    | Alt (a, b) -> go a pos k || go b pos k
    | Opt a -> go a pos k || k pos
    | Star a ->
        (* greedy: longest first; guard against empty-match loops *)
        let rec star pos =
          go a pos (fun p -> p > pos && star p) || k pos
        in
        star pos
    | Plus a -> go a pos (fun p ->
        let rec star pos =
          go a pos (fun p -> p > pos && star p) || k pos
        in
        star p)
    | Group (idx, inner) ->
        let saved = groups.(idx - 1) in
        go inner pos (fun p ->
            groups.(idx - 1) <- Some (pos, p);
            k p || begin
              groups.(idx - 1) <- saved;
              false
            end)
  in
  let end_pos = ref (-1) in
  if
    go t.ast start (fun p ->
        end_pos := p;
        true)
  then Some { start_pos = start; end_pos = !end_pos; groups }
  else None

let search t subject =
  steps := 0;
  let n = String.length subject in
  let rec try_from i = if i > n then None
    else begin
      match match_at t subject i with
      | Some m -> Some m
      | None -> try_from (i + 1)
    end
  in
  try_from 0

let matches t subject = search t subject <> None

let group m subject i =
  if i < 1 || i > Array.length m.groups then None
  else begin
    match m.groups.(i - 1) with
    | Some (s, e) -> Some (String.sub subject s (e - s))
    | None -> None
  end

let replace_first t subject ~template =
  match search t subject with
  | None -> None
  | Some m ->
      let buf = Buffer.create (String.length subject) in
      Buffer.add_string buf (String.sub subject 0 m.start_pos);
      let n = String.length template in
      let i = ref 0 in
      while !i < n do
        let c = template.[!i] in
        if c = '$' && !i + 1 < n && template.[!i + 1] >= '1' && template.[!i + 1] <= '9'
        then begin
          let g = Char.code template.[!i + 1] - Char.code '0' in
          (match group m subject g with
          | Some text -> Buffer.add_string buf text
          | None -> ());
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      Buffer.add_string buf (String.sub subject m.end_pos (String.length subject - m.end_pos));
      Some (Buffer.contents buf)
