(** Arbitrary-precision natural numbers over the instrumented heap.

    This is the allocation substrate of the {!Cfrac} workload, standing in
    for the multi-precision arithmetic package of the original CFRAC
    program.  Every bignum value is a simulated heap object (allocated
    through a [bn_new] → [xmalloc] wrapper stack, sized like a C struct:
    an 8-byte header plus 4 bytes per limb), every limb access counts as a
    heap reference, and every arithmetic routine runs in its own stack
    frame — so the arithmetic produces exactly the kind of torrent of tiny,
    mostly short-lived, site-labelled objects the paper measured in CFRAC.

    Values are immutable; operations return freshly allocated results.
    Temporaries must be released explicitly with {!release} (the original
    program manages memory explicitly too).  Numbers are natural (≥ 0);
    subtraction of a larger number from a smaller raises. *)

type ctx
(** Arithmetic context: the runtime, wrapper layers, and frame ids. *)

type t
(** A bignum: an immutable limb vector plus its heap handle. *)

val make_ctx : Lp_ialloc.Runtime.t -> ctx

val of_int : ctx -> int -> t
(** @raise Invalid_argument on a negative argument. *)

val of_string : ctx -> string -> t
(** Parse a decimal string.
    @raise Invalid_argument on a malformed string. *)

val to_string : ctx -> t -> string
(** Decimal rendering (allocates and releases temporaries). *)

val to_int : t -> int option
(** [Some n] if the value fits in an OCaml [int]. *)

val release : ctx -> t -> unit
(** Free the underlying heap object.  Using [t] afterwards is an error
    (detected by the runtime). *)

val copy : ctx -> t -> t

val compare : ctx -> t -> t -> int
val equal : ctx -> t -> t -> bool
val is_zero : t -> bool

val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : ctx -> t -> t -> t

val divmod : ctx -> t -> t -> t * t
(** [(quotient, remainder)] by Knuth's Algorithm D.
    @raise Division_by_zero on a zero divisor. *)

val rem : ctx -> t -> t -> t

val mul_small : ctx -> t -> int -> t
val add_small : ctx -> t -> int -> t

val divmod_small : ctx -> t -> int -> t * int
(** Divide by a machine-word divisor; the remainder needs no allocation.
    @raise Division_by_zero on a zero divisor. *)

val rem_small : ctx -> t -> int -> int
(** Remainder by a machine-word divisor, computed without allocating.
    @raise Division_by_zero on a zero divisor. *)

val isqrt : ctx -> t -> t
(** Integer square root (largest [r] with [r*r <= n]), by Newton's method. *)

val gcd : ctx -> t -> t -> t
(** Euclid's algorithm; releases its own temporaries. *)

val mul_mod : ctx -> t -> t -> t -> t
(** [mul_mod ctx a b m] is [(a * b) mod m]. *)

val num_limbs : t -> int
(** Limb count — proportional to the simulated object size. *)
