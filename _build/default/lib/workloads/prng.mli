(** Deterministic pseudo-random numbers (SplitMix64).

    Every workload derives all of its randomness from one of these
    generators seeded from the input-set name, so a given (program, input)
    pair always produces the identical allocation trace.  Determinism is
    what makes self prediction exact (train and test on the same input see
    the same events) and makes every experiment repeatable. *)

type t

val create : seed:int64 -> t

val of_string : string -> t
(** Seed from a string (FNV-1a hash of the bytes). *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.
    @raise Invalid_argument on an empty array. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p]) trial;
    mean (1-p)/p.  Used for bursty allocation patterns. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)
