(* Executive of the mini-PostScript interpreter: operand stack, dictionary
   stack, and operator set sufficient for document rendering. *)

module Rt = Lp_ialloc.Runtime
open Ps_object

type t = {
  rt : Rt.t;
  mutable ostack : Ps_object.t list;
  mutable dstack : dict list;  (* innermost first; last is systemdict *)
  gfx : Ps_graphics.t;
  dict_wrapper : Xalloc.t;
  node_wrapper : Xalloc.t;
  arr_wrapper : Xalloc.t;
  str_wrapper : Xalloc.t;
  f_exec : Lp_callchain.Func.id;
  f_op : Lp_callchain.Func.id;
  op_frames : (string, Lp_callchain.Func.id) Hashtbl.t;
  fonts : (string, dict) Hashtbl.t;
  glyph_cache_wrapper : Xalloc.t;
  cached_font_sizes : (string, unit) Hashtbl.t;
  mutable pages : int;
}

let op_groups =
  [
    ("op_stack", [ "dup"; "pop"; "exch"; "copy"; "index"; "roll"; "clear"; "count" ]);
    ("op_arith",
     [ "add"; "sub"; "mul"; "div"; "idiv"; "mod"; "neg"; "abs"; "sqrt"; "round";
       "truncate" ]);
    ("op_compare", [ "eq"; "ne"; "gt"; "lt"; "ge"; "le"; "and"; "or"; "not" ]);
    ("op_control", [ "if"; "ifelse"; "for"; "repeat"; "loop"; "exit"; "exec" ]);
    ("op_dict", [ "dict"; "def"; "begin"; "end"; "load"; "known"; "bind" ]);
    ("op_array", [ "array"; "length"; "get"; "put"; "aload"; "forall" ]);
    ("op_string", [ "string"; "cvs"; "stringwidth" ]);
    ("op_path",
     [ "newpath"; "moveto"; "lineto"; "rlineto"; "rmoveto"; "curveto"; "closepath" ]);
    ("op_paint", [ "fill"; "stroke"; "show"; "showpage" ]);
    ("op_gstate",
     [ "gsave"; "grestore"; "translate"; "setgray"; "setlinewidth"; "findfont";
       "scalefont"; "setfont"; "currentpoint" ]);
  ]

exception Exit_loop

let create rt =
  let dict_wrapper = Xalloc.create rt ~layers:[ "ps_dict"; "vm_alloc" ] in
  let node_wrapper = Xalloc.create rt ~layers:[ "dict_node"; "vm_alloc" ] in
  let op_frames = Hashtbl.create 64 in
  List.iter
    (fun (group, ops) ->
      let frame = Rt.func rt group in
      List.iter (fun op -> Hashtbl.replace op_frames op frame) ops)
    op_groups;
  let systemdict = dict_create rt dict_wrapper node_wrapper ~capacity:128 in
  List.iter
    (fun (_, ops) -> List.iter (fun op -> dict_put systemdict op (Op op)) ops)
    op_groups;
  dict_put systemdict "true" (Bool true);
  dict_put systemdict "false" (Bool false);
  dict_put systemdict "null" Null;
  let userdict = dict_create rt dict_wrapper node_wrapper ~capacity:64 in
  (* Long-lived VM structures: the page device raster (612 x 792 bytes),
     the halftone/pattern cache, and the name table.  These dominate the
     live heap, giving GHOST the large-footprint profile the paper measured
     (Table 2: GHOST's maximum live bytes dwarf the other programs'). *)
  let device_wrapper = Xalloc.create rt ~layers:[ "open_device"; "vm_alloc" ] in
  let device = Xalloc.alloc device_wrapper ~size:(612 * 792) in
  Rt.touch rt device 512;
  let pattern_cache = Xalloc.alloc device_wrapper ~size:65536 in
  Rt.touch rt pattern_cache 64;
  let name_table = Xalloc.alloc device_wrapper ~size:32768 in
  Rt.touch rt name_table 64;
  {
    rt;
    ostack = [];
    dstack = [ userdict; systemdict ];
    gfx = Ps_graphics.create rt;
    dict_wrapper;
    node_wrapper;
    arr_wrapper = Xalloc.create rt ~layers:[ "ps_array"; "vm_alloc" ];
    str_wrapper = Xalloc.create rt ~layers:[ "ps_string"; "vm_alloc" ];
    f_exec = Rt.func rt "ps_exec";
    f_op = Rt.func rt "ps_op";
    op_frames;
    fonts = Hashtbl.create 8;
    glyph_cache_wrapper = Xalloc.create rt ~layers:[ "load_glyphs"; "vm_alloc" ];
    cached_font_sizes = Hashtbl.create 8;
    pages = 0;
  }

(* -- stack ------------------------------------------------------------------ *)

let push t o = t.ostack <- o :: t.ostack

let pop t =
  match t.ostack with
  | [] -> err "stackunderflow"
  | o :: rest ->
      t.ostack <- rest;
      o

let pop_num t = to_real (pop t)
let pop_int t = to_int (pop t)

let pop_point t =
  let y = pop_num t in
  let x = pop_num t in
  ({ Ps_graphics.x; y }, (x, y))

let lookup t name =
  let rec go = function
    | [] -> err "undefined: %s" name
    | d :: rest -> ( match dict_find d name with Some o -> o | None -> go rest)
  in
  go t.dstack

let alloc_arr t elems =
  let a_handle = Xalloc.alloc t.arr_wrapper ~size:(16 + (8 * max 1 (Array.length elems))) in
  Rt.touch t.rt a_handle (1 + Array.length elems);
  { elems; a_handle }

let alloc_str t bytes =
  let s_handle = Xalloc.alloc t.str_wrapper ~size:(16 + Bytes.length bytes) in
  Rt.touch t.rt s_handle (1 + (Bytes.length bytes / 8));
  { bytes; s_handle }

(* -- execution ---------------------------------------------------------------- *)

let rec execute t (o : Ps_object.t) =
  Rt.in_frame t.rt t.f_exec (fun () ->
      Rt.instructions t.rt 6;
      Rt.non_heap_refs t.rt 3;
      match o with
      | Int _ | Real _ | Bool _ | Null | Mark | Lit_name _ | Str _ | Arr _ | Dict _ ->
          push t o
      | Proc _ -> push t o (* procs execute only via names/control operators *)
      | Name name -> (
          match lookup t name with
          | Proc a -> run_proc t a
          | Op op -> apply t op
          | other -> push t other)
      | Op op -> apply t op)

and run_proc t (a : arr) =
  Rt.touch t.rt a.a_handle 1;
  Array.iter (fun o -> execute t o) a.elems

and exec_obj t = function
  | Proc a -> run_proc t a
  | Op op -> apply t op
  | Name n -> execute t (Name n)
  | other -> push t other

and apply t op =
  let frame =
    match Hashtbl.find_opt t.op_frames op with Some f -> f | None -> t.f_op
  in
  Rt.in_frame t.rt frame (fun () ->
      Rt.instructions t.rt 5;
      match op with
      (* stack *)
      | "dup" ->
          let o = pop t in
          push t o;
          push t o
      | "pop" -> ignore (pop t : Ps_object.t)
      | "exch" ->
          let b = pop t and a = pop t in
          push t b;
          push t a
      | "copy" ->
          let n = pop_int t in
          let top = List.filteri (fun i _ -> i < n) t.ostack in
          t.ostack <- List.rev_append (List.rev top) t.ostack
      | "index" ->
          let n = pop_int t in
          (match List.nth_opt t.ostack n with
          | Some o -> push t o
          | None -> err "stackunderflow: index")
      | "roll" ->
          let j = pop_int t in
          let n = pop_int t in
          if n < 0 || n > List.length t.ostack then err "rangecheck: roll";
          if n > 0 then begin
            let top = List.filteri (fun i _ -> i < n) t.ostack in
            let rest = List.filteri (fun i _ -> i >= n) t.ostack in
            let j = ((j mod n) + n) mod n in
            (* roll by j: top of stack is element 0 *)
            let arr = Array.of_list top in
            let rolled = Array.init n (fun i -> arr.((i + n - j) mod n)) in
            t.ostack <- Array.to_list rolled @ rest
          end
      | "clear" -> t.ostack <- []
      | "count" -> push t (Int (List.length t.ostack))
      (* arithmetic *)
      | "add" ->
          let b = pop t and a = pop t in
          (match (a, b) with
          | Int a, Int b -> push t (Int (a + b))
          | _ -> push t (Real (to_real a +. to_real b)))
      | "sub" ->
          let b = pop t and a = pop t in
          (match (a, b) with
          | Int a, Int b -> push t (Int (a - b))
          | _ -> push t (Real (to_real a -. to_real b)))
      | "mul" ->
          let b = pop t and a = pop t in
          (match (a, b) with
          | Int a, Int b -> push t (Int (a * b))
          | _ -> push t (Real (to_real a *. to_real b)))
      | "div" ->
          let b = pop_num t and a = pop_num t in
          push t (Real (a /. b))
      | "idiv" ->
          let b = pop_int t and a = pop_int t in
          if b = 0 then err "undefinedresult: idiv";
          push t (Int (a / b))
      | "mod" ->
          let b = pop_int t and a = pop_int t in
          if b = 0 then err "undefinedresult: mod";
          push t (Int (a mod b))
      | "neg" -> (
          match pop t with
          | Int i -> push t (Int (-i))
          | o -> push t (Real (-.to_real o)))
      | "abs" -> (
          match pop t with
          | Int i -> push t (Int (abs i))
          | o -> push t (Real (Float.abs (to_real o))))
      | "sqrt" -> push t (Real (sqrt (pop_num t)))
      | "round" -> push t (Int (int_of_float (Float.round (pop_num t))))
      | "truncate" -> push t (Int (int_of_float (pop_num t)))
      (* comparison / logic *)
      | "eq" | "ne" | "gt" | "lt" | "ge" | "le" ->
          let b = pop t and a = pop t in
          let c =
            match (a, b) with
            | Str a, Str b -> Stdlib.compare (Bytes.to_string a.bytes) (Bytes.to_string b.bytes)
            | (Lit_name a | Name a), (Lit_name b | Name b) -> Stdlib.compare a b
            | _ -> Float.compare (to_real a) (to_real b)
          in
          let r =
            match op with
            | "eq" -> c = 0
            | "ne" -> c <> 0
            | "gt" -> c > 0
            | "lt" -> c < 0
            | "ge" -> c >= 0
            | _ -> c <= 0
          in
          push t (Bool r)
      | "and" | "or" -> (
          let b = pop t and a = pop t in
          match (a, b) with
          | Bool a, Bool b -> push t (Bool (if op = "and" then a && b else a || b))
          | Int a, Int b -> push t (Int (if op = "and" then a land b else a lor b))
          | _ -> err "typecheck: %s" op)
      | "not" -> (
          match pop t with
          | Bool b -> push t (Bool (not b))
          | Int i -> push t (Int (lnot i))
          | o -> err "typecheck: not %s" (type_name o))
      (* control *)
      | "if" -> (
          let proc = pop t in
          let cond = pop t in
          match cond with
          | Bool true -> exec_obj t proc
          | Bool false -> ()
          | o -> err "typecheck: if needs bool, got %s" (type_name o))
      | "ifelse" -> (
          let pelse = pop t in
          let pthen = pop t in
          match pop t with
          | Bool true -> exec_obj t pthen
          | Bool false -> exec_obj t pelse
          | o -> err "typecheck: ifelse needs bool, got %s" (type_name o))
      | "for" -> (
          let proc = pop t in
          let limit = pop_num t in
          let step = pop_num t in
          let init = pop_num t in
          try
            let i = ref init in
            while (step >= 0. && !i <= limit) || (step < 0. && !i >= limit) do
              if Float.is_integer !i then push t (Int (int_of_float !i))
              else push t (Real !i);
              exec_obj t proc;
              i := !i +. step
            done
          with Exit_loop -> ())
      | "repeat" -> (
          let proc = pop t in
          let n = pop_int t in
          try
            for _ = 1 to n do
              exec_obj t proc
            done
          with Exit_loop -> ())
      | "loop" -> (
          let proc = pop t in
          try
            while true do
              exec_obj t proc
            done
          with Exit_loop -> ())
      | "exit" -> raise Exit_loop
      | "exec" -> exec_obj t (pop t)
      (* dictionaries *)
      | "dict" ->
          let n = pop_int t in
          push t (Dict (dict_create t.rt t.dict_wrapper t.node_wrapper ~capacity:(max 1 n)))
      | "def" -> (
          let v = pop t in
          match pop t with
          | Lit_name key -> (
              match t.dstack with
              | d :: _ -> dict_put d key v
              | [] -> err "dictstackunderflow")
          | o -> err "typecheck: def key is %s" (type_name o))
      | "begin" -> (
          match pop t with
          | Dict d -> t.dstack <- d :: t.dstack
          | o -> err "typecheck: begin needs dict, got %s" (type_name o))
      | "end" -> (
          match t.dstack with
          | _ :: (_ :: _ as rest) -> t.dstack <- rest
          | _ -> err "dictstackunderflow: end")
      | "load" -> (
          match pop t with
          | Lit_name key -> push t (lookup t key)
          | o -> err "typecheck: load needs name, got %s" (type_name o))
      | "known" -> (
          let key = pop t in
          match (pop t, key) with
          | Dict d, Lit_name key -> push t (Bool (dict_find d key <> None))
          | _ -> err "typecheck: known")
      | "bind" -> () (* name resolution stays dynamic in this mini VM *)
      (* arrays *)
      | "array" ->
          let n = pop_int t in
          push t (Arr (alloc_arr t (Array.make n Null)))
      | "length" -> (
          match pop t with
          | Arr a | Proc a -> push t (Int (Array.length a.elems))
          | Str s -> push t (Int (Bytes.length s.bytes))
          | Dict d -> push t (Int (Hashtbl.length d.tbl))
          | o -> err "typecheck: length of %s" (type_name o))
      | "get" -> (
          let i = pop t in
          match (pop t, i) with
          | Arr a, Int i ->
              Rt.touch t.rt a.a_handle 1;
              if i < 0 || i >= Array.length a.elems then err "rangecheck: get";
              push t a.elems.(i)
          | Str s, Int i ->
              Rt.touch t.rt s.s_handle 1;
              if i < 0 || i >= Bytes.length s.bytes then err "rangecheck: get";
              push t (Int (Char.code (Bytes.get s.bytes i)))
          | Dict d, Lit_name key -> (
              match dict_find d key with
              | Some v -> push t v
              | None -> err "undefined: %s" key)
          | o, _ -> err "typecheck: get from %s" (type_name o))
      | "put" -> (
          let v = pop t in
          let i = pop t in
          match (pop t, i) with
          | Arr a, Int i ->
              Rt.touch t.rt a.a_handle 1;
              if i < 0 || i >= Array.length a.elems then err "rangecheck: put";
              a.elems.(i) <- v
          | Str s, Int i ->
              Rt.touch t.rt s.s_handle 1;
              if i < 0 || i >= Bytes.length s.bytes then err "rangecheck: put";
              Bytes.set s.bytes i (Char.chr (to_int v land 0xff))
          | Dict d, Lit_name key -> dict_put d key v
          | o, _ -> err "typecheck: put into %s" (type_name o))
      | "aload" -> (
          match pop t with
          | Arr a ->
              Rt.touch t.rt a.a_handle (Array.length a.elems);
              Array.iter (push t) a.elems;
              push t (Arr a)
          | o -> err "typecheck: aload of %s" (type_name o))
      | "forall" -> (
          let proc = pop t in
          match pop t with
          | Arr a -> (
              try
                Array.iter
                  (fun o ->
                    push t o;
                    exec_obj t proc)
                  a.elems
              with Exit_loop -> ())
          | Str s -> (
              try
                Bytes.iter
                  (fun c ->
                    push t (Int (Char.code c));
                    exec_obj t proc)
                  s.bytes
              with Exit_loop -> ())
          | o -> err "typecheck: forall of %s" (type_name o))
      (* strings *)
      | "string" ->
          let n = pop_int t in
          push t (Str (alloc_str t (Bytes.make n '\000')))
      | "cvs" -> (
          let s = pop t in
          let v = pop t in
          let text =
            match v with
            | Int i -> string_of_int i
            | Real f -> Printf.sprintf "%g" f
            | Bool b -> string_of_bool b
            | Lit_name n | Name n -> n
            | _ -> "--nostringval--"
          in
          match s with
          | Str s ->
              let n = min (String.length text) (Bytes.length s.bytes) in
              Bytes.blit_string text 0 s.bytes 0 n;
              Rt.touch t.rt s.s_handle (1 + (n / 8));
              Rt.free t.rt s.s_handle;
              push t (Str (alloc_str t (Bytes.of_string (String.sub text 0 n))))
          | o -> err "typecheck: cvs into %s" (type_name o))
      | "stringwidth" -> (
          match pop t with
          | Str s ->
              let w =
                0.6 *. t.gfx.Ps_graphics.font_size *. float_of_int (Bytes.length s.bytes)
              in
              push t (Real w);
              push t (Real 0.)
          | o -> err "typecheck: stringwidth of %s" (type_name o))
      (* path *)
      | "newpath" -> Ps_graphics.newpath t.gfx
      | "moveto" ->
          let p, _ = pop_point t in
          Ps_graphics.moveto t.gfx p
      | "lineto" ->
          let p, _ = pop_point t in
          Ps_graphics.lineto t.gfx p
      | "rlineto" ->
          let _, d = pop_point t in
          Ps_graphics.rlineto t.gfx d
      | "rmoveto" ->
          let _, d = pop_point t in
          Ps_graphics.rmoveto t.gfx d
      | "curveto" ->
          let p3, _ = pop_point t in
          let p2, _ = pop_point t in
          let p1, _ = pop_point t in
          Ps_graphics.curveto t.gfx p1 p2 p3
      | "closepath" -> Ps_graphics.closepath t.gfx
      (* painting *)
      | "fill" -> Ps_graphics.fill t.gfx
      | "stroke" -> Ps_graphics.stroke t.gfx
      | "show" -> (
          match pop t with
          | Str s ->
              Rt.touch t.rt s.s_handle (1 + (Bytes.length s.bytes / 8));
              Ps_graphics.show t.gfx (Bytes.to_string s.bytes);
              (* page text is consumed linearly; a real VM reclaims it at
                 the enclosing restore -- we reclaim on consumption *)
              Rt.free t.rt s.s_handle
          | o -> err "typecheck: show of %s" (type_name o))
      | "showpage" ->
          t.pages <- t.pages + 1;
          Ps_graphics.showpage t.gfx
      (* graphics state *)
      | "gsave" -> Ps_graphics.gsave t.gfx
      | "grestore" -> Ps_graphics.grestore t.gfx
      | "translate" ->
          let _, d = pop_point t in
          Ps_graphics.translate t.gfx d
      | "setgray" -> t.gfx.Ps_graphics.gray <- pop_num t
      | "setlinewidth" -> t.gfx.Ps_graphics.line_width <- pop_num t
      | "findfont" -> (
          match pop t with
          | Lit_name name ->
              let font =
                match Hashtbl.find_opt t.fonts name with
                | Some d -> d
                | None ->
                    let d = dict_create t.rt t.dict_wrapper t.node_wrapper ~capacity:8 in
                    dict_put d "FontName" (Lit_name name);
                    dict_put d "FontSize" (Real 1.);
                    Hashtbl.replace t.fonts name d;
                    d
              in
              push t (Dict font)
          | o -> err "typecheck: findfont of %s" (type_name o))
      | "scalefont" -> (
          let size = pop_num t in
          match pop t with
          | Dict base ->
              (* a scaled font is a fresh (shortish-lived) dict *)
              let d = dict_create t.rt t.dict_wrapper t.node_wrapper ~capacity:8 in
              (match dict_find base "FontName" with
              | Some n -> dict_put d "FontName" n
              | None -> ());
              dict_put d "FontSize" (Real size);
              push t (Dict d)
          | o -> err "typecheck: scalefont of %s" (type_name o))
      | "setfont" -> (
          match pop t with
          | Dict d ->
              (match dict_find d "FontSize" with
              | Some s -> t.gfx.Ps_graphics.font_size <- to_real s
              | None -> ());
              (* First use of a (font, size) pair warms the glyph cache: a
                 long-lived bitmap-budget chunk, like GhostScript's character
                 cache. *)
              let key =
                Printf.sprintf "%s@%g"
                  (match dict_find d "FontName" with
                  | Some (Lit_name n) -> n
                  | _ -> "?")
                  t.gfx.Ps_graphics.font_size
              in
              if not (Hashtbl.mem t.cached_font_sizes key) then begin
                Hashtbl.replace t.cached_font_sizes key ();
                let chunk = Xalloc.alloc t.glyph_cache_wrapper ~size:24576 in
                Rt.touch t.rt chunk 128
              end
          | o -> err "typecheck: setfont of %s" (type_name o))
      | "currentpoint" -> (
          match t.gfx.Ps_graphics.current with
          | Some p ->
              push t (Real (p.Ps_graphics.x -. t.gfx.Ps_graphics.tx));
              push t (Real (p.Ps_graphics.y -. t.gfx.Ps_graphics.ty))
          | None -> err "nocurrentpoint: currentpoint")
      | other -> err "undefined operator: %s" other)

(* -- program scanning / top level --------------------------------------------- *)

let rec scan_proc t scanner : arr =
  let items = ref [] in
  let rec loop () =
    let tok, cell = Ps_scanner.next scanner in
    Option.iter (fun h -> Rt.free t.rt h) cell;
    match tok with
    | Ps_scanner.TProc_close -> ()
    | TProc_open ->
        items := Proc (scan_proc t scanner) :: !items;
        loop ()
    | TObj o ->
        items := o :: !items;
        loop ()
    | TArr_open | TArr_close -> err "syntaxerror: bad token in procedure"
    | TEof -> err "syntaxerror: unterminated procedure"
  in
  loop ();
  alloc_arr t (Array.of_list (List.rev !items))

let run t source =
  let scanner = Ps_scanner.create t.rt source in
  let f_main = Rt.func t.rt "ps_interpret" in
  Rt.in_frame t.rt f_main (fun () ->
      let rec loop () =
        let tok, cell = Ps_scanner.next scanner in
        Option.iter (fun h -> Rt.free t.rt h) cell;
        match tok with
        | Ps_scanner.TEof -> ()
        | TProc_open ->
            push t (Proc (scan_proc t scanner));
            loop ()
        | TProc_close -> err "syntaxerror: unmatched }"
        | TArr_open ->
            push t Mark;
            loop ()
        | TArr_close ->
            let rec collect acc =
              match pop t with
              | Mark -> acc
              | o -> collect (o :: acc)
            in
            push t (Arr (alloc_arr t (Array.of_list (collect []))));
            loop ()
        | TObj o ->
            execute t o;
            loop ()
      in
      loop ();
      Ps_graphics.finish t.gfx)

let pages t = t.pages
let bands_painted t = t.gfx.Ps_graphics.bands_painted
