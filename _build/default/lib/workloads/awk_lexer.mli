(** Lexer for the mini-AWK language.

    Newlines are significant in AWK (they terminate statements), so the
    lexer emits {!token.NEWLINE} tokens rather than swallowing them;
    the parser decides where they act as terminators.  Comments ([#] to end
    of line) and blank continuation after [{], [&&] etc. are handled here. *)

type token =
  | NUMBER of float
  | STRING of string
  | IDENT of string
  | BEGIN
  | END_KW
  | IF
  | ELSE
  | WHILE
  | FOR
  | IN
  | DO
  | BREAK
  | CONTINUE
  | NEXT
  | DELETE
  | FUNCTION
  | RETURN
  | PRINT
  | PRINTF
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | NEWLINE
  | COMMA
  | ASSIGN
  | ADD_ASSIGN
  | SUB_ASSIGN
  | MUL_ASSIGN
  | DIV_ASSIGN
  | MOD_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AND
  | OR
  | NOT
  | INCR
  | DECR
  | DOLLAR
  | QUESTION
  | COLON
  | ERE of string  (** /regex/ literal *)
  | MATCH  (** ~ *)
  | NOMATCH  (** !~ *)
  | EOF

exception Lex_error of string * int
(** (message, byte offset) *)

val tokenize : string -> token array
(** Tokenize a whole script.  The result always ends with {!token.EOF}.
    Newlines immediately following [{], [,], [&&], [||], [else], [do] or
    another newline are dropped, implementing AWK's line-continuation
    rules in the simplest way that keeps realistic scripts parseable.

    @raise Lex_error on an unterminated string or an unexpected byte. *)

val token_to_string : token -> string
