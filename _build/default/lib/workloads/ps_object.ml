(* Object model of the mini-PostScript interpreter (the GHOST workload).

   Scalars (integers, reals, booleans, names, marks) are immediate values;
   composite objects — strings, arrays, procedures, dictionaries — own a
   simulated heap allocation, as they do in a real PostScript VM.  The
   interpreter frees composites when their VM lifetime ends (token cells
   when consumed, paths at newpath/showpage, band buffers after painting,
   save states at grestore); dictionaries installed in the dict stack
   persist, forming the long-lived population. *)

module Rt = Lp_ialloc.Runtime

type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Null
  | Mark
  | Name of string  (* executable name: looked up when executed *)
  | Lit_name of string  (* /name: pushed as data *)
  | Str of str
  | Arr of arr
  | Proc of arr  (* executable array *)
  | Dict of dict
  | Op of string  (* built-in operator *)

and str = { mutable bytes : Bytes.t; s_handle : Rt.handle }
and arr = { mutable elems : t array; a_handle : Rt.handle }

and dict = {
  tbl : (string, t) Hashtbl.t;
  d_handle : Rt.handle;
  node_wrapper : Xalloc.t;
  rt : Rt.t;
  mutable nodes : (string, Rt.handle) Hashtbl.t;
}

exception Ps_error of string

let type_name = function
  | Int _ -> "integertype"
  | Real _ -> "realtype"
  | Bool _ -> "booleantype"
  | Null -> "nulltype"
  | Mark -> "marktype"
  | Name _ | Lit_name _ -> "nametype"
  | Str _ -> "stringtype"
  | Arr _ -> "arraytype"
  | Proc _ -> "packedarraytype"
  | Dict _ -> "dicttype"
  | Op _ -> "operatortype"

let err fmt = Printf.ksprintf (fun s -> raise (Ps_error s)) fmt

let to_real = function
  | Int i -> float_of_int i
  | Real f -> f
  | o -> err "typecheck: expected number, got %s" (type_name o)

let to_int = function
  | Int i -> i
  | Real f -> int_of_float f
  | o -> err "typecheck: expected integer, got %s" (type_name o)

(* Dictionary entries allocate hash nodes, like the string/value pair
   storage inside a PostScript VM's dict implementation. *)
let dict_create rt wrapper node_wrapper ~capacity =
  let d_handle = Xalloc.alloc wrapper ~size:(32 + (16 * capacity)) in
  Rt.touch rt d_handle 2;
  {
    tbl = Hashtbl.create capacity;
    d_handle;
    node_wrapper;
    rt;
    nodes = Hashtbl.create capacity;
  }

let dict_put d key v =
  Rt.touch d.rt d.d_handle 1;
  if not (Hashtbl.mem d.nodes key) then begin
    let node = Xalloc.alloc d.node_wrapper ~size:(24 + String.length key) in
    Rt.touch d.rt node 2;
    Hashtbl.replace d.nodes key node
  end;
  Hashtbl.replace d.tbl key v

let dict_find d key =
  Rt.touch d.rt d.d_handle 1;
  Hashtbl.find_opt d.tbl key

let dict_free d =
  Hashtbl.iter (fun _ node -> Rt.free d.rt node) d.nodes;
  Hashtbl.reset d.nodes;
  Rt.free d.rt d.d_handle
