module Rt = Lp_ialloc.Runtime

(* Two bits per variable packed into an int array, 31 variables per word so
   the bit pair never straddles a word.  Bit layout per variable: bit0 set =
   "can be 0", bit1 set = "can be 1". *)
let vars_per_word = 31

type ctx = {
  rt : Rt.t;
  n_vars : int;
  words : int;
  wrapper : Xalloc.t;  (* new_cube -> cube_alloc -> xmalloc *)
  cover_wrapper : Xalloc.t;  (* new_cover -> xmalloc *)
  f_taut : Lp_callchain.Func.id;
  f_compl : Lp_callchain.Func.id;
  f_cof : Lp_callchain.Func.id;
  f_setops : Lp_callchain.Func.id;
}

type t = { bits : int array; handle : Rt.handle }
type cover = t list

let make_ctx rt ~n_vars =
  if n_vars <= 0 then invalid_arg "Cube.make_ctx: need at least one variable";
  {
    rt;
    n_vars;
    words = ((n_vars - 1) / vars_per_word) + 1;
    wrapper = Xalloc.create rt ~layers:[ "new_cube"; "cube_alloc"; "xmalloc" ];
    cover_wrapper = Xalloc.create rt ~layers:[ "new_cover"; "xmalloc" ];
    f_taut = Rt.func rt "tautology";
    f_compl = Rt.func rt "complement";
    f_cof = Rt.func rt "cofactor";
    f_setops = Rt.func rt "cube_setops";
  }

let n_vars ctx = ctx.n_vars

(* Simulated C size: header + 2 bits per variable, rounded to bytes. *)
let obj_size ctx = 8 + (((2 * ctx.n_vars) + 7) / 8)

let birth ctx bits =
  let handle = Xalloc.alloc ctx.wrapper ~size:(obj_size ctx) in
  Rt.touch ctx.rt handle (Array.length bits);
  { bits; handle }

let release ctx t = Rt.free ctx.rt t.handle
let release_cover ctx cover = List.iter (release ctx) cover
let copy ctx t = birth ctx (Array.copy t.bits)

let full_word n_vars_in_word = (1 lsl (2 * n_vars_in_word)) - 1

let universe_bits ctx =
  Array.init ctx.words (fun w ->
      let lo = w * vars_per_word in
      let n = min vars_per_word (ctx.n_vars - lo) in
      full_word n)

let universe ctx = birth ctx (universe_bits ctx)

let pos v = (v / vars_per_word, 2 * (v mod vars_per_word))

let get t v =
  let w, b = pos v in
  match (t.bits.(w) lsr b) land 3 with
  | 0 -> `Empty
  | 1 -> `Zero
  | 2 -> `One
  | _ -> `Dash

let lit_bits = function `Zero -> 1 | `One -> 2 | `Dash -> 3

let set ctx t v lit =
  let w, b = pos v in
  let bits = Array.copy t.bits in
  bits.(w) <- bits.(w) land lnot (3 lsl b) lor (lit_bits lit lsl b);
  Rt.touch ctx.rt t.handle 1;
  birth ctx bits

let of_string ctx s =
  if String.length s <> ctx.n_vars then invalid_arg "Cube.of_string: wrong length";
  let bits = Array.make ctx.words 0 in
  String.iteri
    (fun v c ->
      let w, b = pos v in
      let lit =
        match c with
        | '0' -> 1
        | '1' -> 2
        | '-' -> 3
        | _ -> invalid_arg "Cube.of_string: expected 0, 1 or -"
      in
      bits.(w) <- bits.(w) lor (lit lsl b))
    s;
  birth ctx bits

let to_string ctx t =
  String.init ctx.n_vars (fun v ->
      match get t v with `Zero -> '0' | `One -> '1' | `Dash -> '-' | `Empty -> 'x')

let minterm ctx m =
  let bits = Array.make ctx.words 0 in
  for v = 0 to ctx.n_vars - 1 do
    let w, b = pos v in
    let lit = if (m lsr v) land 1 = 1 then 2 else 1 in
    bits.(w) <- bits.(w) lor (lit lsl b)
  done;
  birth ctx bits

(* A word has an empty variable iff some bit pair is 00.  Detect by checking
   (w | w >> 1) against the 01 mask of valid positions. *)
let word_has_empty w n_vars_in_word =
  let odd_mask =
    (* bits 0, 2, 4, ... for each valid variable *)
    let m = ref 0 in
    for i = 0 to n_vars_in_word - 1 do
      m := !m lor (1 lsl (2 * i))
    done;
    !m
  in
  (w lor (w lsr 1)) land odd_mask <> odd_mask

let is_empty ctx t =
  let empty = ref false in
  for w = 0 to ctx.words - 1 do
    let lo = w * vars_per_word in
    let n = min vars_per_word (ctx.n_vars - lo) in
    if word_has_empty t.bits.(w) n then empty := true
  done;
  !empty

let contains ctx a b =
  Rt.touch ctx.rt a.handle 1;
  Rt.touch ctx.rt b.handle 1;
  Rt.instructions ctx.rt (2 * Array.length a.bits);
  let n = Array.length a.bits in
  let rec go w = w = n || (a.bits.(w) lor b.bits.(w) = a.bits.(w) && go (w + 1)) in
  go 0

let intersect ctx a b =
  Rt.in_frame ctx.rt ctx.f_setops (fun () ->
      Rt.touch ctx.rt a.handle 1;
      Rt.touch ctx.rt b.handle 1;
      Rt.instructions ctx.rt (2 * ctx.words);
      let bits = Array.init ctx.words (fun w -> a.bits.(w) land b.bits.(w)) in
      let empty = ref false in
      for w = 0 to ctx.words - 1 do
        let lo = w * vars_per_word in
        let n = min vars_per_word (ctx.n_vars - lo) in
        if word_has_empty bits.(w) n then empty := true
      done;
      if !empty then None else Some (birth ctx bits))

let distance ctx a b =
  Rt.touch ctx.rt a.handle 1;
  Rt.touch ctx.rt b.handle 1;
  Rt.instructions ctx.rt (3 * ctx.words);
  let d = ref 0 in
  for w = 0 to ctx.words - 1 do
    let x = a.bits.(w) land b.bits.(w) in
    let lo = w * vars_per_word in
    let n = min vars_per_word (ctx.n_vars - lo) in
    for i = 0 to n - 1 do
      if (x lsr (2 * i)) land 3 = 0 then incr d
    done
  done;
  !d

let cofactor ctx c p =
  Rt.in_frame ctx.rt ctx.f_cof (fun () ->
      Rt.touch ctx.rt c.handle 1;
      Rt.touch ctx.rt p.handle 1;
      Rt.instructions ctx.rt (3 * ctx.words);
      (* c cofactored by p: empty if they conflict; otherwise raise to
         don't-care every variable where p is a literal. *)
      if distance ctx c p > 0 then None
      else begin
        let bits =
          Array.init ctx.words (fun w ->
              (* positions where p has a literal (01 or 10): set to 11 *)
              let lo = w * vars_per_word in
              let n = min vars_per_word (ctx.n_vars - lo) in
              let out = ref c.bits.(w) in
              for i = 0 to n - 1 do
                let pl = (p.bits.(w) lsr (2 * i)) land 3 in
                if pl = 1 || pl = 2 then out := !out lor (3 lsl (2 * i))
              done;
              !out)
        in
        Some (birth ctx bits)
      end)

(* Allocate a cover spine (the set-family header + cube-pointer array of a
   C implementation) sized for [n] cubes around [f].  Spine sizes vary with
   cover length, multiplying the allocation sites the way real espresso's
   set families do. *)
let with_workspace ctx n f =
  let h = Xalloc.alloc ctx.cover_wrapper ~size:(16 + (8 * max 1 n)) in
  Rt.touch ctx.rt h (1 + n);
  match f () with
  | result ->
      Rt.free ctx.rt h;
      result
  | exception e ->
      Rt.free ctx.rt h;
      raise e

let cofactor_cover ctx cover p =
  with_workspace ctx (List.length cover) (fun () ->
      List.filter_map (fun c -> cofactor ctx c p) cover)

let count_literals t =
  (* count positions that are 01 or 10 *)
  let n = ref 0 in
  Array.iter
    (fun w ->
      let rec go w =
        if w <> 0 then begin
          (match w land 3 with 1 | 2 -> incr n | _ -> ());
          go (w lsr 2)
        end
      in
      go w)
    t.bits;
  !n

let cover_cost cover =
  (List.length cover, List.fold_left (fun acc c -> acc + count_literals c) 0 cover)

(* Select the most binate variable of a cover: the variable appearing as a
   literal in the most cubes, preferring variables that appear in both
   phases.  Returns None when the cover is free of literals. *)
let binate_select ctx cover =
  let zeros = Array.make ctx.n_vars 0 in
  let ones = Array.make ctx.n_vars 0 in
  List.iter
    (fun c ->
      Rt.touch ctx.rt c.handle 1;
      for v = 0 to ctx.n_vars - 1 do
        match get c v with
        | `Zero -> zeros.(v) <- zeros.(v) + 1
        | `One -> ones.(v) <- ones.(v) + 1
        | _ -> ()
      done)
    cover;
  Rt.instructions ctx.rt (ctx.n_vars * List.length cover);
  let best = ref None in
  for v = 0 to ctx.n_vars - 1 do
    let z = zeros.(v) and o = ones.(v) in
    if z + o > 0 then begin
      let binate = min z o > 0 in
      let score = ((if binate then 1 lsl 20 else 0) + z + o, v) in
      match !best with
      | Some (s, _) when s >= fst score -> ()
      | _ -> best := Some (fst score, v)
    end
  done;
  Option.map snd !best

(* Each recursion level enters the [tautology] frame again, as the C
   implementation's recursive calls would; recursive-cycle elimination
   collapses these in complete chains while raw chains keep the depth. *)
let rec tautology_rec ctx cover =
  Rt.in_frame ctx.rt ctx.f_taut (fun () ->
      if List.exists (fun c -> count_literals c = 0) cover then true
      else begin
        match binate_select ctx cover with
        | None -> false (* no universal cube and no literals: cover is empty *)
        | Some v ->
            let branch lit =
              let p = universe ctx in
              let p' = set ctx p v lit in
              release ctx p;
              let cof = cofactor_cover ctx cover p' in
              release ctx p';
              let r = tautology_rec ctx cof in
              release_cover ctx cof;
              r
            in
            branch `Zero && branch `One
      end)

let is_tautology ctx cover = tautology_rec ctx cover

let covers_cube ctx f c =
  let cof = cofactor_cover ctx f c in
  let r = is_tautology ctx cof in
  release_cover ctx cof;
  r

(* Complement by the unate-recursive paradigm: complement(F) =
   x' * complement(F_x') + x * complement(F_x) on the most binate variable,
   with terminal cases for trivial covers. *)
let rec complement_rec ctx cover =
  Rt.in_frame ctx.rt ctx.f_compl (fun () ->
      if cover = [] then [ universe ctx ]
      else if List.exists (fun c -> count_literals c = 0) cover then []
      else begin
        match binate_select ctx cover with
        | None -> []
        | Some v ->
            let branch lit =
              let u = universe ctx in
              let p = set ctx u v lit in
              release ctx u;
              let cof = cofactor_cover ctx cover p in
              let comp = complement_rec ctx cof in
              release_cover ctx cof;
              (* AND the branch literal back into each complement cube. *)
              let out =
                List.filter_map
                  (fun c ->
                    let r = intersect ctx c p in
                    r)
                  comp
              in
              release_cover ctx comp;
              release ctx p;
              out
            in
            branch `Zero @ branch `One
      end)

let complement ctx cover = complement_rec ctx cover

let eval ctx f m =
  let mt = minterm ctx m in
  let hit = List.exists (fun c -> contains ctx c mt) f in
  release ctx mt;
  hit
