(** A small backtracking regular-expression engine.

    This is the PERL workload's pattern-matching substrate (Perl without
    regular expressions would not be Perl).  Supported syntax: literal
    characters, [.], character classes [[abc]], [[a-z]], [[^...]], the
    escapes [\w \d \s \W \D \S], repetition [* + ?], alternation [|],
    grouping and capture [( )], and the anchors [^ $].

    Compilation produces an immutable AST; matching is by recursive
    backtracking with capture recording.  The engine is pure OCaml with no
    instrumentation of its own — the interpreter charges the simulated
    costs and allocates the match-result objects. *)

type t
(** A compiled pattern. *)

exception Bad_pattern of string

val compile : string -> t
(** @raise Bad_pattern on malformed syntax. *)

val source : t -> string
(** The original pattern text. *)

type match_result = {
  start_pos : int;  (** offset of the match *)
  end_pos : int;  (** offset one past the match *)
  groups : (int * int) option array;  (** capture spans, group 1 at index 0 *)
}

val search : t -> string -> match_result option
(** Find the leftmost match (earliest start; at each start, the
    backtracking engine's first success). *)

val matches : t -> string -> bool

val group : match_result -> string -> int -> string option
(** [group m subject i] is the text of capture group [i] (1-based). *)

val replace_first : t -> string -> template:string -> string option
(** [replace_first re s ~template] replaces the first match with
    [template], in which [$1]..[$9] refer to capture groups.  [None] when
    there is no match. *)

val steps_of_last_search : unit -> int
(** Backtracking steps taken by the most recent search on this domain —
    used by the workload to charge simulated instructions proportional to
    the real matching work. *)
