open Perl_ast
module Rt = Lp_ialloc.Runtime

type value = VNum of float | VStr of string | VUndef

type cell = { mutable v : value; handle : Rt.handle }

type harray = { mutable cells : cell option array; mutable len : int; mutable spine : Rt.handle }

type hentry = { mutable cell : cell; node : Rt.handle }
type hhash = { tbl : (string, hentry) Hashtbl.t; h_spine : Rt.handle }

type t = {
  rt : Rt.t;
  program : program;
  subs : (string, stmt list) Hashtbl.t;
  globals : (string, cell) Hashtbl.t;
  mutable scopes : (string, cell) Hashtbl.t list;
  arrays : (string, harray) Hashtbl.t;
  hashes : (string, hhash) Hashtbl.t;
  mutable stdin_lines : string array;
  mutable stdin_pos : int;
  mutable last_match : (Regex.match_result * string) option;
  regex_cache : (string, Regex.t) Hashtbl.t;
  output : Buffer.t;
  sv_wrapper : Xalloc.t;  (* new_sv -> safemalloc *)
  spine_wrapper : Xalloc.t;  (* av_extend -> safemalloc *)
  node_wrapper : Xalloc.t;  (* hv_store -> safemalloc *)
  match_wrapper : Xalloc.t;  (* regmatch -> safemalloc *)
  f_eval : Lp_callchain.Func.id;
  f_exec : Lp_callchain.Func.id;
  f_concat : Lp_callchain.Func.id;
  f_arith : Lp_callchain.Func.id;
  f_compare : Lp_callchain.Func.id;
  f_assign : Lp_callchain.Func.id;
  f_store : Lp_callchain.Func.id;
  f_match : Lp_callchain.Func.id;
  f_subst : Lp_callchain.Func.id;
  f_split : Lp_callchain.Func.id;
  f_sort : Lp_callchain.Func.id;
  f_sub : Lp_callchain.Func.id;
  f_print : Lp_callchain.Func.id;
  builtin_frames : (string, Lp_callchain.Func.id) Hashtbl.t;
}

exception Last_loop
exception Next_loop
exception Return_value of cell

let create rt program =
  let subs = Hashtbl.create 8 in
  List.iter (function SSub (name, body) -> Hashtbl.replace subs name body | _ -> ()) program;
  let builtin_frames = Hashtbl.create 16 in
  List.iter
    (fun b -> Hashtbl.replace builtin_frames b (Rt.func rt ("pp_" ^ b)))
    [ "length"; "substr"; "join"; "chomp"; "uc"; "lc"; "push"; "pop"; "shift";
      "unshift"; "sprintf"; "defined"; "index"; "int"; "abs" ];
  {
    rt;
    program;
    subs;
    globals = Hashtbl.create 64;
    scopes = [];
    arrays = Hashtbl.create 16;
    hashes = Hashtbl.create 16;
    stdin_lines = [||];
    stdin_pos = 0;
    last_match = None;
    regex_cache = Hashtbl.create 16;
    output = Buffer.create 4096;
    sv_wrapper = Xalloc.create rt ~layers:[ "new_sv"; "safemalloc" ];
    spine_wrapper = Xalloc.create rt ~layers:[ "av_extend"; "safemalloc" ];
    node_wrapper = Xalloc.create rt ~layers:[ "hv_store"; "safemalloc" ];
    match_wrapper = Xalloc.create rt ~layers:[ "regmatch_state"; "safemalloc" ];
    f_eval = Rt.func rt "pl_eval";
    f_exec = Rt.func rt "pl_exec";
    f_concat = Rt.func rt "pp_concat";
    f_arith = Rt.func rt "pp_arith";
    f_compare = Rt.func rt "pp_compare";
    f_assign = Rt.func rt "pp_sassign";
    f_store = Rt.func rt "sv_setsv";
    f_match = Rt.func rt "pp_match";
    f_subst = Rt.func rt "pp_subst";
    f_split = Rt.func rt "pp_split";
    f_sort = Rt.func rt "pp_sort";
    f_sub = Rt.func rt "pp_entersub";
    f_print = Rt.func rt "pp_print";
    builtin_frames;
  }

(* -- cells ---------------------------------------------------------------------- *)

let cell_size = function VNum _ -> 24 | VStr s -> 25 + String.length s | VUndef -> 24

let mk t v =
  let handle = Xalloc.alloc t.sv_wrapper ~size:(cell_size v) in
  Rt.touch t.rt handle 1;
  { v; handle }

let mk_num t f = mk t (VNum f)
let mk_str t s = mk t (VStr s)
let free_cell t c = Rt.free t.rt c.handle

let read t c =
  Rt.touch t.rt c.handle 1;
  c.v

let copy t c =
  Rt.touch t.rt c.handle 1;
  mk t c.v

(* Overwrite a cell in place when the new value fits its allocation (perl's
   sv_setsv upgrades the SV body only when it must grow). *)
let overwrite t c v =
  if cell_size v <= Rt.size_of t.rt c.handle then begin
    c.v <- v;
    Rt.touch t.rt c.handle 1;
    true
  end
  else false

let to_num = function
  | VNum f -> f
  | VStr s -> (
      (* leading numeric prefix, Perl-style *)
      let n = String.length s in
      let i = ref 0 in
      while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do
        incr i
      done;
      let start = !i in
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do
        incr i
      done;
      if !i = start then 0.
      else begin
        match float_of_string_opt (String.sub s start (!i - start)) with
        | Some f -> f
        | None -> 0.
      end)
  | VUndef -> 0.

let to_str = function
  | VNum f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | VStr s -> s
  | VUndef -> ""

let truthy = function
  | VUndef -> false
  | VNum f -> f <> 0.
  | VStr s -> s <> "" && s <> "0"

(* -- variables -------------------------------------------------------------------- *)

let match_group t i =
  match t.last_match with
  | Some (m, subject) -> (
      match Regex.group m subject i with Some s -> VStr s | None -> VUndef)
  | None -> VUndef

let get_scalar t name =
  if String.length name = 1 && name.[0] >= '1' && name.[0] <= '9' then
    mk t (match_group t (Char.code name.[0] - Char.code '0'))
  else begin
    let rec find = function
      | [] -> Hashtbl.find_opt t.globals name
      | scope :: rest -> (
          match Hashtbl.find_opt scope name with Some c -> Some c | None -> find rest)
    in
    match find t.scopes with
    | Some c -> copy t c
    | None -> mk t VUndef
  end

(* Takes ownership of [cell]. *)
let set_scalar t name cell =
  let rec find = function
    | [] -> None
    | scope :: rest -> if Hashtbl.mem scope name then Some scope else find rest
  in
  let store tbl =
    (match Hashtbl.find_opt tbl name with Some old -> free_cell t old | None -> ());
    Hashtbl.replace tbl name cell
  in
  match find t.scopes with Some s -> store s | None -> store t.globals

let declare_my t name =
  match t.scopes with
  | scope :: _ ->
      (match Hashtbl.find_opt scope name with Some old -> free_cell t old | None -> ());
      Hashtbl.replace scope name (mk t VUndef)
  | [] -> set_scalar t name (mk t VUndef)

let get_harray t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None ->
      let spine = Xalloc.alloc t.spine_wrapper ~size:(16 + (8 * 8)) in
      Rt.touch t.rt spine 1;
      let a = { cells = Array.make 8 None; len = 0; spine } in
      Hashtbl.replace t.arrays name a;
      a

let aget a i =
  match a.cells.(i) with
  | Some c -> c
  | None -> invalid_arg "perl array: hole"

let array_push t a cell =
  if a.len = Array.length a.cells then begin
    (* grow the spine: the old spine object dies, a bigger one is born *)
    let bigger = Array.make (2 * a.len) None in
    Array.blit a.cells 0 bigger 0 a.len;
    a.cells <- bigger;
    Rt.free t.rt a.spine;
    let spine = Xalloc.alloc t.spine_wrapper ~size:(16 + (8 * 2 * a.len)) in
    Rt.touch t.rt spine 1;
    a.spine <- spine
  end;
  a.cells.(a.len) <- Some cell;
  a.len <- a.len + 1;
  Rt.touch t.rt a.spine 1

let array_clear t a =
  for i = 0 to a.len - 1 do
    free_cell t (aget a i)
  done;
  a.len <- 0

let get_hhash t name =
  match Hashtbl.find_opt t.hashes name with
  | Some h -> h
  | None ->
      let h_spine = Xalloc.alloc t.spine_wrapper ~size:(32 + (16 * 8)) in
      Rt.touch t.rt h_spine 1;
      let h = { tbl = Hashtbl.create 16; h_spine } in
      Hashtbl.replace t.hashes name h;
      h

(* -- regex ------------------------------------------------------------------------- *)

let compiled t pat =
  match Hashtbl.find_opt t.regex_cache pat with
  | Some re -> re
  | None ->
      let re = Regex.compile pat in
      (* compiled program node: long-lived *)
      let h = Xalloc.alloc t.match_wrapper ~size:(48 + (8 * String.length pat)) in
      Rt.touch t.rt h 2;
      Hashtbl.replace t.regex_cache pat re;
      re

let run_match t re subject =
  (* per-application match state, freed when matching completes *)
  let state = Xalloc.alloc t.match_wrapper ~size:96 in
  Rt.touch t.rt state 4;
  let result = Regex.search re subject in
  Rt.instructions t.rt (Regex.steps_of_last_search ());
  Rt.free t.rt state;
  result

(* -- evaluation --------------------------------------------------------------------- *)

let rec eval t e : cell =
  Rt.in_frame t.rt t.f_eval (fun () ->
      Rt.instructions t.rt 4;
      Rt.non_heap_refs t.rt 2;
      match e with
      | Num f -> mk_num t f
      | Str s -> mk_str t s
      | Undef -> mk t VUndef
      | Scalar name -> get_scalar t name
      | Elem (name, idx) ->
          let ci = eval t idx in
          let i = int_of_float (to_num (read t ci)) in
          free_cell t ci;
          let a = get_harray t name in
          Rt.touch t.rt a.spine 1;
          if i >= 0 && i < a.len then copy t (aget a i) else mk t VUndef
      | HElem (name, key) ->
          let ck = eval t key in
          let k = to_str (read t ck) in
          free_cell t ck;
          let h = get_hhash t name in
          Rt.touch t.rt h.h_spine 1;
          (match Hashtbl.find_opt h.tbl k with
          | Some entry ->
              Rt.touch t.rt entry.node 1;
              copy t entry.cell
          | None -> mk t VUndef)
      | Assign (lv, rhs) ->
          Rt.in_frame t.rt t.f_assign (fun () ->
              (* like perl's sv_setsv: the rhs temporary stays short-lived;
                 the destination SV is overwritten in place, or reallocated
                 at the store site when the value outgrows its body *)
              let v = eval t rhs in
              store_value t lv (read t v);
              v)
      | OpAssign (lv, op, rhs) ->
          Rt.in_frame t.rt t.f_assign (fun () ->
              let old = eval t (lv_to_expr lv) in
              let r = eval t rhs in
              let combined = binop t op old r in
              free_cell t old;
              free_cell t r;
              store_value t lv (read t combined);
              combined)
      | Binop (op, a, b) ->
          let ca = eval t a in
          let cb = eval t b in
          let r = binop t op ca cb in
          free_cell t ca;
          free_cell t cb;
          r
      | And (a, b) ->
          let ca = eval t a in
          let tr = truthy (read t ca) in
          if tr then begin
            free_cell t ca;
            eval t b
          end
          else ca
      | Or (a, b) ->
          let ca = eval t a in
          let tr = truthy (read t ca) in
          if tr then ca
          else begin
            free_cell t ca;
            eval t b
          end
      | Not a ->
          let ca = eval t a in
          let tr = truthy (read t ca) in
          free_cell t ca;
          mk_num t (if tr then 0. else 1.)
      | Neg a ->
          let ca = eval t a in
          let f = to_num (read t ca) in
          free_cell t ca;
          mk_num t (-.f)
      | Incr (prefix, lv) -> step t lv prefix 1.
      | Decr (prefix, lv) -> step t lv prefix (-1.)
      | Match (target, pat) ->
          Rt.in_frame t.rt t.f_match (fun () ->
              let ct = eval t target in
              let subject = to_str (read t ct) in
              free_cell t ct;
              let result = run_match t (compiled t pat) subject in
              (match result with
              | Some m -> t.last_match <- Some (m, subject)
              | None -> ());
              mk_num t (if result <> None then 1. else 0.))
      | NoMatch (target, pat) ->
          Rt.in_frame t.rt t.f_match (fun () ->
              let ct = eval t target in
              let subject = to_str (read t ct) in
              free_cell t ct;
              let result = run_match t (compiled t pat) subject in
              mk_num t (if result = None then 1. else 0.))
      | Subst (lv, pat, repl) ->
          Rt.in_frame t.rt t.f_subst (fun () ->
              let old = eval t (lv_to_expr lv) in
              let subject = to_str (read t old) in
              free_cell t old;
              let re = compiled t pat in
              let state = Xalloc.alloc t.match_wrapper ~size:96 in
              Rt.touch t.rt state 4;
              let replaced = Regex.replace_first re subject ~template:repl in
              Rt.instructions t.rt (Regex.steps_of_last_search ());
              Rt.free t.rt state;
              (match replaced with
              | Some s -> store_value t lv (VStr s)
              | None -> ());
              mk_num t (if replaced <> None then 1. else 0.))
      | Call (name, args) -> call t name args
      | ReadLine ->
          if t.stdin_pos < Array.length t.stdin_lines then begin
            let line = t.stdin_lines.(t.stdin_pos) in
            t.stdin_pos <- t.stdin_pos + 1;
            Rt.non_heap_refs t.rt (String.length line / 8);
            mk_str t (line ^ "\n")
          end
          else mk t VUndef
      | ScalarOf l ->
          let cells = eval_list t l in
          let n = List.length cells in
          List.iter (free_cell t) cells;
          mk_num t (float_of_int n))

and lv_to_expr = function
  | LScalar s -> Scalar s
  | LElem (a, i) -> Elem (a, i)
  | LHElem (h, k) -> HElem (h, k)

and step t lv prefix delta =
  Rt.in_frame t.rt t.f_assign (fun () ->
      let old = eval t (lv_to_expr lv) in
      let f = to_num (read t old) in
      free_cell t old;
      let result = if prefix then mk_num t (f +. delta) else mk_num t f in
      store_value t lv (VNum (f +. delta));
      result)

(* Takes ownership of [cell]. *)
and store t lv cell =
  match lv with
  | LScalar name -> set_scalar t name cell
  | LElem (name, idx) ->
      let ci = eval t idx in
      let i = int_of_float (to_num (read t ci)) in
      free_cell t ci;
      let a = get_harray t name in
      if i >= 0 && i < a.len then begin
        free_cell t (aget a i);
        a.cells.(i) <- Some cell
      end
      else if i = a.len then array_push t a cell
      else begin
        (* fill the gap with undefs *)
        while a.len < i do
          array_push t a (mk t VUndef)
        done;
        array_push t a cell
      end
  | LHElem (name, key) ->
      let ck = eval t key in
      let k = to_str (read t ck) in
      free_cell t ck;
      let h = get_hhash t name in
      (match Hashtbl.find_opt h.tbl k with
      | Some entry ->
          Rt.touch t.rt entry.node 1;
          free_cell t entry.cell;
          entry.cell <- cell
      | None ->
          let node = Xalloc.alloc t.node_wrapper ~size:(32 + String.length k) in
          Rt.touch t.rt node 2;
          Hashtbl.replace h.tbl k { cell; node })

(* Store a value, overwriting the destination in place when it fits and
   allocating a fresh cell at the store site otherwise. *)
and store_value t lv v =
  let fresh () = Rt.in_frame t.rt t.f_store (fun () -> mk t v) in
  match lv with
  | LScalar name -> (
      let existing =
        let rec find = function
          | [] -> Hashtbl.find_opt t.globals name
          | scope :: rest -> (
              match Hashtbl.find_opt scope name with
              | Some c -> Some c
              | None -> find rest)
        in
        if String.length name = 1 && name.[0] >= '1' && name.[0] <= '9' then None
        else find t.scopes
      in
      match existing with
      | Some c when overwrite t c v -> ()
      | _ -> set_scalar t name (fresh ()))
  | LElem (name, idx) ->
      let ci = eval t idx in
      let i = int_of_float (to_num (read t ci)) in
      free_cell t ci;
      let a = get_harray t name in
      if i >= 0 && i < a.len && overwrite t (aget a i) v then ()
      else store t (LElem (name, Num (float_of_int i))) (fresh ())
  | LHElem (name, key) ->
      let ck = eval t key in
      let k = to_str (read t ck) in
      free_cell t ck;
      let h = get_hhash t name in
      (match Hashtbl.find_opt h.tbl k with
      | Some entry ->
          Rt.touch t.rt entry.node 1;
          if not (overwrite t entry.cell v) then begin
            free_cell t entry.cell;
            entry.cell <- fresh ()
          end
      | None ->
          let node = Xalloc.alloc t.node_wrapper ~size:(32 + String.length k) in
          Rt.touch t.rt node 2;
          Hashtbl.replace h.tbl k { cell = fresh (); node })

and binop t op a b =
  match op with
  | Concat ->
      Rt.in_frame t.rt t.f_concat (fun () ->
          let s = to_str (read t a) ^ to_str (read t b) in
          Rt.instructions t.rt (String.length s);
          mk_str t s)
  | Repeat ->
      Rt.in_frame t.rt t.f_concat (fun () ->
          let s = to_str (read t a) in
          let n = int_of_float (to_num (read t b)) in
          let buf = Buffer.create (String.length s * max 1 n) in
          for _ = 1 to n do
            Buffer.add_string buf s
          done;
          Rt.instructions t.rt (Buffer.length buf);
          mk_str t (Buffer.contents buf))
  | Add | Sub | Mul | Div | Mod ->
      Rt.in_frame t.rt t.f_arith (fun () ->
          let x = to_num (read t a) and y = to_num (read t b) in
          let f =
            match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y
            | Mod -> Float.rem x y
            | _ -> assert false
          in
          mk_num t f)
  | NumEq | NumNe | NumLt | NumGt | NumLe | NumGe ->
      Rt.in_frame t.rt t.f_compare (fun () ->
          let c = Float.compare (to_num (read t a)) (to_num (read t b)) in
          let r =
            match op with
            | NumEq -> c = 0
            | NumNe -> c <> 0
            | NumLt -> c < 0
            | NumGt -> c > 0
            | NumLe -> c <= 0
            | NumGe -> c >= 0
            | _ -> assert false
          in
          mk_num t (if r then 1. else 0.))
  | StrEq | StrNe | StrLt | StrGt ->
      Rt.in_frame t.rt t.f_compare (fun () ->
          let c = Stdlib.compare (to_str (read t a)) (to_str (read t b)) in
          let r =
            match op with
            | StrEq -> c = 0
            | StrNe -> c <> 0
            | StrLt -> c < 0
            | StrGt -> c > 0
            | _ -> assert false
          in
          mk_num t (if r then 1. else 0.))

and eval_list t (l : lexpr) : cell list =
  match l with
  | LArr name ->
      let a = get_harray t name in
      Rt.touch t.rt a.spine 1;
      List.init a.len (fun i -> copy t (aget a i))
  | LWords exprs -> List.map (eval t) exprs
  | LKeys name ->
      let h = get_hhash t name in
      Rt.touch t.rt h.h_spine 1;
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h.tbl [] in
      List.map (mk_str t) (List.sort Stdlib.compare keys)
  | LValuesOf name ->
      let h = get_hhash t name in
      Rt.touch t.rt h.h_spine 1;
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h.tbl [] in
      List.map
        (fun k ->
          let entry = Hashtbl.find h.tbl k in
          copy t entry.cell)
        (List.sort Stdlib.compare keys)
  | LSortL inner ->
      Rt.in_frame t.rt t.f_sort (fun () ->
          let cells = eval_list t inner in
          let keyed = List.map (fun c -> (to_str (read t c), c)) cells in
          let sorted = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) keyed in
          Rt.instructions t.rt (4 * List.length sorted);
          List.map snd sorted)
  | LSplit (pat, target) ->
      Rt.in_frame t.rt t.f_split (fun () ->
          let ct = eval t target in
          let subject = to_str (read t ct) in
          free_cell t ct;
          let re = compiled t pat in
          let parts = ref [] in
          let pos = ref 0 in
          let n = String.length subject in
          let continue = ref true in
          while !continue && !pos <= n do
            let rest = String.sub subject !pos (n - !pos) in
            match run_match t re rest with
            | Some m when m.Regex.end_pos > m.Regex.start_pos ->
                parts := String.sub rest 0 m.Regex.start_pos :: !parts;
                pos := !pos + m.Regex.end_pos
            | _ ->
                parts := rest :: !parts;
                continue := false
          done;
          List.rev_map (mk_str t) !parts)

and call t name args =
  match Hashtbl.find_opt t.builtin_frames name with
  | Some frame -> Rt.in_frame t.rt frame (fun () -> builtin t name args)
  | None -> (
      match Hashtbl.find_opt t.subs name with
      | Some body -> Rt.in_frame t.rt t.f_sub (fun () -> call_sub t body args)
      | None -> failwith ("perl: undefined subroutine " ^ name))

and call_sub t body args =
  (* arguments land in @_ (saved and restored around the call) *)
  let arg_cells =
    List.concat_map
      (function
        | AExpr e -> [ eval t e ]
        | AList l -> eval_list t l
        | ARegex _ -> failwith "perl: regex argument to subroutine")
      args
  in
  let saved_underscore_array = Hashtbl.find_opt t.arrays "_" in
  let spine = Xalloc.alloc t.spine_wrapper ~size:(16 + (8 * max 1 (List.length arg_cells))) in
  Rt.touch t.rt spine 1;
  let argv =
    { cells = Array.of_list (List.map Option.some arg_cells @ [ None ]);
      len = List.length arg_cells;
      spine }
  in
  Hashtbl.replace t.arrays "_" argv;
  let scope = Hashtbl.create 8 in
  t.scopes <- scope :: t.scopes;
  let result =
    match List.iter (exec t) body with
    | () -> mk t VUndef
    | exception Return_value c -> c
  in
  t.scopes <- List.tl t.scopes;
  Hashtbl.iter (fun _ c -> free_cell t c) scope;
  array_clear t argv;
  Rt.free t.rt argv.spine;
  (match saved_underscore_array with
  | Some old -> Hashtbl.replace t.arrays "_" old
  | None -> Hashtbl.remove t.arrays "_");
  result

and builtin t name args =
  let scalar_args =
    List.filter_map (function AExpr e -> Some (eval t e) | _ -> None) args
  in
  let str i = to_str (read t (List.nth scalar_args i)) in
  let num i = to_num (read t (List.nth scalar_args i)) in
  let nargs = List.length scalar_args in
  let finish result =
    List.iter (free_cell t) scalar_args;
    result
  in
  match (name, args) with
  | "push", AList (LArr arr) :: rest ->
      let a = get_harray t arr in
      List.iter
        (function
          | AExpr e -> array_push t a (eval t e)
          | AList l -> List.iter (array_push t a) (eval_list t l)
          | ARegex _ -> failwith "perl: bad push argument")
        rest;
      finish (mk_num t (float_of_int a.len))
  | "pop", [ AList (LArr arr) ] ->
      let a = get_harray t arr in
      if a.len = 0 then finish (mk t VUndef)
      else begin
        a.len <- a.len - 1;
        finish (aget a a.len)
      end
  | "shift", [ AList (LArr arr) ] ->
      let a = get_harray t arr in
      if a.len = 0 then finish (mk t VUndef)
      else begin
        let first = aget a 0 in
        Array.blit a.cells 1 a.cells 0 (a.len - 1);
        a.len <- a.len - 1;
        Rt.touch t.rt a.spine (1 + a.len);
        finish first
      end
  | "shift", [] ->
      (* shift @_ *)
      let a = get_harray t "_" in
      if a.len = 0 then finish (mk t VUndef)
      else begin
        let first = aget a 0 in
        Array.blit a.cells 1 a.cells 0 (a.len - 1);
        a.len <- a.len - 1;
        finish first
      end
  | "unshift", AList (LArr arr) :: [ AExpr e ] ->
      let a = get_harray t arr in
      let c = eval t e in
      array_push t a c;
      (* rotate right by one *)
      let last = a.cells.(a.len - 1) in
      Array.blit a.cells 0 a.cells 1 (a.len - 1);
      a.cells.(0) <- last;

      Rt.touch t.rt a.spine a.len;
      finish (mk_num t (float_of_int a.len))
  | "join", AExpr sep :: rest ->
      let csep = eval t sep in
      let sep_s = to_str (read t csep) in
      free_cell t csep;
      let cells =
        List.concat_map
          (function
            | AExpr e -> [ eval t e ]
            | AList l -> eval_list t l
            | ARegex _ -> failwith "perl: bad join argument")
          rest
      in
      let s = String.concat sep_s (List.map (fun c -> to_str (read t c)) cells) in
      List.iter (free_cell t) cells;
      Rt.instructions t.rt (String.length s);
      finish (mk_str t s)
  | "length", _ when nargs = 1 -> finish (mk_num t (float_of_int (String.length (str 0))))
  | "length", [] ->
      let c = get_scalar t "_" in
      let n = String.length (to_str (read t c)) in
      free_cell t c;
      finish (mk_num t (float_of_int n))
  | "substr", _ when nargs >= 2 ->
      let s = str 0 in
      let start = int_of_float (num 1) in
      let start = if start < 0 then max 0 (String.length s + start) else start in
      let len = if nargs >= 3 then int_of_float (num 2) else String.length s - start in
      let start = min start (String.length s) in
      let len = max 0 (min len (String.length s - start)) in
      finish (mk_str t (String.sub s start len))
  | "index", _ when nargs = 2 ->
      let s = str 0 and target = str 1 in
      let n = String.length s and m = String.length target in
      let found = ref (-1) in
      (try
         for i = 0 to n - m do
           if String.sub s i m = target then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      Rt.instructions t.rt n;
      finish (mk_num t (float_of_int !found))
  | "chomp", [ AExpr (Scalar v) ] ->
      let c = get_scalar t v in
      let s = to_str (read t c) in
      free_cell t c;
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\n' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      store_value t (LScalar v) (VStr s);
      finish (mk_num t 1.)
  | "uc", _ when nargs = 1 -> finish (mk_str t (String.uppercase_ascii (str 0)))
  | "lc", _ when nargs = 1 -> finish (mk_str t (String.lowercase_ascii (str 0)))
  | "int", _ when nargs = 1 -> finish (mk_num t (Float.of_int (int_of_float (num 0))))
  | "abs", _ when nargs = 1 -> finish (mk_num t (Float.abs (num 0)))
  | "defined", _ when nargs = 1 ->
      let is_def = match read t (List.nth scalar_args 0) with VUndef -> false | _ -> true in
      finish (mk_num t (if is_def then 1. else 0.))
  | "sprintf", _ when nargs >= 1 ->
      let vals = List.tl scalar_args in
      finish (mk_str t (format_values t (str 0) vals))
  | _ -> failwith (Printf.sprintf "perl: bad builtin call %s/%d" name nargs)

and format_values t fmt args =
  let buf = Buffer.create 64 in
  let args = ref args in
  let next () =
    match !args with
    | [] -> VUndef
    | a :: rest ->
        args := rest;
        read t a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' then begin
      Buffer.add_char buf c;
      incr i
    end
    else begin
      let start = !i in
      incr i;
      while
        !i < n && (fmt.[!i] = '-' || fmt.[!i] = '.' || (fmt.[!i] >= '0' && fmt.[!i] <= '9'))
      do
        incr i
      done;
      if !i < n then begin
        let conv = fmt.[!i] in
        let spec = String.sub fmt start (!i - start + 1) in
        incr i;
        match conv with
        | '%' -> Buffer.add_char buf '%'
        | 'd' ->
            Buffer.add_string buf
              (Printf.sprintf
                 (Scanf.format_from_string spec "%d")
                 (int_of_float (to_num (next ()))))
        | 's' ->
            Buffer.add_string buf
              (Printf.sprintf (Scanf.format_from_string spec "%s") (to_str (next ())))
        | 'f' | 'g' ->
            let spec = String.sub spec 0 (String.length spec - 1) ^ "f" in
            Buffer.add_string buf
              (Printf.sprintf (Scanf.format_from_string spec "%f") (to_num (next ())))
        | other -> failwith (Printf.sprintf "perl: unsupported conversion %%%c" other)
      end
    end
  done;
  Buffer.contents buf

(* -- statements ----------------------------------------------------------------------- *)

and exec t stmt : unit =
  Rt.in_frame t.rt t.f_exec (fun () ->
      Rt.instructions t.rt 4;
      Rt.non_heap_refs t.rt 2;
      match stmt with
      | SExpr e -> free_cell t (eval t e)
      | SMy (vars, init) -> (
          List.iter (declare_my t) vars;
          match (vars, init) with
          | [ v ], Some e ->
              let c = eval t e in
              set_scalar t v c
          | _, None -> ()
          | _, Some _ -> failwith "perl: my-list initialisation unsupported")
      | SIf (branches, else_) ->
          let rec go = function
            | [] -> Option.iter (List.iter (exec t)) else_
            | (cond, body) :: rest ->
                let c = eval t cond in
                let tr = truthy (read t c) in
                free_cell t c;
                if tr then List.iter (exec t) body else go rest
          in
          go branches
      | SWhile (cond, body) -> (
          try
            let continue = ref true in
            while !continue do
              let c = eval t cond in
              let tr = truthy (read t c) in
              free_cell t c;
              if tr then (try List.iter (exec t) body with Next_loop -> ())
              else continue := false
            done
          with Last_loop -> ())
      | SWhileRead body -> (
          try
            let continue = ref true in
            while !continue do
              let line = eval t ReadLine in
              match read t line with
              | VUndef ->
                  free_cell t line;
                  continue := false
              | _ -> (
                  store_value t (LScalar "_") (read t line);
                  free_cell t line;
                  try List.iter (exec t) body with Next_loop -> ())
            done
          with Last_loop -> ())
      | SForeach (var, l, body) -> (
          let cells = eval_list t l in
          try
            List.iter
              (fun c ->
                store_value t (LScalar var) (read t c);
                free_cell t c;
                try List.iter (exec t) body with Next_loop -> ())
              cells
          with Last_loop -> ())
      | SAssignList (name, l) ->
          let cells = eval_list t l in
          let a = get_harray t name in
          array_clear t a;
          List.iter (array_push t a) cells
      | SSub _ -> () (* bound at create *)
      | SReturn e ->
          let c = match e with Some e -> eval t e | None -> mk t VUndef in
          raise (Return_value c)
      | SLast -> raise Last_loop
      | SNext -> raise Next_loop
      | SPrint args ->
          Rt.in_frame t.rt t.f_print (fun () ->
              List.iter
                (fun e ->
                  let c = eval t e in
                  Buffer.add_string t.output (to_str (read t c));
                  free_cell t c)
                args;
              Buffer.add_char t.output '\n')
      | SPrintf args ->
          Rt.in_frame t.rt t.f_print (fun () ->
              match args with
              | [] -> ()
              | fmt :: rest ->
                  let cf = eval t fmt in
                  let cells = List.map (eval t) rest in
                  Buffer.add_string t.output (format_values t (to_str (read t cf)) cells);
                  free_cell t cf;
                  List.iter (free_cell t) cells))

let run t ~stdin =
  t.stdin_lines <- stdin;
  t.stdin_pos <- 0;
  let f_main = Rt.func t.rt "perl_main" in
  Rt.in_frame t.rt f_main (fun () ->
      List.iter (exec t) t.program;
      Buffer.contents t.output)
