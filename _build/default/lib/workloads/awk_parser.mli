(** Recursive-descent parser for the mini-AWK language.

    The grammar follows AWK's: items are pattern-action rules or function
    definitions; expressions include string concatenation by juxtaposition
    (two expressions side by side concatenate), which is parsed at a
    precedence level between comparison and addition. *)

exception Parse_error of string
(** Raised on syntax errors, with a short description including the
    offending token. *)

val parse : string -> Awk_ast.program
(** Parse a whole script.
    @raise Parse_error on a syntax error.
    @raise Awk_lexer.Lex_error on a lexical error. *)
