lib/allocsim/first_fit.ml: Cost_model Hashtbl Printf
