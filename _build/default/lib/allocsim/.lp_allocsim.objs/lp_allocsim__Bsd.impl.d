lib/allocsim/bsd.ml: Array Cost_model Hashtbl List
