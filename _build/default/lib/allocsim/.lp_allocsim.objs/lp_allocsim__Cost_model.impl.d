lib/allocsim/cost_model.ml:
