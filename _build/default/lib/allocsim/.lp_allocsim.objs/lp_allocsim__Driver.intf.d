lib/allocsim/driver.mli: Arena Cache Lp_trace Metrics
