lib/allocsim/driver.ml: Arena Array Bsd Cache First_fit Lp_trace Metrics
