lib/allocsim/arena.ml: Array Cost_model First_fit Hashtbl
