lib/allocsim/cache.ml: Array Hashtbl
