lib/allocsim/generational.mli: Lp_trace
