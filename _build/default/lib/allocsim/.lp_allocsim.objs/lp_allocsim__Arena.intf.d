lib/allocsim/arena.mli: First_fit
