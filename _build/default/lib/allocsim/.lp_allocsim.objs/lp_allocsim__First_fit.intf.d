lib/allocsim/first_fit.mli:
