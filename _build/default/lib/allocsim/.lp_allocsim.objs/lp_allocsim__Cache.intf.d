lib/allocsim/cache.mli:
