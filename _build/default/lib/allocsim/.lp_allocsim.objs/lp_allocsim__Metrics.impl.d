lib/allocsim/metrics.ml: Format
