lib/allocsim/metrics.mli: Format
