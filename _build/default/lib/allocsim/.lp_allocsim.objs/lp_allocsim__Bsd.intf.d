lib/allocsim/bsd.mli:
