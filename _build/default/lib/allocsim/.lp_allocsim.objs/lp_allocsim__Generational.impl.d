lib/allocsim/generational.ml: Array List Lp_trace
