(** Results of a trace-driven allocator simulation. *)

type t = {
  algorithm : string;
  allocs : int;
  frees : int;
  total_bytes : int;
  arena_allocs : int;  (** 0 for non-arena allocators *)
  arena_bytes : int;
  arena_resets : int;
  overflow_allocs : int;  (** predicted-short allocs that missed the arenas *)
  max_heap : int;  (** bytes, arena area included where applicable *)
  max_live : int;  (** peak simultaneously-live payload bytes *)
  instr_per_alloc : float;
  instr_per_free : float;
}

val arena_alloc_pct : t -> float
(** Percentage of allocations placed in arenas (Table 7). *)

val arena_bytes_pct : t -> float
(** Percentage of bytes placed in arenas (Table 7). *)

val fragmentation_pct : t -> float
(** [100 * (1 - max_live / max_heap)] — address space held beyond the
    payload peak. *)

val pp : Format.formatter -> t -> unit
