type t = {
  line_bytes : int;
  associativity : int;
  n_sets : int;
  tags : int array;  (* n_sets * associativity; -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  pages_seen : (int, unit) Hashtbl.t;  (* distinct 4 KB pages referenced *)
}

let create ?(line_bytes = 32) ?(associativity = 2) ~size_bytes () =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Cache.create: line size must be a positive power of two";
  if associativity <= 0 then invalid_arg "Cache.create: associativity must be positive";
  let set_bytes = line_bytes * associativity in
  if size_bytes <= 0 || size_bytes mod set_bytes <> 0 then
    invalid_arg "Cache.create: size must be a positive multiple of line*associativity";
  let n_sets = size_bytes / set_bytes in
  {
    line_bytes;
    associativity;
    n_sets;
    tags = Array.make (n_sets * associativity) (-1);
    stamps = Array.make (n_sets * associativity) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    pages_seen = Hashtbl.create 256;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  if not (Hashtbl.mem t.pages_seen (addr lsr 12)) then
    Hashtbl.replace t.pages_seen (addr lsr 12) ();
  let line = addr / t.line_bytes in
  let set = line mod t.n_sets in
  let base = set * t.associativity in
  (* hit? *)
  let way = ref (-1) in
  for i = 0 to t.associativity - 1 do
    if t.tags.(base + i) = line then way := i
  done;
  if !way >= 0 then t.stamps.(base + !way) <- t.clock
  else begin
    t.misses <- t.misses + 1;
    (* evict the least recently used way *)
    let victim = ref 0 in
    for i = 1 to t.associativity - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- line;
    t.stamps.(base + !victim) <- t.clock
  end

let access_range t ~addr ~bytes =
  let first = addr / t.line_bytes in
  let last = (addr + max 1 bytes - 1) / t.line_bytes in
  for line = first to last do
    access t (line * t.line_bytes)
  done

let accesses t = t.accesses
let footprint_pages t = Hashtbl.length t.pages_seen
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  Hashtbl.reset t.pages_seen
