(** A two-generation copying-collector simulator, for the paper's claim
    that lifetime prediction "can improve the performance of generational
    collectors by predicting object lifetimes when they are born" (§1.1,
    citing Lieberman/Hewitt, Ungar, and Moon).

    Model: new objects bump-allocate in a fixed-size nursery; when the
    nursery fills, a minor collection copies every surviving nursery object
    into the tenured generation (cost charged per byte copied) and resets
    the nursery.  With {e pretenuring}, objects predicted long-lived at
    birth are allocated directly in the tenured generation, so they are
    never copied — at the risk of tenuring garbage when the prediction is
    wrong (dead tenured bytes are only reclaimed by major collections,
    which this model counts but prices separately).

    The simulator is trace-driven like {!Driver} and tracks the copying
    work, the collection counts, and the tenured-garbage exposure. *)

type config = {
  nursery_bytes : int;  (** nursery capacity (default 131072) *)
  copy_cost_per_byte : int;  (** simulated instructions per byte copied *)
}

val default_config : config

type stats = {
  allocs : int;
  pretenured : int;  (** objects allocated directly into the old generation *)
  minor_gcs : int;
  copied_bytes : int;  (** bytes evacuated from the nursery over the run *)
  copied_objects : int;
  promoted_bytes : int;  (** total bytes that ended up tenured *)
  tenured_garbage_bytes : int;
      (** bytes freed after reaching the tenured generation — dead weight a
          major collection would have to reclaim *)
  copy_instr : int;  (** total simulated copying cost *)
  max_tenured_live : int;
}

val run :
  ?config:config ->
  pretenure:(obj:int -> size:int -> chain:int -> key:int -> bool) ->
  Lp_trace.Trace.t ->
  stats
(** Replay the trace.  [pretenure] decides per allocation; pass
    [(fun ~obj:_ ~size:_ ~chain:_ ~key:_ -> false)] for the baseline
    collector. *)
