(** A set-associative cache simulator with LRU replacement.

    Used by the locality experiment: the paper argues (§1, §6) that
    segregating short-lived objects into a 64 KB arena area "localizes the
    references to short-lived objects, reducing the cache and page miss
    rates", but reports no miss-rate numbers.  Replaying a trace's
    reference stream against the addresses each allocator assigned makes
    the claim measurable. *)

type t

val create : ?line_bytes:int -> ?associativity:int -> size_bytes:int -> unit -> t
(** Defaults: 32-byte lines, 2-way associative (a plausible early-90s
    data cache).  [size_bytes] must be a multiple of
    [line_bytes * associativity].
    @raise Invalid_argument on inconsistent geometry. *)

val access : t -> int -> unit
(** Reference one byte address. *)

val access_range : t -> addr:int -> bytes:int -> unit
(** Reference every line overlapping [addr, addr+bytes). *)

val accesses : t -> int
val misses : t -> int

val footprint_pages : t -> int
(** Distinct 4 KB pages referenced so far — the memory footprint the
    reference stream actually walked (the paper's "small part of the
    heap" claim, quantified). *)

val miss_rate : t -> float
(** Misses per access, in [0, 1]; 0 when nothing was accessed. *)

val reset : t -> unit
