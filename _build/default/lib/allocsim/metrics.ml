type t = {
  algorithm : string;
  allocs : int;
  frees : int;
  total_bytes : int;
  arena_allocs : int;
  arena_bytes : int;
  arena_resets : int;
  overflow_allocs : int;
  max_heap : int;
  max_live : int;
  instr_per_alloc : float;
  instr_per_free : float;
}

let pct part whole = if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let arena_alloc_pct t = pct t.arena_allocs t.allocs
let arena_bytes_pct t = pct t.arena_bytes t.total_bytes

let fragmentation_pct t =
  if t.max_heap = 0 then 0. else 100. *. (1. -. (float_of_int t.max_live /. float_of_int t.max_heap))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s:@ allocs %d (arena %.1f%%), bytes %d (arena %.1f%%)@ max heap %d, max \
     live %d (frag %.1f%%)@ instr/alloc %.1f, instr/free %.1f@ arena resets %d, \
     overflows %d@]"
    t.algorithm t.allocs (arena_alloc_pct t) t.total_bytes (arena_bytes_pct t)
    t.max_heap t.max_live (fragmentation_pct t) t.instr_per_alloc t.instr_per_free
    t.arena_resets t.overflow_allocs
