(* Tests for the bignum substrate: correctness against OCaml's native
   integers (for values that fit) and algebraic properties via qcheck. *)

module Bn = Lp_workloads.Bignum
module Rt = Lp_ialloc.Runtime

let with_ctx f =
  let rt = Rt.create ~program:"bn" ~input:"t" () in
  let ctx = Bn.make_ctx rt in
  f ctx

let of_to_int ctx n =
  let v = Bn.of_int ctx n in
  let r = Bn.to_int v in
  Bn.release ctx v;
  r

let roundtrip () =
  with_ctx (fun ctx ->
      List.iter
        (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (of_to_int ctx n))
        [ 0; 1; 7; 32767; 32768; 1000000; 123456789012345 ])

let decimal_strings () =
  with_ctx (fun ctx ->
      List.iter
        (fun s ->
          let v = Bn.of_string ctx s in
          Alcotest.(check string) s s (Bn.to_string ctx v);
          Bn.release ctx v)
        [ "0"; "1"; "10000"; "999999999999999999999999"; "123456789123456789" ])

let binop_check name f g () =
  with_ctx (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:99L in
      for _ = 1 to 200 do
        let a = Lp_workloads.Prng.int rng 1_000_000_000 in
        let b = 1 + Lp_workloads.Prng.int rng 1_000_000 in
        let va = Bn.of_int ctx a and vb = Bn.of_int ctx b in
        let vr = f ctx va vb in
        let expected = g a b in
        Alcotest.(check (option int))
          (Printf.sprintf "%s %d %d" name a b)
          (Some expected) (Bn.to_int vr);
        Bn.release ctx va;
        Bn.release ctx vb;
        Bn.release ctx vr
      done)

let add_check = binop_check "add" Bn.add ( + )
let mul_check = binop_check "mul" Bn.mul ( * )

let sub_check () =
  with_ctx (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:3L in
      for _ = 1 to 200 do
        let a = Lp_workloads.Prng.int rng 1_000_000_000 in
        let b = Lp_workloads.Prng.int rng (a + 1) in
        let va = Bn.of_int ctx a and vb = Bn.of_int ctx b in
        let vr = Bn.sub ctx va vb in
        Alcotest.(check (option int)) "sub" (Some (a - b)) (Bn.to_int vr);
        Bn.release ctx va;
        Bn.release ctx vb;
        Bn.release ctx vr
      done)

let sub_negative_rejected () =
  with_ctx (fun ctx ->
      let a = Bn.of_int ctx 5 and b = Bn.of_int ctx 7 in
      Alcotest.check_raises "negative" (Invalid_argument "Bignum.sub: negative result")
        (fun () -> ignore (Bn.sub ctx a b)))

let divmod_int_check () =
  with_ctx (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:5L in
      for _ = 1 to 300 do
        let a = Lp_workloads.Prng.int rng 4_000_000_000_000_000 in
        let b = 1 + Lp_workloads.Prng.int rng 2_000_000_000 in
        let va = Bn.of_int ctx a and vb = Bn.of_int ctx b in
        let q, r = Bn.divmod ctx va vb in
        Alcotest.(check (option int)) "quotient" (Some (a / b)) (Bn.to_int q);
        Alcotest.(check (option int)) "remainder" (Some (a mod b)) (Bn.to_int r);
        List.iter (Bn.release ctx) [ va; vb; q; r ]
      done)

let divmod_small_check () =
  with_ctx (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:6L in
      for _ = 1 to 300 do
        let a = Lp_workloads.Prng.int rng max_int in
        let d = 1 + Lp_workloads.Prng.int rng 1_000_000 in
        let va = Bn.of_int ctx a in
        let q, r = Bn.divmod_small ctx va d in
        Alcotest.(check (option int)) "q" (Some (a / d)) (Bn.to_int q);
        Alcotest.(check int) "r" (a mod d) r;
        Alcotest.(check int) "rem_small agrees" (a mod d) (Bn.rem_small ctx va d);
        Bn.release ctx va;
        Bn.release ctx q
      done)

let division_by_zero () =
  with_ctx (fun ctx ->
      let a = Bn.of_int ctx 10 and z = Bn.of_int ctx 0 in
      Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
          ignore (Bn.divmod ctx a z));
      Alcotest.check_raises "divmod_small by zero" Division_by_zero (fun () ->
          ignore (Bn.divmod_small ctx a 0)))

let isqrt_check () =
  with_ctx (fun ctx ->
      List.iter
        (fun n ->
          let v = Bn.of_int ctx n in
          let r = Bn.isqrt ctx v in
          let s = Option.get (Bn.to_int r) in
          if not (s * s <= n && (s + 1) * (s + 1) > n) then
            Alcotest.failf "isqrt %d = %d" n s;
          Bn.release ctx v;
          Bn.release ctx r)
        [ 0; 1; 2; 3; 4; 15; 16; 17; 99; 100; 1000000; 999999999999; 4611686018427387 ])

let gcd_check () =
  with_ctx (fun ctx ->
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let rng = Lp_workloads.Prng.create ~seed:8L in
      for _ = 1 to 100 do
        let a = 1 + Lp_workloads.Prng.int rng 1_000_000_000 in
        let b = 1 + Lp_workloads.Prng.int rng 1_000_000_000 in
        let va = Bn.of_int ctx a and vb = Bn.of_int ctx b in
        let g = Bn.gcd ctx va vb in
        Alcotest.(check (option int)) "gcd" (Some (gcd a b)) (Bn.to_int g);
        List.iter (Bn.release ctx) [ va; vb; g ]
      done)

(* big-number properties: (a+b)-b = a, (a*b)/b = a, divmod identity *)
let big_of_rng ctx rng =
  (* a random number of up to ~40 digits built from decimal chunks *)
  let n = 1 + Lp_workloads.Prng.int rng 40 in
  let s =
    String.concat ""
      (List.init n (fun i ->
           string_of_int
             (if i = 0 then 1 + Lp_workloads.Prng.int rng 9
              else Lp_workloads.Prng.int rng 10)))
  in
  Bn.of_string ctx s

let big_properties () =
  with_ctx (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:11L in
      for _ = 1 to 60 do
        let a = big_of_rng ctx rng and b = big_of_rng ctx rng in
        (* (a + b) - b = a *)
        let s = Bn.add ctx a b in
        let d = Bn.sub ctx s b in
        Alcotest.(check int) "(a+b)-b = a" 0 (Bn.compare ctx d a);
        (* divmod identity: a = q*b + r, r < b *)
        if not (Bn.is_zero b) then begin
          let q, r = Bn.divmod ctx a b in
          Alcotest.(check bool) "r < b" true (Bn.compare ctx r b < 0);
          let qb = Bn.mul ctx q b in
          let back = Bn.add ctx qb r in
          Alcotest.(check int) "a = q*b + r" 0 (Bn.compare ctx back a);
          List.iter (Bn.release ctx) [ q; r; qb; back ]
        end;
        (* isqrt: r^2 <= a < (r+1)^2 *)
        let r = Bn.isqrt ctx a in
        let r2 = Bn.mul ctx r r in
        Alcotest.(check bool) "isqrt lower" true (Bn.compare ctx r2 a <= 0);
        let r1 = Bn.add_small ctx r 1 in
        let r12 = Bn.mul ctx r1 r1 in
        Alcotest.(check bool) "isqrt upper" true (Bn.compare ctx r12 a > 0);
        List.iter (Bn.release ctx) [ a; b; s; d; r; r2; r1; r12 ]
      done)

let no_leaks () =
  let rt = Rt.create ~program:"bn" ~input:"t" () in
  let ctx = Bn.make_ctx rt in
  let a = Bn.of_string ctx "123456789123456789123456789" in
  let b = Bn.of_string ctx "987654321987654321" in
  let q, r = Bn.divmod ctx a b in
  let g = Bn.gcd ctx a b in
  let s = Bn.isqrt ctx a in
  List.iter (Bn.release ctx) [ a; b; q; r; g; s ];
  Alcotest.(check int) "all bignums released" 0 (Rt.live_objects rt)

let suites =
  [
    ( "bignum",
      [
        Alcotest.test_case "int round-trip" `Quick roundtrip;
        Alcotest.test_case "decimal strings" `Quick decimal_strings;
        Alcotest.test_case "add vs native" `Quick add_check;
        Alcotest.test_case "mul vs native" `Quick mul_check;
        Alcotest.test_case "sub vs native" `Quick sub_check;
        Alcotest.test_case "sub negative rejected" `Quick sub_negative_rejected;
        Alcotest.test_case "divmod vs native" `Quick divmod_int_check;
        Alcotest.test_case "divmod_small vs native" `Quick divmod_small_check;
        Alcotest.test_case "division by zero" `Quick division_by_zero;
        Alcotest.test_case "isqrt" `Quick isqrt_check;
        Alcotest.test_case "gcd vs native" `Quick gcd_check;
        Alcotest.test_case "40-digit properties" `Quick big_properties;
        Alcotest.test_case "no leaks" `Quick no_leaks;
      ] );
  ]
