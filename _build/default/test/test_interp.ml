(* Behavioural tests for the three interpreter workloads: mini-AWK,
   mini-Perl, and mini-PostScript. *)

module Rt = Lp_ialloc.Runtime

let awk script lines =
  let rt = Rt.create ~program:"awk" ~input:"t" () in
  Lp_workloads.Gawk.run_script rt ~script ~lines

let check_awk name script lines expected () =
  Alcotest.(check string) name expected (awk script lines)

let awk_cases =
  [
    ("print fields", "{ print $2, $1 }", [| "a b" |], "b a\n");
    ("NF", "{ print NF }", [| "x y z"; "" |], "3\n0\n");
    ("NR", "{ print NR }", [| "a"; "b" |], "1\n2\n");
    ("default action", "NF > 1", [| "one"; "two words" |], "two words\n");
    ("BEGIN/END", "BEGIN { print \"s\" } END { print \"e\" }", [| "x" |], "s\ne\n");
    ("arithmetic", "BEGIN { print 2 + 3 * 4, 10 / 4, 7 % 3, 2 ^ 10 }", [||],
     "14 2.5 1 1024\n");
    ("comparison and ternary", "BEGIN { print (3 > 2 ? \"y\" : \"n\") }", [||], "y\n");
    ("concat", "BEGIN { x = \"foo\" \"bar\"; print x 1 + 1 }", [||], "foobar2\n");
    ("while", "BEGIN { i = 0; while (i < 3) { s = s i; i++ }; print s }", [||], "012\n");
    ("do-while", "BEGIN { i = 9; do { n++ } while (i < 5); print n }", [||], "1\n");
    ("for", "BEGIN { for (i = 1; i <= 4; i++) s += i; print s }", [||], "10\n");
    ("for-in sorted", "BEGIN { a[\"b\"]=1; a[\"a\"]=2; for (k in a) print k }", [||],
     "a\nb\n");
    ("break/continue",
     "BEGIN { for (i = 0; i < 10; i++) { if (i == 2) continue; if (i == 4) break; print i } }",
     [||], "0\n1\n3\n");
    ("arrays", "{ c[$1]++ } END { print c[\"a\"], c[\"b\"] }", [| "a"; "b"; "a" |],
     "2 1\n");
    ("delete", "BEGIN { a[\"x\"] = 1; delete a[\"x\"]; print (\"x\" in a) }", [||], "0\n");
    ("in operator", "BEGIN { a[\"k\"] = 1; print (\"k\" in a), (\"z\" in a) }", [||],
     "1 0\n");
    ("length", "BEGIN { print length(\"hello\"), length(\"\") }", [||], "5 0\n");
    ("substr", "BEGIN { print substr(\"abcdef\", 2, 3), substr(\"abc\", 2) }", [||],
     "bcd bc\n");
    ("index", "BEGIN { print index(\"hay needle\", \"need\"), index(\"x\", \"q\") }", [||],
     "5 0\n");
    ("toupper/tolower", "BEGIN { print toupper(\"aB\"), tolower(\"aB\") }", [||],
     "AB ab\n");
    ("int", "BEGIN { print int(3.9), int(10 / 3) }", [||], "3 3\n");
    ("printf", "BEGIN { printf \"%d|%s|%5.2f\\n\", 42, \"x\", 3.14159 }", [||],
     "42|x| 3.14\n");
    ("sprintf", "BEGIN { print sprintf(\"%03d\", 7) }", [||], "007\n");
    ("uninitialised", "BEGIN { print x + 0, \"[\" y \"]\" }", [||], "0 []\n");
    ("string/number compare", "BEGIN { print (10 > 9), (\"10\" < \"9\") }", [||],
     "1 1\n");
    ("field assignment", "{ $2 = \"Z\"; print $2 }", [| "a b c" |], "Z\n");
    ("user function", "function twice(x) { return 2 * x } BEGIN { print twice(21) }",
     [||], "42\n");
    ("recursive function",
     "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2) } BEGIN { print fib(10) }",
     [||], "55\n");
    ("function locals",
     "function f(x,  t) { t = x * 10; return t } BEGIN { t = 5; print f(1), t }", [||],
     "10 5\n");
    ("next", "{ if ($1 == \"skip\") next; print $1 }", [| "a"; "skip"; "b" |], "a\nb\n");
    ("opassign", "BEGIN { x = 10; x -= 3; x *= 2; x /= 7; print x }", [||], "2\n");
    ("incr semantics", "BEGIN { i = 5; print i++, i, ++i, i }", [||], "5 6 7 7\n");
    (* regular expressions *)
    ("regex pattern", "/ab+c/ { print NR }", [| "xabbc"; "no"; "abc" |], "1\n3\n");
    ("tilde match", "{ if ($1 ~ /^[aeiou]/) print $1 }",
     [| "apple pie"; "grape"; "orange" |], "apple\norange\n");
    ("negated match", "$0 !~ /x/ { print }", [| "ax"; "b" |], "b\n");
    ("dynamic pattern", "BEGIN { p = \"^a\"; if (\"abc\" ~ p) print \"y\" }", [||],
     "y\n");
    ("split with regex", "BEGIN { n = split(\"a:b:c\", parts, /:/); print n, parts[2] }",
     [||], "3 b\n");
    ("split default", "BEGIN { n = split(\"x  y z\", w); print n, w[3] }", [||],
     "3 z\n");
    ("sub", "BEGIN { s = \"cheese\"; sub(/ch/, \"k\", s); print s }", [||], "keese\n");
    ("sub returns count", "BEGIN { s = \"aaa\"; print sub(/b/, \"x\", s), s }", [||],
     "0 aaa\n");
    ("gsub", "BEGIN { s = \"banana\"; print gsub(/an/, \"X\", s), s }", [||],
     "2 bXXa\n");
    ("gsub on record", "{ gsub(/a/, \"o\"); print }", [| "banana bandana" |],
     "bonono bondono\n");
    ("match builtin", "BEGIN { print match(\"hayneedle\", \"need\"), match(\"x\", \"q\") }",
     [||], "4 0\n");
  ]

(* -- perl ------------------------------------------------------------------------ *)

let perl script stdin =
  let rt = Rt.create ~program:"perl" ~input:"t" () in
  Lp_workloads.Perl.run_script rt ~script ~stdin

let check_perl name script stdin expected () =
  Alcotest.(check string) name expected (perl script stdin)

let perl_cases =
  [
    ("print", "print(\"hi\");", [||], "hi\n");
    ("arith", "print(2 + 3 * 4);", [||], "14\n");
    ("concat and repeat", "print(\"ab\" . \"-\" x 3 . \"cd\");", [||], "ab---cd\n");
    ("readline loop", "while (<>) { chomp($_); print($_ . \"!\"); }",
     [| "a"; "b" |], "a!\nb!\n");
    ("push and foreach", "push(@a, 3); push(@a, 1); foreach $x (@a) { print($x); }",
     [||], "3\n1\n");
    ("sort", "push(@a, \"b\"); push(@a, \"a\"); foreach $x (sort(@a)) { print($x); }",
     [||], "a\nb\n");
    ("hash and keys", "$h{b} = 2; $h{a} = 1; foreach $k (sort(keys(%h))) { printf(\"%s=%d \", $k, $h{$k}); }",
     [||], "a=1 b=2 ");
    ("split", "@w = split(/,/, \"x,y,z\"); print(scalar(@w) . $w[1]);", [||], "3y\n");
    ("match", "if (\"hello\" =~ /l+o/) { print(\"yes\"); }", [||], "yes\n");
    ("captures", "\"2026-07-06\" =~ /(\\d+)-(\\d+)/; print($1 . \"/\" . $2);", [||],
     "2026/07\n");
    ("nomatch", "if (\"abc\" !~ /z/) { print(\"clean\"); }", [||], "clean\n");
    ("subst", "$x = \"cheese\"; $x =~ s/ch/k/; print($x);", [||], "keese\n");
    ("sub with args", "sub add { my $a = shift; my $b = shift; return $a + $b; } print(add(2, 3));",
     [||], "5\n");
    ("my scoping", "$x = 1; sub f { my $x = 99; return $x; } print(f() . $x);", [||],
     "991\n");
    ("string ops", "print(uc(\"ab\") . lc(\"CD\") . length(\"xyz\"));", [||], "ABcd3\n");
    ("substr", "print(substr(\"abcdef\", 1, 3));", [||], "bcd\n");
    ("join", "push(@a, 1); push(@a, 2); print(join(\"-\", @a));", [||], "1-2\n");
    ("ternary via if/else", "if (3 > 2) { print(\"t\"); } elsif (1) { print(\"m\"); } else { print(\"f\"); }",
     [||], "t\n");
    ("while last/next",
     "$i = 0; while (1) { $i = $i + 1; if ($i == 2) { next; } if ($i > 3) { last; } print($i); }",
     [||], "1\n3\n");
    ("string compare", "if (\"abc\" lt \"abd\") { print(\"lt\"); }", [||], "lt\n");
    ("numeric string", "print(\"10\" + 5);", [||], "15\n");
    ("sprintf", "print(sprintf(\"%04d\", 42));", [||], "0042\n");
    ("array element assign", "$a[0] = \"x\"; $a[2] = \"z\"; print(scalar(@a));", [||],
     "3\n");
    ("pop shift", "push(@a, 1); push(@a, 2); push(@a, 3); print(pop(@a) . shift(@a));",
     [||], "31\n");
    ("opassign", "$x = 10; $x += 5; $x .= \"!\"; print($x);", [||], "15!\n");
    ("nested subs", "sub f { my $x = shift; return g($x) + 1; } sub g { my $y = shift; return $y * 2; } print(f(5));",
     [||], "11\n");
    ("foreach over split",
     "foreach $w (split(/-/, \"a-bb-ccc\")) { print(length($w)); }", [||],
     "1\n2\n3\n");
    ("hash overwrite", "$h{k} = 1; $h{k} = 2; print($h{k});", [||], "2\n");
    ("undef behaviour", "print($nothing + 1); print(\"[\" . $nothing . \"]\");", [||],
     "1\n[]\n");
    ("negative numbers", "$x = -5; print($x * -2, $x + 3);", [||], "10-2\n");
    ("chained concat", "print(\"a\" . 1 . \"b\" . 2.5);", [||], "a1b2.5\n");
    ("while with hash",
     "while (<>) { chomp($_); $seen{$_} = $seen{$_} + 1; } foreach $k (sort(keys(%seen))) { printf(\"%s:%d \", $k, $seen{$k}); }",
     [| "b"; "a"; "b" |], "a:1 b:2 ");
    ("regex anchors", "if (\"hello\" =~ /^h/) { print(\"1\"); } if (\"hello\" !~ /o$/) { print(\"2\"); } else { print(\"3\"); }",
     [||], "1\n3\n");
    ("regex class range", "$x = \"a1b2\"; $x =~ s/[0-9]/#/; print($x);", [||],
     "a#b2\n");
    ("capture in loop",
     "foreach $w ((\"cat7\", \"dog9\")) { $w =~ /([a-z]+)(\\d)/; print($1 . \"-\" . $2); }",
     [||], "cat-7\ndog-9\n");
    ("sprintf width", "print(sprintf(\"[%5s][%-3d]\", \"ab\", 7));", [||],
     "[   ab][7  ]\n");
    ("array via index", "$a[0] = 5; $a[1] = $a[0] * 2; print($a[1]);", [||], "10\n");
    ("scalar of split", "print(scalar(split(/,/, \"1,2,3,4\")));", [||], "4\n");
  ]

(* -- postscript ------------------------------------------------------------------- *)

let ps source =
  let rt = Rt.create ~program:"ps" ~input:"t" () in
  let interp = Lp_workloads.Ghost.interpret rt ~source in
  (rt, interp)

let ps_pages () =
  let _, s = ps "newpath 10 10 moveto 100 10 lineto 100 100 lineto closepath fill showpage showpage" in
  Alcotest.(check int) "two pages" 2 s.pages;
  Alcotest.(check bool) "bands painted" true (s.bands >= 1)

let ps_stack_ops () =
  (* compute (3 + 4) * 2 - 5 = 9 and draw a 9-high box: exercises arithmetic
     through visible behaviour (band count via bbox) *)
  let _, s =
    ps "3 4 add 2 mul 5 sub /h exch def newpath 10 10 moveto 20 10 lineto 20 10 h add lineto 10 10 h add lineto closepath fill"
  in
  Alcotest.(check int) "one band for a small box" 1 s.bands

let ps_procedures_and_control () =
  let _, s =
    ps
      "/box { newpath moveto dup 0 rlineto exch 0 exch rlineto neg 0 rlineto closepath \
       fill } def 0 1 3 { /i exch def 20 30 i 100 mul 10 add 50 box } for showpage"
  in
  Alcotest.(check int) "page shown" 1 s.pages;
  Alcotest.(check bool) "several boxes painted" true (s.bands >= 3)

let ps_dict_ops () =
  let _, s =
    ps "4 dict begin /x 42 def x 42 eq { newpath 5 5 moveto 50 5 lineto 50 50 lineto closepath fill } if end"
  in
  Alcotest.(check bool) "if-branch painted" true (s.bands >= 1)

let ps_show_text () =
  let _, s = ps "/Times findfont 12 scalefont setfont 72 700 moveto (hello world) show showpage" in
  Alcotest.(check bool) "text painted" true (s.bands >= 1)

let ps_error () =
  let rt = Rt.create ~program:"ps" ~input:"t" () in
  (match Lp_workloads.Ghost.interpret rt ~source:"1 0 idiv" with
  | exception Lp_workloads.Ps_object.Ps_error _ -> ()
  | _ -> Alcotest.fail "expected Ps_error");
  match Lp_workloads.Ghost.interpret rt ~source:"pop" with
  | exception Lp_workloads.Ps_object.Ps_error _ -> ()
  | _ -> Alcotest.fail "expected stackunderflow"

let ps_gsave_grestore () =
  let _, s =
    ps "gsave 100 100 translate newpath 0 0 moveto 10 0 rlineto 0 10 rlineto closepath fill grestore newpath 0 0 moveto 10 0 rlineto 0 10 rlineto closepath fill"
  in
  Alcotest.(check int) "both shapes painted" 2 s.bands

let suites =
  [
    ( "awk",
      List.map
        (fun (name, script, lines, expected) ->
          Alcotest.test_case name `Quick (check_awk name script lines expected))
        awk_cases );
    ( "perl",
      List.map
        (fun (name, script, stdin, expected) ->
          Alcotest.test_case name `Quick (check_perl name script stdin expected))
        perl_cases );
    ( "postscript",
      [
        Alcotest.test_case "pages and bands" `Quick ps_pages;
        Alcotest.test_case "arithmetic via geometry" `Quick ps_stack_ops;
        Alcotest.test_case "procedures and for" `Quick ps_procedures_and_control;
        Alcotest.test_case "dict ops" `Quick ps_dict_ops;
        Alcotest.test_case "show text" `Quick ps_show_text;
        Alcotest.test_case "errors" `Quick ps_error;
        Alcotest.test_case "gsave/grestore" `Quick ps_gsave_grestore;
      ] );
  ]
