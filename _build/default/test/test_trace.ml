(* Tests for lp_trace and lp_ialloc: trace building, lifetimes in
   bytes-allocated time, max-live tracking, statistics, text round-trips,
   and the instrumented runtime's safety checks. *)

module Rt = Lp_ialloc.Runtime
module T = Lp_trace.Trace
module L = Lp_trace.Lifetimes

(* A tiny hand-built trace:
     alloc a (10 bytes), alloc b (20), free a, alloc c (30), free c, end.
   The clock counts an object's own bytes (the paper's Table 3 minima are
   the programs' smallest object sizes, so birth happens before the
   object's own size advances the clock):
     a born at 0, dies at clock 30 -> lifetime 30 (10 own + 20 for b);
     c born at 30, dies at 60 -> lifetime 30 (its own size);
     b born at 10, survives -> lifetime 60 - 10 = 50. *)
let tiny_trace () =
  let rt = Rt.create ~program:"test" ~input:"unit" () in
  let main = Rt.func rt "main" in
  let helper = Rt.func rt "helper" in
  Rt.enter rt main;
  let a = Rt.alloc rt ~size:10 in
  let b = Rt.in_frame rt helper (fun () -> Rt.alloc rt ~size:20) in
  Rt.free rt a;
  let c = Rt.alloc rt ~size:30 in
  Rt.free rt c;
  Rt.touch rt b 5;
  Rt.leave rt;
  Rt.finish rt

let lifetimes () =
  let trace = tiny_trace () in
  let lt = L.compute trace in
  Alcotest.(check int) "objects" 3 (T.total_objects trace);
  Alcotest.(check int) "total bytes" 60 (T.total_bytes trace);
  Alcotest.(check int) "end clock" 60 lt.end_clock;
  Alcotest.(check int) "a lifetime" 30 lt.lifetime.(0);
  Alcotest.(check int) "c lifetime" 30 lt.lifetime.(2);
  Alcotest.(check int) "b (survivor) lifetime" 50 lt.lifetime.(1);
  Alcotest.(check bool) "b survived" true lt.survived.(1);
  Alcotest.(check bool) "a did not survive" false lt.survived.(0)

let short_lived () =
  let trace = tiny_trace () in
  let lt = L.compute trace in
  Alcotest.(check bool) "a short at 31" true (L.is_short_lived lt ~threshold:31 0);
  Alcotest.(check bool) "a long at 30" false (L.is_short_lived lt ~threshold:30 0);
  Alcotest.(check bool) "survivor never short" false
    (L.is_short_lived lt ~threshold:1000 1)

let max_live () =
  let trace = tiny_trace () in
  let bytes, objs = L.max_live trace in
  (* live: a(10) -> a+b(30) -> b(20) -> b+c(50) -> b(20) *)
  Alcotest.(check int) "max bytes" 50 bytes;
  Alcotest.(check int) "max objects" 2 objs

let stats () =
  let trace = tiny_trace () in
  let s = Lp_trace.Stats.compute trace in
  Alcotest.(check string) "program" "test" s.program;
  Alcotest.(check int) "total objects" 3 s.total_objects;
  Alcotest.(check int) "calls" 2 s.calls;
  Alcotest.(check bool) "has heap refs" true (trace.heap_refs > 0)

let chains_recorded () =
  let trace = tiny_trace () in
  (* two distinct raw chains: [main] and [helper; main] *)
  Alcotest.(check int) "distinct chains" 2 (Array.length trace.chains);
  let found = ref false in
  T.iter_allocs trace (fun ~obj ~size:_ ~chain ~key:_ ~tag:_ ->
      if obj = 1 then begin
        let c = T.chain_of_alloc trace chain in
        let names = Lp_callchain.Chain.names trace.funcs c in
        Alcotest.(check (list string)) "b's chain" [ "helper"; "main" ] names;
        found := true
      end);
  Alcotest.(check bool) "saw b" true !found

let textio_roundtrip () =
  let trace = tiny_trace () in
  let s = Lp_trace.Textio.to_string trace in
  let trace' = Lp_trace.Textio.of_string s in
  Alcotest.(check string) "program" trace.program trace'.program;
  Alcotest.(check int) "objects" trace.n_objects trace'.n_objects;
  Alcotest.(check int) "events" (Array.length trace.events) (Array.length trace'.events);
  Alcotest.(check int) "heap refs" trace.heap_refs trace'.heap_refs;
  Alcotest.(check int) "total refs" trace.total_refs trace'.total_refs;
  Alcotest.(check int) "chains" (Array.length trace.chains) (Array.length trace'.chains);
  Alcotest.(check (array int)) "obj refs" trace.obj_refs trace'.obj_refs;
  (* a second round-trip is identical text *)
  Alcotest.(check string) "fixed point" s (Lp_trace.Textio.to_string trace')

let textio_rejects_garbage () =
  (match Lp_trace.Textio.of_string "nonsense line\nend\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Lp_trace.Textio.of_string "trace x y\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected missing-end Failure"

(* -- runtime safety ------------------------------------------------------------ *)

let double_free () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.free rt h;
  Alcotest.check_raises "double free" (Invalid_argument "Runtime.free: object already freed")
    (fun () -> Rt.free rt h)

let touch_after_free () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.free rt h;
  Alcotest.check_raises "touch after free"
    (Invalid_argument "Runtime.touch: object already freed") (fun () -> Rt.touch rt h 1)

let zero_size_alloc () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  Alcotest.check_raises "size 0" (Invalid_argument "Runtime.alloc: size must be positive")
    (fun () -> ignore (Rt.alloc rt ~size:0))

let in_frame_unwinds () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let f = Rt.func rt "f" in
  (try Rt.in_frame rt f (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Rt.depth rt)

let live_object_count () =
  let rt = Rt.create ~program:"t" ~input:"t" () in
  let a = Rt.alloc rt ~size:8 in
  let _b = Rt.alloc rt ~size:8 in
  Alcotest.(check int) "two live" 2 (Rt.live_objects rt);
  Rt.free rt a;
  Alcotest.(check int) "one live" 1 (Rt.live_objects rt)

let ref_ratio_counted () =
  let rt = Rt.create ~ref_ratio:1.0 ~program:"t" ~input:"t" () in
  let h = Rt.alloc rt ~size:8 in
  Rt.touch rt h 10;
  Rt.instructions rt 100;
  let trace = Rt.finish rt in
  (* non-heap refs include ratio * instructions (plus instr from alloc) *)
  Alcotest.(check bool) "ratio applied" true (trace.total_refs - trace.heap_refs >= 100)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "lifetimes" `Quick lifetimes;
        Alcotest.test_case "short-lived threshold" `Quick short_lived;
        Alcotest.test_case "max live" `Quick max_live;
        Alcotest.test_case "stats" `Quick stats;
        Alcotest.test_case "chains recorded" `Quick chains_recorded;
        Alcotest.test_case "textio round-trip" `Quick textio_roundtrip;
        Alcotest.test_case "textio rejects garbage" `Quick textio_rejects_garbage;
      ] );
    ( "ialloc",
      [
        Alcotest.test_case "double free" `Quick double_free;
        Alcotest.test_case "touch after free" `Quick touch_after_free;
        Alcotest.test_case "zero-size alloc" `Quick zero_size_alloc;
        Alcotest.test_case "in_frame unwinds" `Quick in_frame_unwinds;
        Alcotest.test_case "live object count" `Quick live_object_count;
        Alcotest.test_case "ref ratio" `Quick ref_ratio_counted;
      ] );
  ]
