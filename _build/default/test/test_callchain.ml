(* Tests for lp_callchain: interning, the dynamic stack, cycle elimination,
   sub-chains, sites, and call-chain encryption. *)

module F = Lp_callchain.Func
module S = Lp_callchain.Stack
module C = Lp_callchain.Chain
module Site = Lp_callchain.Site

let interning () =
  let tbl = F.create_table () in
  let a = F.intern tbl "alpha" in
  let b = F.intern tbl "beta" in
  Alcotest.(check int) "alpha again" a (F.intern tbl "alpha");
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "name round-trip" "beta" (F.name tbl b);
  Alcotest.(check int) "size" 2 (F.size tbl)

let interning_many () =
  let tbl = F.create_table () in
  let ids = List.init 500 (fun i -> F.intern tbl (Printf.sprintf "f%d" i)) in
  Alcotest.(check int) "500 distinct" 500 (List.length (List.sort_uniq compare ids));
  Alcotest.(check string) "f250" "f250" (F.name tbl (List.nth ids 250))

let encryption_ids_stable () =
  (* ids derive from names, so two tables agree -- the property cross-run
     mapping of encrypted sites relies on *)
  let t1 = F.create_table () and t2 = F.create_table () in
  let a1 = F.intern t1 "foo" in
  let _ = F.intern t2 "other" in
  let a2 = F.intern t2 "foo" in
  Alcotest.(check int) "same 16-bit id" (F.encryption_id t1 a1) (F.encryption_id t2 a2);
  Alcotest.(check bool) "fits 16 bits" true (F.encryption_id t1 a1 < 65536)

let stack_basics () =
  let tbl = F.create_table () in
  let st = S.create tbl in
  let main = F.intern tbl "main" and f = F.intern tbl "f" and g = F.intern tbl "g" in
  S.push st main;
  S.push st f;
  S.push st g;
  Alcotest.(check int) "depth" 3 (S.depth st);
  Alcotest.(check (option int)) "top" (Some g) (S.top st);
  Alcotest.(check (array int)) "snapshot innermost first" [| g; f; main |] (S.snapshot st);
  Alcotest.(check (array int)) "last 2" [| g; f |] (S.snapshot_last st 2);
  S.pop st;
  Alcotest.(check int) "depth after pop" 2 (S.depth st);
  Alcotest.(check int) "calls counted" 3 (S.calls st)

let stack_underflow () =
  let tbl = F.create_table () in
  let st = S.create tbl in
  Alcotest.check_raises "pop empty" (Invalid_argument "Stack.pop: empty stack")
    (fun () -> S.pop st)

let encryption_key_invertible () =
  let tbl = F.create_table () in
  let st = S.create tbl in
  Alcotest.(check int) "initial key" 0 (S.encryption_key st);
  let f = F.intern tbl "f" and g = F.intern tbl "g" in
  S.push st f;
  let key_f = S.encryption_key st in
  S.push st g;
  S.pop st;
  Alcotest.(check int) "pop restores key" key_f (S.encryption_key st);
  S.pop st;
  Alcotest.(check int) "empty again" 0 (S.encryption_key st)

let encryption_key_order_insensitive () =
  (* XOR keys cannot distinguish permutations -- a known weakness of the
     scheme, worth pinning down as documented behaviour *)
  let tbl = F.create_table () in
  let f = F.intern tbl "f" and g = F.intern tbl "g" in
  let st1 = S.create tbl in
  S.push st1 f;
  S.push st1 g;
  let st2 = S.create tbl in
  S.push st2 g;
  S.push st2 f;
  Alcotest.(check int) "same key for permuted stacks" (S.encryption_key st1)
    (S.encryption_key st2)

(* -- cycle elimination -------------------------------------------------------- *)

let elim input expected () =
  Alcotest.(check (array int)) "eliminated" expected (C.eliminate_cycles input)

let cycle_cases =
  [
    ("no recursion", [| 2; 1; 0 |], [| 2; 1; 0 |]);
    ("empty", [||], [||]);
    ("single", [| 5 |], [| 5 |]);
    (* main(0) -> f(1) -> g(2) -> f(1) -> g(2) -> malloc(3), innermost first *)
    ("two-cycle", [| 3; 2; 1; 2; 1; 0 |], [| 3; 2; 1; 0 |]);
    ("self-recursion", [| 1; 1; 1; 0 |], [| 1; 0 |]);
    ("recursion at top", [| 0; 0 |], [| 0 |]);
    (* cycle not involving the innermost frame *)
    ("inner unique", [| 9; 1; 2; 1; 0 |], [| 9; 1; 0 |]);
  ]

let no_duplicates_after_elim =
  QCheck.Test.make ~name:"cycle elimination leaves no duplicate functions" ~count:500
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 5))
    (fun frames ->
      let raw = Array.of_list frames in
      let out = C.eliminate_cycles raw in
      let l = Array.to_list out in
      List.length l = List.length (List.sort_uniq compare l))

let elim_preserves_innermost =
  QCheck.Test.make ~name:"cycle elimination keeps the innermost frame" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 5))
    (fun frames ->
      let raw = Array.of_list frames in
      let out = C.eliminate_cycles raw in
      Array.length out > 0 && out.(0) = raw.(0))

let subchain () =
  let chain = [| 4; 3; 2; 1; 0 |] in
  Alcotest.(check (array int)) "last 2" [| 4; 3 |] (C.last chain 2);
  Alcotest.(check (array int)) "last 10 = all" chain (C.last chain 10);
  Alcotest.(check (array int)) "last 0" [||] (C.last chain 0)

let chain_equal_hash () =
  let a = [| 1; 2; 3 |] and b = [| 1; 2; 3 |] and c = [| 1; 2 |] in
  Alcotest.(check bool) "equal" true (C.equal a b);
  Alcotest.(check bool) "not equal" false (C.equal a c);
  Alcotest.(check int) "hash agrees" (C.hash a) (C.hash b);
  Alcotest.(check int) "compare equal" 0 (C.compare a b)

(* -- sites ----------------------------------------------------------------------- *)

let site_policies () =
  let raw = [| 3; 2; 1; 2; 1; 0 |] in
  let complete = Site.make Site.Complete_chain ~raw_chain:raw ~key:77 ~size:24 in
  Alcotest.(check (array int)) "complete eliminates cycles" [| 3; 2; 1; 0 |]
    complete.Site.chain;
  let last2 = Site.make (Site.Last_callers 2) ~raw_chain:raw ~key:77 ~size:24 in
  Alcotest.(check (array int)) "last-2 keeps raw" [| 3; 2 |] last2.Site.chain;
  let size_only = Site.make Site.Size_only ~raw_chain:raw ~key:77 ~size:24 in
  Alcotest.(check (array int)) "size-only has empty chain" [||] size_only.Site.chain;
  let enc = Site.make Site.Encrypted_key ~raw_chain:raw ~key:77 ~size:24 in
  Alcotest.(check (array int)) "encrypted key chain" [| 77 |] enc.Site.chain

let site_equality () =
  let raw = [| 2; 1; 0 |] in
  let s8 = Site.make Site.Complete_chain ~raw_chain:raw ~key:0 ~size:8 in
  let s8' = Site.make Site.Complete_chain ~raw_chain:[| 2; 1; 0 |] ~key:0 ~size:8 in
  let s16 = Site.make Site.Complete_chain ~raw_chain:raw ~key:0 ~size:16 in
  Alcotest.(check bool) "same chain+size equal" true (Site.equal s8 s8');
  Alcotest.(check bool) "different size differs (the paper's rule)" false
    (Site.equal s8 s16)

let site_rounding () =
  Alcotest.(check int) "13 -> 16" 16 (Site.round_size ~multiple:4 13);
  Alcotest.(check int) "12 -> 12" 12 (Site.round_size ~multiple:4 12);
  Alcotest.(check int) "1 -> 4" 4 (Site.round_size ~multiple:4 1);
  Alcotest.check_raises "multiple 0 rejected"
    (Invalid_argument "Site.round_size: multiple must be positive") (fun () ->
      ignore (Site.round_size ~multiple:0 5))

let site_table () =
  let module T = Site.Table in
  let tbl = T.create 16 in
  let raw = [| 1; 0 |] in
  let s = Site.make Site.Complete_chain ~raw_chain:raw ~key:0 ~size:8 in
  T.replace tbl s 42;
  let s' = Site.make Site.Complete_chain ~raw_chain:[| 1; 0 |] ~key:0 ~size:8 in
  Alcotest.(check (option int)) "lookup by equal site" (Some 42) (T.find_opt tbl s')

let suites =
  [
    ( "callchain",
      [
        Alcotest.test_case "interning" `Quick interning;
        Alcotest.test_case "interning many" `Quick interning_many;
        Alcotest.test_case "encryption ids stable" `Quick encryption_ids_stable;
        Alcotest.test_case "stack basics" `Quick stack_basics;
        Alcotest.test_case "stack underflow" `Quick stack_underflow;
        Alcotest.test_case "encryption key invertible" `Quick encryption_key_invertible;
        Alcotest.test_case "encryption key order-insensitive" `Quick
          encryption_key_order_insensitive;
        Alcotest.test_case "subchain" `Quick subchain;
        Alcotest.test_case "chain equal/hash" `Quick chain_equal_hash;
        Alcotest.test_case "site policies" `Quick site_policies;
        Alcotest.test_case "site equality" `Quick site_equality;
        Alcotest.test_case "site rounding" `Quick site_rounding;
        Alcotest.test_case "site table" `Quick site_table;
        QCheck_alcotest.to_alcotest no_duplicates_after_elim;
        QCheck_alcotest.to_alcotest elim_preserves_innermost;
      ]
      @ List.map
          (fun (name, input, expected) ->
            Alcotest.test_case ("cycle: " ^ name) `Quick (elim input expected))
          cycle_cases );
  ]
