(* Tests for the table renderer. *)

let render_basic () =
  let s =
    Lp_report.Table.render ~title:"T"
      ~columns:[ ("name", Lp_report.Table.Left); ("n", Lp_report.Table.Right) ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* right-aligned numbers line up: " 1 |" and "22 |" *)
  Alcotest.(check bool) "right alignment" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 0 && String.ends_with ~suffix:"|" l) lines)

let render_ragged_rejected () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.render: row has 1 cells, expected 2") (fun () ->
      ignore
        (Lp_report.Table.render
           ~columns:[ ("a", Lp_report.Table.Left); ("b", Lp_report.Table.Left) ]
           ~rows:[ [ "only" ] ] ()))

let formatting () =
  Alcotest.(check string) "integer" "42" (Lp_report.Table.fnum 42.);
  Alcotest.(check string) "one decimal" "3.1" (Lp_report.Table.fnum 3.14);
  Alcotest.(check string) "pct" "79.0" (Lp_report.Table.pct 79.0);
  Alcotest.(check string) "kbytes" "144" (Lp_report.Table.kbytes 147456)

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "render" `Quick render_basic;
        Alcotest.test_case "ragged rejected" `Quick render_ragged_rejected;
        Alcotest.test_case "formatting" `Quick formatting;
      ] );
  ]
