(* Integration tests: the full experiment pipelines at miniature scale.
   These catch wiring mistakes across library boundaries (registry -> trace
   -> train -> predict -> simulate) without the cost of the real inputs. *)

let scale = 0.04

let in_range name lo hi v =
  if not (v >= lo && v <= hi) then
    Alcotest.failf "%s = %f outside [%f, %f]" name v lo hi

let table2_pipeline () =
  let rows = Lifetime.Experiments.table2 ~scale () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun (r : Lifetime.Experiments.table2_row) ->
      Alcotest.(check bool) (r.program ^ " has objects") true
        (r.measured.total_objects > 0);
      in_range (r.program ^ " heap%") 0. 100. r.measured.heap_ref_pct)
    rows

let table3_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.table3_row) ->
      (* P2 quartiles bracket reality: min and max are exact *)
      Alcotest.(check (float 0.001)) (r.program ^ " min exact") r.exact.min r.p2.min;
      Alcotest.(check (float 0.001)) (r.program ^ " max exact") r.exact.max r.p2.max;
      Alcotest.(check bool) (r.program ^ " ordered") true
        (r.p2.min <= r.p2.median && r.p2.median <= r.p2.max))
    (Lifetime.Experiments.table3 ~scale ())

let table4_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.table4_row) ->
      let self = r.self in
      in_range (r.program ^ " actual") 0. 100.
        (Lifetime.Evaluate.actual_short_pct self);
      (* self prediction can never err: an all-short site stays all-short on
         the identical trace *)
      Alcotest.(check int) (r.program ^ " self error") 0 self.error_bytes;
      (* self predicted <= actual *)
      Alcotest.(check bool) (r.program ^ " predicted <= actual") true
        (self.correct_bytes <= self.actual_short_bytes);
      (* true prediction: correct + error partition the predicted bytes *)
      let t = r.true_ in
      Alcotest.(check bool) (r.program ^ " true sane") true
        (t.correct_bytes >= 0 && t.error_bytes >= 0))
    (Lifetime.Experiments.table4 ~scale ())

let table6_monotone_tail () =
  (* prediction at length 7 is always >= length 1 (more context can only be
     refined by the all-short rule in one direction on the same trace) *)
  List.iter
    (fun (r : Lifetime.Experiments.table6_row) ->
      let get name = (List.assoc name r.by_length).Lifetime.Experiments.pred_pct in
      Alcotest.(check bool)
        (r.program ^ " length 7 >= length 1")
        true
        (get "7" >= get "1" -. 1e-6))
    (Lifetime.Experiments.table6 ~scale ())

let table7_table8_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.table7_row) ->
      in_range (r.program ^ " arena alloc%") 0. 100. r.arena_alloc_pct;
      in_range (r.program ^ " arena bytes%") 0. 100. r.arena_bytes_pct)
    (Lifetime.Experiments.table7 ~scale ());
  List.iter
    (fun (r : Lifetime.Experiments.table8_row) ->
      (* the arena heap includes the 64KB arena area *)
      Alcotest.(check bool) (r.program ^ " arena heap >= 64KB") true
        (r.self_arena_heap >= 65536 && r.true_arena_heap >= 65536))
    (Lifetime.Experiments.table8 ~scale ())

let table9_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.table9_row) ->
      let pos (a, f) = a > 0. && f >= 0. in
      Alcotest.(check bool) (r.program ^ " costs positive") true
        (pos r.bsd && pos r.first_fit && pos r.arena_len4 && pos r.arena_cce);
      (* BSD frees are constant-time by construction *)
      Alcotest.(check (float 0.5)) (r.program ^ " bsd free = 17") 17. (snd r.bsd))
    (Lifetime.Experiments.table9 ~scale ())

let locality_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.locality_row) ->
      in_range (r.program ^ " ff miss") 0. 100. r.ff_miss_pct;
      in_range (r.program ^ " arena miss") 0. 100. r.arena_miss_pct;
      Alcotest.(check bool) (r.program ^ " refs counted") true (r.refs > 0);
      Alcotest.(check bool) (r.program ^ " pages counted") true (r.ff_pages > 0))
    (Lifetime.Experiments.locality ~scale ())

let generational_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.generational_row) ->
      Alcotest.(check bool) (r.program ^ " pretenuring reduces copying") true
        (r.pretenured.copied_bytes <= r.baseline.copied_bytes);
      Alcotest.(check int) (r.program ^ " baseline pretenures only oversized") 0
        (List.length []);
      Alcotest.(check bool) (r.program ^ " alloc counts equal") true
        (r.baseline.allocs = r.pretenured.allocs))
    (Lifetime.Experiments.generational ~scale ())

let by_type_pipeline () =
  List.iter
    (fun (r : Lifetime.Experiments.type_row) ->
      in_range (r.program ^ " tagged%") 0. 100. r.tagged_bytes_pct;
      in_range (r.program ^ " type-only") 0. 100. r.type_only_pct;
      (* all workloads allocate through tagged wrappers almost everywhere *)
      Alcotest.(check bool) (r.program ^ " mostly tagged") true
        (r.tagged_bytes_pct > 50.))
    (Lifetime.Experiments.by_type ~scale ())

let threshold_sweep_monotone () =
  let points =
    Lifetime.Experiments.threshold_sweep ~scale ~program:"gawk"
      ~thresholds:[ 1024; 32768; 1048576 ] ()
  in
  let pcts = List.map (fun (p : Lifetime.Experiments.threshold_point) -> p.predicted_pct) points in
  match pcts with
  | [ small; mid; big ] ->
      Alcotest.(check bool) "more threshold, more predicted" true
        (small <= mid +. 1e-6 && mid <= big +. 1e-6)
  | _ -> Alcotest.fail "expected three points"

let rounding_sweep_runs () =
  let points =
    Lifetime.Experiments.rounding_sweep ~scale ~program:"perl" ~roundings:[ 1; 4; 32 ] ()
  in
  Alcotest.(check int) "three points" 3 (List.length points)

let policy_sweep_tradeoff () =
  let points =
    Lifetime.Experiments.policy_sweep ~scale ~program:"espresso"
      ~fractions:[ 0.5; 1.0 ] ()
  in
  match points with
  | [ lax; strict ] ->
      Alcotest.(check bool) "lax covers at least as much" true
        (lax.predicted_pct >= strict.predicted_pct -. 1e-6)
  | _ -> Alcotest.fail "expected two points"

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "table2 pipeline" `Slow table2_pipeline;
        Alcotest.test_case "table3 pipeline" `Slow table3_pipeline;
        Alcotest.test_case "table4 pipeline" `Slow table4_pipeline;
        Alcotest.test_case "table6 monotone tail" `Slow table6_monotone_tail;
        Alcotest.test_case "table7/8 pipeline" `Slow table7_table8_pipeline;
        Alcotest.test_case "table9 pipeline" `Slow table9_pipeline;
        Alcotest.test_case "locality pipeline" `Slow locality_pipeline;
        Alcotest.test_case "generational pipeline" `Slow generational_pipeline;
        Alcotest.test_case "type pipeline" `Slow by_type_pipeline;
        Alcotest.test_case "threshold sweep monotone" `Slow threshold_sweep_monotone;
        Alcotest.test_case "rounding sweep" `Slow rounding_sweep_runs;
        Alcotest.test_case "policy sweep trade-off" `Slow policy_sweep_tradeoff;
      ] );
  ]
