(* Tests for the backtracking regex engine. *)

module R = Lp_workloads.Regex

let matches pat s = R.matches (R.compile pat) s

let check_match pat s expected () =
  Alcotest.(check bool) (Printf.sprintf "/%s/ =~ %S" pat s) expected (matches pat s)

let match_cases =
  [
    ("abc", "xabcy", true);
    ("abc", "ab", false);
    ("a.c", "axc", true);
    ("a.c", "ac", false);
    ("^abc", "abcdef", true);
    ("^abc", "xabc", false);
    ("abc$", "xabc", true);
    ("abc$", "abcx", false);
    ("^$", "", true);
    ("a*", "", true);
    ("aa*b", "aaab", true);
    ("ab+c", "ac", false);
    ("ab+c", "abbbc", true);
    ("ab?c", "ac", true);
    ("ab?c", "abc", true);
    ("ab?c", "abbc", false);
    ("a|b", "b", true);
    ("cat|dog", "hotdog", true);
    ("cat|dog", "bird", false);
    ("[abc]x", "bx", true);
    ("[abc]x", "dx", false);
    ("[a-m]q", "fq", true);
    ("[a-m]q", "zq", false);
    ("[^aeiou]z", "bz", true);
    ("[^aeiou]z", "az", false);
    ("\\d+", "abc123", true);
    ("\\d+", "abc", false);
    ("\\w+", "__x9", true);
    ("\\s", "a b", true);
    ("\\S+", "   ", false);
    ("(ab)+c", "ababc", true);
    ("(ab)+c", "abac", false);
    ("x(y|z)w", "xzw", true);
    ("a[.]b", "a.b", true);
    ("a[.]b", "axb", false);
    ("colou?r", "color", true);
    ("colou?r", "colour", true);
  ]

let leftmost_match () =
  let re = R.compile "o+" in
  match R.search re "foo boor" with
  | Some m ->
      Alcotest.(check int) "starts at first o" 1 m.start_pos;
      Alcotest.(check int) "greedy" 3 m.end_pos
  | None -> Alcotest.fail "expected a match"

let capture_groups () =
  let re = R.compile "(\\w+)@(\\w+)" in
  match R.search re "mail bob@example now" with
  | Some m ->
      Alcotest.(check (option string)) "group 1" (Some "bob")
        (R.group m "mail bob@example now" 1);
      Alcotest.(check (option string)) "group 2" (Some "example")
        (R.group m "mail bob@example now" 2);
      Alcotest.(check (option string)) "group 3 absent" None
        (R.group m "mail bob@example now" 3)
  | None -> Alcotest.fail "expected a match"

let alternation_captures () =
  let re = R.compile "(a+|b+)c" in
  let s = "xbbc" in
  match R.search re s with
  | Some m -> Alcotest.(check (option string)) "captured bb" (Some "bb") (R.group m s 1)
  | None -> Alcotest.fail "expected a match"

let replace_cases () =
  let re = R.compile "ch" in
  Alcotest.(check (option string)) "simple replace" (Some "keese")
    (R.replace_first re "cheese" ~template:"k");
  Alcotest.(check (option string)) "no match" None
    (R.replace_first re "kite" ~template:"k");
  let re2 = R.compile "(\\w+) (\\w+)" in
  Alcotest.(check (option string)) "swap groups" (Some "world hello!")
    (R.replace_first re2 "hello world!" ~template:"$2 $1")

let bad_patterns () =
  List.iter
    (fun pat ->
      match R.compile pat with
      | exception R.Bad_pattern _ -> ()
      | _ -> Alcotest.failf "pattern %S should be rejected" pat)
    [ "*a"; "+"; "(ab"; "[abc"; "a\\" ]

let empty_star_terminates () =
  (* (a?)* style patterns must not loop on empty matches *)
  let re = R.compile "(a?)*b" in
  Alcotest.(check bool) "matches" true (R.matches re "aab");
  Alcotest.(check bool) "no b" false (R.matches re "ccc")

let steps_counted () =
  let re = R.compile "a*a*a*c" in
  ignore (R.search re "aaaaaaaaaaab");
  Alcotest.(check bool) "backtracking steps recorded" true
    (R.steps_of_last_search () > 10)

let suites =
  [
    ( "regex",
      List.map
        (fun (pat, s, expected) ->
          Alcotest.test_case
            (Printf.sprintf "/%s/ on %S" pat s)
            `Quick (check_match pat s expected))
        match_cases
      @ [
          Alcotest.test_case "leftmost greedy" `Quick leftmost_match;
          Alcotest.test_case "capture groups" `Quick capture_groups;
          Alcotest.test_case "alternation captures" `Quick alternation_captures;
          Alcotest.test_case "replace_first" `Quick replace_cases;
          Alcotest.test_case "bad patterns" `Quick bad_patterns;
          Alcotest.test_case "empty star terminates" `Quick empty_star_terminates;
          Alcotest.test_case "steps counted" `Quick steps_counted;
        ] );
  ]
