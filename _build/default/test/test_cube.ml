(* Tests for the cube algebra: set semantics validated against direct
   truth-table evaluation on small variable counts. *)

module Cube = Lp_workloads.Cube
module Rt = Lp_ialloc.Runtime

let with_ctx n f =
  let rt = Rt.create ~program:"cube" ~input:"t" () in
  f (Cube.make_ctx rt ~n_vars:n)

let string_roundtrip () =
  with_ctx 5 (fun ctx ->
      List.iter
        (fun s ->
          let c = Cube.of_string ctx s in
          Alcotest.(check string) s s (Cube.to_string ctx c);
          Cube.release ctx c)
        [ "01-10"; "-----"; "00000"; "11111" ])

let contains_cases () =
  with_ctx 3 (fun ctx ->
      let dash = Cube.of_string ctx "---" in
      let c01 = Cube.of_string ctx "01-" in
      let m010 = Cube.of_string ctx "010" in
      Alcotest.(check bool) "--- contains 01-" true (Cube.contains ctx dash c01);
      Alcotest.(check bool) "01- contains 010" true (Cube.contains ctx c01 m010);
      Alcotest.(check bool) "010 !contains 01-" false (Cube.contains ctx m010 c01);
      Cube.release_cover ctx [ dash; c01; m010 ])

let intersect_cases () =
  with_ctx 3 (fun ctx ->
      let a = Cube.of_string ctx "0--" in
      let b = Cube.of_string ctx "-1-" in
      (match Cube.intersect ctx a b with
      | Some i ->
          Alcotest.(check string) "0-- and -1-" "01-" (Cube.to_string ctx i);
          Cube.release ctx i
      | None -> Alcotest.fail "expected intersection");
      let c = Cube.of_string ctx "1--" in
      (match Cube.intersect ctx a c with
      | Some _ -> Alcotest.fail "0-- and 1-- must be disjoint"
      | None -> ());
      Cube.release_cover ctx [ a; b; c ])

let distance_cases () =
  with_ctx 4 (fun ctx ->
      let a = Cube.of_string ctx "01-0" in
      let b = Cube.of_string ctx "10-0" in
      Alcotest.(check int) "distance 2" 2 (Cube.distance ctx a b);
      Alcotest.(check int) "distance to self" 0 (Cube.distance ctx a a);
      Cube.release_cover ctx [ a; b ])

(* evaluate a cover exhaustively for ground truth *)
let cover_minterms ctx cover =
  let n = Cube.n_vars ctx in
  List.init (1 lsl n) (fun m -> Cube.eval ctx cover m)

let tautology_cases () =
  with_ctx 3 (fun ctx ->
      let full = [ Cube.of_string ctx "---" ] in
      Alcotest.(check bool) "universe is tautology" true (Cube.is_tautology ctx full);
      let split = [ Cube.of_string ctx "0--"; Cube.of_string ctx "1--" ] in
      Alcotest.(check bool) "x + x' is tautology" true (Cube.is_tautology ctx split);
      let partial = [ Cube.of_string ctx "0--"; Cube.of_string ctx "11-" ] in
      Alcotest.(check bool) "partial is not" false (Cube.is_tautology ctx partial);
      List.iter (Cube.release_cover ctx) [ full; split; partial ])

let tautology_matches_truth_table () =
  with_ctx 4 (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:17L in
      for _ = 1 to 40 do
        let cover =
          List.init
            (1 + Lp_workloads.Prng.int rng 6)
            (fun _ ->
              Cube.of_string ctx
                (String.init 4 (fun _ ->
                     [| '0'; '1'; '-' |].(Lp_workloads.Prng.int rng 3))))
        in
        let truth = List.for_all (fun b -> b) (cover_minterms ctx cover) in
        Alcotest.(check bool) "tautology = truth table" truth
          (Cube.is_tautology ctx cover);
        Cube.release_cover ctx cover
      done)

let complement_matches_truth_table () =
  with_ctx 4 (fun ctx ->
      let rng = Lp_workloads.Prng.create ~seed:23L in
      for _ = 1 to 40 do
        let cover =
          List.init
            (1 + Lp_workloads.Prng.int rng 5)
            (fun _ ->
              Cube.of_string ctx
                (String.init 4 (fun _ ->
                     [| '0'; '1'; '-' |].(Lp_workloads.Prng.int rng 3))))
        in
        let comp = Cube.complement ctx cover in
        let f = cover_minterms ctx cover in
        let g = cover_minterms ctx comp in
        List.iteri
          (fun m fv ->
            if fv = List.nth g m then
              Alcotest.failf "complement wrong at minterm %d" m)
          f;
        Cube.release_cover ctx cover;
        Cube.release_cover ctx comp
      done)

let covers_cube_cases () =
  with_ctx 3 (fun ctx ->
      let f = [ Cube.of_string ctx "0--"; Cube.of_string ctx "-1-" ] in
      let inside = Cube.of_string ctx "01-" in
      let outside = Cube.of_string ctx "1--" in
      Alcotest.(check bool) "01- covered" true (Cube.covers_cube ctx f inside);
      Alcotest.(check bool) "1-- not covered" false (Cube.covers_cube ctx f outside);
      Cube.release_cover ctx f;
      Cube.release_cover ctx [ inside; outside ])

let minterm_eval () =
  with_ctx 3 (fun ctx ->
      (* f = x0 x1' (x0 is LSB) *)
      let f = [ Cube.of_string ctx "10-" ] in
      (* cube string position v corresponds to variable v: "10-" means
         x0=1, x1=0, x2=dash *)
      Alcotest.(check bool) "m=1 (x0=1,x1=0,x2=0)" true (Cube.eval ctx f 1);
      Alcotest.(check bool) "m=5 (x0=1,x1=0,x2=1)" true (Cube.eval ctx f 5);
      Alcotest.(check bool) "m=3 (x0=1,x1=1)" false (Cube.eval ctx f 3);
      Alcotest.(check bool) "m=0" false (Cube.eval ctx f 0);
      Cube.release_cover ctx f)

let espresso_preserves_function () =
  let rng = Lp_workloads.Prng.create ~seed:31L in
  for _ = 1 to 10 do
    let rt = Rt.create ~program:"esp" ~input:"t" () in
    let n_vars = 4 + Lp_workloads.Prng.int rng 2 in
    let on_set =
      List.init
        (3 + Lp_workloads.Prng.int rng 8)
        (fun _ ->
          String.init n_vars (fun _ ->
              [| '0'; '1'; '-' |].(Lp_workloads.Prng.int rng 3)))
    in
    (* compute ground truth before minimization *)
    let ctx = Cube.make_ctx rt ~n_vars in
    let cover = List.map (Cube.of_string ctx) on_set in
    let truth = List.init (1 lsl n_vars) (fun m -> Cube.eval ctx cover m) in
    Cube.release_cover ctx cover;
    let stats = Lp_workloads.Espresso.minimize rt ~n_vars ~on_set in
    Alcotest.(check bool) "cost never grows" true
      (stats.final_cubes <= max 1 stats.initial_cubes);
    (* the minimized cover must compute exactly the same function *)
    let ctx2 = Cube.make_ctx rt ~n_vars in
    let cover2 = List.map (Cube.of_string ctx2) stats.final_cover in
    let truth2 = List.init (1 lsl n_vars) (fun m -> Cube.eval ctx2 cover2 m) in
    Alcotest.(check (list bool)) "minimized cover computes same function" truth truth2;
    Cube.release_cover ctx2 cover2
  done

let suites =
  [
    ( "cube",
      [
        Alcotest.test_case "string round-trip" `Quick string_roundtrip;
        Alcotest.test_case "contains" `Quick contains_cases;
        Alcotest.test_case "intersect" `Quick intersect_cases;
        Alcotest.test_case "distance" `Quick distance_cases;
        Alcotest.test_case "tautology basics" `Quick tautology_cases;
        Alcotest.test_case "tautology vs truth table" `Quick tautology_matches_truth_table;
        Alcotest.test_case "complement vs truth table" `Quick
          complement_matches_truth_table;
        Alcotest.test_case "covers_cube" `Quick covers_cube_cases;
        Alcotest.test_case "minterm eval" `Quick minterm_eval;
        Alcotest.test_case "espresso smoke" `Quick espresso_preserves_function;
      ] );
  ]
