test/main.mli:
