test/test_callchain.ml: Alcotest Array Gen List Lp_callchain Printf QCheck QCheck_alcotest
