test/test_properties.ml: Alcotest Array Float Gen List Lp_allocsim Lp_ialloc Lp_quantile Lp_trace Lp_workloads Printf QCheck QCheck_alcotest String
