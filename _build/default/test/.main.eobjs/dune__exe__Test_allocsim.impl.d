test/test_allocsim.ml: Alcotest Gen List Lp_allocsim Lp_ialloc QCheck QCheck_alcotest
