test/test_workloads.ml: Alcotest Array List Lp_ialloc Lp_trace Lp_workloads Printf
