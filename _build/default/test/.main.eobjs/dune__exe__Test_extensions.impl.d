test/test_extensions.ml: Alcotest Array List Lp_allocsim Lp_ialloc Lp_trace
