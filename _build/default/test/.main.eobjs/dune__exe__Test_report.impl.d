test/test_report.ml: Alcotest List Lp_report String
