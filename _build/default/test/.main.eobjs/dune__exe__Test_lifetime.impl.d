test/test_lifetime.ml: Alcotest Lifetime List Lp_allocsim Lp_callchain Lp_ialloc Option String
