test/test_trace.ml: Alcotest Array Lp_callchain Lp_ialloc Lp_trace
