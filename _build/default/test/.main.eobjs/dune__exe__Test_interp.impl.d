test/test_interp.ml: Alcotest List Lp_ialloc Lp_workloads
