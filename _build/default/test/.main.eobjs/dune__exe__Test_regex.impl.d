test/test_regex.ml: Alcotest List Lp_workloads Printf
