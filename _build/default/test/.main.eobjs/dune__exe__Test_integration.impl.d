test/test_integration.ml: Alcotest Lifetime List
