test/test_bignum.ml: Alcotest List Lp_ialloc Lp_workloads Option Printf String
