test/test_cube.ml: Alcotest Array List Lp_ialloc Lp_workloads String
