test/test_quantile.ml: Alcotest Float Gen List Lp_quantile Lp_workloads QCheck QCheck_alcotest
