(* 4.2BSD (Kingsley) power-of-two buckets, hot-path representation.

   Each size class keeps its free payload addresses in a growable int-array
   stack instead of an [int list] (no cons cell per free, no pointer chase
   per alloc), and the payload->class index is a direct-address byte map
   keyed by [(payload - base - header) / 16] — every payload sits at a
   16-byte-aligned block start plus the 8-byte header, so the key is
   injective — in place of the seed's hashtable.  Pop/push order is LIFO
   exactly like the list representation and pages are carved in the same
   address order, so placements and Cost_model charges are byte-identical
   to the seed (golden-metrics test). *)

let header = 8
let page = 4096
let min_class = 4 (* 2^4 = 16 bytes *)
let max_class = 30

type t = {
  base : int;
  buckets : Int_stack.t array;  (* size class -> free payload addresses, LIFO *)
  mutable class_of : Bytes.t;  (* (payload-base-header)/16 -> class + 1; 0 = free *)
  mutable brk : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

let create ?(base = 0) ?(hint = 1024) () =
  {
    base;
    buckets = Array.init (max_class + 1) (fun _ -> Int_stack.create ());
    class_of = Bytes.make (max 256 (min hint 262144)) '\000';
    brk = base;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

let class_for size =
  let need = size + header in
  let rec go c = if 1 lsl c >= need then c else go (c + 1) in
  go min_class

(* grow the class map to cover the current break *)
let ensure_map t =
  let need = (t.brk - t.base) lsr 4 in
  let cap = Bytes.length t.class_of in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < need do cap' := !cap' * 2 done;
    let bigger = Bytes.make !cap' '\000' in
    Bytes.blit t.class_of 0 bigger 0 cap;
    t.class_of <- bigger
  end

let alloc t size =
  if size <= 0 then invalid_arg "Bsd.alloc: size must be positive";
  t.allocs <- t.allocs + 1;
  t.alloc_instr <- t.alloc_instr + Cost_model.bsd_alloc_base;
  let c = class_for size in
  if c > max_class then invalid_arg "Bsd.alloc: size too large";
  let bucket = t.buckets.(c) in
  if Int_stack.is_empty bucket then begin
    (* carve a page (or one block if larger than a page) *)
    t.alloc_instr <- t.alloc_instr + Cost_model.bsd_carve_page;
    let block = 1 lsl c in
    let span = max page block in
    let start = t.brk in
    t.brk <- t.brk + span;
    ensure_map t;
    let n = span / block in
    (* highest cell first: pops then hand out ascending addresses, the
       order the list representation carved them *)
    for i = n - 1 downto 0 do
      Int_stack.push bucket (start + (i * block) + header)
    done
  end;
  let payload = Int_stack.pop bucket in
  Bytes.unsafe_set t.class_of ((payload - t.base - header) lsr 4)
    (Char.unsafe_chr (c + 1));
  payload

let free t payload =
  let off = payload - t.base - header in
  let idx = off lsr 4 in
  if off < 0 || off land 15 <> 0 || idx >= Bytes.length t.class_of then
    invalid_arg "Bsd.free: not an allocated address";
  let c = Char.code (Bytes.unsafe_get t.class_of idx) - 1 in
  if c < 0 then invalid_arg "Bsd.free: not an allocated address";
  Bytes.unsafe_set t.class_of idx '\000';
  t.frees <- t.frees + 1;
  t.free_instr <- t.free_instr + Cost_model.bsd_free;
  Int_stack.push t.buckets.(c) payload

(* A power-of-two block already spans its whole class, so any resize that
   stays in the class is absorbed in place (the header rewrite is the
   driver's Cost_model.realloc_in_place charge); a class change is a free
   plus an alloc, whose copy the driver bills. *)
let realloc t payload ~new_size =
  if new_size <= 0 then invalid_arg "Bsd.realloc: size must be positive";
  let off = payload - t.base - header in
  let idx = off lsr 4 in
  if off < 0 || off land 15 <> 0 || idx >= Bytes.length t.class_of then
    invalid_arg "Bsd.realloc: not an allocated address";
  let c = Char.code (Bytes.unsafe_get t.class_of idx) - 1 in
  if c < 0 then invalid_arg "Bsd.realloc: not an allocated address";
  let c' = class_for new_size in
  if c' > max_class then invalid_arg "Bsd.realloc: size too large";
  if c' = c then payload
  else begin
    free t payload;
    alloc t new_size
  end

let max_heap_size t = t.brk - t.base
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees

let charge_alloc t n = t.alloc_instr <- t.alloc_instr + n

module Backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "bsd"
  let uses_prediction = false
  let create ?base ?hint () = create ?base ?hint ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free

  let realloc =
    Some
      (fun t ~addr ~old_size:_ ~new_size ~predicted:_ ->
        realloc t addr ~new_size)

  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants _ = ()
end
