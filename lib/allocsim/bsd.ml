let header = 8
let page = 4096
let min_class = 4 (* 2^4 = 16 bytes *)
let max_class = 30

type t = {
  base : int;
  buckets : int list array;  (* size class -> free payload addresses *)
  class_of : (int, int) Hashtbl.t;  (* payload addr -> class, while allocated *)
  mutable brk : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

let create ?(base = 0) () =
  {
    base;
    buckets = Array.make (max_class + 1) [];
    class_of = Hashtbl.create 1024;
    brk = base;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

let class_for size =
  let need = size + header in
  let rec go c = if 1 lsl c >= need then c else go (c + 1) in
  go min_class

let alloc t size =
  if size <= 0 then invalid_arg "Bsd.alloc: size must be positive";
  t.allocs <- t.allocs + 1;
  t.alloc_instr <- t.alloc_instr + Cost_model.bsd_alloc_base;
  let c = class_for size in
  if c > max_class then invalid_arg "Bsd.alloc: size too large";
  (match t.buckets.(c) with
  | [] ->
      (* carve a page (or one block if larger than a page) *)
      t.alloc_instr <- t.alloc_instr + Cost_model.bsd_carve_page;
      let block = 1 lsl c in
      let span = max page block in
      let start = t.brk in
      t.brk <- t.brk + span;
      let n = span / block in
      let fresh = List.init n (fun i -> start + (i * block) + header) in
      t.buckets.(c) <- fresh
  | _ -> ());
  match t.buckets.(c) with
  | [] -> assert false
  | payload :: rest ->
      t.buckets.(c) <- rest;
      Hashtbl.replace t.class_of payload c;
      payload

let free t payload =
  match Hashtbl.find_opt t.class_of payload with
  | None -> invalid_arg "Bsd.free: not an allocated address"
  | Some c ->
      Hashtbl.remove t.class_of payload;
      t.frees <- t.frees + 1;
      t.free_instr <- t.free_instr + Cost_model.bsd_free;
      t.buckets.(c) <- payload :: t.buckets.(c)

let max_heap_size t = t.brk - t.base
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees

let charge_alloc t n = t.alloc_instr <- t.alloc_instr + n

module Backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "bsd"
  let uses_prediction = false
  let create ?base () = create ?base ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free
  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants _ = ()
end
