(** First-fit free-list allocator with Knuth's enhancements: a roving
    pointer (searches resume where the previous one stopped) and immediate
    boundary-tag coalescing of freed neighbours.  This is the paper's
    baseline allocator and the general-purpose fallback inside the arena
    allocator (§5.2: "the first-fit algorithm becomes the degenerate case
    of an arena allocator that allocates no objects in arenas").

    The simulation manages block metadata only (no payload bytes exist);
    addresses are byte offsets in a simulated address space that grows by
    fixed sbrk chunks, and the maximum break is the allocator's heap size
    (Table 8). *)

type t

type policy =
  | First  (** Knuth's first fit with a roving pointer (the paper's baseline) *)
  | Best  (** best fit: whole-list scan for the tightest block (for ablations) *)

val create : ?base:int -> ?hint:int -> ?sbrk_chunk:int -> ?policy:policy -> unit -> t
(** [base] is the address the heap starts at (default 0; the arena
    allocator puts its arena area below).  [hint] pre-sizes the
    payload-address map (expected object count; purely a speed knob).
    [sbrk_chunk] is the granularity of simulated [sbrk] growth (default
    8192, matching the 8 KB multiples of the paper's Table 8 heap sizes).
    [policy] defaults to {!First}. *)

val alloc : t -> int -> int
(** [alloc t size] returns the payload address of a new block.  The block
    occupies [size] rounded up to 8 bytes plus an 8-byte header.
    @raise Invalid_argument if [size <= 0]. *)

val free : t -> int -> unit
(** [free t addr] frees the block whose payload address is [addr],
    coalescing with free neighbours.
    @raise Invalid_argument on an address not currently allocated. *)

val heap_size : t -> int
(** Current break minus base. *)

val max_heap_size : t -> int
(** High-water mark of {!heap_size} — Table 8's "Heap Size". *)

val live_bytes : t -> int
(** Payload + header bytes currently allocated. *)

val alloc_instr : t -> int
(** Accumulated simulated instructions spent in {!alloc}. *)

val free_instr : t -> int

val allocs : t -> int
val frees : t -> int

val free_blocks : t -> int
(** Current length of the free list (walks it; for tests such as the
    roving-search inspection bound). *)

val check_invariants : t -> unit
(** Verify the block list: blocks tile the heap exactly, no two adjacent
    free blocks, free list consistent.  For tests.
    @raise Failure when an invariant is broken. *)

val make_backend : ?sbrk_chunk:int -> ?policy:policy -> unit -> Backend.t
(** A registry backend over a custom sbrk granularity (the
    [first-fit:sbrk=<n>] / [best-fit:sbrk=<n>] specs).  Without
    [sbrk_chunk] this is exactly [Backend] (policy {!First}) or
    [Best_backend] (policy {!Best}). *)

module Best_backend : Backend.BACKEND with type t = t
(** The same structure under the best-fit policy — the allocator-policy
    ablation's alternative, promoted to a first-class registry entry. *)

module Backend : Backend.BACKEND with type t = t
(** First fit (roving pointer) as a registry backend. *)

