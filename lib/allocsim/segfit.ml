(* Segregated-fit slab allocator, hot-path representation.

   The seed kept [slab.freed] and [free_pages] as [int list] and mapped
   payload->origin through a hashtable.  Both lists are LIFO, so they
   become {!Int_stack}s (same pop order, no cons cell per free), and the
   origin map becomes a direct-address variant array keyed by
   [(payload - heap_base - header) / 16] — slab cells are 16-byte-aligned
   page offsets and span bases are page-aligned, so the key is injective.
   Placement decisions and Cost_model charges are byte-identical to the
   seed (golden-metrics test). *)

let header = 8
let page = 4096

(* The slab cell sizes, smallest to largest; anything needing more than the
   last entry takes the large-object span path.  Historically hard-wired to
   powers of two; now a [create] parameter (the `segfit:slab=` spec and the
   tuner search over it), constrained to multiples of 16 so the
   direct-address origin map's /16 key stays injective.  The default is the
   original power-of-two ladder, byte-identical to the pre-parameterized
   allocator (golden-metrics test). *)
let default_classes = [| 16; 32; 64; 128; 256; 512; 1024; 2048 |]

(* A slab is one page carved into [cell]-byte cells.  [next_cell] bumps
   through virgin cells; [freed] stacks recycled ones.  When [live] drops to
   zero the whole page returns to the allocator's page pool, where any size
   class (or a one-page large allocation) can claim it — the structural
   difference from the Kingsley BSD allocator, whose buckets keep their
   pages forever. *)
type slab = {
  base : int;
  cls : int;  (* index into the cell-size ladder *)
  cell : int;  (* cell size in bytes *)
  mutable live : int;
  mutable next_cell : int;  (* offset of the first never-used byte *)
  freed : Int_stack.t;  (* payload addresses, LIFO *)
}

type size_class = { mutable nonfull : slab list }

type origin =
  | No  (* not a live payload *)
  | Small of slab
  | Large of int  (* span pages *)

type t = {
  heap_base : int;
  cells : int array;  (* ascending cell sizes, one per size class *)
  cls_of_need : Bytes.t;  (* header-inclusive byte need -> class index *)
  max_cell : int;  (* last entry of [cells] *)
  classes : size_class array;
  mutable origin_of : origin array;  (* (payload-heap_base-header)/16 -> origin *)
  slab_of_page : (int, slab) Hashtbl.t;
  free_pages : Int_stack.t;  (* single recycled pages *)
  free_spans : (int, int list) Hashtbl.t;  (* n pages -> span base addrs *)
  mutable brk : int;
  mutable slabs_created : int;
  mutable pages_recycled : int;
  mutable large_spans : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

let validate_classes cells =
  let fail fmt = Printf.ksprintf invalid_arg ("Segfit.create: " ^^ fmt) in
  if Array.length cells = 0 then fail "empty size-class list";
  if Array.length cells > 128 then
    fail "%d size classes (at most 128)" (Array.length cells);
  Array.iteri
    (fun i c ->
      if c mod 16 <> 0 then
        fail "size class %d is not a multiple of 16" c
      else if c < 16 || c > page then
        fail "size class %d outside [16, %d]" c page
      else if i > 0 && c <= cells.(i - 1) then
        fail "size classes not strictly ascending at %d" c)
    cells

let create ?(base = 0) ?(hint = 1024) ?(classes = default_classes) () =
  validate_classes classes;
  let cells = Array.copy classes in
  let n_cls = Array.length cells in
  let max_cell = cells.(n_cls - 1) in
  (* O(1) class lookup: byte need (size + header) -> smallest fitting class *)
  let cls_of_need = Bytes.create (max_cell + 1) in
  let cls = ref 0 in
  for need = 0 to max_cell do
    if need > cells.(!cls) then incr cls;
    Bytes.unsafe_set cls_of_need need (Char.unsafe_chr !cls)
  done;
  {
    heap_base = base;
    cells;
    cls_of_need;
    max_cell;
    classes = Array.init n_cls (fun _ -> { nonfull = [] });
    origin_of = Array.make (max 256 (min hint 262144)) No;
    slab_of_page = Hashtbl.create (max 64 (min hint 65536 / 8));
    free_pages = Int_stack.create ();
    free_spans = Hashtbl.create 8;
    brk = base;
    slabs_created = 0;
    pages_recycled = 0;
    large_spans = 0;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

(* smallest class whose cell fits [size] plus header, or -1 for the
   large-object span path *)
let class_for t size =
  let need = size + header in
  if need > t.max_cell then -1
  else Char.code (Bytes.unsafe_get t.cls_of_need need)

(* grow the origin map to cover the current break *)
let ensure_map t =
  let need = (t.brk - t.heap_base) lsr 4 in
  let cap = Array.length t.origin_of in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < need do cap' := !cap' * 2 done;
    let bigger = Array.make !cap' No in
    Array.blit t.origin_of 0 bigger 0 cap;
    t.origin_of <- bigger
  end

let origin_index t payload = (payload - t.heap_base - header) lsr 4

let sbrk_pages t n =
  let addr = t.brk in
  t.brk <- t.brk + (n * page);
  ensure_map t;
  addr

let take_page t =
  if Int_stack.is_empty t.free_pages then sbrk_pages t 1
  else begin
    t.alloc_instr <- t.alloc_instr + Cost_model.seg_recycle;
    Int_stack.pop t.free_pages
  end

(* -- the small-object path ------------------------------------------------------- *)

let fresh_slab t cls =
  t.alloc_instr <- t.alloc_instr + Cost_model.seg_slab_init;
  let base = take_page t in
  let slab =
    {
      base;
      cls;
      cell = Array.unsafe_get t.cells cls;
      live = 0;
      next_cell = 0;
      freed = Int_stack.create ();
    }
  in
  Hashtbl.replace t.slab_of_page (base / page) slab;
  t.slabs_created <- t.slabs_created + 1;
  slab

let slab_exhausted slab =
  Int_stack.is_empty slab.freed && slab.next_cell + slab.cell > page

let alloc_small t cls =
  let sc = t.classes.(cls) in
  let slab =
    match sc.nonfull with
    | s :: _ -> s
    | [] ->
        let s = fresh_slab t cls in
        sc.nonfull <- [ s ];
        s
  in
  let payload =
    if Int_stack.is_empty slab.freed then begin
      let cell = slab.base + slab.next_cell in
      slab.next_cell <- slab.next_cell + slab.cell;
      cell + header
    end
    else Int_stack.pop slab.freed
  in
  slab.live <- slab.live + 1;
  if slab_exhausted slab then
    sc.nonfull <- List.filter (fun s -> s != slab) sc.nonfull;
  Array.unsafe_set t.origin_of (origin_index t payload) (Small slab);
  payload

let free_small t payload slab =
  let sc = t.classes.(slab.cls) in
  let was_exhausted = slab_exhausted slab in
  slab.live <- slab.live - 1;
  Int_stack.push slab.freed payload;
  if slab.live = 0 then begin
    (* the page is empty: return it to the pool for any class to reuse *)
    t.free_instr <- t.free_instr + Cost_model.seg_recycle;
    sc.nonfull <- List.filter (fun s -> s != slab) sc.nonfull;
    Hashtbl.remove t.slab_of_page (slab.base / page);
    Int_stack.push t.free_pages slab.base;
    t.pages_recycled <- t.pages_recycled + 1
  end
  else if was_exhausted then sc.nonfull <- slab :: sc.nonfull

(* -- the large-object path (whole-page spans) ------------------------------------ *)

let span_pages size = ((size + header) + page - 1) / page

let alloc_large t size =
  t.alloc_instr <- t.alloc_instr + Cost_model.seg_large_alloc;
  let n = span_pages size in
  let base =
    if n = 1 then take_page t
    else
      match Hashtbl.find_opt t.free_spans n with
      | Some (base :: rest) ->
          t.alloc_instr <- t.alloc_instr + Cost_model.seg_recycle;
          Hashtbl.replace t.free_spans n rest;
          base
      | _ -> sbrk_pages t n
  in
  t.large_spans <- t.large_spans + 1;
  let payload = base + header in
  Array.unsafe_set t.origin_of (origin_index t payload) (Large n);
  payload

let free_large t payload n =
  t.free_instr <- t.free_instr + Cost_model.seg_large_free;
  let base = payload - header in
  if n = 1 then Int_stack.push t.free_pages base
  else
    Hashtbl.replace t.free_spans n
      (base :: Option.value (Hashtbl.find_opt t.free_spans n) ~default:[])

(* -- the public operations --------------------------------------------------------- *)

let alloc t size =
  if size <= 0 then invalid_arg "Segfit.alloc: size must be positive";
  t.allocs <- t.allocs + 1;
  t.alloc_instr <- t.alloc_instr + Cost_model.seg_alloc_base;
  let cls = class_for t size in
  if cls >= 0 then alloc_small t cls else alloc_large t size

let free t payload =
  let off = payload - t.heap_base - header in
  let idx = off lsr 4 in
  if off < 0 || off land 15 <> 0 || idx >= Array.length t.origin_of then
    invalid_arg "Segfit.free: not an allocated address";
  match Array.unsafe_get t.origin_of idx with
  | No -> invalid_arg "Segfit.free: not an allocated address"
  | origin -> (
      Array.unsafe_set t.origin_of idx No;
      t.frees <- t.frees + 1;
      t.free_instr <- t.free_instr + Cost_model.seg_free_base;
      match origin with
      | No -> assert false
      | Small slab -> free_small t payload slab
      | Large n -> free_large t payload n)

(* A small cell absorbs any resize within its size class; a span absorbs
   any resize with the same page count.  Everything else is a free plus
   an alloc, whose copy the driver bills. *)
let realloc t payload ~new_size =
  if new_size <= 0 then invalid_arg "Segfit.realloc: size must be positive";
  let off = payload - t.heap_base - header in
  let idx = off lsr 4 in
  if off < 0 || off land 15 <> 0 || idx >= Array.length t.origin_of then
    invalid_arg "Segfit.realloc: not an allocated address";
  let cls = class_for t new_size in
  let in_place =
    match Array.unsafe_get t.origin_of idx with
    | No -> invalid_arg "Segfit.realloc: not an allocated address"
    | Small slab -> cls >= 0 && cls = slab.cls
    | Large n -> cls < 0 && span_pages new_size = n
  in
  if in_place then payload
  else begin
    free t payload;
    alloc t new_size
  end

let max_heap_size t = t.brk - t.heap_base
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees
let charge_alloc t n = t.alloc_instr <- t.alloc_instr + n
let slabs_created t = t.slabs_created
let pages_recycled t = t.pages_recycled
let large_spans t = t.large_spans

let check_invariants t =
  (* every live payload's slab agrees; slab live counts sum to the live table *)
  let per_slab = Hashtbl.create 64 in
  Array.iteri
    (fun idx origin ->
      let payload = t.heap_base + (idx lsl 4) + header in
      match origin with
      | No -> ()
      | Large n ->
          if n < 1 then failwith "non-positive span length"
      | Small slab ->
          if payload < slab.base || payload >= slab.base + page then
            failwith
              (Printf.sprintf "payload %d outside its slab [%d, %d)" payload
                 slab.base (slab.base + page));
          Hashtbl.replace per_slab slab.base
            (1 + Option.value (Hashtbl.find_opt per_slab slab.base) ~default:0))
    t.origin_of;
  Hashtbl.iter
    (fun _ slab ->
      let counted = Option.value (Hashtbl.find_opt per_slab slab.base) ~default:0 in
      if slab.live <> counted then
        failwith
          (Printf.sprintf "slab at %d: live=%d but %d live payloads" slab.base
             slab.live counted);
      if slab.next_cell > page then failwith "slab bump ran past its page")
    t.slab_of_page;
  (* nonfull lists only hold slabs with room *)
  Array.iter
    (fun sc ->
      List.iter
        (fun slab -> if slab_exhausted slab then failwith "exhausted slab on nonfull list")
        sc.nonfull)
    t.classes;
  if (t.brk - t.heap_base) mod page <> 0 then failwith "brk not page-aligned"

(* the sibling [Backend] module is shadowed from here on by this
   allocator's backend instance; keep the signature reachable *)
module Backend_api = Backend

module Backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "segfit"
  let uses_prediction = false
  let create ?base ?hint () = create ?base ?hint ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free

  let realloc =
    Some
      (fun t ~addr ~old_size:_ ~new_size ~predicted:_ ->
        realloc t addr ~new_size)

  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size

  let extra t =
    Metrics.Segfit_stats
      {
        slabs_created = t.slabs_created;
        pages_recycled = t.pages_recycled;
        large_spans = t.large_spans;
      }

  let check_invariants = check_invariants
end

(* A segfit backend with a custom cell-size ladder, for parameterized
   `segfit:slab=` registry specs and the tuner.  The default ladder is the
   plain [Backend] (same module, same metrics). *)
let make_backend ?classes () : Backend_api.t =
  match classes with
  | None -> (module Backend)
  | Some _ ->
      let create' ?base ?hint () = create ?base ?hint ?classes () in
      (module struct
        include Backend

        let create = create'
      end)
