module type BACKEND = sig
  type t

  val name : string
  val uses_prediction : bool
  val create : ?base:int -> ?hint:int -> unit -> t
  val alloc : t -> size:int -> predicted:bool -> int
  val free : t -> int -> unit

  val realloc :
    (t -> addr:int -> old_size:int -> new_size:int -> predicted:bool -> int)
    option

  val charge_alloc : t -> int -> unit
  val allocs : t -> int
  val frees : t -> int
  val alloc_instr : t -> int
  val free_instr : t -> int
  val max_heap_size : t -> int
  val extra : t -> Metrics.extra
  val check_invariants : t -> unit
end

type t = (module BACKEND)

let name (module B : BACKEND) = B.name
let uses_prediction (module B : BACKEND) = B.uses_prediction
