(** Segregated fit with power-of-two size classes — the BSD-descendant
    design modern general-purpose allocators (PHKmalloc, tcmalloc's small
    path, jemalloc bins) use, added as the registry's "modern baseline"
    alongside the paper's 1993 allocators.

    Small objects (rounded, with an 8-byte header, to a power of two up to
    half a page) are carved from per-class one-page slabs; each slab tracks
    its live count and a stack of freed cells.  Unlike the Kingsley BSD
    allocator, a slab whose live count reaches zero returns its page to a
    shared pool that any size class can reclaim, so memory moves between
    size classes and fragmentation stays bounded under phase changes.
    Objects larger than half a page get dedicated whole-page spans, reused
    exactly by page count.  Allocation and free are constant-time. *)

type t

val default_classes : int array
(** The power-of-two cell-size ladder [16; 32; ...; 2048] the allocator
    has always used; [create] without [classes] is byte-identical to the
    pre-parameterized allocator. *)

val create : ?base:int -> ?hint:int -> ?classes:int array -> unit -> t
(** [hint] is the expected object count; it pre-sizes the payload-origin
    map (a speed knob only — simulated metrics are unaffected).

    [classes] (default {!default_classes}) is the slab cell-size ladder:
    strictly ascending, each a multiple of 16 (the payload-origin map's
    direct-address key is the 16-byte-aligned page offset) within
    [16, 4096], at most 128 entries.  Objects needing more than the last
    entry (header included) take the whole-page span path.
    @raise Invalid_argument on a ladder violating those constraints. *)

val alloc : t -> int -> int
(** @raise Invalid_argument if size is not positive. *)

val free : t -> int -> unit
(** @raise Invalid_argument on an address not currently allocated. *)

val max_heap_size : t -> int
val alloc_instr : t -> int
val free_instr : t -> int
val allocs : t -> int
val frees : t -> int
val charge_alloc : t -> int -> unit

val slabs_created : t -> int
val pages_recycled : t -> int
val large_spans : t -> int

val check_invariants : t -> unit
(** Slab accounting: live counts match the live-object table, bump pointers
    stay inside their page, nonfull lists hold only slabs with room.
    @raise Failure when an invariant is broken. *)

val make_backend : ?classes:int array -> unit -> Backend.t
(** A segfit backend over a custom cell-size ladder (the
    [segfit:slab=<list>] registry spec).  Without [classes] this is
    exactly the [Backend] module below. *)

module Backend : Backend.BACKEND with type t = t
