(** Results of a trace-driven allocator simulation: a common core every
    backend fills, plus a backend-specific extension ([extra]) so e.g.
    first-fit results no longer carry dead arena fields. *)

type arena_stats = {
  arena_allocs : int;  (** objects placed in arenas *)
  arena_bytes : int;
  arena_resets : int;
  overflow_allocs : int;  (** predicted-short allocs that missed the arenas *)
}

type segfit_stats = {
  slabs_created : int;  (** size-class pages carved from the page pool or sbrk *)
  pages_recycled : int;  (** emptied slab pages returned to the page pool *)
  large_spans : int;  (** allocations served by whole-page spans *)
}

type extra =
  | Core  (** no backend-specific statistics *)
  | Arena_stats of arena_stats
  | Segfit_stats of segfit_stats

type t = {
  algorithm : string;
  allocs : int;
  frees : int;
  reallocs : int;  (** realloc events replayed *)
  realloc_in_place : int;  (** resizes the backend absorbed without moving *)
  realloc_moves : int;  (** resizes that paid a fresh block plus a copy *)
  predictions : int;  (** oracle consultations (alloc and realloc sites) *)
  mispredicts_short_lived : int;
      (** objects predicted short-lived that lived past the threshold or
          survived the trace — the arena-pollution direction *)
  mispredicts_long_lived : int;
      (** objects not predicted short-lived that died short — missed
          arena placements *)
  total_bytes : int;
  max_heap : int;  (** bytes, arena area included where applicable *)
  max_live : int;  (** peak simultaneously-live payload bytes *)
  instr_per_alloc : float;
  instr_per_free : float;
  extra : extra;
}

val arena_stats : t -> arena_stats option

val arena_alloc_pct : t -> float
(** Percentage of allocations placed in arenas (Table 7); 0 for backends
    without arena statistics. *)

val arena_bytes_pct : t -> float
(** Percentage of bytes placed in arenas (Table 7). *)

val fragmentation_pct : t -> float
(** [100 * (1 - max_live / max_heap)] — address space held beyond the
    payload peak. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object per metrics record: the core fields plus whatever the
    backend's [extra] carries, flattened.  For [lpalloc ... --json].
    The realloc counters appear (in both [pp] and [to_json]) only when
    [reallocs > 0], so realloc-free replays render byte-identically to
    releases that predate the counters.  The prediction/mispredict
    counters follow the same contract, gated on [predictions > 0]: only
    replays where a predicting backend consulted an oracle render
    them. *)
