(* Per-domain pools of the per-replay direct-address tables.  A candidate
   sweep replays the same trace through hundreds of backends; without
   pooling, every replay allocates (and the GC walks) two or three
   n_objects-sized arrays.  Each domain owns one scratch record that is
   reset (prefix fill) instead of reallocated, so steady-state candidate
   evaluation does no per-replay major allocation on the driver side.

   The pool is safe by construction: a scratch is handed out to at most
   one replay at a time ([busy] flag); a nested replay on the same domain
   — which the current code never performs — would simply fall back to a
   private, unpooled record. *)

type t = {
  mutable addr_of : int array;  (* obj -> payload address, -1 = dead *)
  mutable size_of : int array;  (* obj -> tracked payload size *)
  mutable ref_cursor : int array;  (* obj -> Touch stride cursor *)
  mutable birth_of : int array;  (* obj -> clock at birth, -1 = unborn *)
  mutable flag_of : Bytes.t;  (* obj -> last oracle verdict, '\001' = short *)
  mutable busy : bool;
}

let create () =
  {
    addr_of = [||];
    size_of = [||];
    ref_cursor = [||];
    birth_of = [||];
    flag_of = Bytes.empty;
    busy = false;
  }

let key = Domain.DLS.new_key create

let acquire () =
  let s = Domain.DLS.get key in
  if s.busy then create ()
  else begin
    s.busy <- true;
    s
  end

let release s = s.busy <- false

(* Returns (addr_of, size_of, ref_cursor) with the [0, n_objects) prefix
   reset to (-1, 0, 0).  The arrays may be longer than [n_objects]; the
   replay loop only indexes validated object ids below it.  [ref_cursor]
   is [||] unless [cursor] is set — only cache-simulating replays read
   the per-object stride cursor. *)
let tables s ~n_objects ~cursor =
  if Array.length s.addr_of < n_objects then begin
    let cap = max n_objects (2 * Array.length s.addr_of) in
    s.addr_of <- Array.make cap (-1);
    s.size_of <- Array.make cap 0
  end
  else begin
    Lp_obs.Timings.count "replay.scratch_reuses" 1;
    Array.fill s.addr_of 0 n_objects (-1);
    Array.fill s.size_of 0 n_objects 0
  end;
  let ref_cursor =
    if not cursor then [||]
    else begin
      if Array.length s.ref_cursor < n_objects then
        s.ref_cursor <- Array.make (max n_objects (2 * Array.length s.ref_cursor)) 0
      else Array.fill s.ref_cursor 0 n_objects 0;
      s.ref_cursor
    end
  in
  (s.addr_of, s.size_of, ref_cursor)

(* Only replays driven by an oracle read the per-object birth clock and
   verdict flag; same grow-or-prefix-reset discipline as [tables], so a
   candidate sweep under a predictor allocates these once per domain. *)
let predict_tables s ~n_objects =
  if Array.length s.birth_of < n_objects then begin
    let cap = max n_objects (2 * Array.length s.birth_of) in
    s.birth_of <- Array.make cap (-1);
    s.flag_of <- Bytes.make cap '\000'
  end
  else begin
    Array.fill s.birth_of 0 n_objects (-1);
    Bytes.fill s.flag_of 0 n_objects '\000'
  end;
  (s.birth_of, s.flag_of)
