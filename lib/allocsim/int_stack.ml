(* Growable int-array stack: the hot-path replacement for [int list]
   free lists.  Push/pop are LIFO exactly like cons/head on a list, so
   swapping one in for the other is metric-neutral; the win is zero
   allocation per operation once the backing array has grown. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 0) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length s = s.len
let is_empty s = s.len = 0

let push s v =
  let cap = Array.length s.data in
  if s.len = cap then begin
    let bigger = Array.make (cap * 2) 0 in
    Array.blit s.data 0 bigger 0 cap;
    s.data <- bigger
  end;
  Array.unsafe_set s.data s.len v;
  s.len <- s.len + 1

(* caller checks [is_empty] first *)
let pop s =
  let i = s.len - 1 in
  s.len <- i;
  Array.unsafe_get s.data i
