(* The symbolic instruction-cost model behind Table 9.

   The paper measured its BSD and first-fit columns with the QP instruction
   profiler on real SPARC implementations, and computed its arena columns by
   multiplying operation counts by estimated per-operation costs (Table 9
   caption).  We use the second method for every allocator: each simulated
   operation is charged a constant calibrated against the paper's stated
   estimates, plus the per-work terms (blocks inspected, arenas scanned)
   that the simulation counts exactly.

   Paper-anchored constants (§5.1):
   - computing the length-4 call-chain: 10 instructions;
   - deciding whether an allocation is short-lived: 18 instructions total
     (the 10 above plus a hash-table probe);
   - call-chain encryption: 3 instructions per function call, amortised to
     9-94 instructions per allocation depending on the program's
     calls/allocation ratio. *)

let chain_len4 = 10
let site_lookup = 8
let predict_len4 = chain_len4 + site_lookup (* = 18, as the paper estimates *)
let cce_per_call = 3

(* Hanson-style arena operations: bump allocation is a bounds check, a
   count increment and a pointer increment; freeing is an address-range
   check and a count decrement. *)
let arena_bump = 11
let arena_scan_per_arena = 3
let arena_reset = 4
let arena_free = 11

(* First-fit (Knuth): a base cost plus a per-block search term; boundary-tag
   freeing is constant-time but touches both neighbours. *)
let ff_alloc_base = 28
let ff_per_inspect = 3
let ff_split = 6
let ff_sbrk = 24
let ff_free_base = 52
let ff_coalesce = 6

(* BSD (Kingsley power-of-two buckets): constant-time list operations; the
   paper measured 51-61 instructions per alloc and 17 per free. *)
let bsd_alloc_base = 48
let bsd_carve_page = 44
let bsd_free = 17

(* Segregated fit (the BSD-descendant design modern allocators use:
   per-size-class slabs whose emptied pages return to a shared page pool).
   The fast path — pop a cell off the class free list — is shorter than
   BSD's because the class index is a bit-scan, not a loop; slab set-up,
   page recycling and the whole-page large-object path are charged
   separately. *)
let seg_alloc_base = 22
let seg_slab_init = 40
let seg_free_base = 14
let seg_recycle = 10
let seg_large_alloc = 48
let seg_large_free = 20

(* Resizing.  An in-place grow or shrink is a size-class/boundary-tag
   check plus a header rewrite; a move additionally pays the backend's
   own free and alloc costs plus a word-at-a-time copy of the surviving
   payload (the libc memcpy inner loop, one instruction per word after
   setup). *)
let realloc_in_place = 16
let realloc_move_base = 8
let word_bytes = 8

let realloc_copy bytes =
  if bytes <= 0 then 0 else (bytes + word_bytes - 1) / word_bytes

(* Amortised call-chain-encryption cost per allocation for a program with
   the given dynamic counts (§5.1: total calls x 3 / total allocations). *)
let cce_per_alloc ~calls ~allocs =
  if allocs = 0 then 0 else cce_per_call * calls / allocs
