(** The name-keyed allocator registry.

    Callers — {!Driver}, the simulation pipeline, the CLI's
    [--allocators] flag, the bench harness, the generic property tests —
    select backends by string instead of hard-coding allocator variants.
    Five backends are built in: ["first-fit"] (alias [ff]), ["best-fit"]
    (alias [bf]), ["bsd"], ["segfit"] (alias [seg]) and ["arena"].

    To add an allocator: implement {!Backend.BACKEND} and {!register} it
    (the built-ins register themselves at module load). *)

type entry = {
  name : string;  (** canonical name; also the {!Metrics.t.algorithm} value *)
  aliases : string list;
  doc : string;  (** one-line description for [--help] and docs *)
  make : ?arena_config:Arena.config -> unit -> Backend.t;
      (** backends without arena geometry ignore [arena_config] *)
}

val register :
  name:string ->
  ?aliases:string list ->
  doc:string ->
  (?arena_config:Arena.config -> unit -> Backend.t) ->
  unit
(** @raise Invalid_argument on a duplicate name. *)

val all : unit -> entry list
(** In registration order. *)

val names : unit -> string list

val mem : string -> bool
(** True if the name or an alias is registered. *)

val find : string -> entry
(** Accepts aliases.  @raise Failure on an unknown name, listing the known
    ones. *)

val find_opt : string -> entry option

val backend : ?arena_config:Arena.config -> string -> Backend.t
(** [backend name] instantiates the named backend's module (the allocator
    state itself is created per replay by {!Driver.run}).
    @raise Failure on an unknown name. *)

val canonical_name : string -> string
(** Resolve an alias to the canonical name.  @raise Failure if unknown. *)

(** {2 Parameterized backend specs}

    A spec is [name:key=value:key=value...] — the plain (or aliased)
    backend name optionally followed by ':'-separated parameters;
    list-valued parameters separate elements with '+'
    (e.g. [segfit:slab=16+64+256+1024]).  A spec whose parameters all sit
    at their defaults builds the very same backend as the plain name, so
    metrics stay byte-identical (enforced by the qcheck equivalence
    property).  Parsing never raises: errors come back as [Error reason]
    and the CLIs map them to usage errors (exit 2). *)

val backend_of_spec :
  ?arena_config:Arena.config -> string -> (Backend.t, string) result
(** Parse and instantiate a spec.  Parameters: [first-fit]/[best-fit]
    take [sbrk=<bytes>]; [segfit] takes [slab=<n>+<n>+...]; [arena] takes
    [n=<count>], [chunk=<bytes>] and [fallback=<name>]; [bsd] takes none.
    [arena_config] seeds the arena defaults for parameters the spec
    leaves out, exactly as {!backend} does for the plain name. *)

val canonical_spec : string -> (string, string) result
(** The canonical form of a spec: alias resolved, parameters validated
    and listed in grammar order, parameters equal to their default
    dropped — [seg:slab=16+32] becomes [segfit:slab=16+32] and
    [arena:n=16] collapses to [arena].  Distinct canonical specs may
    still denote distinct backends only; the tuner keys candidate dedup
    on this. *)

val is_spec : string -> bool
(** True when the string carries parameters (contains ':'). *)

val grammar_markdown : unit -> string
(** The backend parameter grammar as a markdown table, one row per
    parameter (and one row per parameterless backend) in registration
    order.  README.md embeds this table verbatim; a drift test keeps the
    two in sync. *)
