(** The name-keyed allocator registry.

    Callers — {!Driver}, the simulation pipeline, the CLI's
    [--allocators] flag, the bench harness, the generic property tests —
    select backends by string instead of hard-coding allocator variants.
    Five backends are built in: ["first-fit"] (alias [ff]), ["best-fit"]
    (alias [bf]), ["bsd"], ["segfit"] (alias [seg]) and ["arena"].

    To add an allocator: implement {!Backend.BACKEND} and {!register} it
    (the built-ins register themselves at module load). *)

type entry = {
  name : string;  (** canonical name; also the {!Metrics.t.algorithm} value *)
  aliases : string list;
  doc : string;  (** one-line description for [--help] and docs *)
  make : ?arena_config:Arena.config -> unit -> Backend.t;
      (** backends without arena geometry ignore [arena_config] *)
}

val register :
  name:string ->
  ?aliases:string list ->
  doc:string ->
  (?arena_config:Arena.config -> unit -> Backend.t) ->
  unit
(** @raise Invalid_argument on a duplicate name. *)

val all : unit -> entry list
(** In registration order. *)

val names : unit -> string list

val mem : string -> bool
(** True if the name or an alias is registered. *)

val find : string -> entry
(** Accepts aliases.  @raise Failure on an unknown name, listing the known
    ones. *)

val find_opt : string -> entry option

val backend : ?arena_config:Arena.config -> string -> Backend.t
(** [backend name] instantiates the named backend's module (the allocator
    state itself is created per replay by {!Driver.run}).
    @raise Failure on an unknown name. *)

val canonical_name : string -> string
(** Resolve an alias to the canonical name.  @raise Failure if unknown. *)
