(** Growable int-array stack used by the allocator hot paths in place of
    [int list] free lists: LIFO like cons/head (so the swap is
    metric-neutral) with no allocation per push/pop at steady state. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> int -> unit

val pop : t -> int
(** Undefined on an empty stack — callers check {!is_empty} first. *)
