(** The 4.2BSD (Kingsley) allocator: segregated power-of-two free lists.

    Requests are rounded up (including an 8-byte header) to the next power
    of two, with a 16-byte minimum.  Each size class keeps a LIFO free
    list; an empty class carves a fresh page from [sbrk].  Blocks are never
    split, coalesced or returned to the system — allocation and free are a
    handful of instructions, at the cost of internal fragmentation.  This
    is Table 9's "BSD" column. *)

type t

val create : ?base:int -> ?hint:int -> unit -> t
(** [hint] is the expected object count; it pre-sizes the payload-class
    map (a speed knob only — simulated metrics are unaffected). *)

val alloc : t -> int -> int
(** @raise Invalid_argument if size is not positive. *)

val free : t -> int -> unit
(** @raise Invalid_argument on an address not currently allocated. *)

val max_heap_size : t -> int
val alloc_instr : t -> int
val free_instr : t -> int
val allocs : t -> int
val frees : t -> int

module Backend : Backend.BACKEND with type t = t
(** BSD buckets as a registry backend. *)
