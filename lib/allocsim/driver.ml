type predictor = {
  predicted : obj:int -> size:int -> chain:int -> key:int -> bool;
  predict_cost : int;
}

(* A malformed trace (free of a never-allocated object, double free, or an
   out-of-range object id) used to push addr_of.(obj) = -1 straight into the
   allocator and crash with an unrelated error deep inside it; validate here
   and name the object and the event index instead. *)
let event_error ~event what obj =
  failwith (Printf.sprintf "Driver.run: %s object %d at event %d" what obj event)

(* The one replay engine: every backend — first-fit, best-fit, BSD, segfit,
   arena, and whatever the registry grows next — runs through this loop, so
   per-event validation, cache replay and Touch handling exist in exactly
   one place. *)
let run_impl ?cache ?predictor (trace : Lp_trace.Trace.t)
    (module B : Backend.BACKEND) : Metrics.t =
  let b = B.create () in
  let addr_of = Array.make trace.n_objects (-1) in
  let size_of = Array.make trace.n_objects 0 in
  let ref_cursor = Array.make trace.n_objects 0 in
  let live = ref 0 in
  let max_live = ref 0 in
  let total_bytes = ref 0 in
  (* the prediction front-end: only consulted (and billed) for backends
     that act on it, so e.g. a first-fit replay under a predictor stays
     byte-identical to one without *)
  let predictor = if B.uses_prediction then predictor else None in
  let cache_access addr bytes =
    match cache with
    | Some c -> Cache.access_range c ~addr ~bytes
    | None -> ()
  in
  let check_alloc ~event obj =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "alloc of out-of-range" obj;
    if addr_of.(obj) >= 0 then event_error ~event "second alloc of live" obj
  in
  let addr_for_free ~event obj =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "free of out-of-range" obj;
    let addr = addr_of.(obj) in
    if addr < 0 then event_error ~event "free of never-allocated or already-freed" obj;
    addr
  in
  let track_alloc obj size addr =
    addr_of.(obj) <- addr;
    size_of.(obj) <- size;
    total_bytes := !total_bytes + size;
    live := !live + size;
    if !live > !max_live then max_live := !live;
    cache_access addr 8
  in
  let track_free obj addr =
    live := !live - size_of.(obj);
    cache_access addr 8;
    addr_of.(obj) <- -1
  in
  (* a Touch of n references walks the object at a 16-byte stride *)
  let track_touch ~event obj count =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "touch of out-of-range" obj;
    match cache with
    | None -> ()
    | Some c ->
        let addr = addr_of.(obj) and size = size_of.(obj) in
        if addr >= 0 then begin
          for _ = 1 to count do
            Cache.access c (addr + (ref_cursor.(obj) mod max 1 size));
            ref_cursor.(obj) <- ref_cursor.(obj) + 16
          done
        end
  in
  Array.iteri
    (fun event -> function
      | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
          check_alloc ~event obj;
          let predicted =
            match predictor with
            | None -> false
            | Some p ->
                (* every allocation pays for the attempt to predict (§5.1) *)
                B.charge_alloc b p.predict_cost;
                p.predicted ~obj ~size ~chain ~key
          in
          track_alloc obj size (B.alloc b ~size ~predicted)
      | Lp_trace.Event.Free { obj; _ } ->
          (* a declared sized-deallocation size is the linter's business,
             not the replay's: the allocator is handed only the address *)
          let addr = addr_for_free ~event obj in
          B.free b addr;
          track_free obj addr
      | Lp_trace.Event.Touch { obj; count } -> track_touch ~event obj count)
    trace.events;
  {
    Metrics.algorithm = B.name;
    allocs = B.allocs b;
    frees = B.frees b;
    total_bytes = !total_bytes;
    max_heap = B.max_heap_size b;
    max_live = !max_live;
    instr_per_alloc =
      float_of_int (B.alloc_instr b) /. float_of_int (max 1 (B.allocs b));
    instr_per_free =
      float_of_int (B.free_instr b) /. float_of_int (max 1 (B.frees b));
    extra = B.extra b;
  }

let run ?cache ?predictor trace ((module B : Backend.BACKEND) as backend) =
  Lp_obs.Timings.time
    ~stage:("replay/" ^ B.name)
    ~items:(Array.length trace.Lp_trace.Trace.events)
    (fun () -> run_impl ?cache ?predictor trace backend)

let run_named ?cache ?predictor ?arena_config trace name =
  run ?cache ?predictor trace (Registry.backend ?arena_config name)
