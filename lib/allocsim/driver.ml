type algorithm =
  | First_fit
  | Best_fit
  | Bsd
  | Arena of {
      config : Arena.config;
      predicted : obj:int -> size:int -> chain:int -> key:int -> bool;
      predict_cost : int;
    }

let algorithm_name = function
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Bsd -> "bsd"
  | Arena _ -> "arena"

(* A malformed trace (free of a never-allocated object, double free, or an
   out-of-range object id) used to push addr_of.(obj) = -1 straight into the
   allocator and crash with an unrelated error deep inside it; validate here
   and name the object and the event index instead. *)
let event_error ~event what obj =
  failwith (Printf.sprintf "Driver.run: %s object %d at event %d" what obj event)

let run_impl ?cache (trace : Lp_trace.Trace.t) algorithm : Metrics.t =
  let addr_of = Array.make trace.n_objects (-1) in
  let size_of = Array.make trace.n_objects 0 in
  let ref_cursor = Array.make trace.n_objects 0 in
  let live = ref 0 in
  let max_live = ref 0 in
  let total_bytes = ref 0 in
  let cache_access addr bytes =
    match cache with
    | Some c -> Cache.access_range c ~addr ~bytes
    | None -> ()
  in
  let check_alloc ~event obj =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "alloc of out-of-range" obj;
    if addr_of.(obj) >= 0 then event_error ~event "second alloc of live" obj
  in
  let addr_for_free ~event obj =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "free of out-of-range" obj;
    let addr = addr_of.(obj) in
    if addr < 0 then event_error ~event "free of never-allocated or already-freed" obj;
    addr
  in
  let track_alloc obj size addr =
    addr_of.(obj) <- addr;
    size_of.(obj) <- size;
    total_bytes := !total_bytes + size;
    live := !live + size;
    if !live > !max_live then max_live := !live;
    cache_access addr 8
  in
  let track_free obj addr =
    live := !live - size_of.(obj);
    cache_access addr 8;
    addr_of.(obj) <- -1
  in
  (* a Touch of n references walks the object at a 16-byte stride *)
  let track_touch ~event obj count =
    if obj < 0 || obj >= trace.n_objects then
      event_error ~event "touch of out-of-range" obj;
    match cache with
    | None -> ()
    | Some c ->
        let addr = addr_of.(obj) and size = size_of.(obj) in
        if addr >= 0 then begin
          for _ = 1 to count do
            Cache.access c (addr + (ref_cursor.(obj) mod max 1 size));
            ref_cursor.(obj) <- ref_cursor.(obj) + 16
          done
        end
  in
  match algorithm with
  | First_fit | Best_fit ->
      let policy =
        match algorithm with Best_fit -> First_fit.Best | _ -> First_fit.First
      in
      let ff = First_fit.create ~policy () in
      Array.iteri
        (fun event -> function
          | Lp_trace.Event.Alloc { obj; size; _ } ->
              check_alloc ~event obj;
              track_alloc obj size (First_fit.alloc ff size)
          | Lp_trace.Event.Free { obj } ->
              let addr = addr_for_free ~event obj in
              First_fit.free ff addr;
              track_free obj addr
          | Lp_trace.Event.Touch { obj; count } -> track_touch ~event obj count)
        trace.events;
      {
        Metrics.algorithm = algorithm_name algorithm;
        allocs = First_fit.allocs ff;
        frees = First_fit.frees ff;
        total_bytes = !total_bytes;
        arena_allocs = 0;
        arena_bytes = 0;
        arena_resets = 0;
        overflow_allocs = 0;
        max_heap = First_fit.max_heap_size ff;
        max_live = !max_live;
        instr_per_alloc =
          float_of_int (First_fit.alloc_instr ff) /. float_of_int (max 1 (First_fit.allocs ff));
        instr_per_free =
          float_of_int (First_fit.free_instr ff) /. float_of_int (max 1 (First_fit.frees ff));
      }
  | Bsd ->
      let b = Bsd.create () in
      Array.iteri
        (fun event -> function
          | Lp_trace.Event.Alloc { obj; size; _ } ->
              check_alloc ~event obj;
              track_alloc obj size (Bsd.alloc b size)
          | Lp_trace.Event.Free { obj } ->
              let addr = addr_for_free ~event obj in
              Bsd.free b addr;
              track_free obj addr
          | Lp_trace.Event.Touch { obj; count } -> track_touch ~event obj count)
        trace.events;
      {
        Metrics.algorithm = "bsd";
        allocs = Bsd.allocs b;
        frees = Bsd.frees b;
        total_bytes = !total_bytes;
        arena_allocs = 0;
        arena_bytes = 0;
        arena_resets = 0;
        overflow_allocs = 0;
        max_heap = Bsd.max_heap_size b;
        max_live = !max_live;
        instr_per_alloc =
          float_of_int (Bsd.alloc_instr b) /. float_of_int (max 1 (Bsd.allocs b));
        instr_per_free =
          float_of_int (Bsd.free_instr b) /. float_of_int (max 1 (Bsd.frees b));
      }
  | Arena { config; predicted; predict_cost } ->
      let a = Arena.create ~config () in
      Array.iteri
        (fun event -> function
          | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
              check_alloc ~event obj;
              (* every allocation pays for the attempt to predict (§5.1) *)
              Arena.charge_prediction a predict_cost;
              let p = predicted ~obj ~size ~chain ~key in
              track_alloc obj size (Arena.alloc a ~size ~predicted:p)
          | Lp_trace.Event.Free { obj } ->
              let addr = addr_for_free ~event obj in
              Arena.free a addr;
              track_free obj addr
          | Lp_trace.Event.Touch { obj; count } -> track_touch ~event obj count)
        trace.events;
      {
        Metrics.algorithm = "arena";
        allocs = Arena.allocs a;
        frees = Arena.frees a;
        total_bytes = !total_bytes;
        arena_allocs = Arena.arena_allocs a;
        arena_bytes = Arena.arena_bytes a;
        arena_resets = Arena.arena_resets a;
        overflow_allocs = Arena.overflow_allocs a;
        max_heap = Arena.max_heap_size a;
        max_live = !max_live;
        instr_per_alloc =
          float_of_int (Arena.alloc_instr a) /. float_of_int (max 1 (Arena.allocs a));
        instr_per_free =
          float_of_int (Arena.free_instr a) /. float_of_int (max 1 (Arena.frees a));
      }

let run ?cache trace algorithm =
  Lp_obs.Timings.time
    ~stage:("replay/" ^ algorithm_name algorithm)
    ~items:(Array.length trace.Lp_trace.Trace.events)
    (fun () -> run_impl ?cache trace algorithm)
