type predictor = {
  predicted : obj:int -> size:int -> chain:int -> key:int -> bool;
  predict_cost : int;
  short_threshold : int;
  on_outcome : (obj:int -> lifetime:int -> survived:bool -> unit) option;
}

(* A malformed trace (free of a never-allocated object, double free, or an
   out-of-range object id) used to push addr_of.(obj) = -1 straight into the
   allocator and crash with an unrelated error deep inside it; validate here
   and name the object and the event index instead. *)
let event_error ~event what obj =
  failwith (Printf.sprintf "Driver.run: %s object %d at event %d" what obj event)

(* Decode-once/replay-many: the validation below used to run inline in the
   replay loop, so a candidate sweep paid it once per backend.  It is now a
   single pure pass over the events, run exactly once per trace — [prepare]
   memoizes on trace identity — and the replay loop trusts every object id
   unconditionally.  The error messages are part of the public contract
   (tests assert the object id and event index) and must not change. *)

type prepared = { trace : Lp_trace.Trace.t }

let validate (trace : Lp_trace.Trace.t) =
  Lp_obs.Timings.count "replay.validations" 1;
  let n_objects = trace.n_objects in
  let live = Bytes.make n_objects '\000' in
  let events = trace.events in
  for event = 0 to Array.length events - 1 do
    match Array.unsafe_get events event with
    | Lp_trace.Event.Alloc { obj; _ } ->
        if obj < 0 || obj >= n_objects then
          event_error ~event "alloc of out-of-range" obj;
        if Bytes.unsafe_get live obj <> '\000' then
          event_error ~event "second alloc of live" obj;
        Bytes.unsafe_set live obj '\001'
    | Lp_trace.Event.Free { obj; _ } ->
        if obj < 0 || obj >= n_objects then
          event_error ~event "free of out-of-range" obj;
        if Bytes.unsafe_get live obj = '\000' then
          event_error ~event "free of never-allocated or already-freed" obj;
        Bytes.unsafe_set live obj '\000'
    | Lp_trace.Event.Realloc { obj; _ } ->
        if obj < 0 || obj >= n_objects then
          event_error ~event "realloc of out-of-range" obj;
        if Bytes.unsafe_get live obj = '\000' then
          event_error ~event "realloc of never-allocated or already-freed" obj
    | Lp_trace.Event.Touch { obj; _ } ->
        if obj < 0 || obj >= n_objects then
          event_error ~event "touch of out-of-range" obj
  done

(* Traces validated so far, by physical identity.  A Weak array so the memo
   never keeps a trace alive; a few slots suffice (the working set of live
   traces in any run is tiny) and a false miss only costs a re-validation.
   Mutex-guarded: [run] is documented as safe across domains. *)
let memo_lock = Mutex.create ()
let memo : Lp_trace.Trace.t Weak.t = Weak.create 32
let memo_next = ref 0

let memo_mem trace =
  Mutex.protect memo_lock (fun () ->
      let n = Weak.length memo in
      let rec go i =
        i < n
        &&
        match Weak.get memo i with
        | Some t when t == trace -> true
        | _ -> go (i + 1)
      in
      go 0)

let memo_add trace =
  Mutex.protect memo_lock (fun () ->
      let n = Weak.length memo in
      let rec mem i =
        i < n
        &&
        match Weak.get memo i with
        | Some t when t == trace -> true
        | _ -> mem (i + 1)
      in
      if not (mem 0) then begin
        Weak.set memo !memo_next (Some trace);
        memo_next := (!memo_next + 1) mod n
      end)

let prepare (trace : Lp_trace.Trace.t) : prepared =
  if not (memo_mem trace) then begin
    Lp_obs.Timings.time ~stage:"prepare"
      ~items:(Array.length trace.Lp_trace.Trace.events) (fun () ->
        validate trace);
    memo_add trace
  end;
  { trace }

let trace_of_prepared (p : prepared) = p.trace

(* The one replay engine: every backend — first-fit, best-fit, BSD, segfit,
   arena, and whatever the registry grows next — runs through this loop, so
   cache replay and Touch handling exist in exactly one place.  The no-cache
   loop is written flat (no per-event closures, unsafe array accesses only —
   [prepare] has already proved every object id in range and every state
   transition legal): replay throughput is the bench harness's headline
   number and every indirection here is paid tens of millions of times per
   run. *)
let run_prepared_impl ?cache ?predictor (p : prepared)
    (module B : Backend.BACKEND) : Metrics.t =
  let trace = p.trace in
  (* the object count pre-sizes backend tables; a pure speed knob *)
  let b = B.create ~hint:trace.n_objects () in
  let n_objects = trace.n_objects in
  let scratch = Scratch.acquire () in
  let addr_of, size_of, ref_cursor =
    Scratch.tables scratch ~n_objects ~cursor:(cache <> None)
  in
  Fun.protect ~finally:(fun () -> Scratch.release scratch) @@ fun () ->
  let live = ref 0 in
  let max_live = ref 0 in
  let total_bytes = ref 0 in
  (* the prediction front-end: only consulted (and billed) for backends
     that act on it, so e.g. a first-fit replay under a predictor stays
     byte-identical to one without *)
  let predictor = if B.uses_prediction then predictor else None in
  let reallocs = ref 0 in
  let realloc_in_place = ref 0 in
  let realloc_moves = ref 0 in
  (* oracle outcome tracking: under a predictor every object records its
     birth clock and last verdict, so the free path (and the end-of-trace
     survivor scan) can classify the prediction and feed the outcome back
     to a stateful oracle.  None of this charges simulated instructions,
     so metric values other than the mispredict counters are unaffected. *)
  let birth_of, flag_of =
    match predictor with
    | None -> ([||], Bytes.empty)
    | Some _ -> Scratch.predict_tables scratch ~n_objects
  in
  let predictions = ref 0 in
  let mis_short = ref 0 in
  let mis_long = ref 0 in
  let observe_outcome (p : predictor) ~obj ~survived =
    let birth = Array.unsafe_get birth_of obj in
    if birth >= 0 then begin
      let lifetime = !total_bytes - birth in
      let short = (not survived) && lifetime < p.short_threshold in
      if Bytes.unsafe_get flag_of obj <> '\000' then begin
        if not short then incr mis_short
      end
      else if short then incr mis_long;
      (match p.on_outcome with
      | Some f -> f ~obj ~lifetime ~survived
      | None -> ());
      Array.unsafe_set birth_of obj (-1)
    end
  in
  (* Resize an object, preferring the backend's native hook and falling
     back to free + alloc + copy.  The backend is handed the *tracked*
     current size (what its block actually holds); the clock/total-bytes
     charge uses the event's declared [old_size], mirroring
     [Trace.total_bytes] and the stats folds.  Returns the block's new
     payload address for the cache layer. *)
  let do_realloc ~obj ~old_size ~new_size ~chain ~key =
    let addr = Array.unsafe_get addr_of obj in
    let tracked = Array.unsafe_get size_of obj in
    let predicted =
      match predictor with
      | None -> false
      | Some p ->
          (* the resize site predicts like an allocation site (§5.1);
             the verdict flag follows the latest consultation, while the
             birth clock — like training — stays at the Alloc event *)
          B.charge_alloc b p.predict_cost;
          let v = p.predicted ~obj ~size:new_size ~chain ~key in
          incr predictions;
          Bytes.unsafe_set flag_of obj (if v then '\001' else '\000');
          v
    in
    let new_addr, moved =
      match B.realloc with
      | Some f ->
          let a = f b ~addr ~old_size:tracked ~new_size ~predicted in
          (a, a <> addr)
      | None ->
          B.free b addr;
          (B.alloc b ~size:new_size ~predicted, true)
    in
    incr reallocs;
    if moved then begin
      incr realloc_moves;
      B.charge_alloc b
        (Cost_model.realloc_move_base
        + Cost_model.realloc_copy (min tracked new_size))
    end
    else begin
      incr realloc_in_place;
      B.charge_alloc b Cost_model.realloc_in_place
    end;
    Array.unsafe_set addr_of obj new_addr;
    Array.unsafe_set size_of obj new_size;
    total_bytes := !total_bytes + max 0 (new_size - old_size);
    let l = !live - tracked + new_size in
    live := l;
    if l > !max_live then max_live := l;
    new_addr
  in
  let events = trace.events in
  let n_events = Array.length events in
  (match cache with
  | None ->
      for event = 0 to n_events - 1 do
        match Array.unsafe_get events event with
        | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
            let predicted =
              match predictor with
              | None -> false
              | Some p ->
                  (* every allocation pays for the attempt to predict (§5.1);
                     the birth clock is the pre-increment allocation clock,
                     mirroring training's lifetime accounting *)
                  B.charge_alloc b p.predict_cost;
                  let v = p.predicted ~obj ~size ~chain ~key in
                  incr predictions;
                  Array.unsafe_set birth_of obj !total_bytes;
                  Bytes.unsafe_set flag_of obj (if v then '\001' else '\000');
                  v
            in
            let addr = B.alloc b ~size ~predicted in
            Array.unsafe_set addr_of obj addr;
            Array.unsafe_set size_of obj size;
            total_bytes := !total_bytes + size;
            let l = !live + size in
            live := l;
            if l > !max_live then max_live := l
        | Lp_trace.Event.Free { obj; _ } ->
            (* a declared sized-deallocation size is the linter's business,
               not the replay's: the allocator is handed only the address *)
            let addr = Array.unsafe_get addr_of obj in
            B.free b addr;
            live := !live - Array.unsafe_get size_of obj;
            Array.unsafe_set addr_of obj (-1);
            (match predictor with
            | Some p -> observe_outcome p ~obj ~survived:false
            | None -> ())
        | Lp_trace.Event.Realloc { obj; old_size; new_size; chain; key; _ } ->
            ignore (do_realloc ~obj ~old_size ~new_size ~chain ~key)
        | Lp_trace.Event.Touch _ -> ()
      done
  | Some c ->
      for event = 0 to n_events - 1 do
        match Array.unsafe_get events event with
        | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
            let predicted =
              match predictor with
              | None -> false
              | Some p ->
                  B.charge_alloc b p.predict_cost;
                  let v = p.predicted ~obj ~size ~chain ~key in
                  incr predictions;
                  Array.unsafe_set birth_of obj !total_bytes;
                  Bytes.unsafe_set flag_of obj (if v then '\001' else '\000');
                  v
            in
            let addr = B.alloc b ~size ~predicted in
            Array.unsafe_set addr_of obj addr;
            Array.unsafe_set size_of obj size;
            total_bytes := !total_bytes + size;
            let l = !live + size in
            live := l;
            if l > !max_live then max_live := l;
            Cache.access_range c ~addr ~bytes:8
        | Lp_trace.Event.Free { obj; _ } ->
            let addr = Array.unsafe_get addr_of obj in
            B.free b addr;
            live := !live - Array.unsafe_get size_of obj;
            Cache.access_range c ~addr ~bytes:8;
            Array.unsafe_set addr_of obj (-1);
            (match predictor with
            | Some p -> observe_outcome p ~obj ~survived:false
            | None -> ())
        | Lp_trace.Event.Realloc { obj; old_size; new_size; chain; key; _ } ->
            let new_addr = do_realloc ~obj ~old_size ~new_size ~chain ~key in
            Cache.access_range c ~addr:new_addr ~bytes:8
        | Lp_trace.Event.Touch { obj; count } ->
            (* a Touch of n references walks the object at a 16-byte stride *)
            let addr = Array.unsafe_get addr_of obj in
            let size = Array.unsafe_get size_of obj in
            if addr >= 0 then
              for _ = 1 to count do
                Cache.access c (addr + (Array.unsafe_get ref_cursor obj mod max 1 size));
                Array.unsafe_set ref_cursor obj (Array.unsafe_get ref_cursor obj + 16)
              done
      done);
  (* survivors are mispredicted if predicted short-lived: classify them in
     object-id order (deterministic whatever the domain count) with the
     end-of-trace clock, mirroring training's survivor accounting *)
  (match predictor with
  | None -> ()
  | Some p ->
      for obj = 0 to n_objects - 1 do
        if Array.unsafe_get birth_of obj >= 0 then
          observe_outcome p ~obj ~survived:true
      done);
  {
    Metrics.algorithm = B.name;
    allocs = B.allocs b;
    frees = B.frees b;
    reallocs = !reallocs;
    realloc_in_place = !realloc_in_place;
    realloc_moves = !realloc_moves;
    predictions = !predictions;
    mispredicts_short_lived = !mis_short;
    mispredicts_long_lived = !mis_long;
    total_bytes = !total_bytes;
    max_heap = B.max_heap_size b;
    max_live = !max_live;
    instr_per_alloc =
      float_of_int (B.alloc_instr b) /. float_of_int (max 1 (B.allocs b));
    instr_per_free =
      float_of_int (B.free_instr b) /. float_of_int (max 1 (B.frees b));
    extra = B.extra b;
  }

let run_prepared ?cache ?predictor p ((module B : Backend.BACKEND) as backend) =
  let m =
    Lp_obs.Timings.time
      ~stage:("replay/" ^ B.name)
      ~items:(Array.length p.trace.Lp_trace.Trace.events)
      (fun () -> run_prepared_impl ?cache ?predictor p backend)
  in
  Lp_obs.Timings.note_peak_heap ();
  m

let run ?cache ?predictor trace backend =
  run_prepared ?cache ?predictor (prepare trace) backend

let run_named ?cache ?predictor ?arena_config trace name =
  run ?cache ?predictor trace (Registry.backend ?arena_config name)

(* The streaming twin of [run_prepared_impl]: one pull per event, per-object
   tables grow as ids appear (the final object count is unknown until the
   source is exhausted), so resident memory scales with the live-object
   population instead of the trace length.  Validation cannot be hoisted —
   there is no second pass over a stream — so it stays inline here; metrics
   are the same (the qcheck equivalence suite holds the two loops
   byte-identical) but the flat array loop above stays the hot path for
   in-memory replay. *)
let run_source_impl ?cache ?predictor (src : Lp_trace.Source.t)
    (module B : Backend.BACKEND) : Metrics.t =
  let hint =
    match src.Lp_trace.Source.n_objects_hint with Some n -> n | None -> 1024
  in
  let b = B.create ~hint () in
  let addr_of = Lp_trace.Grow.create ~default:(-1) hint in
  let size_of = Lp_trace.Grow.create hint in
  (* only touch simulation reads the per-object stride cursor; without a
     cache don't spend an object-sized array on it *)
  let ref_cursor =
    Lp_trace.Grow.create (match cache with Some _ -> hint | None -> 0)
  in
  let live = ref 0 in
  let max_live = ref 0 in
  let total_bytes = ref 0 in
  let predictor = if B.uses_prediction then predictor else None in
  let reallocs = ref 0 in
  let realloc_in_place = ref 0 in
  let realloc_moves = ref 0 in
  (* streaming twin of the prepared loop's oracle outcome tracking: Grow
     tables (the object population is unknown mid-stream), same semantics *)
  let tracking = match predictor with Some _ -> hint | None -> 0 in
  let birth_of = Lp_trace.Grow.create ~default:(-1) tracking in
  let flag_of = Lp_trace.Grow.create tracking in
  let max_obj = ref (-1) in
  let predictions = ref 0 in
  let mis_short = ref 0 in
  let mis_long = ref 0 in
  let observe_outcome (p : predictor) ~obj ~survived =
    let birth = Lp_trace.Grow.get birth_of obj in
    if birth >= 0 then begin
      let lifetime = !total_bytes - birth in
      let short = (not survived) && lifetime < p.short_threshold in
      if Lp_trace.Grow.get flag_of obj <> 0 then begin
        if not short then incr mis_short
      end
      else if short then incr mis_long;
      (match p.on_outcome with
      | Some f -> f ~obj ~lifetime ~survived
      | None -> ());
      Lp_trace.Grow.set birth_of obj (-1)
    end
  in
  (* streaming twin of [run_prepared_impl]'s [do_realloc]; Grow tables
     instead of flat arrays, identical semantics *)
  let do_realloc ~event ~obj ~old_size ~new_size ~chain ~key =
    if obj < 0 then event_error ~event "realloc of out-of-range" obj;
    let addr = Lp_trace.Grow.get addr_of obj in
    if addr < 0 then
      event_error ~event "realloc of never-allocated or already-freed" obj;
    let tracked = Lp_trace.Grow.get size_of obj in
    let predicted =
      match predictor with
      | None -> false
      | Some p ->
          B.charge_alloc b p.predict_cost;
          let v = p.predicted ~obj ~size:new_size ~chain ~key in
          incr predictions;
          Lp_trace.Grow.set flag_of obj (if v then 1 else 0);
          v
    in
    let new_addr, moved =
      match B.realloc with
      | Some f ->
          let a = f b ~addr ~old_size:tracked ~new_size ~predicted in
          (a, a <> addr)
      | None ->
          B.free b addr;
          (B.alloc b ~size:new_size ~predicted, true)
    in
    incr reallocs;
    if moved then begin
      incr realloc_moves;
      B.charge_alloc b
        (Cost_model.realloc_move_base
        + Cost_model.realloc_copy (min tracked new_size))
    end
    else begin
      incr realloc_in_place;
      B.charge_alloc b Cost_model.realloc_in_place
    end;
    Lp_trace.Grow.set addr_of obj new_addr;
    Lp_trace.Grow.set size_of obj new_size;
    total_bytes := !total_bytes + max 0 (new_size - old_size);
    let l = !live - tracked + new_size in
    live := l;
    if l > !max_live then max_live := l;
    new_addr
  in
  let event = ref (-1) in
  let rec loop () =
    match Lp_trace.Source.next src with
    | None -> ()
    | Some ev ->
        incr event;
        let event = !event in
        (match ev with
        | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
            if obj < 0 then event_error ~event "alloc of out-of-range" obj;
            if Lp_trace.Grow.get addr_of obj >= 0 then
              event_error ~event "second alloc of live" obj;
            let predicted =
              match predictor with
              | None -> false
              | Some p ->
                  B.charge_alloc b p.predict_cost;
                  let v = p.predicted ~obj ~size ~chain ~key in
                  incr predictions;
                  Lp_trace.Grow.set birth_of obj !total_bytes;
                  Lp_trace.Grow.set flag_of obj (if v then 1 else 0);
                  if obj > !max_obj then max_obj := obj;
                  v
            in
            let addr = B.alloc b ~size ~predicted in
            Lp_trace.Grow.set addr_of obj addr;
            Lp_trace.Grow.set size_of obj size;
            total_bytes := !total_bytes + size;
            let l = !live + size in
            live := l;
            if l > !max_live then max_live := l;
            (match cache with
            | Some c -> Cache.access_range c ~addr ~bytes:8
            | None -> ())
        | Lp_trace.Event.Free { obj; _ } ->
            if obj < 0 then event_error ~event "free of out-of-range" obj;
            let addr = Lp_trace.Grow.get addr_of obj in
            if addr < 0 then
              event_error ~event "free of never-allocated or already-freed" obj;
            B.free b addr;
            live := !live - Lp_trace.Grow.get size_of obj;
            (match cache with
            | Some c -> Cache.access_range c ~addr ~bytes:8
            | None -> ());
            Lp_trace.Grow.set addr_of obj (-1);
            (match predictor with
            | Some p -> observe_outcome p ~obj ~survived:false
            | None -> ())
        | Lp_trace.Event.Realloc { obj; old_size; new_size; chain; key; _ } -> (
            let new_addr =
              do_realloc ~event ~obj ~old_size ~new_size ~chain ~key
            in
            match cache with
            | Some c -> Cache.access_range c ~addr:new_addr ~bytes:8
            | None -> ())
        | Lp_trace.Event.Touch { obj; count } -> (
            if obj < 0 then event_error ~event "touch of out-of-range" obj;
            match cache with
            | None -> ()
            | Some c ->
                let addr = Lp_trace.Grow.get addr_of obj in
                let size = Lp_trace.Grow.get size_of obj in
                if addr >= 0 then
                  for _ = 1 to count do
                    Cache.access c
                      (addr + (Lp_trace.Grow.get ref_cursor obj mod max 1 size));
                    Lp_trace.Grow.set ref_cursor obj
                      (Lp_trace.Grow.get ref_cursor obj + 16)
                  done));
        loop ()
  in
  loop ();
  (match predictor with
  | None -> ()
  | Some p ->
      for obj = 0 to !max_obj do
        if Lp_trace.Grow.get birth_of obj >= 0 then
          observe_outcome p ~obj ~survived:true
      done);
  {
    Metrics.algorithm = B.name;
    allocs = B.allocs b;
    frees = B.frees b;
    reallocs = !reallocs;
    realloc_in_place = !realloc_in_place;
    realloc_moves = !realloc_moves;
    predictions = !predictions;
    mispredicts_short_lived = !mis_short;
    mispredicts_long_lived = !mis_long;
    total_bytes = !total_bytes;
    max_heap = B.max_heap_size b;
    max_live = !max_live;
    instr_per_alloc =
      float_of_int (B.alloc_instr b) /. float_of_int (max 1 (B.allocs b));
    instr_per_free =
      float_of_int (B.free_instr b) /. float_of_int (max 1 (B.frees b));
    extra = B.extra b;
  }

let run_source ?cache ?predictor ?(decode_ahead = false) src
    ((module B : Backend.BACKEND) as backend) =
  let t0 = Lp_obs.Timings.now () in
  (* the replay loop below drains to [None] (or dies with the decode
     error), satisfying [decode_ahead]'s must-drain contract *)
  let piped = if decode_ahead then Lp_trace.Source.decode_ahead src else src in
  let m =
    match run_source_impl ?cache ?predictor piped backend with
    | m -> m
    | exception e ->
        (* a replay validation error abandons the stream mid-way; drain
           the wrapper so the producer domain retires before we re-raise *)
        let bt = Printexc.get_raw_backtrace () in
        if decode_ahead then
          (try
             while Lp_trace.Source.next piped <> None do
               ()
             done
           with _ -> ());
        Printexc.raise_with_backtrace e bt
  in
  Lp_obs.Timings.record
    ~stage:("replay/" ^ B.name)
    ~items:(Lp_trace.Source.events_streamed piped)
    (Lp_obs.Timings.now () -. t0);
  m
