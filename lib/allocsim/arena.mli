(** The lifetime-predicting arena allocator (§5.1 of the paper), structured
    as a composable front-end: a fixed arena area for predicted-short
    objects over {e any} general-purpose fallback backend (first-fit by
    default, matching the paper).

    A fixed arena area (by default 64 KB split into 16 arenas of 4 KB)
    sits below the general heap.  An allocation predicted short-lived whose
    size fits in an arena is bump-allocated: if the current arena has
    space, increment its live count and allocation pointer.  When the
    current arena fills, the allocator scans for an arena with a zero live
    count (all its objects dead) and resets it; if none exists, the object
    is allocated in the general heap as if it were long-lived.  Objects
    larger than an arena, and objects not predicted short-lived, also go to
    the general heap.  Freeing an address inside the arena area decrements
    the owning arena's count; other addresses go to the fallback.

    Per the paper's simulation: the arena area is 64 KB — twice the 32 KB
    short-lived threshold — "with the intuition that by the time the last
    half of the 64 kilobytes are filled ... objects in the first half of
    the arena are dead", and it is blocked into 16 small arenas so that a
    mispredicted long-lived object ties up only its own 4 KB
    ("blocking reduces the space consumed by erroneously predicted
    long-lived objects"). *)

type config = {
  n_arenas : int;
  arena_size : int;  (** bytes per arena *)
}

val default_config : config
(** 16 arenas of 4096 bytes. *)

type t

val create : ?config:config -> ?fallback:Backend.t -> ?hint:int -> unit -> t
(** [fallback] is the general-purpose backend for unpredicted, oversized
    and overflowing objects; it is instantiated with its base just above
    the arena area.  Defaults to first-fit, the paper's choice.  [hint]
    (expected object count) is forwarded to the fallback to pre-size its
    tables; it never affects simulated metrics. *)

val alloc : t -> size:int -> predicted:bool -> int
(** Returns the object's address.  Charges the per-allocation lifetime
    prediction cost separately — see {!charge_prediction}.
    @raise Invalid_argument if [size <= 0]. *)

val free : t -> int -> unit
(** @raise Invalid_argument on an address not currently allocated. *)

val charge_prediction : t -> int -> unit
(** [charge_prediction t cost] adds the per-allocation prediction overhead
    (18 instructions for length-4 chains; the amortised cce cost
    otherwise).  Kept separate so the driver can price both schemes from
    one simulation. *)

val arena_allocs : t -> int
(** Objects placed in arenas. *)

val arena_bytes : t -> int
(** Bytes placed in arenas. *)

val arena_resets : t -> int
(** Times an exhausted arena was recycled (count = 0 rewind). *)

val overflow_allocs : t -> int
(** Predicted-short allocations that fell back to the general heap because
    no arena had space — arena pollution in action. *)

val allocs : t -> int
val frees : t -> int

val max_heap_size : t -> int
(** Fallback heap high-water plus the whole arena area, as Table 8 counts
    it ("The arena heap sizes include the 64-kilobyte arena area"). *)

val alloc_instr : t -> int
val free_instr : t -> int

val general_name : t -> string
(** Name of the fallback backend in use. *)

val stats : t -> Metrics.arena_stats

val check_invariants : t -> unit
(** Arena live counts match the live-object table, bump pointers stay in
    range, and the fallback's own invariants hold.
    @raise Failure when an invariant is broken. *)

val backend : ?config:config -> ?fallback:Backend.t -> unit -> Backend.t
(** An arena backend with the given geometry and fallback, for the
    registry.  [Backend.create]'s [base] is ignored: the arena area
    anchors the address space at 0 and places the fallback above itself. *)

module Backend_default : Backend.BACKEND with type t = t
(** [backend ()] with the paper's geometry over first-fit. *)
