type arena_stats = {
  arena_allocs : int;
  arena_bytes : int;
  arena_resets : int;
  overflow_allocs : int;
}

type segfit_stats = {
  slabs_created : int;
  pages_recycled : int;
  large_spans : int;
}

type extra =
  | Core
  | Arena_stats of arena_stats
  | Segfit_stats of segfit_stats

type t = {
  algorithm : string;
  allocs : int;
  frees : int;
  reallocs : int;
  realloc_in_place : int;
  realloc_moves : int;
  predictions : int;
  mispredicts_short_lived : int;
  mispredicts_long_lived : int;
  total_bytes : int;
  max_heap : int;
  max_live : int;
  instr_per_alloc : float;
  instr_per_free : float;
  extra : extra;
}

let pct part whole = if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let arena_stats t = match t.extra with Arena_stats a -> Some a | _ -> None

let arena_alloc_pct t =
  match t.extra with Arena_stats a -> pct a.arena_allocs t.allocs | _ -> 0.

let arena_bytes_pct t =
  match t.extra with Arena_stats a -> pct a.arena_bytes t.total_bytes | _ -> 0.

let fragmentation_pct t =
  if t.max_heap = 0 then 0. else 100. *. (1. -. (float_of_int t.max_live /. float_of_int t.max_heap))

let pp_extra ppf = function
  | Core -> ()
  | Arena_stats a ->
      Format.fprintf ppf "@ arena allocs %d, arena bytes %d, arena resets %d, overflows %d"
        a.arena_allocs a.arena_bytes a.arena_resets a.overflow_allocs
  | Segfit_stats s ->
      Format.fprintf ppf "@ slabs %d, pages recycled %d, large spans %d"
        s.slabs_created s.pages_recycled s.large_spans

let pp ppf t =
  (* only a predicting backend has an arena share worth printing *)
  let pp_arena_share ppf t =
    match t.extra with
    | Arena_stats _ ->
        Format.fprintf ppf " (arena %.1f%% of allocs, %.1f%% of bytes)"
          (arena_alloc_pct t) (arena_bytes_pct t)
    | _ -> ()
  in
  (* realloc-free replays print exactly as they always have *)
  let pp_reallocs ppf t =
    if t.reallocs > 0 then
      Format.fprintf ppf "@ reallocs %d (%d in place, %d moved)" t.reallocs
        t.realloc_in_place t.realloc_moves
  in
  (* only replays where a predicting backend consulted an oracle carry
     mispredict counters *)
  let pp_predictions ppf t =
    if t.predictions > 0 then
      Format.fprintf ppf
        "@ predictions %d, mispredicts %d short-lived / %d long-lived"
        t.predictions t.mispredicts_short_lived t.mispredicts_long_lived
  in
  Format.fprintf ppf
    "@[<v>%s:@ allocs %d, bytes %d%a%a%a@ max heap %d, max live %d (frag \
     %.1f%%)@ instr/alloc %.1f, instr/free %.1f%a@]"
    t.algorithm t.allocs t.total_bytes pp_arena_share t pp_reallocs t
    pp_predictions t t.max_heap t.max_live (fragmentation_pct t)
    t.instr_per_alloc t.instr_per_free pp_extra t.extra

(* -- JSON ---------------------------------------------------------------------- *)

let json_extra = function
  | Core -> []
  | Arena_stats a ->
      [
        ("arena_allocs", string_of_int a.arena_allocs);
        ("arena_bytes", string_of_int a.arena_bytes);
        ("arena_resets", string_of_int a.arena_resets);
        ("overflow_allocs", string_of_int a.overflow_allocs);
      ]
  | Segfit_stats s ->
      [
        ("slabs_created", string_of_int s.slabs_created);
        ("pages_recycled", string_of_int s.pages_recycled);
        ("large_spans", string_of_int s.large_spans);
      ]

let to_json t =
  (* emitted only when the trace had any: keeps realloc-free output
     byte-identical to what older consumers (and the golden files) expect *)
  let realloc_fields =
    if t.reallocs = 0 then []
    else
      [
        ("reallocs", string_of_int t.reallocs);
        ("realloc_in_place", string_of_int t.realloc_in_place);
        ("realloc_moves", string_of_int t.realloc_moves);
      ]
  in
  (* same contract as the realloc counters: only replays where an oracle
     was consulted render them, so oracle-free output stays byte-identical *)
  let prediction_fields =
    if t.predictions = 0 then []
    else
      [
        ("predictions", string_of_int t.predictions);
        ("mispredicts_short_lived", string_of_int t.mispredicts_short_lived);
        ("mispredicts_long_lived", string_of_int t.mispredicts_long_lived);
      ]
  in
  let fields =
    [
      ("algorithm", Printf.sprintf "%S" t.algorithm);
      ("allocs", string_of_int t.allocs);
      ("frees", string_of_int t.frees);
    ]
    @ realloc_fields @ prediction_fields
    @ [
      ("total_bytes", string_of_int t.total_bytes);
      ("max_heap", string_of_int t.max_heap);
      ("max_live", string_of_int t.max_live);
      ("instr_per_alloc", Printf.sprintf "%.6g" t.instr_per_alloc);
      ("instr_per_free", Printf.sprintf "%.6g" t.instr_per_free);
      ("fragmentation_pct", Printf.sprintf "%.6g" (fragmentation_pct t));
    ]
    @ json_extra t.extra
  in
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"
