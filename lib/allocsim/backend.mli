(** The pluggable allocator-backend interface.

    Every simulated allocator implements [BACKEND]; the replay engine
    ({!Driver.run}) and the generic property tests are written once against
    this signature, and the name-keyed {!Registry} hands out backends to
    the simulation pipeline, the CLI and the bench harness.  Adding an
    allocator is therefore a one-file change: implement the signature,
    register it.

    Contract:
    - [create ?base ?hint ()] returns a fresh allocator whose simulated
      address space starts at [base] (default 0).  [hint] is the expected
      object count of the workload (the driver passes the trace's object
      count); backends use it to pre-size hot tables and may ignore it —
      it never affects simulated metrics, only wall-clock speed.  All
      state is private to the returned value, so independent instances may
      replay concurrently on separate domains.
    - [alloc t ~size ~predicted] returns the payload address of a new
      block.  [predicted] is the lifetime predictor's verdict for this
      object; backends that do not segregate by lifetime ignore it (and
      declare [uses_prediction = false] so the driver never pays the
      prediction cost on their behalf).  Raises [Invalid_argument] if
      [size <= 0].
    - [free t addr] releases a previously returned payload address and
      raises [Invalid_argument] on any other address.
    - [realloc] is an {i optional} hook: [None] means the backend has no
      native resize path and the driver synthesizes one as free + alloc +
      copy (billing {!Cost_model} copy charges itself).  [Some f] hands
      the decision to the backend: [f t ~addr ~old_size ~new_size
      ~predicted] returns the block's (possibly unchanged) payload
      address; returning [addr] itself declares an in-place grow/shrink,
      any other address declares a move whose copy the driver then
      charges.  The hook must leave the backend's alloc/free counters
      consistent with the addresses it returns (a move is one free and
      one alloc; in place is neither).
    - [charge_alloc t n] adds [n] simulated instructions to the allocation
      cost counter — the driver uses it to bill the per-allocation lifetime
      prediction (18 instructions for length-4 chains, the amortised
      call-chain-encryption cost otherwise).
    - [extra t] reports backend-specific statistics as a
      {!Metrics.extra}; backends with nothing to add return {!Metrics.Core}.
    - [check_invariants t] verifies internal structural invariants
      (free-list consistency, block tiling, slab accounting) and raises
      [Failure] when one is broken; backends with no checkable structure
      may make it a no-op. *)

module type BACKEND = sig
  type t

  val name : string
  (** Registry key and {!Metrics.t.algorithm} value. *)

  val uses_prediction : bool
  (** True only for backends that act on the [predicted] flag; the driver
      skips the predictor (and its instruction cost) for the rest. *)

  val create : ?base:int -> ?hint:int -> unit -> t
  val alloc : t -> size:int -> predicted:bool -> int
  val free : t -> int -> unit

  val realloc :
    (t -> addr:int -> old_size:int -> new_size:int -> predicted:bool -> int)
    option
  (** Native resize path, or [None] for the driver's free+alloc+copy
      fallback.  See the contract above. *)

  val charge_alloc : t -> int -> unit
  val allocs : t -> int
  val frees : t -> int
  val alloc_instr : t -> int
  val free_instr : t -> int
  val max_heap_size : t -> int
  val extra : t -> Metrics.extra
  val check_invariants : t -> unit
end

type t = (module BACKEND)
(** A backend, first-class.  {!Driver.run} instantiates it fresh per
    replay. *)

val name : t -> string
val uses_prediction : t -> bool
