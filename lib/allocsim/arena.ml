type config = { n_arenas : int; arena_size : int }

let default_config = { n_arenas = 16; arena_size = 4096 }

type arena_state = {
  mutable alloc_ptr : int;  (* offset of the next free byte *)
  mutable count : int;  (* live objects *)
}

(* The general-purpose fallback, existentially packed: the arena layer is a
   lifetime-predicting front-end over ANY registry backend, not a special
   case wired to first-fit.

   The [predicted] bit on every alloc is computed upstream by the session's
   lifetime oracle (offline-trained or online-adaptive); the arena is
   oracle-agnostic and must stay correct when the prediction stream is
   non-stationary — the online oracle promotes and demotes a site mid-run,
   so objects from one site land in the arena area AND the general heap
   within the same replay.  That is safe because [free] routes by address
   alone (arena area vs general heap), never by re-consulting the
   prediction that placed the object. *)
type general = G : (module Backend.BACKEND with type t = 'a) * 'a -> general

type t = {
  config : config;
  arenas : arena_state array;
  mutable current : int;
  general : general;
  area_bytes : int;
  (* arena objects carry no headers, so a free needs only the address to
     find the owning arena; bump pointers hand out byte-granular addresses,
     so the map is a direct array over the whole arena area (bounded by
     n_arenas * arena_size), holding arena index + 1 with 0 = no object *)
  obj_arena : int array;
  mutable arena_allocs : int;
  mutable arena_bytes : int;
  mutable arena_resets : int;
  mutable overflow_allocs : int;
  mutable allocs : int;
  mutable frees : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
}

let create ?(config = default_config)
    ?(fallback : Backend.t = (module First_fit.Backend)) ?hint () =
  let area_bytes = config.n_arenas * config.arena_size in
  let (module F) = fallback in
  {
    config;
    arenas = Array.init config.n_arenas (fun _ -> { alloc_ptr = 0; count = 0 });
    current = 0;
    (* the general heap begins above the arena area *)
    general = G ((module F), F.create ~base:area_bytes ?hint ());
    area_bytes;
    obj_arena = Array.make area_bytes 0;
    arena_allocs = 0;
    arena_bytes = 0;
    arena_resets = 0;
    overflow_allocs = 0;
    allocs = 0;
    frees = 0;
    alloc_instr = 0;
    free_instr = 0;
  }

let charge_prediction t cost = t.alloc_instr <- t.alloc_instr + cost

let arena_addr t idx offset = (idx * t.config.arena_size) + offset

(* Find an arena with no live objects and rewind it.  The scan starts from
   the base of the arena area (the paper: "the algorithm scans all
   short-lived arenas attempting to find one with a zero count field"), so
   under fast churn the same low arena drains and is recycled over and
   over — which also keeps the hot allocation window small and
   cache-resident. *)
let find_empty_arena t =
  let n = t.config.n_arenas in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < n do
    t.alloc_instr <- t.alloc_instr + Cost_model.arena_scan_per_arena;
    let candidate = !i in
    if candidate <> t.current && t.arenas.(candidate).count = 0 then
      found := candidate;
    incr i
  done;
  let idx = !found in
  if idx >= 0 then begin
    t.alloc_instr <- t.alloc_instr + Cost_model.arena_reset;
    t.arenas.(idx).alloc_ptr <- 0;
    t.arena_resets <- t.arena_resets + 1
  end;
  idx

let bump t idx size =
  let a = t.arenas.(idx) in
  let addr = arena_addr t idx a.alloc_ptr in
  a.alloc_ptr <- a.alloc_ptr + size;
  a.count <- a.count + 1;
  t.arena_allocs <- t.arena_allocs + 1;
  t.arena_bytes <- t.arena_bytes + size;
  t.alloc_instr <- t.alloc_instr + Cost_model.arena_bump;
  Array.unsafe_set t.obj_arena addr (idx + 1);
  addr

let general_alloc t size =
  let (G ((module F), g)) = t.general in
  F.alloc g ~size ~predicted:false

let alloc t ~size ~predicted =
  if size <= 0 then invalid_arg "Arena.alloc: size must be positive";
  t.allocs <- t.allocs + 1;
  let fits = size <= t.config.arena_size in
  if predicted && fits then begin
    let a = t.arenas.(t.current) in
    if a.alloc_ptr + size <= t.config.arena_size then bump t t.current size
    else begin
      let idx = find_empty_arena t in
      if idx >= 0 then begin
        t.current <- idx;
        bump t idx size
      end
      else begin
        (* arena pollution: no empty arena — degenerate to the general
           allocator (§5.2's CFRAC discussion) *)
        t.overflow_allocs <- t.overflow_allocs + 1;
        general_alloc t size
      end
    end
  end
  else general_alloc t size

let free t addr =
  t.frees <- t.frees + 1;
  (* the address decides: arena area or general heap (§5.1) *)
  t.free_instr <- t.free_instr + 2;
  if addr < t.area_bytes then begin
    let v = if addr < 0 then 0 else Array.unsafe_get t.obj_arena addr in
    if v = 0 then invalid_arg "Arena.free: not an allocated arena address"
    else begin
      Array.unsafe_set t.obj_arena addr 0;
      let a = t.arenas.(v - 1) in
      a.count <- a.count - 1;
      t.free_instr <- t.free_instr + Cost_model.arena_free - 2
    end
  end
  else
    let (G ((module F), g)) = t.general in
    F.free g addr

let arena_allocs t = t.arena_allocs
let arena_bytes t = t.arena_bytes
let arena_resets t = t.arena_resets
let overflow_allocs t = t.overflow_allocs
let allocs t = t.allocs
let frees t = t.frees

let max_heap_size t =
  let (G ((module F), g)) = t.general in
  t.area_bytes + F.max_heap_size g

let alloc_instr t =
  let (G ((module F), g)) = t.general in
  t.alloc_instr + F.alloc_instr g

let free_instr t =
  let (G ((module F), g)) = t.general in
  t.free_instr + F.free_instr g

let general_name t =
  let (G ((module F), _)) = t.general in
  F.name

let stats t : Metrics.arena_stats =
  {
    arena_allocs = t.arena_allocs;
    arena_bytes = t.arena_bytes;
    arena_resets = t.arena_resets;
    overflow_allocs = t.overflow_allocs;
  }

let check_invariants t =
  Array.iteri
    (fun i a ->
      if a.count < 0 then failwith (Printf.sprintf "arena %d: negative live count" i);
      if a.alloc_ptr < 0 || a.alloc_ptr > t.config.arena_size then
        failwith (Printf.sprintf "arena %d: alloc_ptr out of range" i))
    t.arenas;
  let live_per_arena = Array.make t.config.n_arenas 0 in
  Array.iter
    (fun v -> if v > 0 then live_per_arena.(v - 1) <- live_per_arena.(v - 1) + 1)
    t.obj_arena;
  Array.iteri
    (fun i a ->
      if a.count <> live_per_arena.(i) then
        failwith
          (Printf.sprintf "arena %d: count=%d but %d live objects" i a.count
             live_per_arena.(i)))
    t.arenas;
  let (G ((module F), g)) = t.general in
  F.check_invariants g

(* The default module backend; [backend] below closes over a custom
   geometry and fallback. *)
let make_backend ?config ?fallback () : Backend.t =
  (module struct
    type nonrec t = t

    let name = "arena"
    let uses_prediction = true
    let create ?base:_ ?hint () = create ?config ?fallback ?hint ()
    let alloc = alloc
    let free = free

    (* an arena bump pointer cannot resize its last-but-one block; the
       driver's free + alloc + copy fallback is the honest cost *)
    let realloc = None
    let charge_alloc = charge_prediction
    let allocs = allocs
    let frees = frees
    let alloc_instr = alloc_instr
    let free_instr = free_instr
    let max_heap_size = max_heap_size
    let extra t = Metrics.Arena_stats (stats t)
    let check_invariants = check_invariants
  end)

let backend = make_backend

module Backend_default : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "arena"
  let uses_prediction = true
  let create ?base:_ ?hint () = create ?hint ()
  let alloc = alloc
  let free = free
  let realloc = None
  let charge_alloc = charge_prediction
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra t = Metrics.Arena_stats (stats t)
  let check_invariants = check_invariants
end
