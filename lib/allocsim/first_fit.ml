let header = 8
let min_block = 16

type block = {
  mutable addr : int;  (* start of the block, header included *)
  mutable size : int;  (* total bytes, header included *)
  mutable is_free : bool;
  (* address-ordered doubly-linked list of all blocks *)
  mutable prev : block option;
  mutable next : block option;
  (* doubly-linked free list *)
  mutable fprev : block option;
  mutable fnext : block option;
}

type policy = First | Best

type t = {
  base : int;
  sbrk_chunk : int;
  policy : policy;
  mutable first : block option;  (* lowest-address block *)
  mutable last : block option;  (* highest-address block *)
  mutable free_head : block option;
  mutable rover : block option;
  mutable brk : int;
  mutable max_brk : int;
  by_payload : (int, block) Hashtbl.t;  (* allocated blocks only *)
  mutable live : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

let create ?(base = 0) ?(sbrk_chunk = 8192) ?(policy = First) () =
  {
    base;
    sbrk_chunk;
    policy;
    first = None;
    last = None;
    free_head = None;
    rover = None;
    brk = base;
    max_brk = base;
    by_payload = Hashtbl.create 1024;
    live = 0;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

let round8 n = (n + 7) land lnot 7

(* -- free-list maintenance ------------------------------------------------- *)

let free_list_insert t b =
  b.fprev <- None;
  b.fnext <- t.free_head;
  (match t.free_head with Some h -> h.fprev <- Some b | None -> ());
  t.free_head <- Some b;
  if t.rover = None then t.rover <- Some b

let free_list_remove t b =
  (match b.fprev with
  | Some p -> p.fnext <- b.fnext
  | None -> t.free_head <- b.fnext);
  (match b.fnext with Some n -> n.fprev <- b.fprev | None -> ());
  (* the rover must not point at a removed block *)
  (match t.rover with
  | Some r when r == b -> t.rover <- (match b.fnext with Some n -> Some n | None -> t.free_head)
  | _ -> ());
  b.fprev <- None;
  b.fnext <- None

(* -- address-list maintenance ----------------------------------------------- *)

let insert_after t anchor b =
  match anchor with
  | None ->
      (* insert at front *)
      b.prev <- None;
      b.next <- t.first;
      (match t.first with Some f -> f.prev <- Some b | None -> ());
      t.first <- Some b;
      if t.last = None then t.last <- Some b
  | Some a ->
      b.prev <- Some a;
      b.next <- a.next;
      (match a.next with Some n -> n.prev <- Some b | None -> t.last <- Some b);
      a.next <- Some b

let remove_block t b =
  (match b.prev with Some p -> p.next <- b.next | None -> t.first <- b.next);
  (match b.next with Some n -> n.prev <- b.prev | None -> t.last <- b.prev)

(* -- allocation -------------------------------------------------------------- *)

let split t b request =
  (* carve the front [request] bytes out of free block [b]; b must satisfy
     b.size >= request.  Returns the allocated block. *)
  if b.size >= request + min_block then begin
    t.alloc_instr <- t.alloc_instr + Cost_model.ff_split;
    let remainder =
      {
        addr = b.addr + request;
        size = b.size - request;
        is_free = true;
        prev = None;
        next = None;
        fprev = None;
        fnext = None;
      }
    in
    b.size <- request;
    insert_after t (Some b) remainder;
    free_list_insert t remainder
  end;
  free_list_remove t b;
  b.is_free <- false;
  b

let sbrk t need =
  (* extend the break so at least [need] more free bytes exist at the end *)
  let grow = (need + t.sbrk_chunk - 1) / t.sbrk_chunk * t.sbrk_chunk in
  t.alloc_instr <- t.alloc_instr + Cost_model.ff_sbrk;
  let start = t.brk in
  t.brk <- t.brk + grow;
  if t.brk > t.max_brk then t.max_brk <- t.brk;
  (* merge with a trailing free block if any *)
  match t.last with
  | Some l when l.is_free ->
      l.size <- l.size + grow;
      l
  | _ ->
      let b =
        {
          addr = start;
          size = grow;
          is_free = true;
          prev = None;
          next = None;
          fprev = None;
          fnext = None;
        }
      in
      insert_after t t.last b;
      free_list_insert t b;
      b

let alloc t size =
  if size <= 0 then invalid_arg "First_fit.alloc: size must be positive";
  let request = max min_block (round8 (size + header)) in
  t.allocs <- t.allocs + 1;
  t.alloc_instr <- t.alloc_instr + Cost_model.ff_alloc_base;
  let found = ref None in
  (match t.policy with
  | Best ->
      (* best fit: scan the whole free list for the tightest block *)
      let rec scan cur =
        match cur with
        | None -> ()
        | Some b ->
            t.alloc_instr <- t.alloc_instr + Cost_model.ff_per_inspect;
            (if b.size >= request then
               match !found with
               | Some best when best.size <= b.size -> ()
               | _ -> found := Some b);
            scan b.fnext
      in
      scan t.free_head
  | First -> (
      (* roving first-fit over the free list, wrapping once *)
      let start = match t.rover with Some r -> Some r | None -> t.free_head in
      match start with
  | None -> ()
  | Some start_block ->
      let cur = ref (Some start_block) in
      let wrapped = ref false in
      let continue = ref true in
      while !continue do
        match !cur with
        | None ->
            if !wrapped then continue := false
            else begin
              wrapped := true;
              cur := t.free_head;
              (* if the free list is empty now, stop *)
              if t.free_head = None then continue := false
            end
        | Some b ->
            t.alloc_instr <- t.alloc_instr + Cost_model.ff_per_inspect;
            if b.size >= request then begin
              found := Some b;
              continue := false
            end
            else begin
              cur := b.fnext;
              (match b.fnext with
              | Some n when !wrapped && n == start_block -> continue := false
              | _ -> ());
              if !wrapped && b.fnext = None then continue := false
            end
      done));
  let b =
    match !found with
    | Some b -> b
    | None ->
        let b = sbrk t request in
        b
  in
  (* advance the rover past the chosen block *)
  t.rover <- (match b.fnext with Some n -> Some n | None -> t.free_head);
  let b = split t b request in
  Hashtbl.replace t.by_payload (b.addr + header) b;
  t.live <- t.live + b.size;
  b.addr + header

(* -- free ---------------------------------------------------------------------- *)

let free t payload =
  let b =
    match Hashtbl.find_opt t.by_payload payload with
    | Some b -> b
    | None -> invalid_arg "First_fit.free: not an allocated address"
  in
  Hashtbl.remove t.by_payload payload;
  t.frees <- t.frees + 1;
  t.free_instr <- t.free_instr + Cost_model.ff_free_base;
  t.live <- t.live - b.size;
  b.is_free <- true;
  (* coalesce with next *)
  (match b.next with
  | Some n when n.is_free ->
      t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
      free_list_remove t n;
      remove_block t n;
      b.size <- b.size + n.size
  | _ -> ());
  (* coalesce with prev *)
  let merged =
    match b.prev with
    | Some p when p.is_free ->
        t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
        remove_block t b;
        p.size <- p.size + b.size;
        p
    | _ ->
        free_list_insert t b;
        b
  in
  ignore merged

(* -- accessors ------------------------------------------------------------------ *)

let heap_size t = t.brk - t.base
let max_heap_size t = t.max_brk - t.base
let live_bytes t = t.live
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees

let charge_alloc t n = t.alloc_instr <- t.alloc_instr + n

let check_invariants t =
  (* blocks tile [base, brk) exactly; no two adjacent free blocks *)
  let pos = ref t.base in
  let prev_free = ref false in
  let rec walk = function
    | None -> ()
    | Some b ->
        if b.addr <> !pos then
          failwith
            (Printf.sprintf "block gap/overlap at %d (expected %d)" b.addr !pos);
        if b.size <= 0 then failwith "non-positive block size";
        if b.is_free && !prev_free then failwith "adjacent free blocks not coalesced";
        prev_free := b.is_free;
        pos := b.addr + b.size;
        walk b.next
  in
  walk t.first;
  if !pos <> t.brk then
    failwith (Printf.sprintf "blocks end at %d but brk is %d" !pos t.brk);
  (* every free-list entry is free; every free block is on the free list *)
  let on_free_list = Hashtbl.create 64 in
  let rec fwalk = function
    | None -> ()
    | Some b ->
        if not b.is_free then failwith "allocated block on free list";
        Hashtbl.replace on_free_list b.addr ();
        fwalk b.fnext
  in
  fwalk t.free_head;
  let rec walk2 = function
    | None -> ()
    | Some b ->
        if b.is_free && not (Hashtbl.mem on_free_list b.addr) then
          failwith "free block missing from free list";
        walk2 b.next
  in
  walk2 t.first

(* -- backend adapters ------------------------------------------------------------ *)

module Best_backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "best-fit"
  let uses_prediction = false
  let create ?base () = create ?base ~policy:Best ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free
  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants = check_invariants
end

(* NB: declared last — [module Backend] shadows the library's [Backend]
   for anything below it. *)
module Backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "first-fit"
  let uses_prediction = false
  let create ?base () = create ?base ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free
  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants = check_invariants
end
