(* First-fit / best-fit core, hot-path representation.

   Block metadata lives in one flat int array, stride 8 per block: a
   "block" is the int offset of its record, and the address list and free
   list are intrusive index links inside the array.  The sentinel nil is
   record 0.  Compared to linked records of options this removes every
   source of per-operation overhead at once: no option boxing, no
   polymorphic equality on cyclic structures (a latent [Stack_overflow]
   hazard), no OCaml heap allocation (split/coalesce recycle records
   through an in-array pool chained on the fnext field), and — the big one
   — no [caml_modify] write barrier, since every link update is a plain
   int store.  The allocated-payload index is likewise a direct-address
   int array ([(payload - base) / 8 -> block offset], 0 = none) in place
   of the seed's hashtable.

   The representation is the ONLY thing that changed: placement order,
   rover semantics and every Cost_model charge are byte-identical to the
   seed implementation, enforced by test/golden_metrics.expected and the
   qcheck equivalence suite against test/ff_reference.ml. *)

let header = 8
let min_block = 16

(* field offsets within a block record; stride 8 keeps offset arithmetic a
   shift and rounds the record to a cache line on 64-bit *)
let f_addr = 0 (* start of the block, header included *)
let f_size = 1 (* total bytes, header included *)
let f_free = 2 (* 1 = free *)
let f_prev = 3 (* address-ordered list links, 0-terminated *)
let f_next = 4
let f_fprev = 5 (* free-list links, 0-terminated; fnext doubles as the pool chain *)
let f_fnext = 6
let stride = 8
let nil = 0

type policy = First | Best

type t = {
  base : int;
  sbrk_chunk : int;
  policy : policy;
  mutable store : int array;  (* block records; record 0 is the sentinel *)
  mutable store_len : int;  (* offset of the first never-used record *)
  mutable pool : int;  (* recycled records chained on f_fnext, 0 = empty *)
  mutable first : int;  (* lowest-address block, or nil *)
  mutable last : int;  (* highest-address block, or nil *)
  mutable free_head : int;
  mutable rover : int;
  mutable brk : int;
  mutable max_brk : int;
  mutable by_payload : int array;  (* (payload - base) / 8 -> block, 0 = none *)
  mutable live : int;
  mutable alloc_instr : int;
  mutable free_instr : int;
  mutable allocs : int;
  mutable frees : int;
}

let create ?(base = 0) ?(hint = 1024) ?(sbrk_chunk = 8192) ?(policy = First) () =
  (* the hint trims early doublings; both tables grow on demand, so cap
     the upfront allocation *)
  let blocks = max 64 (min hint 65536) in
  let store = Array.make (blocks * stride) 0 in
  store.(f_addr) <- -1 (* the sentinel never matches a real address *);
  {
    base;
    sbrk_chunk;
    policy;
    store;
    store_len = stride;
    pool = nil;
    first = nil;
    last = nil;
    free_head = nil;
    rover = nil;
    brk = base;
    max_brk = base;
    by_payload = Array.make (max 64 (min hint 65536)) 0;
    live = 0;
    alloc_instr = 0;
    free_instr = 0;
    allocs = 0;
    frees = 0;
  }

let round8 n = (n + 7) land lnot 7

(* field accessors: small enough for the non-flambda inliner *)
let get t b f = Array.unsafe_get t.store (b + f)
let set t b f v = Array.unsafe_set t.store (b + f) v

(* -- the pooled block store ------------------------------------------------- *)

let new_block t ~addr ~size =
  let b =
    if t.pool <> nil then begin
      let b = t.pool in
      t.pool <- get t b f_fnext;
      b
    end
    else begin
      if t.store_len = Array.length t.store then begin
        let bigger = Array.make (2 * t.store_len) 0 in
        Array.blit t.store 0 bigger 0 t.store_len;
        t.store <- bigger
      end;
      let b = t.store_len in
      t.store_len <- t.store_len + stride;
      b
    end
  in
  set t b f_addr addr;
  set t b f_size size;
  set t b f_free 1;
  set t b f_prev nil;
  set t b f_next nil;
  set t b f_fprev nil;
  set t b f_fnext nil;
  b

let release t b =
  set t b f_fnext t.pool;
  t.pool <- b

(* -- the payload index ------------------------------------------------------ *)

(* grow the direct-address map to cover the current break *)
let ensure_map t =
  let need = (t.brk - t.base) lsr 3 in
  let cap = Array.length t.by_payload in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < need do cap' := !cap' * 2 done;
    let bigger = Array.make !cap' 0 in
    Array.blit t.by_payload 0 bigger 0 cap;
    t.by_payload <- bigger
  end

(* -- free-list maintenance ------------------------------------------------- *)

let free_list_insert t b =
  set t b f_fprev nil;
  set t b f_fnext t.free_head;
  if t.free_head <> nil then set t t.free_head f_fprev b;
  t.free_head <- b;
  if t.rover = nil then t.rover <- b

let free_list_remove t b =
  let fp = get t b f_fprev and fn = get t b f_fnext in
  if fp <> nil then set t fp f_fnext fn else t.free_head <- fn;
  if fn <> nil then set t fn f_fprev fp;
  (* the rover must not point at a removed block *)
  if t.rover = b then t.rover <- (if fn <> nil then fn else t.free_head);
  set t b f_fprev nil;
  set t b f_fnext nil

(* -- address-list maintenance ----------------------------------------------- *)

(* insert [b] after [anchor]; [anchor = nil] means at the front *)
let insert_after t anchor b =
  if anchor = nil then begin
    set t b f_prev nil;
    set t b f_next t.first;
    if t.first <> nil then set t t.first f_prev b;
    t.first <- b;
    if t.last = nil then t.last <- b
  end
  else begin
    let an = get t anchor f_next in
    set t b f_prev anchor;
    set t b f_next an;
    if an <> nil then set t an f_prev b else t.last <- b;
    set t anchor f_next b
  end

let remove_block t b =
  let p = get t b f_prev and n = get t b f_next in
  if p <> nil then set t p f_next n else t.first <- n;
  if n <> nil then set t n f_prev p else t.last <- p

(* -- allocation -------------------------------------------------------------- *)

let split t b request =
  (* carve the front [request] bytes out of free block [b]; b must satisfy
     size >= request.  Returns the allocated block. *)
  let bsize = get t b f_size in
  if bsize >= request + min_block then begin
    t.alloc_instr <- t.alloc_instr + Cost_model.ff_split;
    let remainder =
      new_block t ~addr:(get t b f_addr + request) ~size:(bsize - request)
    in
    set t b f_size request;
    insert_after t b remainder;
    free_list_insert t remainder
  end;
  free_list_remove t b;
  set t b f_free 0;
  b

let sbrk t need =
  (* extend the break so at least [need] more free bytes exist at the end *)
  let grow = (need + t.sbrk_chunk - 1) / t.sbrk_chunk * t.sbrk_chunk in
  t.alloc_instr <- t.alloc_instr + Cost_model.ff_sbrk;
  let start = t.brk in
  t.brk <- t.brk + grow;
  if t.brk > t.max_brk then t.max_brk <- t.brk;
  ensure_map t;
  (* merge with a trailing free block if any; the sentinel's free flag is
     0, so an empty list takes the fresh-block path *)
  let l = t.last in
  if get t l f_free = 1 then begin
    set t l f_size (get t l f_size + grow);
    l
  end
  else begin
    let b = new_block t ~addr:start ~size:grow in
    insert_after t t.last b;
    free_list_insert t b;
    b
  end

let alloc t size =
  if size <= 0 then invalid_arg "First_fit.alloc: size must be positive";
  let request = max min_block (round8 (size + header)) in
  t.allocs <- t.allocs + 1;
  let found = ref nil in
  let inspected = ref 0 in
  (match t.policy with
  | Best ->
      (* best fit: scan the whole free list for the tightest block *)
      let cur = ref t.free_head in
      while !cur <> nil do
        let b = !cur in
        incr inspected;
        let bsize = get t b f_size in
        if bsize >= request && (!found = nil || get t !found f_size > bsize)
        then found := b;
        cur := get t b f_fnext
      done
  | First ->
      (* roving first-fit over the free list, wrapping once *)
      let start = if t.rover <> nil then t.rover else t.free_head in
      if start <> nil then begin
        let cur = ref start in
        let wrapped = ref false in
        let continue = ref true in
        while !continue do
          let b = !cur in
          if b = nil then begin
            if !wrapped then continue := false
            else begin
              wrapped := true;
              cur := t.free_head;
              (* if the free list is empty now, stop *)
              if t.free_head = nil then continue := false
            end
          end
          else begin
            incr inspected;
            if get t b f_size >= request then begin
              found := b;
              continue := false
            end
            else begin
              let fn = get t b f_fnext in
              cur := fn;
              if !wrapped && (fn = start || fn = nil) then continue := false
            end
          end
        done
      end);
  t.alloc_instr <-
    t.alloc_instr + Cost_model.ff_alloc_base
    + (!inspected * Cost_model.ff_per_inspect);
  let b = if !found <> nil then !found else sbrk t request in
  (* advance the rover past the chosen block *)
  let fn = get t b f_fnext in
  t.rover <- (if fn <> nil then fn else t.free_head);
  let b = split t b request in
  let payload = get t b f_addr + header in
  Array.unsafe_set t.by_payload ((payload - t.base) lsr 3) b;
  t.live <- t.live + get t b f_size;
  payload

(* -- free ---------------------------------------------------------------------- *)

let free t payload =
  let off = payload - t.base in
  let idx = off lsr 3 in
  if off < header || off land 7 <> 0 || idx >= Array.length t.by_payload then
    invalid_arg "First_fit.free: not an allocated address";
  let b = Array.unsafe_get t.by_payload idx in
  if b = nil then invalid_arg "First_fit.free: not an allocated address";
  Array.unsafe_set t.by_payload idx 0;
  t.frees <- t.frees + 1;
  t.free_instr <- t.free_instr + Cost_model.ff_free_base;
  t.live <- t.live - get t b f_size;
  set t b f_free 1;
  (* coalesce with next *)
  let n = get t b f_next in
  if get t n f_free = 1 then begin
    t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
    free_list_remove t n;
    remove_block t n;
    set t b f_size (get t b f_size + get t n f_size);
    release t n
  end;
  (* coalesce with prev *)
  let p = get t b f_prev in
  if get t p f_free = 1 then begin
    t.free_instr <- t.free_instr + Cost_model.ff_coalesce;
    remove_block t b;
    set t p f_size (get t p f_size + get t b f_size);
    release t b
  end
  else free_list_insert t b

(* -- accessors ------------------------------------------------------------------ *)

let heap_size t = t.brk - t.base
let max_heap_size t = t.max_brk - t.base
let live_bytes t = t.live
let alloc_instr t = t.alloc_instr
let free_instr t = t.free_instr
let allocs t = t.allocs
let frees t = t.frees

let charge_alloc t n = t.alloc_instr <- t.alloc_instr + n

let free_blocks t =
  let n = ref 0 in
  let cur = ref t.free_head in
  while !cur <> nil do
    incr n;
    cur := get t !cur f_fnext
  done;
  !n

let check_invariants t =
  (* the sentinel record stays inert *)
  if
    get t nil f_free <> 0 || get t nil f_prev <> nil || get t nil f_next <> nil
  then failwith "sentinel record mutated";
  (* blocks tile [base, brk) exactly; no two adjacent free blocks *)
  let pos = ref t.base in
  let prev_free = ref false in
  let cur = ref t.first in
  while !cur <> nil do
    let b = !cur in
    if get t b f_addr <> !pos then
      failwith
        (Printf.sprintf "block gap/overlap at %d (expected %d)" (get t b f_addr)
           !pos);
    if get t b f_size <= 0 then failwith "non-positive block size";
    let is_free = get t b f_free = 1 in
    if is_free && !prev_free then failwith "adjacent free blocks not coalesced";
    prev_free := is_free;
    pos := get t b f_addr + get t b f_size;
    cur := get t b f_next
  done;
  if !pos <> t.brk then
    failwith (Printf.sprintf "blocks end at %d but brk is %d" !pos t.brk);
  (* every free-list entry is free; every free block is on the free list *)
  let on_free_list = Hashtbl.create 64 in
  let cur = ref t.free_head in
  while !cur <> nil do
    let b = !cur in
    if get t b f_free <> 1 then failwith "allocated block on free list";
    Hashtbl.replace on_free_list (get t b f_addr) ();
    cur := get t b f_fnext
  done;
  let cur = ref t.first in
  while !cur <> nil do
    let b = !cur in
    if get t b f_free = 1 && not (Hashtbl.mem on_free_list (get t b f_addr))
    then failwith "free block missing from free list";
    cur := get t b f_next
  done;
  (* the payload map points exactly at the allocated blocks *)
  Array.iteri
    (fun idx b ->
      if
        b <> nil
        && (get t b f_free = 1 || get t b f_addr + header - t.base <> idx lsl 3)
      then failwith "payload map entry out of sync")
    t.by_payload

(* -- backend adapters ------------------------------------------------------------ *)

module Best_backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "best-fit"
  let uses_prediction = false
  let create ?base ?hint () = create ?base ?hint ~policy:Best ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free

  (* boundary-tag blocks are exact-fit; no native resize path, so the
     driver synthesizes free + alloc + copy *)
  let realloc = None
  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants = check_invariants
end

(* NB: declared last — [module Backend] shadows the library's [Backend]
   for anything below it; [Backend_api] keeps the signature reachable. *)
module Backend_api = Backend

module Backend : Backend.BACKEND with type t = t = struct
  type nonrec t = t

  let name = "first-fit"
  let uses_prediction = false
  let create ?base ?hint () = create ?base ?hint ()
  let alloc t ~size ~predicted:_ = alloc t size
  let free = free
  let realloc = None
  let charge_alloc = charge_alloc
  let allocs = allocs
  let frees = frees
  let alloc_instr = alloc_instr
  let free_instr = free_instr
  let max_heap_size = max_heap_size
  let extra _ = Metrics.Core
  let check_invariants = check_invariants
end

(* Backends over a custom sbrk granularity, for the parameterized
   [first-fit:sbrk=] / [best-fit:sbrk=] registry specs.  Without
   [sbrk_chunk] these are exactly [Backend] / [Best_backend]. *)
let make_backend ?sbrk_chunk ?(policy = First) () : Backend_api.t =
  match sbrk_chunk with
  | None -> (
      match policy with
      | First -> (module Backend)
      | Best -> (module Best_backend))
  | Some sbrk_chunk ->
      let name = match policy with First -> "first-fit" | Best -> "best-fit" in
      (module struct
        type nonrec t = t

        let name = name
        let uses_prediction = false
        let create ?base ?hint () = create ?base ?hint ~sbrk_chunk ~policy ()
        let alloc t ~size ~predicted:_ = alloc t size
        let free = free
        let realloc = None
        let charge_alloc = charge_alloc
        let allocs = allocs
        let frees = frees
        let alloc_instr = alloc_instr
        let free_instr = free_instr
        let max_heap_size = max_heap_size
        let extra _ = Metrics.Core
        let check_invariants = check_invariants
      end)
