(** Per-domain pools of per-replay scratch arrays.

    Candidate sweeps replay one trace through many backends; the
    per-replay object tables ([addr_of]/[size_of]/[ref_cursor]) are the
    only driver-side allocations that scale with the trace, so they are
    pooled per domain and reset by prefix fill instead of reallocated.
    Reuse is observable as the ["replay.scratch_reuses"] counter of
    {!Lp_obs.Timings} when timings are enabled. *)

type t

val create : unit -> t
(** A private, unpooled scratch (tests, nested replays). *)

val acquire : unit -> t
(** The calling domain's pooled scratch, marked in-use.  If it is already
    in use (a nested replay), a fresh private scratch is returned
    instead, so the result is always exclusively owned.  Pair with
    {!release}. *)

val release : t -> unit
(** Returns a scratch to its domain's pool.  The arrays handed out by
    {!tables} must no longer be used. *)

val tables : t -> n_objects:int -> cursor:bool -> int array * int array * int array
(** [(addr_of, size_of, ref_cursor)] with the [0, n_objects) prefix reset
    to [(-1, 0, 0)].  The arrays may be longer than [n_objects]; callers
    must only index below it.  [ref_cursor] is [[||]] unless [cursor] is
    true. *)

val predict_tables : t -> n_objects:int -> int array * Bytes.t
(** [(birth_of, flag_of)] with the [0, n_objects) prefix reset to
    [(-1, '\000')] — the per-object oracle state (birth clock and last
    verdict) replays track to attribute lifetime outcomes.  Pooled with
    the same grow-or-reset discipline as {!tables}; only acquired by
    replays running under a predictor. *)
