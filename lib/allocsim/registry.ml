type entry = {
  name : string;
  aliases : string list;
  doc : string;
  make : ?arena_config:Arena.config -> unit -> Backend.t;
}

let entries : entry list ref = ref []

let register ~name ?(aliases = []) ~doc make =
  if List.exists (fun e -> e.name = name) !entries then
    invalid_arg (Printf.sprintf "Registry.register: duplicate backend %S" name);
  entries := !entries @ [ { name; aliases; doc; make } ]

let all () = !entries
let names () = List.map (fun e -> e.name) !entries

let find_opt name =
  List.find_opt (fun e -> e.name = name || List.mem name e.aliases) !entries

let mem name = find_opt name <> None

let find name =
  match find_opt name with
  | Some e -> e
  | None ->
      failwith
        (Printf.sprintf "unknown allocator backend %S (known: %s)" name
           (String.concat ", " (names ())))

let backend ?arena_config name = (find name).make ?arena_config ()

let canonical_name name = (find name).name

(* -- parameterized backend specs ---------------------------------------------------

   A spec is [name:key=value:key=value...]; the name may be an alias, ':'
   separates parameters (',' stays the CLI's list separator) and
   list-valued parameters use '+' between elements.  Parsing returns
   [Error] with a one-line reason — the CLIs turn that into a usage error
   (exit 2) — and never raises.  A spec with every parameter at its
   default builds the very same backend as the plain name (the qcheck
   equivalence property holds them byte-identical). *)

type spec_param = {
  key : string;
  grammar : string;  (* value shape, e.g. "<bytes>" *)
  param_doc : string;
  default : string;
}

let spec_params_of = function
  | "first-fit" | "best-fit" ->
      [
        {
          key = "sbrk";
          grammar = "<bytes>";
          param_doc = "simulated sbrk granularity: positive multiple of 8";
          default = "8192";
        };
      ]
  | "segfit" ->
      [
        {
          key = "slab";
          grammar = "<n>+<n>+...";
          param_doc =
            "slab cell-size ladder: strictly ascending multiples of 16 in \
             [16, 4096], at most 128 entries";
          default = "16+32+64+128+256+512+1024+2048";
        };
      ]
  | "arena" ->
      [
        {
          key = "n";
          grammar = "<count>";
          param_doc = "number of arenas, in [1, 4096]";
          default = "16";
        };
        {
          key = "chunk";
          grammar = "<bytes>";
          param_doc = "per-arena size in bytes, in [64, 1048576]";
          default = "4096";
        };
        {
          key = "fallback";
          grammar = "<name>";
          param_doc =
            "general-purpose fallback backend: any plain backend name \
             except arena";
          default = "first-fit";
        };
      ]
  | _ -> []

let spec_error spec fmt =
  Printf.ksprintf (fun msg -> Error (Printf.sprintf "%s (in spec %S)" msg spec)) fmt

let ( let* ) = Result.bind

let int_value spec ~key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> spec_error spec "parameter %s: %S is not an integer" key v

let parse_slab spec v =
  let* cells =
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        let* n = int_value spec ~key:"slab" part in
        Ok (n :: acc))
      (Ok [])
      (String.split_on_char '+' v)
  in
  let cells = Array.of_list (List.rev cells) in
  if Array.length cells = 0 then spec_error spec "parameter slab: empty ladder"
  else if Array.length cells > 128 then
    spec_error spec "parameter slab: %d classes (at most 128)" (Array.length cells)
  else
    let bad = ref None in
    Array.iteri
      (fun i c ->
        if !bad = None then
          if c mod 16 <> 0 then
            bad := Some (Printf.sprintf "class %d is not a multiple of 16" c)
          else if c < 16 || c > 4096 then
            bad := Some (Printf.sprintf "class %d outside [16, 4096]" c)
          else if i > 0 && c <= cells.(i - 1) then
            bad := Some (Printf.sprintf "classes not strictly ascending at %d" c))
      cells;
    match !bad with
    | Some msg -> spec_error spec "parameter slab: %s" msg
    | None -> Ok cells

(* Split [name:k=v:...]; every parameter key must belong to the backend's
   grammar, appear at most once, and carry a well-formed value. *)
let parse_spec spec =
  match String.split_on_char ':' spec with
  | [] | [ "" ] -> Error (Printf.sprintf "empty backend spec %S" spec)
  | name :: segments ->
      let* entry =
        match find_opt name with
        | Some e -> Ok e
        | None ->
            Error
              (Printf.sprintf "unknown allocator backend %S (known: %s)" name
                 (String.concat ", " (names ())))
      in
      let params = spec_params_of entry.name in
      let* kvs =
        List.fold_left
          (fun acc seg ->
            let* acc = acc in
            match String.index_opt seg '=' with
            | None ->
                spec_error spec "bad parameter %S: expected key=value" seg
            | Some i ->
                let key = String.sub seg 0 i in
                let value = String.sub seg (i + 1) (String.length seg - i - 1) in
                if not (List.exists (fun p -> p.key = key) params) then
                  if params = [] then
                    spec_error spec "backend %s takes no parameters" entry.name
                  else
                    spec_error spec "unknown parameter %S for %s (valid: %s)"
                      key entry.name
                      (String.concat ", " (List.map (fun p -> p.key) params))
                else if List.mem_assoc key acc then
                  spec_error spec "duplicate parameter %S" key
                else Ok (acc @ [ (key, value) ]))
          (Ok []) segments
      in
      Ok (entry, kvs)

(* Validate the values and build the backend.  Defaults fill in anything
   the spec leaves out; [arena_config] (the simulation {!Config.t}
   geometry) seeds arena defaults so a bare ["arena"] spec still follows
   the configured geometry. *)
let backend_of_spec ?arena_config spec =
  let* entry, kvs = parse_spec spec in
  match entry.name with
  | "first-fit" | "best-fit" ->
      let* sbrk_chunk =
        match List.assoc_opt "sbrk" kvs with
        | None -> Ok None
        | Some v ->
            let* n = int_value spec ~key:"sbrk" v in
            if n <= 0 || n mod 8 <> 0 then
              spec_error spec "parameter sbrk: %d is not a positive multiple of 8" n
            else Ok (Some n)
      in
      let policy =
        if entry.name = "best-fit" then First_fit.Best else First_fit.First
      in
      Ok (First_fit.make_backend ?sbrk_chunk ~policy ())
  | "segfit" ->
      let* classes =
        match List.assoc_opt "slab" kvs with
        | None -> Ok None
        | Some v ->
            let* cells = parse_slab spec v in
            Ok (Some cells)
      in
      Ok (Segfit.make_backend ?classes ())
  | "arena" ->
      let base_config =
        match arena_config with Some c -> c | None -> Arena.default_config
      in
      let* n_arenas =
        match List.assoc_opt "n" kvs with
        | None -> Ok base_config.Arena.n_arenas
        | Some v ->
            let* n = int_value spec ~key:"n" v in
            if n < 1 || n > 4096 then
              spec_error spec "parameter n: %d outside [1, 4096]" n
            else Ok n
      in
      let* arena_size =
        match List.assoc_opt "chunk" kvs with
        | None -> Ok base_config.Arena.arena_size
        | Some v ->
            let* n = int_value spec ~key:"chunk" v in
            if n < 64 || n > 1048576 then
              spec_error spec "parameter chunk: %d outside [64, 1048576]" n
            else Ok n
      in
      let* fallback =
        match List.assoc_opt "fallback" kvs with
        | None -> Ok None
        | Some v -> (
            match find_opt v with
            | None ->
                spec_error spec "parameter fallback: unknown backend %S (known: %s)"
                  v
                  (String.concat ", " (names ()))
            | Some e when e.name = "arena" ->
                spec_error spec "parameter fallback: must not be arena"
            | Some e -> Ok (Some (e.make ())))
      in
      Ok (Arena.backend ~config:{ Arena.n_arenas; arena_size } ?fallback ())
  | _ -> Ok (entry.make ?arena_config ())

(* The canonical form: alias resolved, parameters validated, listed in
   grammar order, defaults dropped — so ["seg:slab=16+32"] and
   ["segfit:slab=16+32"] collapse, and a spec that only restates defaults
   collapses to the plain name.  The tuner keys its dedup set on this. *)
let canonical_spec spec =
  let* entry, kvs = parse_spec spec in
  (* surface value errors exactly as backend_of_spec would *)
  let* _ = backend_of_spec spec in
  let params = spec_params_of entry.name in
  let kept =
    List.filter_map
      (fun p ->
        match List.assoc_opt p.key kvs with
        | None -> None
        | Some v ->
            (* normalize integer values; slab ladders are already canonical *)
            let v =
              match int_of_string_opt v with
              | Some n -> string_of_int n
              | None -> v
            in
            let v =
              if p.key = "fallback" then canonical_name v else v
            in
            if v = p.default then None else Some (Printf.sprintf "%s=%s" p.key v))
      params
  in
  Ok (String.concat ":" (entry.name :: kept))

let is_spec s = String.contains s ':'

let grammar_markdown () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| backend | parameter | value | default | meaning |\n\
     |---|---|---|---|---|\n";
  List.iter
    (fun e ->
      match spec_params_of e.name with
      | [] ->
          Buffer.add_string buf
            (Printf.sprintf "| `%s` | — | — | — | takes no parameters |\n" e.name)
      | params ->
          List.iter
            (fun p ->
              Buffer.add_string buf
                (Printf.sprintf "| `%s` | `%s` | `%s` | `%s` | %s |\n" e.name
                   p.key p.grammar p.default p.param_doc))
            params)
    !entries;
  Buffer.contents buf

(* -- the built-in backends --------------------------------------------------------- *)

let () =
  register ~name:"first-fit" ~aliases:[ "ff" ]
    ~doc:"first fit with a roving pointer and boundary-tag coalescing (the paper's baseline)"
    (fun ?arena_config:_ () -> (module First_fit.Backend));
  register ~name:"best-fit" ~aliases:[ "bf" ]
    ~doc:"whole-free-list best fit: tighter packing, longer searches"
    (fun ?arena_config:_ () -> (module First_fit.Best_backend));
  register ~name:"bsd" ~doc:"4.2BSD (Kingsley) power-of-two buckets, never coalesced"
    (fun ?arena_config:_ () -> (module Bsd.Backend));
  register ~name:"segfit" ~aliases:[ "seg" ]
    ~doc:"segregated fit: power-of-two size-class slabs with page recycling (modern design)"
    (fun ?arena_config:_ () -> (module Segfit.Backend));
  register ~name:"arena"
    ~doc:"lifetime-predicting arenas over a first-fit fallback (the paper's allocator)"
    (fun ?arena_config () -> Arena.backend ?config:arena_config ())
