type entry = {
  name : string;
  aliases : string list;
  doc : string;
  make : ?arena_config:Arena.config -> unit -> Backend.t;
}

let entries : entry list ref = ref []

let register ~name ?(aliases = []) ~doc make =
  if List.exists (fun e -> e.name = name) !entries then
    invalid_arg (Printf.sprintf "Registry.register: duplicate backend %S" name);
  entries := !entries @ [ { name; aliases; doc; make } ]

let all () = !entries
let names () = List.map (fun e -> e.name) !entries

let find_opt name =
  List.find_opt (fun e -> e.name = name || List.mem name e.aliases) !entries

let mem name = find_opt name <> None

let find name =
  match find_opt name with
  | Some e -> e
  | None ->
      failwith
        (Printf.sprintf "unknown allocator backend %S (known: %s)" name
           (String.concat ", " (names ())))

let backend ?arena_config name = (find name).make ?arena_config ()

let canonical_name name = (find name).name

(* -- the built-in backends --------------------------------------------------------- *)

let () =
  register ~name:"first-fit" ~aliases:[ "ff" ]
    ~doc:"first fit with a roving pointer and boundary-tag coalescing (the paper's baseline)"
    (fun ?arena_config:_ () -> (module First_fit.Backend));
  register ~name:"best-fit" ~aliases:[ "bf" ]
    ~doc:"whole-free-list best fit: tighter packing, longer searches"
    (fun ?arena_config:_ () -> (module First_fit.Best_backend));
  register ~name:"bsd" ~doc:"4.2BSD (Kingsley) power-of-two buckets, never coalesced"
    (fun ?arena_config:_ () -> (module Bsd.Backend));
  register ~name:"segfit" ~aliases:[ "seg" ]
    ~doc:"segregated fit: power-of-two size-class slabs with page recycling (modern design)"
    (fun ?arena_config:_ () -> (module Segfit.Backend));
  register ~name:"arena"
    ~doc:"lifetime-predicting arenas over a first-fit fallback (the paper's allocator)"
    (fun ?arena_config () -> Arena.backend ?config:arena_config ())
