(** Trace-driven simulation: replay a trace's allocation events through an
    allocator backend and collect {!Metrics.t} (§5.2: "we fed a trace of
    the program's allocation events and a list of short-lived sites into a
    simulator of the prediction algorithm").

    There is exactly one replay loop; which allocator runs is a
    {!Backend.t}, usually obtained from the {!Registry} by name.

    Replay is decode-once/replay-many: {!prepare} validates a trace in a
    single pass and the result can be replayed through any number of
    backends with zero re-validation and pooled per-replay scratch
    ({!Scratch}).  {!run} composes the two and memoizes validation on
    trace identity, so even naive repeated [run] calls on the same trace
    validate it only once. *)

type predictor = {
  predicted : obj:int -> size:int -> chain:int -> key:int -> bool;
      (** the short-lived-site verdict, supplied by the oracle layer
          (an offline site database or an online adaptive trainer) *)
  predict_cost : int;
      (** instructions charged per allocation for the lookup: 18 for
          length-4 chains, the amortised value for call-chain
          encryption *)
  short_threshold : int;
      (** the short-lived cutoff in allocated bytes used to classify
          each prediction's outcome at free time *)
  on_outcome : (obj:int -> lifetime:int -> survived:bool -> unit) option;
      (** the feedback path: called once per predicted object when its
          lifetime outcome is known — at its free, or (with
          [survived = true] and the end-of-trace clock) during the
          final survivor scan — in deterministic event/object order.
          [lifetime] counts bytes allocated since the object's birth.
          Stateful (online) oracles learn from this; [None] for frozen
          site databases. *)
}

type prepared
(** A trace that has passed one-time replay validation.  The trace is
    shared, not copied; it must not be mutated afterwards (the replay
    loop omits bounds checks that validation proved redundant). *)

val prepare : Lp_trace.Trace.t -> prepared
(** Validates the trace for replay in one pure pass: an alloc of an
    out-of-range or already-live object id, or a free/realloc/touch of a
    never-allocated, already-freed or out-of-range object, raises
    [Failure] naming the object id and the event index — the same errors
    {!run} raises.  Validation happens at most once per trace: results
    are memoized on physical trace identity (a bounded weak table, safe
    across domains), and each actual validation pass increments the
    ["replay.validations"] counter of {!Lp_obs.Timings} and records a
    ["prepare"] stage when timings are enabled. *)

val trace_of_prepared : prepared -> Lp_trace.Trace.t
(** The underlying trace (shared, not copied). *)

val run_prepared :
  ?cache:Cache.t -> ?predictor:predictor -> prepared -> Backend.t -> Metrics.t
(** Replays every event in order through a fresh instance of the backend,
    with no per-event validation (already done by {!prepare}) and the
    per-replay object tables drawn from the calling domain's {!Scratch}
    pool.  Objects still alive at the end of the trace are not freed
    (they hold their space, as in the real program).

    When [predictor] is given and the backend declares
    [uses_prediction = true], every allocation is billed
    [predictor.predict_cost] instructions and the backend receives the
    predictor's verdict as [~predicted]; backends that ignore prediction
    never pay for it, so their metrics do not depend on the predictor at
    all.  Predicting replays additionally track each object's birth
    clock and verdict, classify the prediction when the outcome is known
    (free, or the end-of-trace survivor scan) into the
    [predictions]/[mispredicts_*] counters of {!Metrics.t}, and feed the
    outcome to [predictor.on_outcome] — all without charging simulated
    instructions, so every other metric is unchanged by the tracking.

    Note for stateful oracles: the predictor closure itself carries any
    online state, so a fresh [predictor] value must be built per replay
    — replaying a prepared trace twice with the same stateful predictor
    would leak learned window state across runs.

    Each replay records its wall-clock span and event count under the
    ["replay/<backend>"] stage of {!Lp_obs.Timings} when timings are
    enabled.  [run_prepared] is safe to call concurrently from several
    domains: all allocator state is private to the call, scratch pools
    are per-domain, and the trace is only read.

    When [cache] is given, the replay also feeds it the trace's memory
    references at the addresses this allocator assigned: the allocator's
    header accesses at alloc/free, and each recorded {!Lp_trace.Event.t}
    [Touch] as successive 16-byte-strided references within the object.
    Comparing the resulting miss rates across allocators quantifies the
    locality claim of the paper's introduction. *)

val run :
  ?cache:Cache.t -> ?predictor:predictor -> Lp_trace.Trace.t -> Backend.t -> Metrics.t
(** [run_prepared] composed with {!prepare}: identical metrics and the
    same validation errors, with validation skipped when the same trace
    was already prepared (or run) before. *)

val run_named :
  ?cache:Cache.t ->
  ?predictor:predictor ->
  ?arena_config:Arena.config ->
  Lp_trace.Trace.t ->
  string ->
  Metrics.t
(** [run] composed with a {!Registry} lookup (aliases accepted).
    @raise Failure on an unknown backend name. *)

val run_source :
  ?cache:Cache.t ->
  ?predictor:predictor ->
  ?decode_ahead:bool ->
  Lp_trace.Source.t ->
  Backend.t ->
  Metrics.t
(** Single-pass streaming replay: pulls each event from the source once
    and never materializes the trace, so peak memory is bounded by the
    live-object population.  Metrics are byte-identical to [run] on the
    equivalent materialized trace (enforced by the equivalence test
    suite).  Validation stays inline (a stream has no second pass) and is
    the same except that out-of-range object ids above the final object
    count cannot be detected mid-stream (the count is only known at
    exhaustion); such events surface as never-allocated frees or pass
    through as touches.  The source is consumed; a fresh source is
    needed per replay.

    [decode_ahead] (default false) pipelines the replay: decoding moves
    to a second domain running ahead of the simulation through
    {!Lp_trace.Source.decode_ahead}, overlapping the two stages.  The
    replay per heap stays sequential — metrics are identical either
    way. *)
