(** Trace-driven simulation: replay a trace's allocation events through an
    allocator backend and collect {!Metrics.t} (§5.2: "we fed a trace of
    the program's allocation events and a list of short-lived sites into a
    simulator of the prediction algorithm").

    There is exactly one replay loop; which allocator runs is a
    {!Backend.t}, usually obtained from the {!Registry} by name. *)

type predictor = {
  predicted : obj:int -> size:int -> chain:int -> key:int -> bool;
      (** the short-lived-site database lookup, supplied by the
          prediction layer *)
  predict_cost : int;
      (** instructions charged per allocation for the lookup: 18 for
          length-4 chains, the amortised value for call-chain
          encryption *)
}

val run :
  ?cache:Cache.t -> ?predictor:predictor -> Lp_trace.Trace.t -> Backend.t -> Metrics.t
(** Replays every event in order through a fresh instance of the backend.
    Objects still alive at the end of the trace are not freed (they hold
    their space, as in the real program).

    When [predictor] is given and the backend declares
    [uses_prediction = true], every allocation is billed
    [predictor.predict_cost] instructions and the backend receives the
    predictor's verdict as [~predicted]; backends that ignore prediction
    never pay for it, so their metrics do not depend on the predictor at
    all.

    Events are validated as they are replayed: an alloc of an out-of-range
    or already-live object id, or a free/touch of a never-allocated,
    already-freed or out-of-range object, raises [Failure] naming the
    object id and the event index, instead of crashing with an unrelated
    error deep inside the allocator.

    Each replay records its wall-clock span and event count under the
    ["replay/<backend>"] stage of {!Lp_obs.Timings} when timings are
    enabled.  [run] is safe to call concurrently from several domains:
    all allocator state is private to the call, and the trace is only
    read.

    When [cache] is given, the replay also feeds it the trace's memory
    references at the addresses this allocator assigned: the allocator's
    header accesses at alloc/free, and each recorded {!Lp_trace.Event.t}
    [Touch] as successive 16-byte-strided references within the object.
    Comparing the resulting miss rates across allocators quantifies the
    locality claim of the paper's introduction. *)

val run_named :
  ?cache:Cache.t ->
  ?predictor:predictor ->
  ?arena_config:Arena.config ->
  Lp_trace.Trace.t ->
  string ->
  Metrics.t
(** [run] composed with a {!Registry} lookup (aliases accepted).
    @raise Failure on an unknown backend name. *)

val run_source :
  ?cache:Cache.t ->
  ?predictor:predictor ->
  ?decode_ahead:bool ->
  Lp_trace.Source.t ->
  Backend.t ->
  Metrics.t
(** Single-pass streaming replay: pulls each event from the source once
    and never materializes the trace, so peak memory is bounded by the
    live-object population.  Metrics are byte-identical to [run] on the
    equivalent materialized trace (enforced by the equivalence test
    suite).  Validation is the same except that out-of-range object ids
    above the final object count cannot be detected mid-stream (the
    count is only known at exhaustion); such events surface as
    never-allocated frees or pass through as touches.  The source is
    consumed; a fresh source is needed per replay.

    [decode_ahead] (default false) pipelines the replay: decoding moves
    to a second domain running ahead of the simulation through
    {!Lp_trace.Source.decode_ahead}, overlapping the two stages.  The
    replay per heap stays sequential — metrics are identical either
    way. *)
