type config = { nursery_bytes : int; copy_cost_per_byte : int }

let default_config = { nursery_bytes = 131072; copy_cost_per_byte = 2 }

type stats = {
  allocs : int;
  pretenured : int;
  minor_gcs : int;
  copied_bytes : int;
  copied_objects : int;
  promoted_bytes : int;
  tenured_garbage_bytes : int;
  copy_instr : int;
  max_tenured_live : int;
}

type space = Nursery | Tenured

let run ?(config = default_config) ~pretenure (trace : Lp_trace.Trace.t) : stats =
  let space_of = Array.make trace.n_objects Nursery in
  let size_of = Array.make trace.n_objects 0 in
  let dead = Array.make trace.n_objects false in
  (* objects currently in the nursery, in allocation order *)
  let nursery : int list ref = ref [] in
  let nursery_used = ref 0 in
  let allocs = ref 0 in
  let pretenured = ref 0 in
  let minor_gcs = ref 0 in
  let copied_bytes = ref 0 in
  let copied_objects = ref 0 in
  let promoted_bytes = ref 0 in
  let tenured_garbage = ref 0 in
  let tenured_live = ref 0 in
  let max_tenured_live = ref 0 in
  let tenure obj size =
    space_of.(obj) <- Tenured;
    promoted_bytes := !promoted_bytes + size;
    tenured_live := !tenured_live + size;
    if !tenured_live > !max_tenured_live then max_tenured_live := !tenured_live
  in
  let minor_gc () =
    incr minor_gcs;
    List.iter
      (fun obj ->
        if not dead.(obj) then begin
          (* survivor: copy and promote *)
          copied_bytes := !copied_bytes + size_of.(obj);
          incr copied_objects;
          tenure obj size_of.(obj)
        end)
      !nursery;
    nursery := [];
    nursery_used := 0
  in
  Array.iter
    (function
      | Lp_trace.Event.Alloc { obj; size; chain; key; _ } ->
          incr allocs;
          size_of.(obj) <- size;
          if pretenure ~obj ~size ~chain ~key || size > config.nursery_bytes then begin
            incr pretenured;
            tenure obj size
          end
          else begin
            if !nursery_used + size > config.nursery_bytes then minor_gc ();
            space_of.(obj) <- Nursery;
            nursery := obj :: !nursery;
            nursery_used := !nursery_used + size
          end
      | Lp_trace.Event.Free { obj; _ } -> (
          dead.(obj) <- true;
          match space_of.(obj) with
          | Tenured ->
              tenured_garbage := !tenured_garbage + size_of.(obj);
              tenured_live := !tenured_live - size_of.(obj)
          | Nursery -> () (* reclaimed for free at the next minor gc *))
      | Lp_trace.Event.Realloc { obj; new_size; _ } -> (
          (* a resize keeps the object in its space; only the occupancy
             accounting moves by the size delta *)
          let delta = new_size - size_of.(obj) in
          size_of.(obj) <- new_size;
          match space_of.(obj) with
          | Tenured ->
              tenured_live := !tenured_live + delta;
              if !tenured_live > !max_tenured_live then
                max_tenured_live := !tenured_live
          | Nursery ->
              if not dead.(obj) then begin
                if !nursery_used + delta > config.nursery_bytes then minor_gc ();
                (* that collection may have just promoted it (at the new
                   size); only a still-nursery object occupies nursery space *)
                if space_of.(obj) = Nursery then
                  nursery_used := !nursery_used + delta
              end)
      | Lp_trace.Event.Touch _ -> ())
    trace.events;
  {
    allocs = !allocs;
    pretenured = !pretenured;
    minor_gcs = !minor_gcs;
    copied_bytes = !copied_bytes;
    copied_objects = !copied_objects;
    promoted_bytes = !promoted_bytes;
    tenured_garbage_bytes = !tenured_garbage;
    copy_instr = config.copy_cost_per_byte * !copied_bytes;
    max_tenured_live = !max_tenured_live;
  }
