(** A minimal dependency-free JSON reader/writer.

    Just enough for the machine-readable files this repo emits — metrics
    JSON, [BENCH_*.json] benchmark reports — and for validating them
    structurally in tests and in [lpbench --validate].  Numbers are floats,
    strings are assumed UTF-8, and object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing bytes. *)

val to_string : t -> string
(** Compact one-line rendering. *)

val to_pretty_string : t -> string
(** Two-space-indented rendering, ending in a newline — the format of the
    committed [BENCH_*.json] files (diff-friendly). *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val member_exn : string -> t -> t
(** @raise Parse_error when the member is absent. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
