(* A minimal JSON reader/writer: enough to build the machine-readable
   outputs this repo emits (metrics, BENCH files, lint reports) and to
   validate them structurally without an external dependency.  Numbers are
   kept as floats; object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Number f -> Buffer.add_string b (number_to_string f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 4096 in
  write b t;
  Buffer.contents b

(* -- pretty printing (2-space indent, stable order) ---------------------------- *)

let rec pretty b indent = function
  | List (_ :: _ as xs) ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (String.make (indent + 2) ' ');
          pretty b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b ']'
  | Obj (_ :: _ as kvs) ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (String.make (indent + 2) ' ');
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b '}'
  | other -> write b other

let to_pretty_string t =
  let b = Buffer.create 4096 in
  pretty b 0 t;
  Buffer.add_char b '\n';
  Buffer.contents b

(* -- parsing ------------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* decode as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then error c "expected a number";
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> Number f
  | None -> error c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let member () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members (kv :: acc)
          | Some '}' -> advance c; Obj (List.rev (kv :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        members []
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing bytes after JSON value";
  v

(* -- accessors ----------------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let member_exn key j =
  match member key j with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" key))

let to_list = function List xs -> Some xs | _ -> None
let to_float = function Number f -> Some f | _ -> None
let to_str = function String s -> Some s | _ -> None
