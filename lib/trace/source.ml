type counters = {
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
}

type t = {
  program : string;
  input : string;
  n_objects_hint : int option;
  n_events_hint : int option;
  funcs : unit -> Lp_callchain.Func.table;
  chain : int -> Lp_callchain.Chain.t;
  n_chains : unit -> int;
  tag : int -> string;
  n_tags : unit -> int;
  counters_now : unit -> counters option;
  refs_of : int -> int;
  n_objects_now : unit -> int;
  next_ev : unit -> Event.t option;
  mutable streamed : int;
  mutable finished : bool;
}

let next t =
  match t.next_ev () with
  | Some _ as ev ->
      t.streamed <- t.streamed + 1;
      ev
  | None ->
      if not t.finished then begin
        t.finished <- true;
        Lp_obs.Timings.count "trace.events_streamed" t.streamed;
        Lp_obs.Timings.note_peak_heap ()
      end;
      None

let iter f t =
  let rec go () =
    match next t with
    | Some e ->
        f e;
        go ()
    | None -> ()
  in
  go ()

let fold f acc t =
  let rec go acc =
    match next t with Some e -> go (f acc e) | None -> acc
  in
  go acc

let events_streamed t = t.streamed

let counters t =
  match t.counters_now () with
  | Some c -> c
  | None ->
      invalid_arg
        "Source.counters: counters not yet known (drain the source first)"

let n_objects t =
  if not t.finished then
    invalid_arg "Source.n_objects: source not yet drained";
  t.n_objects_now ()

(* -- in-memory trace ----------------------------------------------------------- *)

let of_trace (tr : Trace.t) =
  let pos = ref 0 in
  let n = Array.length tr.Trace.events in
  {
    program = tr.Trace.program;
    input = tr.Trace.input;
    n_objects_hint = Some tr.Trace.n_objects;
    n_events_hint = Some n;
    funcs = (fun () -> tr.Trace.funcs);
    chain = (fun id -> tr.Trace.chains.(id));
    n_chains = (fun () -> Array.length tr.Trace.chains);
    tag = (fun id -> tr.Trace.tags.(id));
    n_tags = (fun () -> Array.length tr.Trace.tags);
    counters_now =
      (fun () ->
        Some
          {
            instructions = tr.Trace.instructions;
            calls = tr.Trace.calls;
            heap_refs = tr.Trace.heap_refs;
            total_refs = tr.Trace.total_refs;
          });
    refs_of = (fun obj -> tr.Trace.obj_refs.(obj));
    n_objects_now = (fun () -> tr.Trace.n_objects);
    next_ev =
      (fun () ->
        if !pos >= n then None
        else begin
          let e = tr.Trace.events.(!pos) in
          incr pos;
          Some e
        end);
    streamed = 0;
    finished = false;
  }

(* -- binary decoder ------------------------------------------------------------ *)

let of_decoder d =
  let h = Binio.header d in
  {
    program = h.Binio.program;
    input = h.Binio.input;
    n_objects_hint = Some h.Binio.n_objects;
    n_events_hint = Some h.Binio.n_events;
    funcs = (fun () -> h.Binio.funcs);
    chain = (fun id -> h.Binio.chains.(id));
    n_chains = (fun () -> Array.length h.Binio.chains);
    tag = (fun id -> h.Binio.tags.(id));
    n_tags = (fun () -> Array.length h.Binio.tags);
    counters_now =
      (fun () ->
        Some
          {
            instructions = h.Binio.instructions;
            calls = h.Binio.calls;
            heap_refs = h.Binio.heap_refs;
            total_refs = h.Binio.total_refs;
          });
    refs_of = (fun obj -> h.Binio.obj_refs.(obj));
    n_objects_now = (fun () -> h.Binio.n_objects);
    next_ev = (fun () -> Binio.decode_next d);
    streamed = 0;
    finished = false;
  }

(* -- text stream --------------------------------------------------------------- *)

let of_text_stream (s : Textio.stream) =
  {
    program = s.Textio.s_program;
    input = s.Textio.s_input;
    n_objects_hint = None;
    n_events_hint = None;
    funcs = (fun () -> s.Textio.s_funcs);
    chain = s.Textio.s_chain;
    n_chains = s.Textio.s_n_chains;
    tag = s.Textio.s_tag;
    n_tags = s.Textio.s_n_tags;
    counters_now =
      (fun () ->
        let instructions, calls, heap_refs, total_refs =
          s.Textio.s_counters ()
        in
        Some { instructions; calls; heap_refs; total_refs });
    refs_of = s.Textio.s_refs;
    n_objects_now = s.Textio.s_n_objects;
    next_ev = s.Textio.s_next;
    streamed = 0;
    finished = false;
  }

let lines_of_string s =
  let pos = ref 0 in
  let len = String.length s in
  fun () ->
    if !pos >= len then None
    else begin
      let stop =
        match String.index_from_opt s !pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line
    end

let of_string ?name s =
  match Io.detect s with
  | Io.Binary -> of_decoder (Binio.decoder ?name (Binio.big_of_string s))
  | Io.Text -> of_text_stream (Textio.stream ?name (lines_of_string s))

(* -- file ---------------------------------------------------------------------- *)

let of_file path =
  match Io.map_file path with
  | Some buf
    when Bigarray.Array1.dim buf >= 4
         && String.equal (String.init 4 (Bigarray.Array1.get buf)) Binio.magic
    ->
      Lp_obs.Timings.count "trace.bytes_read" (Bigarray.Array1.dim buf);
      of_decoder (Binio.decoder ~name:path buf)
  | _ -> (
      match Io.format_for_path path with
      | Io.Binary ->
          (* an .lpt we could not mmap: read it in and stream the copy *)
          let s = In_channel.with_open_bin path In_channel.input_all in
          Lp_obs.Timings.count "trace.bytes_read" (String.length s);
          of_string ~name:path s
      | Io.Text ->
          let ic = In_channel.open_bin path in
          let closed = ref false in
          let bytes = ref 0 in
          let close () =
            if not !closed then begin
              closed := true;
              In_channel.close ic;
              Lp_obs.Timings.count "trace.bytes_read" !bytes
            end
          in
          let next_line () =
            if !closed then None
            else
              match In_channel.input_line ic with
              | Some l ->
                  bytes := !bytes + String.length l + 1;
                  Some l
              | None ->
                  close ();
                  None
          in
          let src =
            try of_text_stream (Textio.stream ~name:path next_line)
            with e ->
              close ();
              raise e
          in
          let inner = src.next_ev in
          {
            src with
            next_ev =
              (fun () ->
                match inner () with
                | Some _ as ev -> ev
                | None ->
                    close ();
                    None);
          })

(* -- workload generator -------------------------------------------------------- *)

type _ Effect.t += Yield : Event.t -> unit Effect.t

let of_generator ~program ~input produce =
  let summary : Trace.t option ref = ref None in
  let resume :
      (unit, Event.t option) Effect.Deep.continuation option ref =
    ref None
  in
  let sink = Trace.Builder.sink (fun e -> Effect.perform (Yield e)) in
  let start () =
    Effect.Deep.match_with
      (fun () -> produce ~sink)
      ()
      {
        Effect.Deep.retc =
          (fun tr ->
            summary := Some tr;
            None);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield e ->
                Some
                  (fun (k : (a, Event.t option) Effect.Deep.continuation) ->
                    resume := Some k;
                    Some e)
            | _ -> None);
      }
  in
  let started = ref false in
  let pending = ref None in
  (* The generator runs lazily: [ensure_started] advances it to its first
     event so the builder (and hence the interning view) exists before
     any table lookup.  Each continuation is taken out of [resume] before
     being continued — one-shot by construction. *)
  let ensure_started () =
    if not !started then begin
      started := true;
      pending := start ()
    end
  in
  let view () =
    ensure_started ();
    match sink.Trace.Builder.view with
    | Some v -> v
    | None -> invalid_arg "Source.of_generator: generator never built a trace"
  in
  let next_ev () =
    ensure_started ();
    match !pending with
    | Some _ as ev ->
        pending := None;
        ev
    | None -> (
        match !resume with
        | None -> None
        | Some k ->
            resume := None;
            Effect.Deep.continue k ())
  in
  {
    program;
    input;
    n_objects_hint = None;
    n_events_hint = None;
    funcs = (fun () -> (view ()).Trace.Builder.view_funcs);
    chain = (fun id -> (view ()).Trace.Builder.chain_of id);
    n_chains = (fun () -> (view ()).Trace.Builder.n_chains ());
    tag = (fun id -> (view ()).Trace.Builder.tag_of id);
    n_tags = (fun () -> (view ()).Trace.Builder.n_tags ());
    counters_now =
      (fun () ->
        Option.map
          (fun (tr : Trace.t) ->
            {
              instructions = tr.Trace.instructions;
              calls = tr.Trace.calls;
              heap_refs = tr.Trace.heap_refs;
              total_refs = tr.Trace.total_refs;
            })
          !summary);
    refs_of = (fun obj -> (view ()).Trace.Builder.refs_of obj);
    n_objects_now = (fun () -> (view ()).Trace.Builder.n_objects_so_far ());
    next_ev;
    streamed = 0;
    finished = false;
  }
