type counters = {
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
}

type t = {
  program : string;
  input : string;
  n_objects_hint : int option;
  n_events_hint : int option;
  funcs : unit -> Lp_callchain.Func.table;
  chain : int -> Lp_callchain.Chain.t;
  n_chains : unit -> int;
  tag : int -> string;
  n_tags : unit -> int;
  counters_now : unit -> counters option;
  refs_of : int -> int;
  n_objects_now : unit -> int;
  next_ev : unit -> Event.t option;
  seek_to : (int -> unit) option;
      (** reposition so the next event yielded is the given index *)
  sub_range : (first:int -> count:int -> t) option;
  mutable streamed : int;
  mutable finished : bool;
}

let next t =
  match t.next_ev () with
  | Some _ as ev ->
      t.streamed <- t.streamed + 1;
      ev
  | None ->
      if not t.finished then begin
        t.finished <- true;
        Lp_obs.Timings.count "trace.events_streamed" t.streamed;
        Lp_obs.Timings.note_peak_heap ()
      end;
      None

let iter f t =
  let rec go () =
    match next t with
    | Some e ->
        f e;
        go ()
    | None -> ()
  in
  go ()

let fold f acc t =
  let rec go acc =
    match next t with Some e -> go (f acc e) | None -> acc
  in
  go acc

let events_streamed t = t.streamed

let counters t =
  match t.counters_now () with
  | Some c -> c
  | None ->
      invalid_arg
        "Source.counters: counters not yet known (drain the source first)"

let n_objects t =
  if not t.finished then
    invalid_arg "Source.n_objects: source not yet drained";
  t.n_objects_now ()

let not_seekable what =
  invalid_arg
    (Printf.sprintf
       "Source.%s: source is not seekable (in-memory traces and sharded .lpt \
        v3 files only)"
       what)

let seek t i = match t.seek_to with Some f -> f i | None -> not_seekable "seek"

let sub t ~first ~count =
  match t.sub_range with
  | Some f -> f ~first ~count
  | None -> not_seekable "sub"

(* -- in-memory trace ----------------------------------------------------------- *)

let rec of_trace_range (tr : Trace.t) ~base ~len =
  let pos = ref 0 in
  {
    program = tr.Trace.program;
    input = tr.Trace.input;
    n_objects_hint = Some tr.Trace.n_objects;
    n_events_hint = Some len;
    funcs = (fun () -> tr.Trace.funcs);
    chain = (fun id -> tr.Trace.chains.(id));
    n_chains = (fun () -> Array.length tr.Trace.chains);
    tag = (fun id -> tr.Trace.tags.(id));
    n_tags = (fun () -> Array.length tr.Trace.tags);
    counters_now =
      (fun () ->
        Some
          {
            instructions = tr.Trace.instructions;
            calls = tr.Trace.calls;
            heap_refs = tr.Trace.heap_refs;
            total_refs = tr.Trace.total_refs;
          });
    refs_of = (fun obj -> tr.Trace.obj_refs.(obj));
    n_objects_now = (fun () -> tr.Trace.n_objects);
    next_ev =
      (fun () ->
        if !pos >= len then None
        else begin
          let e = tr.Trace.events.(base + !pos) in
          incr pos;
          Some e
        end);
    seek_to =
      Some
        (fun i ->
          if i < 0 || i > len then
            invalid_arg (Printf.sprintf "Source.seek: index %d out of range" i);
          pos := i);
    sub_range =
      Some
        (fun ~first ~count ->
          if first < 0 || count < 0 || first + count > len then
            invalid_arg
              (Printf.sprintf "Source.sub: range %d+%d out of range" first count);
          of_trace_range tr ~base:(base + first) ~len:count);
    streamed = 0;
    finished = false;
  }

let of_trace (tr : Trace.t) =
  of_trace_range tr ~base:0 ~len:(Array.length tr.Trace.events)

(* -- binary decoder ------------------------------------------------------------ *)

let of_decoder d =
  let h = Binio.header d in
  {
    program = h.Binio.program;
    input = h.Binio.input;
    n_objects_hint = Some h.Binio.n_objects;
    n_events_hint = Some h.Binio.n_events;
    funcs = (fun () -> Binio.decoder_funcs d);
    chain = (fun id -> Binio.decoder_chain d id);
    n_chains = (fun () -> Binio.decoder_n_chains d);
    tag = (fun id -> Binio.decoder_tag d id);
    n_tags = (fun () -> Binio.decoder_n_tags d);
    counters_now =
      (fun () ->
        Some
          {
            instructions = h.Binio.instructions;
            calls = h.Binio.calls;
            heap_refs = h.Binio.heap_refs;
            total_refs = h.Binio.total_refs;
          });
    refs_of = (fun obj -> h.Binio.obj_refs.(obj));
    n_objects_now = (fun () -> h.Binio.n_objects);
    next_ev = (fun () -> Binio.decode_next d);
    seek_to = None;
    sub_range = None;
    streamed = 0;
    finished = false;
  }

(* -- seekable index over a sharded (v3) buffer --------------------------------- *)

(* The window [base, base+len) of an indexed trace.  Seeking opens a
   fresh range decoder at the chunk containing the target event and
   discards into it — at most one chunk's worth of decode per seek. *)
let rec of_indexed_window (ix : Binio.indexed) ~base ~len =
  let h = Binio.indexed_header ix in
  let chunks = Binio.indexed_chunks ix in
  let n_chunks = Array.length chunks in
  let chunk_of_event i =
    (* greatest chunk whose first event is <= i *)
    let lo = ref 0 and hi = ref (n_chunks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if chunks.(mid).Binio.ch_first_event <= i then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let open_at i =
    let c = chunk_of_event i in
    let d = Binio.range_decoder ix ~first:c ~count:(n_chunks - c) in
    for _ = 1 to i - chunks.(c).Binio.ch_first_event do
      ignore (Binio.decode_next d)
    done;
    d
  in
  let d = ref (open_at base) in
  let remaining = ref len in
  {
    program = h.Binio.program;
    input = h.Binio.input;
    n_objects_hint = Some h.Binio.n_objects;
    n_events_hint = Some len;
    funcs = (fun () -> Binio.indexed_funcs ix);
    chain = (fun id -> Binio.indexed_chain ix id);
    n_chains = (fun () -> Binio.indexed_n_chains ix);
    tag = (fun id -> Binio.indexed_tag ix id);
    n_tags = (fun () -> Binio.indexed_n_tags ix);
    counters_now =
      (fun () ->
        Some
          {
            instructions = h.Binio.instructions;
            calls = h.Binio.calls;
            heap_refs = h.Binio.heap_refs;
            total_refs = h.Binio.total_refs;
          });
    refs_of = (fun obj -> h.Binio.obj_refs.(obj));
    n_objects_now = (fun () -> h.Binio.n_objects);
    next_ev =
      (fun () ->
        if !remaining <= 0 then None
        else
          match Binio.decode_next !d with
          | Some _ as ev ->
              decr remaining;
              ev
          | None -> None);
    seek_to =
      Some
        (fun i ->
          if i < 0 || i > len then
            invalid_arg (Printf.sprintf "Source.seek: index %d out of range" i);
          d := open_at (base + i);
          remaining := len - i);
    sub_range =
      Some
        (fun ~first ~count ->
          if first < 0 || count < 0 || first + count > len then
            invalid_arg
              (Printf.sprintf "Source.sub: range %d+%d out of range" first count);
          of_indexed_window ix ~base:(base + first) ~len:count);
    streamed = 0;
    finished = false;
  }

let of_indexed ix =
  of_indexed_window ix ~base:0
    ~len:(Binio.indexed_header ix).Binio.n_events

(* -- text stream --------------------------------------------------------------- *)

let of_text_stream (s : Textio.stream) =
  {
    program = s.Textio.s_program;
    input = s.Textio.s_input;
    n_objects_hint = None;
    n_events_hint = None;
    funcs = (fun () -> s.Textio.s_funcs);
    chain = s.Textio.s_chain;
    n_chains = s.Textio.s_n_chains;
    tag = s.Textio.s_tag;
    n_tags = s.Textio.s_n_tags;
    counters_now =
      (fun () ->
        let instructions, calls, heap_refs, total_refs =
          s.Textio.s_counters ()
        in
        Some { instructions; calls; heap_refs; total_refs });
    refs_of = s.Textio.s_refs;
    n_objects_now = s.Textio.s_n_objects;
    next_ev = s.Textio.s_next;
    seek_to = None;
    sub_range = None;
    streamed = 0;
    finished = false;
  }

let lines_of_string s =
  let pos = ref 0 in
  let len = String.length s in
  fun () ->
    if !pos >= len then None
    else begin
      let stop =
        match String.index_from_opt s !pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some line
    end

let of_string ?name s =
  match Io.detect s with
  | Io.Binary -> of_decoder (Binio.decoder ?name (Binio.big_of_string s))
  | Io.Text -> of_text_stream (Textio.stream ?name (lines_of_string s))

(* -- file ---------------------------------------------------------------------- *)

let of_file path =
  match Io.map_file path with
  | Some buf
    when Bigarray.Array1.dim buf >= 4
         && String.equal (String.init 4 (Bigarray.Array1.get buf)) Binio.magic
    ->
      Lp_obs.Timings.count "trace.bytes_read" (Bigarray.Array1.dim buf);
      (* a sharded (v3) map gets the seekable face; v1/v2 stream linearly *)
      if
        Bigarray.Array1.dim buf >= 5
        && Char.code (Bigarray.Array1.get buf 4) = Binio.version_sharded
      then of_indexed (Binio.index ~name:path buf)
      else of_decoder (Binio.decoder ~name:path buf)
  | _ -> (
      match Io.format_for_path path with
      | Io.Binary ->
          (* an .lpt we could not mmap: read it in and stream the copy *)
          let s = In_channel.with_open_bin path In_channel.input_all in
          Lp_obs.Timings.count "trace.bytes_read" (String.length s);
          of_string ~name:path s
      | Io.Text ->
          let ic = In_channel.open_bin path in
          let closed = ref false in
          let bytes = ref 0 in
          let close () =
            if not !closed then begin
              closed := true;
              In_channel.close ic;
              Lp_obs.Timings.count "trace.bytes_read" !bytes
            end
          in
          let next_line () =
            if !closed then None
            else
              match In_channel.input_line ic with
              | Some l ->
                  bytes := !bytes + String.length l + 1;
                  Some l
              | None ->
                  close ();
                  None
          in
          let src =
            try of_text_stream (Textio.stream ~name:path next_line)
            with e ->
              close ();
              raise e
          in
          let inner = src.next_ev in
          {
            src with
            next_ev =
              (fun () ->
                match inner () with
                | Some _ as ev -> ev
                | None ->
                    close ();
                    None);
          })

(* -- workload generator -------------------------------------------------------- *)

type _ Effect.t += Yield : Event.t -> unit Effect.t

let of_generator ~program ~input produce =
  let summary : Trace.t option ref = ref None in
  let resume :
      (unit, Event.t option) Effect.Deep.continuation option ref =
    ref None
  in
  let sink = Trace.Builder.sink (fun e -> Effect.perform (Yield e)) in
  let start () =
    Effect.Deep.match_with
      (fun () -> produce ~sink)
      ()
      {
        Effect.Deep.retc =
          (fun tr ->
            summary := Some tr;
            None);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield e ->
                Some
                  (fun (k : (a, Event.t option) Effect.Deep.continuation) ->
                    resume := Some k;
                    Some e)
            | _ -> None);
      }
  in
  let started = ref false in
  let pending = ref None in
  (* The generator runs lazily: [ensure_started] advances it to its first
     event so the builder (and hence the interning view) exists before
     any table lookup.  Each continuation is taken out of [resume] before
     being continued — one-shot by construction. *)
  let ensure_started () =
    if not !started then begin
      started := true;
      pending := start ()
    end
  in
  let view () =
    ensure_started ();
    match sink.Trace.Builder.view with
    | Some v -> v
    | None -> invalid_arg "Source.of_generator: generator never built a trace"
  in
  let next_ev () =
    ensure_started ();
    match !pending with
    | Some _ as ev ->
        pending := None;
        ev
    | None -> (
        match !resume with
        | None -> None
        | Some k ->
            resume := None;
            Effect.Deep.continue k ())
  in
  {
    program;
    input;
    n_objects_hint = None;
    n_events_hint = None;
    funcs = (fun () -> (view ()).Trace.Builder.view_funcs);
    chain = (fun id -> (view ()).Trace.Builder.chain_of id);
    n_chains = (fun () -> (view ()).Trace.Builder.n_chains ());
    tag = (fun id -> (view ()).Trace.Builder.tag_of id);
    n_tags = (fun () -> (view ()).Trace.Builder.n_tags ());
    counters_now =
      (fun () ->
        Option.map
          (fun (tr : Trace.t) ->
            {
              instructions = tr.Trace.instructions;
              calls = tr.Trace.calls;
              heap_refs = tr.Trace.heap_refs;
              total_refs = tr.Trace.total_refs;
            })
          !summary);
    refs_of = (fun obj -> (view ()).Trace.Builder.refs_of obj);
    n_objects_now = (fun () -> (view ()).Trace.Builder.n_objects_so_far ());
    next_ev;
    seek_to = None;
    sub_range = None;
    streamed = 0;
    finished = false;
  }

(* -- decode-ahead pipeline ----------------------------------------------------- *)

type ahead_item =
  | Batch of Event.t array
  | Ahead_done
  | Ahead_failed of exn * Printexc.raw_backtrace

(* A second domain drains [inner] into bounded batches; the returned
   source yields the identical event sequence.  Table lookups delegate
   to [inner], which is safe for ids carried by already-yielded events:
   the producer appends table entries before enqueuing the batch, and
   the queue's mutex gives the consumer a happens-before on them.
   Intended for file-backed sources (generator sources run their
   producer effect on the pipeline domain, so their view must not be
   consulted concurrently — wrap those only if lookups happen after
   exhaustion).  The returned source must be drained (or the error it
   raises reached): abandoning it mid-stream leaves the pipeline domain
   blocked on the full queue. *)
let decode_ahead ?(batch = 4096) ?(slots = 8) (inner : t) : t =
  if batch < 1 || slots < 1 then
    invalid_arg "Source.decode_ahead: batch and slots must be positive";
  let m = Mutex.create () in
  let nonempty = Condition.create () in
  let nonfull = Condition.create () in
  let q : ahead_item Queue.t = Queue.create () in
  let push item =
    Mutex.lock m;
    while Queue.length q >= slots do
      Condition.wait nonfull m
    done;
    Queue.push item q;
    Condition.signal nonempty;
    Mutex.unlock m
  in
  let pop () =
    Mutex.lock m;
    while Queue.is_empty q do
      Condition.wait nonempty m
    done;
    let item = Queue.pop q in
    Condition.signal nonfull;
    Mutex.unlock m;
    item
  in
  let producer () =
    let dummy = Event.Free { obj = -1; size = -1 } in
    let buf = Array.make batch dummy in
    let n = ref 0 in
    let flush () =
      if !n > 0 then begin
        let arr = Array.sub buf 0 !n in
        n := 0;
        push (Batch arr)
      end
    in
    let rec go () =
      match inner.next_ev () with
      | Some e ->
          buf.(!n) <- e;
          incr n;
          if !n = batch then flush ();
          go ()
      | None ->
          flush ();
          push Ahead_done
    in
    match go () with
    | () -> ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (* events decoded before the failure still precede it in order *)
        flush ();
        push (Ahead_failed (e, bt))
  in
  let dom = Domain.spawn producer in
  let joined = ref false in
  let join () =
    if not !joined then begin
      joined := true;
      Domain.join dom
    end
  in
  let cur = ref [||] in
  let pos = ref 0 in
  let ended = ref false in
  let rec next_ev () =
    if !ended then None
    else if !pos < Array.length !cur then begin
      let e = (!cur).(!pos) in
      incr pos;
      Some e
    end
    else
      match pop () with
      | Batch arr ->
          cur := arr;
          pos := 0;
          next_ev ()
      | Ahead_done ->
          ended := true;
          join ();
          None
      | Ahead_failed (e, bt) ->
          ended := true;
          join ();
          Printexc.raise_with_backtrace e bt
  in
  (* seeking would desynchronize the pipeline, so the wrapper is linear *)
  { inner with next_ev; seek_to = None; sub_range = None;
    streamed = 0; finished = false }
