(** Complete allocation traces.

    A trace carries the event stream plus the execution-wide counters the
    paper's Table 2 reports: simulated instructions, function calls, and
    heap / total memory-reference counts.  Per-object heap-reference counts
    support Table 6's "New Ref" column (fraction of heap references made to
    predicted-short-lived objects). *)

type t = {
  program : string;  (** workload name, e.g. ["gawk"] *)
  input : string;  (** input-set name, e.g. ["dict-large"] *)
  events : Event.t array;  (** in program order *)
  chains : Lp_callchain.Chain.t array;  (** interned raw chains *)
  funcs : Lp_callchain.Func.table;  (** function names for this run *)
  n_objects : int;  (** objects are numbered [0 .. n_objects-1] *)
  instructions : int;  (** simulated instructions executed *)
  calls : int;  (** function calls *)
  heap_refs : int;  (** references to heap objects *)
  total_refs : int;  (** all memory references (heap + stack/global) *)
  obj_refs : int array;  (** per-object heap references *)
  tags : string array;  (** interned type-tag names; [Alloc.tag] indexes here *)
}

module Builder : sig
  (** Incremental construction, used by the instrumented runtime.

      A builder normally materializes the full event array ({!finish}
      returns the complete trace).  Attaching a {!sink} switches it to
      streaming mode: every event is handed to the sink as soon as it is
      final (touch-merging resolved) and is not retained, so a workload
      can drive a consumer directly with bounded memory.  The event
      sequence a sink observes is byte-identical to the [events] array a
      sink-less builder would have produced. *)

  type trace := t
  type t

  type view = {
    view_funcs : Lp_callchain.Func.table;
    chain_of : int -> Lp_callchain.Chain.t;  (** resolve an interned chain id *)
    n_chains : unit -> int;  (** chains interned so far *)
    tag_of : int -> string;  (** resolve an interned tag id *)
    n_tags : unit -> int;  (** tags interned so far *)
    refs_of : int -> int;  (** per-object heap refs recorded so far *)
    n_objects_so_far : unit -> int;
  }
  (** Live read access to the builder's incrementally-interned tables.
      Ids are dense: an id referenced by an already-emitted event is
      always resolvable. *)

  type sink = { emit : Event.t -> unit; mutable view : view option }
  (** Where a streaming builder sends events.  [view] is populated by
      {!create} before the first [emit]. *)

  val sink : (Event.t -> unit) -> sink

  val create :
    ?sink:sink -> program:string -> input:string -> funcs:Lp_callchain.Func.table -> unit -> t

  val intern_chain : t -> Lp_callchain.Chain.t -> int
  (** Intern a raw stack snapshot; equal chains share one id. *)

  val intern_tag : t -> string -> int
  (** Intern a type-tag name. *)

  val alloc : t -> ?tag:int -> size:int -> chain:int -> key:int -> unit -> int
  (** Record a birth; returns the new object id.  [tag] defaults to [-1]
      (untagged). *)

  val realloc :
    t -> ?tag:int -> new_size:int -> chain:int -> key:int -> obj:int -> unit -> unit
  (** Record a resize of live object [obj] to [new_size] bytes; the
      declared old size is the builder's tracked current size.  [chain]
      and [key] snapshot the stack at the resize site, as {!alloc} does.
      @raise Invalid_argument on an unknown or already-freed object, or a
      non-positive size. *)

  val free : ?size:int -> t -> obj:int -> unit
  (** Record a death.  [size] is the declared (sized-deallocation) size,
      defaulting to [-1] (undeclared) — see {!Event.t}.
      @raise Invalid_argument on double free or an unknown object. *)

  val touch : t -> obj:int -> int -> unit
  (** Record [n] heap references to [obj]. *)

  val non_heap_refs : t -> int -> unit
  (** Record [n] stack/global references. *)

  val instructions : t -> int -> unit
  (** Record [n] simulated instructions. *)

  val set_calls : t -> int -> unit
  (** Record the final function-call count (taken from the call-stack). *)

  val live_objects : t -> int
  (** Objects currently alive (born and not yet freed). *)

  val finish : t -> trace
end

val iter_allocs :
  t -> (obj:int -> size:int -> chain:int -> key:int -> tag:int -> unit) -> unit
(** Visit every allocation event in program order. *)

val total_bytes : t -> int
(** Total bytes allocated over the run (births plus growing-resize
    deltas; shrinks count nothing) — also the trace's final clock
    value. *)

val total_objects : t -> int

val has_realloc : t -> bool
(** Whether the trace carries any {!Event.Realloc} — the discriminator
    between binary versions that can and cannot express it. *)

val chain_of_alloc : t -> int -> Lp_callchain.Chain.t
(** [chain_of_alloc t chain_id] resolves an interned chain id. *)

val tile : t -> int -> t
(** [tile t n] concatenates [n] copies of [t], renumbering each copy's
    objects past the previous copy's (dense birth order is preserved)
    and scaling the execution counters — a way to synthesize long traces
    from a real workload, e.g. to exercise many chunks of the sharded
    layout.  [tile t 1] is [t] itself.
    @raise Invalid_argument when [n < 1]. *)
