(** A sharded ([.lpt] v3) trace opened for range-parallel replay.

    {!Binio.index} gives the raw chunk index; this module layers on the
    piece every sharded fold needs — {!range}, which describes "the
    stream as of chunk [first]" well enough to continue the sequential
    state machines mid-trace: the footer's entry counters plus a merged
    {e carry-in set} holding the pre-range state (last allocation's
    size/event/chain, birth clock, first-free event) of every object the
    range references but was born before it.

    The value is immutable; ranges and their sources can be taken on
    separate domains concurrently (see {!Lifetime.Parallel.map_chunks}
    users such as [Shard]). *)

type t

val load : string -> t
(** Memory-map and index a sharded trace file.
    @raise Failure if unreadable, malformed, or not version 3 ([lpalloc
    convert --v3] produces one). *)

val of_string : ?name:string -> string -> t
val of_bigarray : ?name:string -> Binio.bytes_view -> t

val header : t -> Binio.header
val name : t -> string
val index : t -> Binio.indexed
val chunks : t -> Binio.chunk_info array
val n_chunks : t -> int
val chunk_events : t -> int
val n_events : t -> int

type range = {
  rg_trace : t;
  rg_first_chunk : int;
  rg_n_chunks : int;
  rg_first_event : int;  (** global index of the range's first event *)
  rg_n_events : int;
  rg_next_obj : int;  (** next dense-birth object id at range entry *)
  rg_start_clock : int;  (** bytes allocated before the range *)
  rg_live_bytes : int;  (** live bytes at range entry *)
  rg_live_objs : int;  (** live objects at range entry *)
  rg_carry : Binio.carry array;
      (** pre-range state of referenced earlier-born objects, ascending
          object ids *)
}

val range : t -> first:int -> count:int -> range
(** [range t ~first ~count] covers chunks [\[first, first+count)].  The
    carry sets of the covered chunks are merged keeping, per object, the
    entry from the earliest covering chunk (the one snapshotted against
    pre-range state).  @raise Invalid_argument on a bad chunk range. *)

val source : t -> Source.t
(** Stream the whole trace; seekable ({!Source.seek}/{!Source.sub}). *)

val range_source : range -> Source.t
(** Stream exactly the range's events (complete tables visible from the
    start).  Fresh cursor per call; safe to call on any domain. *)
