(** Execution-wide statistics of a trace — the quantities of Table 2. *)

type t = {
  program : string;
  input : string;
  instructions : int;  (** simulated instructions executed *)
  calls : int;  (** function calls *)
  total_bytes : int;  (** total bytes allocated *)
  total_objects : int;  (** total objects allocated *)
  max_bytes : int;  (** maximum bytes simultaneously alive *)
  max_objects : int;  (** maximum objects simultaneously alive *)
  heap_ref_pct : float;  (** % of all memory references made to the heap *)
  distinct_chains : int;  (** distinct raw stack snapshots at allocations *)
  mean_object_size : float;
}

val compute : Trace.t -> t

val compute_source : Source.t -> t
(** Streaming twin of {!compute}: one bounded-memory pass over the
    source (per-object sizes only — memory scales with the object count,
    not the event count).  Fields are identical to {!compute} on the
    materialized equivalent.  The source is consumed. *)

val pp : Format.formatter -> t -> unit
