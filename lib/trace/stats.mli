(** Execution-wide statistics of a trace — the quantities of Table 2. *)

type t = {
  program : string;
  input : string;
  instructions : int;  (** simulated instructions executed *)
  calls : int;  (** function calls *)
  total_bytes : int;  (** total bytes allocated *)
  total_objects : int;  (** total objects allocated *)
  max_bytes : int;  (** maximum bytes simultaneously alive *)
  max_objects : int;  (** maximum objects simultaneously alive *)
  heap_ref_pct : float;  (** % of all memory references made to the heap *)
  distinct_chains : int;  (** distinct raw stack snapshots at allocations *)
  mean_object_size : float;
}

val compute : Trace.t -> t

val compute_source : Source.t -> t
(** Streaming twin of {!compute}: one bounded-memory pass over the
    source (per-object sizes only — memory scales with the object count,
    not the event count).  Fields are identical to {!compute} on the
    materialized equivalent.  The source is consumed. *)

type partial = {
  pt_total_bytes : int;
  pt_max_bytes : int;  (** max live bytes seen at this range's allocs *)
  pt_max_objects : int;
}
(** The range quarter of {!compute_source} over a sharded trace. *)

val compute_range : Sharded.range -> partial
(** Replay one chunk range with absolute live counters (seeded from the
    range's entry counters and carried object sizes). *)

val merge_ranges : Sharded.t -> partial list -> t
(** Identical to {!compute_source} over the whole trace when the
    partials cover it (any order — the merge is a sum and a max). *)

val pp : Format.formatter -> t -> unit
