(** Compact binary serialization of traces (the [.lpt] format).

    Layout (all integers LEB128 varints; [zigzag] marks signed fields):

    {v
    "LPTB" <version>
    program input                    -- length-prefixed strings
    n-funcs  name ...                -- interned function table, id order
    n-chains {len func-id ...} ...   -- interned call-chain table, id order
    n-tags   name ...                -- interned type-tag table, id order
    n-sites  {chain zigzag-key zigzag-tag} ...
                                     -- interned allocation-site table
    instructions calls heap-refs total-refs
    n-objects obj-ref ...            -- final heap-reference count per object
    n-events event ...
    0xE5                             -- end marker
    v}

    An allocation's [(chain, key, tag)] triple almost always repeats (a
    program has few allocation sites), so the triple is interned once in
    the site table and each alloc event names a small site id.  Events
    are opcode-tagged and delta-coded against the previous event of the
    same kind; the frequent cases pack into the single opcode byte:

    - [base+s] (s < 0x40-base): alloc at site [s], implicit
      [obj = previous alloc's obj + 1]; then [size]
    - [0x40+z] (z < 64): free where [z] is the zigzag of
      [obj - previous freed obj]
    - [0x80+(z << 4)+(count-1)] (z < 8, count <= 16): touch, [z] the
      zigzag of [obj - previous touched obj]
    - [0x00] alloc, implicit obj; then [site size]
    - [0x01] alloc; then [obj site size]
    - [0x02] free: [zigzag (obj - previous freed obj)]
    - [0x03] touch: [zigzag (obj - previous touched obj)] [count]

    The packed-alloc [base] is 0x04 in version 1.  A trace containing
    declared (sized-deallocation) free sizes is written as version 2,
    whose base is 0x06: opcode [0x05] is a sized free
    ([zigzag (obj - previous freed obj)] [declared-size]) and [0x04] is
    reserved.  Traces without sized frees — everything our runtime
    produces — are still written as version 1, byte-identical to older
    writers; readers accept both versions.

    Version 3 claims the reserved [0x04] for realloc:
    [zigzag (obj - previous realloc'd obj)] [site old-size new-size],
    the site naming the resize call-chain exactly as an alloc's does.
    The v1/v2 writer raises [Invalid_argument] on a realloc-bearing
    trace (only {!to_string_v3} can express one), and v2 decoders keep
    rejecting [0x04] as reserved, so a realloc event can never be
    smuggled into a version that cannot express it.  Realloc-free
    traces are unaffected byte-for-byte in every version.

    {b Version 3 — the sharded layout.}  [.lpt] v3 (written only on
    request, by {!to_string_v3}/{!output_v3}) splits the event stream
    into fixed-size chunks for seeking and data-parallel replay:

    {v
    "LPTB" 0x03
    program input
    instructions calls heap-refs total-refs
    n-objects obj-ref ...
    n-events chunk-events n-chunks
    chunk ...                        -- n-chunks times
    n-chunks {offset first-event n-events next-obj start-clock
              zigzag-live-bytes zigzag-live-objs} ...
                                     -- the footer index
    footer-offset                    -- 8-byte fixed little-endian
    0xE5
    v}

    where each chunk is

    {v
    n-new-funcs  name ...            -- interned-table prefix extensions
    n-new-chains {len func-id ...} ...
    n-new-tags   name ...
    n-new-sites  {chain zigzag-key zigzag-tag} ...
    n-carry {obj-delta size alloc-event alloc-chain birth-clock
             freed-at+1} ...         -- carry-in set, ascending objects
    n-chunk-events event ...         -- delta state reset per chunk
    v}

    Tables are extended per chunk in the same global id order as v1/v2
    (each chunk carries only what first becomes needed there; the last
    chunk tops every table up to full length), so converting v2 -> v3 ->
    v2 is byte-identical.  The carry-in set snapshots the pre-chunk
    replay state (last-alloc size/event/chain, birth clock, first-free
    event; [freed-at+1 = 0] means live) of every already-born object the
    chunk references, which is what lets a mid-trace fold continue the
    sequential state machines.  The footer records each chunk's byte
    offset, event range and entry-time replay counters; its own offset
    sits in a fixed-width slot before the end marker so a seeking reader
    finds it from the file tail in O(1).  Sequential readers never need
    the footer, so v3 still streams from a pipe.  v1/v2 files remain
    readable unchanged.

    Compared with {!Textio} this is typically >5x smaller and an order of
    magnitude faster to load.  {!Io} auto-detects text vs binary by the
    magic bytes. *)

val magic : string
(** ["LPTB"], the first four bytes of every binary trace. *)

val version_sharded : int
(** [3], the version byte of the sharded layout. *)

val default_chunk_events : int
(** Default events per chunk of {!to_string_v3} (2{^18}). *)

val output : out_channel -> Trace.t -> unit
(** @raise Invalid_argument if the trace contains realloc events, which
    only the version-3 writer can express. *)

val to_string : Trace.t -> string
(** @raise Invalid_argument if the trace contains realloc events. *)

val output_v3 : ?chunk_events:int -> out_channel -> Trace.t -> unit
(** Write the sharded (version 3) layout.  [chunk_events] is the events
    per chunk ({!default_chunk_events}); smaller chunks seek finer and
    parallelize shorter traces, larger chunks compress deltas better.
    @raise Invalid_argument if [chunk_events < 1]. *)

val to_string_v3 : ?chunk_events:int -> Trace.t -> string

val input : ?name:string -> in_channel -> Trace.t
(** @raise Failure on malformed input, with [name] (default ["<trace>"])
    and the byte offset in the message. *)

val of_string : ?name:string -> string -> Trace.t
(** @raise Failure on malformed input. *)

type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val of_bigarray : ?name:string -> bytes_view -> Trace.t
(** Decode directly from a byte [Bigarray] — the zero-copy path for
    memory-mapped trace files ({!Io.read_file} maps [.lpt] files and
    calls this).  [of_string] is this plus one copy.
    @raise Failure on malformed input. *)

val big_of_string : string -> bytes_view
(** Copy a string into a byte bigarray (the one copy behind
    [of_string]). *)

(** {1 Incremental decoding}

    The format is streaming-friendly: the execution counters (and, for
    v1/v2, the complete interned tables) precede the event stream, so a
    {!decoder} exposes the {!header} up front and then yields events one
    at a time without building the [Trace.t] event array.  The interned
    tables live on the decoder and — in a v3 stream — grow at chunk
    boundaries, honouring the {!Source} interning contract: any id
    carried by an already-yielded event resolves, and the counts are
    monotone.  {!Source.of_file} is built on this. *)

type header = {
  program : string;
  input : string;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  n_objects : int;
  obj_refs : int array;
  n_events : int;
}

type decoder

val decoder : ?name:string -> bytes_view -> decoder
(** Decode the header (for v1/v2, validating the interned tables exactly
    as {!of_bigarray} does) and position the cursor at the first event.
    @raise Failure on malformed input, with [name] and byte offset. *)

val header : decoder -> header

val decode_next : decoder -> Event.t option
(** The next event, or [None] after the last.  The first [None] also
    checks the end marker (and, for v3, that the footer index agrees
    with the chunks walked) and rejects trailing bytes, so a fully
    drained decoder has validated the same properties as a batch decode.
    @raise Failure on malformed input. *)

val decoder_version : decoder -> int

val decoder_funcs : decoder -> Lp_callchain.Func.table
(** The interned tables as currently known; for a v1/v2 decoder they are
    complete from the start, for a sequential v3 decoder they grow as
    chunk boundaries pass. *)

val decoder_chain : decoder -> int -> Lp_callchain.Chain.t
val decoder_n_chains : decoder -> int
val decoder_tag : decoder -> int -> string
val decoder_n_tags : decoder -> int

(** {1 The seekable index over a v3 buffer}

    {!index} locates the footer through its fixed-width tail pointer and
    loads every chunk's table deltas and carry-in set {i without
    decoding any events}.  The resulting value is immutable, so
    {!range_decoder}s opened over it can run on separate domains sharing
    the one buffer and table set — the substrate of sharded replay. *)

type carry = {
  cr_obj : int;
  cr_size : int;
      (** the object's current size at chunk entry: its last pre-chunk
          allocation's size as updated by any pre-chunk reallocs *)
  cr_alloc_event : int;  (** event index of that allocation *)
  cr_alloc_chain : int;  (** chain id of that allocation *)
  cr_birth_clock : int;  (** allocation clock just before it *)
  cr_freed_at : int;  (** event index of the object's first free, -1 live *)
}

type chunk_info = {
  ch_offset : int;  (** absolute byte offset of the chunk *)
  ch_first_event : int;
  ch_n_events : int;
  ch_next_obj : int;  (** next expected (dense-birth) object id at entry *)
  ch_start_clock : int;  (** bytes allocated before the chunk *)
  ch_live_bytes : int;  (** live bytes at chunk entry *)
  ch_live_objs : int;  (** live objects at chunk entry *)
}

type indexed

val index : ?name:string -> bytes_view -> indexed
(** @raise Failure on malformed input, or if the buffer is a v1/v2 trace
    (which have no index; convert with {!to_string_v3} first). *)

val indexed_header : indexed -> header
val indexed_name : indexed -> string
val indexed_chunk_events : indexed -> int
val indexed_chunks : indexed -> chunk_info array

val indexed_carry : indexed -> int -> carry array
(** The carry-in set of one chunk, ascending object ids. *)

val indexed_funcs : indexed -> Lp_callchain.Func.table
val indexed_chain : indexed -> int -> Lp_callchain.Chain.t
val indexed_n_chains : indexed -> int
val indexed_tag : indexed -> int -> string
val indexed_n_tags : indexed -> int

(** {1 Wire primitives}

    The varint/zigzag codec at string granularity, exposed for the
    property suite: [zigzag]/[unzigzag] are a bijection on the full
    native int range (including [min_int]/[max_int]), [varint] is the
    unsigned encoding (negative values rejected on both sides), and
    [varint_bits] carries raw bit patterns — negative ints included —
    as an unsigned [Sys.int_size]-bit quantity.  Decoders raise
    [Failure] on overlong or overflowing encodings and on trailing
    bytes. *)
module Wire : sig
  val zigzag : int -> int
  val unzigzag : int -> int
  val varint_to_string : int -> string
  val varint_of_string : string -> int
  val varint_bits_to_string : int -> string
  val varint_bits_of_string : string -> int
  val zigzag_to_string : int -> string
  val zigzag_of_string : string -> int
end

val range_decoder : indexed -> first:int -> count:int -> decoder
(** A fresh decoder over the chunk range [\[first, first+count)]: yields
    exactly those chunks' events, with the complete tables visible from
    the start.  Cheap (no per-range parsing); any number may be open at
    once, including on different domains.
    @raise Invalid_argument on a bad range. *)
