(** Compact binary serialization of traces (the [.lpt] format).

    Layout (all integers LEB128 varints; [zigzag] marks signed fields):

    {v
    "LPTB" <version>
    program input                    -- length-prefixed strings
    n-funcs  name ...                -- interned function table, id order
    n-chains {len func-id ...} ...   -- interned call-chain table, id order
    n-tags   name ...                -- interned type-tag table, id order
    n-sites  {chain zigzag-key zigzag-tag} ...
                                     -- interned allocation-site table
    instructions calls heap-refs total-refs
    n-objects obj-ref ...            -- final heap-reference count per object
    n-events event ...
    0xE5                             -- end marker
    v}

    An allocation's [(chain, key, tag)] triple almost always repeats (a
    program has few allocation sites), so the triple is interned once in
    the site table and each alloc event names a small site id.  Events
    are opcode-tagged and delta-coded against the previous event of the
    same kind; the frequent cases pack into the single opcode byte:

    - [base+s] (s < 0x40-base): alloc at site [s], implicit
      [obj = previous alloc's obj + 1]; then [size]
    - [0x40+z] (z < 64): free where [z] is the zigzag of
      [obj - previous freed obj]
    - [0x80+(z << 4)+(count-1)] (z < 8, count <= 16): touch, [z] the
      zigzag of [obj - previous touched obj]
    - [0x00] alloc, implicit obj; then [site size]
    - [0x01] alloc; then [obj site size]
    - [0x02] free: [zigzag (obj - previous freed obj)]
    - [0x03] touch: [zigzag (obj - previous touched obj)] [count]

    The packed-alloc [base] is 0x04 in version 1.  A trace containing
    declared (sized-deallocation) free sizes is written as version 2,
    whose base is 0x06: opcode [0x05] is a sized free
    ([zigzag (obj - previous freed obj)] [declared-size]) and [0x04] is
    reserved.  Traces without sized frees — everything our runtime
    produces — are still written as version 1, byte-identical to older
    writers; readers accept both versions.

    Compared with {!Textio} this is typically >5x smaller and an order of
    magnitude faster to load.  {!Io} auto-detects the two formats by the
    magic bytes. *)

val magic : string
(** ["LPTB"], the first four bytes of every binary trace. *)

val output : out_channel -> Trace.t -> unit
val to_string : Trace.t -> string

val input : ?name:string -> in_channel -> Trace.t
(** @raise Failure on malformed input, with [name] (default ["<trace>"])
    and the byte offset in the message. *)

val of_string : ?name:string -> string -> Trace.t
(** @raise Failure on malformed input. *)

type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val of_bigarray : ?name:string -> bytes_view -> Trace.t
(** Decode directly from a byte [Bigarray] — the zero-copy path for
    memory-mapped trace files ({!Io.read_file} maps [.lpt] files and
    calls this).  [of_string] is this plus one copy.
    @raise Failure on malformed input. *)

val big_of_string : string -> bytes_view
(** Copy a string into a byte bigarray (the one copy behind
    [of_string]). *)

(** {1 Incremental decoding}

    The format is streaming-friendly: every interned table and the
    execution counters precede the event stream, so a {!decoder} exposes
    the complete {!header} up front and then yields events one at a time
    without building the [Trace.t] event array.  {!Source.of_file} is
    built on this. *)

type header = {
  program : string;
  input : string;
  funcs : Lp_callchain.Func.table;
  chains : Lp_callchain.Chain.t array;
  tags : string array;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  n_objects : int;
  obj_refs : int array;
  n_events : int;
}

type decoder

val decoder : ?name:string -> bytes_view -> decoder
(** Decode the header (validating the interned tables exactly as
    {!of_bigarray} does) and position the cursor at the first event.
    @raise Failure on malformed input, with [name] and byte offset. *)

val header : decoder -> header

val decode_next : decoder -> Event.t option
(** The next event, or [None] after the last.  The first [None] also
    checks the end marker and rejects trailing bytes, so a fully drained
    decoder has validated the same properties as a batch decode.
    @raise Failure on malformed input. *)
