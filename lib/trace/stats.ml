type t = {
  program : string;
  input : string;
  instructions : int;
  calls : int;
  total_bytes : int;
  total_objects : int;
  max_bytes : int;
  max_objects : int;
  heap_ref_pct : float;
  distinct_chains : int;
  mean_object_size : float;
}

let compute (trace : Trace.t) =
  let total_bytes = Trace.total_bytes trace in
  let total_objects = Trace.total_objects trace in
  let max_bytes, max_objects = Lifetimes.max_live trace in
  let heap_ref_pct =
    if trace.total_refs = 0 then 0.
    else 100. *. float_of_int trace.heap_refs /. float_of_int trace.total_refs
  in
  {
    program = trace.program;
    input = trace.input;
    instructions = trace.instructions;
    calls = trace.calls;
    total_bytes;
    total_objects;
    max_bytes;
    max_objects;
    heap_ref_pct;
    distinct_chains = Array.length trace.chains;
    mean_object_size =
      (if total_objects = 0 then 0. else float_of_int total_bytes /. float_of_int total_objects);
  }

(* The streaming twin of [compute]: one bounded-memory pass over a source
   — per-object sizes in a growable array (for the live-bytes high water
   mark), everything else a handful of scalars.  Identical fields to
   [compute] on the materialized equivalent; the source is consumed. *)
let compute_source (src : Source.t) =
  let hint =
    match src.Source.n_objects_hint with Some n -> max 1 n | None -> 1024
  in
  let sizes = Grow.create hint in
  let total_bytes = ref 0 in
  let live_bytes = ref 0 and live_objs = ref 0 in
  let max_bytes = ref 0 and max_objs = ref 0 in
  Source.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          Grow.set sizes obj size;
          total_bytes := !total_bytes + size;
          live_bytes := !live_bytes + size;
          incr live_objs;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes;
          if !live_objs > !max_objs then max_objs := !live_objs
      | Event.Free { obj; _ } ->
          live_bytes := !live_bytes - Grow.get sizes obj;
          decr live_objs
      | Event.Realloc { obj; old_size; new_size; _ } ->
          (* the clock charges the declared grown delta (as
             [Trace.total_bytes] does); live bytes swap the tracked
             current size for the new one (as the free path subtracts) *)
          total_bytes := !total_bytes + max 0 (new_size - old_size);
          live_bytes := !live_bytes - Grow.get sizes obj + new_size;
          Grow.set sizes obj new_size;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes
      | Event.Touch _ -> ())
    src;
  let c = Source.counters src in
  let total_objects = Source.n_objects src in
  let heap_ref_pct =
    if c.Source.total_refs = 0 then 0.
    else
      100. *. float_of_int c.Source.heap_refs /. float_of_int c.Source.total_refs
  in
  {
    program = src.Source.program;
    input = src.Source.input;
    instructions = c.Source.instructions;
    calls = c.Source.calls;
    total_bytes = !total_bytes;
    total_objects;
    max_bytes = !max_bytes;
    max_objects = !max_objs;
    heap_ref_pct;
    distinct_chains = src.Source.n_chains ();
    mean_object_size =
      (if total_objects = 0 then 0.
       else float_of_int !total_bytes /. float_of_int total_objects);
  }

(* The range quarter of [compute_source].  Live counters are absolute
   (seeded from the range's footer entry), the per-object size table is
   preloaded from the carry-in set so a free of an earlier-born object
   subtracts the same size the sequential pass would, and the maxima are
   only candidates from this range's allocations — the sequential code
   updates its maxima at allocations only, so the global maxima are the
   max over the ranges' candidates (0, the sequential initial value, is
   the identity for a range without allocations). *)
type partial = {
  pt_total_bytes : int;
  pt_max_bytes : int;
  pt_max_objects : int;
}

let compute_range (rg : Sharded.range) =
  let sizes = Grow.create (max 64 (Array.length rg.Sharded.rg_carry)) in
  Array.iter
    (fun (cr : Binio.carry) -> Grow.set sizes cr.Binio.cr_obj cr.Binio.cr_size)
    rg.Sharded.rg_carry;
  let total_bytes = ref 0 in
  let live_bytes = ref rg.Sharded.rg_live_bytes in
  let live_objs = ref rg.Sharded.rg_live_objs in
  let max_bytes = ref 0 and max_objs = ref 0 in
  Source.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          Grow.set sizes obj size;
          total_bytes := !total_bytes + size;
          live_bytes := !live_bytes + size;
          incr live_objs;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes;
          if !live_objs > !max_objs then max_objs := !live_objs
      | Event.Free { obj; _ } ->
          live_bytes := !live_bytes - Grow.get sizes obj;
          decr live_objs
      | Event.Realloc { obj; old_size; new_size; _ } ->
          (* the clock charges the declared grown delta (as
             [Trace.total_bytes] does); live bytes swap the tracked
             current size for the new one (as the free path subtracts) *)
          total_bytes := !total_bytes + max 0 (new_size - old_size);
          live_bytes := !live_bytes - Grow.get sizes obj + new_size;
          Grow.set sizes obj new_size;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes
      | Event.Touch _ -> ())
    (Sharded.range_source rg);
  {
    pt_total_bytes = !total_bytes;
    pt_max_bytes = !max_bytes;
    pt_max_objects = !max_objs;
  }

let merge_ranges (sh : Sharded.t) partials =
  let hdr = Sharded.header sh in
  let total_bytes =
    List.fold_left (fun acc p -> acc + p.pt_total_bytes) 0 partials
  in
  let max_bytes =
    List.fold_left (fun acc p -> max acc p.pt_max_bytes) 0 partials
  in
  let max_objects =
    List.fold_left (fun acc p -> max acc p.pt_max_objects) 0 partials
  in
  let total_objects = hdr.Binio.n_objects in
  let heap_ref_pct =
    if hdr.Binio.total_refs = 0 then 0.
    else
      100. *. float_of_int hdr.Binio.heap_refs
      /. float_of_int hdr.Binio.total_refs
  in
  {
    program = hdr.Binio.program;
    input = hdr.Binio.input;
    instructions = hdr.Binio.instructions;
    calls = hdr.Binio.calls;
    total_bytes;
    total_objects;
    max_bytes;
    max_objects;
    heap_ref_pct;
    distinct_chains = Binio.indexed_n_chains (Sharded.index sh);
    mean_object_size =
      (if total_objects = 0 then 0.
       else float_of_int total_bytes /. float_of_int total_objects);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s (%s):@ instructions %d@ calls %d@ bytes %d in %d objects (mean %.1f)@ max \
     live %d bytes / %d objects@ heap refs %.1f%%@ distinct chains %d@]"
    t.program t.input t.instructions t.calls t.total_bytes t.total_objects
    t.mean_object_size t.max_bytes t.max_objects t.heap_ref_pct t.distinct_chains
