(* Names (program, function and tag names) are escaped so they can never
   contain the separators of the line format: a raw space would split into
   extra fields that the parser rejects — the writer used to emit exactly
   that for names like "main loop".  The escaping is injective and ASCII:
   '\\'->"\\\\", ' '->"\\s", '\n'->"\\n", '\t'->"\\t", '\r'->"\\r". *)
let escape_name name =
  let needs_escape = function ' ' | '\\' | '\n' | '\t' | '\r' -> true | _ -> false in
  if not (String.exists needs_escape name) then name
  else begin
    let b = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | ' ' -> Buffer.add_string b "\\s"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c -> Buffer.add_char b c)
      name;
    Buffer.contents b
  end

let write ~(line : string -> unit) (t : Trace.t) =
  line (Printf.sprintf "trace %s %s" (escape_name t.program) t.input);
  let names = Lp_callchain.Func.names t.funcs in
  Array.iteri
    (fun id name -> line (Printf.sprintf "func %d %s" id (escape_name name)))
    names;
  Array.iteri
    (fun id chain ->
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "chain %d" id);
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf " %d" f)) chain;
      line (Buffer.contents b))
    t.chains;
  Array.iteri
    (fun id name -> line (Printf.sprintf "tag %d %s" id (escape_name name)))
    t.tags;
  line
    (Printf.sprintf "counters %d %d %d %d" t.instructions t.calls t.heap_refs
       t.total_refs);
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } ->
          line
            (Printf.sprintf "a %d %d %d %d %d %d" obj size chain key tag
               t.obj_refs.(obj))
      | Event.Free { obj; size } ->
          if size < 0 then line (Printf.sprintf "f %d" obj)
          else line (Printf.sprintf "f %d %d" obj size)
      | Event.Realloc { obj; old_size; new_size; chain; key; tag } ->
          (* format v3's only addition; a realloc-free trace emits no [g]
             line and stays byte-identical to v2 *)
          line
            (Printf.sprintf "g %d %d %d %d %d %d" obj old_size new_size chain
               key tag)
      | Event.Touch { obj; count } -> line (Printf.sprintf "r %d %d" obj count))
    t.events;
  line "end"

let output oc t =
  write t ~line:(fun s ->
      output_string oc s;
      output_char oc '\n')

type parse_state = {
  mutable program : string;
  mutable input_name : string;
  funcs : Lp_callchain.Func.table;
  mutable func_names : (int * string) list;
  mutable chains : (int * int array) list;
  mutable tag_names : (int * string) list;
  mutable events : Event.t list;
  mutable n_objects : int;
  mutable obj_refs : (int * int) list;
  mutable instructions : int;
  mutable calls : int;
  mutable heap_refs : int;
  mutable total_refs : int;
  mutable finished : bool;
}

(* Parse errors carry the source (file name when known), the line, and for
   numeric fields the field name, so a malformed trace points at itself
   instead of dying with a bare [Failure "int_of_string"]. *)
let fail ~name lineno msg =
  failwith (Printf.sprintf "Textio.input: %s:%d: %s" name lineno msg)

let int_field ~name lineno ~field s =
  match int_of_string_opt s with
  | Some v -> v
  | None ->
      fail ~name lineno (Printf.sprintf "field %s: %S is not an integer" field s)

let unescape_name ~name lineno s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '\\' ->
          if !i + 1 >= n then
            fail ~name lineno "dangling escape at end of name";
          (match s.[!i + 1] with
          | '\\' -> Buffer.add_char b '\\'
          | 's' -> Buffer.add_char b ' '
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | c -> fail ~name lineno (Printf.sprintf "unknown escape '\\%c' in name" c));
          incr i
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let unescape s = unescape_name ~name:"<string>" 0 s

(* Names written by the escaping writer are a single token; names with raw
   spaces (written by the pre-escaping writer) arrive as several tokens and
   are re-joined, so old files still load. *)
let name_of_tokens ~name lineno tokens =
  unescape_name ~name lineno (String.concat " " tokens)

let parse_line ~name st lineno line =
  let int = int_field ~name lineno in
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | "trace" :: program :: rest ->
      st.program <- unescape_name ~name lineno program;
      st.input_name <- String.concat " " rest
  | "func" :: id :: rest ->
      st.func_names <-
        (int ~field:"func-id" id, name_of_tokens ~name lineno rest)
        :: st.func_names
  | "chain" :: id :: funcs ->
      let chain = Array.of_list (List.map (int ~field:"chain-func") funcs) in
      st.chains <- (int ~field:"chain-id" id, chain) :: st.chains
  | "tag" :: id :: rest ->
      st.tag_names <-
        (int ~field:"tag-id" id, name_of_tokens ~name lineno rest) :: st.tag_names
  | [ "counters"; i; c; h; t ] ->
      st.instructions <- int ~field:"instructions" i;
      st.calls <- int ~field:"calls" c;
      st.heap_refs <- int ~field:"heap-refs" h;
      st.total_refs <- int ~field:"total-refs" t
  | [ "a"; obj; size; chain; key; tag; refs ] ->
      let obj = int ~field:"obj" obj in
      st.events <-
        Event.Alloc
          { obj; size = int ~field:"size" size; chain = int ~field:"chain" chain;
            key = int ~field:"key" key; tag = int ~field:"tag" tag }
        :: st.events;
      st.obj_refs <- (obj, int ~field:"refs" refs) :: st.obj_refs;
      if obj >= st.n_objects then st.n_objects <- obj + 1
  | [ "f"; obj ] ->
      st.events <- Event.Free { obj = int ~field:"obj" obj; size = -1 } :: st.events
  | [ "f"; obj; size ] ->
      (* a declared (sized-deallocation) size; the linter checks it against
         the allocation *)
      st.events <-
        Event.Free { obj = int ~field:"obj" obj; size = int ~field:"size" size }
        :: st.events
  | [ "g"; obj; old_size; new_size; chain; key; tag ] ->
      st.events <-
        Event.Realloc
          { obj = int ~field:"obj" obj; old_size = int ~field:"old-size" old_size;
            new_size = int ~field:"new-size" new_size;
            chain = int ~field:"chain" chain; key = int ~field:"key" key;
            tag = int ~field:"tag" tag }
        :: st.events
  | [ "r"; obj; count ] ->
      st.events <-
        Event.Touch { obj = int ~field:"obj" obj; count = int ~field:"count" count }
        :: st.events
  | [ "end" ] -> st.finished <- true
  | _ -> fail ~name lineno (Printf.sprintf "unrecognised line %S" line)

(* [lineno] is the last line consumed; whole-trace validation failures
   (missing declarations, dangling references) point there so every
   Textio error carries file:line context. *)
let finish ~name ~lineno st : Trace.t =
  let fail msg = fail ~name lineno msg in
  if not st.finished then fail "missing 'end' line";
  (* Re-intern functions in id order so interned ids match the file's. *)
  let func_names = List.sort compare (List.rev st.func_names) in
  List.iteri
    (fun expect (id, fname) ->
      if id <> expect then fail "non-dense function ids";
      let interned = Lp_callchain.Func.intern st.funcs fname in
      if interned <> id then fail "duplicate function name")
    func_names;
  let chains = List.sort compare (List.rev st.chains) in
  let chain_arr = Array.make (List.length chains) [||] in
  List.iteri
    (fun expect (id, chain) ->
      if id <> expect then fail "non-dense chain ids";
      chain_arr.(expect) <- chain)
    chains;
  let obj_refs = Array.make st.n_objects 0 in
  List.iter (fun (obj, refs) -> obj_refs.(obj) <- refs) st.obj_refs;
  let tag_list = List.sort compare (List.rev st.tag_names) in
  let tags = Array.make (List.length tag_list) "" in
  List.iteri
    (fun expect (id, tname) ->
      if id <> expect then fail "non-dense tag ids";
      tags.(expect) <- tname)
    tag_list;
  let events = Array.of_list (List.rev st.events) in
  Array.iteri
    (fun i ev ->
      let check_obj what obj =
        if obj < 0 || obj >= st.n_objects then
          fail
            (Printf.sprintf "event %d: %s of out-of-range object %d" i what obj)
      in
      match (ev : Event.t) with
      | Alloc { obj; chain; tag; _ } ->
          check_obj "alloc" obj;
          if chain < 0 || chain >= Array.length chain_arr then
            fail
              (Printf.sprintf "event %d: alloc references unknown chain %d" i
                 chain);
          (* negative tag means untagged; non-negative must be in the table *)
          if tag >= Array.length tags then
            fail
              (Printf.sprintf "event %d: alloc references unknown tag %d" i tag)
      | Free { obj; _ } -> check_obj "free" obj
      | Realloc { obj; chain; tag; _ } ->
          check_obj "realloc" obj;
          if chain < 0 || chain >= Array.length chain_arr then
            fail
              (Printf.sprintf "event %d: realloc references unknown chain %d" i
                 chain);
          if tag >= Array.length tags then
            fail
              (Printf.sprintf "event %d: realloc references unknown tag %d" i tag)
      | Touch { obj; _ } -> check_obj "touch" obj)
    events;
  {
    program = st.program;
    input = st.input_name;
    events;
    chains = chain_arr;
    funcs = st.funcs;
    n_objects = st.n_objects;
    instructions = st.instructions;
    calls = st.calls;
    heap_refs = st.heap_refs;
    total_refs = st.total_refs;
    obj_refs;
    tags;
  }

let fresh_state () =
  {
    program = "?";
    input_name = "?";
    funcs = Lp_callchain.Func.create_table ();
    func_names = [];
    chains = [];
    tag_names = [];
    events = [];
    n_objects = 0;
    obj_refs = [];
    instructions = 0;
    calls = 0;
    heap_refs = 0;
    total_refs = 0;
    finished = false;
  }

let input ?(name = "<trace>") ic =
  let st = fresh_state () in
  let lineno = ref 0 in
  (try
     while not st.finished do
       incr lineno;
       parse_line ~name st !lineno (input_line ic)
     done
   with End_of_file -> ());
  finish ~name ~lineno:!lineno st

let to_string t =
  let buf = Buffer.create 65536 in
  write t ~line:(fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string ?(name = "<trace>") s =
  let st = fresh_state () in
  let lines = String.split_on_char '\n' s in
  let last = ref 0 in
  List.iteri
    (fun i line ->
      if not st.finished then begin
        last := i + 1;
        parse_line ~name st (i + 1) line
      end)
    lines;
  finish ~name ~lineno:!last st

(* -- streaming ----------------------------------------------------------------- *)

type stream = {
  s_program : string;
  s_input : string;
  s_funcs : Lp_callchain.Func.table;
  s_chain : int -> Lp_callchain.Chain.t;
  s_n_chains : unit -> int;
  s_tag : int -> string;
  s_n_tags : unit -> int;
  s_counters : unit -> int * int * int * int;
  s_refs : int -> int;
  s_n_objects : unit -> int;
  s_next : unit -> Event.t option;
}

(* The streaming parser makes one pass and never holds the event list, so
   it requires the declaration order the writer produces: dense in-order
   func/chain/tag ids, declarations before the events that reference them.
   Free/touch object ids can only be range-checked from below (the final
   object count is unknown until exhaustion); a forward reference that the
   batch parser would reject at [finish] streams through here and is the
   linter's to flag. *)
let stream ?(name = "<trace>") next_line =
  let funcs = Lp_callchain.Func.create_table () in
  let program = ref "?" and input_name = ref "?" in
  let chains = ref (Array.make 64 [||]) in
  let n_chains = ref 0 in
  let tags = ref (Array.make 16 "") in
  let n_tags = ref 0 in
  let instructions = ref 0
  and calls = ref 0
  and heap_refs = ref 0
  and total_refs = ref 0 in
  let obj_refs = Grow.create 1024 in
  let n_objects = ref 0 in
  let lineno = ref 0 in
  let ended = ref false in
  let declare what n arr id v =
    if id <> !n then
      fail ~name !lineno
        (Printf.sprintf
           "%s id %d out of order (streaming requires dense declaration order)"
           what id);
    if !n = Array.length !arr then begin
      let grown = Array.make (2 * !n) !arr.(0) in
      Array.blit !arr 0 grown 0 !n;
      arr := grown
    end;
    !arr.(id) <- v;
    incr n
  in
  let handle_line line : Event.t option =
    let int = int_field ~name !lineno in
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> None
    | "trace" :: p :: rest ->
        program := unescape_name ~name !lineno p;
        input_name := String.concat " " rest;
        None
    | "func" :: id :: rest ->
        let id = int ~field:"func-id" id in
        let fname = name_of_tokens ~name !lineno rest in
        if Lp_callchain.Func.intern funcs fname <> id then
          fail ~name !lineno
            (Printf.sprintf
               "func id %d out of order (streaming requires dense declaration \
                order)"
               id);
        None
    | "chain" :: id :: fs ->
        let chain = Array.of_list (List.map (int ~field:"chain-func") fs) in
        declare "chain" n_chains chains (int ~field:"chain-id" id) chain;
        None
    | "tag" :: id :: rest ->
        declare "tag" n_tags tags
          (int ~field:"tag-id" id)
          (name_of_tokens ~name !lineno rest);
        None
    | [ "counters"; i; c; h; t ] ->
        instructions := int ~field:"instructions" i;
        calls := int ~field:"calls" c;
        heap_refs := int ~field:"heap-refs" h;
        total_refs := int ~field:"total-refs" t;
        None
    | [ "a"; obj; size; chain; key; tag; refs ] ->
        let obj = int ~field:"obj" obj in
        if obj < 0 then
          fail ~name !lineno (Printf.sprintf "alloc of out-of-range object %d" obj);
        let chain = int ~field:"chain" chain in
        if chain < 0 || chain >= !n_chains then
          fail ~name !lineno
            (Printf.sprintf "alloc references unknown chain %d" chain);
        let tag = int ~field:"tag" tag in
        if tag >= !n_tags then
          fail ~name !lineno (Printf.sprintf "alloc references unknown tag %d" tag);
        Grow.set obj_refs obj (int ~field:"refs" refs);
        if obj >= !n_objects then n_objects := obj + 1;
        Some
          (Event.Alloc
             { obj; size = int ~field:"size" size; chain; key = int ~field:"key" key; tag })
    | "f" :: obj :: rest ->
        let obj = int ~field:"obj" obj in
        if obj < 0 then
          fail ~name !lineno (Printf.sprintf "free of out-of-range object %d" obj);
        (match rest with
        | [] -> Some (Event.Free { obj; size = -1 })
        | [ size ] -> Some (Event.Free { obj; size = int ~field:"size" size })
        | _ -> fail ~name !lineno (Printf.sprintf "unrecognised line %S" line))
    | [ "g"; obj; old_size; new_size; chain; key; tag ] ->
        let obj = int ~field:"obj" obj in
        if obj < 0 then
          fail ~name !lineno
            (Printf.sprintf "realloc of out-of-range object %d" obj);
        let chain = int ~field:"chain" chain in
        if chain < 0 || chain >= !n_chains then
          fail ~name !lineno
            (Printf.sprintf "realloc references unknown chain %d" chain);
        let tag = int ~field:"tag" tag in
        if tag >= !n_tags then
          fail ~name !lineno
            (Printf.sprintf "realloc references unknown tag %d" tag);
        Some
          (Event.Realloc
             { obj; old_size = int ~field:"old-size" old_size;
               new_size = int ~field:"new-size" new_size; chain;
               key = int ~field:"key" key; tag })
    | [ "r"; obj; count ] ->
        let obj = int ~field:"obj" obj in
        if obj < 0 then
          fail ~name !lineno (Printf.sprintf "touch of out-of-range object %d" obj);
        Some (Event.Touch { obj; count = int ~field:"count" count })
    | [ "end" ] ->
        ended := true;
        None
    | _ -> fail ~name !lineno (Printf.sprintf "unrecognised line %S" line)
  in
  let rec read_next () =
    if !ended then None
    else
      match next_line () with
      | None -> fail ~name !lineno "missing 'end' line"
      | Some line -> (
          incr lineno;
          match handle_line line with
          | Some _ as ev -> ev
          | None -> if !ended then None else read_next ())
  in
  (* Drain the header eagerly so the interned tables and counters are
     available before the first event; the event that terminated the
     header drain is held until the first [s_next]. *)
  let pending = ref (read_next ()) in
  {
    s_program = !program;
    s_input = !input_name;
    s_funcs = funcs;
    s_chain =
      (fun id ->
        if id < 0 || id >= !n_chains then
          fail ~name !lineno (Printf.sprintf "unknown chain %d" id)
        else !chains.(id));
    s_n_chains = (fun () -> !n_chains);
    s_tag =
      (fun id ->
        if id < 0 || id >= !n_tags then
          fail ~name !lineno (Printf.sprintf "unknown tag %d" id)
        else !tags.(id));
    s_n_tags = (fun () -> !n_tags);
    s_counters = (fun () -> (!instructions, !calls, !heap_refs, !total_refs));
    s_refs = Grow.get obj_refs;
    s_n_objects = (fun () -> !n_objects);
    s_next =
      (fun () ->
        match !pending with
        | Some _ as ev ->
            pending := None;
            ev
        | None -> read_next ());
  }
