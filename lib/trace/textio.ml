(* Names (program, function and tag names) are escaped so they can never
   contain the separators of the line format: a raw space would split into
   extra fields that the parser rejects — the writer used to emit exactly
   that for names like "main loop".  The escaping is injective and ASCII:
   '\\'->"\\\\", ' '->"\\s", '\n'->"\\n", '\t'->"\\t", '\r'->"\\r". *)
let escape_name name =
  let needs_escape = function ' ' | '\\' | '\n' | '\t' | '\r' -> true | _ -> false in
  if not (String.exists needs_escape name) then name
  else begin
    let b = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | ' ' -> Buffer.add_string b "\\s"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c -> Buffer.add_char b c)
      name;
    Buffer.contents b
  end

let write ~(line : string -> unit) (t : Trace.t) =
  line (Printf.sprintf "trace %s %s" (escape_name t.program) t.input);
  let names = Lp_callchain.Func.names t.funcs in
  Array.iteri
    (fun id name -> line (Printf.sprintf "func %d %s" id (escape_name name)))
    names;
  Array.iteri
    (fun id chain ->
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "chain %d" id);
      Array.iter (fun f -> Buffer.add_string b (Printf.sprintf " %d" f)) chain;
      line (Buffer.contents b))
    t.chains;
  Array.iteri
    (fun id name -> line (Printf.sprintf "tag %d %s" id (escape_name name)))
    t.tags;
  line
    (Printf.sprintf "counters %d %d %d %d" t.instructions t.calls t.heap_refs
       t.total_refs);
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } ->
          line
            (Printf.sprintf "a %d %d %d %d %d %d" obj size chain key tag
               t.obj_refs.(obj))
      | Event.Free { obj; size } ->
          if size < 0 then line (Printf.sprintf "f %d" obj)
          else line (Printf.sprintf "f %d %d" obj size)
      | Event.Touch { obj; count } -> line (Printf.sprintf "r %d %d" obj count))
    t.events;
  line "end"

let output oc t =
  write t ~line:(fun s ->
      output_string oc s;
      output_char oc '\n')

type parse_state = {
  mutable program : string;
  mutable input_name : string;
  funcs : Lp_callchain.Func.table;
  mutable func_names : (int * string) list;
  mutable chains : (int * int array) list;
  mutable tag_names : (int * string) list;
  mutable events : Event.t list;
  mutable n_objects : int;
  mutable obj_refs : (int * int) list;
  mutable instructions : int;
  mutable calls : int;
  mutable heap_refs : int;
  mutable total_refs : int;
  mutable finished : bool;
}

(* Parse errors carry the source (file name when known), the line, and for
   numeric fields the field name, so a malformed trace points at itself
   instead of dying with a bare [Failure "int_of_string"]. *)
let fail ~name lineno msg =
  failwith (Printf.sprintf "Textio.input: %s:%d: %s" name lineno msg)

let int_field ~name lineno ~field s =
  match int_of_string_opt s with
  | Some v -> v
  | None ->
      fail ~name lineno (Printf.sprintf "field %s: %S is not an integer" field s)

let unescape_name ~name lineno s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '\\' ->
          if !i + 1 >= n then
            fail ~name lineno "dangling escape at end of name";
          (match s.[!i + 1] with
          | '\\' -> Buffer.add_char b '\\'
          | 's' -> Buffer.add_char b ' '
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | c -> fail ~name lineno (Printf.sprintf "unknown escape '\\%c' in name" c));
          incr i
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let unescape s = unescape_name ~name:"<string>" 0 s

(* Names written by the escaping writer are a single token; names with raw
   spaces (written by the pre-escaping writer) arrive as several tokens and
   are re-joined, so old files still load. *)
let name_of_tokens ~name lineno tokens =
  unescape_name ~name lineno (String.concat " " tokens)

let parse_line ~name st lineno line =
  let int = int_field ~name lineno in
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | "trace" :: program :: rest ->
      st.program <- unescape_name ~name lineno program;
      st.input_name <- String.concat " " rest
  | "func" :: id :: rest ->
      st.func_names <-
        (int ~field:"func-id" id, name_of_tokens ~name lineno rest)
        :: st.func_names
  | "chain" :: id :: funcs ->
      let chain = Array.of_list (List.map (int ~field:"chain-func") funcs) in
      st.chains <- (int ~field:"chain-id" id, chain) :: st.chains
  | "tag" :: id :: rest ->
      st.tag_names <-
        (int ~field:"tag-id" id, name_of_tokens ~name lineno rest) :: st.tag_names
  | [ "counters"; i; c; h; t ] ->
      st.instructions <- int ~field:"instructions" i;
      st.calls <- int ~field:"calls" c;
      st.heap_refs <- int ~field:"heap-refs" h;
      st.total_refs <- int ~field:"total-refs" t
  | [ "a"; obj; size; chain; key; tag; refs ] ->
      let obj = int ~field:"obj" obj in
      st.events <-
        Event.Alloc
          { obj; size = int ~field:"size" size; chain = int ~field:"chain" chain;
            key = int ~field:"key" key; tag = int ~field:"tag" tag }
        :: st.events;
      st.obj_refs <- (obj, int ~field:"refs" refs) :: st.obj_refs;
      if obj >= st.n_objects then st.n_objects <- obj + 1
  | [ "f"; obj ] ->
      st.events <- Event.Free { obj = int ~field:"obj" obj; size = -1 } :: st.events
  | [ "f"; obj; size ] ->
      (* a declared (sized-deallocation) size; the linter checks it against
         the allocation *)
      st.events <-
        Event.Free { obj = int ~field:"obj" obj; size = int ~field:"size" size }
        :: st.events
  | [ "r"; obj; count ] ->
      st.events <-
        Event.Touch { obj = int ~field:"obj" obj; count = int ~field:"count" count }
        :: st.events
  | [ "end" ] -> st.finished <- true
  | _ -> fail ~name lineno (Printf.sprintf "unrecognised line %S" line)

let finish ~name st : Trace.t =
  let fail msg = failwith (Printf.sprintf "Textio.input: %s: %s" name msg) in
  if not st.finished then fail "missing 'end' line";
  (* Re-intern functions in id order so interned ids match the file's. *)
  let func_names = List.sort compare (List.rev st.func_names) in
  List.iteri
    (fun expect (id, fname) ->
      if id <> expect then fail "non-dense function ids";
      let interned = Lp_callchain.Func.intern st.funcs fname in
      if interned <> id then fail "duplicate function name")
    func_names;
  let chains = List.sort compare (List.rev st.chains) in
  let chain_arr = Array.make (List.length chains) [||] in
  List.iteri
    (fun expect (id, chain) ->
      if id <> expect then fail "non-dense chain ids";
      chain_arr.(expect) <- chain)
    chains;
  let obj_refs = Array.make st.n_objects 0 in
  List.iter (fun (obj, refs) -> obj_refs.(obj) <- refs) st.obj_refs;
  let tag_list = List.sort compare (List.rev st.tag_names) in
  let tags = Array.make (List.length tag_list) "" in
  List.iteri
    (fun expect (id, tname) ->
      if id <> expect then fail "non-dense tag ids";
      tags.(expect) <- tname)
    tag_list;
  let events = Array.of_list (List.rev st.events) in
  Array.iteri
    (fun i ev ->
      let check_obj what obj =
        if obj < 0 || obj >= st.n_objects then
          fail
            (Printf.sprintf "event %d: %s of out-of-range object %d" i what obj)
      in
      match (ev : Event.t) with
      | Alloc { obj; chain; tag; _ } ->
          check_obj "alloc" obj;
          if chain < 0 || chain >= Array.length chain_arr then
            fail
              (Printf.sprintf "event %d: alloc references unknown chain %d" i
                 chain);
          (* negative tag means untagged; non-negative must be in the table *)
          if tag >= Array.length tags then
            fail
              (Printf.sprintf "event %d: alloc references unknown tag %d" i tag)
      | Free { obj; _ } -> check_obj "free" obj
      | Touch { obj; _ } -> check_obj "touch" obj)
    events;
  {
    program = st.program;
    input = st.input_name;
    events;
    chains = chain_arr;
    funcs = st.funcs;
    n_objects = st.n_objects;
    instructions = st.instructions;
    calls = st.calls;
    heap_refs = st.heap_refs;
    total_refs = st.total_refs;
    obj_refs;
    tags;
  }

let fresh_state () =
  {
    program = "?";
    input_name = "?";
    funcs = Lp_callchain.Func.create_table ();
    func_names = [];
    chains = [];
    tag_names = [];
    events = [];
    n_objects = 0;
    obj_refs = [];
    instructions = 0;
    calls = 0;
    heap_refs = 0;
    total_refs = 0;
    finished = false;
  }

let input ?(name = "<trace>") ic =
  let st = fresh_state () in
  let lineno = ref 0 in
  (try
     while not st.finished do
       incr lineno;
       parse_line ~name st !lineno (input_line ic)
     done
   with End_of_file -> ());
  finish ~name st

let to_string t =
  let buf = Buffer.create 65536 in
  write t ~line:(fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string ?(name = "<trace>") s =
  let st = fresh_state () in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line -> if not st.finished then parse_line ~name st (i + 1) line)
    lines;
  finish ~name st
