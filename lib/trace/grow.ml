type t = { mutable data : int array; mutable len : int; default : int }

let create ?(default = 0) hint =
  { data = Array.make (max 16 hint) default; len = 0; default }

let length t = t.len

(* Invariant: data.(i) = default for every i >= len, so extending the
   logical length never needs a fill pass. *)
let ensure t n =
  if n > Array.length t.data then begin
    (* The doubling must clamp at [Sys.max_array_length]: a plain
       [cap := 2 * !cap] wraps negative for huge [n], escapes the loop
       and dies inside [Array.make] with a context-free error. *)
    if n > Sys.max_array_length then
      failwith
        (Printf.sprintf
           "Grow.ensure: requested length %d exceeds Sys.max_array_length (%d)"
           n Sys.max_array_length);
    let cap = ref (Array.length t.data) in
    while n > !cap do
      cap :=
        if !cap >= Sys.max_array_length / 2 then Sys.max_array_length
        else 2 * !cap
    done;
    let grown = Array.make !cap t.default in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  if n > t.len then t.len <- n

let get t i = if i < t.len then Array.unsafe_get t.data i else t.default

let set t i x =
  ensure t (i + 1);
  Array.unsafe_set t.data i x

let push t x = set t t.len x
let to_array t = Array.sub t.data 0 t.len
