(** Object lifetimes, in bytes-allocated time.

    The paper defines an object's lifetime as the number of bytes allocated
    between its birth and its death (§3.2) — time measured by the clock the
    allocator itself experiences.  Objects still alive when the program ends
    have no death event; they are assigned the bytes remaining until the end
    of the run and flagged [survived], which makes them long-lived for any
    reasonable threshold and matches the conservative treatment a predictor
    must give them. *)

type t = {
  birth_clock : int array;  (** bytes allocated before each object's birth *)
  lifetime : int array;  (** per-object lifetime in bytes *)
  survived : bool array;  (** object was still alive at end of run *)
  end_clock : int;  (** total bytes allocated over the run *)
}

val compute : Trace.t -> t
(** One linear pass over the events.

    The clock advances by [size] {i at} each allocation; an object's birth
    clock is the clock value {i before} its own allocation, so an object
    freed immediately after allocation has lifetime 0 bytes if nothing else
    was allocated in between. *)

val is_short_lived : t -> threshold:int -> int -> bool
(** [is_short_lived lt ~threshold obj] — did [obj] die before [threshold]
    bytes were allocated?  Survivors are never short-lived. *)

type summary = {
  hist : Lp_quantile.Histogram.t;
      (** byte-weighted lifetime distribution (P² quartile histogram) *)
  short_bytes : int;  (** bytes in objects short-lived under the threshold *)
  total_alloc_bytes : int;  (** all bytes allocated *)
}

val summary_source : threshold:int -> Source.t -> summary
(** Streaming twin of {!compute} plus the byte-weighted histogram fold
    the [lpalloc lifetimes] command performs: one bounded-memory pass
    (per-allocation records, never the event array), with the histogram
    fed in allocation order so its quartiles are identical to the
    materialized path's.  The source is consumed. *)

val max_live : Trace.t -> int * int
(** [(max_bytes, max_objects)] — the largest numbers of bytes and of objects
    simultaneously alive at any point (Table 2's "Maximum Bytes/Objects").
    The two maxima may occur at different times. *)
