(** Object lifetimes, in bytes-allocated time.

    The paper defines an object's lifetime as the number of bytes allocated
    between its birth and its death (§3.2) — time measured by the clock the
    allocator itself experiences.  Objects still alive when the program ends
    have no death event; they are assigned the bytes remaining until the end
    of the run and flagged [survived], which makes them long-lived for any
    reasonable threshold and matches the conservative treatment a predictor
    must give them. *)

type t = {
  birth_clock : int array;  (** bytes allocated before each object's birth *)
  lifetime : int array;  (** per-object lifetime in bytes *)
  survived : bool array;  (** object was still alive at end of run *)
  end_clock : int;  (** total bytes allocated over the run *)
}

val compute : Trace.t -> t
(** One linear pass over the events.

    The clock advances by [size] {i at} each allocation; an object's birth
    clock is the clock value {i before} its own allocation, so an object
    freed immediately after allocation has lifetime 0 bytes if nothing else
    was allocated in between. *)

val is_short_lived : t -> threshold:int -> int -> bool
(** [is_short_lived lt ~threshold obj] — did [obj] die before [threshold]
    bytes were allocated?  Survivors are never short-lived. *)

type summary = {
  hist : Lp_quantile.Histogram.t;
      (** byte-weighted lifetime distribution (P² quartile histogram) *)
  short_bytes : int;  (** bytes in objects short-lived under the threshold *)
  total_alloc_bytes : int;  (** all bytes allocated *)
}

val summary_source : threshold:int -> Source.t -> summary
(** Streaming twin of {!compute} plus the byte-weighted histogram fold
    the [lpalloc lifetimes] command performs: one bounded-memory pass
    (per-allocation records, never the event array), with the histogram
    fed in allocation order so its quartiles are identical to the
    materialized path's.  The source is consumed. *)

(** {1 Sharded replay}

    A {!range_fold} is the per-range quarter of {!summary_source}: one
    range of a sharded trace replayed with absolute clocks (seeded from
    the range's entry counters and carry-in birth clocks), keeping the
    range's allocation records plus the range-final lifetime state of
    every object the range wrote.  For a covering partition of the
    trace, {!resolve} applies the folds in range order and ends with
    exactly the sequential pass's final per-object state, so
    {!merge_summaries} reproduces {!summary_source} — including the
    histogram's internal state, because the deferred observations happen
    in the same global allocation order. *)

type range_fold = {
  rf_a_obj : int array;  (** objects of the range's allocs, event order *)
  rf_a_size : int array;
  rf_touched : int array;  (** objects whose state the range wrote *)
  rf_born : int array;  (** 1 iff allocated in the range (per touched) *)
  rf_birth : int array;  (** last in-range birth clock (absolute) *)
  rf_freed : int array;  (** 1 iff freed in the range (per touched) *)
  rf_life : int array;  (** last in-range free's lifetime *)
  rf_end_clock : int;  (** absolute clock after the range's last event *)
}

val fold_range :
  ?on_alloc:(Source.t -> size:int -> chain:int -> key:int -> unit) ->
  Sharded.range ->
  range_fold
(** Replay one range.  [on_alloc] is called at each allocation event
    before state updates (the trainer derives sites there, keeping the
    expensive work inside the parallel section). *)

(** The incremental face of {!fold_range}: the same lifetime state
    machine driven one event at a time, for passes that interleave their
    own per-event accumulation with the lifetime fold (the audit
    engine's site analyses).  [create ~start_clock ~carry] seeds the
    carried birth clocks exactly as {!fold_range} does; {!Fold.step} on
    every event of the range and then {!Fold.finish} yields the same
    {!range_fold} the one-shot loop produces. *)
module Fold : sig
  type t

  val create :
    ?hint:int -> start_clock:int -> carry:Binio.carry array -> unit -> t
  (** [hint] pre-sizes the per-object tables (at least the carry size). *)

  val clock : t -> int
  (** Absolute allocation clock {e before} the next event. *)

  val n_allocs : t -> int
  (** Allocation records pushed so far. *)

  val step : t -> Event.t -> unit
  val finish : t -> range_fold
end

type resolved
(** Final per-object lifetime state of a covering partition. *)

val resolve : range_fold list -> resolved
(** Apply folds in range order (the caller passes them in range order —
    {!Sharded.range} order, as a covering partition of the trace). *)

val resolved_survived : resolved -> int -> bool
val resolved_lifetime : resolved -> int -> int
val resolved_end_clock : resolved -> int

val merge_summaries : threshold:int -> range_fold list -> summary
(** Identical to {!summary_source} over the whole trace when the folds
    cover it in order. *)

val max_live : Trace.t -> int * int
(** [(max_bytes, max_objects)] — the largest numbers of bytes and of objects
    simultaneously alive at any point (Table 2's "Maximum Bytes/Objects").
    The two maxima may occur at different times. *)
