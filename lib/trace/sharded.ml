(* A sharded (.lpt v3) trace opened for range-parallel replay: the
   index plus the range arithmetic every sharded fold needs.  [Binio]
   owns the bytes; this module owns the semantics of "replay chunks
   [first, first+count) as if the stream had been played up to
   [first]" — entry counters from the footer and a merged carry-in set
   describing the pre-range state of every object the range references
   but does not itself allocate. *)

type t = { ix : Binio.indexed }

let of_bigarray ?name buf = { ix = Binio.index ?name buf }

let of_string ?name s = of_bigarray ?name (Binio.big_of_string s)

let load path =
  match Io.map_file path with
  | Some buf -> of_bigarray ~name:path buf
  | None ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          of_string ~name:path (really_input_string ic (in_channel_length ic)))

let header t = Binio.indexed_header t.ix
let name t = Binio.indexed_name t.ix
let index t = t.ix
let chunks t = Binio.indexed_chunks t.ix
let n_chunks t = Array.length (chunks t)
let chunk_events t = Binio.indexed_chunk_events t.ix
let n_events t = (header t).Binio.n_events

type range = {
  rg_trace : t;
  rg_first_chunk : int;
  rg_n_chunks : int;
  rg_first_event : int;
  rg_n_events : int;
  rg_next_obj : int;
  rg_start_clock : int;
  rg_live_bytes : int;
  rg_live_objs : int;
  rg_carry : Binio.carry array;
}

(* The carry-in set of a chunk range.  Each chunk's set snapshots the
   pre-*chunk* state of the objects that chunk references, so for an
   object referenced by several chunks of the range only the entry from
   the earliest such chunk describes the pre-*range* state — later
   chunks see modifications made inside the range.  An object whose
   earliest entry records an allocation at or after the range start was
   born inside the range, so the range's own replay will (re)create its
   state and no carry entry is needed; after keep-earliest this can only
   happen if the object's sole pre-chunk births are in-range, which the
   per-chunk snapshot semantics already exclude, but the guard keeps the
   merge locally airtight. *)
let merge_carry ix ~first ~count ~first_event =
  if count = 1 then Binio.indexed_carry ix first
  else begin
    let seen : (int, Binio.carry) Hashtbl.t = Hashtbl.create 256 in
    for c = first to first + count - 1 do
      Array.iter
        (fun (cr : Binio.carry) ->
          if not (Hashtbl.mem seen cr.Binio.cr_obj) then
            Hashtbl.add seen cr.Binio.cr_obj cr)
        (Binio.indexed_carry ix c)
    done;
    let kept =
      Hashtbl.fold
        (fun _ (cr : Binio.carry) acc ->
          if cr.Binio.cr_alloc_event >= first_event then acc else cr :: acc)
        seen []
    in
    let arr = Array.of_list kept in
    Array.sort
      (fun (a : Binio.carry) (b : Binio.carry) ->
        compare a.Binio.cr_obj b.Binio.cr_obj)
      arr;
    arr
  end

let range t ~first ~count =
  let n = n_chunks t in
  if first < 0 || count < 0 || first + count > n then
    invalid_arg
      (Printf.sprintf "Sharded.range: chunks [%d, %d+%d) outside [0, %d)"
         first first count n);
  let ch = chunks t in
  if count = 0 then
    let first_event =
      if first < n then ch.(first).Binio.ch_first_event else n_events t
    in
    {
      rg_trace = t;
      rg_first_chunk = first;
      rg_n_chunks = 0;
      rg_first_event = first_event;
      rg_n_events = 0;
      rg_next_obj = (if first < n then ch.(first).Binio.ch_next_obj else 0);
      rg_start_clock =
        (if first < n then ch.(first).Binio.ch_start_clock else 0);
      rg_live_bytes = (if first < n then ch.(first).Binio.ch_live_bytes else 0);
      rg_live_objs = (if first < n then ch.(first).Binio.ch_live_objs else 0);
      rg_carry = [||];
    }
  else
    let entry = ch.(first) in
    let first_event = entry.Binio.ch_first_event in
    let last = ch.(first + count - 1) in
    let n_events = last.Binio.ch_first_event + last.Binio.ch_n_events
                   - first_event
    in
    {
      rg_trace = t;
      rg_first_chunk = first;
      rg_n_chunks = count;
      rg_first_event = first_event;
      rg_n_events = n_events;
      rg_next_obj = entry.Binio.ch_next_obj;
      rg_start_clock = entry.Binio.ch_start_clock;
      rg_live_bytes = entry.Binio.ch_live_bytes;
      rg_live_objs = entry.Binio.ch_live_objs;
      rg_carry = merge_carry t.ix ~first ~count ~first_event;
    }

let source t = Source.of_indexed t.ix

let range_source rg =
  Source.sub (source rg.rg_trace) ~first:rg.rg_first_event
    ~count:rg.rg_n_events
