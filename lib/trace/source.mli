(** Pull-based event sources: the streaming face of a trace.

    A source yields the exact event sequence of a trace — one {!Event.t}
    at a time through {!next} — together with the trace's incrementally
    interned tables (call-chains, function names, type tags) and
    per-object reference counts.  Consumers written against a source make
    a single pass with memory bounded by the live-object population
    rather than the trace length; the {!of_trace} adapter makes every
    such consumer also work on materialized traces.

    {b Interning contract.}  Any id carried by an already-yielded event
    (chain, tag, object) is resolvable through the source's lookup
    functions at that moment, and stays resolvable with the same value
    for the rest of the stream.  [n_chains]/[n_tags] are monotone.
    [refs_of obj] is final once [obj]'s alloc event has been yielded
    (declared up front by the file codecs, complete at exhaustion for
    generators).  [counters_now] is [Some] from the start for file and
    in-memory sources and becomes [Some] at exhaustion for generator
    sources.

    Exhaustion is observable: the first [None] from {!next} marks the
    source {!finished}, adds the event total to the
    ["trace.events_streamed"] counter and notes the GC's peak heap in
    ["trace.peak_resident_words"] (see {!Lp_obs.Timings}). *)

type counters = {
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
}

type t = {
  program : string;
  input : string;
  n_objects_hint : int option;
      (** final object count when known up front (file headers, traces) *)
  n_events_hint : int option;
  funcs : unit -> Lp_callchain.Func.table;
      (** thunk: a generator's table exists only once it has started *)
  chain : int -> Lp_callchain.Chain.t;
  n_chains : unit -> int;
  tag : int -> string;
  n_tags : unit -> int;
  counters_now : unit -> counters option;
  refs_of : int -> int;
  n_objects_now : unit -> int;
  next_ev : unit -> Event.t option;
      (** raw cursor; consumers should call {!next} instead so streaming
          accounting happens *)
  seek_to : (int -> unit) option;
      (** when seekable: reposition so the next event yielded is the
          given index *)
  sub_range : (first:int -> count:int -> t) option;
  mutable streamed : int;
  mutable finished : bool;
}

val next : t -> Event.t option
(** The next event, or [None] at exhaustion (idempotent afterwards). *)

val iter : (Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val events_streamed : t -> int
(** Events yielded so far. *)

val counters : t -> counters
(** @raise Invalid_argument when not yet known ({!counters_now} is the
    non-raising form). *)

val n_objects : t -> int
(** Final object count.  @raise Invalid_argument before exhaustion. *)

val seek : t -> int -> unit
(** [seek t i] repositions so the next event yielded is event [i] of the
    underlying range.  Only in-memory traces and sharded ([.lpt] v3)
    files are seekable.
    @raise Failure when the source is not seekable. *)

val sub : t -> first:int -> count:int -> t
(** [sub t ~first ~count] is a fresh source over the [count] events
    starting at event [first] of [t]'s range, with the same tables.
    [t] itself is left untouched.
    @raise Failure when the source is not seekable. *)

val of_trace : Trace.t -> t
(** Stream an in-memory trace.  Cheap; a fresh cursor per call. *)

val of_indexed : Binio.indexed -> t
(** Stream a seekable v3 index ({!of_file} does this automatically for
    v3 files); the result supports {!seek} and {!sub}. *)

val of_string : ?name:string -> string -> t
(** Stream serialized bytes, auto-detecting text vs binary like
    {!Io.of_string}.
    @raise Failure on malformed input (header errors immediately, event
    errors as the stream reaches them). *)

val of_file : string -> t
(** Stream a trace file: binary [.lpt] files decode incrementally over a
    read-only memory map (the file never materializes in the OCaml heap),
    text files parse line-at-a-time from the channel (closed at
    exhaustion).
    @raise Failure on malformed input, [Sys_error] if unreadable. *)

val of_generator :
  program:string ->
  input:string ->
  (sink:Trace.Builder.sink -> Trace.t) ->
  t
(** [of_generator ~program ~input produce] turns push-style trace
    production into a pull-based source using an effect handler: the
    producer runs only while the consumer demands events, suspended at
    each emission.  [produce] must create its builder with the given
    [sink] and return the {!Trace.Builder.finish} summary (whose event
    array is empty in sink mode); the summary supplies the final
    execution counters.  The producer runs at most once; the source is
    single-shot like every other constructor. *)

val decode_ahead : ?batch:int -> ?slots:int -> t -> t
(** [decode_ahead inner] moves the decode work of [inner] onto a fresh
    domain that runs ahead of the consumer, handing batches of [batch]
    events (default 4096) through a bounded queue of [slots] batches
    (default 8) — a two-stage pipeline that overlaps decoding with
    consumption.  Event order, errors and exhaustion semantics are
    preserved; errors raised by the producer re-raise at the consumer
    after all earlier events have been delivered.

    The wrapper is not seekable and must be drained to [None] (or to the
    re-raised error): abandoning it mid-stream leaves the producer
    domain blocked on the queue.  Table lookups ([chain], [tag], ...)
    remain safe because the queue's mutex orders the producer's
    interning writes before the consumer's reads of any delivered
    event's ids. *)
