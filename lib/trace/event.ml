type t =
  | Alloc of { obj : int; size : int; chain : int; key : int; tag : int }
  | Free of { obj : int; size : int }
  | Realloc of {
      obj : int;
      old_size : int;
      new_size : int;
      chain : int;
      key : int;
      tag : int;
    }
  | Touch of { obj : int; count : int }

let pp ppf = function
  | Alloc { obj; size; chain; key; tag } ->
      Format.fprintf ppf "alloc obj=%d size=%d chain=%d key=%#x tag=%d" obj size
        chain key tag
  | Free { obj; size } ->
      if size < 0 then Format.fprintf ppf "free obj=%d" obj
      else Format.fprintf ppf "free obj=%d size=%d" obj size
  | Realloc { obj; old_size; new_size; chain; key; tag } ->
      Format.fprintf ppf "realloc obj=%d old=%d new=%d chain=%d key=%#x tag=%d"
        obj old_size new_size chain key tag
  | Touch { obj; count } -> Format.fprintf ppf "touch obj=%d count=%d" obj count
