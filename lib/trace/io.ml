type format = Text | Binary

let format_for_path path = if Filename.check_suffix path ".lpt" then Binary else Text

let detect s =
  if String.length s >= 4 && String.equal (String.sub s 0 4) Binio.magic then
    Binary
  else Text

let of_string ?name s =
  let t =
    match detect s with
    | Binary -> Binio.of_string ?name s
    | Text -> Textio.of_string ?name s
  in
  (* one full materializing decode; the decode-once/replay-many engine's
     proof obligation is that a candidate sweep moves this exactly once *)
  Lp_obs.Timings.count "trace.decodes" 1;
  t

let input ?name ic = of_string ?name (In_channel.input_all ic)

(* memory-map the file for the zero-copy binary decode path; any failure
   (empty file, exotic filesystem, no mmap) falls back to reading it in *)
let map_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
      match
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))
      with
      | buf -> Some buf
      | exception _ -> None)

let contains_substring ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec scan i =
    i + lsub <= ls && (String.equal (String.sub s i lsub) sub || scan (i + 1))
  in
  scan 0

(* The codecs already stamp failures with the source name and byte/line
   offset; this backstop guarantees no loader error escapes without at
   least the file name (e.g. a [Failure] from a layer below the codecs). *)
let with_error_context path f =
  try f () with
  | Failure msg when not (contains_substring ~sub:path msg) ->
      failwith (Printf.sprintf "%s: %s" path msg)

let read_file path =
  let t0 = Lp_obs.Timings.now () in
  let bytes_read = ref 0 in
  let t =
    with_error_context path (fun () ->
        match map_file path with
        | Some buf
          when Bigarray.Array1.dim buf >= 4
               && String.equal
                    (String.init 4 (Bigarray.Array1.get buf))
                    Binio.magic ->
            bytes_read := Bigarray.Array1.dim buf;
            let t = Binio.of_bigarray ~name:path buf in
            Lp_obs.Timings.count "trace.decodes" 1;
            t
        | _ ->
            let s = In_channel.with_open_bin path In_channel.input_all in
            bytes_read := String.length s;
            of_string ~name:path s)
  in
  Lp_obs.Timings.record
    ~stage:("load/" ^ Filename.basename path)
    ~items:(Array.length t.Trace.events)
    (Lp_obs.Timings.now () -. t0);
  Lp_obs.Timings.count "trace.bytes_read" !bytes_read;
  Lp_obs.Timings.count "trace.events_read" (Array.length t.Trace.events);
  Lp_obs.Timings.note_peak_heap ();
  t

(* The binary writers pick the lowest version that can express the
   trace: realloc-bearing traces need the sharded v3 layout (v1/v2 have
   no realloc opcode and their writers refuse), realloc-free traces stay
   byte-identical to older writers. *)
let to_string_for ~format t =
  match format with
  | Binary -> if Trace.has_realloc t then Binio.to_string_v3 t else Binio.to_string t
  | Text -> Textio.to_string t

let write_file ?format path t =
  let format = match format with Some f -> f | None -> format_for_path path in
  let t0 = Lp_obs.Timings.now () in
  let s = to_string_for ~format t in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
  Lp_obs.Timings.record
    ~stage:("store/" ^ Filename.basename path)
    ~items:(Array.length t.Trace.events)
    (Lp_obs.Timings.now () -. t0);
  Lp_obs.Timings.count "trace.bytes_written" (String.length s)

let output ?(format = Text) oc t =
  match format with
  | Binary -> if Trace.has_realloc t then Binio.output_v3 oc t else Binio.output oc t
  | Text -> Textio.output oc t
