type format = Text | Binary

let format_for_path path = if Filename.check_suffix path ".lpt" then Binary else Text

let detect s =
  if String.length s >= 4 && String.equal (String.sub s 0 4) Binio.magic then
    Binary
  else Text

let of_string ?name s =
  match detect s with
  | Binary -> Binio.of_string ?name s
  | Text -> Textio.of_string ?name s

let input ?name ic = of_string ?name (In_channel.input_all ic)

let read_file path =
  let t0 = Lp_obs.Timings.now () in
  let s = In_channel.with_open_bin path In_channel.input_all in
  let t = of_string ~name:path s in
  Lp_obs.Timings.record
    ~stage:("load/" ^ Filename.basename path)
    ~items:(Array.length t.Trace.events)
    (Lp_obs.Timings.now () -. t0);
  Lp_obs.Timings.count "trace.bytes_read" (String.length s);
  Lp_obs.Timings.count "trace.events_read" (Array.length t.Trace.events);
  t

let to_string_for ~format t =
  match format with Binary -> Binio.to_string t | Text -> Textio.to_string t

let write_file ?format path t =
  let format = match format with Some f -> f | None -> format_for_path path in
  let t0 = Lp_obs.Timings.now () in
  let s = to_string_for ~format t in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
  Lp_obs.Timings.record
    ~stage:("store/" ^ Filename.basename path)
    ~items:(Array.length t.Trace.events)
    (Lp_obs.Timings.now () -. t0);
  Lp_obs.Timings.count "trace.bytes_written" (String.length s)

let output ?(format = Text) oc t =
  match format with Binary -> Binio.output oc t | Text -> Textio.output oc t
