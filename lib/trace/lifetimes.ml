type t = {
  birth_clock : int array;
  lifetime : int array;
  survived : bool array;
  end_clock : int;
}

let compute (trace : Trace.t) =
  let n = trace.n_objects in
  let birth_clock = Array.make n 0 in
  let lifetime = Array.make n 0 in
  let survived = Array.make n true in
  let clock = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          birth_clock.(obj) <- !clock;
          clock := !clock + size
      | Event.Free { obj; _ } ->
          lifetime.(obj) <- !clock - birth_clock.(obj);
          survived.(obj) <- false
      | Event.Realloc { old_size; new_size; _ } ->
          (* a resize advances the allocation clock by the grown delta but
             keeps the object's birth: its lifetime spans its resizes *)
          clock := !clock + max 0 (new_size - old_size)
      | Event.Touch _ -> ())
    trace.events;
  let end_clock = !clock in
  for obj = 0 to n - 1 do
    if survived.(obj) then lifetime.(obj) <- end_clock - birth_clock.(obj)
  done;
  { birth_clock; lifetime; survived; end_clock }

let is_short_lived t ~threshold obj =
  (not t.survived.(obj)) && t.lifetime.(obj) < threshold

type summary = {
  hist : Lp_quantile.Histogram.t;
  short_bytes : int;
  total_alloc_bytes : int;
}

(* Streaming twin of [compute] + the byte-weighted fold the lifetimes CLI
   does on top of it: one pass over the source keeping per-object birth
   state and one (object, size) record per allocation, then a deferred
   fold in allocation order into the P² quantile histogram — the same
   observation sequence as the materialized path, so the histogram state
   (and its quartiles) is identical.  Memory scales with the allocation
   count, never the event count. *)
let summary_source ~threshold (src : Source.t) =
  let hint =
    match src.Source.n_objects_hint with Some n -> max 1 n | None -> 1024
  in
  let a_obj = Grow.create 1024 in
  let a_size = Grow.create 1024 in
  let n_allocs = ref 0 in
  let birth = Grow.create hint in
  let lifetime = Grow.create hint in
  let survived = Grow.create ~default:1 hint in
  let clock = ref 0 in
  Source.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          Grow.push a_obj obj;
          Grow.push a_size size;
          incr n_allocs;
          Grow.set birth obj !clock;
          clock := !clock + size
      | Event.Free { obj; _ } ->
          Grow.set lifetime obj (!clock - Grow.get birth obj);
          Grow.set survived obj 0
      | Event.Realloc { old_size; new_size; _ } ->
          clock := !clock + max 0 (new_size - old_size)
      | Event.Touch _ -> ())
    src;
  let end_clock = !clock in
  let hist = Lp_quantile.Histogram.create () in
  let short = ref 0 and total = ref 0 in
  for i = 0 to !n_allocs - 1 do
    let obj = Grow.get a_obj i in
    let size = Grow.get a_size i in
    let surv = Grow.get survived obj = 1 in
    let lt =
      if surv then end_clock - Grow.get birth obj else Grow.get lifetime obj
    in
    Lp_quantile.Histogram.observe_weighted hist ~weight:size (float_of_int lt);
    total := !total + size;
    if (not surv) && lt < threshold then short := !short + size
  done;
  { hist; short_bytes = !short; total_alloc_bytes = !total }

(* The range quarter of [summary_source]: replay one sharded chunk range
   seeded with its carry-in birth clocks and the absolute allocation
   clock, recording the range's allocations (in order) and, per object
   the range wrote, the range-final birth/lifetime/survival values.
   Applying the folds of a covering partition in range order ([resolve])
   reconstructs exactly the arrays the sequential pass ends with, because
   each fold's end values equal the sequential machine's state at that
   point of the stream: births are absolute clocks (seeded from
   [rg_start_clock]), a free's lifetime subtracts either an in-range
   birth or the carried pre-range birth clock, and later ranges overwrite
   earlier ones just as later events overwrite earlier ones. *)
type range_fold = {
  rf_a_obj : int array;
  rf_a_size : int array;
  rf_touched : int array;
  rf_born : int array;
  rf_birth : int array;
  rf_freed : int array;
  rf_life : int array;
  rf_end_clock : int;
}

(* Incremental form of the range fold: the same state machine exposed one
   event at a time, so passes that interleave their own per-event work
   with lifetime accumulation (the audit engine's analyses) drive a
   [Fold.t] from their own event loop instead of duplicating the clock
   and birth/free bookkeeping.  [fold_range] below is the one-shot loop
   over it. *)
module Fold = struct
  type t = {
    f_a_obj : Grow.t;
    f_a_size : Grow.t;
    f_birth : Grow.t;
    f_born : Grow.t;
    f_freed : Grow.t;
    f_life : Grow.t;
    f_touched : Grow.t;
    f_stamp : Grow.t;
    mutable f_n_allocs : int;
    mutable f_clock : int;
  }

  let create ?(hint = 64) ~start_clock ~carry () =
    let hint = max hint (Array.length carry) in
    let t =
      {
        f_a_obj = Grow.create 1024;
        f_a_size = Grow.create 1024;
        f_birth = Grow.create hint;
        f_born = Grow.create hint;
        f_freed = Grow.create hint;
        f_life = Grow.create hint;
        f_touched = Grow.create 256;
        f_stamp = Grow.create hint;
        f_n_allocs = 0;
        f_clock = start_clock;
      }
    in
    Array.iter
      (fun (cr : Binio.carry) ->
        Grow.set t.f_birth cr.Binio.cr_obj cr.Binio.cr_birth_clock)
      carry;
    t

  let clock t = t.f_clock
  let n_allocs t = t.f_n_allocs

  let touch t obj =
    if Grow.get t.f_stamp obj = 0 then begin
      Grow.set t.f_stamp obj 1;
      Grow.push t.f_touched obj
    end

  let step t = function
    | Event.Alloc { obj; size; _ } ->
        Grow.push t.f_a_obj obj;
        Grow.push t.f_a_size size;
        t.f_n_allocs <- t.f_n_allocs + 1;
        touch t obj;
        Grow.set t.f_born obj 1;
        Grow.set t.f_birth obj t.f_clock;
        t.f_clock <- t.f_clock + size
    | Event.Free { obj; _ } ->
        touch t obj;
        Grow.set t.f_freed obj 1;
        Grow.set t.f_life obj (t.f_clock - Grow.get t.f_birth obj)
    | Event.Realloc { old_size; new_size; _ } ->
        t.f_clock <- t.f_clock + max 0 (new_size - old_size)
    | Event.Touch _ -> ()

  let finish t =
    let touched = Grow.to_array t.f_touched in
    {
      rf_a_obj = Grow.to_array t.f_a_obj;
      rf_a_size = Grow.to_array t.f_a_size;
      rf_touched = touched;
      rf_born = Array.map (Grow.get t.f_born) touched;
      rf_birth = Array.map (Grow.get t.f_birth) touched;
      rf_freed = Array.map (Grow.get t.f_freed) touched;
      rf_life = Array.map (Grow.get t.f_life) touched;
      rf_end_clock = t.f_clock;
    }
end

let fold_range ?on_alloc (rg : Sharded.range) =
  let src = Sharded.range_source rg in
  let fold =
    Fold.create
      ~hint:(max 64 (Array.length rg.Sharded.rg_carry))
      ~start_clock:rg.Sharded.rg_start_clock ~carry:rg.Sharded.rg_carry ()
  in
  Source.iter
    (fun ev ->
      (match (ev, on_alloc) with
      | Event.Alloc { size; chain; key; _ }, Some f -> f src ~size ~chain ~key
      | _ -> ());
      Fold.step fold ev)
    src;
  Fold.finish fold

(* final per-object state after applying a covering partition's folds in
   range order; growable so corrupt traces with out-of-range object ids
   degrade exactly like the sequential pass instead of crashing *)
type resolved = {
  rv_birth : Grow.t;
  rv_life : Grow.t;
  rv_surv : Grow.t;
  rv_end_clock : int;
}

let resolve folds =
  let birth = Grow.create 1024 in
  let life = Grow.create 1024 in
  let surv = Grow.create ~default:1 1024 in
  let end_clock =
    List.fold_left (fun _ f -> f.rf_end_clock) 0 folds
  in
  List.iter
    (fun f ->
      Array.iteri
        (fun i obj ->
          if f.rf_born.(i) = 1 then Grow.set birth obj f.rf_birth.(i);
          if f.rf_freed.(i) = 1 then begin
            Grow.set life obj f.rf_life.(i);
            Grow.set surv obj 0
          end)
        f.rf_touched)
    folds;
  { rv_birth = birth; rv_life = life; rv_surv = surv; rv_end_clock = end_clock }

let resolved_survived r obj = Grow.get r.rv_surv obj = 1

let resolved_lifetime r obj =
  if resolved_survived r obj then r.rv_end_clock - Grow.get r.rv_birth obj
  else Grow.get r.rv_life obj

let resolved_end_clock r = r.rv_end_clock

let merge_summaries ~threshold folds =
  let r = resolve folds in
  let hist = Lp_quantile.Histogram.create () in
  let short = ref 0 and total = ref 0 in
  List.iter
    (fun f ->
      Array.iteri
        (fun i obj ->
          let size = f.rf_a_size.(i) in
          let surv = resolved_survived r obj in
          let lt = resolved_lifetime r obj in
          Lp_quantile.Histogram.observe_weighted hist ~weight:size
            (float_of_int lt);
          total := !total + size;
          if (not surv) && lt < threshold then short := !short + size)
        f.rf_a_obj)
    folds;
  { hist; short_bytes = !short; total_alloc_bytes = !total }

let max_live (trace : Trace.t) =
  let sizes = Array.make trace.n_objects 0 in
  let live_bytes = ref 0 and live_objs = ref 0 in
  let max_bytes = ref 0 and max_objs = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          sizes.(obj) <- size;
          live_bytes := !live_bytes + size;
          incr live_objs;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes;
          if !live_objs > !max_objs then max_objs := !live_objs
      | Event.Free { obj; _ } ->
          live_bytes := !live_bytes - sizes.(obj);
          decr live_objs
      | Event.Realloc { obj; new_size; _ } ->
          live_bytes := !live_bytes - sizes.(obj) + new_size;
          sizes.(obj) <- new_size;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes
      | Event.Touch _ -> ())
    trace.events;
  (!max_bytes, !max_objs)
