type t = {
  birth_clock : int array;
  lifetime : int array;
  survived : bool array;
  end_clock : int;
}

let compute (trace : Trace.t) =
  let n = trace.n_objects in
  let birth_clock = Array.make n 0 in
  let lifetime = Array.make n 0 in
  let survived = Array.make n true in
  let clock = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          birth_clock.(obj) <- !clock;
          clock := !clock + size
      | Event.Free { obj; _ } ->
          lifetime.(obj) <- !clock - birth_clock.(obj);
          survived.(obj) <- false
      | Event.Touch _ -> ())
    trace.events;
  let end_clock = !clock in
  for obj = 0 to n - 1 do
    if survived.(obj) then lifetime.(obj) <- end_clock - birth_clock.(obj)
  done;
  { birth_clock; lifetime; survived; end_clock }

let is_short_lived t ~threshold obj =
  (not t.survived.(obj)) && t.lifetime.(obj) < threshold

type summary = {
  hist : Lp_quantile.Histogram.t;
  short_bytes : int;
  total_alloc_bytes : int;
}

(* Streaming twin of [compute] + the byte-weighted fold the lifetimes CLI
   does on top of it: one pass over the source keeping per-object birth
   state and one (object, size) record per allocation, then a deferred
   fold in allocation order into the P² quantile histogram — the same
   observation sequence as the materialized path, so the histogram state
   (and its quartiles) is identical.  Memory scales with the allocation
   count, never the event count. *)
let summary_source ~threshold (src : Source.t) =
  let hint =
    match src.Source.n_objects_hint with Some n -> max 1 n | None -> 1024
  in
  let a_obj = Grow.create 1024 in
  let a_size = Grow.create 1024 in
  let n_allocs = ref 0 in
  let birth = Grow.create hint in
  let lifetime = Grow.create hint in
  let survived = Grow.create ~default:1 hint in
  let clock = ref 0 in
  Source.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          Grow.push a_obj obj;
          Grow.push a_size size;
          incr n_allocs;
          Grow.set birth obj !clock;
          clock := !clock + size
      | Event.Free { obj; _ } ->
          Grow.set lifetime obj (!clock - Grow.get birth obj);
          Grow.set survived obj 0
      | Event.Touch _ -> ())
    src;
  let end_clock = !clock in
  let hist = Lp_quantile.Histogram.create () in
  let short = ref 0 and total = ref 0 in
  for i = 0 to !n_allocs - 1 do
    let obj = Grow.get a_obj i in
    let size = Grow.get a_size i in
    let surv = Grow.get survived obj = 1 in
    let lt =
      if surv then end_clock - Grow.get birth obj else Grow.get lifetime obj
    in
    Lp_quantile.Histogram.observe_weighted hist ~weight:size (float_of_int lt);
    total := !total + size;
    if (not surv) && lt < threshold then short := !short + size
  done;
  { hist; short_bytes = !short; total_alloc_bytes = !total }

let max_live (trace : Trace.t) =
  let sizes = Array.make trace.n_objects 0 in
  let live_bytes = ref 0 and live_objs = ref 0 in
  let max_bytes = ref 0 and max_objs = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          sizes.(obj) <- size;
          live_bytes := !live_bytes + size;
          incr live_objs;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes;
          if !live_objs > !max_objs then max_objs := !live_objs
      | Event.Free { obj; _ } ->
          live_bytes := !live_bytes - sizes.(obj);
          decr live_objs
      | Event.Touch _ -> ())
    trace.events;
  (!max_bytes, !max_objs)
