type t = {
  birth_clock : int array;
  lifetime : int array;
  survived : bool array;
  end_clock : int;
}

let compute (trace : Trace.t) =
  let n = trace.n_objects in
  let birth_clock = Array.make n 0 in
  let lifetime = Array.make n 0 in
  let survived = Array.make n true in
  let clock = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          birth_clock.(obj) <- !clock;
          clock := !clock + size
      | Event.Free { obj; _ } ->
          lifetime.(obj) <- !clock - birth_clock.(obj);
          survived.(obj) <- false
      | Event.Touch _ -> ())
    trace.events;
  let end_clock = !clock in
  for obj = 0 to n - 1 do
    if survived.(obj) then lifetime.(obj) <- end_clock - birth_clock.(obj)
  done;
  { birth_clock; lifetime; survived; end_clock }

let is_short_lived t ~threshold obj =
  (not t.survived.(obj)) && t.lifetime.(obj) < threshold

let max_live (trace : Trace.t) =
  let sizes = Array.make trace.n_objects 0 in
  let live_bytes = ref 0 and live_objs = ref 0 in
  let max_bytes = ref 0 and max_objs = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; _ } ->
          sizes.(obj) <- size;
          live_bytes := !live_bytes + size;
          incr live_objs;
          if !live_bytes > !max_bytes then max_bytes := !live_bytes;
          if !live_objs > !max_objs then max_objs := !live_objs
      | Event.Free { obj; _ } ->
          live_bytes := !live_bytes - sizes.(obj);
          decr live_objs
      | Event.Touch _ -> ())
    trace.events;
  (!max_bytes, !max_objs)
