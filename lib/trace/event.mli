(** Allocation-trace events.

    A trace is the sequence of the allocation and deallocation events of one
    program execution, the same information Larus' AE tool gave the paper's
    authors: per allocation, the object's size and the raw call-chain (and
    the call-chain encryption key) at birth; per deallocation, the object.

    Objects are numbered densely in birth order, so [obj] doubles as an index
    into per-object arrays.  Chains are interned; [chain] is an index into
    the trace's chain table. *)

type t =
  | Alloc of { obj : int; size : int; chain : int; key : int; tag : int }
      (** Birth of object [obj]: [size] bytes, raw stack snapshot
          [chain] (an interned chain id), encryption key [key], and an
          interned type tag ([-1] when the program supplied none).  Tags
          support the paper's future-work experiment: predicting lifetimes
          from the object's type, as class-aware languages could. *)
  | Free of { obj : int; size : int }
      (** Death of object [obj].  [size] is the size the trace {e declares}
          at the free — the sized-deallocation hint of [free_sized]/sized
          [delete] — or [-1] when the trace does not declare one (our own
          tracing runtime never does; external traces may).  The replay
          engine ignores it; the trace linter cross-checks it against the
          size recorded at the object's allocation. *)
  | Realloc of {
      obj : int;
      old_size : int;
      new_size : int;
      chain : int;
      key : int;
      tag : int;
    }
      (** Resize of live object [obj] from [old_size] to [new_size] bytes.
          The object keeps its identity — its lifetime spans resizes and
          ends at its single [Free] — so growable buffers are no longer
          mislabeled as unrelated free+alloc pairs.  [chain]/[key]/[tag]
          snapshot the stack at the resize site, exactly as [Alloc] does
          at birth.  [old_size] is the size the trace {e declares} the
          object had before the resize; the linter cross-checks it against
          the tracked current size ([realloc-size-regression]). *)
  | Touch of { obj : int; count : int }
      (** [count] heap references to [obj] at this point of the program.
          Consecutive touches of one object are merged by the builder,
          which replaces the pending event with a fresh record — events
          are immutable once emitted, so cursors handed to
          [Parallel.map_sources] never alias a mutated record. *)

val pp : Format.formatter -> t -> unit
