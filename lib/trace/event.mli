(** Allocation-trace events.

    A trace is the sequence of the allocation and deallocation events of one
    program execution, the same information Larus' AE tool gave the paper's
    authors: per allocation, the object's size and the raw call-chain (and
    the call-chain encryption key) at birth; per deallocation, the object.

    Objects are numbered densely in birth order, so [obj] doubles as an index
    into per-object arrays.  Chains are interned; [chain] is an index into
    the trace's chain table. *)

type t =
  | Alloc of { obj : int; size : int; chain : int; key : int; tag : int }
      (** Birth of object [obj]: [size] bytes, raw stack snapshot
          [chain] (an interned chain id), encryption key [key], and an
          interned type tag ([-1] when the program supplied none).  Tags
          support the paper's future-work experiment: predicting lifetimes
          from the object's type, as class-aware languages could. *)
  | Free of { obj : int; size : int }
      (** Death of object [obj].  [size] is the size the trace {e declares}
          at the free — the sized-deallocation hint of [free_sized]/sized
          [delete] — or [-1] when the trace does not declare one (our own
          tracing runtime never does; external traces may).  The replay
          engine ignores it; the trace linter cross-checks it against the
          size recorded at the object's allocation. *)
  | Touch of { obj : int; mutable count : int }
      (** [count] heap references to [obj] at this point of the program.
          Consecutive touches of one object are merged.  The count is
          mutable only so the trace builder can merge in place. *)

val pp : Format.formatter -> t -> unit
