(** Text serialization of traces.

    A simple line-oriented format so traces can be written to disk by the
    CLI, inspected with ordinary text tools, and read back:

    {v
    trace <program> <input>
    func <id> <name>
    chain <id> <func-id> <func-id> ...
    tag <id> <name>
    counters <instructions> <calls> <heap-refs> <total-refs>
    a <obj> <size> <chain-id> <key> <tag> <refs>
    f <obj> [<declared-size>]
    r <obj> <count>
    end
    v}

    The optional declared size on [f] lines records a sized-deallocation
    hint (cf. C++ sized [delete]); it is absent from traces our runtime
    produces and, when present, is checked against the allocation by the
    trace linter rather than by the parser.

    Allocation lines carry the object's final heap-reference count so a
    round-tripped trace preserves the locality statistics.

    Program, function and tag names are escaped on output so that spaces,
    tabs, newlines and backslashes survive the space-separated format:
    ['\\']->["\\\\"], [' ']->["\\s"], ['\n']->["\\n"], ['\t']->["\\t"],
    ['\r']->["\\r"].  The parser also accepts multi-token (unescaped)
    names written by older versions, re-joined with single spaces.

    For bulk storage prefer the binary format ({!Binio}); {!Io} reads
    either transparently. *)

val escape_name : string -> string
(** The injective ASCII escaping described above.  Exposed for other
    line-oriented formats (the predictor-model codec) so one escaping
    convention serves the whole project. *)

val unescape : string -> string
(** Inverse of {!escape_name}.
    @raise Failure on a dangling or unknown escape. *)

val output : out_channel -> Trace.t -> unit

val input : ?name:string -> in_channel -> Trace.t
(** @raise Failure on malformed input.  The message carries [name]
    (default ["<trace>"], pass the file path when known), the line
    number, and for numeric fields the field name. *)

val to_string : Trace.t -> string

val of_string : ?name:string -> string -> Trace.t
(** @raise Failure on malformed input, as for {!input}. *)
