(** Text serialization of traces.

    A simple line-oriented format so traces can be written to disk by the
    CLI, inspected with ordinary text tools, and read back:

    {v
    trace <program> <input>
    func <id> <name>
    chain <id> <func-id> <func-id> ...
    tag <id> <name>
    counters <instructions> <calls> <heap-refs> <total-refs>
    a <obj> <size> <chain-id> <key> <tag> <refs>
    f <obj> [<declared-size>]
    r <obj> <count>
    end
    v}

    The optional declared size on [f] lines records a sized-deallocation
    hint (cf. C++ sized [delete]); it is absent from traces our runtime
    produces and, when present, is checked against the allocation by the
    trace linter rather than by the parser.

    Allocation lines carry the object's final heap-reference count so a
    round-tripped trace preserves the locality statistics.

    Program, function and tag names are escaped on output so that spaces,
    tabs, newlines and backslashes survive the space-separated format:
    ['\\']->["\\\\"], [' ']->["\\s"], ['\n']->["\\n"], ['\t']->["\\t"],
    ['\r']->["\\r"].  The parser also accepts multi-token (unescaped)
    names written by older versions, re-joined with single spaces.

    For bulk storage prefer the binary format ({!Binio}); {!Io} reads
    either transparently. *)

val escape_name : string -> string
(** The injective ASCII escaping described above.  Exposed for other
    line-oriented formats (the predictor-model codec) so one escaping
    convention serves the whole project. *)

val unescape : string -> string
(** Inverse of {!escape_name}.
    @raise Failure on a dangling or unknown escape. *)

val output : out_channel -> Trace.t -> unit

val input : ?name:string -> in_channel -> Trace.t
(** @raise Failure on malformed input.  The message carries [name]
    (default ["<trace>"], pass the file path when known), the line
    number, and for numeric fields the field name. *)

val to_string : Trace.t -> string

val of_string : ?name:string -> string -> Trace.t
(** @raise Failure on malformed input, as for {!input}. *)

(** {1 Incremental parsing}

    One-pass line-at-a-time parsing for {!Source}: the header
    declarations are consumed eagerly, then events are yielded one at a
    time without retaining the list.  Because the final object count is
    unknown until the stream ends, free/touch object ids are only checked
    to be non-negative — a forward reference the batch parser rejects at
    [finish] streams through and is left to the trace linter.  In
    exchange the parser requires the declaration order the writer
    produces: dense in-order [func]/[chain]/[tag] ids, and declarations
    before the events that reference them. *)

type stream = {
  s_program : string;
  s_input : string;
  s_funcs : Lp_callchain.Func.table;
  s_chain : int -> Lp_callchain.Chain.t;
  s_n_chains : unit -> int;
  s_tag : int -> string;
  s_n_tags : unit -> int;
  s_counters : unit -> int * int * int * int;
      (** [(instructions, calls, heap_refs, total_refs)] as parsed so far;
          final once the writer's header (which includes the counters
          line) has been consumed, i.e. from creation onward. *)
  s_refs : int -> int;
      (** declared per-object heap refs; final for an object once its
          alloc line has streamed past. *)
  s_n_objects : unit -> int;
  s_next : unit -> Event.t option;
}

val stream : ?name:string -> (unit -> string option) -> stream
(** [stream ~name next_line] parses the header (everything up to the
    first event line) eagerly and returns a cursor over the events.
    [next_line] yields lines without their trailing newline, [None] at
    end of file.
    @raise Failure on malformed input, with [name] and line number. *)
