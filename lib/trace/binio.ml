let magic = "LPTB"
let version = 1
let version_sized = 2
let end_marker = '\xE5'

(* Compact opcode space (see binio.mli for the layout):
   0x00/0x01 long allocs, 0x02 long free, 0x03 long touch,
   alloc_base..0x3F alloc at small site id, 0x40..0x7F free with small
   delta, 0x80..0xFF touch with 3-bit zigzag delta and 4-bit count.
   Version 1 packs allocs from 0x04.  Version 2 — emitted only when the
   trace contains declared (sized-deallocation) free sizes — shifts the
   packed-alloc base to 0x06 to make room for opcode 0x05, sized free
   (0x04 stays reserved); version-1 files keep their original byte
   layout. *)
let alloc_base_of_version v = if v >= version_sized then 0x06 else 0x04
let sized_free_op = 0x05

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

(* -- encoding ------------------------------------------------------------------ *)

let add_varint b n =
  if n < 0 then invalid_arg "Binio.output: negative value in unsigned field";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_zigzag b n = add_varint b (zigzag n)

let add_string b s =
  add_varint b (String.length s);
  Buffer.add_string b s

(* Events go to a side buffer first: encoding discovers the allocation-site
   table, which must precede them in the stream. *)
let encode_events ~file_version (t : Trace.t) =
  let alloc_base = alloc_base_of_version file_version in
  let max_packed_site = 0x40 - alloc_base in
  let b = Buffer.create 65536 in
  let sites = Hashtbl.create 64 in
  let site_defs = ref [] and n_sites = ref 0 in
  let intern_site chain key tag =
    let triple = (chain, key, tag) in
    match Hashtbl.find_opt sites triple with
    | Some id -> id
    | None ->
        let id = !n_sites in
        incr n_sites;
        Hashtbl.add sites triple id;
        site_defs := triple :: !site_defs;
        id
  in
  let prev_alloc = ref (-1) and prev_free = ref 0 and prev_touch = ref 0 in
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } ->
          let site = intern_site chain key tag in
          if obj = !prev_alloc + 1 then
            if site < max_packed_site then
              Buffer.add_char b (Char.unsafe_chr (alloc_base + site))
            else begin
              Buffer.add_char b '\x00';
              add_varint b site
            end
          else begin
            Buffer.add_char b '\x01';
            add_varint b obj;
            add_varint b site
          end;
          prev_alloc := obj;
          add_varint b size
      | Event.Free { obj; size } ->
          (if size >= 0 then begin
             (* sized free: rare (external traces only), so it gets the one
                long opcode rather than space in the packed ranges *)
             Buffer.add_char b (Char.unsafe_chr sized_free_op);
             add_zigzag b (obj - !prev_free);
             add_varint b size
           end
           else
             let z = zigzag (obj - !prev_free) in
             if z < 0x40 then Buffer.add_char b (Char.unsafe_chr (0x40 lor z))
             else begin
               Buffer.add_char b '\x02';
               add_varint b z
             end);
          prev_free := obj
      | Event.Touch { obj; count } ->
          let z = zigzag (obj - !prev_touch) in
          if z < 8 && count >= 1 && count <= 16 then
            Buffer.add_char b
              (Char.unsafe_chr (0x80 lor (z lsl 4) lor (count - 1)))
          else begin
            Buffer.add_char b '\x03';
            add_varint b z;
            add_varint b count
          end;
          prev_touch := obj)
    t.events;
  (Array.of_list (List.rev !site_defs), b)

let to_buffer b (t : Trace.t) =
  (* version 2 only when needed, so unsized traces stay byte-identical to
     version-1 writers *)
  let file_version =
    if
      Array.exists
        (function Event.Free { size; _ } -> size >= 0 | _ -> false)
        t.events
    then version_sized
    else version
  in
  let site_defs, events = encode_events ~file_version t in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr file_version);
  add_string b t.program;
  add_string b t.input;
  let names = Lp_callchain.Func.names t.funcs in
  add_varint b (Array.length names);
  Array.iter (add_string b) names;
  add_varint b (Array.length t.chains);
  Array.iter
    (fun chain ->
      add_varint b (Array.length chain);
      Array.iter (add_varint b) chain)
    t.chains;
  add_varint b (Array.length t.tags);
  Array.iter (add_string b) t.tags;
  add_varint b (Array.length site_defs);
  Array.iter
    (fun (chain, key, tag) ->
      add_varint b chain;
      add_zigzag b key;
      add_zigzag b tag)
    site_defs;
  add_varint b t.instructions;
  add_varint b t.calls;
  add_varint b t.heap_refs;
  add_varint b t.total_refs;
  add_varint b t.n_objects;
  Array.iter (add_varint b) t.obj_refs;
  add_varint b (Array.length t.events);
  Buffer.add_buffer b events;
  Buffer.add_char b end_marker

let to_string t =
  let b = Buffer.create 65536 in
  to_buffer b t;
  Buffer.contents b

let output oc t =
  let b = Buffer.create 65536 in
  to_buffer b t;
  Buffer.output_buffer oc b

(* -- decoding ------------------------------------------------------------------ *)

(* The decode cursor reads from a [Bigarray] of bytes rather than a
   string: [Unix.map_file] hands loaders a zero-copy view of an on-disk
   trace (see {!Io.read_file}), [Bigarray.Array1.unsafe_get] compiles to
   an inline load in native code, and a GC never moves the buffer while
   tens of millions of byte reads stream through.  [of_string] copies its
   input into a bigarray once, which is noise next to the decode itself. *)

type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type cursor = { buf : bytes_view; len : int; name : string; mutable pos : int }

let big_of_string s =
  let n = String.length s in
  let a = Bigarray.(Array1.create char c_layout n) in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (String.unsafe_get s i)
  done;
  a

let fail c msg =
  failwith (Printf.sprintf "Binio.input: %s: byte %d: %s" c.name c.pos msg)

let read_byte c =
  if c.pos >= c.len then fail c "unexpected end of input";
  let v = Char.code (Bigarray.Array1.unsafe_get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let read_varint c =
  let rec go shift acc =
    if shift > 62 then fail c "varint too long";
    let byte = read_byte c in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag c = unzigzag (read_varint c)

let read_string c =
  let len = read_varint c in
  if c.pos + len > c.len then fail c "truncated string";
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get c.buf (c.pos + i))
  done;
  c.pos <- c.pos + len;
  Bytes.unsafe_to_string b

let read_array c read =
  let n = read_varint c in
  (* cap the initial allocation: each element consumes at least one byte *)
  if n > c.len - c.pos then fail c "impossible element count";
  Array.init n (fun _ -> read c)

type header = {
  program : string;
  input : string;
  funcs : Lp_callchain.Func.table;
  chains : Lp_callchain.Chain.t array;
  tags : string array;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  n_objects : int;
  obj_refs : int array;
  n_events : int;
}

type decoder = {
  c : cursor;
  version : int;
  hdr : header;
  site_defs : (int * int * int) array;
  mutable remaining : int;
  mutable prev_alloc : int;
  mutable prev_free : int;
  mutable prev_touch : int;
  mutable closed : bool;
}

(* The header (interned tables, counters, per-object refs) precedes the
   event stream, so a decoder knows every id an event can reference before
   yielding the first event — that is what lets {!Source} stream [.lpt]
   files without materializing them. *)
let decoder ?(name = "<trace>") (buf : bytes_view) : decoder =
  let len = Bigarray.Array1.dim buf in
  let c = { buf; len; name; pos = 0 } in
  if
    len < 5
    || not (String.equal (String.init 4 (Bigarray.Array1.get buf)) magic)
  then fail c "bad magic (not a binary trace)";
  c.pos <- 4;
  let v = read_byte c in
  if v <> version && v <> version_sized then
    fail c (Printf.sprintf "unsupported version %d" v);
  let program = read_string c in
  let input = read_string c in
  let funcs = Lp_callchain.Func.create_table () in
  let n_funcs = read_varint c in
  for expect = 0 to n_funcs - 1 do
    let fname = read_string c in
    if Lp_callchain.Func.intern funcs fname <> expect then
      fail c (Printf.sprintf "duplicate function name %S" fname)
  done;
  let chains = read_array c (fun c -> read_array c read_varint) in
  Array.iter
    (Array.iter (fun f ->
         if f >= n_funcs then fail c (Printf.sprintf "chain references unknown function %d" f)))
    chains;
  let tags = read_array c read_string in
  let site_defs =
    read_array c (fun c ->
        let chain = read_varint c in
        if chain >= Array.length chains then
          fail c (Printf.sprintf "site references unknown chain %d" chain);
        let key = read_zigzag c in
        let tag = read_zigzag c in
        if tag >= Array.length tags then
          fail c (Printf.sprintf "site references unknown tag %d" tag);
        (chain, key, tag))
  in
  let instructions = read_varint c in
  let calls = read_varint c in
  let heap_refs = read_varint c in
  let total_refs = read_varint c in
  let n_objects = read_varint c in
  (* obj_refs is not length-prefixed: it has exactly n_objects entries *)
  if n_objects > c.len - c.pos then fail c "impossible object count";
  let obj_refs = Array.make n_objects 0 in
  for i = 0 to n_objects - 1 do
    obj_refs.(i) <- read_varint c
  done;
  let n_events = read_varint c in
  (* cap the event count: each event consumes at least one byte *)
  if n_events > c.len - c.pos then fail c "impossible element count";
  {
    c;
    version = v;
    hdr =
      {
        program;
        input;
        funcs;
        chains;
        tags;
        instructions;
        calls;
        heap_refs;
        total_refs;
        n_objects;
        obj_refs;
        n_events;
      };
    site_defs;
    remaining = n_events;
    prev_alloc = -1;
    prev_free = 0;
    prev_touch = 0;
    closed = false;
  }

let header d = d.hdr

let read_event d =
  let c = d.c in
  let alloc_base = alloc_base_of_version d.version in
  let site what id =
    if id < 0 || id >= Array.length d.site_defs then
      fail c (Printf.sprintf "%s references unknown site %d" what id);
    d.site_defs.(id)
  in
  let check_obj what obj =
    if obj < 0 || obj >= d.hdr.n_objects then
      fail c (Printf.sprintf "%s of out-of-range object %d" what obj);
    obj
  in
  let alloc obj (chain, key, tag) =
    let obj = check_obj "alloc" obj in
    d.prev_alloc <- obj;
    let size = read_varint c in
    Event.Alloc { obj; size; chain; key; tag }
  in
  let free ?(size = -1) delta =
    let obj = check_obj "free" (d.prev_free + delta) in
    d.prev_free <- obj;
    Event.Free { obj; size }
  in
  let touch delta count =
    let obj = check_obj "touch" (d.prev_touch + delta) in
    d.prev_touch <- obj;
    Event.Touch { obj; count }
  in
  match read_byte c with
  | 0x00 -> alloc (d.prev_alloc + 1) (site "alloc" (read_varint c))
  | 0x01 ->
      let obj = read_varint c in
      alloc obj (site "alloc" (read_varint c))
  | 0x02 -> free (unzigzag (read_varint c))
  | 0x03 ->
      let delta = read_zigzag c in
      touch delta (read_varint c)
  | op when d.version >= version_sized && op = sized_free_op ->
      let delta = read_zigzag c in
      free ~size:(read_varint c) delta
  | op when d.version >= version_sized && op < alloc_base ->
      fail c (Printf.sprintf "reserved opcode %#x" op)
  | op when op < 0x40 -> alloc (d.prev_alloc + 1) (site "alloc" (op - alloc_base))
  | op when op < 0x80 -> free (unzigzag (op land 0x3f))
  | op -> touch (unzigzag ((op lsr 4) land 0x7)) ((op land 0xf) + 1)

let decode_next d =
  if d.remaining > 0 then begin
    d.remaining <- d.remaining - 1;
    Some (read_event d)
  end
  else begin
    if not d.closed then begin
      d.closed <- true;
      if read_byte d.c <> Char.code end_marker then fail d.c "missing end marker";
      if d.c.pos <> d.c.len then fail d.c "trailing bytes after end marker"
    end;
    None
  end

let of_bigarray ?name (buf : bytes_view) : Trace.t =
  let d = decoder ?name buf in
  let h = d.hdr in
  let events = Array.make h.n_events (Event.Free { obj = -1; size = -1 }) in
  for i = 0 to h.n_events - 1 do
    match decode_next d with
    | Some e -> events.(i) <- e
    | None -> assert false
  done;
  (* consumes the end marker and rejects trailing bytes *)
  (match decode_next d with Some _ -> assert false | None -> ());
  {
    Trace.program = h.program;
    input = h.input;
    events;
    chains = h.chains;
    funcs = h.funcs;
    n_objects = h.n_objects;
    instructions = h.instructions;
    calls = h.calls;
    heap_refs = h.heap_refs;
    total_refs = h.total_refs;
    obj_refs = h.obj_refs;
    tags = h.tags;
  }

let of_string ?name s = of_bigarray ?name (big_of_string s)
let input ?name ic = of_string ?name (In_channel.input_all ic)
