let magic = "LPTB"
let version = 1
let version_sized = 2
let version_sharded = 3
let end_marker = '\xE5'
let default_chunk_events = 1 lsl 18

(* Compact opcode space (see binio.mli for the layout):
   0x00/0x01 long allocs, 0x02 long free, 0x03 long touch,
   alloc_base..0x3F alloc at small site id, 0x40..0x7F free with small
   delta, 0x80..0xFF touch with 3-bit zigzag delta and 4-bit count.
   Version 1 packs allocs from 0x04.  Version 2 — emitted only when the
   trace contains declared (sized-deallocation) free sizes — shifts the
   packed-alloc base to 0x06 to make room for opcode 0x05, sized free
   (0x04 stays reserved); version-1 files keep their original byte
   layout.  Version 3 claims the reserved 0x04 for realloc — v2 decoders
   keep failing on it, and the v1/v2 writer refuses realloc-bearing
   traces outright, so realloc never leaks into a version that cannot
   express it. *)
let alloc_base_of_version v = if v >= version_sized then 0x06 else 0x04
let sized_free_op = 0x05
let realloc_op = 0x04

(* Zigzag is a bijection on the full native int range: both shifts are
   width-relative ([lsl 1] deliberately wraps through the sign bit, which
   is undone by the matching [lsr 1]), so even [min_int]/[max_int] —
   e.g. extreme touch deltas near the int boundaries — round-trip. *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (-(v land 1))

(* -- encoding ------------------------------------------------------------------ *)

(* Emit the raw bit pattern of [n] as a varint, treating it as an
   unsigned [Sys.int_size]-bit quantity: the [lsr] loop terminates even
   when [n] is negative, which is how zigzagged values with the top bit
   set (|delta| >= 2^(int_size-2)) are carried. *)
let add_varint_bits b n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_varint b n =
  if n < 0 then invalid_arg "Binio.output: negative value in unsigned field";
  add_varint_bits b n

let add_zigzag b n = add_varint_bits b (zigzag n)

let add_string b s =
  add_varint b (String.length s);
  Buffer.add_string b s

(* Global interning of (chain, key, tag) triples in first-use order —
   shared by every file version, so the site table round-trips across
   version conversions byte-identically. *)
type site_interner = {
  si_ids : (int * int * int, int) Hashtbl.t;
  mutable si_defs : (int * int * int) list;  (* reversed *)
  mutable si_n : int;
}

let site_interner () = { si_ids = Hashtbl.create 64; si_defs = []; si_n = 0 }

let intern_site si chain key tag =
  let triple = (chain, key, tag) in
  match Hashtbl.find_opt si.si_ids triple with
  | Some id -> id
  | None ->
      let id = si.si_n in
      si.si_n <- id + 1;
      Hashtbl.add si.si_ids triple id;
      si.si_defs <- triple :: si.si_defs;
      id

(* Per-event encoding, shared by the whole-stream (v1/v2) and per-chunk
   (v3) writers: the delta state lives in the caller's refs, which v3
   resets at every chunk boundary so chunks decode standalone. *)
let encode_event ~alloc_base b si ~prev_alloc ~prev_free ~prev_touch
    ~prev_realloc = function
  | Event.Alloc { obj; size; chain; key; tag } ->
      let site = intern_site si chain key tag in
      let max_packed_site = 0x40 - alloc_base in
      if obj = !prev_alloc + 1 then
        if site < max_packed_site then
          Buffer.add_char b (Char.unsafe_chr (alloc_base + site))
        else begin
          Buffer.add_char b '\x00';
          add_varint b site
        end
      else begin
        Buffer.add_char b '\x01';
        add_varint b obj;
        add_varint b site
      end;
      prev_alloc := obj;
      add_varint b size
  | Event.Free { obj; size } ->
      (if size >= 0 then begin
         (* sized free: rare (external traces only), so it gets the one
            long opcode rather than space in the packed ranges *)
         Buffer.add_char b (Char.unsafe_chr sized_free_op);
         add_zigzag b (obj - !prev_free);
         add_varint b size
       end
       else
         (* [z] can be negative (wrapped zigzag of an extreme delta),
            so the packed test must check the sign too *)
         let z = zigzag (obj - !prev_free) in
         if z >= 0 && z < 0x40 then
           Buffer.add_char b (Char.unsafe_chr (0x40 lor z))
         else begin
           Buffer.add_char b '\x02';
           add_varint_bits b z
         end);
      prev_free := obj
  | Event.Realloc { obj; old_size; new_size; chain; key; tag } ->
      (* only the v3 writer reaches this arm: [to_buffer] rejects
         realloc-bearing traces before encoding *)
      let site = intern_site si chain key tag in
      Buffer.add_char b (Char.unsafe_chr realloc_op);
      add_zigzag b (obj - !prev_realloc);
      prev_realloc := obj;
      add_varint b site;
      add_varint b old_size;
      add_varint b new_size
  | Event.Touch { obj; count } ->
      let z = zigzag (obj - !prev_touch) in
      if z >= 0 && z < 8 && count >= 1 && count <= 16 then
        Buffer.add_char b (Char.unsafe_chr (0x80 lor (z lsl 4) lor (count - 1)))
      else begin
        Buffer.add_char b '\x03';
        add_varint_bits b z;
        add_varint b count
      end;
      prev_touch := obj

(* Events go to a side buffer first: encoding discovers the allocation-site
   table, which must precede them in the stream. *)
let encode_events ~file_version (t : Trace.t) =
  let alloc_base = alloc_base_of_version file_version in
  let b = Buffer.create 65536 in
  let si = site_interner () in
  let prev_alloc = ref (-1)
  and prev_free = ref 0
  and prev_touch = ref 0
  and prev_realloc = ref 0 in
  Array.iter
    (encode_event ~alloc_base b si ~prev_alloc ~prev_free ~prev_touch
       ~prev_realloc)
    t.events;
  (Array.of_list (List.rev si.si_defs), b)

let to_buffer b (t : Trace.t) =
  if Array.exists (function Event.Realloc _ -> true | _ -> false) t.events then
    invalid_arg
      "Binio.output: realloc events require the version-3 writer (to_buffer_v3)";
  (* version 2 only when needed, so unsized traces stay byte-identical to
     version-1 writers *)
  let file_version =
    if
      Array.exists
        (function Event.Free { size; _ } -> size >= 0 | _ -> false)
        t.events
    then version_sized
    else version
  in
  let site_defs, events = encode_events ~file_version t in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr file_version);
  add_string b t.program;
  add_string b t.input;
  let names = Lp_callchain.Func.names t.funcs in
  add_varint b (Array.length names);
  Array.iter (add_string b) names;
  add_varint b (Array.length t.chains);
  Array.iter
    (fun chain ->
      add_varint b (Array.length chain);
      Array.iter (add_varint b) chain)
    t.chains;
  add_varint b (Array.length t.tags);
  Array.iter (add_string b) t.tags;
  add_varint b (Array.length site_defs);
  Array.iter
    (fun (chain, key, tag) ->
      add_varint b chain;
      add_zigzag b key;
      add_zigzag b tag)
    site_defs;
  add_varint b t.instructions;
  add_varint b t.calls;
  add_varint b t.heap_refs;
  add_varint b t.total_refs;
  add_varint b t.n_objects;
  Array.iter (add_varint b) t.obj_refs;
  add_varint b (Array.length t.events);
  Buffer.add_buffer b events;
  Buffer.add_char b end_marker

let to_string t =
  let b = Buffer.create 65536 in
  to_buffer b t;
  Buffer.contents b

let output oc t =
  let b = Buffer.create 65536 in
  to_buffer b t;
  Buffer.output_buffer oc b

(* -- version 3: the sharded layout --------------------------------------------- *)

(* [.lpt] v3 splits the event stream into fixed-size chunks so a reader
   can decode any chunk range without touching what precedes it:

   - the interned tables arrive as per-chunk {i prefix extensions} — each
     chunk carries only the table entries that first become needed there,
     appended in the same global id order as v1/v2, and the last chunk
     tops every table up to its full length (so ids, and therefore the
     v2<->v3 round trip, are preserved exactly);
   - each chunk opens with a {i carry-in set}: the pre-chunk replay state
     (last-alloc size/event/chain, birth clock, first-free event) of
     every object the chunk references but did not itself allocate first,
     which is exactly what a mid-trace fold needs to continue the
     sequential state machines;
   - event delta state (prev alloc/free/touch) resets at each chunk
     boundary, so a chunk's events decode standalone;
   - a footer indexes every chunk: byte offset, first event index, event
     count, plus the replay counters at chunk entry (next expected
     object, allocation clock, live bytes/objects).  The footer's own
     byte offset sits in a fixed-width slot just before the end marker,
     so a seeking reader finds it from the file tail in O(1).

   Sequential readers never need the footer — in-chunk headers carry
   everything — which keeps v3 streamable from a pipe. *)

let add_fixed64 b n =
  for i = 0 to 7 do
    Buffer.add_char b (Char.unsafe_chr ((n lsr (8 * i)) land 0xff))
  done

(* pre-chunk replay state of one carried-in object *)
type carry = {
  cr_obj : int;
  cr_size : int;  (** size of the object's last allocation *)
  cr_alloc_event : int;  (** event index of that allocation *)
  cr_alloc_chain : int;  (** chain id of that allocation *)
  cr_birth_clock : int;  (** allocation clock just before it *)
  cr_freed_at : int;  (** event index of the object's first free, -1 live *)
}

let to_buffer_v3 ?(chunk_events = default_chunk_events) b (t : Trace.t) =
  if chunk_events < 1 then
    invalid_arg "Binio.to_buffer_v3: chunk_events must be positive";
  let n_events = Array.length t.events in
  let n_chunks = max 1 ((n_events + chunk_events - 1) / chunk_events) in
  let names = Lp_callchain.Func.names t.funcs in
  let si = site_interner () in
  let alloc_base = alloc_base_of_version version_sharded in
  (* emitted table prefixes *)
  let funcs_done = ref 0
  and chains_done = ref 0
  and tags_done = ref 0
  and sites_done = ref 0 in
  (* per-object replay state feeding the carry-in sets and the footer *)
  let hint = max 16 t.n_objects in
  let born = Grow.create hint in
  let osize = Grow.create hint in
  let oalloc_ev = Grow.create ~default:(-1) hint in
  let oalloc_chain = Grow.create ~default:(-1) hint in
  let obirth = Grow.create hint in
  let ofreed = Grow.create ~default:(-1) hint in
  (* stamp of the chunk that last pulled an object into a carry set *)
  let carried = Grow.create ~default:(-1) hint in
  let clock = ref 0
  and live_bytes = ref 0
  and live_objs = ref 0
  and next_obj = ref 0 in
  let footer_entries = ref [] in
  (* header *)
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version_sharded);
  add_string b t.program;
  add_string b t.input;
  add_varint b t.instructions;
  add_varint b t.calls;
  add_varint b t.heap_refs;
  add_varint b t.total_refs;
  add_varint b t.n_objects;
  Array.iter (add_varint b) t.obj_refs;
  add_varint b n_events;
  add_varint b chunk_events;
  add_varint b n_chunks;
  for chunk = 0 to n_chunks - 1 do
    let lo = chunk * chunk_events in
    let hi = min n_events (lo + chunk_events) in
    let offset = Buffer.length b in
    footer_entries :=
      (offset, lo, hi - lo, !next_obj, !clock, !live_bytes, !live_objs)
      :: !footer_entries;
    (* pass 1: the carry-in set is the pre-chunk state of every object the
       chunk references that was already born, snapshotted before any of
       the chunk's own events apply *)
    let carry = ref [] in
    for i = lo to hi - 1 do
      let obj =
        match t.events.(i) with
        | Event.Alloc { obj; _ }
        | Event.Free { obj; _ }
        | Event.Realloc { obj; _ }
        | Event.Touch { obj; _ } ->
            obj
      in
      if
        obj >= 0
        && Grow.get born obj = 1
        && Grow.get carried obj <> chunk
      then begin
        Grow.set carried obj chunk;
        carry :=
          {
            cr_obj = obj;
            cr_size = Grow.get osize obj;
            cr_alloc_event = Grow.get oalloc_ev obj;
            cr_alloc_chain = Grow.get oalloc_chain obj;
            cr_birth_clock = Grow.get obirth obj;
            cr_freed_at = Grow.get ofreed obj;
          }
          :: !carry
      end
    done;
    let carry =
      List.sort (fun a b -> compare a.cr_obj b.cr_obj) !carry
    in
    (* pass 2: encode events (reset delta state, global site interning)
       while updating the replay state *)
    let events_buf = Buffer.create 65536 in
    let prev_alloc = ref (-1)
    and prev_free = ref 0
    and prev_touch = ref 0
    and prev_realloc = ref 0 in
    for i = lo to hi - 1 do
      encode_event ~alloc_base events_buf si ~prev_alloc ~prev_free ~prev_touch
        ~prev_realloc t.events.(i);
      match t.events.(i) with
      | Event.Alloc { obj; size; chain; _ } ->
          if obj >= 0 then begin
            Grow.set born obj 1;
            Grow.set osize obj size;
            Grow.set oalloc_ev obj i;
            Grow.set oalloc_chain obj chain;
            Grow.set obirth obj !clock;
            Grow.set ofreed obj (-1);
            if obj >= !next_obj then next_obj := obj + 1
          end
          else incr next_obj;
          clock := !clock + size;
          live_bytes := !live_bytes + size;
          incr live_objs
      | Event.Free { obj; _ } ->
          if obj >= 0 then begin
            live_bytes := !live_bytes - Grow.get osize obj;
            if Grow.get born obj = 1 && Grow.get ofreed obj = -1 then
              Grow.set ofreed obj i
          end;
          decr live_objs
      | Event.Realloc { obj; old_size; new_size; _ } ->
          (* the carry-in size of a later chunk must be the current
             (post-resize) size, so [osize] tracks it; the clock grows by
             the grown delta only, live bytes by the tracked delta —
             mirroring the stats folds these counters seed *)
          if obj >= 0 then begin
            live_bytes := !live_bytes - Grow.get osize obj + new_size;
            Grow.set osize obj new_size
          end;
          clock := !clock + max 0 (new_size - old_size)
      | Event.Touch _ -> ()
    done;
    (* table prefix extensions: everything the chunk's new sites pull in,
       and the full remainder on the last chunk *)
    let last = chunk = n_chunks - 1 in
    let new_sites =
      List.filteri (fun i _ -> i >= !sites_done) (List.rev si.si_defs)
    in
    let chains_hi = ref !chains_done and tags_hi = ref !tags_done in
    List.iter
      (fun (chain, _key, tag) ->
        if chain >= !chains_hi then chains_hi := chain + 1;
        if tag >= !tags_hi then tags_hi := tag + 1)
      new_sites;
    if last then begin
      chains_hi := Array.length t.chains;
      tags_hi := Array.length t.tags
    end;
    let funcs_hi = ref !funcs_done in
    for cid = !chains_done to !chains_hi - 1 do
      Array.iter
        (fun f -> if f >= !funcs_hi then funcs_hi := f + 1)
        t.chains.(cid)
    done;
    if last then funcs_hi := Array.length names;
    add_varint b (!funcs_hi - !funcs_done);
    for f = !funcs_done to !funcs_hi - 1 do
      add_string b names.(f)
    done;
    funcs_done := !funcs_hi;
    add_varint b (!chains_hi - !chains_done);
    for cid = !chains_done to !chains_hi - 1 do
      add_varint b (Array.length t.chains.(cid));
      Array.iter (add_varint b) t.chains.(cid)
    done;
    chains_done := !chains_hi;
    add_varint b (!tags_hi - !tags_done);
    for tg = !tags_done to !tags_hi - 1 do
      add_string b t.tags.(tg)
    done;
    tags_done := !tags_hi;
    add_varint b (List.length new_sites);
    List.iter
      (fun (chain, key, tag) ->
        add_varint b chain;
        add_zigzag b key;
        add_zigzag b tag)
      new_sites;
    sites_done := si.si_n;
    (* carry-in set, ascending object ids, delta-coded *)
    add_varint b (List.length carry);
    let prev_obj = ref (-1) in
    List.iter
      (fun cr ->
        add_varint b (cr.cr_obj - !prev_obj);
        prev_obj := cr.cr_obj;
        add_varint b cr.cr_size;
        add_varint b cr.cr_alloc_event;
        add_varint b cr.cr_alloc_chain;
        add_varint b cr.cr_birth_clock;
        add_varint b (cr.cr_freed_at + 1))
      carry;
    add_varint b (hi - lo);
    Buffer.add_buffer b events_buf
  done;
  let footer_pos = Buffer.length b in
  add_varint b n_chunks;
  List.iter
    (fun (offset, first_event, n_ev, nobj, sclock, lbytes, lobjs) ->
      add_varint b offset;
      add_varint b first_event;
      add_varint b n_ev;
      add_varint b nobj;
      add_varint b sclock;
      add_zigzag b lbytes;
      add_zigzag b lobjs)
    (List.rev !footer_entries);
  add_fixed64 b footer_pos;
  Buffer.add_char b end_marker

let to_string_v3 ?chunk_events t =
  let b = Buffer.create 65536 in
  to_buffer_v3 ?chunk_events b t;
  Buffer.contents b

let output_v3 ?chunk_events oc t =
  let b = Buffer.create 65536 in
  to_buffer_v3 ?chunk_events b t;
  Buffer.output_buffer oc b

(* -- decoding ------------------------------------------------------------------ *)

(* The decode cursor reads from a [Bigarray] of bytes rather than a
   string: [Unix.map_file] hands loaders a zero-copy view of an on-disk
   trace (see {!Io.read_file}), [Bigarray.Array1.unsafe_get] compiles to
   an inline load in native code, and a GC never moves the buffer while
   tens of millions of byte reads stream through.  [of_string] copies its
   input into a bigarray once, which is noise next to the decode itself. *)

type bytes_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type cursor = { buf : bytes_view; len : int; name : string; mutable pos : int }

let big_of_string s =
  let n = String.length s in
  let a = Bigarray.(Array1.create char c_layout n) in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (String.unsafe_get s i)
  done;
  a

let fail c msg =
  failwith (Printf.sprintf "Binio.input: %s: byte %d: %s" c.name c.pos msg)

let read_byte c =
  if c.pos >= c.len then fail c "unexpected end of input";
  let v = Char.code (Bigarray.Array1.unsafe_get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

(* Full-width counterpart of [add_varint_bits]: accepts up to
   [Sys.int_size] significant bits (9 bytes on a 64-bit platform) and
   rejects — with the offending byte offset — any encoding that would
   overflow the native int instead of silently wrapping. *)
let read_varint_bits c =
  let rec go shift acc =
    if shift >= Sys.int_size then fail c "varint too long";
    let byte = read_byte c in
    let group = byte land 0x7f in
    if shift > Sys.int_size - 7 && group lsr (Sys.int_size - shift) <> 0 then
      fail c "varint overflows the native int width";
    let acc = acc lor (group lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_varint c =
  let v = read_varint_bits c in
  if v < 0 then fail c "varint overflows unsigned field";
  v

let read_zigzag c = unzigzag (read_varint_bits c)

let read_string c =
  let len = read_varint c in
  if c.pos + len > c.len then fail c "truncated string";
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get c.buf (c.pos + i))
  done;
  c.pos <- c.pos + len;
  Bytes.unsafe_to_string b

let read_array c read =
  let n = read_varint c in
  (* cap the initial allocation: each element consumes at least one byte *)
  if n > c.len - c.pos then fail c "impossible element count";
  Array.init n (fun _ -> read c)

type header = {
  program : string;
  input : string;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  n_objects : int;
  obj_refs : int array;
  n_events : int;
}

(* The interned tables live on the decoder, not the header: a v3 file
   extends them incrementally at chunk boundaries (v1/v2 files load them
   fully up front), matching the {!Source} interning contract — any id
   carried by an already-yielded event is resolvable, and the counts are
   monotone. *)
type tables = {
  funcs : Lp_callchain.Func.table;
  mutable n_funcs : int;
  mutable chains : Lp_callchain.Chain.t array;
  mutable n_chains : int;
  mutable tags : string array;
  mutable n_tags : int;
  mutable site_defs : (int * int * int) array;
  mutable n_sites : int;
}

let fresh_tables () =
  {
    funcs = Lp_callchain.Func.create_table ();
    n_funcs = 0;
    chains = Array.make 16 [||];
    n_chains = 0;
    tags = Array.make 16 "";
    n_tags = 0;
    site_defs = Array.make 16 (0, 0, 0);
    n_sites = 0;
  }

let append_slot arr n dummy =
  let cap = Array.length !arr in
  if n = cap then begin
    let grown = Array.make (2 * max 16 cap) dummy in
    Array.blit !arr 0 grown 0 n;
    arr := grown
  end

(* parsed footer entry: the replay counters at one chunk's entry *)
type chunk_info = {
  ch_offset : int;  (** absolute byte offset of the chunk *)
  ch_first_event : int;
  ch_n_events : int;
  ch_next_obj : int;  (** next expected (dense-birth) object id *)
  ch_start_clock : int;  (** bytes allocated before the chunk *)
  ch_live_bytes : int;
  ch_live_objs : int;
}

type decoder = {
  c : cursor;
  version : int;
  hdr : header;
  tbl : tables;
  chunk_events : int;  (* 0 for v1/v2 *)
  n_chunks : int;
  (* a range decoder follows a plan of (event-area pos, count, end pos)
     triples over already-complete tables instead of parsing chunk
     headers; sequential decoders have an empty plan *)
  plan : (int * int * int) array;
  mutable plan_next : int;
  mutable cur_end : int;  (* expected byte pos at current chunk's end, -1 none *)
  mutable chunks_left : int;
  mutable in_chunk : int;  (* events left in the current chunk *)
  mutable entered : (int * int) list;  (* (offset, n_events), reversed *)
  mutable prev_alloc : int;
  mutable prev_free : int;
  mutable prev_touch : int;
  mutable prev_realloc : int;
  mutable closed : bool;
}

(* -- shared table-section readers (v1/v2 read one delta covering the
      whole table; v3 reads one per chunk) -- *)

let read_func_delta tbl c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  for _ = 1 to n do
    let fname = read_string c in
    if Lp_callchain.Func.intern tbl.funcs fname <> tbl.n_funcs then
      fail c (Printf.sprintf "duplicate function name %S" fname);
    tbl.n_funcs <- tbl.n_funcs + 1
  done

let read_chain_delta tbl c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  for _ = 1 to n do
    let chain = read_array c read_varint in
    Array.iter
      (fun f ->
        if f >= tbl.n_funcs then
          fail c (Printf.sprintf "chain references unknown function %d" f))
      chain;
    let arr = ref tbl.chains in
    append_slot arr tbl.n_chains [||];
    tbl.chains <- !arr;
    tbl.chains.(tbl.n_chains) <- chain;
    tbl.n_chains <- tbl.n_chains + 1
  done

let read_tag_delta tbl c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  for _ = 1 to n do
    let tag = read_string c in
    let arr = ref tbl.tags in
    append_slot arr tbl.n_tags "";
    tbl.tags <- !arr;
    tbl.tags.(tbl.n_tags) <- tag;
    tbl.n_tags <- tbl.n_tags + 1
  done

let read_site_delta tbl c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  for _ = 1 to n do
    let chain = read_varint c in
    if chain >= tbl.n_chains then
      fail c (Printf.sprintf "site references unknown chain %d" chain);
    let key = read_zigzag c in
    let tag = read_zigzag c in
    if tag >= tbl.n_tags then
      fail c (Printf.sprintf "site references unknown tag %d" tag);
    let arr = ref tbl.site_defs in
    append_slot arr tbl.n_sites (0, 0, 0);
    tbl.site_defs <- !arr;
    tbl.site_defs.(tbl.n_sites) <- (chain, key, tag);
    tbl.n_sites <- tbl.n_sites + 1
  done

let read_table_deltas tbl c =
  read_func_delta tbl c;
  read_chain_delta tbl c;
  read_tag_delta tbl c;
  read_site_delta tbl c

let read_carry tbl ~n_objects c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  let prev_obj = ref (-1) in
  Array.init n (fun _ ->
      let delta = read_varint c in
      if delta < 1 then fail c "carry-in objects not strictly increasing";
      let obj = !prev_obj + delta in
      prev_obj := obj;
      if obj >= n_objects then
        fail c (Printf.sprintf "carry-in of out-of-range object %d" obj);
      let cr_size = read_varint c in
      let cr_alloc_event = read_varint c in
      let cr_alloc_chain = read_varint c in
      if cr_alloc_chain >= tbl.n_chains then
        fail c
          (Printf.sprintf "carry-in references unknown chain %d" cr_alloc_chain);
      let cr_birth_clock = read_varint c in
      let cr_freed_at = read_varint c - 1 in
      {
        cr_obj = obj;
        cr_size;
        cr_alloc_event;
        cr_alloc_chain;
        cr_birth_clock;
        cr_freed_at;
      })

let skip_carry c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  for _ = 1 to n do
    for _ = 1 to 6 do
      ignore (read_varint_bits c)
    done
  done

let read_chunk_event_count c =
  let n = read_varint c in
  if n > c.len - c.pos then fail c "impossible element count";
  n

let read_fixed64 c =
  if c.pos + 8 > c.len then fail c "truncated footer pointer";
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bigarray.Array1.unsafe_get c.buf (c.pos + i))
  done;
  c.pos <- c.pos + 8;
  !v

(* Parse the footer at the cursor (chunk index + fixed pointer + end
   marker) and leave the cursor at end of input. *)
let read_footer ~n_chunks ~n_events c =
  let footer_pos = c.pos in
  let n = read_varint c in
  if n <> n_chunks then fail c "footer chunk count mismatch";
  let next_event = ref 0 in
  let infos =
    Array.init n (fun _ ->
        let ch_offset = read_varint c in
        let ch_first_event = read_varint c in
        if ch_first_event <> !next_event then
          fail c "footer event indexing is not contiguous";
        let ch_n_events = read_varint c in
        next_event := ch_first_event + ch_n_events;
        let ch_next_obj = read_varint c in
        let ch_start_clock = read_varint c in
        let ch_live_bytes = read_zigzag c in
        let ch_live_objs = read_zigzag c in
        {
          ch_offset;
          ch_first_event;
          ch_n_events;
          ch_next_obj;
          ch_start_clock;
          ch_live_bytes;
          ch_live_objs;
        })
  in
  if !next_event <> n_events then fail c "footer event count mismatch";
  if read_fixed64 c <> footer_pos then fail c "footer pointer mismatch";
  if read_byte c <> Char.code end_marker then fail c "missing end marker";
  if c.pos <> c.len then fail c "trailing bytes after end marker";
  infos

let cursor_of ?(name = "<trace>") (buf : bytes_view) =
  { buf; len = Bigarray.Array1.dim buf; name; pos = 0 }

(* Common header parse: magic, version byte, and the version-specific
   preamble up to (but not including) the first chunk / the event area. *)
let decode_preamble c =
  if
    c.len < 5
    || not (String.equal (String.init 4 (Bigarray.Array1.get c.buf)) magic)
  then fail c "bad magic (not a binary trace)";
  c.pos <- 4;
  let v = read_byte c in
  if v <> version && v <> version_sized && v <> version_sharded then
    fail c (Printf.sprintf "unsupported version %d" v);
  let program = read_string c in
  let input = read_string c in
  let tbl = fresh_tables () in
  (* v1/v2 carry the full tables here; v3 defers them to the chunks *)
  if v < version_sharded then read_table_deltas tbl c;
  let instructions = read_varint c in
  let calls = read_varint c in
  let heap_refs = read_varint c in
  let total_refs = read_varint c in
  let n_objects = read_varint c in
  (* obj_refs is not length-prefixed: it has exactly n_objects entries *)
  if n_objects > c.len - c.pos then fail c "impossible object count";
  let obj_refs = Array.make n_objects 0 in
  for i = 0 to n_objects - 1 do
    obj_refs.(i) <- read_varint c
  done;
  let n_events = read_varint c in
  (* cap the event count: each event consumes at least one byte *)
  if n_events > c.len - c.pos then fail c "impossible element count";
  let chunk_events, n_chunks =
    if v < version_sharded then (0, 0)
    else begin
      let chunk_events = read_varint c in
      if chunk_events < 1 then fail c "chunk size must be positive";
      let n_chunks = read_varint c in
      if n_chunks < 1 || n_chunks - 1 > c.len - c.pos then
        fail c "impossible chunk count";
      if n_chunks <> max 1 ((n_events + chunk_events - 1) / chunk_events) then
        fail c "chunk count does not match event count";
      (chunk_events, n_chunks)
    end
  in
  let hdr =
    {
      program;
      input;
      instructions;
      calls;
      heap_refs;
      total_refs;
      n_objects;
      obj_refs;
      n_events;
    }
  in
  (v, hdr, tbl, chunk_events, n_chunks)

(* The header (counters, per-object refs, and — for v1/v2 — the interned
   tables) precedes the event stream, so a decoder knows every id an
   event can reference before yielding it; v3 chunks extend the tables
   just-in-time at chunk entry.  That is what lets {!Source} stream
   [.lpt] files without materializing them. *)
let decoder ?name (buf : bytes_view) : decoder =
  let c = cursor_of ?name buf in
  let v, hdr, tbl, chunk_events, n_chunks = decode_preamble c in
  {
    c;
    version = v;
    hdr;
    tbl;
    chunk_events;
    n_chunks;
    plan = [||];
    plan_next = 0;
    cur_end = -1;
    chunks_left = n_chunks;
    in_chunk = (if v < version_sharded then hdr.n_events else 0);
    entered = [];
    prev_alloc = -1;
    prev_free = 0;
    prev_touch = 0;
    prev_realloc = 0;
    closed = false;
  }

let header d = d.hdr
let decoder_version d = d.version
let decoder_funcs d = d.tbl.funcs

let decoder_chain d id =
  if id < 0 || id >= d.tbl.n_chains then
    invalid_arg (Printf.sprintf "Binio.decoder_chain: unknown chain %d" id)
  else d.tbl.chains.(id)

let decoder_n_chains d = d.tbl.n_chains

let decoder_tag d id =
  if id < 0 || id >= d.tbl.n_tags then
    invalid_arg (Printf.sprintf "Binio.decoder_tag: unknown tag %d" id)
  else d.tbl.tags.(id)

let decoder_n_tags d = d.tbl.n_tags

let read_event d =
  let c = d.c in
  let alloc_base = alloc_base_of_version d.version in
  let site what id =
    if id < 0 || id >= d.tbl.n_sites then
      fail c (Printf.sprintf "%s references unknown site %d" what id);
    d.tbl.site_defs.(id)
  in
  let check_obj what obj =
    if obj < 0 || obj >= d.hdr.n_objects then
      fail c (Printf.sprintf "%s of out-of-range object %d" what obj);
    obj
  in
  let alloc obj (chain, key, tag) =
    let obj = check_obj "alloc" obj in
    d.prev_alloc <- obj;
    let size = read_varint c in
    Event.Alloc { obj; size; chain; key; tag }
  in
  let free ?(size = -1) delta =
    let obj = check_obj "free" (d.prev_free + delta) in
    d.prev_free <- obj;
    Event.Free { obj; size }
  in
  let touch delta count =
    let obj = check_obj "touch" (d.prev_touch + delta) in
    d.prev_touch <- obj;
    Event.Touch { obj; count }
  in
  let realloc delta (chain, key, tag) =
    let obj = check_obj "realloc" (d.prev_realloc + delta) in
    d.prev_realloc <- obj;
    let old_size = read_varint c in
    let new_size = read_varint c in
    Event.Realloc { obj; old_size; new_size; chain; key; tag }
  in
  match read_byte c with
  | 0x00 -> alloc (d.prev_alloc + 1) (site "alloc" (read_varint c))
  | 0x01 ->
      let obj = read_varint c in
      alloc obj (site "alloc" (read_varint c))
  | 0x02 -> free (read_zigzag c)
  | 0x03 ->
      let delta = read_zigzag c in
      touch delta (read_varint c)
  | op when d.version >= version_sized && op = sized_free_op ->
      let delta = read_zigzag c in
      free ~size:(read_varint c) delta
  | op when d.version >= version_sharded && op = realloc_op ->
      let delta = read_zigzag c in
      realloc delta (site "realloc" (read_varint c))
  | op when d.version >= version_sized && op < alloc_base ->
      fail c (Printf.sprintf "reserved opcode %#x" op)
  | op when op < 0x40 -> alloc (d.prev_alloc + 1) (site "alloc" (op - alloc_base))
  | op when op < 0x80 -> free (unzigzag (op land 0x3f))
  | op -> touch (unzigzag ((op lsr 4) land 0x7)) ((op land 0xf) + 1)

let reset_deltas d =
  d.prev_alloc <- -1;
  d.prev_free <- 0;
  d.prev_touch <- 0;
  d.prev_realloc <- 0

(* sequential v3: parse the next chunk's header sections in place *)
let enter_chunk d =
  let off = d.c.pos in
  read_table_deltas d.tbl d.c;
  skip_carry d.c;
  let n = read_chunk_event_count d.c in
  if d.chunk_events > 0 && n > d.chunk_events then
    fail d.c "chunk exceeds declared chunk size";
  d.entered <- (off, n) :: d.entered;
  d.chunks_left <- d.chunks_left - 1;
  d.in_chunk <- n;
  reset_deltas d

(* at exhaustion of a sequential v3 stream: the cursor sits at the
   footer, which must agree with the chunks just walked *)
let finish_v3 d =
  let infos = read_footer ~n_chunks:d.n_chunks ~n_events:d.hdr.n_events d.c in
  List.iteri
    (fun i (off, n) ->
        let j = d.n_chunks - 1 - i in
        if infos.(j).ch_offset <> off then fail d.c "footer offset mismatch";
        if infos.(j).ch_n_events <> n then fail d.c "footer event count mismatch")
    d.entered

let check_chunk_end d =
  if d.cur_end >= 0 && d.c.pos <> d.cur_end then
    fail d.c "chunk byte length mismatch";
  d.cur_end <- -1

let rec decode_next d =
  if d.in_chunk > 0 then begin
    d.in_chunk <- d.in_chunk - 1;
    Some (read_event d)
  end
  else if d.plan_next < Array.length d.plan then begin
    check_chunk_end d;
    let pos, n, end_pos = d.plan.(d.plan_next) in
    d.plan_next <- d.plan_next + 1;
    d.c.pos <- pos;
    d.cur_end <- end_pos;
    d.in_chunk <- n;
    reset_deltas d;
    decode_next d
  end
  else if d.chunks_left > 0 then begin
    enter_chunk d;
    decode_next d
  end
  else begin
    if not d.closed then begin
      d.closed <- true;
      if Array.length d.plan > 0 then check_chunk_end d
      else if d.version >= version_sharded then finish_v3 d
      else begin
        if read_byte d.c <> Char.code end_marker then
          fail d.c "missing end marker";
        if d.c.pos <> d.c.len then fail d.c "trailing bytes after end marker"
      end
    end;
    None
  end

let of_bigarray ?name (buf : bytes_view) : Trace.t =
  let d = decoder ?name buf in
  let h = d.hdr in
  let events = Array.make h.n_events (Event.Free { obj = -1; size = -1 }) in
  for i = 0 to h.n_events - 1 do
    match decode_next d with
    | Some e -> events.(i) <- e
    | None -> assert false
  done;
  (* consumes the end marker and rejects trailing bytes *)
  (match decode_next d with Some _ -> assert false | None -> ());
  {
    Trace.program = h.program;
    input = h.input;
    events;
    chains = Array.sub d.tbl.chains 0 d.tbl.n_chains;
    funcs = d.tbl.funcs;
    n_objects = h.n_objects;
    instructions = h.instructions;
    calls = h.calls;
    heap_refs = h.heap_refs;
    total_refs = h.total_refs;
    obj_refs = h.obj_refs;
    tags = Array.sub d.tbl.tags 0 d.tbl.n_tags;
  }

let of_string ?name s = of_bigarray ?name (big_of_string s)
let input ?name ic = of_string ?name (In_channel.input_all ic)

(* -- the seekable index over a v3 buffer --------------------------------------- *)

(* An [indexed] is the random-access face of a v3 buffer: the footer is
   located through its fixed-width tail pointer, every chunk's table
   delta and carry-in set is loaded (events are not decoded), and range
   decoders can then be opened over any contiguous chunk run.  The index
   is immutable once built, so range decoders on separate domains can
   share it freely. *)
type indexed = {
  ix_buf : bytes_view;
  ix_name : string;
  ix_hdr : header;
  ix_chunk_events : int;
  ix_tbl : tables;  (* complete *)
  ix_chunks : chunk_info array;
  ix_events_pos : int array;  (* per chunk: byte pos of its event area *)
  ix_events_end : int array;  (* per chunk: byte pos just past its events *)
  ix_carries : carry array array;
}

let index ?(name = "<trace>") (buf : bytes_view) : indexed =
  let c = cursor_of ~name buf in
  let v, hdr, tbl, chunk_events, n_chunks = decode_preamble c in
  if v < version_sharded then
    fail c
      (Printf.sprintf
         "version %d traces are not seekable (convert to version %d first)" v
         version_sharded);
  let first_chunk_pos = c.pos in
  (* the footer's fixed-width pointer sits just before the end marker *)
  if c.len < first_chunk_pos + 9 then fail c "truncated sharded trace";
  c.pos <- c.len - 9;
  let footer_pos = read_fixed64 c in
  if footer_pos < first_chunk_pos || footer_pos >= c.len - 9 then
    fail c "footer pointer out of range";
  c.pos <- footer_pos;
  let chunks = read_footer ~n_chunks ~n_events:hdr.n_events c in
  if chunks.(0).ch_offset <> first_chunk_pos then
    fail c "footer offset mismatch";
  let events_pos = Array.make n_chunks 0 in
  let events_end = Array.make n_chunks 0 in
  let carries =
    Array.init n_chunks (fun i ->
        c.pos <- chunks.(i).ch_offset;
        read_table_deltas tbl c;
        let carry = read_carry tbl ~n_objects:hdr.n_objects c in
        let n = read_chunk_event_count c in
        if n <> chunks.(i).ch_n_events then
          fail c "footer event count mismatch";
        if chunk_events > 0 && n > chunk_events then
          fail c "chunk exceeds declared chunk size";
        events_pos.(i) <- c.pos;
        events_end.(i) <-
          (if i = n_chunks - 1 then footer_pos else chunks.(i + 1).ch_offset);
        if events_end.(i) < c.pos then fail c "chunk overlaps its neighbour";
        carry)
  in
  {
    ix_buf = buf;
    ix_name = name;
    ix_hdr = hdr;
    ix_chunk_events = chunk_events;
    ix_tbl = tbl;
    ix_chunks = chunks;
    ix_events_pos = events_pos;
    ix_events_end = events_end;
    ix_carries = carries;
  }

let indexed_header ix = ix.ix_hdr
let indexed_name ix = ix.ix_name
let indexed_chunk_events ix = ix.ix_chunk_events
let indexed_chunks ix = ix.ix_chunks
let indexed_carry ix i = ix.ix_carries.(i)
let indexed_funcs ix = ix.ix_tbl.funcs
let indexed_n_chains ix = ix.ix_tbl.n_chains

let indexed_chain ix id =
  if id < 0 || id >= ix.ix_tbl.n_chains then
    invalid_arg (Printf.sprintf "Binio.indexed_chain: unknown chain %d" id)
  else ix.ix_tbl.chains.(id)

let indexed_n_tags ix = ix.ix_tbl.n_tags

let indexed_tag ix id =
  if id < 0 || id >= ix.ix_tbl.n_tags then
    invalid_arg (Printf.sprintf "Binio.indexed_tag: unknown tag %d" id)
  else ix.ix_tbl.tags.(id)

(* A decoder over the chunk range [first, first+count): tables are the
   (complete, shared, immutable) index tables; the plan jumps straight
   from event area to event area. *)
let range_decoder ix ~first ~count : decoder =
  let n_chunks = Array.length ix.ix_chunks in
  if first < 0 || count < 0 || first + count > n_chunks then
    invalid_arg
      (Printf.sprintf "Binio.range_decoder: bad chunk range %d+%d of %d" first
         count n_chunks);
  let plan =
    Array.init count (fun i ->
        ( ix.ix_events_pos.(first + i),
          ix.ix_chunks.(first + i).ch_n_events,
          ix.ix_events_end.(first + i) ))
  in
  {
    c = cursor_of ~name:ix.ix_name ix.ix_buf;
    version = version_sharded;
    hdr = ix.ix_hdr;
    tbl = ix.ix_tbl;
    chunk_events = ix.ix_chunk_events;
    n_chunks;
    plan;
    plan_next = 0;
    cur_end = -1;
    chunks_left = 0;
    in_chunk = 0;
    entered = [];
    prev_alloc = -1;
    prev_free = 0;
    prev_touch = 0;
    prev_realloc = 0;
    closed = false;
  }

(* Wire primitives re-exported at string granularity so the property
   suite can round-trip them over the full native int range without
   reaching into cursors. *)
module Wire = struct
  let zigzag = zigzag
  let unzigzag = unzigzag

  let string_of add n =
    let b = Buffer.create 10 in
    add b n;
    Buffer.contents b

  let of_string read s =
    let c =
      { buf = big_of_string s; len = String.length s; name = "<wire>"; pos = 0 }
    in
    let v = read c in
    if c.pos <> c.len then failwith "Binio.Wire: trailing bytes";
    v

  let varint_to_string = string_of add_varint
  let varint_of_string = of_string read_varint
  let varint_bits_to_string = string_of add_varint_bits
  let varint_bits_of_string = of_string read_varint_bits
  let zigzag_to_string = string_of add_zigzag
  let zigzag_of_string = of_string read_zigzag
end
