type t = {
  program : string;
  input : string;
  events : Event.t array;
  chains : Lp_callchain.Chain.t array;
  funcs : Lp_callchain.Func.table;
  n_objects : int;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  obj_refs : int array;
  tags : string array;
}

module Int_array = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
  let to_array t = Array.sub t.data 0 t.len
end

module Builder = struct
  type trace = t

  module Chain_tbl = Hashtbl.Make (struct
    type t = Lp_callchain.Chain.t

    let equal = Lp_callchain.Chain.equal
    let hash = Lp_callchain.Chain.hash
  end)

  type view = {
    view_funcs : Lp_callchain.Func.table;
    chain_of : int -> Lp_callchain.Chain.t;
    n_chains : unit -> int;
    tag_of : int -> string;
    n_tags : unit -> int;
    refs_of : int -> int;
    n_objects_so_far : unit -> int;
  }

  type sink = { emit : Event.t -> unit; mutable view : view option }

  let sink emit = { emit; view = None }

  type t = {
    program : string;
    input : string;
    funcs : Lp_callchain.Func.table;
    sink_to : sink option;
    (* the last pushed event is held back one step so an immediately
       following touch of the same object can merge into it — identically
       in the materialized and streaming modes *)
    mutable pending : Event.t option;
    mutable events : Event.t array;
    mutable n_events : int;
    chain_ids : int Chain_tbl.t;
    mutable chains : Lp_callchain.Chain.t array;
    mutable n_chains : int;
    tag_ids : (string, int) Hashtbl.t;
    mutable tag_names : string array;
    mutable n_tags : int;
    mutable n_objects : int;
    (* object id -> current size; updated by realloc, removed by free *)
    alive : (int, int) Hashtbl.t;
    obj_refs : Int_array.t;
    mutable instructions : int;
    mutable calls : int;
    mutable heap_refs : int;
    mutable non_heap : int;
  }

  let view t =
    {
      view_funcs = t.funcs;
      chain_of =
        (fun id ->
          if id < 0 || id >= t.n_chains then
            invalid_arg (Printf.sprintf "Trace.Builder: unknown chain %d" id)
          else t.chains.(id));
      n_chains = (fun () -> t.n_chains);
      tag_of =
        (fun id ->
          if id < 0 || id >= t.n_tags then
            invalid_arg (Printf.sprintf "Trace.Builder: unknown tag %d" id)
          else t.tag_names.(id));
      n_tags = (fun () -> t.n_tags);
      refs_of =
        (fun obj -> if obj < t.obj_refs.Int_array.len then Int_array.get t.obj_refs obj else 0);
      n_objects_so_far = (fun () -> t.n_objects);
    }

  let create ?sink:sink_to ~program ~input ~funcs () =
    let t =
      {
        program;
        input;
        funcs;
        sink_to;
        pending = None;
        (* the events array is only the materialized-mode store; a streaming
           builder forwards every event to its sink instead *)
        events =
          (match sink_to with
          | None -> Array.make 4096 (Event.Free { obj = -1; size = -1 })
          | Some _ -> [||]);
        n_events = 0;
        chain_ids = Chain_tbl.create 256;
        chains = Array.make 64 [||];
        n_chains = 0;
        tag_ids = Hashtbl.create 32;
        tag_names = Array.make 16 "";
        n_tags = 0;
        n_objects = 0;
        alive = Hashtbl.create 1024;
        obj_refs = Int_array.create ();
        instructions = 0;
        calls = 0;
        heap_refs = 0;
        non_heap = 0;
      }
    in
    (match sink_to with Some s -> s.view <- Some (view t) | None -> ());
    t

  let store_event t e =
    if t.n_events = Array.length t.events then begin
      let grown =
        Array.make (max 4096 (2 * t.n_events)) (Event.Free { obj = -1; size = -1 })
      in
      Array.blit t.events 0 grown 0 t.n_events;
      t.events <- grown
    end;
    t.events.(t.n_events) <- e;
    t.n_events <- t.n_events + 1

  let flush_pending t =
    match t.pending with
    | None -> ()
    | Some e ->
        t.pending <- None;
        (match t.sink_to with Some s -> s.emit e | None -> store_event t e)

  let push_event t e =
    flush_pending t;
    t.pending <- Some e

  let intern_chain t chain =
    match Chain_tbl.find_opt t.chain_ids chain with
    | Some id -> id
    | None ->
        let id = t.n_chains in
        if id = Array.length t.chains then begin
          let grown = Array.make (2 * id) [||] in
          Array.blit t.chains 0 grown 0 id;
          t.chains <- grown
        end;
        t.chains.(id) <- chain;
        t.n_chains <- id + 1;
        Chain_tbl.add t.chain_ids chain id;
        id

  let intern_tag t name =
    match Hashtbl.find_opt t.tag_ids name with
    | Some id -> id
    | None ->
        let id = t.n_tags in
        if id = Array.length t.tag_names then begin
          let grown = Array.make (2 * id) "" in
          Array.blit t.tag_names 0 grown 0 id;
          t.tag_names <- grown
        end;
        t.tag_names.(id) <- name;
        t.n_tags <- id + 1;
        Hashtbl.replace t.tag_ids name id;
        id

  let alloc t ?(tag = -1) ~size ~chain ~key () =
    let obj = t.n_objects in
    t.n_objects <- obj + 1;
    Hashtbl.replace t.alive obj size;
    Int_array.push t.obj_refs 0;
    push_event t (Event.Alloc { obj; size; chain; key; tag });
    obj

  let realloc t ?(tag = -1) ~new_size ~chain ~key ~obj () =
    if obj < 0 || obj >= t.n_objects then
      invalid_arg "Trace.Builder.realloc: unknown object";
    match Hashtbl.find_opt t.alive obj with
    | None -> invalid_arg "Trace.Builder.realloc: object already freed"
    | Some old_size ->
        if new_size <= 0 then
          invalid_arg "Trace.Builder.realloc: size must be positive";
        Hashtbl.replace t.alive obj new_size;
        push_event t (Event.Realloc { obj; old_size; new_size; chain; key; tag })

  let free ?(size = -1) t ~obj =
    if obj < 0 || obj >= t.n_objects then invalid_arg "Trace.Builder.free: unknown object";
    if not (Hashtbl.mem t.alive obj) then invalid_arg "Trace.Builder.free: double free";
    Hashtbl.remove t.alive obj;
    push_event t (Event.Free { obj; size })

  let touch t ~obj n =
    Int_array.set t.obj_refs obj (Int_array.get t.obj_refs obj + n);
    t.heap_refs <- t.heap_refs + n;
    (* merging with an immediately preceding touch of the same object keeps
       the stream compact; the merge target is the held-back pending event,
       replaced by a fresh record so already-emitted events stay immutable *)
    match t.pending with
    | Some (Event.Touch r) when r.obj = obj ->
        t.pending <- Some (Event.Touch { obj; count = r.count + n })
    | _ -> push_event t (Event.Touch { obj; count = n })

  let non_heap_refs t n = t.non_heap <- t.non_heap + n
  let instructions t n = t.instructions <- t.instructions + n
  let set_calls t n = t.calls <- n
  let live_objects t = Hashtbl.length t.alive

  let finish t : trace =
    flush_pending t;
    {
      program = t.program;
      input = t.input;
      events = Array.sub t.events 0 t.n_events;
      chains = Array.sub t.chains 0 t.n_chains;
      funcs = t.funcs;
      n_objects = t.n_objects;
      instructions = t.instructions;
      calls = t.calls;
      heap_refs = t.heap_refs;
      total_refs = t.heap_refs + t.non_heap;
      obj_refs = Int_array.to_array t.obj_refs;
      tags = Array.sub t.tag_names 0 t.n_tags;
    }
end

let iter_allocs t f =
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } -> f ~obj ~size ~chain ~key ~tag
      | Event.Free _ | Event.Realloc _ | Event.Touch _ -> ())
    t.events

let total_bytes t =
  (* the allocation clock: every birth advances it by the object's size,
     every growing resize by the grown delta (shrinks advance nothing, so
     the clock stays monotonic) *)
  let sum = ref 0 in
  Array.iter
    (function
      | Event.Alloc { size; _ } -> sum := !sum + size
      | Event.Realloc { old_size; new_size; _ } ->
          sum := !sum + max 0 (new_size - old_size)
      | Event.Free _ | Event.Touch _ -> ())
    t.events;
  !sum

let total_objects t = t.n_objects

let has_realloc t =
  Array.exists (function Event.Realloc _ -> true | _ -> false) t.events

let chain_of_alloc t id = t.chains.(id)

(* Concatenate [n] copies of the trace, renumbering each copy's objects
   past the previous copy's — a dense-birth-preserving way to synthesize
   long traces (scale benchmarks, exercise many v3 chunks) from a real
   workload without inventing allocation behaviour.  Tables are shared;
   the execution counters scale with the copies. *)
let tile (t : t) n =
  if n < 1 then invalid_arg "Trace.tile: need at least one copy";
  if n = 1 then t
  else begin
    let ne = Array.length t.events in
    let shift off = function
      | Event.Alloc a ->
          Event.Alloc { a with obj = (if a.obj >= 0 then a.obj + off else a.obj) }
      | Event.Free f ->
          Event.Free { f with obj = (if f.obj >= 0 then f.obj + off else f.obj) }
      | Event.Realloc r ->
          Event.Realloc { r with obj = (if r.obj >= 0 then r.obj + off else r.obj) }
      | Event.Touch { obj; count } ->
          Event.Touch { obj = (if obj >= 0 then obj + off else obj); count }
    in
    let events =
      Array.init (ne * n) (fun i -> shift (i / ne * t.n_objects) t.events.(i mod ne))
    in
    let obj_refs =
      Array.init (t.n_objects * n) (fun i -> t.obj_refs.(i mod t.n_objects))
    in
    {
      t with
      events;
      n_objects = t.n_objects * n;
      obj_refs;
      instructions = t.instructions * n;
      calls = t.calls * n;
      heap_refs = t.heap_refs * n;
      total_refs = t.total_refs * n;
    }
  end
