type t = {
  program : string;
  input : string;
  events : Event.t array;
  chains : Lp_callchain.Chain.t array;
  funcs : Lp_callchain.Func.table;
  n_objects : int;
  instructions : int;
  calls : int;
  heap_refs : int;
  total_refs : int;
  obj_refs : int array;
  tags : string array;
}

module Int_array = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
  let to_array t = Array.sub t.data 0 t.len
end

module Builder = struct
  type trace = t

  module Chain_tbl = Hashtbl.Make (struct
    type t = Lp_callchain.Chain.t

    let equal = Lp_callchain.Chain.equal
    let hash = Lp_callchain.Chain.hash
  end)

  type t = {
    program : string;
    input : string;
    funcs : Lp_callchain.Func.table;
    mutable events : Event.t array;
    mutable n_events : int;
    chain_ids : int Chain_tbl.t;
    mutable chains : Lp_callchain.Chain.t list;  (* reversed *)
    mutable n_chains : int;
    tag_ids : (string, int) Hashtbl.t;
    mutable tag_names : string list;  (* reversed *)
    mutable n_tags : int;
    mutable n_objects : int;
    alive : (int, unit) Hashtbl.t;
    obj_refs : Int_array.t;
    mutable instructions : int;
    mutable calls : int;
    mutable heap_refs : int;
    mutable non_heap : int;
  }

  let create ~program ~input ~funcs =
    {
      program;
      input;
      funcs;
      events = Array.make 4096 (Event.Free { obj = -1; size = -1 });
      n_events = 0;
      chain_ids = Chain_tbl.create 256;
      chains = [];
      n_chains = 0;
      tag_ids = Hashtbl.create 32;
      tag_names = [];
      n_tags = 0;
      n_objects = 0;
      alive = Hashtbl.create 1024;
      obj_refs = Int_array.create ();
      instructions = 0;
      calls = 0;
      heap_refs = 0;
      non_heap = 0;
    }

  let push_event t e =
    if t.n_events = Array.length t.events then begin
      let grown = Array.make (2 * t.n_events) (Event.Free { obj = -1; size = -1 }) in
      Array.blit t.events 0 grown 0 t.n_events;
      t.events <- grown
    end;
    t.events.(t.n_events) <- e;
    t.n_events <- t.n_events + 1

  let intern_chain t chain =
    match Chain_tbl.find_opt t.chain_ids chain with
    | Some id -> id
    | None ->
        let id = t.n_chains in
        t.n_chains <- id + 1;
        t.chains <- chain :: t.chains;
        Chain_tbl.add t.chain_ids chain id;
        id

  let intern_tag t name =
    match Hashtbl.find_opt t.tag_ids name with
    | Some id -> id
    | None ->
        let id = t.n_tags in
        t.n_tags <- id + 1;
        t.tag_names <- name :: t.tag_names;
        Hashtbl.replace t.tag_ids name id;
        id

  let alloc t ?(tag = -1) ~size ~chain ~key () =
    let obj = t.n_objects in
    t.n_objects <- obj + 1;
    Hashtbl.replace t.alive obj ();
    Int_array.push t.obj_refs 0;
    push_event t (Event.Alloc { obj; size; chain; key; tag });
    obj

  let free ?(size = -1) t ~obj =
    if obj < 0 || obj >= t.n_objects then invalid_arg "Trace.Builder.free: unknown object";
    if not (Hashtbl.mem t.alive obj) then invalid_arg "Trace.Builder.free: double free";
    Hashtbl.remove t.alive obj;
    push_event t (Event.Free { obj; size })

  let touch t ~obj n =
    Int_array.set t.obj_refs obj (Int_array.get t.obj_refs obj + n);
    t.heap_refs <- t.heap_refs + n;
    (* record the reference in the event stream (merging with an immediately
       preceding touch of the same object keeps the stream compact) *)
    if t.n_events > 0 then begin
      match t.events.(t.n_events - 1) with
      | Event.Touch r when r.obj = obj -> r.count <- r.count + n
      | _ -> push_event t (Event.Touch { obj; count = n })
    end
    else push_event t (Event.Touch { obj; count = n })

  let non_heap_refs t n = t.non_heap <- t.non_heap + n
  let instructions t n = t.instructions <- t.instructions + n
  let set_calls t n = t.calls <- n
  let live_objects t = Hashtbl.length t.alive

  let finish t : trace =
    {
      program = t.program;
      input = t.input;
      events = Array.sub t.events 0 t.n_events;
      chains = Array.of_list (List.rev t.chains);
      funcs = t.funcs;
      n_objects = t.n_objects;
      instructions = t.instructions;
      calls = t.calls;
      heap_refs = t.heap_refs;
      total_refs = t.heap_refs + t.non_heap;
      obj_refs = Int_array.to_array t.obj_refs;
      tags = Array.of_list (List.rev t.tag_names);
    }
end

let iter_allocs t f =
  Array.iter
    (function
      | Event.Alloc { obj; size; chain; key; tag } -> f ~obj ~size ~chain ~key ~tag
      | Event.Free _ | Event.Touch _ -> ())
    t.events

let total_bytes t =
  let sum = ref 0 in
  iter_allocs t (fun ~obj:_ ~size ~chain:_ ~key:_ ~tag:_ -> sum := !sum + size);
  !sum

let total_objects t = t.n_objects
let chain_of_alloc t id = t.chains.(id)
