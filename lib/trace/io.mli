(** Format-agnostic trace I/O.

    Reading auto-detects the format from the first bytes ({!Binio.magic}
    for [.lpt] binary traces, anything else is parsed as the legacy
    {!Textio} line format), so binary and text traces interoperate
    everywhere a trace file is accepted.  Writing picks the format from
    the file extension ([.lpt] means binary) unless forced.

    Loads and stores record their wall-clock span and event count with
    {!Lp_obs.Timings} (stages ["load/<file>"] / ["store/<file>"], counters
    ["trace.bytes_read"] / ["trace.bytes_written"]). *)

type format = Text | Binary

val format_for_path : string -> format
(** [Binary] iff the path ends in [.lpt]. *)

val detect : string -> format
(** Format of serialized bytes: {!Binary} iff they start with
    {!Binio.magic}. *)

val of_string : ?name:string -> string -> Trace.t
(** Auto-detecting parse.  @raise Failure on malformed input. *)

val map_file : string -> Binio.bytes_view option
(** Memory-map a file read-only as a byte bigarray; [None] if the file
    cannot be opened or mapped (empty file, exotic filesystem), in which
    case callers fall back to reading it into a string. *)

val input : ?name:string -> in_channel -> Trace.t
(** Reads the whole channel, then parses with auto-detection. *)

val read_file : string -> Trace.t
(** @raise Failure on malformed input — the message always names the
    file, plus the byte offset (binary) or line number (text) when a
    codec produced it — and [Sys_error] if unreadable. *)

val write_file : ?format:format -> string -> Trace.t -> unit
(** Writes atomically enough for our purposes (single [open]/[write]);
    format defaults to {!format_for_path}.  [Binary] auto-selects the
    lowest version that can express the trace: realloc-bearing traces
    are written in the sharded v3 layout, realloc-free traces exactly
    as older writers produced them. *)

val output : ?format:format -> out_channel -> Trace.t -> unit
(** [format] defaults to [Text] (the historical behaviour on stdout);
    [Binary] version-selects like {!write_file}. *)
