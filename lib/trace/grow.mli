(** Growable [int] array with amortized-doubling storage.

    The streaming consumers (driver, trainer, linter) replace their
    [Array.make n_objects] per-object tables with these: object ids are
    dense but a source's object count is only known at exhaustion, so the
    tables grow as ids appear.  Reads beyond the current length return the
    [default], writes extend the length (intermediate slots hold the
    default). *)

type t

val create : ?default:int -> int -> t
(** [create ?default hint] pre-sizes for [hint] elements ([default]
    defaults to [0]). *)

val length : t -> int
(** Highest written index + 1. *)

val ensure : t -> int -> unit
(** [ensure t n] extends the logical length to at least [n]. *)

val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val to_array : t -> int array
